// Benchmarks regenerating every table and figure of the CPHash paper's
// evaluation (Sections 6 and 7). Two substrates are used:
//
//   - Native benches (Fig 5, 8, 9, 10, 13, 14, ablations) run the real Go
//     implementation on the host. Absolute numbers are host-dependent; on
//     small hosts the lock-based design can win, exactly as the paper's
//     Figure 11 shows for low core counts.
//   - Simulated benches (Fig 6, 7, 11, 12) run the access-pattern models on
//     the deterministic cache simulator of the paper's 80-core machine and
//     report cycles and misses per operation as custom metrics.
//
// cmd/cpbench and cmd/cpsim print the same experiments as full sweep
// tables; EXPERIMENTS.md records paper-vs-measured values.
package cphash

import (
	"fmt"
	"runtime"
	"testing"

	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/loadgen"
	"cphash/internal/lockhash"
	"cphash/internal/memcache"
	"cphash/internal/partition"
	"cphash/internal/ring"
	"cphash/internal/simhash"
	"cphash/internal/topology"
	"cphash/internal/workload"
)

// --- native table microbenchmark machinery (Figures 5, 8, 9, 10) ---

// benchCPHash drives b.N mixed operations through one CPHASH client.
func benchCPHash(b *testing.B, spec workload.Spec, capacityValues int, policy partition.EvictionPolicy) {
	b.Helper()
	b.ReportAllocs()
	t := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: partition.CapacityForValues(capacityValues, spec.ValueSize),
		MaxClients:    1,
		Policy:        policy,
		Seed:          1,
	})
	defer t.Close()
	c := t.MustClient(0)
	defer c.Close()
	g := workload.MustGenerator(spec)
	val := make([]byte, spec.ValueSize)
	inflight := make([]*core.Op, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind, key := g.Next()
		if kind == workload.Insert {
			c.Put(key, spec.FillValue(key, val))
			continue
		}
		inflight = append(inflight, c.LookupAsync(key))
		if len(inflight) == cap(inflight) {
			c.WaitAll()
			for _, o := range inflight {
				c.Release(o)
			}
			inflight = inflight[:0]
		}
	}
	c.WaitAll()
	for _, o := range inflight {
		c.Release(o)
	}
}

// benchLockHash drives b.N mixed operations against LOCKHASH in parallel.
func benchLockHash(b *testing.B, spec workload.Spec, capacityValues int, policy partition.EvictionPolicy) {
	b.Helper()
	b.ReportAllocs()
	t := lockhash.MustNew(lockhash.Config{
		CapacityBytes: partition.CapacityForValues(capacityValues, spec.ValueSize),
		Policy:        policy,
		Seed:          1,
	})
	var seed int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sp := spec
		seed++
		sp.Seed = spec.Seed + uint64(seed)*31
		g := workload.MustGenerator(sp)
		val := make([]byte, sp.ValueSize)
		var dst []byte
		for pb.Next() {
			kind, key := g.Next()
			if kind == workload.Insert {
				t.Put(key, sp.FillValue(key, val))
			} else {
				dst, _ = t.Get(key, dst[:0])
			}
		}
	})
}

// wsPoints are the working-set sizes benchmarked for Figures 5 and 8
// (scaled to host-friendly extents; cmd/cpbench sweeps more points).
var wsPoints = []int{100 << 10, 1 << 20, 16 << 20}

func BenchmarkFig5_CPHash(b *testing.B) {
	for _, ws := range wsPoints {
		spec := workload.Default(ws)
		b.Run(fmt.Sprintf("ws=%d", ws), func(b *testing.B) {
			benchCPHash(b, spec, spec.NumKeys(), partition.EvictLRU)
		})
	}
}

func BenchmarkFig5_LockHash(b *testing.B) {
	for _, ws := range wsPoints {
		spec := workload.Default(ws)
		b.Run(fmt.Sprintf("ws=%d", ws), func(b *testing.B) {
			benchLockHash(b, spec, spec.NumKeys(), partition.EvictLRU)
		})
	}
}

func BenchmarkFig8_CPHash_RandomEviction(b *testing.B) {
	spec := workload.Default(1 << 20)
	benchCPHash(b, spec, spec.NumKeys(), partition.EvictRandom)
}

func BenchmarkFig8_LockHash_RandomEviction(b *testing.B) {
	spec := workload.Default(1 << 20)
	benchLockHash(b, spec, spec.NumKeys(), partition.EvictRandom)
}

func BenchmarkFig9_Capacity(b *testing.B) {
	spec := workload.Default(4 << 20)
	for _, frac := range []int{1, 4, 16} {
		capVals := spec.NumKeys() / frac
		b.Run(fmt.Sprintf("cphash/cap=1_%d", frac), func(b *testing.B) {
			benchCPHash(b, spec, capVals, partition.EvictLRU)
		})
		b.Run(fmt.Sprintf("lockhash/cap=1_%d", frac), func(b *testing.B) {
			benchLockHash(b, spec, capVals, partition.EvictLRU)
		})
	}
}

func BenchmarkFig10_InsertRatio(b *testing.B) {
	for _, ratio := range []float64{0, 0.3, 1.0} {
		spec := workload.Default(1 << 20)
		spec.InsertRatio = ratio
		b.Run(fmt.Sprintf("cphash/insert=%.1f", ratio), func(b *testing.B) {
			benchCPHash(b, spec, spec.NumKeys(), partition.EvictLRU)
		})
		b.Run(fmt.Sprintf("lockhash/insert=%.1f", ratio), func(b *testing.B) {
			benchLockHash(b, spec, spec.NumKeys(), partition.EvictLRU)
		})
	}
}

// --- simulated benches (Figures 6, 7, 11, 12) ---

// benchSimCPHash runs the simulated CPHASH for ≥ b.N operations and
// reports the Figure 6 metrics.
func BenchmarkFig6_Simulated_CPHash(b *testing.B) {
	b.ReportAllocs()
	spec := workload.Default(1 << 20)
	s := simhash.MustCPHash(simhash.CPConfig{Spec: spec, LRU: true})
	s.Preload()
	opsPerRound := 80 * 512
	rounds := b.N/opsPerRound + 1
	b.ResetTimer()
	r := s.Run(1, rounds)
	b.StopTimer()
	cl, sv := r.ClientPerOp(), r.ServerPerOp()
	b.ReportMetric(cl.Cycles, "client-cycles/op")
	b.ReportMetric(cl.L2Miss, "client-L2miss/op")
	b.ReportMetric(cl.L3Miss, "client-L3miss/op")
	b.ReportMetric(sv.Cycles, "server-cycles/op")
	b.ReportMetric(sv.L3Miss, "server-L3miss/op")
	b.ReportMetric(r.ThroughputQPS(), "sim-queries/s")
}

func BenchmarkFig6_Simulated_LockHash(b *testing.B) {
	b.ReportAllocs()
	spec := workload.Default(1 << 20)
	s := simhash.MustLockHash(simhash.LockConfig{Spec: spec, LRU: true})
	s.Preload()
	opsPerRound := 160 * 8
	rounds := b.N/opsPerRound + 1
	b.ResetTimer()
	r := s.Run(1, rounds)
	b.StopTimer()
	cl := r.ClientPerOp()
	b.ReportMetric(cl.Cycles, "cycles/op")
	b.ReportMetric(cl.L2Miss, "L2miss/op")
	b.ReportMetric(cl.L3Miss, "L3miss/op")
	b.ReportMetric(r.ThroughputQPS(), "sim-queries/s")
}

// BenchmarkFig7_Breakdown reports the per-function miss rows (Figure 7).
func BenchmarkFig7_Breakdown(b *testing.B) {
	b.ReportAllocs()
	spec := workload.Default(1 << 20)
	s := simhash.MustCPHash(simhash.CPConfig{Spec: spec, LRU: true})
	s.Preload()
	rounds := b.N/(80*512) + 1
	b.ResetTimer()
	r := s.Run(1, rounds)
	b.StopTimer()
	send := r.TagPerOp(r.ClientThreads, simhash.TagSend)
	recv := r.TagPerOp(r.ClientThreads, simhash.TagRecvResp)
	data := r.TagPerOp(r.ClientThreads, simhash.TagData)
	b.ReportMetric(send.L3Miss, "send-L3/op")
	b.ReportMetric(recv.L3Miss, "recv-L3/op")
	b.ReportMetric(data.L3Miss, "data-L3/op")
}

// BenchmarkFig11_Sockets reports simulated per-thread throughput per socket
// count (Figure 11's series).
func BenchmarkFig11_Sockets(b *testing.B) {
	for _, sockets := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sockets=%d", sockets), func(b *testing.B) {
			b.ReportAllocs()
			m := topology.PaperMachine()
			m.Sockets = sockets
			spec := workload.Default(1 << 20)
			s := simhash.MustCPHash(simhash.CPConfig{Machine: m, Spec: spec, LRU: true})
			s.Preload()
			rounds := b.N/(m.Cores()*512) + 1
			b.ResetTimer()
			r := s.Run(1, rounds)
			b.StopTimer()
			b.ReportMetric(r.PerThreadQPS(), "sim-queries/s/thread")
		})
	}
}

// BenchmarkFig12_Configs reports the three Figure 12 configurations.
func BenchmarkFig12_Configs(b *testing.B) {
	spec := workload.Default(1 << 20)
	run := func(b *testing.B, m topology.Machine, clients, servers []int) {
		b.ReportAllocs()
		s := simhash.MustCPHash(simhash.CPConfig{
			Machine: m, Spec: spec, LRU: true,
			ClientThreads: clients, ServerThreads: servers,
		})
		s.Preload()
		rounds := b.N/(len(clients)*512) + 1
		b.ResetTimer()
		r := s.Run(1, rounds)
		b.StopTimer()
		b.ReportMetric(r.ThroughputQPS(), "sim-queries/s")
	}
	full := topology.PaperMachine()
	b.Run("160t-80c", func(b *testing.B) {
		cl, sv := simhash.PaperThreads(full)
		run(b, full, cl, sv)
	})
	b.Run("80t-80c", func(b *testing.B) {
		var cl, sv []int
		for c := 0; c < full.Cores(); c++ {
			tid := full.ThreadID(c/full.CoresPerSocket, c%full.CoresPerSocket, 0)
			if c%2 == 0 {
				cl = append(cl, tid)
			} else {
				sv = append(sv, tid)
			}
		}
		run(b, full, cl, sv)
	})
	b.Run("80t-40c", func(b *testing.B) {
		half := full
		half.Sockets = 4
		cl, sv := simhash.PaperThreads(half)
		run(b, half, cl, sv)
	})
}

// --- TCP benches (Figures 13, 14) ---

// benchTCP drives b.N operations at a server via the load generator.
func benchTCP(b *testing.B, addrs []string, spec workload.Spec) {
	b.Helper()
	b.ReportAllocs()
	conns := 2
	res, err := loadgen.Run(loadgen.Config{
		Addrs:      addrs,
		Conns:      conns,
		Pipeline:   64,
		Spec:       spec,
		OpsPerConn: b.N/conns + 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput(), "queries/s")
}

func BenchmarkFig13_CPServer(b *testing.B) {
	spec := workload.Default(1 << 20)
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: partition.CapacityForValues(spec.NumKeys(), spec.ValueSize),
		MaxClients:    2,
		Seed:          1,
	})
	defer table.Close()
	s, err := kvserver.Serve(kvserver.Config{
		Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewCPHashBackend(table),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	benchTCP(b, []string{s.Addr()}, spec)
}

func BenchmarkFig13_LockServer(b *testing.B) {
	spec := workload.Default(1 << 20)
	table := lockhash.MustNew(lockhash.Config{
		CapacityBytes: partition.CapacityForValues(spec.NumKeys(), spec.ValueSize),
		Seed:          1,
	})
	s, err := kvserver.Serve(kvserver.Config{
		Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewLockHashBackend(table),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	benchTCP(b, []string{s.Addr()}, spec)
}

func BenchmarkFig14_Memcached(b *testing.B) {
	spec := workload.Default(1 << 20)
	cluster, err := memcache.ServeCluster(2, partition.CapacityForValues(spec.NumKeys(), spec.ValueSize))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	b.ResetTimer()
	benchTCP(b, cluster.Addrs(), spec)
}

// --- ablations ---

// BenchmarkRingDesigns_SingleSlot vs _Buffered: the §3.4 message-passing
// design comparison.
func BenchmarkRingDesigns_SingleSlot(b *testing.B) {
	b.ReportAllocs()
	var s ring.SingleSlot[uint64]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			s.Recv()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Send(uint64(i))
	}
	<-done
}

func BenchmarkRingDesigns_Buffered(b *testing.B) {
	b.ReportAllocs()
	r := ring.MustSPSC[uint64](4096, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]uint64, 64)
		got := 0
		for got < b.N {
			n := r.ConsumeBatch(buf)
			if n == 0 {
				runtime.Gosched() // single-CPU hosts need the producer on
				continue
			}
			got += n
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ProduceSpin(uint64(i))
	}
	r.Flush()
	<-done
}

// BenchmarkBatchSize sweeps the client pipeline depth (§6.1 reports best
// throughput between 512 and 8,192 outstanding requests).
func BenchmarkBatchSize(b *testing.B) {
	for _, depth := range []int{8, 64, 512, 4096} {
		b.Run(fmt.Sprintf("pipeline=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			spec := workload.Default(1 << 20)
			t := core.MustNew(core.Config{
				Partitions:    2,
				CapacityBytes: partition.CapacityForValues(spec.NumKeys(), spec.ValueSize),
				MaxClients:    1,
				RingCapacity:  8192,
				Seed:          1,
			})
			defer t.Close()
			c := t.MustClient(0)
			defer c.Close()
			c.SetPipeline(depth)
			g := workload.MustGenerator(spec)
			ops := make([]*core.Op, 0, depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, key := g.Next()
				ops = append(ops, c.LookupAsync(key))
				if len(ops) == depth {
					c.WaitAll()
					for _, o := range ops {
						c.Release(o)
					}
					ops = ops[:0]
				}
			}
			c.WaitAll()
			for _, o := range ops {
				c.Release(o)
			}
		})
	}
}

// BenchmarkStringTable covers the §8.2 arbitrary-key extension.
func BenchmarkStringTable(b *testing.B) {
	b.ReportAllocs()
	lt := MustNewLocked(Options{Capacity: 32 << 20})
	st := NewStringTable(lt)
	for i := 0; i < 1024; i++ {
		st.Put(fmt.Sprintf("key-%04d", i), []byte("0123456789abcdef"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(fmt.Sprintf("key-%04d", i%1024), nil); !ok {
			b.Fatal("miss")
		}
	}
}
