// The faults experiment: the latency-under-fault scenario matrix. Each
// cell boots a fresh 3-member replicated cluster behind a seeded
// chaos.Director, drives read-back-confirmed writers through warmup /
// fault / heal / settle, and reports throughput, tail latency, and
// time-to-recovery. The run fails hard on any acked-write loss or an
// unexpected promotion count — the same invariants the chaoslab
// property tests enforce under -race.

package main

import (
	"fmt"
	"os"
	"time"

	"cphash/internal/chaoslab"
)

func faultsExperiment() {
	fmt.Println("faults: latency under injected faults (3 members, -replicas 2, seeded director)")
	fmt.Printf("%-16s %10s %8s %12s %10s %10s %12s %6s\n",
		"scenario", "qps", "errors", "p99", "p999", "ttr", "promotions", "loss")

	rc := chaoslab.RunConfig{
		Seed:     *faultSeed,
		Writers:  3,
		Warmup:   300 * time.Millisecond,
		FaultFor: time.Second,
		Settle:   1200 * time.Millisecond,
	}
	failed := false
	for _, sc := range chaoslab.Scenarios() {
		dir, err := os.MkdirTemp("", "cpbench-faults-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(1)
		}
		rc.Dir = dir
		res, err := chaoslab.Run(sc, rc)
		os.RemoveAll(dir)
		if err != nil {
			failed = true
			fmt.Printf("%-16s FAILED: %v\n", sc.Name, err)
			continue
		}
		fmt.Printf("%-16s %10.0f %8d %12v %10v %12v %12d %6d\n",
			sc.Name, res.QPS, res.Errors,
			time.Duration(res.P99Ns).Round(time.Microsecond),
			time.Duration(res.P999Ns).Round(time.Microsecond),
			res.TTR().Round(time.Millisecond),
			res.Promotions, res.Lost+res.Stale)
		record("faults", map[string]any{
			"scenario":    res.Scenario,
			"seed":        res.Seed,
			"errors":      res.Errors,
			"p50Ns":       res.P50Ns,
			"p999Ns":      res.P999Ns,
			"ttrNs":       res.TTRNs,
			"promotions":  res.Promotions,
			"lostWrites":  res.Lost,
			"staleWrites": res.Stale,
		}, res.QPS, time.Duration(res.P99Ns))
	}
	fmt.Println()
	if failed {
		fmt.Fprintln(os.Stderr, "faults: scenario invariants violated")
		os.Exit(1)
	}
}
