// Command cpbench runs the CPHash paper's evaluation natively — real
// goroutines, real rings, real TCP — on the host machine. Absolute numbers
// depend on the host (on a laptop they will be far from an 80-core
// server); run cpsim for the topology-exact simulated versions.
//
//	cpbench -experiment fig5      # native throughput vs working-set size
//	cpbench -experiment fig8      # same, random eviction
//	cpbench -experiment fig9      # throughput vs table capacity
//	cpbench -experiment fig10     # throughput vs INSERT fraction
//	cpbench -experiment fig11     # throughput vs goroutine count
//	cpbench -experiment fig13     # CPSERVER vs LOCKSERVER over TCP
//	cpbench -experiment fig14     # servers vs memcached-style per core
//	cpbench -experiment ablation-ring   # §3.4: single slot vs buffered ring
//	cpbench -experiment ablation-batch  # §6.1: pipeline-depth sensitivity
//	cpbench -experiment hotpath   # wire-level GET/SET mix: qps, p99, allocs/op
//	cpbench -experiment replication # hotpath with a live follower: streaming overhead
//	cpbench -experiment obs       # scrape-driven server-side latency + slot heat
//	cpbench -experiment faults    # latency under injected faults + time-to-recovery
//	cpbench -experiment all
//
// The hotpath experiment is the steady-state perf gate: a 90/10 GET/SET
// mix over loopback TCP with allocation-free client loops, reporting
// whole-process allocations per operation from runtime.ReadMemStats
// deltas — the number that must stay at zero for the batching win to
// survive GC pressure. -bufsize sweeps the connection buffer size
// (Config.BufferSize on the server, DialBuf on the client); pass
// -bufsize sweep for a built-in sweep.
//
// With -json out.json, every measurement is also written as a
// machine-readable record — {experiment, config, qps, p99_ns} — so CI can
// archive a benchmark trajectory across commits (p99 is reported for the
// TCP experiments, which measure a latency distribution; table-level
// benchmarks record 0).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"cphash/internal/core"
	"cphash/internal/hotpath"
	"cphash/internal/kvserver"
	"cphash/internal/loadgen"
	"cphash/internal/lockhash"
	"cphash/internal/memcache"
	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/perf"
	"cphash/internal/persist"
	"cphash/internal/replica"
	"cphash/internal/ring"
	"cphash/internal/sizeparse"
	"cphash/internal/workload"
)

var (
	experiment = flag.String("experiment", "all", "experiment to run")
	ops        = flag.Int("ops", 200000, "operations per configuration")
	clients    = flag.Int("clients", 2, "client goroutines for table benchmarks")
	servers    = flag.Int("partitions", 2, "CPHASH partitions (server goroutines)")
	jsonOut    = flag.String("json", "", "write machine-readable results (JSON) to this file")
	bufSize    = flag.String("bufsize", "64KiB", "hotpath connection buffer size (server and client side), or \"sweep\"")
	faultSeed  = flag.Int64("fault-seed", 1, "chaos director + workload seed for the faults experiment")
)

// benchResult is one machine-readable measurement.
type benchResult struct {
	Experiment string         `json:"experiment"`
	Config     map[string]any `json:"config"`
	QPS        float64        `json:"qps"`
	P99Ns      int64          `json:"p99_ns"`
}

var results []benchResult

// record appends one measurement to the -json document.
func record(experiment string, cfg map[string]any, qps float64, p99 time.Duration) {
	results = append(results, benchResult{Experiment: experiment, Config: cfg, QPS: qps, P99Ns: int64(p99)})
}

// writeResults emits the -json document (nothing without the flag).
func writeResults() {
	if *jsonOut == "" {
		return
	}
	doc := map[string]any{
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"ops":        *ops,
		"results":    results,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err == nil {
		err = os.WriteFile(*jsonOut, append(raw, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpbench: writing %s: %v\n", *jsonOut, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d results to %s\n", len(results), *jsonOut)
}

func main() {
	flag.Parse()
	fmt.Printf("host: GOMAXPROCS=%d — native mode; see cpsim for the paper-machine simulation\n\n",
		runtime.GOMAXPROCS(0))
	run := func(name string, f func()) {
		if *experiment == "all" || *experiment == name {
			f()
		}
	}
	known := map[string]bool{
		"fig5": true, "fig8": true, "fig9": true, "fig10": true, "fig11": true,
		"fig13": true, "fig14": true, "ablation-ring": true, "ablation-batch": true,
		"ablation-dynamic": true, "hotpath": true, "replication": true, "obs": true,
		"faults": true,
		"all":    true,
	}
	if !known[*experiment] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run("fig5", func() { figWS("fig5", "Figure 5 (native): throughput vs working set (LRU)", partition.EvictLRU) })
	run("fig8", func() { figWS("fig8", "Figure 8 (native): throughput vs working set (random)", partition.EvictRandom) })
	run("fig9", fig9)
	run("fig10", fig10)
	run("fig11", fig11)
	run("fig13", fig13)
	run("fig14", fig14)
	run("ablation-ring", ablationRing)
	run("ablation-batch", ablationBatch)
	run("ablation-dynamic", ablationDynamic)
	run("hotpath", hotpathExperiment)
	run("replication", replicationExperiment)
	run("obs", obsExperiment)
	run("faults", faultsExperiment)
	writeResults()
}

// runCPHash measures native CPHASH throughput for a spec.
func runCPHash(spec workload.Spec, capacityValues int, policy partition.EvictionPolicy, nClients, nParts, pipeline int) perf.Throughput {
	t := core.MustNew(core.Config{
		Partitions:    nParts,
		CapacityBytes: partition.CapacityForValues(capacityValues, spec.ValueSize),
		MaxClients:    nClients,
		Policy:        policy,
		Seed:          1,
	})
	defer t.Close()
	perClient := *ops / nClients
	done := make(chan struct{})
	start := time.Now()
	for ci := 0; ci < nClients; ci++ {
		go func(ci int) {
			defer func() { done <- struct{}{} }()
			c := t.MustClient(ci)
			defer c.Close()
			if pipeline > 0 {
				c.SetPipeline(pipeline)
			}
			sp := spec
			sp.Seed = spec.Seed + uint64(ci)*31 + 1
			g := workload.MustGenerator(sp)
			val := make([]byte, spec.ValueSize)
			inflight := make([]*core.Op, 0, 256)
			for i := 0; i < perClient; i++ {
				kind, key := g.Next()
				switch kind {
				case workload.Insert:
					// Synchronous put keeps the value buffer reusable.
					c.Put(key, sp.FillValue(key, val))
				case workload.Lookup:
					inflight = append(inflight, c.LookupAsync(key))
					if len(inflight) == cap(inflight) {
						c.WaitAll()
						for _, o := range inflight {
							c.Release(o)
						}
						inflight = inflight[:0]
					}
				}
			}
			c.WaitAll()
			for _, o := range inflight {
				c.Release(o)
			}
		}(ci)
	}
	for ci := 0; ci < nClients; ci++ {
		<-done
	}
	return perf.Throughput{Ops: int64(perClient * nClients), Elapsed: time.Since(start)}
}

// runLockHash measures native LOCKHASH throughput for a spec.
func runLockHash(spec workload.Spec, capacityValues int, policy partition.EvictionPolicy, nThreads int) perf.Throughput {
	t := lockhash.MustNew(lockhash.Config{
		CapacityBytes: partition.CapacityForValues(capacityValues, spec.ValueSize),
		Policy:        policy,
		Seed:          1,
	})
	perThread := *ops / nThreads
	done := make(chan struct{})
	start := time.Now()
	for ti := 0; ti < nThreads; ti++ {
		go func(ti int) {
			defer func() { done <- struct{}{} }()
			sp := spec
			sp.Seed = spec.Seed + uint64(ti)*31 + 1
			g := workload.MustGenerator(sp)
			val := make([]byte, spec.ValueSize)
			var dst []byte
			for i := 0; i < perThread; i++ {
				kind, key := g.Next()
				switch kind {
				case workload.Insert:
					t.Put(key, sp.FillValue(key, val))
				case workload.Lookup:
					dst, _ = t.Get(key, dst[:0])
				}
			}
		}(ti)
	}
	for ti := 0; ti < nThreads; ti++ {
		<-done
	}
	return perf.Throughput{Ops: int64(perThread * nThreads), Elapsed: time.Since(start)}
}

func figWS(key, title string, policy partition.EvictionPolicy) {
	fmt.Println("===", title, "===")
	fmt.Printf("%-10s %16s %16s %8s\n", "ws", "CPHash q/s", "LockHash q/s", "ratio")
	for _, ws := range []int{100 << 10, 1 << 20, 16 << 20} {
		spec := workload.Default(ws)
		cp := runCPHash(spec, spec.NumKeys(), policy, *clients, *servers, 0)
		lh := runLockHash(spec, spec.NumKeys(), policy, *clients+*servers)
		record(key, map[string]any{"design": "cphash", "ws": ws, "eviction": policy.String()}, cp.PerSecond(), 0)
		record(key, map[string]any{"design": "lockhash", "ws": ws, "eviction": policy.String()}, lh.PerSecond(), 0)
		fmt.Printf("%-10s %16.3g %16.3g %8.2f\n",
			perf.FormatBytes(ws), cp.PerSecond(), lh.PerSecond(), cp.PerSecond()/lh.PerSecond())
	}
	fmt.Println()
}

func fig9() {
	fmt.Println("=== Figure 9 (native): throughput vs table capacity (4 MB ws) ===")
	ws := 4 << 20
	spec := workload.Default(ws)
	fmt.Printf("%-10s %16s %16s\n", "capacity", "CPHash q/s", "LockHash q/s")
	for _, frac := range []int{1, 4, 16} {
		capVals := spec.NumKeys() / frac
		cp := runCPHash(spec, capVals, partition.EvictLRU, *clients, *servers, 0)
		lh := runLockHash(spec, capVals, partition.EvictLRU, *clients+*servers)
		record("fig9", map[string]any{"design": "cphash", "ws": ws, "capacityValues": capVals}, cp.PerSecond(), 0)
		record("fig9", map[string]any{"design": "lockhash", "ws": ws, "capacityValues": capVals}, lh.PerSecond(), 0)
		fmt.Printf("%-10s %16.3g %16.3g\n",
			perf.FormatBytes(capVals*8), cp.PerSecond(), lh.PerSecond())
	}
	fmt.Println()
}

func fig10() {
	fmt.Println("=== Figure 10 (native): throughput vs INSERT fraction (4 MB ws) ===")
	ws := 4 << 20
	fmt.Printf("%-8s %16s %16s\n", "insert", "CPHash q/s", "LockHash q/s")
	for _, ratio := range []float64{0, 0.3, 0.6, 1.0} {
		spec := workload.Default(ws)
		spec.InsertRatio = ratio
		cp := runCPHash(spec, spec.NumKeys(), partition.EvictLRU, *clients, *servers, 0)
		lh := runLockHash(spec, spec.NumKeys(), partition.EvictLRU, *clients+*servers)
		record("fig10", map[string]any{"design": "cphash", "ws": ws, "insertRatio": ratio}, cp.PerSecond(), 0)
		record("fig10", map[string]any{"design": "lockhash", "ws": ws, "insertRatio": ratio}, lh.PerSecond(), 0)
		fmt.Printf("%-8.1f %16.3g %16.3g\n", ratio, cp.PerSecond(), lh.PerSecond())
	}
	fmt.Println()
}

func fig11() {
	fmt.Println("=== Figure 11 (native): per-goroutine throughput vs goroutines (1 MB ws) ===")
	spec := workload.Default(1 << 20)
	fmt.Printf("%-10s %18s %18s\n", "goroutines", "CPHash q/s/thr", "LockHash q/s/thr")
	max := runtime.GOMAXPROCS(0) * 2
	if max < 4 {
		max = 4
	}
	for n := 2; n <= max; n *= 2 {
		cp := runCPHash(spec, spec.NumKeys(), partition.EvictLRU, n/2, n/2, 0)
		lh := runLockHash(spec, spec.NumKeys(), partition.EvictLRU, n)
		record("fig11", map[string]any{"design": "cphash", "goroutines": n, "qpsPerThread": cp.PerSecondPerThread(n)}, cp.PerSecond(), 0)
		record("fig11", map[string]any{"design": "lockhash", "goroutines": n, "qpsPerThread": lh.PerSecondPerThread(n)}, lh.PerSecond(), 0)
		fmt.Printf("%-10d %18.3g %18.3g\n", n, cp.PerSecondPerThread(n), lh.PerSecondPerThread(n))
	}
	fmt.Println()
}

// tcpThroughput measures a loadgen run against addrs, returning the
// queries/sec and the p99 of the per-window round-trip distribution.
func tcpThroughput(addrs []string, spec workload.Spec) (float64, time.Duration) {
	res, err := loadgen.Run(loadgen.Config{
		Addrs:      addrs,
		Conns:      4,
		Pipeline:   64,
		Spec:       spec,
		OpsPerConn: *ops / 8,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 0, 0
	}
	return res.Throughput(), time.Duration(res.Latency.Quantile(0.99))
}

func fig13() {
	fmt.Println("=== Figure 13 (native TCP): CPSERVER vs LOCKSERVER over working sets ===")
	fmt.Printf("%-10s %16s %16s %8s\n", "ws", "CPServer q/s", "LockServer q/s", "ratio")
	for _, ws := range []int{64 << 10, 1 << 20, 8 << 20} {
		spec := workload.Default(ws)
		capBytes := partition.CapacityForValues(spec.NumKeys(), spec.ValueSize)

		cpTable := core.MustNew(core.Config{Partitions: *servers, CapacityBytes: capBytes, MaxClients: 2, Seed: 1})
		cpSrv, err := kvserver.Serve(kvserver.Config{Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewCPHashBackend(cpTable)})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		cpQPS, cpP99 := tcpThroughput([]string{cpSrv.Addr()}, spec)
		cpSrv.Close()
		cpTable.Close()

		lhTable := lockhash.MustNew(lockhash.Config{CapacityBytes: capBytes, Seed: 1})
		lhSrv, err := kvserver.Serve(kvserver.Config{Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewLockHashBackend(lhTable)})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		lhQPS, lhP99 := tcpThroughput([]string{lhSrv.Addr()}, spec)
		lhSrv.Close()

		record("fig13", map[string]any{"design": "cpserver", "ws": ws}, cpQPS, cpP99)
		record("fig13", map[string]any{"design": "lockserver", "ws": ws}, lhQPS, lhP99)
		fmt.Printf("%-10s %16.3g %16.3g %8.2f\n", perf.FormatBytes(ws), cpQPS, lhQPS, cpQPS/lhQPS)
	}
	fmt.Println()
}

func fig14() {
	fmt.Println("=== Figure 14 (native TCP): per-core throughput vs memcached-style ===")
	spec := workload.Default(1 << 20)
	capBytes := partition.CapacityForValues(spec.NumKeys(), spec.ValueSize)
	fmt.Printf("%-10s %16s %16s %16s\n", "instances", "CPServer q/s", "LockServer q/s", "Memcached q/s")
	for _, n := range []int{1, 2, 4} {
		cpTable := core.MustNew(core.Config{Partitions: *servers, CapacityBytes: capBytes, MaxClients: n, Seed: 1})
		cpSrv, _ := kvserver.Serve(kvserver.Config{Addr: "127.0.0.1:0", Workers: n, NewBackend: kvserver.NewCPHashBackend(cpTable)})
		cpQPS, cpP99 := tcpThroughput([]string{cpSrv.Addr()}, spec)
		cpSrv.Close()
		cpTable.Close()

		lhTable := lockhash.MustNew(lockhash.Config{CapacityBytes: capBytes, Seed: 1})
		lhSrv, _ := kvserver.Serve(kvserver.Config{Addr: "127.0.0.1:0", Workers: n, NewBackend: kvserver.NewLockHashBackend(lhTable)})
		lhQPS, lhP99 := tcpThroughput([]string{lhSrv.Addr()}, spec)
		lhSrv.Close()

		cluster, _ := memcache.ServeCluster(n, capBytes)
		mcQPS, mcP99 := tcpThroughput(cluster.Addrs(), spec)
		cluster.Close()

		record("fig14", map[string]any{"design": "cpserver", "instances": n}, cpQPS, cpP99)
		record("fig14", map[string]any{"design": "lockserver", "instances": n}, lhQPS, lhP99)
		record("fig14", map[string]any{"design": "memcached", "instances": n}, mcQPS, mcP99)
		fmt.Printf("%-10d %16.3g %16.3g %16.3g\n", n, cpQPS, lhQPS, mcQPS)
	}
	fmt.Println()
}

func ablationRing() {
	fmt.Println("=== §3.4 ablation: single-value slot vs buffered ring (round trips) ===")
	const n = 500000

	var slot ring.SingleSlot[uint64]
	startS := time.Now()
	go func() {
		for i := 0; i < n; i++ {
			slot.Recv()
		}
	}()
	for i := 0; i < n; i++ {
		slot.Send(uint64(i))
	}
	slotRate := float64(n) / time.Since(startS).Seconds()

	r := ring.MustSPSC[uint64](4096, 8)
	done := make(chan struct{})
	startR := time.Now()
	go func() {
		defer close(done)
		got := 0
		for got < n {
			if _, ok := r.Consume(); ok {
				got++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < n; i++ {
		r.ProduceSpin(uint64(i))
	}
	r.Flush()
	<-done
	ringRate := float64(n) / time.Since(startR).Seconds()

	record("ablation-ring", map[string]any{"design": "single-slot"}, slotRate, 0)
	record("ablation-ring", map[string]any{"design": "buffered-ring"}, ringRate, 0)
	fmt.Printf("single slot:   %10.3g msgs/sec\n", slotRate)
	fmt.Printf("buffered ring: %10.3g msgs/sec (%.1f× — batching wins under load, as §3.4 predicts)\n\n",
		ringRate, ringRate/slotRate)
}

func ablationBatch() {
	fmt.Println("=== §6.1 ablation: pipeline-depth sensitivity (1 MB ws) ===")
	spec := workload.Default(1 << 20)
	fmt.Printf("%-10s %16s\n", "pipeline", "CPHash q/s")
	for _, depth := range []int{8, 64, 512, 2048} {
		cp := runCPHash(spec, spec.NumKeys(), partition.EvictLRU, *clients, *servers, depth)
		record("ablation-batch", map[string]any{"design": "cphash", "pipeline": depth}, cp.PerSecond(), 0)
		fmt.Printf("%-10d %16.3g\n", depth, cp.PerSecond())
	}
	fmt.Println()
}

// --- hotpath: the steady-state perf gate ---

const (
	hotpathConns   = 4
	hotpathWorkers = 2
)

// hotpathConnLoop dials once, runs a warmup round of the canonical
// internal/hotpath 90/10 GET/SET mix, waits at the measurement barrier,
// then runs the measured round on the SAME warmed connection, recording
// per-window round-trip latency. Keeping the connection across phases is
// what makes the whole-process allocation delta a steady-state number:
// no dial, bufio, connState, or cold-arena setup lands inside the timed
// region. The loop body is allocation-free.
func hotpathConnLoop(addr string, size, connOps int, seed uint64, hist *perf.Histogram, warmed *sync.WaitGroup, start <-chan struct{}) error {
	bw, br, closer, err := kvserver.DialBuf(addr, size)
	if err != nil {
		warmed.Done()
		return err
	}
	defer closer.Close()
	val := make([]byte, hotpath.ValueSize)
	dst := make([]byte, 0, 2*hotpath.ValueSize)
	warmupOps := connOps / 4
	if warmupOps < 4*hotpath.Window {
		warmupOps = 4 * hotpath.Window
	}
	dst, err = hotpath.Mix(bw, br, warmupOps, hotpath.Window, seed, val, dst, nil)
	warmed.Done()
	if err != nil {
		return err
	}
	<-start
	windowStart := time.Now()
	onWindow := func() {
		now := time.Now()
		hist.Record(now.Sub(windowStart).Nanoseconds())
		windowStart = now
	}
	_, err = hotpath.Mix(bw, br, connOps, hotpath.Window, seed, val, dst, onWindow)
	return err
}

// hotpathRun measures one buffer-size configuration: qps, window p99,
// and allocations per operation across the whole process. With
// persistDir non-empty the server runs the full durability pipeline
// (sync=interval) rooted there and the measurement is recorded as the
// design "cpserver+persist" — the number whose ratio to the bare run is
// the durability overhead the trajectory tracks. Returns ok=false on
// failure; the caller picks the best of several runs before recording,
// so one scheduler hiccup cannot poison the trajectory.
//
// With replicate true (requires persistDir), a replication source
// streams the pipeline's tail to an in-process follower applying into a
// second table — the design "cpserver+replica", whose ratio to the
// persist-only number is the replication overhead.
func hotpathRun(size int, persistDir string, replicate bool) (res hotpathResult, ok bool) {
	design := "cpserver"
	var pipe *persist.Pipeline
	var sink func(int) partition.ChangeSink
	if persistDir != "" {
		design = "cpserver+persist"
		var err error
		pipe, err = persist.Open(persist.Config{Dir: persistDir, Policy: persist.SyncInterval})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return res, false
		}
		sink = func(p int) partition.ChangeSink { return pipe.Appender(p) }
	}
	table := core.MustNew(core.Config{
		Partitions:    *servers,
		CapacityBytes: partition.CapacityForValues(2*hotpath.Keys, hotpath.ValueSize),
		MaxClients:    hotpathWorkers,
		Seed:          1,
		Sink:          sink,
	})
	defer table.Close()
	if pipe != nil {
		pipe.SetSource(persist.CoreSource(table))
		if err := pipe.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return res, false
		}
		// Serve owns the pipeline lifecycle once it starts; until (and
		// unless) that succeeds, shut it down here so a failed run never
		// leaks persister goroutines into the remaining measurements.
		defer func() {
			if !ok {
				pipe.Close()
			}
		}()
	}
	var src *replica.Source
	var fl *replica.Follower
	if replicate {
		design = "cpserver+replica"
		var err error
		// A backlog small enough that the warmup rounds (~10% SETs)
		// cycle every slot: the tail ring reuses slot buffers in place,
		// so the measured window is allocation-free only once every slot
		// has been written at the workload's record size.
		src, err = replica.NewSource(replica.SourceConfig{Pipe: pipe, Addr: "127.0.0.1:0", BacklogRecords: 2048})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return res, false
		}
		defer func() {
			if !ok {
				src.Close()
			}
		}()
		ftable := lockhash.MustNew(lockhash.Config{
			Partitions:    *servers,
			CapacityBytes: partition.CapacityForValues(2*hotpath.Keys, hotpath.ValueSize),
		})
		fl, err = replica.StartFollower(replica.FollowerConfig{
			Source: src.Addr(),
			Name:   "bench",
			Apply:  replica.NewLockHashApplier(ftable),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return res, false
		}
		defer fl.Close()
	}
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:        "127.0.0.1:0",
		Workers:     hotpathWorkers,
		BufferSize:  size,
		NewBackend:  kvserver.NewCPHashBackend(table),
		Persist:     pipe,
		Replication: src,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return res, false
	}
	defer srv.Close()

	// Preload the working set, then warm every pooled buffer with one
	// unmeasured round so the measurement sees the steady state.
	bw, _, closer, err := kvserver.DialBuf(srv.Addr(), size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return res, false
	}
	val := make([]byte, hotpath.ValueSize)
	if err := hotpath.Preload(bw, val); err != nil {
		fmt.Fprintln(os.Stderr, err)
		closer.Close()
		return res, false
	}
	closer.Close()

	connOps := *ops / hotpathConns
	if connOps < hotpath.Window {
		connOps = hotpath.Window
	}
	// Every connection dials and warms up once, parks at the barrier, and
	// runs its measured round on the same connection — so the MemStats
	// window brackets pure steady state.
	hists := make([]*perf.Histogram, hotpathConns)
	for i := range hists {
		hists[i] = perf.NewHistogram()
	}
	var warmed sync.WaitGroup
	warmed.Add(hotpathConns)
	startGate := make(chan struct{})
	errs := make(chan error, hotpathConns)
	for ci := 0; ci < hotpathConns; ci++ {
		go func(ci int) {
			errs <- hotpathConnLoop(srv.Addr(), size, connOps, uint64(ci)*0x9e3779b9+1, hists[ci], &warmed, startGate)
		}(ci)
	}
	warmed.Wait()
	if src != nil && !waitSynced(src, 10*time.Second) {
		fmt.Fprintln(os.Stderr, "cpbench: follower did not reach the tail watermark")
		return res, false
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	close(startGate)
	var firstErr error
	for ci := 0; ci < hotpathConns; ci++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, firstErr)
		return res, false
	}

	total := int64(connOps * hotpathConns)
	allocsPerOp := float64(after.Mallocs-before.Mallocs) / float64(total)
	hist := perf.NewHistogram()
	for _, h := range hists {
		hist.Merge(h)
	}
	qps := float64(total) / elapsed.Seconds()
	p99 := time.Duration(hist.Quantile(0.99))
	return hotpathResult{design: design, size: size, qps: qps, p99: p99, allocs: allocsPerOp}, true
}

// hotpathResult is one hotpath measurement.
type hotpathResult struct {
	design string
	size   int
	qps    float64
	p99    time.Duration
	allocs float64
}

// hotpathBest runs one configuration hotpathRuns times and records the
// best run. Measurement windows are tens of milliseconds, so on a busy
// (or single-core) host individual runs swing wildly with scheduler
// luck; the best of several is the stable, comparable number — the same
// reason `go test -bench` reports are taken over multiple -count runs.
const hotpathRuns = 5

func hotpathBest(exp string, size int, persistDir string, replicate bool) float64 {
	var b hotpathResult
	for i := 0; i < hotpathRuns; i++ {
		if r, ok := hotpathRun(size, persistDir, replicate); ok && r.qps > b.qps {
			b = r
		}
	}
	if b.qps == 0 {
		return 0
	}
	record(exp, map[string]any{
		"design":      b.design,
		"bufsize":     b.size,
		"conns":       hotpathConns,
		"window":      hotpath.Window,
		"getRatio":    0.9,
		"valueSize":   hotpath.ValueSize,
		"allocsPerOp": b.allocs,
		"bestOf":      hotpathRuns,
	}, b.qps, b.p99)
	fmt.Printf("%-18s %-10s %14.3g %12v %12.4f\n", b.design, perf.FormatBytes(b.size), b.qps, b.p99, b.allocs)
	return b.qps
}

// hotpathExperiment is the steady-state wire-level perf gate: 90/10
// GET/SET over loopback, reporting throughput, p99 window latency, and
// allocs/op. Its JSON records seed the BENCH_hotpath.json trajectory CI
// archives.
func hotpathExperiment() {
	fmt.Println("=== hotpath: wire-level 90/10 GET/SET, allocation-gated ===")
	fmt.Printf("%-18s %-10s %14s %12s %12s\n", "design", "bufsize", "queries/s", "window p99", "allocs/op")
	sizes := []int{16 << 10, 64 << 10, 256 << 10}
	if *bufSize != "sweep" {
		n, err := sizeparse.Parse(*bufSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpbench: -bufsize: %v\n", err)
			os.Exit(2)
		}
		sizes = []int{n}
	}
	for _, size := range sizes {
		bare := hotpathBest("hotpath", size, "", false)
		dir, err := os.MkdirTemp("", "cpbench-persist-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		durable := hotpathBest("hotpath", size, dir, false)
		os.RemoveAll(dir)
		if bare > 0 && durable > 0 {
			fmt.Printf("  durability overhead at %s: %.1f%% qps (WAL on, sync=interval, best of %d)\n",
				perf.FormatBytes(size), 100*(1-durable/bare), hotpathRuns)
		}
	}
	fmt.Println()
}

// waitSynced polls the source until its follower has completed the
// initial sync and acknowledged the current tail, so the measured window
// starts from replication steady state.
func waitSynced(src *replica.Source, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		tail := src.Tail()
		for _, ps := range src.Status() {
			if ps.Synced && ps.Acked >= tail {
				return true
			}
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// replicationExperiment measures the cost of the replication stack on
// the wire hot path: the same 90/10 GET/SET mix as the hotpath
// experiment, run bare, with the durability pipeline, and with the
// pipeline plus a live in-process follower (source backlog staging,
// frame compression, socket writes, follower applies). The two ratios it
// prints separate what durability costs from what shipping the tail to a
// replica adds on top.
func replicationExperiment() {
	fmt.Println("=== replication: hot-path overhead of a live follower ===")
	fmt.Printf("%-18s %-10s %14s %12s %12s\n", "design", "bufsize", "queries/s", "window p99", "allocs/op")
	size := 64 << 10
	if *bufSize != "sweep" {
		n, err := sizeparse.Parse(*bufSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpbench: -bufsize: %v\n", err)
			os.Exit(2)
		}
		size = n
	}
	bare := hotpathBest("replication", size, "", false)
	dir, err := os.MkdirTemp("", "cpbench-repl-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(dir)
	durable := hotpathBest("replication", size, dir, false)
	rdir, err := os.MkdirTemp("", "cpbench-repl-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(rdir)
	replicated := hotpathBest("replication", size, rdir, true)
	if bare > 0 && durable > 0 && replicated > 0 {
		fmt.Printf("  durability overhead at %s: %.1f%% qps (WAL on, sync=interval)\n",
			perf.FormatBytes(size), 100*(1-durable/bare))
		fmt.Printf("  replication overhead at %s: %.1f%% qps over persist-only (live follower, best of %d)\n",
			perf.FormatBytes(size), 100*(1-replicated/durable), hotpathRuns)
	}
	fmt.Println()
}

// obsExperiment measures the observability surface the way an operator
// consumes it: a CPSERVER with its /metrics registry, zipfian load, and
// a scraper polling the endpoint throughout the run. The recorded
// numbers are SERVER-SIDE — op latency quantiles reconstructed from the
// delta of the scraped histograms (exactly this run's operations) and
// the slot-heat skew (hottest slot's share relative to a uniform
// spread), the signal the README's hot-slot walkthrough reads. The JSON
// records seed the BENCH_obs.json trajectory CI archives.
func obsExperiment() {
	fmt.Println("=== obs: scrape-driven server-side latency and slot heat (zipfian) ===")
	spec := workload.Default(1 << 20)
	spec.Dist = workload.Zipfian
	table := core.MustNew(core.Config{
		Partitions:    *servers,
		CapacityBytes: partition.CapacityForValues(spec.NumKeys(), spec.ValueSize),
		MaxClients:    2,
		Seed:          1,
	})
	defer table.Close()
	srv, err := kvserver.Serve(kvserver.Config{Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewCPHashBackend(table)})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	reg.Register(func(e *obs.Expo) {
		labels := obs.Labels("instance", srv.Addr())
		srv.Collect(e, labels)
		table.Collect(e, labels)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	hsrv := &http.Server{Handler: reg.Handler()}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	scrape := func() (*obs.Scrape, error) {
		resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return obs.ParseText(resp.Body)
	}

	before, err := scrape()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	// Scrape at intervals while the load runs — the aggregation is lazy
	// and lock-free, so concurrent scrapes must neither stall traffic nor
	// return a malformed exposition.
	scrapes := 1
	stopScraper := make(chan struct{})
	scraperDone := make(chan error, 1)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopScraper:
				scraperDone <- nil
				return
			case <-tick.C:
				if _, err := scrape(); err != nil {
					scraperDone <- err
					return
				}
				scrapes++
			}
		}
	}()
	res, err := loadgen.Run(loadgen.Config{
		Addrs:      []string{srv.Addr()},
		Conns:      4,
		Pipeline:   64,
		Spec:       spec,
		OpsPerConn: *ops / 8,
	})
	close(stopScraper)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if err := <-scraperDone; err != nil {
		fmt.Fprintf(os.Stderr, "cpbench: mid-run scrape: %v\n", err)
		return
	}
	after, err := scrape()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	scrapes++

	d := after.Sub(before)
	p50, _ := d.Quantile("cphash_op_latency_ns", 0.5)
	p99, _ := d.Quantile("cphash_op_latency_ns", 0.99)
	p999, _ := d.Quantile("cphash_op_latency_ns", 0.999)
	// Slot-heat skew from the scraped per-slot counters: hottest slot's
	// ops × slots / total — 1.0 is perfectly uniform, obs.Slots is
	// everything on one slot.
	var totalOps, maxOps float64
	hotSlot := ""
	for _, k := range d.Keys() {
		if !strings.HasPrefix(k, "cphash_slot_ops_total{") {
			continue
		}
		v := d.Samples[k]
		totalOps += v
		if v > maxOps {
			maxOps = v
			hotSlot = k
		}
	}
	skew := 0.0
	if totalOps > 0 {
		skew = maxOps * float64(obs.Slots) / totalOps
	}
	record("obs", map[string]any{
		"design":       "cpserver",
		"dist":         "zipfian",
		"scrapes":      scrapes,
		"serverP50Ns":  p50,
		"serverP999Ns": p999,
		"slotHeatSkew": skew,
	}, res.Throughput(), time.Duration(p99))
	fmt.Printf("%-10s %14.3g q/s, %d scrapes\n", "cpserver", res.Throughput(), scrapes)
	fmt.Printf("server op latency: p50≤%.0f p99≤%.0f p999≤%.0f ns\n", p50, p99, p999)
	fmt.Printf("slot heat: skew %.1f× uniform, hottest %s\n\n", skew, hotSlot)
}

// ablationDynamic exercises the §8.1 extension: with the client count
// fixed, consolidate the partitions onto fewer server goroutines and watch
// throughput. On an oversubscribed host, fewer servers can *help* (less
// scheduling pressure), which is exactly the paper's motivation for
// adjusting the split dynamically to the workload.
func ablationDynamic() {
	fmt.Println("=== §8.1 ablation: dynamic server-thread consolidation (1 MB ws) ===")
	spec := workload.Default(1 << 20)
	nParts := 8
	fmt.Printf("%-16s %16s\n", "active servers", "CPHash q/s")
	for _, active := range []int{8, 4, 2, 1} {
		t := core.MustNew(core.Config{
			Partitions:    nParts,
			CapacityBytes: partition.CapacityForValues(spec.NumKeys(), spec.ValueSize),
			MaxClients:    *clients,
			Seed:          1,
		})
		if err := t.SetActiveServers(active); err != nil {
			fmt.Fprintln(os.Stderr, err)
			t.Close()
			return
		}
		perClient := *ops / *clients
		done := make(chan struct{})
		start := time.Now()
		for ci := 0; ci < *clients; ci++ {
			go func(ci int) {
				defer func() { done <- struct{}{} }()
				c := t.MustClient(ci)
				defer c.Close()
				sp := spec
				sp.Seed = spec.Seed + uint64(ci)*31 + 1
				g := workload.MustGenerator(sp)
				val := make([]byte, sp.ValueSize)
				var dst []byte
				for i := 0; i < perClient; i++ {
					kind, key := g.Next()
					if kind == workload.Insert {
						c.Put(key, sp.FillValue(key, val))
					} else {
						dst, _ = c.Get(key, dst[:0])
					}
				}
			}(ci)
		}
		for ci := 0; ci < *clients; ci++ {
			<-done
		}
		tput := perf.Throughput{Ops: int64(perClient * *clients), Elapsed: time.Since(start)}
		record("ablation-dynamic", map[string]any{"design": "cphash", "activeServers": active}, tput.PerSecond(), 0)
		fmt.Printf("%-16d %16.3g\n", active, tput.PerSecond())
		t.Close()
	}
	fmt.Println()
}
