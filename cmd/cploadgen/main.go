// Command cploadgen drives load at key/value cache servers speaking the
// CPHash binary protocol — the reproduction of the paper's client machine
// for the Section 7 experiments.
//
//	cploadgen -addrs 127.0.0.1:9090 -conns 8 -ops 100000 -ws 1MiB
//	cploadgen -addrs host:9090,host:9091,host:9092 -insert-ratio 0.3 -validate
//
// Multiple comma-separated addresses form a cluster: every key routes
// through the internal/cluster 256-slot continuum to its owning instance
// (how the paper's clients spread keys over per-core memcached
// instances), and the run reports per-node traffic so skew and failures
// are visible. Pair with `cpserver -instances N` for a one-machine
// cluster.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"

	"cphash/internal/loadgen"
	"cphash/internal/obs"
	"cphash/internal/sizeparse"
	"cphash/internal/workload"
)

var (
	addrs       = flag.String("addrs", "127.0.0.1:9090", "comma-separated cluster member addresses")
	conns       = flag.Int("conns", 4, "concurrent pipelined client sessions")
	pipeline    = flag.Int("pipeline", 64, "requests in flight per session window")
	opsPerConn  = flag.Int("ops", 50000, "operations per session")
	ws          = flag.String("ws", "1MiB", "working-set size (bytes of values)")
	valueSize   = flag.Int("value-size", 8, "value size in bytes")
	valueSizes  = flag.String("value-sizes", "", "value-size mixture as bytes:weight pairs, e.g. 16:9,1024:1 (overrides -value-size; sizes are key-deterministic so -validate still works)")
	insertRatio = flag.Float64("insert-ratio", 0.3, "fraction of INSERT operations")
	zipf        = flag.Bool("zipf", false, "shorthand for -dist zipf")
	dist        = flag.String("dist", "uniform", "key popularity: uniform, zipf, or shifting (hot window that jumps)")
	hotRatio    = flag.Float64("hot-ratio", 0, "shifting: fraction of ops on the hot window (default 0.9)")
	hotKeys     = flag.Int("hot-keys", 0, "shifting: hot window size in keys (default NumKeys/64)")
	shiftEvery  = flag.Int("shift-every", 0, "shifting: ops per generator between window jumps (default 50000)")
	memcached   = flag.Bool("memcached", false, "addresses are memcached text listeners (cpserver -memcached); drive them over the text protocol instead of the native one")
	validate    = flag.Bool("validate", false, "verify every hit's bytes")
	seed        = flag.Uint64("seed", 1, "workload seed")
	perNode     = flag.Bool("per-node", false, "print per-node traffic breakdown")
	p999        = flag.Bool("p999", false, "also report the p99.9 client-side window latency")
	scrapeAddr  = flag.String("scrape", "", "cpserver -statsaddr to scrape /metrics on before and after the run, printing server-side counter deltas and latency quantiles")
)

func main() {
	flag.Parse()
	wsBytes, err := sizeparse.Parse(*ws)
	if err != nil {
		log.Fatalf("cploadgen: %v", err)
	}
	spec := workload.Spec{
		WorkingSetBytes: wsBytes,
		ValueSize:       *valueSize,
		InsertRatio:     *insertRatio,
		HotRatio:        *hotRatio,
		HotKeys:         *hotKeys,
		ShiftEvery:      *shiftEvery,
		Seed:            *seed,
	}
	switch {
	case *zipf || *dist == "zipf":
		spec.Dist = workload.Zipfian
	case *dist == "shifting":
		spec.Dist = workload.Shifting
	case *dist == "uniform":
	default:
		log.Fatalf("cploadgen: unknown -dist %q (uniform, zipf, shifting)", *dist)
	}
	if *valueSizes != "" {
		if spec.Sizes, err = parseSizeMixture(*valueSizes); err != nil {
			log.Fatalf("cploadgen: %v", err)
		}
	}
	nodes := strings.Split(*addrs, ",")
	var before *obs.Scrape
	if *scrapeAddr != "" {
		if before, err = scrapeMetrics(*scrapeAddr); err != nil {
			log.Fatalf("cploadgen: pre-run scrape: %v", err)
		}
	}
	run := loadgen.Run
	if *memcached {
		run = loadgen.RunMemcached
	}
	res, err := run(loadgen.Config{
		Addrs:      nodes,
		Conns:      *conns,
		Pipeline:   *pipeline,
		Spec:       spec,
		OpsPerConn: *opsPerConn,
		Validate:   *validate,
	})
	if err != nil {
		log.Fatalf("cploadgen: %v", err)
	}
	fmt.Println(res)
	fmt.Printf("window latency: %s\n", res.Latency)
	if *p999 {
		fmt.Printf("window latency p999≤%d ns\n", res.Latency.Quantile(0.999))
	}
	if *perNode || len(nodes) > 1 {
		printPerNode(res)
	}
	if *scrapeAddr != "" {
		after, err := scrapeMetrics(*scrapeAddr)
		if err != nil {
			log.Fatalf("cploadgen: post-run scrape: %v", err)
		}
		printScrapeDelta(after.Sub(before))
	}
	if res.BadBytes > 0 {
		log.Fatalf("cploadgen: %d corrupt responses", res.BadBytes)
	}
}

// parseSizeMixture parses "bytes:weight,bytes:weight,..." into size
// classes.
func parseSizeMixture(s string) ([]workload.SizeClass, error) {
	var out []workload.SizeClass
	for _, part := range strings.Split(s, ",") {
		var c workload.SizeClass
		if _, err := fmt.Sscanf(part, "%d:%d", &c.Bytes, &c.Weight); err != nil {
			return nil, fmt.Errorf("size mixture %q: want bytes:weight pairs", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// scrapeMetrics fetches and strictly parses a cpserver's Prometheus
// exposition. A malformed exposition is a fatal error — CI uses this as
// the /metrics validity gate.
func scrapeMetrics(addr string) (*obs.Scrape, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// printScrapeDelta renders the server-side view of the run: counter
// deltas summed across instances plus latency quantiles reconstructed
// from the delta histogram buckets (cumulative buckets subtract cleanly,
// so the quantiles cover exactly this run's operations).
func printScrapeDelta(d *obs.Scrape) {
	fmt.Printf("server delta: requests=%.0f batches=%.0f lookups=%.0f hits=%.0f inserts=%.0f bytes_in=%.0f bytes_out=%.0f\n",
		d.Sum("cphash_server_requests_total"), d.Sum("cphash_server_batches_total"),
		d.Sum("cphash_table_lookups_total"), d.Sum("cphash_table_hits_total"),
		d.Sum("cphash_table_inserts_total"),
		d.Sum("cphash_table_bytes_in_total"), d.Sum("cphash_table_bytes_out_total"))
	if p50, ok := d.Quantile("cphash_op_latency_ns", 0.5); ok {
		p99, _ := d.Quantile("cphash_op_latency_ns", 0.99)
		p999, _ := d.Quantile("cphash_op_latency_ns", 0.999)
		fmt.Printf("server op latency: p50≤%.0f p99≤%.0f p999≤%.0f ns\n", p50, p99, p999)
	}
	if bs, ok := d.Quantile("cphash_batch_size", 0.5); ok {
		fmt.Printf("server batch size: p50≤%.0f\n", bs)
	}
}

// printPerNode renders the client-side view of each member's traffic.
func printPerNode(res loadgen.Result) {
	addrs := make([]string, 0, len(res.Nodes))
	for a := range res.Nodes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	var total int64
	for _, a := range addrs {
		total += res.Nodes[a].Ops
	}
	for _, a := range addrs {
		s := res.Nodes[a]
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Ops) / float64(total)
		}
		fmt.Printf("node %s: %d ops (%.1f%%), %d errors, %d retries, %d dials\n",
			a, s.Ops, share, s.Errors, s.Retries, s.Dials)
	}
}
