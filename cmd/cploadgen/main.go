// Command cploadgen drives load at key/value cache servers speaking the
// CPHash binary protocol — the reproduction of the paper's client machine
// for the Section 7 experiments.
//
//	cploadgen -addrs 127.0.0.1:9090 -conns 8 -ops 100000 -ws 1MiB
//	cploadgen -addrs host:9001,host:9002 -insert-ratio 0.3 -validate
//
// Multiple comma-separated addresses get the key space partitioned across
// them by hash, which is how the paper's clients spread keys over
// per-core memcached instances.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cphash/internal/loadgen"
	"cphash/internal/sizeparse"
	"cphash/internal/workload"
)

var (
	addrs       = flag.String("addrs", "127.0.0.1:9090", "comma-separated server addresses")
	conns       = flag.Int("conns", 4, "client connections")
	pipeline    = flag.Int("pipeline", 64, "requests in flight per connection window")
	opsPerConn  = flag.Int("ops", 50000, "operations per connection")
	ws          = flag.String("ws", "1MiB", "working-set size (bytes of values)")
	valueSize   = flag.Int("value-size", 8, "value size in bytes")
	insertRatio = flag.Float64("insert-ratio", 0.3, "fraction of INSERT operations")
	zipf        = flag.Bool("zipf", false, "Zipf-skewed key popularity instead of uniform")
	validate    = flag.Bool("validate", false, "verify every hit's bytes")
	seed        = flag.Uint64("seed", 1, "workload seed")
)

func main() {
	flag.Parse()
	wsBytes, err := sizeparse.Parse(*ws)
	if err != nil {
		log.Fatalf("cploadgen: %v", err)
	}
	spec := workload.Spec{
		WorkingSetBytes: wsBytes,
		ValueSize:       *valueSize,
		InsertRatio:     *insertRatio,
		Seed:            *seed,
	}
	if *zipf {
		spec.Dist = workload.Zipfian
	}
	res, err := loadgen.Run(loadgen.Config{
		Addrs:      strings.Split(*addrs, ","),
		Conns:      *conns,
		Pipeline:   *pipeline,
		Spec:       spec,
		OpsPerConn: *opsPerConn,
		Validate:   *validate,
	})
	if err != nil {
		log.Fatalf("cploadgen: %v", err)
	}
	fmt.Println(res)
	fmt.Printf("window latency: %s\n", res.Latency)
	if res.BadBytes > 0 {
		log.Fatalf("cploadgen: %d corrupt responses", res.BadBytes)
	}
}
