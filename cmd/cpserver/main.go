// Command cpserver runs key/value cache servers speaking the CPHash
// binary protocol over TCP — version 2: the paper's LOOKUP/INSERT
// (Section 4.1) plus DELETE, per-request TTLs, and variable-length string
// keys (GET_STR/SET_STR/DEL_STR) — backed by one of the three designs the
// paper compares:
//
//	cpserver -backend cphash    # CPSERVER: message-passing CPHASH table
//	cpserver -backend lockhash  # LOCKSERVER: spinlocked LOCKHASH table
//	cpserver -backend memcache  # single-lock instances (memcached-style)
//
// With -instances N, one process runs N independent server instances on
// consecutive ports — the paper's Figure 13/14 multi-instance memcached
// setup in one command. Each instance gets its own table of the full
// -capacity; clients (internal/client, cploadgen) spread keys over the
// instances through the cluster continuum.
//
// Examples:
//
//	cpserver -addr :9090 -capacity 256MiB -workers 4 -backend cphash
//	cpserver -addr 127.0.0.1:9090 -instances 3 -statsaddr 127.0.0.1:8070
//
// The server prints each bound address on startup (useful with :0) and
// periodic throughput lines; SIGINT/SIGTERM shuts it down cleanly.
//
// # Observability
//
// With -statsaddr, one HTTP mux serves the full observability surface
// (all counters are atomic — a scrape never sees a torn snapshot):
//
//	GET /stats        # JSON summary, one entry per instance
//	GET /metrics      # Prometheus text exposition (internal/obs registry)
//	GET /debug/vars   # expvar
//	GET /debug/pprof  # net/http/pprof profiles
//
// /metrics carries per-instance table/server counters, server-side op and
// batch latency histograms, per-slot heat counters, persistence gauges
// (fsync latency, ring depth, snapshot age), per-peer replication lag,
// and the coordinator's client/migration metrics. Cluster lifecycle
// events (join, leave, promote, migration, recovery) are emitted as
// structured log/slog lines on stdout.
//
// The stats endpoint doubles as the cluster admin surface for live
// topology changes with ONLINE SLOT MIGRATION (zero key loss for keys not
// written mid-move):
//
//	POST /join             # start one more instance, stream its slots in
//	POST /leave?addr=X     # stream X's slots to the survivors, stop X
//	GET  /migration        # cumulative migration progress stats
//
// The in-process coordinator (a sharded SDK client + rebalance.Migrator)
// performs the move; external clients built before the change keep their
// old ring until restarted — point them at the new member list.
//
// # Durability
//
// With -datadir, every instance (cphash and lockhash backends) runs the
// internal/persist pipeline: per-partition change rings feeding
// segmented, CRC-framed WAL streams plus periodic compact snapshots. On
// startup each instance recovers its table from the newest valid
// snapshot and the WAL tail, so a restart comes back warm. Flags:
//
//	-datadir DIR             # enable persistence; instance i uses DIR/iNNN
//	-sync none|interval|always
//	-syncevery 100ms         # fsync cadence under -sync interval
//	-snapshot-interval 5m    # 0 disables periodic snapshots
//	-maxsegment 64MiB        # WAL segment roll size
//
// GET /persistence (on -statsaddr) reports WAL/snapshot/recovery
// counters per instance; POST /snapshot triggers an immediate snapshot
// on every instance (or one with ?addr=). SIGINT/SIGTERM shuts down
// gracefully: the servers quiesce their worker queues, then the WAL is
// flushed and fsynced before the process exits — with -sync always a
// client response is never written before its batch's records are on
// disk (group commit).
//
// # Replication
//
// With -replicas N (N >= 2, requires -datadir), every continuum slot's
// entries are streamed from the owning instance to the slot's rank-1 ..
// rank-N-1 rendezvous standbys — provably the instances the slot
// reassigns to, in order, as owners are removed (internal/replica). Each
// instance runs a replication source next to its WAL and one follower
// link per primary it stands by for; links resync from the durable
// prefix (snapshot + sealed segments) and then apply the live tail,
// acknowledging a watermark the coordinator can trust (an acked frame IS
// applied). Short disconnects resume their session warm — zero entries
// streamed when the source's backlog still covers the follower.
//
//	POST /promote?addr=X   # manual override: fail X over now
//	POST /kill?addr=X      # fault-injection drill: stop X, leave it in the ring
//	GET  /replication      # per-instance source peers + follower links
//	GET  /detect           # failure-detector watch set
//
// Failover is automatic by default: a detector (internal/detect) probes
// every instance each -failover-interval, and an instance continuously
// unreachable for -failover-after is promoted away, at most one
// promotion per -failover-cooldown, with a flap guard for bouncing
// members. -autopromote=false reverts to manual POST /promote only.
//
// Promotion is an ownership flip, not a data move: the standby already
// holds every slot it inherits, so /promote waits only for the surviving
// links to drain before closing the dual-read window — zero acked-write
// loss on a clean stop, crash-loss bounded by the replication watermark.
// After any topology change the replication mesh is rewired by diffing:
// links whose (follower, primary, slots) pairing is unchanged keep their
// session, the new primary re-sources its standbys, and entries of slots
// an instance holds no rank for are purged, so a later flip cannot
// resurrect stale copies.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cphash/internal/chaos"
	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/core"
	"cphash/internal/detect"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/mctext"
	"cphash/internal/memcache"
	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/protocol"
	"cphash/internal/rebalance"
	"cphash/internal/replica"
	"cphash/internal/sizeparse"
)

var (
	addr       = flag.String("addr", "127.0.0.1:9090", "base TCP listen address; instance i listens on port+i")
	instances  = flag.Int("instances", 1, "server instances to run in this process")
	backend    = flag.String("backend", "cphash", "cphash | lockhash | memcache")
	capacity   = flag.String("capacity", "64MiB", "table capacity per instance (e.g. 1MiB, 256MiB)")
	workers    = flag.Int("workers", 2, "client threads per instance (cphash/lockhash)")
	partitions = flag.Int("partitions", 0, "partition count (0 = design default)")
	eviction   = flag.String("eviction", "lru", "lru | random")
	pin        = flag.Bool("pin", false, "dedicate an OS thread to each CPHASH server goroutine")
	statsEvery = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
	statsAddr  = flag.String("statsaddr", "", "optional HTTP address serving /stats JSON and /debug/vars")

	replicas         = flag.Int("replicas", 1, "replication factor: 1 = off, N>=2 = each slot's entries stream from the owner to its rank-1..N-1 standby instances for failover promotion and follower reads (requires -datadir)")
	autoPromote      = flag.Bool("autopromote", true, "with -replicas >= 2, run the failure detector: a confirmed-dead instance is promoted away automatically (POST /promote stays as the manual override)")
	failoverInterval = flag.Duration("failover-interval", 500*time.Millisecond, "failure detector probe cadence")
	failoverAfter    = flag.Duration("failover-after", 3*time.Second, "how long an instance must be continuously unreachable before auto-promotion fires")
	failoverCooldown = flag.Duration("failover-cooldown", 10*time.Second, "minimum gap between automatic promotions")
	failoverProbeTO  = flag.Duration("failover-probe-timeout", 500*time.Millisecond, "failure detector probe timeout (dial, and with -failover-app-probe the full request round trip)")
	failoverAppPing  = flag.Bool("failover-app-probe", true, "probe instances with a protocol-level ping (one GET under the probe timeout) instead of a bare TCP dial, so an instance that accepts connections but never serves them is detected as down")

	mcAddr = flag.String("memcached", "", "optional memcached text-protocol base listen address; instance i listens on port+i and proxies onto its own native listener")

	chaosOn   = flag.Bool("chaos", false, "arm the deterministic fault injector: every listener, replication link, and detector probe runs through a chaos.Director; rules via GET/POST/DELETE /chaos on -statsaddr")
	chaosSeed = flag.Int64("chaos-seed", 1, "seed for the chaos director's probabilistic faults (drops, jitter)")

	dataDir      = flag.String("datadir", "", "enable durability: WAL + snapshots under this directory (instance i uses <datadir>/iNNN)")
	syncPolicy   = flag.String("sync", "interval", "WAL sync policy: none | interval | always (group commit)")
	syncEvery    = flag.Duration("syncevery", 100*time.Millisecond, "fsync cadence under -sync interval")
	snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "automatic snapshot cadence (0 = manual POST /snapshot only)")
	maxSegment   = flag.String("maxsegment", "64MiB", "WAL segment size before rolling (e.g. 16MiB, 1GiB)")
)

// events carries structured cluster-lifecycle log lines (join, leave,
// promote, migration, recovery) so operators can grep one stream instead
// of scraping ad-hoc printf output.
var events = obs.NewEventLogger(os.Stdout, "cpserver")

// maxReplicas bounds -replicas: a chain deeper than the cluster is ever
// likely to be is a misconfiguration, not a deployment.
const maxReplicas = 8

// director is the process-wide fault injector, armed by -chaos; nil
// means off and every hook below degrades to the plain net path. The
// wrappers are free when no rule matches (the hotpath alloc gate pins
// that), so -chaos can stay on in latency experiments.
var director *chaos.Director

// adminRef lets the director's scheduled kill rules reach the /kill
// drill once the coordinator exists (rules are only installable via
// /chaos, which starts after the admin).
var adminRef atomic.Pointer[admin]

// chaosListen returns the listener hook when chaos is armed (listeners
// adopt their bound address as the rule-addressable endpoint name).
func chaosListen() func(network, addr string) (net.Listener, error) {
	if director == nil {
		return nil
	}
	return director.Listen("")
}

// chaosDial returns the dial hook for a named endpoint when chaos is
// armed.
func chaosDial(src string) func(network, addr string, timeout time.Duration) (net.Conn, error) {
	if director == nil {
		return nil
	}
	return director.Dialer(src)
}

// instance is one running server plus its observability hooks.
type instance struct {
	addr string
	// mc is the instance's memcached text front-end (nil unless
	// -memcached is set).
	mc       *mctext.Server
	requests func() int64
	snapshot func() map[string]any
	// collect emits the instance's Prometheus families under a label set
	// (typically {instance="addr"}) into a registry gather.
	collect func(e *obs.Expo, labels string)
	// close is idempotent (sync.OnceFunc): a /kill drill and the
	// promotion that follows it may both stop the instance.
	close func()
	// persistence hooks; nil pipe when -datadir is unset.
	pipe      *persist.Pipeline
	recovered persist.RecoverStats
	// replication hooks; nil src when -replicas is 1.
	src        *replica.Source
	newApplier func() replica.Applier // one per follower link
}

// frameLockedApplier serializes several follower links through one
// underlying applier (a CPHASH table has a single reserved replay client
// handle, which is single-goroutine). Each link gets its own wrapper over
// the shared mutex: the lock is taken at a frame's first Apply and
// released by its Flush — the follower guarantees exactly one Flush per
// frame — so a frame applies atomically with respect to the other links
// and the underlying pipelined ops are settled by their own frame.
type frameLockedApplier struct {
	mu   *sync.Mutex
	a    replica.Applier
	held bool // touched only by this link's apply goroutine
}

func (l *frameLockedApplier) Apply(op persist.Op, key uint64, expireAt int64, ver uint64, value []byte) error {
	if !l.held {
		l.mu.Lock()
		l.held = true
	}
	return l.a.Apply(op, key, expireAt, ver, value)
}

func (l *frameLockedApplier) Flush() error {
	if !l.held {
		return nil
	}
	err := l.a.Flush()
	l.held = false
	l.mu.Unlock()
	return err
}

// parsed persistence options (set in main, read by startInstance —
// including joins started later through the admin surface).
var (
	persistPol  persist.SyncPolicy
	maxSegBytes int
)

// instanceAddrs derives the listen address of each instance from the base
// address: port 0 stays 0 (kernel-assigned) for every instance, a fixed
// port p becomes p, p+1, ..., p+n-1.
func instanceAddrs(base string, n int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("bad -addr %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad -addr port %q: %w", portStr, err)
	}
	out := make([]string, n)
	for i := range out {
		p := port
		if port != 0 {
			p = port + i
		}
		out[i] = net.JoinHostPort(host, strconv.Itoa(p))
	}
	return out, nil
}

// mctextAddrFor derives instance idx's memcached side-listener address
// from the -memcached base, with the same port+idx rule as -addr (""
// when the front-end is disabled).
func mctextAddrFor(idx int) string {
	if *mcAddr == "" {
		return ""
	}
	host, portStr, err := net.SplitHostPort(*mcAddr)
	if err != nil {
		return *mcAddr // validated at startup; never reached
	}
	p, _ := strconv.Atoi(portStr)
	if p != 0 {
		p += idx
	}
	return net.JoinHostPort(host, strconv.Itoa(p))
}

// startMctext opens instance's memcached text front-end on mcListen
// (no-op returning nil when the flag is unset), proxying onto the
// instance's native upstream address.
func startMctext(mcListen, upstream string) (*mctext.Server, error) {
	if mcListen == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", mcListen)
	if err != nil {
		return nil, fmt.Errorf("memcached listener %s: %w", mcListen, err)
	}
	return mctext.Serve(ln, mctext.Config{Upstream: upstream}), nil
}

// instanceDir returns instance i's durability directory ("" when
// persistence is disabled).
func instanceDir(i int) string {
	if *dataDir == "" {
		return ""
	}
	return filepath.Join(*dataDir, fmt.Sprintf("i%03d", i))
}

// tableSnapshot renders aggregated table counters in the shape the /stats
// endpoint serves for every backend.
func tableSnapshot(st partition.Stats) map[string]any {
	return map[string]any{
		"lookups":   st.Lookups,
		"hits":      st.Hits,
		"misses":    st.Lookups - st.Hits,
		"inserts":   st.Inserts,
		"insertErr": st.InsertErr,
		"deletes":   st.Deletes,
		"expired":   st.Expired,
		"evictions": st.Evictions,
		"elements":  st.Elements,
	}
}

// startInstance builds one table + server pair for the selected backend.
// dir, when non-empty, is the instance's durability directory: the table
// is recovered from it on the way up and every mutation is WAL-logged
// from then on.
func startInstance(addr, mcListen, dir string, capBytes int, policy partition.EvictionPolicy) (*instance, error) {
	switch *backend {
	case "memcache":
		if dir != "" {
			return nil, fmt.Errorf("-datadir is not supported by the memcache backend (use cphash or lockhash)")
		}
		inst, err := memcache.ServeInstance(addr, capBytes)
		if err != nil {
			return nil, err
		}
		mc, err := startMctext(mcListen, inst.Addr())
		if err != nil {
			inst.Close()
			return nil, err
		}
		return &instance{
			addr:     inst.Addr(),
			mc:       mc,
			requests: inst.Requests,
			snapshot: func() map[string]any {
				return map[string]any{
					"requests": inst.Requests(),
					"elements": inst.Len(),
				}
			},
			collect: func(e *obs.Expo, labels string) {
				e.Counter("cphash_server_requests_total", "Requests processed.", labels, inst.Requests())
				e.Gauge("cphash_table_elements", "entries currently stored", labels, float64(inst.Len()))
				if mc != nil {
					mc.Collect(e, labels)
				}
			},
			close: sync.OnceFunc(func() {
				if mc != nil {
					mc.Close()
				}
				inst.Close()
			}),
		}, nil

	case "cphash", "lockhash":
		var (
			newBackend   func(int) (kvserver.Backend, error)
			tableStats   func() partition.Stats
			tableCollect func(*obs.Expo, string)
			closeTable   func()
			pipe         *persist.Pipeline
			recovered    persist.RecoverStats
			err          error
			sink         func(int) partition.ChangeSink
			newApplier   func() replica.Applier
			applierClose func()
		)
		replOn := *replicas >= 2
		if dir != "" {
			pipe, err = persist.Open(persist.Config{
				Dir:              dir,
				Policy:           persistPol,
				SyncInterval:     *syncEvery,
				MaxSegment:       maxSegBytes,
				SnapshotInterval: *snapInterval,
			})
			if err != nil {
				return nil, err
			}
			sink = func(p int) partition.ChangeSink { return pipe.Appender(p) }
		}
		if *backend == "cphash" {
			maxClients := *workers
			if replOn {
				maxClients++ // one reserved client handle for the replica applier
			}
			table, err := core.New(core.Config{
				Partitions:    *partitions,
				CapacityBytes: capBytes,
				MaxClients:    maxClients,
				Policy:        policy,
				LockOSThread:  *pin,
				Sink:          sink,
			})
			if err != nil {
				return nil, err
			}
			if pipe != nil {
				pipe.SetSource(persist.CoreSource(table))
				if recovered, err = persist.RestoreCore(pipe, table, 0); err != nil {
					table.Close()
					return nil, fmt.Errorf("recovering %s: %w", dir, err)
				}
			}
			if replOn {
				ca, err := replica.NewCoreApplier(table, *workers, nil)
				if err != nil {
					table.Close()
					return nil, err
				}
				applyMu := &sync.Mutex{}
				newApplier = func() replica.Applier { return &frameLockedApplier{mu: applyMu, a: ca} }
				applierClose = ca.Close
			}
			newBackend = kvserver.NewCPHashBackend(table)
			tableStats = func() partition.Stats { return table.Stats().Stats }
			tableCollect = table.Collect
			closeTable = table.Close
		} else {
			table, err := lockhash.New(lockhash.Config{
				Partitions:    *partitions,
				CapacityBytes: capBytes,
				Policy:        policy,
				Sink:          sink,
			})
			if err != nil {
				return nil, err
			}
			if pipe != nil {
				pipe.SetSource(persist.LockHashSource(table))
				if recovered, err = persist.RestoreLockHash(pipe, table); err != nil {
					return nil, fmt.Errorf("recovering %s: %w", dir, err)
				}
			}
			if replOn {
				la := replica.NewLockHashApplier(table)
				newApplier = func() replica.Applier { return la }
			}
			newBackend = kvserver.NewLockHashBackend(table)
			tableStats = table.Stats
			tableCollect = table.Collect
			closeTable = func() {}
		}
		if pipe != nil {
			if err := pipe.Start(); err != nil {
				closeTable()
				return nil, err
			}
		}
		var src *replica.Source
		if replOn && pipe != nil {
			// The replication listener shares the serving host on a
			// kernel-assigned port; followers learn it in-process through
			// the admin coordinator, never from configuration.
			rhost, _, _ := net.SplitHostPort(addr)
			src, err = replica.NewSource(replica.SourceConfig{
				Pipe:   pipe,
				Addr:   net.JoinHostPort(rhost, "0"),
				Listen: chaosListen(),
			})
			if err != nil {
				pipe.Close()
				closeTable()
				return nil, err
			}
		}
		srv, err := kvserver.Serve(kvserver.Config{
			Addr:        addr,
			Workers:     *workers,
			NewBackend:  newBackend,
			Persist:     pipe,
			Replication: src,
			Listen:      chaosListen(),
		})
		if err != nil {
			if src != nil {
				src.Close()
			}
			if pipe != nil {
				pipe.Close()
			}
			closeTable()
			return nil, err
		}
		if pipe != nil {
			events.Info("recovery",
				"instance", srv.Addr(), "dir", dir, "sync", persistPol.String(),
				"snapshotEntries", recovered.SnapshotEntries, "walRecords", recovered.WALRecords)
		}
		mc, err := startMctext(mcListen, srv.Addr())
		if err != nil {
			srv.Close()
			if applierClose != nil {
				applierClose()
			}
			closeTable()
			return nil, err
		}
		return &instance{
			addr:     srv.Addr(),
			mc:       mc,
			requests: func() int64 { return srv.Stats().Requests },
			collect: func(e *obs.Expo, labels string) {
				srv.Collect(e, labels)
				tableCollect(e, labels)
				if pipe != nil {
					pipe.Collect(e, labels)
				}
				if src != nil {
					src.Collect(e, labels)
				}
				if mc != nil {
					mc.Collect(e, labels)
				}
			},
			snapshot: func() map[string]any {
				ss := srv.Stats()
				out := map[string]any{
					"connections": ss.Connections,
					"activeConns": ss.Active,
					"requests":    ss.Requests,
					"batches":     ss.Batches,
				}
				for k, v := range tableSnapshot(tableStats()) {
					out[k] = v
				}
				return out
			},
			// srv.Close drains the worker queues, closes the replication
			// source (followers receive the final records first) and
			// flushes + closes the pipeline; only then are the replica
			// applier and the table torn down. The admin coordinator
			// closes this instance's own follower links before calling
			// close, so nothing feeds the applier by then.
			close: sync.OnceFunc(func() {
				if mc != nil {
					mc.Close()
				}
				srv.Close()
				if applierClose != nil {
					applierClose()
				}
				closeTable()
			}),
			pipe:       pipe,
			recovered:  recovered,
			src:        src,
			newApplier: newApplier,
		}, nil

	default:
		return nil, fmt.Errorf("unknown backend %q", *backend)
	}
}

// repLink is one edge of the replication mesh: a live follower link plus
// the slot set it subscribed with, kept so rewire can diff the wanted
// mesh against the live one and leave unchanged links (and their synced
// sessions) untouched.
type repLink struct {
	f     *replica.Follower
	slots protocol.SlotSet
}

// admin owns the mutable instance set plus the migration coordinator: a
// sharded SDK client whose membership tracks the instances, and the
// Migrator that streams moved slots on join/leave.
type admin struct {
	// opMu serializes join/leave — topology changes take seconds (quiesce
	// + migration). mu guards insts and is held only for moments, so the
	// /stats and expvar handlers never stall behind a migration.
	opMu     sync.Mutex
	mu       sync.Mutex
	insts    []*instance
	capBytes int
	policy   partition.EvictionPolicy
	host     string
	basePort int // 0 = kernel-assigned ports for joiners too
	started  int // instances ever started (port allocation); under opMu
	cli      *client.Client
	migr     *rebalance.Migrator
	// det is the auto-failover detector (nil with -autopromote=false or
	// -replicas 1); its watch set is reconciled after every topology op.
	det *detect.Detector
	// links is the replication mesh: follower instance addr → primary
	// instance addr → the live link (under mu; rebuilt by rewire).
	links map[string]map[string]*repLink
}

func newAdmin(insts []*instance, capBytes int, policy partition.EvictionPolicy, host string, basePort int) (*admin, error) {
	addrs := make([]string, len(insts))
	for i, in := range insts {
		addrs[i] = in.addr
	}
	a := &admin{
		insts:    insts,
		capBytes: capBytes,
		policy:   policy,
		host:     host,
		basePort: basePort,
		started:  len(insts),
		links:    map[string]map[string]*repLink{},
	}
	// The coordinator's own client gets the follower-lag hook, so an
	// operator flipping it to ReadFollower (or SDK users copying this
	// wiring) reads standbys only within the staleness bound.
	cli, err := client.New(client.Config{Nodes: addrs, FollowerLag: a.followerLag, ReplicaDepth: *replicas})
	if err != nil {
		return nil, err
	}
	a.cli = cli
	a.migr = rebalance.New(cli, rebalance.Config{})
	return a, nil
}

// followerLag reports the staleness of follower reads served by addr:
// the worst staleness across the instance's live links (it may stand by
// for several primaries). Reports unknown while any link has never
// completed its initial sync.
func (a *admin) followerLag(addr string) (time.Duration, bool) {
	a.mu.Lock()
	links := make([]*replica.Follower, 0, len(a.links[addr]))
	for _, l := range a.links[addr] {
		links = append(links, l.f)
	}
	a.mu.Unlock()
	if len(links) == 0 {
		return 0, false
	}
	var worst time.Duration
	for _, f := range links {
		d, ok := f.Staleness()
		if !ok {
			return 0, false
		}
		if d > worst {
			worst = d
		}
	}
	return worst, true
}

// dropLinks closes every link in which addr is the follower (called
// before stopping the instance, so nothing feeds its applier).
func (a *admin) dropLinks(addr string) {
	a.mu.Lock()
	m := a.links[addr]
	delete(a.links, addr)
	a.mu.Unlock()
	for _, l := range m {
		l.f.Close()
	}
}

// rewire reconciles the replication mesh with the current ring and purges
// stale replica copies. The wanted mesh places every slot's entries on
// its rendezvous ranks 1..replicas-1 (all standbys follow the owner
// directly — the rank-shift identity makes each of them the slot's next
// owner in removal order). Live links whose (follower, primary, slot set)
// already match are kept untouched — their synced sessions and acked
// watermarks survive the rewire, so a promotion only resyncs the edges
// that actually changed (the new primary re-sourcing its standbys);
// everything else closes. Called with opMu held.
func (a *admin) rewire() {
	if *replicas < 2 {
		return
	}
	a.mu.Lock()
	old := a.links
	a.links = map[string]map[string]*repLink{}
	insts := append([]*instance(nil), a.insts...)
	a.mu.Unlock()
	byAddr := make(map[string]*instance, len(insts))
	for _, in := range insts {
		byAddr[in.addr] = in
	}
	ring := a.cli.Ring()
	// follower addr → primary addr → subscribed slots
	want := map[string]map[string]*protocol.SlotSet{}
	for s := 0; s < cluster.Slots; s++ {
		owner := ring.Owner(s)
		if byAddr[owner] == nil {
			continue
		}
		for _, standby := range ring.Replicas(s, *replicas) {
			if byAddr[standby] == nil {
				continue
			}
			m := want[standby]
			if m == nil {
				m = map[string]*protocol.SlotSet{}
				want[standby] = m
			}
			set := m[owner]
			if set == nil {
				set = &protocol.SlotSet{}
				m[owner] = set
			}
			set.Add(s)
		}
	}
	// Diff the live mesh against the wanted one: keep exact matches,
	// close the rest. A surviving primary forgets a closed follower's
	// watermark — the pairing is gone, not temporarily down.
	fresh := map[string]map[string]*repLink{}
	kept := 0
	for fAddr, m := range old {
		for pAddr, l := range m {
			var set *protocol.SlotSet
			if wm := want[fAddr]; wm != nil {
				set = wm[pAddr]
			}
			if set != nil && *set == l.slots {
				if fresh[fAddr] == nil {
					fresh[fAddr] = map[string]*repLink{}
				}
				fresh[fAddr][pAddr] = l
				kept++
				continue
			}
			l.f.Close()
			if pin := byAddr[pAddr]; pin != nil && pin.src != nil {
				pin.src.ForgetPeer(fAddr)
			}
		}
	}
	started := 0
	for fAddr, srcs := range want {
		fin := byAddr[fAddr]
		if fin.newApplier == nil {
			continue // replication pieces missing (should not happen with -replicas >= 2)
		}
		for pAddr, set := range srcs {
			if fresh[fAddr] != nil && fresh[fAddr][pAddr] != nil {
				continue // kept from the old mesh
			}
			pin := byAddr[pAddr]
			if pin.src == nil {
				continue
			}
			link, err := replica.StartFollower(replica.FollowerConfig{
				Source: pin.src.Addr(),
				Name:   fAddr,
				Slots:  set,
				Apply:  fin.newApplier(),
				Dial:   chaosDial(fAddr),
			})
			if err != nil {
				events.Warn("replication_link_failed", "follower", fAddr, "primary", pAddr, "err", err)
				continue
			}
			if fresh[fAddr] == nil {
				fresh[fAddr] = map[string]*repLink{}
			}
			fresh[fAddr][pAddr] = &repLink{f: link, slots: *set}
			started++
		}
	}
	a.mu.Lock()
	a.links = fresh
	a.mu.Unlock()
	// Sweep every source for peers the new mesh no longer places on it.
	// The diff loop above only forgets followers it closed itself; a
	// member torn down by dropLinks before rewire ran (leave, promote)
	// never appears in old, and without this sweep its retained
	// watermark would scrape forever as a phantom down peer on every
	// surviving source. ForgetPeer is teardown-race-safe, so a peer
	// whose disconnect hasn't been noticed yet is still forgotten.
	for _, in := range insts {
		if in.src == nil {
			continue
		}
		for _, ph := range in.src.Peers() {
			if wm := want[ph.Name]; wm == nil || wm[in.addr] == nil {
				in.src.ForgetPeer(ph.Name)
			}
		}
	}
	if kept > 0 || started > 0 {
		events.Info("replication_rewired", "kept", kept, "started", started)
	}
	// Purge entries of slots an instance holds no rank 0..replicas-1 for:
	// a stale copy there would resurrect if a later topology change (or
	// promotion) handed the slot back.
	for _, in := range insts {
		var stale protocol.SlotSet
		n := 0
		for s := 0; s < cluster.Slots; s++ {
			inChain := false
			for r := 0; r < *replicas; r++ {
				if ring.RankedOwner(s, r) == in.addr {
					inChain = true
					break
				}
			}
			if !inChain {
				stale.Add(s)
				n++
			}
		}
		if n == 0 {
			continue
		}
		if _, err := a.cli.PurgeNode(in.addr, &stale); err != nil {
			events.Warn("replica_purge_failed", "instance", in.addr, "slots", n, "err", err)
		}
	}
}

// collect gathers the whole process into one exposition buffer: every
// instance's server/table/persist/replica families under its
// {instance="addr"} label set, each live follower link, then the
// coordinator's own client and migrator. Registered once with the
// /metrics registry; runs per scrape so aggregation is lazy.
func (a *admin) collect(e *obs.Expo) {
	a.mu.Lock()
	insts := append([]*instance(nil), a.insts...)
	type linkRef struct {
		follower, primary string
		f                 *replica.Follower
	}
	var links []linkRef
	for fAddr, m := range a.links {
		for pAddr, l := range m {
			links = append(links, linkRef{fAddr, pAddr, l.f})
		}
	}
	det := a.det
	a.mu.Unlock()
	for _, in := range insts {
		in.collect(e, obs.Labels("instance", in.addr))
	}
	for _, l := range links {
		l.f.Collect(e, obs.Labels("instance", l.follower, "primary", l.primary))
	}
	a.cli.Collect(e, "")
	a.migr.Collect(e, "")
	if det != nil {
		det.Collect(e, "")
	}
}

// instances snapshots the current instance list.
func (a *admin) instances() []*instance {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*instance(nil), a.insts...)
}

// totalRequests sums lifetime requests across instances.
func (a *admin) totalRequests() int64 {
	var total int64
	for _, in := range a.instances() {
		total += in.requests()
	}
	return total
}

// quiesce waits (bounded) for the instances' request counters to stop
// moving before a migration starts. A client that just disconnected may
// still have thousands of silent pipelined INSERTs draining through the
// servers' worker queues; without this, the migration scan can run before
// those writes land on their (old) owners and the post-move purge then
// deletes them unreplayed. Unacknowledged writes carry no durability
// promise — this protects the common populate-then-join pattern, not
// clients that keep writing through a stale ring (those are documented
// out of scope). Called with opMu (not mu) held.
func (a *admin) quiesce() {
	last := int64(-1)
	for i := 0; i < 30; i++ {
		cur := a.totalRequests()
		if cur == last {
			return
		}
		last = cur
		time.Sleep(100 * time.Millisecond)
	}
}

// join starts one more instance and migrates its continuum slots in.
func (a *admin) join() (string, error) {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	port := 0
	if a.basePort != 0 {
		port = a.basePort + a.started
	}
	in, err := startInstance(net.JoinHostPort(a.host, strconv.Itoa(port)), mctextAddrFor(a.started), instanceDir(a.started), a.capBytes, a.policy)
	if err != nil {
		return "", err
	}
	a.quiesce()
	if err := a.migr.AddNode(in.addr); err != nil {
		in.close()
		return "", err
	}
	a.started++
	a.mu.Lock()
	a.insts = append(a.insts, in)
	n := len(a.insts)
	a.mu.Unlock()
	a.rewire()
	a.refreshDetector()
	events.Info("join", "instance", in.addr, "instances", n)
	return in.addr, nil
}

// leave migrates an instance's slots to the survivors, then stops it.
func (a *admin) leave(addr string) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	var target *instance
	for _, in := range a.instances() {
		if in.addr == addr {
			target = in
		}
	}
	if target == nil {
		return fmt.Errorf("no instance %q", addr)
	}
	if len(a.instances()) == 1 {
		return fmt.Errorf("cannot remove the last instance")
	}
	a.quiesce()
	if err := a.migr.RemoveNode(addr); err != nil {
		return err
	}
	a.dropLinks(addr)
	target.close()
	a.mu.Lock()
	for i, in := range a.insts {
		if in == target {
			a.insts = append(a.insts[:i], a.insts[i+1:]...)
			break
		}
	}
	n := len(a.insts)
	a.mu.Unlock()
	a.rewire()
	a.refreshDetector()
	events.Info("leave", "instance", addr, "instances", n)
	return nil
}

// promote fails the addressed instance over to its slots' standby
// replicas. The instance is stopped first (a real failover starts with a
// dead primary; a drill makes it one — the graceful close barriers its
// final writes through the replication source), then for every new owner
// the link from the dead primary is drained so the acked watermark is
// fully applied before rebalance.Migrator.Promote closes the slot
// windows. No data is streamed: the standby already holds every slot it
// inherits. Afterwards the mesh is rewired around the survivors.
func (a *admin) promote(addr string) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if *replicas < 2 {
		return fmt.Errorf("replication is disabled (run with -replicas >= 2)")
	}
	var target *instance
	for _, in := range a.instances() {
		if in.addr == addr {
			target = in
		}
	}
	if target == nil {
		return fmt.Errorf("no instance %q", addr)
	}
	if len(a.instances()) == 1 {
		return fmt.Errorf("cannot promote away the last instance")
	}
	a.quiesce()
	a.dropLinks(addr) // stop following others before its applier goes away
	target.close()
	confirm := func(newOwner string, slots []int) error {
		a.mu.Lock()
		var f *replica.Follower
		if m := a.links[newOwner]; m != nil {
			if l := m[addr]; l != nil {
				f = l.f
			}
			delete(m, addr)
		}
		a.mu.Unlock()
		if f == nil {
			// No live link: the new owner never replicated from the dead
			// member (e.g. it joined moments ago). Promotion proceeds with
			// whatever it has — the loss semantics of removing a dead node.
			return nil
		}
		defer f.Close()
		if !f.WaitDisconnected(10 * time.Second) {
			return fmt.Errorf("link %s ← %s did not drain", newOwner, addr)
		}
		return nil
	}
	if err := a.migr.Promote(addr, confirm); err != nil {
		return err
	}
	a.mu.Lock()
	for i, in := range a.insts {
		if in == target {
			a.insts = append(a.insts[:i], a.insts[i+1:]...)
			break
		}
	}
	n := len(a.insts)
	a.mu.Unlock()
	a.rewire()
	a.refreshDetector()
	events.Info("promote", "instance", addr, "instances", n)
	return nil
}

// kill is the fault-injection drill: stop the addressed instance but
// leave it in the ring, so the failure detector (or an operator's POST
// /promote) has to notice the death and fail it over — the full
// auto-failover path, exercised on demand.
func (a *admin) kill(addr string) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if *replicas < 2 {
		return fmt.Errorf("replication is disabled (run with -replicas >= 2)")
	}
	var target *instance
	for _, in := range a.instances() {
		if in.addr == addr {
			target = in
		}
	}
	if target == nil {
		return fmt.Errorf("no instance %q", addr)
	}
	if len(a.instances()) == 1 {
		return fmt.Errorf("cannot kill the last instance")
	}
	a.dropLinks(addr) // its applier is about to go away
	target.close()
	events.Warn("killed", "instance", addr)
	return nil
}

// probe reports liveness for the failure detector: an application-level
// ping of the serving port (or a bare TCP dial with
// -failover-app-probe=false), with the replication mesh as a second
// witness — if any surviving source still holds a live peer connection
// from addr (the cphash_replica_peer_up signal), the process is alive
// even when a fresh dial is refused mid-churn. The witness only covers
// dial failures: an instance that accepted the dial but never answered
// the ping is wedged, and a live replication heartbeat cannot vouch for
// its serving path.
func (a *admin) probe(addr string) bool {
	dial := net.DialTimeout
	if director != nil {
		dial = director.Dialer("detector")
	}
	if *failoverAppPing {
		switch detect.Ping(detect.DialFunc(dial), addr, *failoverProbeTO) {
		case detect.PingOK:
			return true
		case detect.PingNoReply:
			return false
		}
		// PingNoDial: fall through to the peer witness.
	} else if c, err := dial("tcp", addr, *failoverProbeTO); err == nil {
		c.Close()
		return true
	}
	for _, in := range a.instances() {
		if in.addr == addr || in.src == nil {
			continue
		}
		for _, p := range in.src.Peers() {
			if p.Name == addr && p.Up {
				return true
			}
		}
	}
	return false
}

// autoPromote is the detector's Act: promote the confirmed-dead member.
func (a *admin) autoPromote(addr string) error {
	events.Warn("auto_promote", "instance", addr)
	if err := a.promote(addr); err != nil {
		events.Warn("auto_promote_failed", "instance", addr, "err", err)
		return err
	}
	return nil
}

// refreshDetector reconciles the detector's watch set with the instance
// list after every topology change (survivors keep their down history).
func (a *admin) refreshDetector() {
	if a.det == nil {
		return
	}
	insts := a.instances()
	addrs := make([]string, len(insts))
	for i, in := range insts {
		addrs[i] = in.addr
	}
	a.det.SetTargets(addrs)
}

// close shuts the coordinator down: the failure detector first (so no
// auto-promotion races the teardown), then the replication links (so
// nothing feeds the instances' appliers while they tear down), then the
// client. Instances are closed by main.
func (a *admin) close() {
	if a.det != nil {
		a.det.Close()
	}
	a.mu.Lock()
	links := a.links
	a.links = map[string]map[string]*repLink{}
	a.mu.Unlock()
	for _, m := range links {
		for _, l := range m {
			l.f.Close()
		}
	}
	if a.cli != nil {
		a.cli.Close()
	}
}

// snapshotAll renders the /stats document: one entry per instance plus the
// backend name, so a scraper can tell deployments apart.
func snapshotAll(insts []*instance) map[string]any {
	list := make([]map[string]any, len(insts))
	for i, in := range insts {
		s := in.snapshot()
		s["addr"] = in.addr
		list[i] = s
	}
	return map[string]any{"backend": *backend, "instances": list}
}

// persistenceSnapshot renders the /persistence document: WAL, snapshot
// and recovery counters for every persisted instance.
func (a *admin) persistenceSnapshot() map[string]any {
	list := []map[string]any{}
	for _, in := range a.instances() {
		if in.pipe == nil {
			continue
		}
		st := in.pipe.Stats()
		list = append(list, map[string]any{
			"addr":      in.addr,
			"dir":       in.pipe.Dir(),
			"stats":     st,
			"wal":       in.pipe.WALStatus(),
			"recovered": in.recovered,
		})
	}
	return map[string]any{
		"enabled":   *dataDir != "",
		"sync":      persistPol.String(),
		"instances": list,
	}
}

// snapshotNow triggers an immediate snapshot on the addressed instance
// ("" = all persisted instances), returning per-instance outcomes.
func (a *admin) snapshotNow(addr string) (map[string]string, error) {
	out := map[string]string{}
	matched := false
	for _, in := range a.instances() {
		if addr != "" && in.addr != addr {
			continue
		}
		matched = true
		if in.pipe == nil {
			out[in.addr] = "persistence disabled"
			continue
		}
		if err := in.pipe.Snapshot(); err != nil {
			out[in.addr] = err.Error()
		} else {
			out[in.addr] = "ok"
		}
	}
	if !matched {
		return nil, fmt.Errorf("no instance %q", addr)
	}
	return out, nil
}

// migrationSnapshot renders the /migration document.
func (a *admin) migrationSnapshot() map[string]any {
	st := a.migr.Stats()
	return map[string]any{
		"active":          st.Active,
		"migrations":      st.Migrations,
		"slotsTotal":      st.SlotsTotal,
		"slotsDone":       st.SlotsDone,
		"slotsPending":    a.cli.MigratingSlots(),
		"sourcesPending":  a.migr.Pending(),
		"sourcesDrained":  st.Sources,
		"entriesStreamed": st.Entries,
		"bytesStreamed":   st.Bytes,
		"entriesReplayed": st.Replayed,
		"replayErrors":    st.ReplayErrors,
		"stalePurged":     st.Purged,
		"promotions":      st.Promotions,
	}
}

// replicationSnapshot renders the /replication document: per instance,
// its source's peers (who replicates FROM it) and its follower links
// (who it replicates from), with watermarks and staleness.
func (a *admin) replicationSnapshot() map[string]any {
	doc := map[string]any{"enabled": *replicas >= 2, "replicas": *replicas}
	if *replicas < 2 {
		return doc
	}
	a.mu.Lock()
	insts := append([]*instance(nil), a.insts...)
	links := make(map[string]map[string]*replica.Follower, len(a.links))
	for fa, m := range a.links {
		links[fa] = make(map[string]*replica.Follower, len(m))
		for pa, l := range m {
			links[fa][pa] = l.f
		}
	}
	a.mu.Unlock()
	list := make([]map[string]any, 0, len(insts))
	for _, in := range insts {
		e := map[string]any{"addr": in.addr}
		if in.src != nil {
			e["sourceAddr"] = in.src.Addr()
			e["tail"] = in.src.Tail()
			e["peers"] = in.src.Peers()
		}
		follows := []map[string]any{}
		for pAddr, f := range links[in.addr] {
			st := f.Status()
			follows = append(follows, map[string]any{
				"primary": pAddr,
				"status":  st,
			})
		}
		e["follows"] = follows
		list = append(list, e)
	}
	doc["instances"] = list
	doc["promotions"] = a.migr.Stats().Promotions
	doc["failover"] = a.detectSnapshot()
	return doc
}

// detectSnapshot renders the failure-detector section of /replication.
func (a *admin) detectSnapshot() map[string]any {
	doc := map[string]any{
		"enabled":   a.det != nil,
		"downAfter": failoverAfter.String(),
		"cooldown":  failoverCooldown.String(),
	}
	if a.det != nil {
		doc["targets"] = a.det.Status()
	}
	return doc
}

// replicationSummary is the compact form embedded in /stats.
func (a *admin) replicationSummary() map[string]any {
	a.mu.Lock()
	n := 0
	for _, m := range a.links {
		n += len(m)
	}
	a.mu.Unlock()
	return map[string]any{
		"enabled":     *replicas >= 2,
		"replicas":    *replicas,
		"links":       n,
		"autopromote": a.det != nil,
		"promotions":  a.migr.Stats().Promotions,
	}
}

// serveStats exposes /stats (JSON), /metrics (Prometheus text),
// /debug/vars (expvar), /debug/pprof and the cluster admin surface
// (/join, /leave, /migration) on its own mux, keeping the default mux
// untouched.
func serveStats(addr string, a *admin) (*http.Server, error) {
	expvar.Publish("cpserver", expvar.Func(func() any { return snapshotAll(a.instances()) }))
	writeJSON := func(w http.ResponseWriter, doc any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	}
	reg := obs.NewRegistry()
	reg.Register(a.collect)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		doc := snapshotAll(a.instances())
		doc["replication"] = a.replicationSummary()
		writeJSON(w, doc)
	})
	mux.HandleFunc("/migration", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.migrationSnapshot())
	})
	mux.HandleFunc("/replication", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.replicationSnapshot())
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			http.Error(w, "missing ?addr=", http.StatusBadRequest)
			return
		}
		if err := a.promote(addr); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"promoted": addr, "replication": a.replicationSnapshot(), "migration": a.migrationSnapshot()})
	})
	mux.HandleFunc("/kill", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			http.Error(w, "missing ?addr=", http.StatusBadRequest)
			return
		}
		if err := a.kill(addr); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"killed": addr, "failover": a.detectSnapshot()})
	})
	mux.HandleFunc("/detect", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.detectSnapshot())
	})
	// Fault injection: GET lists installed rules with activation state
	// and hit counts, POST installs (or replaces, by name) a rule from
	// its JSON form, DELETE removes one rule (?name=) or all of them.
	mux.HandleFunc("/chaos", func(w http.ResponseWriter, r *http.Request) {
		if director == nil {
			http.Error(w, "chaos is disabled (run with -chaos)", http.StatusConflict)
			return
		}
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, map[string]any{"seed": director.Seed(), "rules": director.Rules()})
		case http.MethodPost:
			var rule chaos.Rule
			if err := json.NewDecoder(r.Body).Decode(&rule); err != nil {
				http.Error(w, "bad rule: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := director.SetRule(rule); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			events.Warn("chaos_rule_installed", "rule", rule.Name, "dst", rule.Dst)
			writeJSON(w, map[string]any{"installed": rule.Name, "rules": director.Rules()})
		case http.MethodDelete:
			if name := r.URL.Query().Get("name"); name != "" {
				if !director.RemoveRule(name) {
					http.Error(w, fmt.Sprintf("no rule %q", name), http.StatusNotFound)
					return
				}
				writeJSON(w, map[string]any{"removed": name, "rules": director.Rules()})
				return
			}
			director.Clear()
			writeJSON(w, map[string]any{"cleared": true})
		default:
			http.Error(w, "GET, POST or DELETE", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/persistence", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.persistenceSnapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		out, err := a.snapshotNow(r.URL.Query().Get("addr"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"snapshot": out, "persistence": a.persistenceSnapshot()})
	})
	mux.HandleFunc("/join", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		joined, err := a.join()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"joined": joined, "migration": a.migrationSnapshot()})
	})
	mux.HandleFunc("/leave", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			http.Error(w, "missing ?addr=", http.StatusBadRequest)
			return
		}
		if err := a.leave(addr); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"left": addr, "migration": a.migrationSnapshot()})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("stats endpoint on http://%s/stats (+ /metrics, /debug/vars, /debug/pprof; admin: POST /join, POST /leave?addr=, POST /promote?addr=, POST /kill?addr=, GET /migration, GET /replication, GET /detect, GET /persistence, POST /snapshot, GET|POST|DELETE /chaos)\n", ln.Addr())
	return srv, nil
}

func main() {
	flag.Parse()
	capBytes, err := sizeparse.Parse(*capacity)
	if err != nil {
		log.Fatalf("cpserver: %v", err)
	}
	if *instances <= 0 {
		log.Fatalf("cpserver: -instances must be positive, got %d", *instances)
	}
	if persistPol, err = persist.ParseSyncPolicy(*syncPolicy); err != nil {
		log.Fatalf("cpserver: -sync: %v", err)
	}
	if maxSegBytes, err = sizeparse.Parse(*maxSegment); err != nil {
		log.Fatalf("cpserver: -maxsegment: %v", err)
	}
	if *replicas < 1 || *replicas > maxReplicas {
		log.Fatalf("cpserver: -replicas must be 1 (off) or 2..%d, got %d", maxReplicas, *replicas)
	}
	if *replicas >= 2 {
		if *dataDir == "" {
			log.Fatalf("cpserver: -replicas >= 2 requires -datadir (replication streams the WAL)")
		}
		if *backend == "memcache" {
			log.Fatalf("cpserver: -replicas is not supported by the memcache backend")
		}
	}
	policy := partition.EvictLRU
	switch *eviction {
	case "lru":
	case "random":
		policy = partition.EvictRandom
	default:
		log.Fatalf("cpserver: unknown eviction %q", *eviction)
	}

	addrs, err := instanceAddrs(*addr, *instances)
	if err != nil {
		log.Fatalf("cpserver: %v", err)
	}
	if *mcAddr != "" {
		if _, err := instanceAddrs(*mcAddr, *instances); err != nil {
			log.Fatalf("cpserver: bad -memcached %q: %v", *mcAddr, err)
		}
	}

	if *chaosOn {
		if *backend == "memcache" {
			log.Fatalf("cpserver: -chaos is not supported by the memcache backend")
		}
		director = chaos.New(chaos.Config{
			Seed: *chaosSeed,
			// Scheduled kill rules fire the same drill POST /kill runs:
			// stop the instance, leave it in the ring, let the failure
			// detector earn its keep.
			Kill: func(target string) error {
				a := adminRef.Load()
				if a == nil {
					return fmt.Errorf("coordinator not ready")
				}
				return a.kill(target)
			},
		})
		fmt.Printf("chaos director armed (seed %d); manage rules via /chaos on -statsaddr\n", *chaosSeed)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	insts := make([]*instance, 0, *instances)
	for i, a := range addrs {
		in, err := startInstance(a, mctextAddrFor(i), instanceDir(i), capBytes, policy)
		if err != nil {
			for _, prev := range insts {
				prev.close()
			}
			log.Fatalf("cpserver: instance %d: %v", i, err)
		}
		insts = append(insts, in)
		fmt.Printf("%s instance %d listening on %s (capacity %s, %d workers)\n",
			*backend, i, in.addr, *capacity, *workers)
		if in.mc != nil {
			fmt.Printf("  memcached front-end for instance %d on %s\n", i, in.mc.Addr())
		}
	}
	if *instances > 1 {
		list := ""
		for i, in := range insts {
			if i > 0 {
				list += ","
			}
			list += in.addr
		}
		fmt.Printf("cluster: point clients at -addrs %s\n", list)
	}

	// The admin coordinator owns the (now mutable) instance list and the
	// live-migration machinery behind /join and /leave.
	host, portStr, _ := net.SplitHostPort(*addr)
	basePort, _ := strconv.Atoi(portStr)
	adm, err := newAdmin(insts, capBytes, policy, host, basePort)
	if err != nil {
		log.Fatalf("cpserver: coordinator: %v", err)
	}
	adminRef.Store(adm)
	if *replicas >= 2 {
		adm.opMu.Lock()
		adm.rewire()
		adm.opMu.Unlock()
		events.Info("replication_wired", "replicas", *replicas, "links", func() int {
			s := adm.replicationSummary()
			n, _ := s["links"].(int)
			return n
		}())
		if *autoPromote {
			det, err := detect.New(detect.Config{
				Probe:     adm.probe,
				Act:       adm.autoPromote,
				Interval:  *failoverInterval,
				DownAfter: *failoverAfter,
				Cooldown:  *failoverCooldown,
			})
			if err != nil {
				log.Fatalf("cpserver: failure detector: %v", err)
			}
			adm.det = det
			adm.refreshDetector()
			det.Start()
			events.Info("failover_armed", "downAfter", failoverAfter.String(), "cooldown", failoverCooldown.String())
		}
	}

	var statsSrv *http.Server
	if *statsAddr != "" {
		statsSrv, err = serveStats(*statsAddr, adm)
		if err != nil {
			log.Fatalf("cpserver: stats endpoint: %v", err)
		}
	}

	waitAndReport(stop, adm.totalRequests)

	if statsSrv != nil {
		statsSrv.Close()
	}
	adm.close()
	for _, in := range adm.instances() {
		in.close()
	}
}

// waitAndReport blocks until a signal, printing throughput periodically.
func waitAndReport(stop <-chan os.Signal, requests func() int64) {
	if *statsEvery <= 0 {
		<-stop
		return
	}
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	last := requests()
	lastT := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			now := requests()
			dt := time.Since(lastT)
			fmt.Printf("%s: %.3g requests/sec (%d total)\n",
				time.Now().Format("15:04:05"), float64(now-last)/dt.Seconds(), now)
			last, lastT = now, time.Now()
		}
	}
}
