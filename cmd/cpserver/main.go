// Command cpserver runs a key/value cache server speaking the CPHash
// binary protocol over TCP — version 2: the paper's LOOKUP/INSERT
// (Section 4.1) plus DELETE, per-request TTLs, and variable-length string
// keys (GET_STR/SET_STR/DEL_STR) — backed by one of the three designs the
// paper compares:
//
//	cpserver -backend cphash    # CPSERVER: message-passing CPHASH table
//	cpserver -backend lockhash  # LOCKSERVER: spinlocked LOCKHASH table
//	cpserver -backend memcache  # one single-lock instance (memcached-style)
//
// Examples:
//
//	cpserver -addr :9090 -capacity 256MiB -workers 4 -backend cphash
//	cpserver -addr 127.0.0.1:0 -backend lockhash -eviction random
//
// The server prints the bound address on startup (useful with :0) and
// periodic throughput lines; SIGINT/SIGTERM shuts it down cleanly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/memcache"
	"cphash/internal/partition"
	"cphash/internal/sizeparse"
)

var (
	addr       = flag.String("addr", "127.0.0.1:9090", "TCP listen address")
	backend    = flag.String("backend", "cphash", "cphash | lockhash | memcache")
	capacity   = flag.String("capacity", "64MiB", "table capacity (e.g. 1MiB, 256MiB)")
	workers    = flag.Int("workers", 2, "client threads (cphash/lockhash)")
	partitions = flag.Int("partitions", 0, "partition count (0 = design default)")
	eviction   = flag.String("eviction", "lru", "lru | random")
	pin        = flag.Bool("pin", false, "dedicate an OS thread to each CPHASH server goroutine")
	statsEvery = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
)

func main() {
	flag.Parse()
	capBytes, err := sizeparse.Parse(*capacity)
	if err != nil {
		log.Fatalf("cpserver: %v", err)
	}
	policy := partition.EvictLRU
	switch *eviction {
	case "lru":
	case "random":
		policy = partition.EvictRandom
	default:
		log.Fatalf("cpserver: unknown eviction %q", *eviction)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	switch *backend {
	case "memcache":
		inst, err := memcache.ServeInstance(*addr, capBytes)
		if err != nil {
			log.Fatalf("cpserver: %v", err)
		}
		fmt.Printf("memcache-style instance listening on %s (capacity %s)\n", inst.Addr(), *capacity)
		waitAndReport(stop, func() int64 { return inst.Requests() })
		inst.Close()

	case "cphash", "lockhash":
		var newBackend func(int) (kvserver.Backend, error)
		var closeTable func()
		if *backend == "cphash" {
			table, err := core.New(core.Config{
				Partitions:    *partitions,
				CapacityBytes: capBytes,
				MaxClients:    *workers,
				Policy:        policy,
				LockOSThread:  *pin,
			})
			if err != nil {
				log.Fatalf("cpserver: %v", err)
			}
			newBackend = kvserver.NewCPHashBackend(table)
			closeTable = table.Close
			fmt.Printf("CPSERVER: %d partitions, %d client threads, capacity %s\n",
				table.NumPartitions(), *workers, *capacity)
		} else {
			table, err := lockhash.New(lockhash.Config{
				Partitions:    *partitions,
				CapacityBytes: capBytes,
				Policy:        policy,
			})
			if err != nil {
				log.Fatalf("cpserver: %v", err)
			}
			newBackend = kvserver.NewLockHashBackend(table)
			closeTable = func() {}
			fmt.Printf("LOCKSERVER: %d partitions, %d client threads, capacity %s\n",
				table.NumPartitions(), *workers, *capacity)
		}
		srv, err := kvserver.Serve(kvserver.Config{
			Addr:       *addr,
			Workers:    *workers,
			NewBackend: newBackend,
		})
		if err != nil {
			log.Fatalf("cpserver: %v", err)
		}
		fmt.Printf("listening on %s\n", srv.Addr())
		waitAndReport(stop, func() int64 { return srv.Stats().Requests })
		srv.Close()
		closeTable()

	default:
		log.Fatalf("cpserver: unknown backend %q", *backend)
	}
}

// waitAndReport blocks until a signal, printing throughput periodically.
func waitAndReport(stop <-chan os.Signal, requests func() int64) {
	if *statsEvery <= 0 {
		<-stop
		return
	}
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	last := requests()
	lastT := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			now := requests()
			dt := time.Since(lastT)
			fmt.Printf("%s: %.3g requests/sec (%d total)\n",
				time.Now().Format("15:04:05"), float64(now-last)/dt.Seconds(), now)
			last, lastT = now, time.Now()
		}
	}
}
