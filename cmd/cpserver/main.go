// Command cpserver runs key/value cache servers speaking the CPHash
// binary protocol over TCP — version 2: the paper's LOOKUP/INSERT
// (Section 4.1) plus DELETE, per-request TTLs, and variable-length string
// keys (GET_STR/SET_STR/DEL_STR) — backed by one of the three designs the
// paper compares:
//
//	cpserver -backend cphash    # CPSERVER: message-passing CPHASH table
//	cpserver -backend lockhash  # LOCKSERVER: spinlocked LOCKHASH table
//	cpserver -backend memcache  # single-lock instances (memcached-style)
//
// With -instances N, one process runs N independent server instances on
// consecutive ports — the paper's Figure 13/14 multi-instance memcached
// setup in one command. Each instance gets its own table of the full
// -capacity; clients (internal/client, cploadgen) spread keys over the
// instances through the cluster continuum.
//
// Examples:
//
//	cpserver -addr :9090 -capacity 256MiB -workers 4 -backend cphash
//	cpserver -addr 127.0.0.1:9090 -instances 3 -statsaddr 127.0.0.1:8070
//
// The server prints each bound address on startup (useful with :0) and
// periodic throughput lines; SIGINT/SIGTERM shuts it down cleanly. With
// -statsaddr, runtime counters — hits, misses, expired, evictions, active
// connections — are served as JSON at /stats and through expvar at
// /debug/vars.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/memcache"
	"cphash/internal/partition"
	"cphash/internal/sizeparse"
)

var (
	addr       = flag.String("addr", "127.0.0.1:9090", "base TCP listen address; instance i listens on port+i")
	instances  = flag.Int("instances", 1, "server instances to run in this process")
	backend    = flag.String("backend", "cphash", "cphash | lockhash | memcache")
	capacity   = flag.String("capacity", "64MiB", "table capacity per instance (e.g. 1MiB, 256MiB)")
	workers    = flag.Int("workers", 2, "client threads per instance (cphash/lockhash)")
	partitions = flag.Int("partitions", 0, "partition count (0 = design default)")
	eviction   = flag.String("eviction", "lru", "lru | random")
	pin        = flag.Bool("pin", false, "dedicate an OS thread to each CPHASH server goroutine")
	statsEvery = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
	statsAddr  = flag.String("statsaddr", "", "optional HTTP address serving /stats JSON and /debug/vars")
)

// instance is one running server plus its observability hooks.
type instance struct {
	addr     string
	requests func() int64
	snapshot func() map[string]any
	close    func()
}

// instanceAddrs derives the listen address of each instance from the base
// address: port 0 stays 0 (kernel-assigned) for every instance, a fixed
// port p becomes p, p+1, ..., p+n-1.
func instanceAddrs(base string, n int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("bad -addr %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad -addr port %q: %w", portStr, err)
	}
	out := make([]string, n)
	for i := range out {
		p := port
		if port != 0 {
			p = port + i
		}
		out[i] = net.JoinHostPort(host, strconv.Itoa(p))
	}
	return out, nil
}

// tableSnapshot renders aggregated table counters in the shape the /stats
// endpoint serves for every backend.
func tableSnapshot(st partition.Stats) map[string]any {
	return map[string]any{
		"lookups":   st.Lookups,
		"hits":      st.Hits,
		"misses":    st.Lookups - st.Hits,
		"inserts":   st.Inserts,
		"insertErr": st.InsertErr,
		"deletes":   st.Deletes,
		"expired":   st.Expired,
		"evictions": st.Evictions,
		"elements":  st.Elements,
	}
}

// startInstance builds one table + server pair for the selected backend.
func startInstance(addr string, capBytes int, policy partition.EvictionPolicy) (*instance, error) {
	switch *backend {
	case "memcache":
		inst, err := memcache.ServeInstance(addr, capBytes)
		if err != nil {
			return nil, err
		}
		return &instance{
			addr:     inst.Addr(),
			requests: inst.Requests,
			snapshot: func() map[string]any {
				return map[string]any{
					"requests": inst.Requests(),
					"elements": inst.Len(),
				}
			},
			close: func() { inst.Close() },
		}, nil

	case "cphash", "lockhash":
		var (
			newBackend func(int) (kvserver.Backend, error)
			tableStats func() partition.Stats
			closeTable func()
		)
		if *backend == "cphash" {
			table, err := core.New(core.Config{
				Partitions:    *partitions,
				CapacityBytes: capBytes,
				MaxClients:    *workers,
				Policy:        policy,
				LockOSThread:  *pin,
			})
			if err != nil {
				return nil, err
			}
			newBackend = kvserver.NewCPHashBackend(table)
			tableStats = func() partition.Stats { return table.Stats().Stats }
			closeTable = table.Close
		} else {
			table, err := lockhash.New(lockhash.Config{
				Partitions:    *partitions,
				CapacityBytes: capBytes,
				Policy:        policy,
			})
			if err != nil {
				return nil, err
			}
			newBackend = kvserver.NewLockHashBackend(table)
			tableStats = table.Stats
			closeTable = func() {}
		}
		srv, err := kvserver.Serve(kvserver.Config{
			Addr:       addr,
			Workers:    *workers,
			NewBackend: newBackend,
		})
		if err != nil {
			closeTable()
			return nil, err
		}
		return &instance{
			addr:     srv.Addr(),
			requests: func() int64 { return srv.Stats().Requests },
			snapshot: func() map[string]any {
				ss := srv.Stats()
				out := map[string]any{
					"connections": ss.Connections,
					"activeConns": ss.Active,
					"requests":    ss.Requests,
					"batches":     ss.Batches,
				}
				for k, v := range tableSnapshot(tableStats()) {
					out[k] = v
				}
				return out
			},
			close: func() { srv.Close(); closeTable() },
		}, nil

	default:
		return nil, fmt.Errorf("unknown backend %q", *backend)
	}
}

// snapshotAll renders the /stats document: one entry per instance plus the
// backend name, so a scraper can tell deployments apart.
func snapshotAll(insts []*instance) map[string]any {
	list := make([]map[string]any, len(insts))
	for i, in := range insts {
		s := in.snapshot()
		s["addr"] = in.addr
		list[i] = s
	}
	return map[string]any{"backend": *backend, "instances": list}
}

// serveStats exposes /stats (JSON) and /debug/vars (expvar) on its own
// mux, keeping the default mux untouched.
func serveStats(addr string, insts []*instance) (*http.Server, error) {
	expvar.Publish("cpserver", expvar.Func(func() any { return snapshotAll(insts) }))
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshotAll(insts))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("stats endpoint on http://%s/stats (expvar at /debug/vars)\n", ln.Addr())
	return srv, nil
}

func main() {
	flag.Parse()
	capBytes, err := sizeparse.Parse(*capacity)
	if err != nil {
		log.Fatalf("cpserver: %v", err)
	}
	if *instances <= 0 {
		log.Fatalf("cpserver: -instances must be positive, got %d", *instances)
	}
	policy := partition.EvictLRU
	switch *eviction {
	case "lru":
	case "random":
		policy = partition.EvictRandom
	default:
		log.Fatalf("cpserver: unknown eviction %q", *eviction)
	}

	addrs, err := instanceAddrs(*addr, *instances)
	if err != nil {
		log.Fatalf("cpserver: %v", err)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	insts := make([]*instance, 0, *instances)
	for i, a := range addrs {
		in, err := startInstance(a, capBytes, policy)
		if err != nil {
			for _, prev := range insts {
				prev.close()
			}
			log.Fatalf("cpserver: instance %d: %v", i, err)
		}
		insts = append(insts, in)
		fmt.Printf("%s instance %d listening on %s (capacity %s, %d workers)\n",
			*backend, i, in.addr, *capacity, *workers)
	}
	if *instances > 1 {
		list := ""
		for i, in := range insts {
			if i > 0 {
				list += ","
			}
			list += in.addr
		}
		fmt.Printf("cluster: point clients at -addrs %s\n", list)
	}

	var statsSrv *http.Server
	if *statsAddr != "" {
		statsSrv, err = serveStats(*statsAddr, insts)
		if err != nil {
			log.Fatalf("cpserver: stats endpoint: %v", err)
		}
	}

	waitAndReport(stop, func() int64 {
		var total int64
		for _, in := range insts {
			total += in.requests()
		}
		return total
	})

	if statsSrv != nil {
		statsSrv.Close()
	}
	for _, in := range insts {
		in.close()
	}
}

// waitAndReport blocks until a signal, printing throughput periodically.
func waitAndReport(stop <-chan os.Signal, requests func() int64) {
	if *statsEvery <= 0 {
		<-stop
		return
	}
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	last := requests()
	lastT := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			now := requests()
			dt := time.Since(lastT)
			fmt.Printf("%s: %.3g requests/sec (%d total)\n",
				time.Now().Format("15:04:05"), float64(now-last)/dt.Seconds(), now)
			last, lastT = now, time.Now()
		}
	}
}
