// Command cpsim regenerates the CPHash paper's hardware-counter and
// topology-dependent results on the deterministic cache simulator:
//
//	cpsim -experiment fig6    # Figure 6: cycles + misses per operation
//	cpsim -experiment fig7    # Figure 7: per-function miss breakdown
//	cpsim -experiment fig5    # Figure 5: throughput vs working-set size
//	cpsim -experiment fig8    # Figure 8: same, random eviction
//	cpsim -experiment fig9    # Figure 9: throughput vs table capacity
//	cpsim -experiment fig10   # Figure 10: throughput vs INSERT fraction
//	cpsim -experiment fig11   # Figure 11: per-thread throughput vs threads
//	cpsim -experiment fig12   # Figure 12: 160t/80c vs 80t/80c vs 80t/40c
//	cpsim -experiment all     # everything above, in order
//
// All experiments run on the paper's 8-socket, 80-core, 160-hardware-thread
// machine model. The working-set sweeps (fig5, fig8, fig9) run on a
// 1/64-scale cache hierarchy so the multi-gigabyte axis of the paper fits
// in a simulable footprint; shapes and crossovers are preserved with the
// x-axis shifted left by the same factor (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"cphash/internal/cachesim"
	"cphash/internal/perf"
	"cphash/internal/simhash"
	"cphash/internal/topology"
	"cphash/internal/workload"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run (fig5..fig12, all)")
	rounds     = flag.Int("rounds", 6, "measured rounds per configuration")
	warm       = flag.Int("warm", 3, "warm-up rounds per configuration")
)

func main() {
	flag.Parse()
	run := func(name string, f func()) {
		if *experiment == "all" || *experiment == name {
			f()
		}
	}
	known := map[string]bool{"fig5": true, "fig6": true, "fig7": true, "fig8": true,
		"fig9": true, "fig10": true, "fig11": true, "fig12": true,
		"amd": true, "batch": true, "skew": true, "all": true}
	if !known[*experiment] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run("fig5", fig5)
	run("fig6", fig6)
	run("fig7", fig7)
	run("fig8", fig8)
	run("fig9", fig9)
	run("fig10", fig10)
	run("fig11", fig11)
	run("fig12", fig12)
	run("amd", amd)
	run("batch", batchAblation)
	run("skew", skew)
}

// sweepScale is the cache-scale divisor for the working-set sweeps: a
// 1/8-scale paper machine has ≈33 MB of aggregate cache, so the paper's
// multi-hundred-megabyte x-axis compresses into a simulable range;
// multiply the ws column by 8 to place points on the real machine's axis.
// Rings scale by the same factor so their cache residency matches the
// real configuration.
const sweepScale = 8

// pair runs both simulated tables on one workload/machine configuration.
// ringCap 0 means the full-machine default.
func pair(m topology.Machine, spec workload.Spec, capacity, ringCap int, lru bool) (simhash.Result, simhash.Result) {
	cp := simhash.MustCPHash(simhash.CPConfig{
		Machine: m, Spec: spec, CapacityBytes: capacity, LRU: lru, RingCap: ringCap,
	})
	cp.Preload()
	rcp := cp.Run(*warm, *rounds)

	lh := simhash.MustLockHash(simhash.LockConfig{
		Machine: m, Spec: spec, CapacityBytes: capacity, LRU: lru,
	})
	lh.Preload()
	// LOCKHASH rounds carry fewer ops each; run proportionally more.
	rlh := lh.Run(*warm*4, *rounds*4)
	return rcp, rlh
}

// sweepWS prints a Figure 5/8-style working-set sweep on the scaled machine.
func sweepWS(lru bool) {
	m := topology.PaperMachine().ScaleCaches(sweepScale)
	fmt.Printf("%-10s %10s %16s %16s %8s\n", "ws(scaled)", "ws(paper)", "CPHash q/s", "LockHash q/s", "ratio")
	for _, ws := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 32 << 20} {
		spec := workload.Default(ws)
		rcp, rlh := pair(m, spec, ws, 128/sweepScale, lru)
		cp, lh := rcp.ThroughputQPS(), rlh.ThroughputQPS()
		fmt.Printf("%-10s %10s %16.3g %16.3g %8.2f\n",
			perf.FormatBytes(ws), perf.FormatBytes(ws*sweepScale), cp, lh, cp/lh)
	}
	fmt.Println()
}

func fig5() {
	fmt.Println("=== Figure 5: throughput vs working-set size (LRU eviction) ===")
	fmt.Printf("(1/%d-scale caches and rings: ws(paper) = %d × ws(scaled))\n", sweepScale, sweepScale)
	sweepWS(true)
}

func fig8() {
	fmt.Println("=== Figure 8: throughput vs working-set size (random eviction) ===")
	sweepWS(false)
}

func fig6() {
	fmt.Println("=== Figure 6: per-operation cycles and misses (1 MB ws, LRU) ===")
	rcp, rlh := pair(topology.PaperMachine(), workload.Default(1<<20), 1<<20, 0, true)
	cpc, cps, lhc := rcp.ClientPerOp(), rcp.ServerPerOp(), rlh.ClientPerOp()
	fmt.Printf("%-22s %12s %12s %12s\n", "", "CPHash client", "CPHash server", "LockHash")
	fmt.Printf("%-22s %12.0f %13.0f %12.0f\n", "cycles per op.", cpc.Cycles, cps.Cycles, lhc.Cycles)
	fmt.Printf("%-22s %12.1f %13.1f %12.1f\n", "# of L2 misses", cpc.L2Miss, cps.L2Miss, lhc.L2Miss)
	fmt.Printf("%-22s %12.1f %13.1f %12.1f\n", "# of L3 misses", cpc.L3Miss, cps.L3Miss, lhc.L3Miss)
	fmt.Printf("(paper:                1,126 / 1.0 / 1.9 | 672 / 2.5 / 1.2 | 3,664 / 2.4 / 4.6)\n")
	fmt.Printf("throughput: CPHash %.3g q/s, LockHash %.3g q/s, ratio %.2f (paper ≈1.6×)\n\n",
		rcp.ThroughputQPS(), rlh.ThroughputQPS(), rcp.ThroughputQPS()/rlh.ThroughputQPS())
}

func fig7() {
	fmt.Println("=== Figure 7: per-function cache-miss breakdown (1 MB ws, LRU) ===")
	rcp, rlh := pair(topology.PaperMachine(), workload.Default(1<<20), 1<<20, 0, true)
	fmt.Print(rlh.BreakdownTable("LOCKHASH", rlh.ClientThreads,
		[]cachesim.Tag{simhash.TagLock, simhash.TagTraverse, simhash.TagInsert}))
	fmt.Println()
	fmt.Print(rcp.BreakdownTable("CPHASH client thread", rcp.ClientThreads,
		[]cachesim.Tag{simhash.TagSend, simhash.TagRecvResp, simhash.TagData}))
	fmt.Println()
	fmt.Print(rcp.BreakdownTable("CPHASH server thread", rcp.ServerThreads,
		[]cachesim.Tag{simhash.TagRecv, simhash.TagSendResp, simhash.TagExec}))
	fmt.Println()
}

func fig9() {
	fmt.Println("=== Figure 9: throughput vs table capacity (128 MB ws scaled to 8 MB) ===")
	m := topology.PaperMachine().ScaleCaches(sweepScale)
	ws := 8 << 20
	fmt.Printf("%-10s %16s %16s %8s\n", "capacity", "CPHash q/s", "LockHash q/s", "ratio")
	for _, frac := range []int{1, 4, 16, 64} {
		capacity := ws / frac
		spec := workload.Default(ws)
		rcp, rlh := pair(m, spec, capacity, 128/sweepScale, true)
		cp, lh := rcp.ThroughputQPS(), rlh.ThroughputQPS()
		fmt.Printf("%-10s %16.3g %16.3g %8.2f\n", perf.FormatBytes(capacity), cp, lh, cp/lh)
	}
	fmt.Println()
}

func fig10() {
	fmt.Println("=== Figure 10: throughput vs INSERT fraction (128 MB ws scaled to 8 MB) ===")
	m := topology.PaperMachine().ScaleCaches(sweepScale)
	ws := 8 << 20
	fmt.Printf("%-8s %16s %16s %8s\n", "insert", "CPHash q/s", "LockHash q/s", "ratio")
	for _, ratio := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		spec := workload.Default(ws)
		spec.InsertRatio = ratio
		rcp, rlh := pair(m, spec, ws, 128/sweepScale, true)
		cp, lh := rcp.ThroughputQPS(), rlh.ThroughputQPS()
		fmt.Printf("%-8.1f %16.3g %16.3g %8.2f\n", ratio, cp, lh, cp/lh)
	}
	fmt.Println()
}

func fig11() {
	fmt.Println("=== Figure 11: throughput per hardware thread vs thread count (1 MB ws) ===")
	fmt.Printf("%-10s %8s %18s %18s\n", "sockets", "threads", "CPHash q/s/thr", "LockHash q/s/thr")
	for _, sockets := range []int{1, 2, 4, 6, 8} {
		m := topology.PaperMachine()
		m.Sockets = sockets
		spec := workload.Default(1 << 20)
		rcp, rlh := pair(m, spec, 1<<20, 0, true)
		fmt.Printf("%-10d %8d %18.3g %18.3g\n",
			sockets, m.Threads(), rcp.PerThreadQPS(),
			rlh.ThroughputQPS()/float64(len(rlh.ClientThreads)))
	}
	fmt.Println()
}

func fig12() {
	fmt.Println("=== Figure 12: thread/core configurations (1 MB ws) ===")
	spec := workload.Default(1 << 20)
	runCfg := func(label string, m topology.Machine, clients, servers []int) {
		cp := simhash.MustCPHash(simhash.CPConfig{
			Machine: m, Spec: spec, LRU: true, ClientThreads: clients, ServerThreads: servers,
		})
		cp.Preload()
		rcp := cp.Run(*warm, *rounds)
		var lhThreads []int
		lhThreads = append(lhThreads, clients...)
		lhThreads = append(lhThreads, servers...)
		lh := simhash.MustLockHash(simhash.LockConfig{Machine: m, Spec: spec, LRU: true, Threads: lhThreads})
		lh.Preload()
		rlh := lh.Run(*warm*4, *rounds*4)
		fmt.Printf("%-14s %16.3g %16.3g\n", label, rcp.ThroughputQPS(), rlh.ThroughputQPS())
	}
	fmt.Printf("%-14s %16s %16s\n", "config", "CPHash q/s", "LockHash q/s")

	full := topology.PaperMachine()
	cl, sv := simhash.PaperThreads(full)
	runCfg("160t on 80c", full, cl, sv)

	var cl80, sv80 []int
	for c := 0; c < full.Cores(); c++ {
		tid := full.ThreadID(c/full.CoresPerSocket, c%full.CoresPerSocket, 0)
		if c%2 == 0 {
			cl80 = append(cl80, tid)
		} else {
			sv80 = append(sv80, tid)
		}
	}
	runCfg("80t on 80c", full, cl80, sv80)

	half := full
	half.Sockets = 4
	clh, svh := simhash.PaperThreads(half)
	runCfg("80t on 40c", half, clh, svh)
	fmt.Println()
}

// amd runs the Figure 6 configuration on the paper's secondary platform,
// the 48-core AMD machine (§6: "The performance results on the AMD system
// are similar").
func amd() {
	fmt.Println("=== AMD 48-core machine (paper §6: results similar to Intel) ===")
	rcp, rlh := pair(topology.AMDMachine(), workload.Default(1<<20), 1<<20, 0, true)
	fmt.Printf("CPHash %.3g q/s, LockHash %.3g q/s, ratio %.2f\n\n",
		rcp.ThroughputQPS(), rlh.ThroughputQPS(), rcp.ThroughputQPS()/rlh.ThroughputQPS())
}

// skew compares uniform and Zipf-skewed key popularity — an extension
// beyond the paper's uniform workloads. Both designs slow down (hot keys
// serialize), but LOCKHASH collapses much harder: the hot keys' lock
// words, headers and LRU lines are hammered by all 160 threads, paying
// queued coherence transfers per operation, while CPHASH's hot-partition
// server works through its batched message ring with the hot lines
// resident in its own cache. Skew therefore *widens* the gap — message
// passing's advantage is precisely that contention becomes queueing
// instead of cache-line ping-pong.
func skew() {
	fmt.Println("=== extension: uniform vs Zipf-skewed keys (1 MB ws) ===")
	fmt.Printf("%-10s %16s %16s %8s\n", "dist", "CPHash q/s", "LockHash q/s", "ratio")
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipfian} {
		spec := workload.Default(1 << 20)
		spec.Dist = dist
		rcp, rlh := pair(topology.PaperMachine(), spec, 1<<20, 0, true)
		name := "uniform"
		if dist == workload.Zipfian {
			name = "zipf-1.07"
		}
		cp, lh := rcp.ThroughputQPS(), rlh.ThroughputQPS()
		fmt.Printf("%-10s %16.3g %16.3g %8.2f\n", name, cp, lh, cp/lh)
	}
	fmt.Println()
}

// batchAblation sweeps the client pipeline batch on the simulator, showing
// the §6.1 batching mechanism directly: small batches cannot fill message
// cache lines, so per-op messaging misses rise.
func batchAblation() {
	fmt.Println("=== §6.1 ablation (simulated): client batch size vs messaging misses ===")
	fmt.Printf("%-8s %14s %18s\n", "batch", "CPHash q/s", "client send L3/op")
	for _, batch := range []int{16, 64, 256, 512, 1024} {
		cp := simhash.MustCPHash(simhash.CPConfig{
			Spec: workload.Default(1 << 20), LRU: true, OpsPerClientPerRound: batch,
		})
		cp.Preload()
		r := cp.Run(*warm, *rounds)
		send := r.TagPerOp(r.ClientThreads, simhash.TagSend)
		fmt.Printf("%-8d %14.3g %18.2f\n", batch, r.ThroughputQPS(), send.L3Miss)
	}
	fmt.Println()
}
