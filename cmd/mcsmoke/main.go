// mcsmoke drives a memcached-compatible listener through the full
// command set — set/get/gets/cas/add/replace/append/prepend/incr/decr/
// delete/touch/version — and exits non-zero on the first mismatch. CI
// points it at a cpserver -memcached listener to prove the text
// front-end round-trips like stock memcached.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"cphash/internal/mcclient"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "memcached listener address")
	timeout := flag.Duration("timeout", 5*time.Second, "dial timeout")
	flag.Parse()

	if err := run(*addr, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "mcsmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("mcsmoke: OK")
}

func run(addr string, timeout time.Duration) error {
	c, err := mcclient.Dial(addr, timeout)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()

	if v, err := c.Version(); err != nil || v == "" {
		return fmt.Errorf("version: %q, %v", v, err)
	}

	// set / get round-trip, flags preserved.
	if err := c.Set("smoke:k1", []byte("hello"), 42, 0); err != nil {
		return fmt.Errorf("set: %w", err)
	}
	it, err := c.Get("smoke:k1")
	if err != nil {
		return fmt.Errorf("get after set: %w", err)
	}
	if !bytes.Equal(it.Value, []byte("hello")) || it.Flags != 42 {
		return fmt.Errorf("get: got %q flags %d, want %q flags 42", it.Value, it.Flags, "hello")
	}

	// gets → cas succeeds once, then conflicts with the stale token.
	it, err = c.Gets("smoke:k1")
	if err != nil {
		return fmt.Errorf("gets: %w", err)
	}
	if it.CAS == 0 {
		return errors.New("gets: zero cas token")
	}
	if err := c.Cas("smoke:k1", []byte("hello2"), 42, 0, it.CAS); err != nil {
		return fmt.Errorf("cas with fresh token: %w", err)
	}
	if err := c.Cas("smoke:k1", []byte("hello3"), 42, 0, it.CAS); !errors.Is(err, mcclient.ErrExists) {
		return fmt.Errorf("cas with stale token: got %v, want ErrExists", err)
	}

	// add respects presence; replace respects absence.
	if err := c.Add("smoke:k1", []byte("x"), 0, 0); !errors.Is(err, mcclient.ErrNotStored) {
		return fmt.Errorf("add on present key: got %v, want ErrNotStored", err)
	}
	if err := c.Replace("smoke:absent", []byte("x"), 0, 0); !errors.Is(err, mcclient.ErrNotStored) {
		return fmt.Errorf("replace on absent key: got %v, want ErrNotStored", err)
	}

	// append/prepend concatenate around the stored value.
	if err := c.Append("smoke:k1", []byte("!")); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	if err := c.Prepend("smoke:k1", []byte(">")); err != nil {
		return fmt.Errorf("prepend: %w", err)
	}
	it, err = c.Get("smoke:k1")
	if err != nil || !bytes.Equal(it.Value, []byte(">hello2!")) {
		return fmt.Errorf("get after append/prepend: %q, %v (want %q)", it.Value, err, ">hello2!")
	}

	// incr / decr on a numeric value; decr floors at zero.
	if err := c.Set("smoke:n", []byte("10"), 0, 0); err != nil {
		return fmt.Errorf("set counter: %w", err)
	}
	if n, err := c.Incr("smoke:n", 5); err != nil || n != 15 {
		return fmt.Errorf("incr: got %d, %v, want 15", n, err)
	}
	if n, err := c.Decr("smoke:n", 100); err != nil || n != 0 {
		return fmt.Errorf("decr floor: got %d, %v, want 0", n, err)
	}
	if _, err := c.Incr("smoke:absent", 1); !errors.Is(err, mcclient.ErrCacheMiss) {
		return fmt.Errorf("incr on absent key: got %v, want ErrCacheMiss", err)
	}

	// multi-key get: one round trip, misses silently absent.
	m, err := c.GetMulti("smoke:k1", "smoke:n", "smoke:absent")
	if err != nil {
		return fmt.Errorf("get multi: %w", err)
	}
	if len(m) != 2 || m["smoke:k1"] == nil || m["smoke:n"] == nil {
		return fmt.Errorf("get multi: got %d items, want smoke:k1 and smoke:n", len(m))
	}

	// touch present and absent keys.
	if err := c.Touch("smoke:k1", 3600); err != nil {
		return fmt.Errorf("touch: %w", err)
	}
	if err := c.Touch("smoke:absent", 3600); !errors.Is(err, mcclient.ErrCacheMiss) {
		return fmt.Errorf("touch absent: got %v, want ErrCacheMiss", err)
	}

	// delete once, then NOT_FOUND.
	if err := c.Delete("smoke:k1"); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	if err := c.Delete("smoke:k1"); !errors.Is(err, mcclient.ErrCacheMiss) {
		return fmt.Errorf("second delete: got %v, want ErrCacheMiss", err)
	}
	if _, err := c.Get("smoke:k1"); !errors.Is(err, mcclient.ErrCacheMiss) {
		return fmt.Errorf("get after delete: got %v, want ErrCacheMiss", err)
	}

	// stats answers and counts this connection.
	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st["curr_connections"] == "" {
		return errors.New("stats: missing curr_connections")
	}
	return nil
}
