// Package cphash is a Go implementation of CPHASH, the cache-partitioned
// hash table of Metreveli, Zeldovich and Kaashoek (MIT-CSAIL-TR-2011-051 /
// PPoPP 2012), together with LOCKHASH, the paper's fine-grained-locking
// baseline, and the key/value cache servers built on both.
//
// A CPHASH table is split into partitions, each owned by a dedicated server
// goroutine. Client goroutines never touch partition state: they send
// Lookup/Insert operations over per-pair single-producer/single-consumer
// rings in shared memory, batched and packed so several messages ride one
// cache line. On large multicore machines this trades one cheap cache-line
// transfer (the message) for the several expensive ones a lock-based table
// pays per operation (lock, bucket, element, LRU list).
//
// # Quick start
//
//	t, _ := cphash.New(cphash.Options{Capacity: 64 << 20})
//	defer t.Close()
//	c := t.MustClient(0)            // one handle per goroutine
//	defer c.Close()
//	c.Put(cphash.KeyOf(42), []byte("value"))
//	v, ok := c.Get(cphash.KeyOf(42), nil)
//	c.PutTTL(cphash.KeyOf(43), []byte("soon gone"), time.Second)
//	c.Delete(cphash.KeyOf(42))
//
// The locking baseline needs no handles:
//
//	l, _ := cphash.NewLocked(cphash.Options{Capacity: 64 << 20})
//	l.Put(7, []byte("x"))
//
// Keys are 60-bit integers, as in the paper; KeyOf masks a uint64 down.
// StringTable (see string.go) implements the paper's Section 8.2 extension
// to arbitrary keys on top of either table.
//
// # Operations, TTLs and expiry
//
// Both tables expose Get, Put, PutTTL and Delete (the KV interface). A
// PutTTL entry becomes invisible once its time-to-live elapses on the
// table's clock (millisecond resolution, rounded up; a TTL of 0 means
// "never expires"). Expiry is lazy, preserving the paper's cheap hot
// path: an expired element is reclaimed at its next lookup, or by the
// bounded sweep a full partition runs before evicting live elements —
// dead weight goes first, so TTLs reduce eviction pressure. Expirations
// are counted separately from deletes and evictions in Stats.Expired.
//
// The TCP servers built on these tables (internal/kvserver, cmd/cpserver)
// speak wire-protocol version 2, which carries DELETE, per-request TTLs
// and variable-length string keys end-to-end; see internal/protocol.
package cphash

import (
	"fmt"
	"time"

	"cphash/internal/core"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
)

// Key is a 60-bit CPHash key.
type Key = partition.Key

// MaxKey is the largest valid key (2^60 − 1). Larger uint64s are masked.
const MaxKey = partition.MaxKey

// KeyOf masks an arbitrary uint64 to the 60-bit key space.
func KeyOf(x uint64) Key { return x & MaxKey }

// Eviction selects the policy used when a table is full.
type Eviction = partition.EvictionPolicy

// Eviction policies.
const (
	// EvictionLRU evicts the least recently used element (default).
	EvictionLRU = partition.EvictLRU
	// EvictionRandom evicts a random element and maintains no LRU state.
	EvictionRandom = partition.EvictRandom
)

// Client is a per-goroutine handle for issuing operations against a Table;
// see Table.Client. It exposes both a synchronous API (Get/Put/Delete) and
// the paper's pipelined asynchronous API (LookupAsync/InsertAsync/Wait).
type Client = core.Client

// Op is an in-flight asynchronous operation; see Client.
type Op = core.Op

// Stats aggregates table activity counters.
type Stats = core.Stats

// Options configures New and NewLocked. The zero value of every field gets
// a sensible default.
type Options struct {
	// Capacity is the table's payload budget in bytes — the memory holding
	// values plus a 64-byte per-element header charge. Required.
	Capacity int
	// Partitions is the partition count. For CPHASH this is also the
	// number of server goroutines (default: GOMAXPROCS). For LOCKHASH it
	// defaults to the paper's 4,096.
	Partitions int
	// Clients caps how many Client handles a CPHASH table hands out
	// (default 1; ignored by NewLocked).
	Clients int
	// Eviction selects the eviction policy (default LRU).
	Eviction Eviction
	// RingCapacity is the per-direction message-ring capacity for CPHASH
	// (power of two; default 4,096; ignored by NewLocked).
	RingCapacity int
	// PinThreads dedicates an OS thread to each CPHASH server goroutine,
	// the closest Go can get to the paper's core pinning. Leave false on
	// machines with few CPUs.
	PinThreads bool
	// Seed makes hashing/eviction deterministic (0 = fixed default).
	Seed uint64
}

// Table is a CPHASH hash table. Operations go through per-goroutine Client
// handles (Table.Client). Close stops the server goroutines.
type Table struct {
	*core.Table
}

// New builds a CPHASH table and starts its server goroutines.
func New(o Options) (*Table, error) {
	if o.Capacity <= 0 {
		return nil, fmt.Errorf("cphash: Options.Capacity must be positive")
	}
	inner, err := core.New(core.Config{
		Partitions:    o.Partitions,
		CapacityBytes: o.Capacity,
		MaxClients:    o.Clients,
		RingCapacity:  o.RingCapacity,
		Policy:        o.Eviction,
		LockOSThread:  o.PinThreads,
		Seed:          o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Table{inner}, nil
}

// MustNew is New that panics on error.
func MustNew(o Options) *Table {
	t, err := New(o)
	if err != nil {
		panic(err)
	}
	return t
}

// LockedTable is LOCKHASH: the same partition store protected by per-
// partition spinlocks. All methods are safe for arbitrary concurrent use.
type LockedTable = lockhash.Table

// NewLocked builds a LOCKHASH table.
func NewLocked(o Options) (*LockedTable, error) {
	if o.Capacity <= 0 {
		return nil, fmt.Errorf("cphash: Options.Capacity must be positive")
	}
	return lockhash.New(lockhash.Config{
		Partitions:    o.Partitions,
		CapacityBytes: o.Capacity,
		Policy:        o.Eviction,
		Seed:          o.Seed,
	})
}

// MustNewLocked is NewLocked that panics on error.
func MustNewLocked(o Options) *LockedTable {
	t, err := NewLocked(o)
	if err != nil {
		panic(err)
	}
	return t
}

// CapacityForValues converts "n values of valueSize bytes" into the
// Options.Capacity that will hold them, accounting for per-element headers
// and allocator rounding. Use it to size a table in the paper's
// value-bytes convention.
func CapacityForValues(n, valueSize int) int {
	return partition.CapacityForValues(n, valueSize)
}

// KV is the key/value surface shared by a CPHASH Client and a
// LockedTable; StringTable and applications that want to swap the two
// tables program against it.
type KV interface {
	// Get appends the value for key to dst, reporting whether it exists.
	Get(key Key, dst []byte) ([]byte, bool)
	// Put stores value under key, reporting whether space was found.
	Put(key Key, value []byte) bool
	// PutTTL is Put with a time-to-live: the entry becomes invisible once
	// ttl elapses on the table's clock (millisecond resolution, rounded
	// up; 0 = never expires). Expired entries are reclaimed lazily — on
	// their next lookup, or by the sweep eviction runs before sacrificing
	// live elements.
	PutTTL(key Key, value []byte, ttl time.Duration) bool
	// Delete removes key, reporting whether it existed.
	Delete(key Key) bool
}

var (
	_ KV = (*Client)(nil)
	_ KV = (*LockedTable)(nil)
)
