package cphash

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPublicAPIBasics(t *testing.T) {
	tbl, err := New(Options{Capacity: 1 << 20, Partitions: 2, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	c := tbl.MustClient(0)
	defer c.Close()

	if !c.Put(KeyOf(42), []byte("value")) {
		t.Fatal("Put failed")
	}
	v, ok := c.Get(KeyOf(42), nil)
	if !ok || string(v) != "value" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	c.Delete(KeyOf(42))
	if _, ok := c.Get(KeyOf(42), nil); ok {
		t.Fatal("Get hit after Delete")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New accepted zero capacity")
	}
	if _, err := NewLocked(Options{}); err == nil {
		t.Error("NewLocked accepted zero capacity")
	}
}

func TestKeyOf(t *testing.T) {
	if KeyOf(0xFFFFFFFFFFFFFFFF) != MaxKey {
		t.Error("KeyOf did not mask to 60 bits")
	}
	if KeyOf(5) != 5 {
		t.Error("KeyOf changed a small key")
	}
}

func TestLockedTable(t *testing.T) {
	l := MustNewLocked(Options{Capacity: 1 << 20, Partitions: 16})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := KeyOf(uint64(g*1000 + i))
				l.Put(k, []byte(fmt.Sprintf("v%d", k)))
				if v, ok := l.Get(k, nil); !ok || string(v) != fmt.Sprintf("v%d", k) {
					t.Errorf("Get(%d) = %q, %v", k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCapacityForValues(t *testing.T) {
	// The returned capacity must actually hold n values.
	const n, vs = 1000, 8
	l := MustNewLocked(Options{Capacity: CapacityForValues(n, vs), Partitions: 1})
	for i := 0; i < n; i++ {
		if !l.Put(KeyOf(uint64(i)), make([]byte, vs)) {
			t.Fatalf("Put %d failed in a table sized for %d values", i, n)
		}
	}
	if evicted := l.Stats().Evictions; evicted != 0 {
		t.Fatalf("%d evictions while filling to the sized capacity", evicted)
	}
}

func TestStringTableOverBoth(t *testing.T) {
	tbl := MustNew(Options{Capacity: 1 << 20, Partitions: 2})
	defer tbl.Close()
	c := tbl.MustClient(0)
	defer c.Close()
	lt := MustNewLocked(Options{Capacity: 1 << 20})

	for name, kv := range map[string]KV{"cphash": c, "lockhash": lt} {
		st := NewStringTable(kv)
		if !st.Put("hello", []byte("world")) {
			t.Fatalf("%s: Put failed", name)
		}
		v, ok := st.Get("hello", nil)
		if !ok || string(v) != "world" {
			t.Fatalf("%s: Get = %q, %v", name, v, ok)
		}
		if _, ok := st.Get("absent", nil); ok {
			t.Fatalf("%s: hit for absent key", name)
		}
		// Empty value and empty key round-trip.
		st.Put("", nil)
		if v, ok := st.Get("", nil); !ok || len(v) != 0 {
			t.Fatalf("%s: empty key/value broken: %q %v", name, v, ok)
		}
		// Delete removes; a repeat reports absent.
		if !st.Delete("hello") {
			t.Fatalf("%s: Delete(hello) reported absent", name)
		}
		if st.Delete("hello") {
			t.Fatalf("%s: second Delete(hello) reported found", name)
		}
		if _, ok := st.Get("hello", nil); ok {
			t.Fatalf("%s: Get after Delete hit", name)
		}
		// A short TTL ages an entry out (wall clock; generous deadline).
		if !st.PutTTL("flash", []byte("gone soon"), 50*time.Millisecond) {
			t.Fatalf("%s: PutTTL failed", name)
		}
		if v, ok := st.Get("flash", nil); !ok || string(v) != "gone soon" {
			t.Fatalf("%s: Get before TTL = %q, %v", name, v, ok)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok := st.Get("flash", nil); !ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: TTL entry still visible after 5s", name)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestStringTableQuick(t *testing.T) {
	lt := MustNewLocked(Options{Capacity: 8 << 20})
	st := NewStringTable(lt)
	model := map[string]string{}
	f := func(k, v string) bool {
		if len(k) > 100 || len(v) > 200 {
			return true
		}
		if !st.Put(k, []byte(v)) {
			return false
		}
		model[k] = v
		for mk, mv := range model {
			got, ok := st.Get(mk, nil)
			if !ok || string(got) != mv {
				return false
			}
			break // spot-check one existing key per step
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncPublicAPI(t *testing.T) {
	tbl := MustNew(Options{Capacity: 1 << 20, Partitions: 2})
	defer tbl.Close()
	c := tbl.MustClient(0)
	defer c.Close()

	vals := make([][]byte, 100)
	ops := make([]*Op, 100)
	for i := range ops {
		vals[i] = []byte(fmt.Sprintf("v%03d", i))
		ops[i] = c.InsertAsync(KeyOf(uint64(i)), vals[i])
	}
	c.WaitAll()
	for _, o := range ops {
		if !o.Hit() {
			t.Fatal("async insert failed")
		}
		c.Release(o)
	}
	look := make([]*Op, 100)
	for i := range look {
		look[i] = c.LookupAsync(KeyOf(uint64(i)))
	}
	c.WaitAll()
	for i, o := range look {
		if !o.Hit() || string(o.Value()) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("lookup %d = %q (hit=%v)", i, o.Value(), o.Hit())
		}
		c.Release(o)
	}
}
