// Analysis: the paper's core argument, made visible — run the CPHASH and
// LOCKHASH access patterns over the deterministic cache simulator of the
// 80-core paper machine and print where every cache-line transfer goes
// (Figures 6 and 7). Use this example to explore what-if questions the
// paper raises: what if values were bigger? what if the machine had more
// sockets per... etc.
//
//	go run ./examples/analysis [-ws 1MiB] [-sockets 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"cphash/internal/cachesim"
	"cphash/internal/simhash"
	"cphash/internal/topology"
	"cphash/internal/workload"
)

var (
	wsKB    = flag.Int("ws-kb", 1024, "working-set size in KiB")
	sockets = flag.Int("sockets", 8, "simulated sockets (paper machine has 8)")
)

func main() {
	flag.Parse()
	m := topology.PaperMachine()
	if *sockets < 1 || *sockets > 8 {
		log.Fatal("sockets must be 1..8")
	}
	m.Sockets = *sockets
	spec := workload.Default(*wsKB << 10)

	fmt.Printf("machine: %s\n", m)
	fmt.Printf("workload: %d keys of 8 bytes, 30%% INSERT, LRU eviction\n\n", spec.NumKeys())

	cp := simhash.MustCPHash(simhash.CPConfig{Machine: m, Spec: spec, LRU: true})
	cp.Preload()
	rcp := cp.Run(3, 6)

	lh := simhash.MustLockHash(simhash.LockConfig{Machine: m, Spec: spec, LRU: true})
	lh.Preload()
	rlh := lh.Run(12, 24)

	cpc, cps, lhc := rcp.ClientPerOp(), rcp.ServerPerOp(), rlh.ClientPerOp()
	fmt.Println("— Figure 6: per-operation cost —")
	fmt.Printf("%-18s %14s %14s %12s\n", "", "CPHash client", "CPHash server", "LockHash")
	fmt.Printf("%-18s %14.0f %14.0f %12.0f\n", "cycles/op", cpc.Cycles, cps.Cycles, lhc.Cycles)
	fmt.Printf("%-18s %14.2f %14.2f %12.2f\n", "L2 misses/op", cpc.L2Miss, cps.L2Miss, lhc.L2Miss)
	fmt.Printf("%-18s %14.2f %14.2f %12.2f\n", "L3 misses/op", cpc.L3Miss, cps.L3Miss, lhc.L3Miss)
	fmt.Println()

	fmt.Println("— Figure 7: where the misses happen —")
	fmt.Print(rlh.BreakdownTable("LOCKHASH", rlh.ClientThreads,
		[]cachesim.Tag{simhash.TagLock, simhash.TagTraverse, simhash.TagInsert}))
	fmt.Println()
	fmt.Print(rcp.BreakdownTable("CPHASH client", rcp.ClientThreads,
		[]cachesim.Tag{simhash.TagSend, simhash.TagRecvResp, simhash.TagData}))
	fmt.Println()
	fmt.Print(rcp.BreakdownTable("CPHASH server", rcp.ServerThreads,
		[]cachesim.Tag{simhash.TagRecv, simhash.TagSendResp, simhash.TagExec}))

	fmt.Printf("\nthroughput: CPHash %.3g q/s vs LockHash %.3g q/s → %.2f× (paper: 1.6×–2×)\n",
		rcp.ThroughputQPS(), rlh.ThroughputQPS(), rcp.ThroughputQPS()/rlh.ThroughputQPS())
	fmt.Println("\nthe mechanism: the LOCKHASH rows above pay coherence transfers for the")
	fmt.Println("lock, the bucket chain, and the LRU links on every operation; the CPHASH")
	fmt.Println("server executes those touches out of its private cache and the client")
	fmt.Println("pays only for batched message lines and the value bytes themselves.")
}
