// Cluster demo: a 3-node CPHash cache cluster in one process, driven
// through the sharded client SDK — the architecture of the paper's
// Figure 13/14 multi-instance experiments.
//
// The demo shows the three properties the cluster layer is built around:
//
//  1. Routing: every key deterministically owns a slot on the 256-slot
//     continuum, and slots — not keys — map to nodes.
//
//  2. Failure isolation: killing one node fails only its shards; the
//     other two keep serving.
//
//  3. Minimal rebalancing: adding or removing a member moves only the
//     departing/arriving slots.
//
//     go run ./examples/cluster
package main

import (
	"errors"
	"fmt"
	"log"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
)

func startNode() (*kvserver.Server, error) {
	table, err := lockhash.New(lockhash.Config{CapacityBytes: 8 << 20})
	if err != nil {
		return nil, err
	}
	return kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    2,
		NewBackend: kvserver.NewLockHashBackend(table),
	})
}

func main() {
	// --- 1. a three-node cluster ---
	var servers []*kvserver.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		s, err := startNode()
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	fmt.Printf("cluster members: %v\n", addrs)

	c, err := client.New(client.Config{Nodes: addrs})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Pipelined writes: requests batch per node and fan out in parallel,
	// the client-side half of the paper's batching.
	p := c.Pipeline()
	const keys = 3000
	for k := uint64(0); k < keys; k++ {
		if err := p.Set(k, []byte(fmt.Sprintf("value-%d", k))); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Wait(); err != nil {
		log.Fatal(err)
	}
	p.Close()

	// String keys ride the same continuum via their 60-bit hash.
	if err := c.SetString([]byte("user:42"), []byte("alice")); err != nil {
		log.Fatal(err)
	}
	v, _, _ := c.GetString([]byte("user:42"))
	fmt.Printf("GetString(user:42) = %q on node %s\n", v, c.Ring().NodeOfString([]byte("user:42")))

	for id, slots := range c.Ring().SlotCounts() {
		fmt.Printf("node %s owns %d/%d continuum slots\n", id, slots, cluster.Slots)
	}

	// --- 2. failure isolation ---
	dead := addrs[1]
	fmt.Printf("\nkilling node %s...\n", dead)
	servers[1].Close()

	var deadErrs, liveOK int
	for k := uint64(0); k < keys; k++ {
		_, found, err := c.Get(k)
		switch owner := c.Ring().NodeOf(k); {
		case err != nil:
			var ne *client.NodeError
			if !errors.As(err, &ne) || ne.Addr != dead {
				log.Fatalf("error blamed on the wrong node: %v", err)
			}
			if owner != dead {
				log.Fatalf("key %d on healthy node %s errored: %v", k, owner, err)
			}
			deadErrs++
		case found:
			liveOK++
		}
	}
	fmt.Printf("after the kill: %d keys (dead node's shards) error, %d keys still hit\n",
		deadErrs, liveOK)

	// --- 3. minimal rebalancing (routing-table arithmetic, no data moves) ---
	ring := cluster.MustNew(addrs)
	moved, err := ring.RemoveNode(dead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremoving %s from the ring moves %d/%d slots (only its own)\n",
		dead, len(moved), cluster.Slots)
	grown, err := ring.AddNode("127.0.0.1:65000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adding a fresh node moves %d/%d slots (only toward the newcomer)\n",
		len(grown), cluster.Slots)

	fmt.Println("\nper-node client stats:")
	for addr, s := range c.NodeStats() {
		fmt.Printf("  %s: %d ops, %d errors, %d dials\n", addr, s.Ops, s.Errors, s.Dials)
	}
}
