// Cluster demo: a CPHash cache cluster in one process, driven through the
// sharded client SDK — the architecture of the paper's Figure 13/14
// multi-instance experiments, grown into a live-reconfigurable cluster.
//
// The demo walks through the cluster layer's four properties:
//
//  1. Routing: every key deterministically owns a slot on the 256-slot
//     continuum, and slots — not keys — map to nodes.
//
//  2. Live join: a new node enters while read traffic keeps flowing; its
//     slots are streamed in with online migration (dual-read window), and
//     not a single key is lost or even missed.
//
//  3. Live leave: a member drains its slots to the survivors and shuts
//     down — again with zero key loss.
//
//  4. Failure isolation: killing a node WITHOUT migration loses only its
//     shards; the other members keep serving.
//
//     go run ./examples/cluster
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/rebalance"
)

func startNode() (*kvserver.Server, error) {
	table, err := lockhash.New(lockhash.Config{CapacityBytes: 8 << 20})
	if err != nil {
		return nil, err
	}
	return kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    2,
		NewBackend: kvserver.NewLockHashBackend(table),
	})
}

const keys = 3000

// verifyAll returns how many of the seeded keys read back correctly.
func verifyAll(c *client.Client) (ok int, err error) {
	for k := uint64(0); k < keys; k++ {
		v, found, e := c.Get(k)
		if e != nil {
			return ok, e
		}
		if found && string(v) == fmt.Sprintf("value-%d", k) {
			ok++
		}
	}
	return ok, nil
}

func main() {
	// --- 1. a three-node cluster, keys spread over the continuum ---
	servers := map[string]*kvserver.Server{}
	var addrs []string
	for i := 0; i < 3; i++ {
		s, err := startNode()
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		servers[s.Addr()] = s
		addrs = append(addrs, s.Addr())
	}
	fmt.Printf("cluster members: %v\n", addrs)

	c, err := client.New(client.Config{Nodes: addrs, ConnsPerNode: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Pipelined writes: requests batch per node and fan out in parallel,
	// the client-side half of the paper's batching.
	p := c.Pipeline()
	for k := uint64(0); k < keys; k++ {
		if err := p.Set(k, []byte(fmt.Sprintf("value-%d", k))); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Wait(); err != nil {
		log.Fatal(err)
	}
	p.Close()

	// String keys ride the same continuum via their 60-bit hash.
	if err := c.SetString([]byte("user:42"), []byte("alice")); err != nil {
		log.Fatal(err)
	}
	v, _, _ := c.GetString([]byte("user:42"))
	fmt.Printf("GetString(user:42) = %q on node %s\n", v, c.Ring().NodeOfString([]byte("user:42")))

	for id, slots := range c.Ring().SlotCounts() {
		fmt.Printf("node %s owns %d/%d continuum slots\n", id, slots, cluster.Slots)
	}

	// --- 2. live join under load: zero key loss, zero misses ---
	joining, err := startNode()
	if err != nil {
		log.Fatal(err)
	}
	defer joining.Close()
	servers[joining.Addr()] = joining
	fmt.Printf("\njoining %s with online slot migration (reads keep flowing)...\n", joining.Addr())

	m := rebalance.New(c, rebalance.Config{})
	var misses, reads atomic.Int64
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // read load across the whole key space during the move
		defer wg.Done()
		for k := uint64(0); ; k = (k + 1) % keys {
			select {
			case <-stopLoad:
				return
			default:
			}
			_, found, err := c.Get(k)
			reads.Add(1)
			if err != nil || !found {
				misses.Add(1)
			}
		}
	}()
	if err := m.AddNode(joining.Addr()); err != nil {
		log.Fatal(err)
	}
	close(stopLoad)
	wg.Wait()

	st := m.Stats()
	fmt.Printf("migrated %d entries (%d bytes) off %d source(s); %d slots moved\n",
		st.Entries, st.Bytes, st.Sources, st.SlotsDone)
	fmt.Printf("during the move: %d reads, %d misses/errors (dual-read window)\n",
		reads.Load(), misses.Load())
	if ok, err := verifyAll(c); err != nil || ok != keys {
		log.Fatalf("after join: %d/%d keys readable (err=%v)", ok, keys, err)
	}
	fmt.Printf("after the join: %d/%d keys readable — zero loss\n", keys, keys)
	for id, slots := range c.Ring().SlotCounts() {
		fmt.Printf("node %s now owns %d/%d slots\n", id, slots, cluster.Slots)
	}

	// --- 3. live leave: drain a member, then shut it down ---
	leaving := addrs[1]
	fmt.Printf("\ndraining %s out of the cluster...\n", leaving)
	if err := m.RemoveNode(leaving); err != nil {
		log.Fatal(err)
	}
	servers[leaving].Close() // safe: its slots were streamed to survivors
	if ok, err := verifyAll(c); err != nil || ok != keys {
		log.Fatalf("after leave: %d/%d keys readable (err=%v)", ok, keys, err)
	}
	fmt.Printf("after the leave: %d/%d keys readable — zero loss\n", keys, keys)

	// --- 4. failure isolation: a crash WITHOUT migration ---
	dead := addrs[2]
	fmt.Printf("\nkilling %s without migration (simulated crash)...\n", dead)
	servers[dead].Close()

	var deadErrs, liveOK int
	ring := c.Ring()
	for k := uint64(0); k < keys; k++ {
		_, found, err := c.Get(k)
		switch owner := ring.NodeOf(k); {
		case err != nil:
			var ne *client.NodeError
			if !errors.As(err, &ne) || ne.Addr != dead {
				log.Fatalf("error blamed on the wrong node: %v", err)
			}
			if owner != dead {
				log.Fatalf("key %d on healthy node %s errored: %v", k, owner, err)
			}
			deadErrs++
		case found:
			liveOK++
		}
	}
	fmt.Printf("after the crash: %d keys (dead node's shards) error, %d keys still hit\n",
		deadErrs, liveOK)

	fmt.Println("\nper-node client stats:")
	for addr, s := range c.NodeStats() {
		fmt.Printf("  %s: %d ops, %d errors, %d dials\n", addr, s.Ops, s.Errors, s.Dials)
	}
}
