// Kvcache: the full client/server path from Section 4 of the paper inside
// one process — a CPSERVER (CPHASH behind the binary TCP protocol), a
// LOCKSERVER, and a memcached-style instance, each driven by the load
// generator with the paper's microbenchmark mix (30% INSERT, 8-byte
// values). It prints a miniature Figure 14 row for this host.
//
//	go run ./examples/kvcache [-ops 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/loadgen"
	"cphash/internal/lockhash"
	"cphash/internal/memcache"
	"cphash/internal/partition"
	"cphash/internal/workload"
)

var opsPerConn = flag.Int("ops", 20000, "operations per connection")

func main() {
	flag.Parse()
	spec := workload.Default(256 << 10) // 32k keys
	capBytes := partition.CapacityForValues(spec.NumKeys(), spec.ValueSize)

	drive := func(addrs []string) loadgen.Result {
		res, err := loadgen.Run(loadgen.Config{
			Addrs:      addrs,
			Conns:      2,
			Pipeline:   64,
			Spec:       spec,
			OpsPerConn: *opsPerConn,
			Validate:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.BadBytes > 0 {
			log.Fatalf("%d corrupt responses", res.BadBytes)
		}
		return res
	}

	// CPSERVER.
	table := core.MustNew(core.Config{Partitions: 2, CapacityBytes: capBytes, MaxClients: 2})
	cpSrv, err := kvserver.Serve(kvserver.Config{
		Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewCPHashBackend(table),
	})
	if err != nil {
		log.Fatal(err)
	}
	cpRes := drive([]string{cpSrv.Addr()})
	cpSrv.Close()
	table.Close()
	fmt.Printf("%-22s %s\n", "CPSERVER:", cpRes)

	// LOCKSERVER.
	lt := lockhash.MustNew(lockhash.Config{CapacityBytes: capBytes})
	lhSrv, err := kvserver.Serve(kvserver.Config{
		Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewLockHashBackend(lt),
	})
	if err != nil {
		log.Fatal(err)
	}
	lhRes := drive([]string{lhSrv.Addr()})
	lhSrv.Close()
	fmt.Printf("%-22s %s\n", "LOCKSERVER:", lhRes)

	// Memcached-style: two single-lock instances, keys split by the client.
	cluster, err := memcache.ServeCluster(2, capBytes)
	if err != nil {
		log.Fatal(err)
	}
	mcRes := drive(cluster.Addrs())
	cluster.Close()
	fmt.Printf("%-22s %s\n", "memcached-style (×2):", mcRes)

	fmt.Printf("\nCPSERVER/LOCKSERVER ratio: %.2f (the paper measures ≈1.05 at scale)\n",
		cpRes.Throughput()/lhRes.Throughput())
	fmt.Printf("CPSERVER/memcached ratio:  %.2f\n", cpRes.Throughput()/mcRes.Throughput())
}
