// Persistence demo: the durability subsystem (internal/persist) end to
// end — per-partition WAL logging, compact snapshots, crash-tolerant
// recovery, and the warm-restart rejoin that spares a restarting
// cluster node a full slot migration.
//
// The demo walks four phases:
//
//  1. Durable writes: a CPSERVER with a data directory logs every
//     mutation (TTLs included) through its per-partition change rings
//     into a segmented, CRC-framed WAL.
//
//  2. Snapshot + tail: a snapshot compacts the WAL (covered segments
//     are deleted); later writes land in the WAL tail. Recovery is
//     "newest valid snapshot + tail replay".
//
//  3. Warm restart: the server stops (queues quiesced, WAL flushed)
//     and a new incarnation rebuilds the exact table from disk — every
//     key readable, zero misses, TTLs still ticking from where they
//     were.
//
//  4. Warm rejoin: a cluster coordinator re-admits the restarted node
//     with rebalance.AddNodeWarm — its slots settle instantly with
//     ZERO entries streamed (PR 3's cold join streams every entry),
//     and it serves its slots straight from the recovered table.
//
//     go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cphash/internal/client"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/rebalance"
)

const (
	keys    = 2000
	ttlKeys = 200 // every tenth key carries a TTL
	ttl     = time.Hour
)

// node is one persisted cache server.
type node struct {
	srv  *kvserver.Server
	pipe *persist.Pipeline
}

// startNode boots a lockhash-backed server persisted under dir,
// recovering any state a previous incarnation left. addr "" picks a
// fresh port; a warm restart passes the old address.
func startNode(dir, addr string) (*node, persist.RecoverStats, error) {
	pipe, err := persist.Open(persist.Config{
		Dir:    dir,
		Policy: persist.SyncInterval,
	})
	if err != nil {
		return nil, persist.RecoverStats{}, err
	}
	table, err := lockhash.New(lockhash.Config{
		CapacityBytes: 8 << 20,
		Sink:          func(p int) partition.ChangeSink { return pipe.Appender(p) },
	})
	if err != nil {
		return nil, persist.RecoverStats{}, err
	}
	pipe.SetSource(persist.LockHashSource(table))
	rst, err := persist.RestoreLockHash(pipe, table)
	if err != nil {
		return nil, rst, err
	}
	if err := pipe.Start(); err != nil {
		return nil, rst, err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       addr,
		Workers:    2,
		NewBackend: kvserver.NewLockHashBackend(table),
		Persist:    pipe,
	})
	if err != nil {
		return nil, rst, err
	}
	return &node{srv: srv, pipe: pipe}, rst, nil
}

func value(k uint64) []byte { return []byte(fmt.Sprintf("value-%d", k)) }

// readBack GETs keys [from, to), skipping skip, and dies on any miss.
func readBack(c *client.Client, from, to, skip uint64) {
	for k := from; k < to; k++ {
		if k == skip && skip != 0 {
			continue
		}
		v, found, err := c.Get(k)
		if err != nil {
			log.Fatalf("get %d: %v", k, err)
		}
		if !found || string(v) != string(value(k)) {
			log.Fatalf("read-back miss on key %d", k)
		}
	}
}

func main() {
	dir, err := os.MkdirTemp("", "cphash-persistence-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Phase 1: durable writes ---------------------------------------
	fmt.Println("=== phase 1: durable writes (WAL) ===")
	n1, _, err := startNode(dir, "")
	if err != nil {
		log.Fatal(err)
	}
	addr := n1.srv.Addr()
	c, err := client.New(client.Config{Nodes: []string{addr}})
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(0); k < keys/2; k++ {
		if k%10 == 0 {
			err = c.SetTTL(k, value(k), ttl)
		} else {
			err = c.Set(k, value(k))
		}
		if err != nil {
			log.Fatalf("set %d: %v", k, err)
		}
	}
	// SETs are silent on the wire; a full read-back fences them (each
	// GET round-trips behind the SETs on its connection), so the table
	// and the change stream have seen everything before we look.
	readBack(c, 0, keys/2, 0)
	n1.pipe.Barrier() // force the WAL tail durable so the stats settle
	st := n1.pipe.Stats()
	fmt.Printf("wrote %d keys -> %d WAL records (%d bytes), %d fsyncs\n",
		keys/2, st.Records, st.RecordBytes, st.Fsyncs)

	// --- Phase 2: snapshot + WAL tail ----------------------------------
	fmt.Println("\n=== phase 2: snapshot compaction + WAL tail ===")
	if err := n1.pipe.Snapshot(); err != nil {
		log.Fatal(err)
	}
	st = n1.pipe.Stats()
	fmt.Printf("snapshot: %d entries, %d bytes (older WAL segments deleted)\n",
		st.LastSnapEntries, st.LastSnapBytes)
	for k := uint64(keys / 2); k < keys; k++ {
		if err := c.Set(k, value(k)); err != nil {
			log.Fatalf("set %d: %v", k, err)
		}
	}
	readBack(c, keys/2, keys, 0)
	c.Delete(1) // a tail delete, to prove deletes replay too
	fmt.Printf("wrote %d more keys into the WAL tail (and deleted key 1)\n", keys/2)

	// --- Phase 3: warm restart -----------------------------------------
	fmt.Println("\n=== phase 3: stop, restart from disk, zero misses ===")
	c.Close()
	if err := n1.srv.Close(); err != nil { // quiesce queues, flush WAL
		log.Fatal(err)
	}
	n2, rst, err := startNode(dir, addr) // same address: slots unchanged
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d snapshot entries + %d WAL tail records (torn segments: %d)\n",
		rst.SnapshotEntries, rst.WALRecords, rst.TornSegments)
	c, err = client.New(client.Config{Nodes: []string{addr}})
	if err != nil {
		log.Fatal(err)
	}
	misses := 0
	for k := uint64(0); k < keys; k++ {
		v, found, err := c.Get(k)
		if err != nil {
			log.Fatalf("get %d: %v", k, err)
		}
		if k == 1 {
			if found {
				log.Fatal("deleted key 1 resurrected by recovery")
			}
			continue
		}
		if !found || string(v) != string(value(k)) {
			misses++
		}
	}
	if misses != 0 {
		log.Fatalf("warm restart missed %d keys", misses)
	}
	fmt.Printf("read back all %d keys after restart: 0 misses (the tail delete stayed deleted)\n", keys-1)

	// --- Phase 4: warm rejoin vs cold join ------------------------------
	fmt.Println("\n=== phase 4: cluster rejoin — warm (0 streamed) vs cold ===")
	c.Close()
	if err := n2.srv.Close(); err != nil {
		log.Fatal(err)
	}

	// A fresh empty node becomes the interim cluster; the restarted
	// node rejoins it warm under its old address.
	interimDir, err := os.MkdirTemp("", "cphash-persistence-demo-interim-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(interimDir)
	interim, _, err := startNode(interimDir, "")
	if err != nil {
		log.Fatal(err)
	}
	defer interim.srv.Close()
	c, err = client.New(client.Config{Nodes: []string{interim.srv.Addr()}})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	n3, _, err := startNode(dir, addr)
	if err != nil {
		log.Fatal(err)
	}
	defer n3.srv.Close()

	migr := rebalance.New(c, rebalance.Config{})
	t0 := time.Now()
	if err := migr.AddNodeWarm(addr); err != nil {
		log.Fatal(err)
	}
	ms := migr.Stats()
	fmt.Printf("warm rejoin: %d slots settled in %v, %d entries streamed (cold join would stream every key)\n",
		ms.SlotsDone, time.Since(t0).Round(time.Microsecond), ms.Entries)

	ring := c.Ring()
	owned, ownedMisses := 0, 0
	for k := uint64(0); k < keys; k++ {
		if k == 1 || ring.NodeOf(k) != addr {
			continue
		}
		owned++
		if _, found, err := c.Get(k); err != nil || !found {
			ownedMisses++
		}
	}
	if ownedMisses != 0 {
		log.Fatalf("warm joiner missed %d of its %d slots' keys", ownedMisses, owned)
	}
	fmt.Printf("the rejoined node serves all %d keys in its slots from disk: 0 misses\n", owned)
	fmt.Println("\ndemo complete: durability + warm restart + zero-stream rejoin")
}
