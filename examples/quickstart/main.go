// Quickstart: create a CPHASH table, store and fetch a few values through
// a client handle, then show the same operations on the LOCKHASH baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cphash"
)

func main() {
	// A CPHASH table: 4 partitions, each owned by a server goroutine.
	table, err := cphash.New(cphash.Options{
		Capacity:   16 << 20, // 16 MiB of values + headers
		Partitions: 4,
		Clients:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	// All operations go through a per-goroutine client handle, which talks
	// to the partition servers over shared-memory message rings.
	c := table.MustClient(0)
	defer c.Close()

	// Synchronous API.
	if !c.Put(cphash.KeyOf(1), []byte("hello")) {
		log.Fatal("put failed")
	}
	v, ok := c.Get(cphash.KeyOf(1), nil)
	fmt.Printf("get(1) = %q, %v\n", v, ok)

	// Asynchronous API: pipeline a batch of lookups, exactly what gives
	// CPHash its throughput on many-core machines.
	for i := uint64(10); i < 20; i++ {
		c.Put(cphash.KeyOf(i), fmt.Appendf(nil, "value-%d", i))
	}
	ops := make([]*cphash.Op, 0, 10)
	for i := uint64(10); i < 20; i++ {
		ops = append(ops, c.LookupAsync(cphash.KeyOf(i)))
	}
	c.WaitAll()
	for _, op := range ops {
		fmt.Printf("async get(%d) = %q\n", op.Key(), op.Value())
		c.Release(op)
	}

	// The lock-based baseline shares the same partition store but takes a
	// spinlock per operation instead of messaging a server goroutine.
	locked := cphash.MustNewLocked(cphash.Options{Capacity: 1 << 20})
	locked.Put(cphash.KeyOf(2), []byte("from lockhash"))
	v, ok = locked.Get(cphash.KeyOf(2), nil)
	fmt.Printf("lockhash get(2) = %q, %v\n", v, ok)

	// Arbitrary string keys via the §8.2 extension.
	st := cphash.NewStringTable(c)
	st.Put("user:42:name", []byte("zviad"))
	name, _ := st.Get("user:42:name", nil)
	fmt.Printf("string key = %q\n", name)

	st2 := cphash.NewStringTable(locked)
	st2.Put("session:abc", []byte("token"))
	tok, _ := st2.Get("session:abc", nil)
	fmt.Printf("string key over lockhash = %q\n", tok)
}
