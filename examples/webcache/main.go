// Webcache: the memcached-style scenario from the paper's introduction — a
// web application caching expensive page-rendering results. An HTTP
// frontend renders "pages" (deliberately slow), caching them in a CPHASH
// table keyed by URL via the string-key extension; cache hits skip the
// render. Cached pages carry a TTL (-ttl) so stale renders age out on
// their own, and DELETE /page/... (or a request with ?purge=1) invalidates
// a page immediately — the cache-invalidation path every real web cache
// needs. The example runs a short self-driven load demonstrating hits,
// purges and expiry, then serves until interrupted.
//
//	go run ./examples/webcache [-addr 127.0.0.1:8080] [-ttl 30s]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cphash"
)

var (
	addr = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	ttl  = flag.Duration("ttl", 30*time.Second, "page cache TTL (0 = cache forever)")
)

// fetch GETs a URL and returns the body.
func fetch(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// renderPage stands in for an expensive page build (DB queries, templating).
func renderPage(path string) []byte {
	time.Sleep(2 * time.Millisecond)
	return fmt.Appendf(nil, "<html><body><h1>%s</h1><p>rendered at %s</p></body></html>",
		path, time.Now().Format(time.RFC3339Nano))
}

// pageCache is the application-facing cache: a CPHASH table with one client
// handle per HTTP serving goroutine (handles are single-goroutine, so they
// live in a pool).
type pageCache struct {
	table *cphash.Table
	pool  sync.Pool

	hits   atomic.Int64
	misses atomic.Int64
	purges atomic.Int64
}

func newPageCache(capacity, handles int) (*pageCache, error) {
	table, err := cphash.New(cphash.Options{
		Capacity:   capacity,
		Partitions: 2,
		Clients:    handles,
	})
	if err != nil {
		return nil, err
	}
	pc := &pageCache{table: table}
	var next atomic.Int32
	pc.pool.New = func() any {
		id := int(next.Add(1)) - 1
		return cphash.NewStringTable(table.MustClient(id))
	}
	return pc, nil
}

// get fetches a page through the cache. Fresh renders are stored with the
// configured TTL so stale pages age out without explicit invalidation.
func (pc *pageCache) get(path string) []byte {
	st := pc.pool.Get().(*cphash.StringTable)
	defer pc.pool.Put(st)
	if page, ok := st.Get(path, nil); ok {
		pc.hits.Add(1)
		return page
	}
	pc.misses.Add(1)
	page := renderPage(path)
	st.PutTTL(path, page, *ttl)
	return page
}

// purge invalidates a cached page immediately, reporting whether one was
// cached.
func (pc *pageCache) purge(path string) bool {
	st := pc.pool.Get().(*cphash.StringTable)
	defer pc.pool.Put(st)
	pc.purges.Add(1)
	return st.Delete(path)
}

func main() {
	flag.Parse()
	cache, err := newPageCache(8<<20, 16)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.table.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete || r.URL.Query().Get("purge") != "" {
			if cache.purge(r.URL.Path) {
				fmt.Fprintf(w, "purged %s\n", r.URL.Path)
			} else {
				fmt.Fprintf(w, "not cached: %s\n", r.URL.Path)
			}
			return
		}
		w.Header().Set("Content-Type", "text/html")
		w.Write(cache.get(r.URL.Path))
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("webcache serving on http://%s/\n", ln.Addr())

	// Self-driven warm-up load: 64 distinct pages, zipf-ish repetition.
	client := &http.Client{Timeout: 5 * time.Second}
	start := time.Now()
	const requests = 400
	for i := 0; i < requests; i++ {
		page := i * i % 64 // quadratic residues repeat: plenty of re-hits
		body, err := fetch(client, fmt.Sprintf("http://%s/page/%d", ln.Addr(), page))
		if err != nil {
			log.Fatal(err)
		}
		if !strings.Contains(string(body), fmt.Sprintf("/page/%d", page)) {
			log.Fatalf("wrong page body for /page/%d", page)
		}
	}
	elapsed := time.Since(start)
	h, m := cache.hits.Load(), cache.misses.Load()
	fmt.Printf("%d requests in %v — cache hit rate %.0f%% (uncached would take ≈%v)\n",
		requests, elapsed.Round(time.Millisecond),
		100*float64(h)/float64(h+m),
		(time.Duration(requests) * 2 * time.Millisecond).Round(time.Millisecond))

	// Invalidation: purge a hot page and verify the next request re-renders
	// (a fresh timestamp in the body).
	target := fmt.Sprintf("http://%s/page/0", ln.Addr())
	before, _ := fetch(client, target)
	req, _ := http.NewRequest(http.MethodDelete, target, nil)
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	after, _ := fetch(client, target)
	fmt.Printf("purge /page/0: re-rendered=%v, %d purge(s) issued (ttl %v ages out un-purged pages)\n",
		string(before) != string(after), cache.purges.Load(), *ttl)

	fmt.Println("serving until interrupted (ctrl-c)…")
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	srv.Close()
}
