// Webcache: the memcached-style scenario from the paper's introduction — a
// web application caching expensive page-rendering results. An HTTP
// frontend renders "pages" (deliberately slow), caching them in a CPHASH
// table keyed by URL via the string-key extension; cache hits skip the
// render. The example runs a short self-driven load and prints the hit
// rate and speedup, then serves until interrupted.
//
//	go run ./examples/webcache [-addr 127.0.0.1:8080]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cphash"
)

var addr = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")

// renderPage stands in for an expensive page build (DB queries, templating).
func renderPage(path string) []byte {
	time.Sleep(2 * time.Millisecond)
	return fmt.Appendf(nil, "<html><body><h1>%s</h1><p>rendered at %s</p></body></html>",
		path, time.Now().Format(time.RFC3339Nano))
}

// pageCache is the application-facing cache: a CPHASH table with one client
// handle per HTTP serving goroutine (handles are single-goroutine, so they
// live in a pool).
type pageCache struct {
	table *cphash.Table
	pool  sync.Pool

	hits   atomic.Int64
	misses atomic.Int64
}

func newPageCache(capacity, handles int) (*pageCache, error) {
	table, err := cphash.New(cphash.Options{
		Capacity:   capacity,
		Partitions: 2,
		Clients:    handles,
	})
	if err != nil {
		return nil, err
	}
	pc := &pageCache{table: table}
	var next atomic.Int32
	pc.pool.New = func() any {
		id := int(next.Add(1)) - 1
		return cphash.NewStringTable(table.MustClient(id))
	}
	return pc, nil
}

// get fetches a page through the cache.
func (pc *pageCache) get(path string) []byte {
	st := pc.pool.Get().(*cphash.StringTable)
	defer pc.pool.Put(st)
	if page, ok := st.Get(path, nil); ok {
		pc.hits.Add(1)
		return page
	}
	pc.misses.Add(1)
	page := renderPage(path)
	st.Put(path, page)
	return page
}

func main() {
	flag.Parse()
	cache, err := newPageCache(8<<20, 16)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.table.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.Write(cache.get(r.URL.Path))
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("webcache serving on http://%s/\n", ln.Addr())

	// Self-driven warm-up load: 64 distinct pages, zipf-ish repetition.
	client := &http.Client{Timeout: 5 * time.Second}
	start := time.Now()
	const requests = 400
	for i := 0; i < requests; i++ {
		page := i * i % 64 // quadratic residues repeat: plenty of re-hits
		resp, err := client.Get(fmt.Sprintf("http://%s/page/%d", ln.Addr(), page))
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), fmt.Sprintf("/page/%d", page)) {
			log.Fatalf("wrong page body for /page/%d", page)
		}
	}
	elapsed := time.Since(start)
	h, m := cache.hits.Load(), cache.misses.Load()
	fmt.Printf("%d requests in %v — cache hit rate %.0f%% (uncached would take ≈%v)\n",
		requests, elapsed.Round(time.Millisecond),
		100*float64(h)/float64(h+m),
		(time.Duration(requests) * 2 * time.Millisecond).Round(time.Millisecond))

	fmt.Println("serving until interrupted (ctrl-c)…")
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	srv.Close()
}
