module cphash

go 1.22
