// Hot-path benchmark and allocation gate: the canonical wire-level
// GET/SET mix (internal/hotpath — 90/10, the memcached-class read-heavy
// ratio) against CPSERVER over loopback TCP, measured both for
// throughput and for allocations per operation. The companion test
// asserts the allocation ceiling so a regression in the zero-allocation
// request path fails `go test` rather than silently eroding the batching
// advantage the paper is about — and it asserts it both bare and with
// the durability pipeline enabled (sync=interval), because the WAL's
// pooled-buffer staging is designed to keep the hot path allocation-free
// too.
package cphash

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"cphash/internal/chaos"
	"cphash/internal/core"
	"cphash/internal/hotpath"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/mctext"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/replica"
)

// hotPathConn bundles one dialed connection's codecs, plus the
// replication source when the server was started with one and the
// memcached text front-end when one was enabled.
type hotPathConn struct {
	bw  *bufio.Writer
	br  *bufio.Reader
	src *replica.Source
	mc  *mctext.Server
}

// startHotPathServer boots a CPSERVER (CPHASH backend) sized for the
// hot-path working set and dials one connection to it. With persistDir
// non-empty the table is wired to a durability pipeline (sync=interval)
// rooted there. With followers > 0, a replication source streams the
// pipeline's tail to that many in-process followers, each applying into
// its own table — the full primary-side replication overhead (backlog
// append, per-peer frame compression, ack reads) plus the followers'
// apply loops, all inside this process so the allocation gate sees every
// side of a depth-(followers+1) chain. With a chaos director the server
// listener and the client connection both run through the fault-injection
// wrappers (the -chaos deployment shape), which must stay free when no
// rule matches.
func startHotPathServer(tb testing.TB, persistDir string, followers int, dir *chaos.Director, withMctext bool) (*hotPathConn, func()) {
	tb.Helper()
	var pipe *persist.Pipeline
	var sink func(int) partition.ChangeSink
	if persistDir != "" {
		var err error
		pipe, err = persist.Open(persist.Config{Dir: persistDir, Policy: persist.SyncInterval})
		if err != nil {
			tb.Fatal(err)
		}
		sink = func(p int) partition.ChangeSink { return pipe.Appender(p) }
	}
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: partition.CapacityForValues(2*hotpath.Keys, hotpath.ValueSize),
		MaxClients:    1,
		Seed:          1,
		Sink:          sink,
	})
	if pipe != nil {
		pipe.SetSource(persist.CoreSource(table))
		if err := pipe.Start(); err != nil {
			table.Close()
			tb.Fatal(err)
		}
	}
	var src *replica.Source
	var fls []*replica.Follower
	if followers > 0 {
		if pipe == nil {
			tb.Fatal("followers require a persist dir")
		}
		var err error
		// A backlog small enough for the warmup to touch every slot:
		// the tail ring reuses each slot's buffer in place, so the
		// steady state is allocation-free only once all slots have been
		// written at the workload's record size.
		src, err = replica.NewSource(replica.SourceConfig{Pipe: pipe, Addr: "127.0.0.1:0", BacklogRecords: 512})
		if err != nil {
			table.Close()
			tb.Fatal(err)
		}
		for i := 0; i < followers; i++ {
			ftable := lockhash.MustNew(lockhash.Config{
				Partitions:    2,
				CapacityBytes: partition.CapacityForValues(2*hotpath.Keys, hotpath.ValueSize),
			})
			fl, err := replica.StartFollower(replica.FollowerConfig{
				Source: src.Addr(),
				Name:   fmt.Sprintf("alloc-gate-%d", i),
				Apply:  replica.NewLockHashApplier(ftable),
			})
			if err != nil {
				src.Close()
				table.Close()
				tb.Fatal(err)
			}
			fls = append(fls, fl)
		}
	}
	var listen func(network, addr string) (net.Listener, error)
	if dir != nil {
		listen = dir.Listen("")
	}
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:        "127.0.0.1:0",
		Workers:     1,
		NewBackend:  kvserver.NewCPHashBackend(table),
		Persist:     pipe,
		Replication: src,
		Listen:      listen,
	})
	if err != nil {
		table.Close()
		tb.Fatal(err)
	}
	var (
		bw     *bufio.Writer
		br     *bufio.Reader
		closer io.Closer
	)
	if dir != nil {
		conn, derr := dir.Dialer("bench")("tcp", srv.Addr(), 2*time.Second)
		if derr != nil {
			srv.Close()
			table.Close()
			tb.Fatal(derr)
		}
		bw = bufio.NewWriterSize(conn, kvserver.DefaultBufferSize)
		br = bufio.NewReaderSize(conn, kvserver.DefaultBufferSize)
		closer = conn
	} else if bw, br, closer, err = kvserver.Dial(srv.Addr()); err != nil {
		srv.Close()
		table.Close()
		tb.Fatal(err)
	}
	var mc *mctext.Server
	if withMctext {
		mcln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			table.Close()
			tb.Fatal(err)
		}
		mc = mctext.Serve(mcln, mctext.Config{Upstream: srv.Addr()})
	}
	pw := &hotPathConn{bw: bw, br: br, src: src, mc: mc}
	return pw, func() {
		if mc != nil {
			mc.Close()
		}
		closer.Close()
		for _, fl := range fls {
			fl.Close()
		}
		srv.Close() // flushes and closes replication + pipeline, if any
		table.Close()
	}
}

// waitReplicated blocks until EVERY one of the expected followers behind
// src has completed its initial sync and acknowledged the current tail,
// so the measured window starts from replication steady state (pools
// warm, backlog slots sized) on all links — not just whichever peer the
// status map happened to list last.
func waitReplicated(tb testing.TB, src *replica.Source, followers int) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tail := src.Tail()
		peers := src.Status()
		ok := len(peers) == followers
		for _, ps := range peers {
			if !ps.Synced || ps.Acked < tail {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			tb.Fatalf("followers did not reach the tail watermark: %+v", peers)
		}
		time.Sleep(time.Millisecond)
	}
}

// hotPathWarmup preloads the working set and runs enough of the mix that
// every pooled buffer (connection arenas, worker batch slices, op free
// lists, response buffers, WAL record pools) reaches steady state.
func hotPathWarmup(tb testing.TB, pw *hotPathConn, val, dst []byte) []byte {
	tb.Helper()
	if err := hotpath.Preload(pw.bw, val); err != nil {
		tb.Fatal(err)
	}
	dst, err := hotpath.Mix(pw.bw, pw.br, 4096, hotpath.Window, 1, val, dst, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if pw.src != nil {
		// Enough extra SET traffic (~10% of the mix) to cycle the whole
		// replication backlog ring, warming every slot's reused buffer.
		dst, err = hotpath.Mix(pw.bw, pw.br, 8192, hotpath.Window, 1, val, dst, nil)
		if err != nil {
			tb.Fatal(err)
		}
	}
	return dst
}

// BenchmarkHotPath_WireGetSet measures the full TCP round trip of the
// steady-state 90/10 GET/SET mix. The embedded ReportAllocs shows
// allocs/op; the steady-state server path is expected to be
// allocation-free.
func BenchmarkHotPath_WireGetSet(b *testing.B) {
	pw, stop := startHotPathServer(b, "", 0, nil, false)
	defer stop()
	val := make([]byte, hotpath.ValueSize)
	dst := make([]byte, 0, 2*hotpath.ValueSize)
	dst = hotPathWarmup(b, pw, val, dst)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := hotpath.Mix(pw.bw, pw.br, b.N, hotpath.Window, 1, val, dst, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHotPath_WireGetSetPersist is the same round trip with the
// durability pipeline on (sync=interval), so the WAL overhead shows up
// in the benchmark trajectory next to the bare number.
func BenchmarkHotPath_WireGetSetPersist(b *testing.B) {
	pw, stop := startHotPathServer(b, b.TempDir(), 0, nil, false)
	defer stop()
	val := make([]byte, hotpath.ValueSize)
	dst := make([]byte, 0, 2*hotpath.ValueSize)
	dst = hotPathWarmup(b, pw, val, dst)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := hotpath.Mix(pw.bw, pw.br, b.N, hotpath.Window, 1, val, dst, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHotPath_WireGetSetReplicated adds two live in-process
// followers on top of the persisted configuration (a -replicas 3 chain's
// primary side), so the replication overhead — backlog staging on the
// persister, per-peer frame compression and socket writes on the
// senders, decompression and applies on the followers — shows up in the
// benchmark trajectory next to the bare and persist numbers.
func BenchmarkHotPath_WireGetSetReplicated(b *testing.B) {
	pw, stop := startHotPathServer(b, b.TempDir(), 2, nil, false)
	defer stop()
	val := make([]byte, hotpath.ValueSize)
	dst := make([]byte, 0, 2*hotpath.ValueSize)
	dst = hotPathWarmup(b, pw, val, dst)
	waitReplicated(b, pw.src, 2)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := hotpath.Mix(pw.bw, pw.br, b.N, hotpath.Window, 1, val, dst, nil); err != nil {
		b.Fatal(err)
	}
}

// TestHotPathAllocCeiling is the allocation gate on the wire hot path:
// it runs the steady-state mix and fails if the whole process (client
// loop + server stack) exceeds the ceiling — once bare, once with the
// durability pipeline enabled at sync=interval (change records stage
// into pooled, recycled buffers, so persistence must not reintroduce
// per-op allocation). The client loop is allocation-free by
// construction, so the budget effectively bounds the server's per-op
// allocations. Guarded by testing.Short so the race-enabled CI test run
// — where the race runtime itself allocates — skips it; the dedicated
// bench smoke job runs it unraced.
func TestHotPathAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation ceiling is measured by the bench smoke job, not under -short/-race")
	}
	run := func(t *testing.T, persistDir string, followers int, dir *chaos.Director, withMctext bool) {
		pw, stop := startHotPathServer(t, persistDir, followers, dir, withMctext)
		defer stop()
		val := make([]byte, hotpath.ValueSize)
		dst := make([]byte, 0, 2*hotpath.ValueSize)
		dst = hotPathWarmup(t, pw, val, dst)
		if followers > 0 {
			waitReplicated(t, pw.src, followers)
		}
		if pw.mc != nil {
			// A warmed text connection stays parked on the front-end
			// during the measured window: the side listener being
			// enabled (and having served traffic) must not tax the
			// native path.
			mcc, closeMC := dialMctextRaw(t, pw.mc.Addr().String())
			defer closeMC()
			if err := mcc.mix(2000); err != nil {
				t.Fatal(err)
			}
		}

		const ops = 50000
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := hotpath.Mix(pw.bw, pw.br, ops, hotpath.Window, 1, val, dst, nil); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		perOp := float64(after.Mallocs-before.Mallocs) / float64(ops)
		t.Logf("hot path: %.4f allocs/op (%d allocations over %d ops)", perOp, after.Mallocs-before.Mallocs, ops)
		// The steady-state path is allocation-free; the ceiling leaves
		// room only for incidental runtime activity (timers, GC
		// bookkeeping).
		if perOp > 0.05 {
			t.Fatalf("hot path allocates %.4f allocs/op, ceiling 0.05 — the zero-allocation request path regressed", perOp)
		}
	}
	t.Run("plain", func(t *testing.T) { run(t, "", 0, nil, false) })
	t.Run("persist", func(t *testing.T) { run(t, t.TempDir(), 0, nil, false) })
	// With two connected followers the whole depth-3 replication stack
	// runs in this process, so the same ceiling also bounds the source's
	// per-peer streaming side and both followers' apply loops —
	// replication must not reintroduce per-op allocation on or next to
	// the hot path.
	t.Run("replicated", func(t *testing.T) { run(t, t.TempDir(), 2, nil, false) })
	// The -chaos deployment shape: server listener and client connection
	// both run through chaos wrappers with a director armed and a rule
	// installed — just not one that matches this traffic. The wrappers'
	// fast path (one generation load per I/O against a cached, empty rule
	// slice) must fit inside the same ceiling, or "chaos compiled in but
	// inactive" would tax every production hot path.
	t.Run("chaos-inactive", func(t *testing.T) {
		d := chaos.New(chaos.Config{Seed: 1})
		if err := d.SetRule(chaos.Rule{
			Name:    "elsewhere",
			Src:     "some-other-node",
			Dst:     "not-this-listener",
			Latency: time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		run(t, "", 0, d, false)
	})
	// The -memcached deployment shape: the text front-end listener is up
	// with a warmed text connection parked on it while the native mix
	// runs.
	t.Run("mctext-enabled", func(t *testing.T) { run(t, "", 0, nil, true) })
}

// mctextRawConn is one raw memcached text connection with prebuilt
// request bytes and exact-size reply buffers, so the client side of the
// text-path allocation gate is itself allocation-free.
type mctextRawConn struct {
	c       net.Conn
	br      *bufio.Reader
	getReq  []byte
	setReq  []byte
	getResp []byte
	setResp []byte
}

var (
	mctextStored      = []byte("STORED\r\n")
	mctextValuePrefix = []byte("VALUE mckey 0 32\r\n")
)

func dialMctextRaw(tb testing.TB, addr string) (*mctextRawConn, func()) {
	tb.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		tb.Fatal(err)
	}
	val := bytes.Repeat([]byte{'v'}, 32)
	m := &mctextRawConn{
		c:       conn,
		br:      bufio.NewReaderSize(conn, 4096),
		getReq:  []byte("get mckey\r\n"),
		setReq:  append(append([]byte("set mckey 0 0 32\r\n"), val...), '\r', '\n'),
		getResp: make([]byte, len(mctextValuePrefix)+32+2+len("END\r\n")),
		setResp: make([]byte, len(mctextStored)),
	}
	// Seed the key so every later get hits.
	if _, err := conn.Write(m.setReq); err != nil {
		conn.Close()
		tb.Fatal(err)
	}
	if _, err := io.ReadFull(m.br, m.setResp); err != nil || !bytes.Equal(m.setResp, mctextStored) {
		conn.Close()
		tb.Fatalf("seed set: %q, %v", m.setResp, err)
	}
	return m, func() { conn.Close() }
}

// mix runs n text-protocol round trips at the canonical 90/10 get/set
// ratio against the seeded key.
func (m *mctextRawConn) mix(n int) error {
	for i := 0; i < n; i++ {
		if i%10 == 9 {
			if _, err := m.c.Write(m.setReq); err != nil {
				return err
			}
			if _, err := io.ReadFull(m.br, m.setResp); err != nil {
				return err
			}
			if !bytes.Equal(m.setResp, mctextStored) {
				return fmt.Errorf("set reply %q", m.setResp)
			}
		} else {
			if _, err := m.c.Write(m.getReq); err != nil {
				return err
			}
			if _, err := io.ReadFull(m.br, m.getResp); err != nil {
				return err
			}
			if !bytes.HasPrefix(m.getResp, mctextValuePrefix) {
				return fmt.Errorf("get reply %q", m.getResp)
			}
		}
	}
	return nil
}

// TestMctextAllocCeiling is the text front-end's own allocation gate:
// steady-state get/set traffic through the translator (text parse →
// native round trip → text render) must stay within the same per-op
// budget as the native path, proving the recycled-arena discipline holds
// end to end across both protocol hops.
func TestMctextAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation ceiling is measured by the bench smoke job, not under -short/-race")
	}
	pw, stop := startHotPathServer(t, "", 0, nil, true)
	defer stop()
	mcc, closeMC := dialMctextRaw(t, pw.mc.Addr().String())
	defer closeMC()
	if err := mcc.mix(4000); err != nil { // warm every recycled buffer
		t.Fatal(err)
	}

	const ops = 20000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := mcc.mix(ops); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / float64(ops)
	t.Logf("mctext path: %.4f allocs/op (%d allocations over %d ops)", perOp, after.Mallocs-before.Mallocs, ops)
	if perOp > 0.05 {
		t.Fatalf("mctext path allocates %.4f allocs/op, ceiling 0.05 — the recycled-arena discipline regressed", perOp)
	}
}
