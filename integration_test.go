package cphash

import (
	"fmt"
	"sync"
	"testing"

	"cphash/internal/workload"
)

// TestIntegrationMixedWorkloadBothTables runs the paper's microbenchmark
// mix through the public API on both designs concurrently and verifies
// value integrity throughout.
func TestIntegrationMixedWorkloadBothTables(t *testing.T) {
	spec := workload.Default(256 << 10) // 32k keys
	capacity := CapacityForValues(spec.NumKeys(), spec.ValueSize)

	table := MustNew(Options{Capacity: capacity, Partitions: 4, Clients: 3})
	defer table.Close()
	locked := MustNewLocked(Options{Capacity: capacity})

	var wg sync.WaitGroup
	errs := make(chan error, 6)

	// Three CPHASH clients.
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := table.MustClient(id)
			defer c.Close()
			sp := spec
			sp.Seed = uint64(id) + 1
			g := workload.MustGenerator(sp)
			val := make([]byte, sp.ValueSize)
			for i := 0; i < 20000; i++ {
				kind, key := g.Next()
				if kind == workload.Insert {
					if !c.Put(key, sp.FillValue(key, val)) {
						errs <- fmt.Errorf("cphash client %d: Put(%d) failed", id, key)
						return
					}
				} else if v, ok := c.Get(key, nil); ok && !sp.CheckValue(key, v) {
					errs <- fmt.Errorf("cphash client %d: corrupt value for %d", id, key)
					return
				}
			}
		}(id)
	}
	// Three LOCKHASH goroutines.
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sp := spec
			sp.Seed = uint64(id) + 100
			g := workload.MustGenerator(sp)
			val := make([]byte, sp.ValueSize)
			var dst []byte
			for i := 0; i < 20000; i++ {
				kind, key := g.Next()
				if kind == workload.Insert {
					if !locked.Put(key, sp.FillValue(key, val)) {
						errs <- fmt.Errorf("lockhash %d: Put(%d) failed", id, key)
						return
					}
				} else {
					var ok bool
					dst, ok = locked.Get(key, dst[:0])
					if ok && !sp.CheckValue(key, dst) {
						errs <- fmt.Errorf("lockhash %d: corrupt value for %d", id, key)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := locked.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestIntegrationDynamicServersPublicAPI exercises §8.1 through the
// facade: consolidation happens while traffic flows.
func TestIntegrationDynamicServersPublicAPI(t *testing.T) {
	table := MustNew(Options{Capacity: 4 << 20, Partitions: 8, Clients: 1})
	defer table.Close()
	c := table.MustClient(0)
	defer c.Close()

	for k := uint64(0); k < 1000; k++ {
		if !c.Put(KeyOf(k), []byte("dynamic!")) {
			t.Fatal("Put failed")
		}
	}
	if err := table.SetActiveServers(2); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		if v, ok := c.Get(KeyOf(k), nil); !ok || string(v) != "dynamic!" {
			t.Fatalf("Get(%d) after consolidation = %q %v", k, v, ok)
		}
	}
	if err := table.SetActiveServers(8); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1000); k < 2000; k++ {
		if !c.Put(KeyOf(k), []byte("expanded")) {
			t.Fatal("Put after expansion failed")
		}
	}
	if got := table.ActiveServers(); got < 1 || got > 8 {
		t.Fatalf("ActiveServers = %d", got)
	}
}

// TestIntegrationStringTableConcurrent: the §8.2 extension over LOCKHASH
// under concurrency (LockedTable is the concurrent-safe KV).
func TestIntegrationStringTableConcurrent(t *testing.T) {
	locked := MustNewLocked(Options{Capacity: 16 << 20})
	st := NewStringTable(locked)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("user:%d:%d", g, i)
				val := fmt.Sprintf("profile-%d-%d", g, i)
				if !st.Put(key, []byte(val)) {
					t.Errorf("Put(%s) failed", key)
					return
				}
				got, ok := st.Get(key, nil)
				if !ok || string(got) != val {
					t.Errorf("Get(%s) = %q %v", key, got, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestIntegrationStatsFlow: facade stats reflect traffic.
func TestIntegrationStatsFlow(t *testing.T) {
	table := MustNew(Options{Capacity: 1 << 20, Partitions: 2, Clients: 1})
	defer table.Close()
	c := table.MustClient(0)
	defer c.Close()
	for k := uint64(0); k < 100; k++ {
		c.Put(KeyOf(k), []byte("s"))
	}
	for k := uint64(0); k < 200; k++ {
		c.Get(KeyOf(k), nil)
	}
	st := table.Stats()
	if st.Inserts != 100 || st.Lookups != 200 || st.Hits != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Messages == 0 {
		t.Fatal("no messages counted")
	}
}
