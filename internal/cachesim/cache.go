// Package cachesim is a deterministic, trace-driven simulator of a
// multi-socket cache-coherent memory hierarchy. It stands in for the
// paper's 80-core Intel machine and its hardware performance counters
// (DESIGN.md, substitution table): Figures 6, 7, 11 and 12 are counts and
// costs of cache-line movements, which are a structural property of the
// access pattern plus the coherence protocol — so we recover them by
// simulating the protocol instead of sampling a PMU.
//
// The model:
//
//   - Each core has one private cache ("L2" in the paper's terminology —
//     its L2-miss counter already folds L1 behaviour into it, so we model a
//     single private level sized like the E7-8870's 256 KB L2).
//   - Each socket has one shared, inclusive L3.
//   - A full-map directory tracks, per 64-byte line, which cores hold it,
//     which sockets' L3s hold it, and which core (if any) holds it dirty.
//   - An access is classified the way the paper's Figure 6 classifies it:
//     L2Hit; L2Miss = "missed the local L2, served within the socket
//     (shared L3 or a neighbour's L2)"; L3Miss = "missed the socket,
//     served by another socket or DRAM".
//   - Latency: base costs per class, multiplied by a contention factor
//     computed from the previous simulation round's traffic (§6.2's
//     observation that LOCKHASH's misses are not only more numerous but
//     individually more expensive because the interconnect and DRAM are
//     congested). A dirty remote intervention costs extra, which is what
//     makes bouncing locks and LRU heads expensive.
//
// Everything is deterministic: no clocks, no randomness.
package cachesim

import (
	"fmt"
	"math/bits"

	"cphash/internal/topology"
)

// LineSize is the coherence granularity in bytes.
const LineSize = topology.CacheLineSize

// Class is the paper's Figure 6 access classification.
type Class uint8

const (
	// L2Hit hit the core's private cache.
	L2Hit Class = iota
	// L2Miss missed the private cache but was served within the socket
	// (shared L3 or another core's private cache on the same socket).
	L2Miss
	// L3Miss left the socket: served by a remote socket's cache or DRAM.
	L3Miss
)

func (c Class) String() string {
	switch c {
	case L2Hit:
		return "L2 hit"
	case L2Miss:
		return "L2 miss"
	case L3Miss:
		return "L3 miss"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// LatencyModel holds the cycle-cost constants. DefaultLatency is calibrated
// so the uncontended costs land near the paper's CPHASH column of Figure 6
// (64-cycle within-socket misses, ~380-cycle cross-socket/DRAM misses) and
// contention pushes them toward the LOCKHASH column (170 and ~660 —
// the paper *measures* 1,421-cycle L3 misses for LOCKHASH but notes the
// op's total is far below the sum of its miss latencies because of
// out-of-order overlap; our simulator charges misses serially, so it uses
// the overlap-adjusted effective cost, which is what makes per-op cycle
// totals land on the paper's 3,664).
//
// Contention is keyed on a load metric computed once per round:
//
//	L = (cross-socket misses per operation) × (active threads)
//
// which is proportional to the number of requests in flight at the
// interconnect and memory controllers. Cost multipliers grow linearly in
// max(0, L − ContentionFree).
type LatencyModel struct {
	// L2HitCycles is the private-cache hit cost.
	L2HitCycles int64
	// L2MissCycles is the base within-socket service cost.
	L2MissCycles int64
	// L3MissCycles is the base cross-socket/DRAM service cost.
	L3MissCycles int64
	// DirtyPenaltyCycles is added when the line is supplied by another
	// core that holds it modified (cache-to-cache intervention).
	DirtyPenaltyCycles int64
	// ContentionFree is the load L below which there is no queueing.
	ContentionFree float64
	// LocalSlope scales L2Miss costs: cost = base·(1 + LocalSlope·over).
	LocalSlope float64
	// RemoteSlope scales L3Miss costs likewise.
	RemoteSlope float64
	// HotLinePenaltyCycles models serialization on a single contended
	// line: when a line is transferred by a third, fourth, … distinct
	// thread within one round, each extra claimant queues behind the
	// previous transfer. This is what collapses lock-based designs when
	// many threads hammer few lines (the paper's small-working-set regime)
	// and is invisible to the global load metric. Two-party producer/
	// consumer traffic (CPHASH's rings) never pays it.
	HotLinePenaltyCycles int64
	// HotLineCap bounds the per-access hot-line multiplier.
	HotLineCap int64
}

// DefaultLatency returns the calibrated model (see EXPERIMENTS.md for the
// calibration against Figure 6: with the paper's steady-state miss rates on
// 8 sockets, CPHASH's per-socket load L ≈ 3.1×160/8 ≈ 62 gives 63-cycle L2
// and 351-cycle L3 misses; LOCKHASH's L ≈ 4.6×160/8 ≈ 92 gives ≈170 and
// ≈660, reproducing the paper's per-op totals of ≈1,126/672/3,664 cycles).
func DefaultLatency() LatencyModel {
	return LatencyModel{
		L2HitCycles:          4,
		L2MissCycles:         56,
		L3MissCycles:         330,
		DirtyPenaltyCycles:   40,
		ContentionFree:       60,
		LocalSlope:           0.063,
		RemoteSlope:          0.031,
		HotLinePenaltyCycles: 120,
		HotLineCap:           8,
	}
}

// maxCores bounds the sharer bitset (the paper machine has 80).
const maxCores = 192

type coreSet [maxCores / 64]uint64

func (s *coreSet) add(c int)      { s[c>>6] |= 1 << (c & 63) }
func (s *coreSet) remove(c int)   { s[c>>6] &^= 1 << (c & 63) }
func (s *coreSet) has(c int) bool { return s[c>>6]&(1<<(c&63)) != 0 }
func (s *coreSet) empty() bool    { return s[0] == 0 && s[1] == 0 && s[2] == 0 }

// onlyHas reports whether c is the sole member.
func (s *coreSet) onlyHas(c int) bool {
	var t coreSet
	t.add(c)
	return *s == t
}

// forEach calls f for every member.
func (s *coreSet) forEach(f func(core int)) {
	for w := range s {
		bitsLeft := s[w]
		for bitsLeft != 0 {
			c := w<<6 + bits.TrailingZeros64(bitsLeft)
			f(c)
			bitsLeft &= bitsLeft - 1
		}
	}
}

// lineState is the directory entry for one cache line.
type lineState struct {
	sharers coreSet // cores whose private caches hold the line
	sockets uint16  // bitmask of sockets whose L3 holds the line
	dirty   int16   // core holding it modified, or -1

	// Hot-line tracking: which round last transferred this line, the last
	// few distinct threads that claimed it, and how many distinct
	// claimants this round has seen.
	hotStamp    int64
	hotThreads  [3]int32
	hotDistinct int32
}

// cache is one set-associative cache with per-set LRU replacement. Tags are
// line addresses (addr >> 6); position in the way slice encodes recency
// (index 0 = MRU).
type cache struct {
	sets [][]uint64
	ways int
}

func newCache(bytes, ways int) *cache {
	lines := bytes / LineSize
	if lines < ways {
		lines = ways
	}
	nsets := lines / ways
	if nsets < 1 {
		nsets = 1
	}
	c := &cache{sets: make([][]uint64, nsets), ways: ways}
	return c
}

func (c *cache) setFor(line uint64) int { return int(line % uint64(len(c.sets))) }

// has probes without updating recency.
func (c *cache) has(line uint64) bool {
	for _, t := range c.sets[c.setFor(line)] {
		if t == line {
			return true
		}
	}
	return false
}

// touch marks the line MRU; it must be present.
func (c *cache) touch(line uint64) {
	set := c.sets[c.setFor(line)]
	for i, t := range set {
		if t == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return
		}
	}
}

// insert adds the line, returning the evicted line and whether one was
// evicted.
func (c *cache) insert(line uint64) (evicted uint64, ok bool) {
	si := c.setFor(line)
	set := c.sets[si]
	if len(set) < c.ways {
		c.sets[si] = append(set, 0)
		set = c.sets[si]
		copy(set[1:], set[:len(set)-1])
		set[0] = line
		return 0, false
	}
	evicted = set[len(set)-1]
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	return evicted, true
}

// drop removes the line if present.
func (c *cache) drop(line uint64) {
	si := c.setFor(line)
	set := c.sets[si]
	for i, t := range set {
		if t == line {
			c.sets[si] = append(set[:i], set[i+1:]...)
			return
		}
	}
}
