package cachesim

import (
	"testing"
	"testing/quick"

	"cphash/internal/topology"
)

// smallMachine keeps property-test state tiny so evictions and
// back-invalidations happen constantly.
func smallMachine() topology.Machine {
	return topology.Machine{
		Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 2,
		L2Size: 1 << 10, L3Size: 4 << 10, ClockHz: 1e9,
	}
}

// TestQuickCoherenceInvariants drives random reads/writes from random
// threads over a small line pool and checks the full directory/cache
// consistency after every burst.
func TestQuickCoherenceInvariants(t *testing.T) {
	f := func(script []uint32) bool {
		m := smallMachine()
		s := New(m, DefaultLatency())
		base := s.AllocLines(256)
		for i, op := range script {
			tid := int(op) % m.Threads()
			line := uint64(op>>4) % 256
			write := op&8 != 0
			s.Access(tid, base+line*LineSize, write, "q")
			if i%16 == 15 {
				s.EndRound(16)
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsAfterHeavyChurn: deterministic torture with capacity
// evictions in both levels.
func TestInvariantsAfterHeavyChurn(t *testing.T) {
	m := smallMachine()
	s := New(m, DefaultLatency())
	base := s.AllocLines(4096)
	rng := uint64(12345)
	for i := 0; i < 100000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		tid := int(rng % uint64(m.Threads()))
		line := (rng >> 8) % 4096
		s.Access(tid, base+line*LineSize, rng&1 == 0, "churn")
		if i%64 == 0 {
			s.EndRound(64)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestDirtyLineSingleCopyAfterWrites: after any write the directory must
// show the writer as the only L2 copy.
func TestDirtyLineSingleCopyAfterWrites(t *testing.T) {
	m := smallMachine()
	s := New(m, DefaultLatency())
	addr := s.Alloc(64)
	// Everyone reads, then one writes, repeatedly.
	for round := 0; round < 10; round++ {
		for tid := 0; tid < m.Threads(); tid++ {
			s.Access(tid, addr, false, "r")
		}
		writer := round % m.Threads()
		s.Access(writer, addr, true, "w")
		e := s.dir[s.line(addr)]
		if !e.sharers.onlyHas(m.CoreOf(writer)) {
			t.Fatalf("round %d: dirty line shared beyond writer core", round)
		}
		if e.dirty != int16(m.CoreOf(writer)) {
			t.Fatalf("round %d: dirty owner = %d, want %d", round, e.dirty, m.CoreOf(writer))
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDRAMFetchCounting: first touch is a DRAM fetch; re-fetches served by
// caches are not.
func TestDRAMFetchCounting(t *testing.T) {
	s := New(topology.PaperMachine(), DefaultLatency())
	a := s.Alloc(64)
	if s.DRAMFetches() != 0 {
		t.Fatal("fresh sim has DRAM fetches")
	}
	s.Access(0, a, false, "x") // cold: DRAM
	if s.DRAMFetches() != 1 {
		t.Fatalf("DRAMFetches = %d after cold read, want 1", s.DRAMFetches())
	}
	s.Access(40, a, false, "x") // remote socket, served by socket 0
	if s.DRAMFetches() != 1 {
		t.Fatalf("cache-to-cache transfer counted as DRAM (%d)", s.DRAMFetches())
	}
	if s.DRAMBoundCycles() != DRAMServiceCycles/int64(s.mach.Sockets) {
		t.Fatalf("DRAMBoundCycles = %d", s.DRAMBoundCycles())
	}
	s.ResetStats()
	if s.DRAMFetches() != 0 {
		t.Fatal("ResetStats kept DRAM fetch count")
	}
}

// TestUpgradeCountedSeparately: an S→M upgrade costs like a miss but is
// recorded under Upgrades, not the miss counters (the PMU distinction the
// Figure 6 comparison depends on).
func TestUpgradeCountedSeparately(t *testing.T) {
	m := smallMachine()
	s := New(m, DefaultLatency())
	addr := s.Alloc(64)
	t0 := m.ThreadID(0, 0, 0)
	t1 := m.ThreadID(0, 1, 0)
	s.Access(t0, addr, false, "u")
	s.Access(t1, addr, false, "u")
	before := s.ThreadTag(t1, "u")
	s.Access(t1, addr, true, "u") // S→M upgrade
	after := s.ThreadTag(t1, "u")
	if after.Upgrades != before.Upgrades+1 {
		t.Fatalf("upgrade not counted: %+v -> %+v", before, after)
	}
	if after.L2Miss != before.L2Miss || after.L3Miss != before.L3Miss {
		t.Fatalf("upgrade counted as miss: %+v -> %+v", before, after)
	}
	if after.Cycles <= before.Cycles {
		t.Fatal("upgrade was free")
	}
}
