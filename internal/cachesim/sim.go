package cachesim

import (
	"fmt"
	"sort"

	"cphash/internal/topology"
)

// Tag labels the purpose of an access so per-function breakdowns (the
// paper's Figure 7) can be reported. Tags are free-form strings; the
// simulator just aggregates by them.
type Tag string

// TagStats accumulates the per-tag counters of one hardware thread.
type TagStats struct {
	Accesses int64
	L2Miss   int64
	L3Miss   int64
	// Upgrades counts writes that hit a Shared line and had to invalidate
	// other copies (RFO upgrades). They cost like a miss of the recorded
	// distance but are *not* L2Miss/L3Miss: the PMU events behind the
	// paper's Figure 6 count data fetches, which an upgrade does not do.
	Upgrades int64
	Cycles   int64
}

// threadState holds per-hardware-thread counters.
type threadState struct {
	tags   map[Tag]*TagStats
	cycles int64
	total  TagStats
}

// Sim is the machine simulator. It is single-goroutine by design: the
// driver (internal/simhash) interleaves the simulated threads' accesses,
// which is what makes runs deterministic.
type Sim struct {
	mach topology.Machine
	lat  LatencyModel

	l2  []*cache // per core
	l3  []*cache // per socket
	dir map[uint64]*lineState

	threads []threadState

	// Contention window: the previous round's remote-miss rate and active
	// thread count set this round's load metric (see LatencyModel). A
	// "round" is one driver pass over all simulated threads.
	curRemote    int64
	curActive    []bool
	curActiveCnt int
	prevLoad     float64
	roundID      int64

	// next line address for Alloc (bump allocator, in lines).
	nextLine uint64

	// dramFetches counts fills served by DRAM (no cache anywhere held the
	// line). The throughput model uses it as the bandwidth term: DRAM
	// chews through at most one line per DRAMServiceCycles per socket, so
	// a run can be bandwidth-bound even when no single thread is the
	// bottleneck — which is exactly how the paper's Figure 5 converges at
	// multi-gigabyte working sets.
	dramFetches int64
}

// DRAMServiceCycles is the sustained random-access service time per cache
// line per socket (two DDR3-1333 controllers): calibrated so the paper's
// converged right-edge throughput (~3e7 q/s at ~5 DRAM lines/op over 8
// sockets) falls out.
const DRAMServiceCycles = 126

// New builds a simulator of the given machine.
func New(mach topology.Machine, lat LatencyModel) *Sim {
	if mach.Cores() > maxCores {
		panic(fmt.Sprintf("cachesim: %d cores exceeds maxCores %d", mach.Cores(), maxCores))
	}
	s := &Sim{
		mach:    mach,
		lat:     lat,
		l2:      make([]*cache, mach.Cores()),
		l3:      make([]*cache, mach.Sockets),
		dir:     make(map[uint64]*lineState),
		threads: make([]threadState, mach.Threads()),
		// Line 0 is reserved so "no line" is representable.
		nextLine: 1,
		// Round IDs start at 1 so zero-valued hotStamp means "never".
		roundID: 1,
	}
	for i := range s.l2 {
		s.l2[i] = newCache(mach.L2Size, 8)
	}
	for i := range s.l3 {
		s.l3[i] = newCache(mach.L3Size, 16)
	}
	for i := range s.threads {
		s.threads[i].tags = make(map[Tag]*TagStats)
	}
	s.curActive = make([]bool, mach.Threads())
	return s
}

// Machine returns the simulated topology.
func (s *Sim) Machine() topology.Machine { return s.mach }

// Alloc reserves size bytes of simulated memory, aligned to a cache line,
// and returns the base address. Regions never overlap.
func (s *Sim) Alloc(size int) uint64 {
	lines := uint64((size + LineSize - 1) / LineSize)
	if lines == 0 {
		lines = 1
	}
	base := s.nextLine * LineSize
	s.nextLine += lines
	return base
}

// AllocLines reserves n whole cache lines.
func (s *Sim) AllocLines(n int) uint64 { return s.Alloc(n * LineSize) }

func (s *Sim) line(addr uint64) uint64 { return addr / LineSize }

func (s *Sim) entry(line uint64) *lineState {
	e := s.dir[line]
	if e == nil {
		e = &lineState{dirty: -1}
		s.dir[line] = e
	}
	return e
}

// Access simulates one memory access by hardware thread t and returns its
// classification. Cycles and per-tag counters accrue internally.
func (s *Sim) Access(t int, addr uint64, write bool, tag Tag) Class {
	core := s.mach.CoreOf(t)
	sk := s.mach.SocketOf(t)
	line := s.line(addr)
	e := s.entry(line)
	l2 := s.l2[core]

	var class Class
	var cost int64
	upgrade := false
	dirtyRemote := e.dirty >= 0 && int(e.dirty) != core

	switch {
	case l2.has(line) && (!write || e.dirty == int16(core) || e.sharers.onlyHas(core)):
		// Plain hit, or a write to a line we hold exclusively/dirty.
		l2.touch(line)
		class = L2Hit
		cost = s.lat.L2HitCycles
	case l2.has(line):
		// Write hit on a shared line: RFO upgrade. It costs like a miss of
		// the distance to the farthest other copy but fetches no data, so
		// it is counted under Upgrades, not L2Miss/L3Miss.
		l2.touch(line)
		upgrade = true
		if s.copiesBeyondSocket(e, sk, core) {
			class = L3Miss
			cost = s.missCost(L3Miss, dirtyRemote)
		} else {
			class = L2Miss
			cost = s.missCost(L2Miss, dirtyRemote)
		}
	default:
		// True miss: classify by where the line is served from.
		if s.servedWithinSocket(e, sk, core) {
			class = L2Miss
			cost = s.missCost(L2Miss, dirtyRemote)
		} else {
			class = L3Miss
			cost = s.missCost(L3Miss, dirtyRemote)
			if e.sharers.empty() && e.sockets == 0 {
				s.dramFetches++ // served by memory, not a remote cache
			}
		}
		s.fill(core, sk, line, e)
	}

	if write {
		s.invalidateOthers(core, sk, line, e)
		e.dirty = int16(core)
	} else if e.dirty >= 0 && int(e.dirty) != core {
		// A remote read demotes the dirty copy to shared (write-back).
		e.dirty = -1
	}

	// Hot-line serialization: ownership of a line claimed by a third,
	// fourth, … distinct thread within one round queues each extra
	// claimant. Only ownership transfers serialize — concurrent clean
	// reads are served in parallel by the L3/directory.
	if class != L2Hit && (write || dirtyRemote) {
		cost += s.hotLinePenalty(t, e)
	}

	// Account.
	ts := &s.threads[t]
	ts.cycles += cost
	st := ts.tags[tag]
	if st == nil {
		st = &TagStats{}
		ts.tags[tag] = st
	}
	st.Accesses++
	ts.total.Accesses++
	switch {
	case upgrade:
		st.Upgrades++
		ts.total.Upgrades++
		if class == L3Miss {
			s.curRemote++ // upgrades load the interconnect too
		}
	case class == L2Miss:
		st.L2Miss++
		ts.total.L2Miss++
	case class == L3Miss:
		st.L3Miss++
		ts.total.L3Miss++
		s.curRemote++
	}
	st.Cycles += cost
	ts.total.Cycles += cost
	if !s.curActive[t] {
		s.curActive[t] = true
		s.curActiveCnt++
	}
	return class
}

// AccessRange touches every line of [addr, addr+size).
func (s *Sim) AccessRange(t int, addr uint64, size int, write bool, tag Tag) {
	if size <= 0 {
		return
	}
	first := s.line(addr)
	last := s.line(addr + uint64(size) - 1)
	for l := first; l <= last; l++ {
		s.Access(t, l*LineSize, write, tag)
	}
}

// Idle charges cycles to a thread without memory traffic (e.g. polling an
// empty ring that is resident in cache, or compute between accesses).
func (s *Sim) Idle(t int, cycles int64, tag Tag) {
	ts := &s.threads[t]
	ts.cycles += cycles
	st := ts.tags[tag]
	if st == nil {
		st = &TagStats{}
		ts.tags[tag] = st
	}
	st.Cycles += cycles
	ts.total.Cycles += cycles
}

// hotLinePenalty updates the line's per-round claimant tracking and prices
// the queueing delay for claimants beyond the second distinct thread.
func (s *Sim) hotLinePenalty(t int, e *lineState) int64 {
	if s.lat.HotLinePenaltyCycles == 0 {
		return 0
	}
	if e.hotStamp != s.roundID {
		e.hotStamp = s.roundID
		e.hotThreads = [3]int32{int32(t), -1, -1}
		e.hotDistinct = 1
		return 0
	}
	for _, prev := range e.hotThreads {
		if prev == int32(t) {
			return 0 // repeat claimant: producer/consumer ping-pong, not a queue
		}
	}
	e.hotThreads[2] = e.hotThreads[1]
	e.hotThreads[1] = e.hotThreads[0]
	e.hotThreads[0] = int32(t)
	e.hotDistinct++
	over := int64(e.hotDistinct) - 2
	if over <= 0 {
		return 0
	}
	if over > s.lat.HotLineCap {
		over = s.lat.HotLineCap
	}
	return over * s.lat.HotLinePenaltyCycles
}

// servedWithinSocket reports whether a miss by core (socket sk) is served
// inside the socket: the socket's L3 holds it, or a same-socket core does.
func (s *Sim) servedWithinSocket(e *lineState, sk, core int) bool {
	if e.sockets&(1<<sk) != 0 {
		return true
	}
	found := false
	e.sharers.forEach(func(c int) {
		if c != core && c/s.mach.CoresPerSocket == sk {
			found = true
		}
	})
	return found
}

// copiesBeyondSocket reports whether any other copy lives outside sk.
func (s *Sim) copiesBeyondSocket(e *lineState, sk, core int) bool {
	if e.sockets&^(1<<sk) != 0 {
		return true
	}
	found := false
	e.sharers.forEach(func(c int) {
		if c != core && c/s.mach.CoresPerSocket != sk {
			found = true
		}
	})
	return found
}

// missCost prices a miss of the given class under current contention.
func (s *Sim) missCost(class Class, dirtyRemote bool) int64 {
	over := s.prevLoad - s.lat.ContentionFree
	if over < 0 {
		over = 0
	}
	var cost int64
	switch class {
	case L2Miss:
		cost = s.lat.L2MissCycles + int64(float64(s.lat.L2MissCycles)*s.lat.LocalSlope*over)
	case L3Miss:
		cost = s.lat.L3MissCycles + int64(float64(s.lat.L3MissCycles)*s.lat.RemoteSlope*over)
	}
	if dirtyRemote {
		cost += s.lat.DirtyPenaltyCycles
	}
	return cost
}

// fill installs the line in core's L2 and socket sk's L3, handling
// evictions and inclusion.
func (s *Sim) fill(core, sk int, line uint64, e *lineState) {
	if ev, ok := s.l2[core].insert(line); ok {
		if evE := s.dir[ev]; evE != nil {
			evE.sharers.remove(core)
			if evE.dirty == int16(core) {
				evE.dirty = -1 // write-back to L3/DRAM
			}
		}
	}
	e.sharers.add(core)
	if s.l3[sk].has(line) {
		s.l3[sk].touch(line)
	} else {
		if ev, ok := s.l3[sk].insert(line); ok {
			if evE := s.dir[ev]; evE != nil {
				evE.sockets &^= 1 << sk
				// Inclusive L3: back-invalidate the socket's L2 copies.
				evE.sharers.forEach(func(c int) {
					if c/s.mach.CoresPerSocket == sk {
						s.l2[c].drop(ev)
						evE.sharers.remove(c)
					}
				})
				if evE.dirty >= 0 && int(evE.dirty)/s.mach.CoresPerSocket == sk {
					evE.dirty = -1
				}
			}
		}
		e.sockets |= 1 << sk
	}
}

// invalidateOthers removes every copy of line except core's (a write
// gaining exclusivity).
func (s *Sim) invalidateOthers(core, sk int, line uint64, e *lineState) {
	e.sharers.forEach(func(c int) {
		if c != core {
			s.l2[c].drop(line)
			e.sharers.remove(c)
		}
	})
	for skt := 0; skt < s.mach.Sockets; skt++ {
		if skt != sk && e.sockets&(1<<skt) != 0 {
			s.l3[skt].drop(line)
			e.sockets &^= 1 << skt
		}
	}
}

// EndRound rotates the contention window. Drivers call it once per
// simulated round, passing the number of table operations the round
// completed; the next round's load metric is
// (remote misses / ops) × active threads.
func (s *Sim) EndRound(ops int64) {
	if ops > 0 {
		// Load per socket: every socket brings its own DRAM controllers
		// and L3, so the queueing pressure that matters is per-socket.
		s.prevLoad = float64(s.curRemote) / float64(ops) * float64(s.curActiveCnt) / float64(s.mach.Sockets)
	} else {
		s.prevLoad = 0
	}
	s.curRemote = 0
	for i := range s.curActive {
		s.curActive[i] = false
	}
	s.curActiveCnt = 0
	s.roundID++
}

// Load returns the contention load metric currently in effect (for tests).
func (s *Sim) Load() float64 { return s.prevLoad }

// ThreadCycles returns the cycles accumulated by thread t.
func (s *Sim) ThreadCycles(t int) int64 { return s.threads[t].cycles }

// ThreadTotal returns thread t's aggregate counters.
func (s *Sim) ThreadTotal(t int) TagStats { return s.threads[t].total }

// ThreadTag returns thread t's counters for one tag (zero value if the tag
// never appeared).
func (s *Sim) ThreadTag(t int, tag Tag) TagStats {
	if st := s.threads[t].tags[tag]; st != nil {
		return *st
	}
	return TagStats{}
}

// Tags returns the sorted set of tags any thread recorded.
func (s *Sim) Tags() []Tag {
	set := map[Tag]bool{}
	for i := range s.threads {
		for tag := range s.threads[i].tags {
			set[tag] = true
		}
	}
	out := make([]Tag, 0, len(set))
	for tag := range set {
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AggregateTag sums a tag's counters over a set of threads.
func (s *Sim) AggregateTag(threads []int, tag Tag) TagStats {
	var out TagStats
	for _, t := range threads {
		st := s.ThreadTag(t, tag)
		out.Accesses += st.Accesses
		out.L2Miss += st.L2Miss
		out.L3Miss += st.L3Miss
		out.Cycles += st.Cycles
	}
	return out
}

// AggregateTotal sums total counters over a set of threads.
func (s *Sim) AggregateTotal(threads []int) TagStats {
	var out TagStats
	for _, t := range threads {
		st := s.ThreadTotal(t)
		out.Accesses += st.Accesses
		out.L2Miss += st.L2Miss
		out.L3Miss += st.L3Miss
		out.Cycles += st.Cycles
	}
	return out
}

// DRAMFetches returns the lines served by DRAM since the last ResetStats.
func (s *Sim) DRAMFetches() int64 { return s.dramFetches }

// DRAMBoundCycles returns the minimum wall-clock (in cycles) the measured
// DRAM traffic needs at the machine's aggregate service rate.
func (s *Sim) DRAMBoundCycles() int64 {
	return s.dramFetches * DRAMServiceCycles / int64(s.mach.Sockets)
}

// ResetStats clears all thread counters (cache and directory state are
// kept, so a measurement phase can follow a warm-up phase).
func (s *Sim) ResetStats() {
	for i := range s.threads {
		s.threads[i] = threadState{tags: make(map[Tag]*TagStats)}
	}
	s.dramFetches = 0
}

// CheckInvariants validates coherence bookkeeping: the directory, the
// private caches and the inclusive L3s must tell one consistent story.
// Property tests drive random access patterns and call this.
func (s *Sim) CheckInvariants() error {
	// Private caches agree with the directory, and inclusion holds.
	for core := range s.l2 {
		sk := core / s.mach.CoresPerSocket
		for _, set := range s.l2[core].sets {
			for _, line := range set {
				e := s.dir[line]
				if e == nil || !e.sharers.has(core) {
					return fmt.Errorf("core %d caches line %d but directory disagrees", core, line)
				}
				if !s.l3[sk].has(line) {
					return fmt.Errorf("inclusion violated: line %d in core %d's L2 but not socket %d's L3", line, core, sk)
				}
			}
		}
	}
	// L3 contents agree with the directory's socket bits.
	for sk := range s.l3 {
		for _, set := range s.l3[sk].sets {
			for _, line := range set {
				e := s.dir[line]
				if e == nil || e.sockets&(1<<sk) == 0 {
					return fmt.Errorf("socket %d caches line %d but directory disagrees", sk, line)
				}
			}
		}
	}
	// Directory entries point at real copies; a dirty line has exactly one
	// cached copy, at the dirty core.
	for line, e := range s.dir {
		var sharerErr error
		e.sharers.forEach(func(core int) {
			if !s.l2[core].has(line) {
				sharerErr = fmt.Errorf("directory lists core %d for line %d but its L2 lacks it", core, line)
			}
		})
		if sharerErr != nil {
			return sharerErr
		}
		for sk := 0; sk < s.mach.Sockets; sk++ {
			if e.sockets&(1<<sk) != 0 && !s.l3[sk].has(line) {
				return fmt.Errorf("directory lists socket %d for line %d but its L3 lacks it", sk, line)
			}
		}
		if e.dirty >= 0 {
			if !e.sharers.onlyHas(int(e.dirty)) && !e.sharers.empty() {
				return fmt.Errorf("line %d dirty at core %d but shared more widely", line, e.dirty)
			}
		}
	}
	return nil
}
