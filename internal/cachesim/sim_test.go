package cachesim

import (
	"testing"

	"cphash/internal/topology"
)

func newSim() *Sim {
	return New(topology.PaperMachine(), DefaultLatency())
}

func TestColdMissThenHit(t *testing.T) {
	s := newSim()
	addr := s.Alloc(64)
	if got := s.Access(0, addr, false, "a"); got != L3Miss {
		t.Fatalf("cold access = %v, want L3Miss (DRAM)", got)
	}
	if got := s.Access(0, addr, false, "a"); got != L2Hit {
		t.Fatalf("second access = %v, want L2Hit", got)
	}
	st := s.ThreadTotal(0)
	if st.Accesses != 2 || st.L3Miss != 1 || st.L2Miss != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSameSocketSharingIsL2Miss(t *testing.T) {
	s := newSim()
	m := s.Machine()
	addr := s.Alloc(64)
	t0 := m.ThreadID(0, 0, 0)      // socket 0, core 0
	t1 := m.ThreadID(0, 1, 0)      // socket 0, core 1
	s.Access(t0, addr, false, "a") // cold: DRAM
	if got := s.Access(t1, addr, false, "a"); got != L2Miss {
		t.Fatalf("same-socket fetch = %v, want L2Miss", got)
	}
}

func TestCrossSocketSharingIsL3Miss(t *testing.T) {
	s := newSim()
	m := s.Machine()
	addr := s.Alloc(64)
	t0 := m.ThreadID(0, 0, 0)
	tRemote := m.ThreadID(1, 0, 0)
	s.Access(t0, addr, false, "a")
	if got := s.Access(tRemote, addr, false, "a"); got != L3Miss {
		t.Fatalf("cross-socket fetch = %v, want L3Miss", got)
	}
}

func TestSMTSiblingsShareL2(t *testing.T) {
	s := newSim()
	m := s.Machine()
	addr := s.Alloc(64)
	t0 := m.ThreadID(0, 0, 0)
	sib := m.ThreadID(0, 0, 1)
	s.Access(t0, addr, false, "a")
	if got := s.Access(sib, addr, false, "a"); got != L2Hit {
		t.Fatalf("SMT sibling access = %v, want L2Hit (shared private cache)", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := newSim()
	m := s.Machine()
	addr := s.Alloc(64)
	t0 := m.ThreadID(0, 0, 0)
	t1 := m.ThreadID(0, 1, 0)
	s.Access(t0, addr, false, "a")
	s.Access(t1, addr, false, "a")
	// t1 writes: upgrade. t0's copy must be invalidated.
	if got := s.Access(t1, addr, true, "a"); got == L3Miss {
		t.Fatalf("same-socket upgrade classified L3Miss")
	}
	if got := s.Access(t0, addr, false, "a"); got == L2Hit {
		t.Fatalf("reader hit after remote write; invalidation missing")
	}
}

func TestWriteExclusiveIsHit(t *testing.T) {
	s := newSim()
	addr := s.Alloc(64)
	s.Access(0, addr, true, "a") // cold write
	if got := s.Access(0, addr, true, "a"); got != L2Hit {
		t.Fatalf("write to own dirty line = %v, want L2Hit", got)
	}
}

func TestDirtyInterventionCostsMore(t *testing.T) {
	s := newSim()
	m := s.Machine()
	addr := s.Alloc(64)
	addr2 := s.Alloc(64)
	t0 := m.ThreadID(0, 0, 0)
	t1 := m.ThreadID(0, 1, 0)
	// Clean transfer cost:
	s.Access(t0, addr2, false, "clean")
	before := s.ThreadCycles(t1)
	s.Access(t1, addr2, false, "clean")
	cleanCost := s.ThreadCycles(t1) - before
	// Dirty transfer cost:
	s.Access(t0, addr, true, "dirty")
	before = s.ThreadCycles(t1)
	s.Access(t1, addr, false, "dirty")
	dirtyCost := s.ThreadCycles(t1) - before
	if dirtyCost <= cleanCost {
		t.Fatalf("dirty intervention (%d) not costlier than clean (%d)", dirtyCost, cleanCost)
	}
}

func TestL2CapacityEviction(t *testing.T) {
	s := newSim()
	// Stream > L2 size through one core; early lines must be evicted from
	// L2 but still be in the socket L3 (inclusive hierarchy).
	n := s.Machine().L2Size/LineSize + 1024
	base := s.AllocLines(n)
	for i := 0; i < n; i++ {
		s.Access(0, base+uint64(i*LineSize), false, "stream")
	}
	// Re-read the first line: out of L2 (capacity) but in L3 → L2Miss.
	if got := s.Access(0, base, false, "stream"); got != L2Miss {
		t.Fatalf("re-read after L2 eviction = %v, want L2Miss (L3 hit)", got)
	}
}

func TestL3CapacityEvictionBackInvalidates(t *testing.T) {
	mach := topology.Machine{
		Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1,
		L2Size: 4 << 10, L3Size: 64 << 10, ClockHz: 1e9,
	}
	s := New(mach, DefaultLatency())
	n := mach.L3Size/LineSize + 256
	base := s.AllocLines(n)
	for i := 0; i < n; i++ {
		s.Access(0, base+uint64(i*LineSize), false, "stream")
	}
	// First line has been evicted from the L3 (and back-invalidated from
	// L2); re-reading must go to DRAM.
	if got := s.Access(0, base, false, "stream"); got != L3Miss {
		t.Fatalf("after L3 eviction = %v, want L3Miss", got)
	}
}

func TestContentionRaisesRemoteCost(t *testing.T) {
	lat := DefaultLatency()
	s := New(topology.PaperMachine(), lat)
	m := s.Machine()
	// Round 1: every one of 160 threads misses to DRAM 6 times per op at
	// 1 op each → load L = 6×160 = 960, far above ContentionFree.
	for tid := 0; tid < m.Threads(); tid++ {
		for j := 0; j < 6; j++ {
			s.Access(tid, s.Alloc(64), false, "traffic")
		}
	}
	s.EndRound(int64(m.Threads()))
	if s.Load() < lat.ContentionFree {
		t.Fatalf("load %.0f below ContentionFree %.0f; test setup wrong", s.Load(), lat.ContentionFree)
	}
	// Measured cost of a DRAM miss under heavy prior-round contention:
	tProbe := m.ThreadID(7, 9, 1)
	before := s.ThreadCycles(tProbe)
	s.Access(tProbe, s.Alloc(64), false, "probe")
	contended := s.ThreadCycles(tProbe) - before

	// Fresh sim, no prior traffic:
	s2 := New(topology.PaperMachine(), lat)
	before = s2.ThreadCycles(tProbe)
	s2.Access(tProbe, s2.Alloc(64), false, "probe")
	quiet := s2.ThreadCycles(tProbe) - before

	if contended <= quiet {
		t.Fatalf("contended miss (%d cycles) not costlier than quiet (%d)", contended, quiet)
	}
	// The window must decay: a calm round resets costs.
	s.EndRound(1)
	s.EndRound(1)
	before = s.ThreadCycles(tProbe)
	s.Access(tProbe, s.Alloc(64), false, "probe")
	calm := s.ThreadCycles(tProbe) - before
	if calm != quiet {
		t.Fatalf("post-calm miss = %d cycles, want baseline %d", calm, quiet)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() TagStats {
		s := newSim()
		base := s.AllocLines(4096)
		for i := 0; i < 20000; i++ {
			tid := i % 16
			addr := base + uint64((i*7919)%4096)*LineSize
			s.Access(tid, addr, i%3 == 0, "mix")
			if i%16 == 15 {
				s.EndRound(16)
			}
		}
		threads := make([]int, 16)
		for i := range threads {
			threads[i] = i
		}
		return s.AggregateTotal(threads)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestTagBreakdown(t *testing.T) {
	s := newSim()
	a1 := s.Alloc(64)
	a2 := s.Alloc(64)
	s.Access(0, a1, false, "lock")
	s.Access(0, a2, false, "data")
	s.Access(0, a2, false, "data")
	tags := s.Tags()
	if len(tags) != 2 || tags[0] != "data" || tags[1] != "lock" {
		t.Fatalf("tags = %v", tags)
	}
	if st := s.ThreadTag(0, "data"); st.Accesses != 2 || st.L3Miss != 1 {
		t.Fatalf("data tag stats = %+v", st)
	}
	if st := s.ThreadTag(0, "absent"); st.Accesses != 0 {
		t.Fatalf("absent tag stats = %+v", st)
	}
}

func TestAccessRange(t *testing.T) {
	s := newSim()
	addr := s.Alloc(256) // 4 lines
	s.AccessRange(0, addr, 256, false, "range")
	if st := s.ThreadTag(0, "range"); st.Accesses != 4 {
		t.Fatalf("AccessRange touched %d lines, want 4", st.Accesses)
	}
	s.AccessRange(0, addr, 0, false, "range")
	if st := s.ThreadTag(0, "range"); st.Accesses != 4 {
		t.Fatal("zero-size range touched memory")
	}
	// 1 byte straddling nothing: exactly 1 line.
	s.AccessRange(0, addr+63, 1, false, "one")
	if st := s.ThreadTag(0, "one"); st.Accesses != 1 {
		t.Fatalf("1-byte range touched %d lines", st.Accesses)
	}
	// 2 bytes straddling a boundary: 2 lines.
	s.AccessRange(0, addr+63, 2, false, "straddle")
	if st := s.ThreadTag(0, "straddle"); st.Accesses != 2 {
		t.Fatalf("straddling range touched %d lines", st.Accesses)
	}
}

func TestIdleChargesCycles(t *testing.T) {
	s := newSim()
	s.Idle(3, 1000, "poll")
	if got := s.ThreadCycles(3); got != 1000 {
		t.Fatalf("cycles = %d", got)
	}
	if st := s.ThreadTag(3, "poll"); st.Cycles != 1000 || st.Accesses != 0 {
		t.Fatalf("poll tag = %+v", st)
	}
}

func TestResetStatsKeepsCacheState(t *testing.T) {
	s := newSim()
	addr := s.Alloc(64)
	s.Access(0, addr, false, "a")
	s.ResetStats()
	if s.ThreadTotal(0).Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	// The line must still be cached: warm hit.
	if got := s.Access(0, addr, false, "a"); got != L2Hit {
		t.Fatalf("post-reset access = %v, want warm L2Hit", got)
	}
}

func TestAllocDisjoint(t *testing.T) {
	s := newSim()
	a := s.Alloc(100)
	b := s.Alloc(1)
	c := s.Alloc(64)
	if a/LineSize == b/LineSize || b/LineSize == c/LineSize {
		t.Fatalf("allocations share lines: %d %d %d", a, b, c)
	}
	if a%LineSize != 0 || b%LineSize != 0 {
		t.Fatal("allocations not line-aligned")
	}
}

func BenchmarkAccessWarm(b *testing.B) {
	s := newSim()
	addr := s.Alloc(64)
	s.Access(0, addr, false, "a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(0, addr, false, "a")
	}
}

func BenchmarkAccessColdStream(b *testing.B) {
	s := newSim()
	base := s.AllocLines(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(0, base+uint64(i&0xFFFFF)*LineSize, false, "a")
	}
}
