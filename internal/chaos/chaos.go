// Package chaos is the deterministic fault-injection layer: net.Conn /
// net.Listener / dial-function wrappers plus a process-level Director
// that installs rules addressed by (src, dst, direction). The Director
// decides — from a fixed seed — when a connection is dropped, reset,
// delayed, throttled, partitioned, or hung, so a fault scenario replays
// identically run over run.
//
// Rules name logical endpoints. An endpoint is whatever string a layer
// registered when it took its wrapper: a listener's bound address, a
// follower's name, "client", "detector". Every rule is applied exactly
// once per flow by a fixed convention:
//
//   - a rule with a concrete Src is enforced by the dialer-side wrapper
//     whose local endpoint is that Src;
//   - a rule with a wildcard Src is enforced by the listener-side
//     wrapper whose endpoint matches Dst (the destination polices
//     traffic from "anyone").
//
// Connection establishment (dial) is a single-sided act, so dial-time
// faults — Partition refusing the connect, DropProb losing it — consult
// every matching rule regardless of side.
//
// Direction is relative to the rule's (Src, Dst) pair: "s2d" faults
// only payload flowing Src→Dst, "d2s" only the reverse, "both" (the
// default) faults both. One-way partitions fall out of this directly.
//
// The zero-rule path is engineered to stay off the allocation profile:
// a wrapped connection with no matching rules costs one atomic load and
// an uncontended mutex per I/O, nothing else — the hot-path allocation
// gate runs with wrappers installed to prove it.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Wildcard matches any endpoint in a rule's Src/Dst ("" is equivalent).
const Wildcard = "*"

// Direction constants for Rule.Direction.
const (
	DirBoth = "both" // fault payload in both directions (default)
	DirS2D  = "s2d"  // fault only payload flowing Src -> Dst
	DirD2S  = "d2s"  // fault only payload flowing Dst -> Src
)

// Rule kinds. Fault rules shape traffic; kill/restart rules fire the
// Director's process hooks once when the rule activates (At elapses).
const (
	KindFault   = "fault"
	KindKill    = "kill"
	KindRestart = "restart"
)

// Rule is one installed fault. All fields are optional except Name;
// a rule with several fault fields applies all of them.
type Rule struct {
	// Name identifies the rule for replacement and removal.
	Name string `json:"name"`
	// Kind is "fault" (default), "kill", or "restart". Kill/restart
	// rules call the Director's Kill/Restart hook with Dst as the
	// target when the rule activates, exactly once.
	Kind string `json:"kind,omitempty"`
	// Src and Dst address the flow ("" or "*" = any endpoint).
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Direction is "both" (default), "s2d", or "d2s".
	Direction string `json:"direction,omitempty"`

	// Latency is added to every faulted I/O; Jitter adds a uniform
	// [0, Jitter) on top, drawn from the seeded stream.
	Latency time.Duration `json:"latency,omitempty"`
	Jitter  time.Duration `json:"jitter,omitempty"`
	// BandwidthBPS caps payload throughput (bytes/second, per
	// connection per direction). 0 = unlimited.
	BandwidthBPS int64 `json:"bandwidth_bps,omitempty"`
	// DropProb is the probability a matching dial is lost outright.
	DropProb float64 `json:"drop_prob,omitempty"`
	// ResetProb is the per-I/O probability the connection is reset.
	ResetProb float64 `json:"reset_prob,omitempty"`
	// Partition blackholes the flow: matching dials fail after their
	// timeout and established traffic blocks until the rule lifts (or
	// the connection's deadline fires). One-way partitions use
	// Direction; dials fail if either direction is partitioned, the
	// way a TCP handshake needs both.
	Partition bool `json:"partition,omitempty"`
	// Hang blocks established traffic like Partition but leaves
	// connection establishment alone: the accept-then-hang server.
	Hang bool `json:"hang,omitempty"`

	// At delays the rule's activation; Duration bounds its lifetime
	// after activation (0 = until removed).
	At       time.Duration `json:"at,omitempty"`
	Duration time.Duration `json:"duration,omitempty"`
}

// ruleJSON mirrors Rule with string durations so admin payloads read
// "50ms", not 50000000.
type ruleJSON struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind,omitempty"`
	Src          string  `json:"src,omitempty"`
	Dst          string  `json:"dst,omitempty"`
	Direction    string  `json:"direction,omitempty"`
	Latency      jsonDur `json:"latency,omitempty"`
	Jitter       jsonDur `json:"jitter,omitempty"`
	BandwidthBPS int64   `json:"bandwidth_bps,omitempty"`
	DropProb     float64 `json:"drop_prob,omitempty"`
	ResetProb    float64 `json:"reset_prob,omitempty"`
	Partition    bool    `json:"partition,omitempty"`
	Hang         bool    `json:"hang,omitempty"`
	At           jsonDur `json:"at,omitempty"`
	Duration     jsonDur `json:"duration,omitempty"`
}

// jsonDur marshals as a Go duration string and unmarshals from either
// a duration string or integer nanoseconds.
type jsonDur time.Duration

func (d jsonDur) MarshalJSON() ([]byte, error) {
	if d == 0 {
		return []byte(`""`), nil
	}
	return json.Marshal(time.Duration(d).String())
}

func (d *jsonDur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if s == "" {
			*d = 0
			return nil
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = jsonDur(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = jsonDur(n)
	return nil
}

// MarshalJSON renders durations as strings ("50ms").
func (r Rule) MarshalJSON() ([]byte, error) {
	return json.Marshal(ruleJSON{
		Name: r.Name, Kind: r.Kind, Src: r.Src, Dst: r.Dst, Direction: r.Direction,
		Latency: jsonDur(r.Latency), Jitter: jsonDur(r.Jitter),
		BandwidthBPS: r.BandwidthBPS, DropProb: r.DropProb, ResetProb: r.ResetProb,
		Partition: r.Partition, Hang: r.Hang,
		At: jsonDur(r.At), Duration: jsonDur(r.Duration),
	})
}

// UnmarshalJSON accepts durations as strings ("50ms") or nanoseconds.
func (r *Rule) UnmarshalJSON(b []byte) error {
	var j ruleJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*r = Rule{
		Name: j.Name, Kind: j.Kind, Src: j.Src, Dst: j.Dst, Direction: j.Direction,
		Latency: time.Duration(j.Latency), Jitter: time.Duration(j.Jitter),
		BandwidthBPS: j.BandwidthBPS, DropProb: j.DropProb, ResetProb: j.ResetProb,
		Partition: j.Partition, Hang: j.Hang,
		At: time.Duration(j.At), Duration: time.Duration(j.Duration),
	}
	return nil
}

func (r *Rule) validate(hasKill, hasRestart bool) error {
	if r.Name == "" {
		return fmt.Errorf("chaos: rule needs a name")
	}
	switch r.Kind {
	case "", KindFault:
	case KindKill:
		if !hasKill {
			return fmt.Errorf("chaos: rule %q: no Kill hook installed", r.Name)
		}
		if r.Dst == "" || r.Dst == Wildcard {
			return fmt.Errorf("chaos: rule %q: kill needs a concrete dst", r.Name)
		}
	case KindRestart:
		if !hasRestart {
			return fmt.Errorf("chaos: rule %q: no Restart hook installed", r.Name)
		}
		if r.Dst == "" || r.Dst == Wildcard {
			return fmt.Errorf("chaos: rule %q: restart needs a concrete dst", r.Name)
		}
	default:
		return fmt.Errorf("chaos: rule %q: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Direction {
	case "", DirBoth, DirS2D, DirD2S:
	default:
		return fmt.Errorf("chaos: rule %q: unknown direction %q", r.Name, r.Direction)
	}
	if r.DropProb < 0 || r.DropProb > 1 || r.ResetProb < 0 || r.ResetProb > 1 {
		return fmt.Errorf("chaos: rule %q: probabilities must be in [0,1]", r.Name)
	}
	if r.Latency < 0 || r.Jitter < 0 || r.BandwidthBPS < 0 || r.At < 0 || r.Duration < 0 {
		return fmt.Errorf("chaos: rule %q: negative durations or bandwidth", r.Name)
	}
	return nil
}

// RuleStatus is one installed rule plus its live bookkeeping, for
// GET /chaos and tests.
type RuleStatus struct {
	Rule
	Active bool  `json:"active"`
	Hits   int64 `json:"hits"` // I/O ops, dials, or hook firings the rule faulted
}

// MarshalJSON flattens the rule fields and the bookkeeping into one
// object; without this the embedded Rule's marshaler would be promoted
// and Active/Hits silently dropped.
func (s RuleStatus) MarshalJSON() ([]byte, error) {
	rb, err := s.Rule.MarshalJSON()
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(rb, &m); err != nil {
		return nil, err
	}
	m["active"] = s.Active
	m["hits"] = s.Hits
	return json.Marshal(m)
}

// rule is the installed form: the spec plus its activation window and
// hit counter.
type rule struct {
	Rule
	start time.Time // zero = active immediately
	end   time.Time // zero = until removed
	fired bool      // kill/restart: hook already ran
	hits  atomic.Int64
}

func (r *rule) active(now time.Time) bool {
	if !r.start.IsZero() && now.Before(r.start) {
		return false
	}
	if !r.end.IsZero() && !now.Before(r.end) {
		return false
	}
	return true
}

// windowed reports whether the rule ever needs a clock check.
func (r *rule) windowed() bool { return !r.start.IsZero() || !r.end.IsZero() }

func matchEP(pat, name string) bool {
	return pat == "" || pat == Wildcard || pat == name
}

// matchesFlow reports whether the rule faults payload flowing from -> to.
func (r *rule) matchesFlow(from, to string) bool {
	dir := r.Direction
	if dir == "" {
		dir = DirBoth
	}
	if (dir == DirBoth || dir == DirS2D) && matchEP(r.Src, from) && matchEP(r.Dst, to) {
		return true
	}
	if (dir == DirBoth || dir == DirD2S) && matchEP(r.Src, to) && matchEP(r.Dst, from) {
		return true
	}
	return false
}

// Config parameterizes a Director.
type Config struct {
	// Seed drives every probabilistic decision (drops, resets, jitter).
	// Two Directors with the same seed and the same connection order
	// make the same calls.
	Seed int64
	// Clock supplies "now" for activation windows (nil = wall clock).
	Clock func() time.Time
	// Kill and Restart are the process hooks kill/restart rules fire
	// (target = the rule's Dst). Optional; rules of those kinds are
	// rejected when the hook is absent.
	Kill    func(target string) error
	Restart func(target string) error
}

// Director owns the installed rule set and wraps the process's dials
// and listeners. All methods are safe for concurrent use.
type Director struct {
	cfg Config

	gen atomic.Uint64 // bumped on every rule change; conns cache against it

	mu     sync.Mutex
	rules  map[string]*rule
	waitCh chan struct{} // closed and replaced on every change
	timers []*time.Timer

	connSerial atomic.Uint64
	dialSerial atomic.Uint64
}

// New builds a Director with an empty rule set.
func New(cfg Config) *Director {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Director{
		cfg:    cfg,
		rules:  map[string]*rule{},
		waitCh: make(chan struct{}),
	}
}

// Seed returns the seed every probabilistic decision derives from.
func (d *Director) Seed() int64 { return d.cfg.Seed }

// Gen returns the rule-set generation (bumped on every change).
func (d *Director) Gen() uint64 { return d.gen.Load() }

// bumpLocked publishes a rule-set change: generation up, waiters woken.
func (d *Director) bumpLocked() {
	d.gen.Add(1)
	close(d.waitCh)
	d.waitCh = make(chan struct{})
}

// changed returns the channel closed at the next rule-set change.
func (d *Director) changed() <-chan struct{} {
	d.mu.Lock()
	ch := d.waitCh
	d.mu.Unlock()
	return ch
}

// SetRule installs (or replaces, by name) one rule. A rule with At > 0
// activates after that delay; Duration > 0 expires it that long after
// activation. Kill/restart rules fire their hook at activation.
func (d *Director) SetRule(r Rule) error {
	if err := r.validate(d.cfg.Kill != nil, d.cfg.Restart != nil); err != nil {
		return err
	}
	now := d.cfg.Clock()
	in := &rule{Rule: r}
	if r.At > 0 {
		in.start = now.Add(r.At)
	}
	if r.Duration > 0 {
		base := now
		if !in.start.IsZero() {
			base = in.start
		}
		in.end = base.Add(r.Duration)
	}
	d.mu.Lock()
	d.rules[r.Name] = in
	// Window edges re-publish the generation so cached conns notice
	// activation and expiry without polling the clock on the fast path.
	if r.At > 0 {
		d.timers = append(d.timers, time.AfterFunc(r.At, func() { d.activate(in) }))
	}
	if r.Duration > 0 {
		d.timers = append(d.timers, time.AfterFunc(r.At+r.Duration, func() {
			d.mu.Lock()
			d.bumpLocked()
			d.mu.Unlock()
		}))
	}
	d.bumpLocked()
	d.mu.Unlock()
	if r.At == 0 {
		d.activate(in)
	}
	return nil
}

// activate publishes a rule's activation edge and fires one-shot hooks.
func (d *Director) activate(r *rule) {
	var hook func(string) error
	d.mu.Lock()
	if d.rules[r.Name] == r && !r.fired {
		switch r.Kind {
		case KindKill:
			hook = d.cfg.Kill
		case KindRestart:
			hook = d.cfg.Restart
		}
		if hook != nil {
			r.fired = true
			r.hits.Add(1)
		}
	}
	d.bumpLocked()
	d.mu.Unlock()
	if hook != nil {
		go hook(r.Dst) //nolint:errcheck // best-effort drill hook
	}
}

// RemoveRule drops one rule by name, reporting whether it existed.
func (d *Director) RemoveRule(name string) bool {
	d.mu.Lock()
	_, ok := d.rules[name]
	if ok {
		delete(d.rules, name)
		d.bumpLocked()
	}
	d.mu.Unlock()
	return ok
}

// Clear removes every rule and wakes anything blocked on one.
func (d *Director) Clear() {
	d.mu.Lock()
	if len(d.rules) > 0 {
		d.rules = map[string]*rule{}
		d.bumpLocked()
	}
	for _, t := range d.timers {
		t.Stop()
	}
	d.timers = nil
	d.mu.Unlock()
}

// Rules snapshots the installed rules, sorted by name.
func (d *Director) Rules() []RuleStatus {
	now := d.cfg.Clock()
	d.mu.Lock()
	out := make([]RuleStatus, 0, len(d.rules))
	for _, r := range d.rules {
		out = append(out, RuleStatus{Rule: r.Rule, Active: r.active(now), Hits: r.hits.Load()})
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// matchConn returns the rules a wrapper at (local, remote) must consult
// for payload faults, under the single-application side convention.
func (d *Director) matchConn(dialerSide bool, local, remote string) (uint64, []*rule) {
	gen := d.gen.Load()
	var out []*rule
	d.mu.Lock()
	for _, r := range d.rules {
		if r.Kind == KindKill || r.Kind == KindRestart {
			continue
		}
		concreteSrc := r.Src != "" && r.Src != Wildcard
		if dialerSide {
			if !concreteSrc {
				continue // wildcard-src rules are the listener's to enforce
			}
			if !r.matchesFlow(local, remote) && !r.matchesFlow(remote, local) {
				continue
			}
		} else {
			if concreteSrc {
				continue // concrete-src rules are the dialer's to enforce
			}
			if !matchEP(r.Dst, local) {
				continue
			}
		}
		out = append(out, r)
	}
	d.mu.Unlock()
	return gen, out
}

// dialRules returns every rule relevant to establishing src -> addr
// (side convention waived: only the dialer can enforce dial faults).
func (d *Director) dialRules(src, addr string) (uint64, []*rule) {
	gen := d.gen.Load()
	var out []*rule
	d.mu.Lock()
	for _, r := range d.rules {
		if r.Kind == KindKill || r.Kind == KindRestart {
			continue
		}
		if r.matchesFlow(src, addr) || r.matchesFlow(addr, src) {
			out = append(out, r)
		}
	}
	d.mu.Unlock()
	return gen, out
}

// splitmix64 expands a seed into independent per-connection streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rngFor derives the deterministic stream for one connection direction
// (or one dial attempt) from the Director's seed.
func (d *Director) rngFor(serial uint64, dir uint64) *rand.Rand {
	s := splitmix64(uint64(d.cfg.Seed)*0x9e3779b97f4a7c15 + serial*2 + dir)
	return rand.New(rand.NewSource(int64(s)))
}
