package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// startEcho boots an echo server behind the Director's listener and
// returns its endpoint name (= bound address).
func startEcho(t *testing.T, d *Director) string {
	t.Helper()
	ln, err := d.Listen("")("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.(*Listener).Name()
}

// echoTrip round-trips one payload and returns the elapsed time.
func echoTrip(t *testing.T, c net.Conn, payload []byte) time.Duration {
	t.Helper()
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch")
	}
	return time.Since(start)
}

func TestPassthroughNoRules(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	echoTrip(t, c, []byte("hello"))
}

func TestLatencyRule(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	echoTrip(t, c, []byte("warm")) // before the rule: fast

	if err := d.SetRule(Rule{Name: "lat", Src: "client", Dst: addr, Direction: DirS2D,
		Latency: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if el := echoTrip(t, c, []byte("slow")); el < 30*time.Millisecond {
		t.Fatalf("latency rule not applied: round trip %v", el)
	}
	d.Clear()
	if el := echoTrip(t, c, []byte("fast")); el > 25*time.Millisecond {
		t.Fatalf("latency persisted after Clear: %v", el)
	}
}

func TestBandwidthCap(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	if err := d.SetRule(Rule{Name: "bw", Src: "client", Dst: addr, Direction: DirS2D,
		BandwidthBPS: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 16 KiB at 64 KiB/s must take ~250ms.
	payload := make([]byte, 16<<10)
	if el := echoTrip(t, c, payload); el < 200*time.Millisecond {
		t.Fatalf("bandwidth cap not applied: 16KiB at 64KiB/s took %v", el)
	}
}

func TestResetRule(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := d.SetRule(Rule{Name: "rst", Src: "client", Dst: addr, ResetProb: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
}

func TestDropRuleDeterministic(t *testing.T) {
	// With the same seed, the same sequence of dial attempts must make
	// the same drop decisions.
	outcomes := func(seed int64) []bool {
		d := New(Config{Seed: seed})
		addr := startEcho(t, d)
		if err := d.SetRule(Rule{Name: "drop", Src: "client", Dst: addr, DropProb: 0.5}); err != nil {
			t.Fatal(err)
		}
		dial := d.Dialer("client")
		var out []bool
		for i := 0; i < 32; i++ {
			c, err := dial("tcp", addr, time.Second)
			if err == nil {
				c.Close()
			} else if !errors.Is(err, ErrDropped) {
				t.Fatalf("unexpected dial error: %v", err)
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	same := true
	varies := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != a[0] {
			varies = true
		}
	}
	if !same {
		t.Fatalf("same seed produced different drop sequences:\n%v\n%v", a, b)
	}
	if !varies {
		t.Fatalf("drop_prob 0.5 never varied across 32 dials: %v", a)
	}
}

func TestPartitionDialAndHeal(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	if err := d.SetRule(Rule{Name: "part", Src: "client", Dst: addr, Partition: true}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := d.Dialer("client")("tcp", addr, 100*time.Millisecond)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("partitioned dial: want net timeout, got %v", err)
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("partitioned dial failed too fast (%v): should burn its timeout", el)
	}

	// A dial in flight when the partition heals must succeed.
	done := make(chan error, 1)
	go func() {
		c, err := d.Dialer("client")("tcp", addr, 5*time.Second)
		if err == nil {
			c.Close()
		}
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	d.RemoveRule("part")
	if err := <-done; err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestPartitionBlocksEstablishedAndHeals(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	echoTrip(t, c, []byte("pre"))

	if err := d.SetRule(Rule{Name: "part", Src: "client", Dst: addr, Partition: true}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("write completed through a partition: %v", err)
	case <-time.After(60 * time.Millisecond):
	}
	d.RemoveRule("part")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after heal")
	}
	got := make([]byte, 1)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestHangHonorsDeadline(t *testing.T) {
	// Accept-then-hang: the dial succeeds, the response never comes,
	// and a read deadline surfaces as a proper net timeout.
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	if err := d.SetRule(Rule{Name: "hang", Dst: addr, Hang: true}); err != nil {
		t.Fatal(err)
	}
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("hang must not fail dials: %v", err)
	}
	defer c.Close()
	// The wildcard-src hang rule is enforced at the listener: the echo
	// server never sees the payload, so this read can only time out.
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want net timeout from hung read, got %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("deadline not honored promptly: %v", el)
	}
}

func TestOneWayDirection(t *testing.T) {
	// d2s partition: requests flow, responses don't.
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := d.SetRule(Rule{Name: "oneway", Src: "client", Dst: addr,
		Direction: DirD2S, Partition: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("s2d payload must pass a d2s partition: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("d2s payload passed a d2s partition")
	}
}

func TestScheduledWindow(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := d.SetRule(Rule{Name: "window", Src: "client", Dst: addr,
		Latency: 40 * time.Millisecond, At: 60 * time.Millisecond, Duration: 80 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if el := echoTrip(t, c, []byte("before")); el > 30*time.Millisecond {
		t.Fatalf("rule applied before At: %v", el)
	}
	time.Sleep(80 * time.Millisecond) // inside the window
	if el := echoTrip(t, c, []byte("during")); el < 40*time.Millisecond {
		t.Fatalf("rule inactive inside its window: %v", el)
	}
	time.Sleep(120 * time.Millisecond) // past expiry
	if el := echoTrip(t, c, []byte("after")); el > 30*time.Millisecond {
		t.Fatalf("rule still active after Duration: %v", el)
	}
}

func TestScheduledKillRestart(t *testing.T) {
	var killed, restarted atomic.Int32
	gotKill := make(chan string, 1)
	d := New(Config{
		Seed:    1,
		Kill:    func(tgt string) error { killed.Add(1); gotKill <- tgt; return nil },
		Restart: func(tgt string) error { restarted.Add(1); return nil },
	})
	if err := d.SetRule(Rule{Name: "k", Kind: KindKill, Dst: "node-1", At: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRule(Rule{Name: "r", Kind: KindRestart, Dst: "node-1"}); err != nil {
		t.Fatal(err)
	}
	select {
	case tgt := <-gotKill:
		if tgt != "node-1" {
			t.Fatalf("kill hook target = %q", tgt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("scheduled kill never fired")
	}
	deadline := time.Now().Add(2 * time.Second)
	for restarted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restart hook never fired")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // one-shot: no refires
	if killed.Load() != 1 || restarted.Load() != 1 {
		t.Fatalf("hooks refired: kill=%d restart=%d", killed.Load(), restarted.Load())
	}

	d2 := New(Config{Seed: 1})
	if err := d2.SetRule(Rule{Name: "k", Kind: KindKill, Dst: "x"}); err == nil {
		t.Fatal("kill rule accepted without a Kill hook")
	}
}

func TestRuleJSONRoundTrip(t *testing.T) {
	in := []byte(`{"name":"slow-link","src":"127.0.0.1:9000","dst":"standby","direction":"s2d",` +
		`"latency":"25ms","jitter":"5ms","bandwidth_bps":1048576,"duration":"2s"}`)
	var r Rule
	if err := json.Unmarshal(in, &r); err != nil {
		t.Fatal(err)
	}
	if r.Latency != 25*time.Millisecond || r.Jitter != 5*time.Millisecond ||
		r.BandwidthBPS != 1<<20 || r.Duration != 2*time.Second {
		t.Fatalf("parsed rule = %+v", r)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var r2 Rule
	if err := json.Unmarshal(out, &r2); err != nil {
		t.Fatal(err)
	}
	if r2 != r {
		t.Fatalf("round trip changed the rule:\n%+v\n%+v", r, r2)
	}
	// Integer nanoseconds are accepted too (Go-marshalled durations).
	var r3 Rule
	if err := json.Unmarshal([]byte(`{"name":"n","latency":25000000}`), &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Latency != 25*time.Millisecond {
		t.Fatalf("ns duration parsed as %v", r3.Latency)
	}
}

func TestRuleStatusHits(t *testing.T) {
	d := New(Config{Seed: 1})
	addr := startEcho(t, d)
	if err := d.SetRule(Rule{Name: "lat", Src: "client", Dst: addr, Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	c, err := d.Dialer("client")("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	echoTrip(t, c, []byte("x"))
	rs := d.Rules()
	if len(rs) != 1 || rs[0].Name != "lat" || !rs[0].Active || rs[0].Hits == 0 {
		t.Fatalf("rule status = %+v", rs)
	}
	// The embedded Rule has its own marshaler; RuleStatus must still
	// surface the bookkeeping fields in GET /chaos responses.
	b, err := json.Marshal(rs[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["active"] != true || m["hits"] == nil || m["name"] != "lat" {
		t.Fatalf("rule status JSON dropped fields: %s", b)
	}
}
