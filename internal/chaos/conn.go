// Conn, Listener, and the dial hook: the wrappers that put a Director
// between a layer and its sockets. The contract that matters here is
// deadline fidelity — a blocked (partitioned/hung) operation must still
// honor SetReadDeadline/SetWriteDeadline with a proper net.Error
// timeout, because every robustness feature this package exists to
// exercise (client OpTimeout, replication handshake timeouts, follower
// read timeouts) is expressed through deadlines.

package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DialFunc is the hook signature layers accept in place of
// net.DialTimeout.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// ListenFunc is the hook signature layers accept in place of
// net.Listen.
type ListenFunc func(network, addr string) (net.Listener, error)

// timeoutError satisfies net.Error the way the runtime's own deadline
// errors do, so errors.Is/type-switches in the layers treat a faulted
// timeout exactly like a real one.
type timeoutError struct{ what string }

func (e *timeoutError) Error() string   { return "chaos: " + e.what + " timeout" }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// ErrReset is the error surface of a ResetProb firing; the connection
// is closed underneath it.
var ErrReset = errors.New("chaos: connection reset by rule")

// ErrDropped is the error surface of a DropProb firing on a dial.
var ErrDropped = errors.New("chaos: connect dropped by rule")

// ioState is one direction's cached rule view plus its deterministic
// stream and bandwidth ledger. Guarded by its mutex; the rng is created
// lazily so rule-free connections never allocate one.
type ioState struct {
	mu     sync.Mutex
	gen    uint64
	inited bool
	rules  []*rule
	rng    *rand.Rand
	bwNext time.Time // earliest next send/deliver under a bandwidth cap
}

// Conn is a net.Conn that consults the Director on every I/O. It is
// created by the Director's dial hook and Listener; the zero-rule path
// is a passthrough.
type Conn struct {
	net.Conn
	d          *Director
	local      string // this side's endpoint name
	remote     string // the other side's endpoint name (Wildcard when unknown)
	dialerSide bool
	serial     uint64

	rd, wr atomic.Int64 // unix-nano deadlines; 0 = none

	closeOnce sync.Once
	closedCh  chan struct{}

	rs, ws ioState
}

// wrap builds the wrapper for one established connection.
func (d *Director) wrap(nc net.Conn, local, remote string, dialerSide bool) *Conn {
	if tcp, ok := nc.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}
	return &Conn{
		Conn:       nc,
		d:          d,
		local:      local,
		remote:     remote,
		dialerSide: dialerSide,
		serial:     d.connSerial.Add(1),
		closedCh:   make(chan struct{}),
	}
}

// refresh re-resolves the direction's rule cache if the Director's rule
// set changed. Called with st.mu held.
func (c *Conn) refresh(st *ioState, dir uint64) {
	gen := c.d.gen.Load()
	if st.inited && gen == st.gen {
		return
	}
	st.gen, st.rules = c.d.matchConn(c.dialerSide, c.local, c.remote)
	if !st.inited {
		st.inited = true
	}
	if len(st.rules) > 0 && st.rng == nil {
		st.rng = c.d.rngFor(c.serial, dir)
	}
}

// faultPlan is the merged effect of every active rule on one operation.
type faultPlan struct {
	delay   time.Duration
	bps     int64
	block   bool
	reset   bool
	windows bool
}

// plan merges the cached rules into one operation's faults, drawing any
// probabilistic decisions from the direction's seeded stream. Called
// with st.mu held. from/to is the payload flow this direction carries.
func (c *Conn) plan(st *ioState, from, to string) faultPlan {
	var p faultPlan
	var now time.Time
	for _, r := range st.rules {
		if !r.matchesFlow(from, to) {
			continue
		}
		if r.windowed() {
			p.windows = true
			if now.IsZero() {
				now = c.d.cfg.Clock()
			}
			if !r.active(now) {
				continue
			}
		}
		hit := false
		if r.Latency > 0 || r.Jitter > 0 {
			p.delay += r.Latency
			if r.Jitter > 0 {
				p.delay += time.Duration(st.rng.Int63n(int64(r.Jitter)))
			}
			hit = true
		}
		if r.BandwidthBPS > 0 && (p.bps == 0 || r.BandwidthBPS < p.bps) {
			p.bps = r.BandwidthBPS
			hit = true
		}
		if r.ResetProb > 0 && st.rng.Float64() < r.ResetProb {
			p.reset = true
			hit = true
		}
		if r.Partition || r.Hang {
			p.block = true
			hit = true
		}
		if hit {
			r.hits.Add(1)
		}
	}
	return p
}

// blocked re-checks, with fresh rules, whether the flow is still
// blackholed. Called with st.mu held.
func (c *Conn) blocked(st *ioState, dir uint64, from, to string) bool {
	c.refresh(st, dir)
	var now time.Time
	for _, r := range st.rules {
		if !r.Partition && !r.Hang {
			continue
		}
		if !r.matchesFlow(from, to) {
			continue
		}
		if r.windowed() {
			if now.IsZero() {
				now = c.d.cfg.Clock()
			}
			if !r.active(now) {
				continue
			}
		}
		return true
	}
	return false
}

// deadlineOf reads one direction's deadline (zero Time = none).
func deadlineOf(a *atomic.Int64) time.Time {
	if ns := a.Load(); ns != 0 {
		return time.Unix(0, ns)
	}
	return time.Time{}
}

// waitWhileBlocked parks the operation until the blackhole lifts, the
// deadline passes, or the connection closes. Re-arms in bounded slices
// so a deadline installed mid-wait is honored promptly.
func (c *Conn) waitWhileBlocked(st *ioState, dl *atomic.Int64, dir uint64, from, to, what string) error {
	for {
		if !c.blocked(st, dir, from, to) {
			return nil
		}
		wait := 50 * time.Millisecond
		if d := deadlineOf(dl); !d.IsZero() {
			left := time.Until(d)
			if left <= 0 {
				return &timeoutError{what: what}
			}
			if left < wait {
				wait = left
			}
		}
		changed := c.d.changed()
		timer := time.NewTimer(wait)
		select {
		case <-changed:
		case <-timer.C:
		case <-c.closedCh:
			timer.Stop()
			return net.ErrClosed
		}
		timer.Stop()
	}
}

// sleepFaulted sleeps a fault delay, honoring the deadline: if the
// deadline lands inside the delay the operation times out, the way a
// real in-flight packet simply fails to arrive in time.
func (c *Conn) sleepFaulted(delay time.Duration, dl *atomic.Int64, what string) error {
	if d := deadlineOf(dl); !d.IsZero() {
		left := time.Until(d)
		if left <= delay {
			if left > 0 {
				time.Sleep(left)
			}
			return &timeoutError{what: what}
		}
	}
	time.Sleep(delay)
	return nil
}

// pace charges n bytes against the bandwidth cap and returns how long
// delivery must wait.
func pace(st *ioState, n int, bps int64, now time.Time) time.Duration {
	if bps <= 0 || n <= 0 {
		return 0
	}
	dur := time.Duration(float64(n) / float64(bps) * float64(time.Second))
	if st.bwNext.Before(now) {
		st.bwNext = now
	}
	st.bwNext = st.bwNext.Add(dur)
	return st.bwNext.Sub(now)
}

// Read delivers payload flowing remote -> local through the fault plan.
func (c *Conn) Read(p []byte) (int, error) {
	st := &c.rs
	st.mu.Lock()
	defer st.mu.Unlock()
	c.refresh(st, 0)
	if len(st.rules) == 0 {
		return c.Conn.Read(p)
	}
	plan := c.plan(st, c.remote, c.local)
	if plan.reset {
		c.Close()
		return 0, ErrReset
	}
	if plan.block {
		if err := c.waitWhileBlocked(st, &c.rd, 0, c.remote, c.local, "read"); err != nil {
			return 0, err
		}
	}
	if plan.delay > 0 {
		if err := c.sleepFaulted(plan.delay, &c.rd, "read"); err != nil {
			return 0, err
		}
	}
	n, err := c.Conn.Read(p)
	if w := pace(st, n, plan.bps, time.Now()); w > 0 {
		// Data was consumed off the wire, so it must be delivered even
		// if the deadline lands mid-pace; Read's n>0-with-error contract
		// covers that.
		if serr := c.sleepFaulted(w, &c.rd, "read"); serr != nil && err == nil {
			err = serr
		}
	}
	return n, err
}

// Write pushes payload flowing local -> remote through the fault plan.
// All faults apply before any bytes reach the socket, so a timed-out
// write never half-sends.
func (c *Conn) Write(p []byte) (int, error) {
	st := &c.ws
	st.mu.Lock()
	defer st.mu.Unlock()
	c.refresh(st, 1)
	if len(st.rules) == 0 {
		return c.Conn.Write(p)
	}
	plan := c.plan(st, c.local, c.remote)
	if plan.reset {
		c.Close()
		return 0, ErrReset
	}
	if plan.block {
		if err := c.waitWhileBlocked(st, &c.wr, 1, c.local, c.remote, "write"); err != nil {
			return 0, err
		}
	}
	delay := plan.delay + pace(st, len(p), plan.bps, time.Now())
	if delay > 0 {
		if err := c.sleepFaulted(delay, &c.wr, "write"); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

// Close unblocks any parked operations before closing the socket.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closedCh) })
	return c.Conn.Close()
}

// SetDeadline tracks the deadline for blocked waits and forwards it.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.Store(dlNanos(t))
	c.wr.Store(dlNanos(t))
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline tracks the read deadline and forwards it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rd.Store(dlNanos(t))
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline tracks the write deadline and forwards it.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wr.Store(dlNanos(t))
	return c.Conn.SetWriteDeadline(t)
}

func dlNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Dialer returns a DialFunc whose connections carry src as their local
// endpoint name. Dial-time faults (Partition, DropProb, Latency) apply
// before the socket connect; established connections are wrapped.
func (d *Director) Dialer(src string) DialFunc {
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		return d.dial(src, network, addr, timeout)
	}
}

func (d *Director) dial(src, network, addr string, timeout time.Duration) (net.Conn, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	serial := d.dialSerial.Add(1)
	var rng *rand.Rand

	for {
		_, rules := d.dialRules(src, addr)
		var delay time.Duration
		blocked := false
		now := time.Time{}
		for _, r := range rules {
			if r.windowed() {
				if now.IsZero() {
					now = d.cfg.Clock()
				}
				if !r.active(now) {
					continue
				}
			}
			if r.Partition {
				blocked = true
				r.hits.Add(1)
				continue
			}
			if r.DropProb > 0 {
				if rng == nil {
					rng = d.rngFor(serial, 2)
				}
				if rng.Float64() < r.DropProb {
					r.hits.Add(1)
					return nil, &net.OpError{Op: "dial", Net: network, Err: ErrDropped}
				}
			}
			if r.Latency > 0 || r.Jitter > 0 {
				delay += r.Latency
				if r.Jitter > 0 {
					if rng == nil {
						rng = d.rngFor(serial, 2)
					}
					delay += time.Duration(rng.Int63n(int64(r.Jitter)))
				}
				r.hits.Add(1)
			}
		}
		if blocked {
			// A partitioned dial behaves like lost SYNs: it burns its
			// whole timeout unless the partition heals first.
			wait := 50 * time.Millisecond
			if !deadline.IsZero() {
				left := time.Until(deadline)
				if left <= 0 {
					return nil, &net.OpError{Op: "dial", Net: network,
						Err: &timeoutError{what: "dial (partitioned)"}}
				}
				if left < wait {
					wait = left
				}
			}
			changed := d.changed()
			timer := time.NewTimer(wait)
			select {
			case <-changed:
			case <-timer.C:
			}
			timer.Stop()
			continue
		}
		if delay > 0 {
			if !deadline.IsZero() && time.Until(deadline) <= delay {
				if left := time.Until(deadline); left > 0 {
					time.Sleep(left)
				}
				return nil, &net.OpError{Op: "dial", Net: network,
					Err: &timeoutError{what: "dial"}}
			}
			time.Sleep(delay)
		}
		remaining := timeout
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				return nil, &net.OpError{Op: "dial", Net: network,
					Err: &timeoutError{what: "dial"}}
			}
		}
		nc, err := net.DialTimeout(network, addr, remaining)
		if err != nil {
			return nil, err
		}
		return d.wrap(nc, src, addr, true), nil
	}
}

// Listener wraps accepted connections so wildcard-src rules addressed
// to this endpoint fault them.
type Listener struct {
	net.Listener
	d    *Director
	name string
}

// Listen returns a ListenFunc whose accepted connections carry name as
// their endpoint; an empty name adopts the bound address, which is how
// :0 listeners become addressable by their real port.
func (d *Director) Listen(name string) ListenFunc {
	return func(network, addr string) (net.Listener, error) {
		ln, err := net.Listen(network, addr)
		if err != nil {
			return nil, err
		}
		return d.WrapListener(name, ln), nil
	}
}

// WrapListener puts the Director between an existing listener and its
// accepted connections.
func (d *Director) WrapListener(name string, ln net.Listener) net.Listener {
	if name == "" {
		name = ln.Addr().String()
	}
	return &Listener{Listener: ln, d: d, name: name}
}

// Name returns the endpoint name rules address this listener by.
func (l *Listener) Name() string { return l.name }

// Accept wraps the next connection. The remote endpoint is unknown
// (ephemeral ports don't identify peers), so only wildcard-src rules
// apply — the side convention's listener half.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.d.wrap(nc, l.name, Wildcard, false), nil
}

var _ net.Error = (*timeoutError)(nil)
