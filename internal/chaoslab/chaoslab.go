// Package chaoslab assembles a fully replicated in-process cluster
// behind a chaos.Director and drives fault scenarios against it. It is
// the shared harness of `cpbench -experiment faults` (which measures
// qps/p99/p999 and time-to-recovery per scenario) and the -race
// property tests (which assert zero acked-write loss and bounded
// recovery under the same scenarios).
//
// Every member is the stack cmd/cpserver builds per instance: a
// LOCKHASH table, a durability pipeline, a replication source, and a
// CPSERVER front end — with every dial and listen routed through one
// Director, so rules addressed by endpoint reach the request wire, the
// replication wire, the client pools, and the failure detector's
// probe.
//
// Endpoint names:
//
//   - a member's serving address (request wire listener, and the name
//     its outgoing follower links introduce themselves by);
//   - a member's replication address (the source's listener);
//   - "client" (the client SDK's pools);
//   - "detector" (the failure detector's probe dials).
package chaoslab

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/chaos"
	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/detect"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/protocol"
	"cphash/internal/rebalance"
	"cphash/internal/replica"
)

// ClientName and DetectorName are the Director endpoint names of the
// client SDK pools and the failure detector's probe dials.
const (
	ClientName   = "client"
	DetectorName = "detector"
)

// Config parameterizes a lab cluster.
type Config struct {
	// Nodes is the member count (default 3); Depth the replication
	// depth (default 2: primary plus one standby per slot).
	Nodes int
	Depth int
	// Seed drives the Director and the workload (default 1).
	Seed int64
	// BaseDir roots the members' data directories (required).
	BaseDir string
	// OpTimeout is the client per-op I/O deadline (default 300ms) —
	// the hardening that turns a hung primary into failing ops instead
	// of a hung workload.
	OpTimeout time.Duration
	// Detector enables the failure detector, wired the way cpserver
	// wires it: probe through the Director's "detector" dialer, act =
	// promote + mesh rewire.
	Detector bool
	// WitnessProbe extends the probe with cpserver's peer_up witness: a
	// member whose outgoing replication links are still alive on some
	// surviving source is not dead, no matter what the dial said. This
	// is the asymmetric-partition hardening; scenarios that exercise
	// the flap guard instead use the bare dial probe.
	WitnessProbe bool
	// AppProbe upgrades the probe from a bare TCP dial to detect.Ping:
	// one protocol LOOKUP round trip under ProbeTimeout. A member that
	// accepts the dial but never answers the request (accept-then-hang)
	// is definitively down — the witness is not consulted, because a
	// live replication heartbeat cannot vouch for a wedged serving path.
	AppProbe bool
	// ProbeTimeout bounds each probe dial (default 100ms).
	ProbeTimeout time.Duration
	// Detector knobs (defaults: 25ms, 150ms, 500ms, 60s, 4).
	Interval   time.Duration
	DownAfter  time.Duration
	Cooldown   time.Duration
	FlapWindow time.Duration
	FlapMax    int
}

func (c *Config) setDefaults() error {
	if c.BaseDir == "" {
		return fmt.Errorf("chaoslab: Config.BaseDir is required")
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 300 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 100 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 150 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = time.Minute
	}
	if c.FlapMax <= 0 {
		c.FlapMax = 4
	}
	return nil
}

// Member is one replicated cluster member.
type Member struct {
	Addr     string // serving address (request wire)
	ReplAddr string // replication source address
	srv      *kvserver.Server
	table    *lockhash.Table
	pipe     *persist.Pipeline
	src      *replica.Source
	dir      string
}

// Cluster is the lab: members, mesh, client, optional detector, all
// behind one Director.
type Cluster struct {
	cfg Config
	Dir *chaos.Director

	Client *client.Client
	Mig    *rebalance.Migrator
	Det    *detect.Detector

	members map[string]*Member
	addrs   []string

	mu    sync.Mutex
	alive map[string]bool
	links map[string]map[string]*replica.Follower
	sets  map[string]map[string]protocol.SlotSet

	promotions atomic.Int64
	actErrs    atomic.Int64
}

// New boots the cluster: members, replication mesh at Depth, client,
// and (optionally) the detector. Close tears everything down.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		Dir:     chaos.New(chaos.Config{Seed: cfg.Seed}),
		members: map[string]*Member{},
		alive:   map[string]bool{},
		links:   map[string]map[string]*replica.Follower{},
		sets:    map[string]map[string]protocol.SlotSet{},
	}
	for i := 0; i < cfg.Nodes; i++ {
		m, err := c.startMember(filepath.Join(cfg.BaseDir, fmt.Sprintf("node-%d", i)))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.members[m.Addr] = m
		c.addrs = append(c.addrs, m.Addr)
		c.alive[m.Addr] = true
	}
	cl, err := client.New(client.Config{
		Nodes:          c.addrs,
		OpTimeout:      cfg.OpTimeout,
		Dial:           c.Dir.Dialer(ClientName),
		DownBackoff:    25 * time.Millisecond,
		DownBackoffMax: 250 * time.Millisecond,
		ReplicaDepth:   cfg.Depth,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Client = cl
	c.Mig = rebalance.New(cl, rebalance.Config{})
	c.Rewire()
	if err := c.WaitSynced(10 * time.Second); err != nil {
		c.Close()
		return nil, err
	}
	if cfg.Detector {
		det, err := detect.New(detect.Config{
			Probe:      c.Probe,
			Act:        c.autoPromote,
			Interval:   cfg.Interval,
			DownAfter:  cfg.DownAfter,
			Cooldown:   cfg.Cooldown,
			FlapWindow: cfg.FlapWindow,
			FlapMax:    cfg.FlapMax,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		det.SetTargets(c.addrs)
		det.Start()
		c.Det = det
	}
	return c, nil
}

// startMember assembles one member stack with every listener routed
// through the Director.
func (c *Cluster) startMember(dir string) (*Member, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	pipe, err := persist.Open(persist.Config{Dir: dir, Policy: persist.SyncNone, Streams: 2})
	if err != nil {
		return nil, err
	}
	table, err := lockhash.New(lockhash.Config{
		Partitions:    8,
		CapacityBytes: 8 << 20,
		Sink:          func(i int) partition.ChangeSink { return pipe.Appender(i) },
	})
	if err != nil {
		pipe.Close()
		return nil, err
	}
	pipe.SetSource(persist.LockHashSource(table))
	if _, err := persist.RestoreLockHash(pipe, table); err != nil {
		pipe.Close()
		return nil, err
	}
	if err := pipe.Start(); err != nil {
		pipe.Close()
		return nil, err
	}
	src, err := replica.NewSource(replica.SourceConfig{
		Pipe:             pipe,
		Addr:             "127.0.0.1:0",
		Heartbeat:        10 * time.Millisecond,
		WriteTimeout:     750 * time.Millisecond,
		HandshakeTimeout: time.Second,
		Listen:           c.Dir.Listen(""),
	})
	if err != nil {
		pipe.Close()
		return nil, err
	}
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:        "127.0.0.1:0",
		Workers:     2,
		NewBackend:  kvserver.NewLockHashBackend(table),
		Persist:     pipe,
		Replication: src,
		Listen:      c.Dir.Listen(""),
	})
	if err != nil {
		src.Close()
		pipe.Close()
		return nil, err
	}
	return &Member{
		Addr:     srv.Addr(),
		ReplAddr: src.Addr(),
		srv:      srv,
		table:    table,
		pipe:     pipe,
		src:      src,
		dir:      dir,
	}, nil
}

// Addrs returns the members' serving addresses in start order.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Member returns the member serving at addr (nil if unknown).
func (c *Cluster) Member(addr string) *Member { return c.members[addr] }

// ReplAddr maps a serving address to its replication listener address.
func (c *Cluster) ReplAddr(addr string) string {
	if m := c.members[addr]; m != nil {
		return m.ReplAddr
	}
	return ""
}

// Promotions returns how many automatic failovers have completed.
func (c *Cluster) Promotions() int64 { return c.promotions.Load() }

// Probe is the cpserver-style health probe, dialed through the
// Director's "detector" endpoint so one-way partitions reach it. With
// AppProbe the dial is upgraded to a protocol-level ping; with
// WitnessProbe, a live outgoing replication link on any surviving
// source vouches for a member whose dial failed. A member that dialed
// but did not answer the ping is down regardless of the witness.
func (c *Cluster) Probe(addr string) bool {
	dial := c.Dir.Dialer(DetectorName)
	if c.cfg.AppProbe {
		switch detect.Ping(detect.DialFunc(dial), addr, c.cfg.ProbeTimeout) {
		case detect.PingOK:
			return true
		case detect.PingNoReply:
			return false // accepting but not serving: definitively down
		}
		// PingNoDial falls through to the witness below.
	} else {
		conn, err := dial("tcp", addr, c.cfg.ProbeTimeout)
		if err == nil {
			conn.Close()
			return true
		}
	}
	if !c.cfg.WitnessProbe {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for a, m := range c.members {
		if a == addr || !c.alive[a] {
			continue
		}
		for _, p := range m.src.Peers() {
			if p.Name == addr && p.Up {
				return true
			}
		}
	}
	return false
}

// autoPromote is the detector's Act: the cpserver promote path — fence
// the victim, drain the new owner's link from the corpse, flip
// ownership, rewire.
func (c *Cluster) autoPromote(victim string) error {
	// Fence first, the way cpserver's promote closes the target
	// instance: a hung-but-alive member must stop serving and drop its
	// replication source before ownership flips, or the confirm below
	// would wait out a link the wedged member keeps heartbeating.
	// Kill is a no-op for a member that is already dead (kill-recover).
	c.Kill(victim)
	confirm := func(newOwner string, slots []int) error {
		f := c.takeLink(newOwner, victim)
		if f == nil {
			return fmt.Errorf("no replication link %s <- %s", newOwner, victim)
		}
		defer f.Close()
		if !f.WaitDisconnected(10 * time.Second) {
			return fmt.Errorf("link %s <- %s did not drain", newOwner, victim)
		}
		return nil
	}
	if err := c.Mig.Promote(victim, confirm); err != nil {
		c.actErrs.Add(1)
		return err
	}
	c.mu.Lock()
	c.alive[victim] = false
	c.mu.Unlock()
	c.Rewire()
	c.promotions.Add(1)
	return nil
}

// Kill stops a member the way cpserver's /kill drill does: its own
// follower links come down first, then the graceful close (fence,
// barrier, drain the source to its synced followers).
func (c *Cluster) Kill(addr string) {
	c.mu.Lock()
	byOwner := c.links[addr]
	delete(c.links, addr)
	delete(c.sets, addr)
	c.mu.Unlock()
	for _, f := range byOwner {
		f.Close()
	}
	if m := c.members[addr]; m != nil {
		m.srv.Close()
	}
}

// takeLink removes and returns the link follower <- owner (nil when
// absent).
func (c *Cluster) takeLink(follower, owner string) *replica.Follower {
	c.mu.Lock()
	defer c.mu.Unlock()
	byOwner := c.links[follower]
	f := byOwner[owner]
	delete(byOwner, owner)
	if s := c.sets[follower]; s != nil {
		delete(s, owner)
	}
	return f
}

// Rewire reconciles the replication mesh against the client's ring:
// every slot's owner feeds ranks 1..Depth-1, links whose slot sets are
// unchanged keep their warm sessions.
func (c *Cluster) Rewire() {
	ring := c.Client.Ring()
	c.mu.Lock()
	defer c.mu.Unlock()
	want := map[string]map[string]*protocol.SlotSet{}
	for s := 0; s < protocol.SlotCount; s++ {
		owner := ring.Owner(s)
		if !c.alive[owner] {
			continue
		}
		for _, standby := range ring.Replicas(s, c.cfg.Depth) {
			if standby == owner || !c.alive[standby] {
				continue
			}
			byOwner := want[standby]
			if byOwner == nil {
				byOwner = map[string]*protocol.SlotSet{}
				want[standby] = byOwner
			}
			set := byOwner[owner]
			if set == nil {
				set = &protocol.SlotSet{}
				byOwner[owner] = set
			}
			set.Add(s)
		}
	}
	for follower, byOwner := range c.links {
		for owner, f := range byOwner {
			var w *protocol.SlotSet
			if m := want[follower]; m != nil {
				w = m[owner]
			}
			if w != nil && *w == c.sets[follower][owner] {
				continue
			}
			f.Close()
			delete(byOwner, owner)
			delete(c.sets[follower], owner)
		}
	}
	for follower, byOwner := range want {
		for owner, set := range byOwner {
			if c.links[follower][owner] != nil {
				continue
			}
			f, err := replica.StartFollower(replica.FollowerConfig{
				Source:      c.members[owner].src.Addr(),
				Name:        follower,
				Slots:       set,
				Apply:       replica.NewLockHashApplier(c.members[follower].table),
				Backoff:     20 * time.Millisecond,
				DialTimeout: 200 * time.Millisecond,
				ReadTimeout: 2 * time.Second,
				Dial:        c.Dir.Dialer(follower),
			})
			if err != nil {
				continue
			}
			if c.links[follower] == nil {
				c.links[follower] = map[string]*replica.Follower{}
				c.sets[follower] = map[string]protocol.SlotSet{}
			}
			c.links[follower][owner] = f
			c.sets[follower][owner] = *set
		}
	}
}

// WaitSynced blocks until every live source reports all its peers
// synced with the tail acknowledged (the steady replication state).
func (c *Cluster) WaitSynced(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.synced() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaoslab: mesh did not sync within %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (c *Cluster) synced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	liveFollowers := 0
	for f, byOwner := range c.links {
		if c.alive[f] {
			liveFollowers += len(byOwner)
		}
	}
	total := 0
	for addr, m := range c.members {
		if !c.alive[addr] {
			continue
		}
		tail := m.src.Tail()
		for _, ps := range m.src.Status() {
			if !ps.Synced || ps.Acked < tail {
				return false
			}
			total++
		}
	}
	return total >= liveFollowers
}

// Alive reports whether addr has not been killed or promoted away.
func (c *Cluster) Alive(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive[addr]
}

// OwnerOf returns the current ring owner of slot.
func (c *Cluster) OwnerOf(slot int) string { return c.Client.Ring().Owner(slot) }

// VictimFor picks the owner of slot 0 — a member that certainly owns
// slots, so killing or faulting it is never a no-op.
func (c *Cluster) VictimFor() string { return c.OwnerOf(0) }

// StandbyOf returns the rank-1 standby of the first slot addr owns.
func (c *Cluster) StandbyOf(addr string) string {
	ring := c.Client.Ring()
	for s := 0; s < protocol.SlotCount; s++ {
		if ring.Owner(s) != addr {
			continue
		}
		reps := ring.Replicas(s, c.cfg.Depth)
		for _, r := range reps {
			if r != addr {
				return r
			}
		}
	}
	return ""
}

// Close tears the lab down: detector, client, links, members.
func (c *Cluster) Close() {
	if c.Det != nil {
		c.Det.Close()
	}
	c.Dir.Clear()
	if c.Client != nil {
		c.Client.Close()
	}
	c.mu.Lock()
	links := c.links
	c.links = map[string]map[string]*replica.Follower{}
	c.mu.Unlock()
	for _, byOwner := range links {
		for _, f := range byOwner {
			f.Close()
		}
	}
	for addr, m := range c.members {
		c.mu.Lock()
		wasAlive := c.alive[addr]
		c.mu.Unlock()
		if wasAlive {
			m.srv.Close()
		}
	}
}

// SlotOf exposes the cluster's key → slot mapping for scenario code.
func SlotOf(key uint64) int { return cluster.SlotOf(key) }

var _ net.Conn = (net.Conn)(nil)
