// Property tests over the fault matrix: every scenario must end with
// zero acked-write loss and a bounded time-to-recovery, under -race.
// These are the tests the ISSUE's hardening contract points at — the
// same scenarios cpbench measures, run at CI-smoke durations.

package chaoslab

import (
	"testing"
	"time"

	"cphash/internal/chaos"
)

// maxTTR bounds recovery for every scenario at test scale. Failover
// needs DownAfter + promote + drain; heals need reconnect + resync.
const maxTTR = 8 * time.Second

func shortRC(t *testing.T, seed int64) RunConfig {
	t.Helper()
	return RunConfig{
		Seed:          seed,
		Writers:       2,
		KeysPerWriter: 150,
		Warmup:        150 * time.Millisecond,
		FaultFor:      600 * time.Millisecond,
		Settle:        700 * time.Millisecond,
		Dir:           t.TempDir(),
	}
}

// TestScenarioMatrix runs every cell of the fault matrix and asserts
// the scenario's own contract (promotion count, zero loss — both
// enforced inside Run) plus a global recovery bound.
func TestScenarioMatrix(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc, shortRC(t, 42))
			if err != nil {
				t.Fatalf("%s: %v (result %+v)", sc.Name, err, res)
			}
			if res.Ops == 0 {
				t.Fatalf("%s: no operation ever succeeded", sc.Name)
			}
			if ttr := res.TTR(); ttr > maxTTR {
				t.Fatalf("%s: time-to-recovery %v exceeds %v", sc.Name, ttr, maxTTR)
			}
			if sc.Name == "kill-recover" && res.TTR() == 0 {
				t.Fatal("kill-recover: a primary died under live traffic yet no client ever erred")
			}
			t.Logf("%s: ops=%d errs=%d qps=%.0f p99=%v p999=%v ttr=%v promotions=%d",
				sc.Name, res.Ops, res.Errors, res.QPS,
				time.Duration(res.P99Ns), time.Duration(res.P999Ns), res.TTR(), res.Promotions)
		})
	}
}

// TestAsymmetricPartitionNoPrematureFailover is the satellite the ISSUE
// names: the detector's probe path is partitioned from the primary
// while clients still reach it. The peer_up witness (a live outgoing
// replication link on a surviving source vouches for the member) must
// hold promotion back for the whole outage — a premature promotion here
// would flip ownership away from the only member holding the newest
// acked writes.
func TestAsymmetricPartitionNoPrematureFailover(t *testing.T) {
	c, err := New(Config{
		BaseDir:      t.TempDir(),
		Seed:         7,
		Detector:     true,
		WitnessProbe: true,
		DownAfter:    150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := c.VictimFor()
	rc := shortRC(t, 7)
	w := startWorkload(c, rc)
	time.Sleep(rc.Warmup)

	// One-way: only the detector's dials to the victim die. The outage
	// lasts many multiples of DownAfter — without the witness this is a
	// guaranteed (and wrong) promotion.
	if err := c.Dir.SetRule(chaos.Rule{
		Name:      "asym",
		Src:       DetectorName,
		Dst:       victim,
		Partition: true,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(6 * 150 * time.Millisecond)
	c.Dir.RemoveRule("asym")
	time.Sleep(rc.Settle)
	w.halt()

	if n := c.Promotions(); n != 0 {
		t.Fatalf("asymmetric partition triggered %d premature promotions", n)
	}
	if !c.Client.Ring().Contains(victim) {
		t.Fatal("victim fell out of the ring during a one-way partition")
	}
	for _, ts := range c.Det.Status() {
		if ts.Target == victim && !ts.Up {
			t.Fatalf("witness failed to vouch for the reachable primary: %+v", ts)
		}
	}
	// Clients never lost the primary, so the fault must be invisible to
	// acked writes — and with no promotion there is no window to lose
	// them in.
	if lost, stale := w.verify(); lost+stale > 0 {
		t.Fatalf("acked-write loss under asymmetric partition: %d lost, %d stale", lost, stale)
	}
	if w.ops.Load() == 0 {
		t.Fatal("no operation succeeded during the asymmetric partition")
	}
}

// TestFlapGuardSuppressesPromotion exercises the other half of the
// satellite: the probe path flaps (windows shorter than DownAfter), the
// detector records the transitions, and the flap guard marks the target
// suppressed instead of promoting — acked writes survive untouched.
func TestFlapGuardSuppressesPromotion(t *testing.T) {
	c, err := New(Config{
		BaseDir:   t.TempDir(),
		Seed:      11,
		Detector:  true, // bare dial probe: every flap window is visible
		DownAfter: 500 * time.Millisecond,
		FlapMax:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := c.VictimFor()
	rc := shortRC(t, 11)
	w := startWorkload(c, rc)
	time.Sleep(rc.Warmup)

	// Detector-only flap chain: 150ms outages every 300ms, scheduled up
	// front so the profile is deterministic from the Director's clock.
	const onFor, period = 150 * time.Millisecond, 300 * time.Millisecond
	for i := 0; i < 4; i++ {
		if err := c.Dir.SetRule(chaos.Rule{
			Name:      "flap-" + string(rune('a'+i)),
			Src:       DetectorName,
			Dst:       victim,
			Partition: true,
			At:        time.Duration(i) * period,
			Duration:  onFor,
		}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(4*period + 200*time.Millisecond)
	c.Dir.Clear()
	time.Sleep(rc.Settle)
	w.halt()

	if n := c.Promotions(); n != 0 {
		t.Fatalf("flapping probe path triggered %d promotions", n)
	}
	var saw bool
	for _, ts := range c.Det.Status() {
		if ts.Target != victim {
			continue
		}
		saw = true
		if ts.Transitions == 0 {
			t.Fatalf("detector never observed the flapping: %+v", ts)
		}
		if !ts.Suppressed {
			t.Fatalf("flap guard not engaged after %d transitions: %+v", ts.Transitions, ts)
		}
	}
	if !saw {
		t.Fatalf("victim missing from detector status: %+v", c.Det.Status())
	}
	if errs := w.errs.Load(); errs != 0 {
		t.Fatalf("detector-only flap leaked %d errors to clients", errs)
	}
	if lost, stale := w.verify(); lost+stale > 0 {
		t.Fatalf("acked-write loss under flapping: %d lost, %d stale", lost, stale)
	}
}
