package chaoslab

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/chaos"
	"cphash/internal/perf"
)

// RunConfig sizes one scenario run. Zero values take the short-mode
// defaults used by the CI smoke job; cpbench passes larger windows.
type RunConfig struct {
	Seed          int64
	Writers       int
	KeysPerWriter int
	Warmup        time.Duration // steady traffic before the fault
	FaultFor      time.Duration // how long the fault holds
	Settle        time.Duration // post-heal traffic (must exceed recovery)
	Dir           string        // data root (required)
}

func (rc *RunConfig) setDefaults() {
	if rc.Seed == 0 {
		rc.Seed = 1
	}
	if rc.Writers <= 0 {
		rc.Writers = 3
	}
	if rc.KeysPerWriter <= 0 {
		rc.KeysPerWriter = 200
	}
	if rc.Warmup <= 0 {
		rc.Warmup = 200 * time.Millisecond
	}
	if rc.FaultFor <= 0 {
		rc.FaultFor = 600 * time.Millisecond
	}
	if rc.Settle <= 0 {
		rc.Settle = 800 * time.Millisecond
	}
}

// Signal names what "recovered" means for a scenario's TTR.
const (
	// SignalClient: recovery is the last client-visible error — TTR is
	// measured from the heal (or the fault, when nothing heals and
	// failover itself is the recovery) to the final failed op.
	SignalClient = "client"
	// SignalMesh: the fault never reaches clients; recovery is the
	// replication mesh reporting every peer synced again after heal.
	SignalMesh = "mesh"
)

// Scenario is one cell of the fault matrix.
type Scenario struct {
	Name string
	// Lab adjusts the cluster config (detector on/off, probe mode).
	Lab func(*Config)
	// Inject installs the fault against the chosen victim. faultFor is
	// the window the fault must cover (flap chains schedule inside it).
	Inject func(c *Cluster, victim string, faultFor time.Duration) error
	// Heal lifts the fault; nil when the fault is permanent (a kill)
	// and recovery means failover, not repair.
	Heal func(c *Cluster, victim string)
	// Signal selects the TTR definition (SignalClient or SignalMesh).
	Signal string
	// WantPromotions is the exact failover count the scenario must end
	// with (-1 to skip the check).
	WantPromotions int64
}

// Result is one scenario measurement — the row that lands in
// BENCH_faults.json.
type Result struct {
	Scenario   string  `json:"scenario"`
	Seed       int64   `json:"seed"`
	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	QPS        float64 `json:"qps"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	P999Ns     int64   `json:"p999_ns"`
	TTRNs      int64   `json:"ttr_ns"`
	Promotions int64   `json:"promotions"`
	Lost       int     `json:"lost_writes"`
	Stale      int     `json:"stale_writes"`
	WallNs     int64   `json:"wall_ns"`
}

// TTR returns the time-to-recovery as a duration.
func (r Result) TTR() time.Duration { return time.Duration(r.TTRNs) }

// workload drives read-back-confirmed writers against the cluster, the
// same acked-write discipline as the promotion property tests: a write
// counts as acked only once its read-back returns the exact value.
type workload struct {
	c      *Cluster
	states []keyState
	hists  []*perf.Histogram

	ops, errs atomic.Int64
	lastErrNs atomic.Int64

	stop atomic.Bool
	wg   sync.WaitGroup
}

type keyState struct {
	confirmed atomic.Uint64 // highest version whose read-back succeeded
	attempted atomic.Uint64 // highest version ever sent
}

func startWorkload(c *Cluster, rc RunConfig) *workload {
	w := &workload{
		c:      c,
		states: make([]keyState, rc.Writers*rc.KeysPerWriter),
		hists:  make([]*perf.Histogram, rc.Writers),
	}
	for i := 0; i < rc.Writers; i++ {
		w.hists[i] = perf.NewHistogram()
		w.wg.Add(1)
		go w.writer(i, rc)
	}
	return w
}

func (w *workload) writer(id int, rc RunConfig) {
	defer w.wg.Done()
	rng := rand.New(rand.NewSource(rc.Seed + int64(id)*7919))
	h := w.hists[id]
	for !w.stop.Load() {
		k := uint64(id*rc.KeysPerWriter + rng.Intn(rc.KeysPerWriter))
		st := &w.states[k]
		ver := st.attempted.Add(1)
		val := []byte(fmt.Sprintf("%d:%d", k, ver))
		t0 := time.Now()
		err := w.c.Client.Set(k, val)
		h.Record(time.Since(t0).Nanoseconds())
		if err != nil {
			w.errs.Add(1)
			w.lastErrNs.Store(time.Now().UnixNano())
			continue
		}
		w.ops.Add(1)
		// The read-back is where synchronous latency lives (SETs are
		// one-way in the CPHash protocol), so it is measured too.
		t0 = time.Now()
		v, found, gerr := w.c.Client.Get(k)
		h.Record(time.Since(t0).Nanoseconds())
		if gerr != nil {
			w.errs.Add(1)
			w.lastErrNs.Store(time.Now().UnixNano())
			continue
		}
		w.ops.Add(1)
		if found && bytes.Equal(v, val) {
			// Writers never race on a key (disjoint ranges), so the CAS
			// below is just a monotonic store.
			for {
				cur := st.confirmed.Load()
				if ver <= cur || st.confirmed.CompareAndSwap(cur, ver) {
					break
				}
			}
		}
	}
}

func (w *workload) halt() {
	w.stop.Store(true)
	w.wg.Wait()
}

// verify sweeps every key with a confirmed write and counts losses
// (confirmed but gone) and staleness (present but older than
// confirmed). Transient errors get a short retry budget — verification
// runs after recovery, so persistent errors are themselves a failure
// and count as loss.
func (w *workload) verify() (lost, stale int) {
	for k := range w.states {
		confirmed := w.states[k].confirmed.Load()
		if confirmed == 0 {
			continue
		}
		var (
			v     []byte
			found bool
			err   error
		)
		for attempt := 0; attempt < 40; attempt++ {
			v, found, err = w.c.Client.Get(uint64(k))
			if err == nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if err != nil || !found {
			lost++
			continue
		}
		var gotKey, gotVer uint64
		if _, serr := fmt.Sscanf(string(v), "%d:%d", &gotKey, &gotVer); serr != nil || gotKey != uint64(k) {
			lost++
			continue
		}
		if gotVer < confirmed {
			stale++
		}
	}
	return lost, stale
}

// Run executes one scenario cell: boot, warm up, inject, hold, heal,
// settle, stop, verify. Deterministic per (scenario, RunConfig.Seed):
// the Director's fault decisions and the writers' key sequences both
// derive from the seed.
func Run(sc Scenario, rc RunConfig) (Result, error) {
	rc.setDefaults()
	if rc.Dir == "" {
		return Result{}, fmt.Errorf("chaoslab: RunConfig.Dir is required")
	}
	cfg := Config{BaseDir: rc.Dir, Seed: rc.Seed}
	if sc.Lab != nil {
		sc.Lab(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer c.Close()

	victim := c.VictimFor()
	start := time.Now()
	w := startWorkload(c, rc)
	time.Sleep(rc.Warmup)

	faultAt := time.Now()
	if err := sc.Inject(c, victim, rc.FaultFor); err != nil {
		w.halt()
		return Result{}, fmt.Errorf("inject %s: %w", sc.Name, err)
	}
	time.Sleep(rc.FaultFor)
	healAt := faultAt
	if sc.Heal != nil {
		sc.Heal(c, victim)
		healAt = time.Now()
	}

	var ttr time.Duration
	switch sc.Signal {
	case SignalMesh:
		// Writers stop at the heal: the mesh then drains a bounded
		// backlog, so TTR measures the resync itself rather than a
		// chase against live load (which the race detector's slowdown
		// can turn into a moving target).
		w.halt()
		if err := c.WaitSynced(20 * time.Second); err != nil {
			return Result{}, fmt.Errorf("%s: %w", sc.Name, err)
		}
		ttr = time.Since(healAt)
	default: // SignalClient
		time.Sleep(rc.Settle)
		w.halt()
		if last := w.lastErrNs.Load(); last > healAt.UnixNano() {
			ttr = time.Duration(last - healAt.UnixNano())
		}
	}
	wall := time.Since(start)

	lost, stale := w.verify()
	merged := perf.NewHistogram()
	for _, h := range w.hists {
		merged.Merge(h)
	}
	res := Result{
		Scenario:   sc.Name,
		Seed:       rc.Seed,
		Ops:        w.ops.Load(),
		Errors:     w.errs.Load(),
		QPS:        float64(w.ops.Load()) / wall.Seconds(),
		P50Ns:      merged.Quantile(0.50),
		P99Ns:      merged.Quantile(0.99),
		P999Ns:     merged.Quantile(0.999),
		TTRNs:      int64(ttr),
		Promotions: c.Promotions(),
		Lost:       lost,
		Stale:      stale,
		WallNs:     int64(wall),
	}
	if sc.WantPromotions >= 0 && res.Promotions != sc.WantPromotions {
		return res, fmt.Errorf("%s: %d promotions, want %d", sc.Name, res.Promotions, sc.WantPromotions)
	}
	if lost > 0 || stale > 0 {
		return res, fmt.Errorf("%s: acked-write loss (%d lost, %d stale)", sc.Name, lost, stale)
	}
	return res, nil
}

// Scenarios returns the fault matrix: the five failure modes the
// robustness PRs hardened, each with its recovery definition.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// A primary dies mid-traffic; the detector notices, the
			// standby is promoted, traffic resumes on the new topology.
			// TTR is kill → last client error.
			Name: "kill-recover",
			Lab: func(cfg *Config) {
				cfg.Detector = true
				cfg.WitnessProbe = true
			},
			Inject: func(c *Cluster, victim string, _ time.Duration) error {
				c.Kill(victim)
				return nil
			},
			Signal:         SignalClient,
			WantPromotions: 1,
		},
		{
			// The replication link primary -> standby is fully
			// partitioned. Clients never notice (async replication);
			// recovery is the mesh resyncing after heal.
			Name: "partition-repl",
			Inject: func(c *Cluster, victim string, _ time.Duration) error {
				standby := c.StandbyOf(victim)
				if standby == "" {
					return fmt.Errorf("no standby for %s", victim)
				}
				return c.Dir.SetRule(chaos.Rule{
					Name:      "partition-repl",
					Src:       standby,
					Dst:       c.ReplAddr(victim),
					Partition: true,
				})
			},
			Heal: func(c *Cluster, _ string) {
				c.Dir.RemoveRule("partition-repl")
			},
			Signal:         SignalMesh,
			WantPromotions: 0,
		},
		{
			// The replication link survives but degrades: added latency,
			// jitter, and a bandwidth cap. Lag grows and must drain once
			// the link heals.
			Name: "slow-repl",
			Inject: func(c *Cluster, victim string, _ time.Duration) error {
				standby := c.StandbyOf(victim)
				if standby == "" {
					return fmt.Errorf("no standby for %s", victim)
				}
				return c.Dir.SetRule(chaos.Rule{
					Name:         "slow-repl",
					Src:          standby,
					Dst:          c.ReplAddr(victim),
					Latency:      2 * time.Millisecond,
					Jitter:       time.Millisecond,
					BandwidthBPS: 256 << 10,
				})
			},
			Heal: func(c *Cluster, _ string) {
				c.Dir.RemoveRule("slow-repl")
			},
			Signal:         SignalMesh,
			WantPromotions: 0,
		},
		{
			// A node flaps: short full partitions from clients and the
			// detector, each shorter than DownAfter. The detector's
			// threshold and flap guard must hold promotion back; TTR is
			// the last client error after the final flap window closes.
			Name: "flapping-node",
			Lab: func(cfg *Config) {
				cfg.Detector = true
				cfg.DownAfter = 400 * time.Millisecond
			},
			Inject: func(c *Cluster, victim string, faultFor time.Duration) error {
				return InjectFlap(c, victim, faultFor, 150*time.Millisecond, 300*time.Millisecond)
			},
			Heal: func(c *Cluster, _ string) {
				// The windows are scheduled up front and expire on their
				// own; heal just clears the bookkeeping.
				c.Dir.Clear()
			},
			Signal:         SignalClient,
			WantPromotions: 0,
		},
		{
			// The primary accepts connections but never serves them
			// (accept-then-hang). A bare TCP dial probe stays green — the
			// blind spot PR 9 documented — but the application-level ping
			// times out on the wedged serving path, so the detector now
			// promotes instead of leaving clients to ride OpTimeout until
			// the heal. The witness probe stays armed to prove the ping's
			// verdict dominates it: the victim's replication heartbeats
			// keep vouching right up to the fence.
			Name: "hung-primary",
			Lab: func(cfg *Config) {
				cfg.Detector = true
				cfg.WitnessProbe = true
				cfg.AppProbe = true
			},
			Inject: func(c *Cluster, victim string, _ time.Duration) error {
				return c.Dir.SetRule(chaos.Rule{
					Name: "hung-primary",
					Dst:  victim,
					Hang: true,
				})
			},
			Heal: func(c *Cluster, _ string) {
				c.Dir.RemoveRule("hung-primary")
			},
			Signal:         SignalClient,
			WantPromotions: 1,
		},
	}
}

// InjectFlap schedules a deterministic flap chain against victim:
// full partitions (clients and detector both) of onFor every period,
// covering the faultFor window. All windows are installed up front so
// the whole flap profile derives from the Director's clock and seed.
func InjectFlap(c *Cluster, victim string, faultFor, onFor, period time.Duration) error {
	if onFor <= 0 || period <= onFor {
		return fmt.Errorf("flap: need 0 < onFor < period, got %v/%v", onFor, period)
	}
	n := int(faultFor / period)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		for _, src := range []string{ClientName, DetectorName} {
			if err := c.Dir.SetRule(chaos.Rule{
				Name:      fmt.Sprintf("flap-%s-%d", src, i),
				Src:       src,
				Dst:       victim,
				Partition: true,
				At:        time.Duration(i) * period,
				Duration:  onFor,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
