package client

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"cphash/internal/cluster"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
)

// fakeClock is a settable wall clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// oneNode returns the single member node of a client built over addrs[0].
func oneNode(t *testing.T, c *Client) *node {
	t.Helper()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.nodes) != 1 {
		t.Fatalf("want 1 node, have %d", len(c.nodes))
	}
	for _, n := range c.nodes {
		return n
	}
	return nil
}

// TestBreakerBackoffSchedule pins the shape of the breaker's backoff: the
// window doubles per consecutive trip from DownBackoff to DownBackoffMax,
// every window lands in [d/2, d] (jitter), and a success resets the
// schedule to the start.
func TestBreakerBackoffSchedule(t *testing.T) {
	fc := newFakeClock()
	c, err := New(Config{
		Nodes:          []string{"203.0.113.1:9"}, // never dialed
		DownBackoff:    100 * time.Millisecond,
		DownBackoffMax: 800 * time.Millisecond,
		Clock:          fc.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := oneNode(t, c)

	want := []time.Duration{100, 200, 400, 800, 800, 800} // ms, capped
	for i, base := range want {
		base *= time.Millisecond
		n.tripBreaker()
		window := time.Duration(n.downUntil.Load() - fc.now().UnixNano())
		if window < base/2 || window > base {
			t.Fatalf("trip %d: window %v outside [%v, %v]", i+1, window, base/2, base)
		}
		if got := n.failStreak.Load(); got != int64(i+1) {
			t.Fatalf("trip %d: failStreak = %d", i+1, got)
		}
	}

	// While the window is open, leases fail fast with errDown.
	if _, err := n.lease(); !errors.Is(err, errDown) {
		t.Fatalf("lease during backoff: err = %v, want errDown", err)
	}

	// A success restarts the schedule at the base window.
	n.noteSuccess()
	if got := n.failStreak.Load(); got != 0 {
		t.Fatalf("failStreak after success = %d, want 0", got)
	}
	fc.advance(time.Second)
	n.tripBreaker()
	window := time.Duration(n.downUntil.Load() - fc.now().UnixNano())
	if base := 100 * time.Millisecond; window < base/2 || window > base {
		t.Fatalf("post-reset window %v outside [%v, %v]", window, base/2, base)
	}
}

// TestBreakerTripsOnIOError is the regression test for the half-dead-node
// bug: a server that accepts TCP but fails every operation used to be
// hammered at full rate forever, because only failed *dials* set
// downUntil. Now exhausting the per-operation retries trips the breaker
// too, and the node fails fast until the window expires.
func TestBreakerTripsOnIOError(t *testing.T) {
	// A listener that accepts and immediately closes: dials succeed, every
	// round trip dies with an I/O error.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			cn, err := ln.Accept()
			if err != nil {
				return
			}
			cn.Close()
		}
	}()

	fc := newFakeClock()
	c, err := New(Config{
		Nodes:       []string{ln.Addr().String()},
		MaxRetries:  1,
		DownBackoff: 100 * time.Millisecond,
		Clock:       fc.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := oneNode(t, c)

	if _, _, err := c.Get(1); err == nil {
		t.Fatal("Get against accept-and-close server succeeded")
	}
	if got := n.failStreak.Load(); got != 1 {
		t.Fatalf("failStreak after exhausted retries = %d, want 1", got)
	}
	dials := n.dials.Load()
	if dials == 0 {
		t.Fatal("expected at least one dial before the breaker tripped")
	}

	// Fail fast while the window is open: no new dials, errDown.
	if _, _, err := c.Get(2); !errors.Is(err, errDown) {
		t.Fatalf("Get during backoff: err = %v, want errDown", err)
	}
	if got := n.dials.Load(); got != dials {
		t.Fatalf("breaker open but dials advanced %d → %d", dials, got)
	}

	// After the window the client probes again.
	fc.advance(200 * time.Millisecond)
	c.Get(3)
	if got := n.dials.Load(); got <= dials {
		t.Fatal("no dial after the backoff window expired")
	}
}

// startClusterTables is startCluster exposing each member's table, so
// follower-read tests can stage divergent replica state directly.
func startClusterTables(t *testing.T, n int) ([]string, []*lockhash.Table) {
	t.Helper()
	addrs := make([]string, n)
	tables := make([]*lockhash.Table, n)
	for i := 0; i < n; i++ {
		tables[i] = lockhash.MustNew(lockhash.Config{Partitions: 8, CapacityBytes: 4 << 20, Seed: uint64(i) + 1})
		s, err := kvserver.Serve(kvserver.Config{
			Addr:       "127.0.0.1:0",
			Workers:    2,
			NewBackend: kvserver.NewLockHashBackend(tables[i]),
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = s.Addr()
		t.Cleanup(func() { s.Close() })
	}
	return addrs, tables
}

// TestFollowerReadRouting stages divergent owner/standby state and checks
// the gating matrix: a fresh follower serves the hit, a stale or unknown
// one is skipped, and a follower miss falls back to the primary rather
// than surfacing as a miss.
func TestFollowerReadRouting(t *testing.T) {
	addrs, tables := startClusterTables(t, 3)
	byAddr := make(map[string]*lockhash.Table, len(tables))
	for i, a := range addrs {
		byAddr[a] = tables[i]
	}

	var lagMu sync.Mutex
	lag := time.Duration(0)
	lagOK := true
	c, err := New(Config{
		Nodes:          addrs,
		ReadPreference: ReadFollower,
		MaxStaleness:   100 * time.Millisecond,
		FollowerLag: func(addr string) (time.Duration, bool) {
			lagMu.Lock()
			defer lagMu.Unlock()
			return lag, lagOK
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ring := c.Ring()
	const key = uint64(42)
	slot := cluster.SlotOf(key)
	owner, standby := ring.Owner(slot), ring.Standby(slot)
	if standby == "" || standby == owner {
		t.Fatalf("bad placement: owner=%q standby=%q", owner, standby)
	}
	byAddr[owner].Put(key, []byte("primary-val"))
	byAddr[standby].Put(key, []byte("follower-val"))

	get := func(want string) {
		t.Helper()
		v, found, err := c.Get(key)
		if err != nil || !found {
			t.Fatalf("Get = %q found=%v err=%v", v, found, err)
		}
		if string(v) != want {
			t.Fatalf("Get = %q, want %q", v, want)
		}
	}

	get("follower-val") // fresh follower serves the read

	lagMu.Lock()
	lag = 200 * time.Millisecond // beyond MaxStaleness
	lagMu.Unlock()
	get("primary-val")

	lagMu.Lock()
	lag, lagOK = 0, false // lag unknown
	lagMu.Unlock()
	get("primary-val")

	lagMu.Lock()
	lagOK = true
	lagMu.Unlock()
	byAddr[standby].Delete(key)
	get("primary-val") // follower miss falls back to the primary

	// A key absent everywhere is still a miss, not an error.
	if _, found, err := c.Get(key + 1); err != nil || found {
		t.Fatalf("absent key: found=%v err=%v", found, err)
	}
}

// TestFollowerReadFallThrough stages divergent state on all three ranks
// of a slot and checks the depth-3 routing: reads land on the rank-1
// standby while it is fresh, fall through to the rank-2 replica when
// rank 1 is stale or unknown, and reach the primary only when every
// replica is out of bounds.
func TestFollowerReadFallThrough(t *testing.T) {
	addrs, tables := startClusterTables(t, 3)
	byAddr := make(map[string]*lockhash.Table, len(tables))
	for i, a := range addrs {
		byAddr[a] = tables[i]
	}

	var lagMu sync.Mutex
	lag := map[string]time.Duration{}
	unknown := map[string]bool{}
	c, err := New(Config{
		Nodes:          addrs,
		ReadPreference: ReadFollower,
		ReplicaDepth:   3,
		MaxStaleness:   100 * time.Millisecond,
		FollowerLag: func(addr string) (time.Duration, bool) {
			lagMu.Lock()
			defer lagMu.Unlock()
			return lag[addr], !unknown[addr]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ring := c.Ring()
	const key = uint64(42)
	slot := cluster.SlotOf(key)
	owner := ring.Owner(slot)
	r1, r2 := ring.RankedOwner(slot, 1), ring.RankedOwner(slot, 2)
	if r1 == "" || r2 == "" || r1 == r2 || r1 == owner || r2 == owner {
		t.Fatalf("bad placement: owner=%q r1=%q r2=%q", owner, r1, r2)
	}
	byAddr[owner].Put(key, []byte("primary-val"))
	byAddr[r1].Put(key, []byte("rank1-val"))
	byAddr[r2].Put(key, []byte("rank2-val"))

	get := func(want string) {
		t.Helper()
		v, found, err := c.Get(key)
		if err != nil || !found {
			t.Fatalf("Get = %q found=%v err=%v", v, found, err)
		}
		if string(v) != want {
			t.Fatalf("Get = %q, want %q", v, want)
		}
	}

	get("rank1-val") // nearest fresh replica serves

	lagMu.Lock()
	lag[r1] = 200 * time.Millisecond // rank 1 beyond MaxStaleness
	lagMu.Unlock()
	get("rank2-val") // falls through, not back to the primary

	lagMu.Lock()
	lag[r2] = 300 * time.Millisecond // both stale
	lagMu.Unlock()
	fallbacks := c.stalenessFallbacks.Load()
	get("primary-val")
	if got := c.stalenessFallbacks.Load(); got != fallbacks+1 {
		t.Fatalf("stalenessFallbacks %d → %d, want one fallback", fallbacks, got)
	}

	lagMu.Lock()
	delete(lag, r2)
	unknown[r1] = true // rank 1 lag unknown, rank 2 fresh again
	lagMu.Unlock()
	get("rank2-val")

	// Depth 2 never consults rank 2: with rank 1 unknown it goes primary.
	c2, err := New(Config{
		Nodes:          addrs,
		ReadPreference: ReadFollower,
		MaxStaleness:   100 * time.Millisecond,
		FollowerLag: func(addr string) (time.Duration, bool) {
			lagMu.Lock()
			defer lagMu.Unlock()
			return lag[addr], !unknown[addr]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	v, found, err := c2.Get(key)
	if err != nil || !found || string(v) != "primary-val" {
		t.Fatalf("depth-2 Get = %q found=%v err=%v, want primary-val", v, found, err)
	}
}
