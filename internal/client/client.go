// Package client is the sharded client SDK for CPHash key/value cache
// clusters: it routes every key through the internal/cluster continuum to
// its owning server instance, multiplexes traffic over per-node connection
// pools, and speaks protocol version 2 (LOOKUP/INSERT plus DELETE, TTL
// inserts and string keys).
//
// Two surfaces are offered. The synchronous methods — Get, Set, SetTTL,
// Delete and their string-key variants — lease a pooled connection, do one
// round trip, and return; they are safe for concurrent use and concurrency
// scales with Config.ConnsPerNode. The Pipeline type is the paper's
// batching applied client-side: it leases one connection per node, writes
// windows of requests without waiting, and matches responses back in issue
// order on Wait — the access pattern that lets CPSERVER batch requests
// through its message rings (§4.1, Figures 13/14).
//
// Failure handling is per node, so one dead instance degrades only its own
// shards. Transport errors are retried on a fresh connection up to
// Config.MaxRetries times (every protocol operation is idempotent cache
// traffic, so blind retry is safe); a node whose dial fails — or that
// keeps failing mid-operation after the retries are spent — is marked
// down and requests routed to it fail fast with a *NodeError until the
// backoff expires, while requests routed to the other members proceed
// untouched. The backoff doubles with each consecutive breaker trip, from
// Config.DownBackoff up to Config.DownBackoffMax, jittered into [d/2, d]
// so a fleet of clients does not reconnect in lockstep; the first
// successful operation resets the streak.
//
// When the cluster runs with replication (internal/replica), reads can
// opt into the slot's follower via Config.ReadPreference: a GET is
// served by the standby member when its replication lag (reported by the
// Config.FollowerLag hook) is within Config.MaxStaleness, and falls back
// to the primary on a follower miss or error, so follower reads trade
// bounded staleness for load spreading without ever inventing a miss.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/cluster"
	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/protocol"
)

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("client: closed")

// errDown marks fail-fast refusals while a node is in dial backoff.
var errDown = errors.New("node unavailable (connection failed or in dial backoff)")

// NodeError attributes a transport failure to one cluster member, so
// callers can tell which shards degraded. Use errors.As to recover the
// address and errors.Is(err, ...) to inspect the cause.
type NodeError struct {
	Addr string
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("client: node %s: %v", e.Addr, e.Err) }
func (e *NodeError) Unwrap() error { return e.Err }

// Config parameterizes New.
type Config struct {
	// Nodes are the cluster member addresses ("host:port"). Keys are
	// spread over them by the cluster continuum.
	Nodes []string
	// ConnsPerNode bounds the connection pool per member (default 2).
	// Synchronous calls block while all connections to a node are leased,
	// and every live Pipeline holds one connection per node it touches —
	// size the pool to at least the number of concurrent Pipelines.
	ConnsPerNode int
	// Window bounds response-bearing requests in flight per Pipeline; a
	// Pipeline that exceeds it settles implicitly (default 256).
	Window int
	// MaxRetries is how many times a failed synchronous operation is
	// retried on a fresh connection (default 2; negative disables).
	// Pipelines never retry — a window's responses are unrecoverable
	// once its connection dies — they surface the error on every
	// affected future and lease a fresh connection next window.
	MaxRetries int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds each request write and each response read once a
	// connection is established (0 = unbounded, the default). With it
	// set, a server that accepts but never responds — a hung worker, an
	// accept-then-hang fault — fails the operation within OpTimeout
	// instead of hanging forever; the failure counts toward MaxRetries
	// and the breaker like any transport error, and the connection is
	// closed rather than returned to the pool.
	OpTimeout time.Duration
	// Dial overrides connection establishment (nil = net.DialTimeout).
	// Fault-injection harnesses route the pools through
	// chaos.Director.Dialer; whatever it returns must honor deadlines,
	// because OpTimeout is expressed through them.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// DownBackoff is the base down window after a breaker trip (a failed
	// dial, or an operation that exhausted its retries), during which the
	// node's requests fail fast (default 500ms). Consecutive trips double
	// the window up to DownBackoffMax, and each window is jittered
	// uniformly into [d/2, d].
	DownBackoff time.Duration
	// DownBackoffMax caps the exponential breaker backoff (default 10s).
	DownBackoffMax time.Duration
	// ReadPreference selects where GETs are served (writes and deletes
	// always go to the primary). The default, ReadPrimary, reads only the
	// slot's owner; ReadFollower tries the slot's replicas — ranks
	// 1..ReplicaDepth-1 of the rendezvous continuum, nearest first — and
	// falls back to the primary on a miss or error.
	ReadPreference ReadPreference
	// ReplicaDepth is the cluster's replication depth (the cpserver
	// -replicas value): each slot has copies on continuum ranks
	// 0..ReplicaDepth-1, so follower reads may fall through ranks
	// 1..ReplicaDepth-1 when earlier ranks are retired, tripped, or
	// stale (default 2 — primary plus one standby).
	ReplicaDepth int
	// MaxStaleness bounds follower reads: a follower whose replication
	// lag (per FollowerLag) exceeds it is skipped in favor of the primary
	// (default 500ms). Only consulted when ReadPreference is ReadFollower
	// and FollowerLag is set.
	MaxStaleness time.Duration
	// FollowerLag reports the current replication lag of the follower
	// serving reads at addr, and false when unknown (not syncing, or not
	// tracked). Nil permits follower reads unconditionally — the caller
	// opted into ReadFollower without a staleness certificate. The hook
	// is called outside client locks on every follower-routed read, so it
	// must be cheap and safe for concurrent use.
	FollowerLag func(addr string) (lag time.Duration, ok bool)
	// Clock overrides the wall clock for breaker bookkeeping (tests).
	Clock func() time.Time
}

// ReadPreference selects the read path; see Config.ReadPreference.
type ReadPreference int

const (
	// ReadPrimary serves every read from the slot's owner (the default).
	ReadPrimary ReadPreference = iota
	// ReadFollower serves reads from the slot's standby replica when its
	// staleness is within bounds, falling back to the primary on a miss.
	ReadFollower
)

func (cfg *Config) applyDefaults() {
	if cfg.ConnsPerNode <= 0 {
		cfg.ConnsPerNode = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.DownBackoff <= 0 {
		cfg.DownBackoff = 500 * time.Millisecond
	}
	if cfg.DownBackoffMax <= 0 {
		cfg.DownBackoffMax = 10 * time.Second
	}
	if cfg.DownBackoffMax < cfg.DownBackoff {
		cfg.DownBackoffMax = cfg.DownBackoff
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = 500 * time.Millisecond
	}
	if cfg.ReplicaDepth <= 0 {
		cfg.ReplicaDepth = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
}

// Stats counts one node's activity as seen by this client.
type Stats struct {
	Ops     int64 // operations issued (requests written)
	Errors  int64 // transport failures (including failed dials)
	Retries int64 // operations retried on a fresh connection
	Dials   int64 // connection attempts
}

// Client is a sharded cache client. It is safe for concurrent use.
type Client struct {
	cfg    Config
	closed atomic.Bool

	// mu guards the routing state below. Reads take the shared lock on
	// every operation (cheap: no contention until a topology change);
	// AddNode/RemoveNode/MarkMigrated take it exclusively.
	mu    sync.RWMutex
	ring  *cluster.Ring
	nodes map[string]*node // every routable member, plus draining ex-members
	// fallback[s] is the previous owner of slot s while s is being
	// migrated ("" = settled): reads that miss on the new owner retry
	// there, and deletes apply to both, so in-flight traffic sees no
	// misses during the dual-read window.
	fallback     [cluster.Slots]string
	pendingSlots int // fallback entries currently set

	// observability: follower-read routing outcomes and the distribution
	// of pipeline window sizes at settle time (see Collect).
	followerReads      atomic.Int64
	followerHits       atomic.Int64
	stalenessFallbacks atomic.Int64
	pipelineDepth      obs.Hist
}

// New builds a client over the given cluster members and verifies nothing;
// connections are dialed lazily on first use, so New succeeds even while
// servers are still starting.
func New(cfg Config) (*Client, error) {
	ring, err := cluster.New(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	c := &Client{cfg: cfg, ring: ring, nodes: make(map[string]*node, len(cfg.Nodes))}
	for _, addr := range ring.Nodes() {
		c.nodes[addr] = c.newNode(addr)
	}
	return c, nil
}

func (c *Client) newNode(addr string) *node {
	n := &node{addr: addr, cfg: &c.cfg, closed: &c.closed}
	n.tokens = make(chan struct{}, c.cfg.ConnsPerNode)
	for i := 0; i < c.cfg.ConnsPerNode; i++ {
		n.tokens <- struct{}{}
	}
	return n
}

// Ring returns a snapshot of the routing continuum. Membership can change
// (AddNode/RemoveNode), so the snapshot is a copy — stable for the caller,
// stale after the next topology change.
func (c *Client) Ring() *cluster.Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Clone()
}

// NodeStats snapshots per-node counters, keyed by member address.
func (c *Client) NodeStats() map[string]Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]Stats, len(c.nodes))
	for addr, n := range c.nodes {
		out[addr] = Stats{
			Ops:     n.ops.Load(),
			Errors:  n.errs.Load(),
			Retries: n.retries.Load(),
			Dials:   n.dials.Load(),
		}
	}
	return out
}

// Collect emits the client's per-node breaker/transport counters and the
// follower-read routing outcomes into an exposition buffer. The node
// label distinguishes members; a breaker gauge of 1 means the node is
// currently refusing leases (in backoff).
func (c *Client) Collect(e *obs.Expo, labels string) {
	c.mu.RLock()
	nodes := make(map[string]*node, len(c.nodes))
	for addr, n := range c.nodes {
		nodes[addr] = n
	}
	pending := c.pendingSlots
	c.mu.RUnlock()
	now := c.cfg.Clock().UnixNano()
	for addr, n := range nodes {
		nl := obs.WithLabel(labels, "node", addr)
		e.Counter("cphash_client_ops_total", "Operations issued to the node.", nl, n.ops.Load())
		e.Counter("cphash_client_errors_total", "Transport failures against the node.", nl, n.errs.Load())
		e.Counter("cphash_client_retries_total", "Operations retried on a fresh connection.", nl, n.retries.Load())
		e.Counter("cphash_client_dials_total", "Connection attempts to the node.", nl, n.dials.Load())
		e.Counter("cphash_client_breaker_trips_total", "Circuit-breaker trips for the node.", nl, n.trips.Load())
		var open float64
		if n.downUntil.Load() > now {
			open = 1
		}
		e.Gauge("cphash_client_breaker_open", "Whether the node's breaker is open (1 = failing fast).", nl, open)
		e.Gauge("cphash_client_leased_connections", "Pooled connections currently leased.", nl, float64(cap(n.tokens)-len(n.tokens)))
	}
	e.Counter("cphash_client_follower_reads_total", "Reads routed to a slot's follower replica.", labels, c.followerReads.Load())
	e.Counter("cphash_client_follower_hits_total", "Follower-routed reads answered by the follower.", labels, c.followerHits.Load())
	e.Counter("cphash_client_staleness_fallbacks_total", "Follower reads skipped for the primary (stale, down, or unknown lag).", labels, c.stalenessFallbacks.Load())
	e.Gauge("cphash_client_migrating_slots", "Slots currently in a dual-read migration window.", labels, float64(pending))
	e.Histogram("cphash_client_pipeline_depth", "Pipeline window size at settle time.", labels, c.pipelineDepth.Snapshot())
}

// Close shuts the client down. Idle connections close immediately; leased
// ones close as their holders release them. Close is idempotent.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, cn := range n.idle {
			cn.nc.Close()
		}
		n.idle = nil
		n.mu.Unlock()
	}
	return nil
}

// route resolves a continuum slot to its owning member and, during a
// migration of that slot, the previous owner to fall back to.
func (c *Client) route(slot int) (primary, fb *node) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	primary = c.nodes[c.ring.Owner(slot)]
	if a := c.fallback[slot]; a != "" {
		fb = c.nodes[a]
	}
	return primary, fb
}

// followerFor resolves the node serving follower reads for slot, or nil
// when reads should go straight to the primary: read preference is
// primary, or no replica rank 1..ReplicaDepth-1 is viable (the ring has
// too few members, or every candidate is retired, in breaker backoff,
// or replicating with unknown lag or lag beyond MaxStaleness). Ranks
// are tried nearest first, so reads land on the rank-1 standby when it
// is healthy and fall through to deeper replicas — which also hold the
// slot — when it is not. The FollowerLag hook runs outside client locks
// so it may call back into the client (e.g. to refresh its lag map).
func (c *Client) followerFor(slot int) *node {
	if c.cfg.ReadPreference != ReadFollower {
		return nil
	}
	candidates := 0
	for rank := 1; rank < c.cfg.ReplicaDepth; rank++ {
		c.mu.RLock()
		addr := c.ring.RankedOwner(slot, rank)
		var n *node
		if addr != "" {
			n = c.nodes[addr]
		}
		c.mu.RUnlock()
		if n == nil {
			break // ranks beyond the membership are empty too
		}
		candidates++
		if n.retired.Load() {
			continue
		}
		if until := n.downUntil.Load(); until > n.now().UnixNano() {
			continue // breaker open: don't burn the fallback on a known-down follower
		}
		if c.cfg.FollowerLag != nil {
			if lag, ok := c.cfg.FollowerLag(addr); !ok || lag > c.cfg.MaxStaleness {
				continue
			}
		}
		return n
	}
	if candidates > 0 {
		c.stalenessFallbacks.Add(1) // replicas exist, none viable: primary serves
	}
	return nil
}

// nodeFor routes a fixed key (clipped to the 60-bit key space, like
// kvserver.MaskKey) to its member.
func (c *Client) nodeFor(key uint64) *node {
	n, _ := c.route(cluster.SlotOf(maskKey(key)))
	return n
}

func (c *Client) nodeForString(key []byte) *node {
	n, _ := c.route(cluster.SlotOfString(key))
	return n
}

// nodeByAddr resolves a member (or draining ex-member) by address.
func (c *Client) nodeByAddr(addr string) (*node, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("client: unknown node %q", addr)
	}
	return n, nil
}

// --- synchronous operations ---

// Get fetches the value under a fixed 60-bit key. found is false on a
// miss; the returned slice is owned by the caller. While the key's slot is
// mid-migration, a miss (or error) on the new owner falls back to the old
// owner, so in-flight traffic sees no migration-induced misses.
func (c *Client) Get(key uint64) (value []byte, found bool, err error) {
	return c.GetInto(key, nil)
}

// GetInto is Get appending the value to dst instead of allocating: a
// caller that recycles dst across calls reads hits without any per-hit
// copy allocation. On a miss or error dst is returned unchanged.
func (c *Client) GetInto(key uint64, dst []byte) (value []byte, found bool, err error) {
	return c.dualLookup(cluster.SlotOf(maskKey(key)),
		protocol.Request{Op: protocol.OpLookup, Key: maskKey(key)}, dst)
}

// GetString fetches the value under a string key (§8.2 routing: the server
// detects 60-bit hash collisions and reports them as misses), with the
// same dual-read fallback as Get during a migration window.
func (c *Client) GetString(key []byte) (value []byte, found bool, err error) {
	return c.GetStringInto(key, nil)
}

// GetStringInto is GetString appending the value to dst, like GetInto.
func (c *Client) GetStringInto(key, dst []byte) (value []byte, found bool, err error) {
	return c.dualLookup(cluster.SlotOfString(key),
		protocol.Request{Op: protocol.OpGetStr, StrKey: key}, dst)
}

// dualLookup is the migration-aware read path. The subtle case is a read
// that straddles the end of a migration: it misses on the new owner
// (entry not yet replayed), and by the time its fallback reaches the old
// owner the migrator has already replayed everything, closed the window
// and PURGEd the source — a double miss for a key that was never absent.
// A double miss (or fallback failure) therefore re-checks the route: if
// the window closed or moved mid-flight, retry on the settled route, where
// the replay is guaranteed complete. Bounded retries keep pathological
// topology churn from looping.
func (c *Client) dualLookup(slot int, req protocol.Request, dst []byte) (value []byte, found bool, err error) {
	// Follower read: a hit on the standby replica within the staleness
	// bound is the answer; a miss or error falls through to the primary
	// path, so replication lag can delay a read but never fake a miss.
	if fn := c.followerFor(slot); fn != nil {
		c.followerReads.Add(1)
		if v, f, ferr := c.lookupAt(fn, req, dst); ferr == nil && f {
			c.followerHits.Add(1)
			return v, f, nil
		}
	}
	for attempt := 0; ; attempt++ {
		primary, fb := c.route(slot)
		value, found, err = c.lookupAt(primary, req, dst)
		if found || fb == nil {
			return value, found, err
		}
		// A miss leaves dst unextended, so the fallback reuses it.
		if v2, f2, err2 := c.lookupAt(fb, req, dst); err2 == nil && (f2 || err != nil) {
			return v2, f2, nil
		}
		if attempt < 2 {
			if p2, f2 := c.route(slot); p2 != primary || f2 != fb {
				continue // routing changed mid-read: retry on the settled route
			}
		}
		return value, found, err
	}
}

// lookupAt does one synchronous lookup against a specific member,
// appending a hit's value to dst.
func (c *Client) lookupAt(n *node, req protocol.Request, dst []byte) (value []byte, found bool, err error) {
	value = dst
	err = c.withConn(n, func(cn *conn) error {
		return cn.roundTripLookup(req, dst, &value, &found)
	})
	return value, found, err
}

// Set stores a value under a fixed key with no expiry. The wire INSERT is
// silent (as in the paper), so only transport errors are reported.
func (c *Client) Set(key uint64, value []byte) error {
	return c.SetTTL(key, value, 0)
}

// SetTTL stores a value that expires after ttl (0 = never).
func (c *Client) SetTTL(key uint64, value []byte, ttl time.Duration) error {
	req := insertRequest(maskKey(key), value, ttl)
	return c.withConn(c.nodeFor(key), func(cn *conn) error {
		return cn.send(req)
	})
}

// Delete removes a fixed key, reporting whether it existed. While the
// key's slot is mid-migration the delete applies to both the new and the
// old owner, so the dual-read window cannot resurrect a deleted key.
func (c *Client) Delete(key uint64) (found bool, err error) {
	primary, fb := c.route(cluster.SlotOf(maskKey(key)))
	return c.deleteAt(primary, fb, protocol.Request{Op: protocol.OpDelete, Key: maskKey(key)})
}

// deleteAt deletes on the primary and, during a migration window, the old
// owner too; found is the OR of the successful responses.
func (c *Client) deleteAt(primary, fb *node, req protocol.Request) (found bool, err error) {
	err = c.withConn(primary, func(cn *conn) error {
		return cn.roundTripDelete(req, &found)
	})
	if fb != nil {
		var fbFound bool
		fbErr := c.withConn(fb, func(cn *conn) error {
			return cn.roundTripDelete(req, &fbFound)
		})
		if fbErr == nil {
			found = found || fbFound
			if err != nil {
				// The new owner failed but the old one answered: the key
				// is gone everywhere a dual read would look.
				return found, nil
			}
		} else if err == nil {
			return found, fbErr
		}
	}
	return found, err
}

// SetString stores a value under a string key with no expiry.
func (c *Client) SetString(key, value []byte) error {
	return c.SetStringTTL(key, value, 0)
}

// SetStringTTL stores a value under a string key that expires after ttl.
func (c *Client) SetStringTTL(key, value []byte, ttl time.Duration) error {
	req := protocol.Request{Op: protocol.OpSetStr, StrKey: key, TTL: wireTTL(ttl), Value: value}
	return c.withConn(c.nodeForString(key), func(cn *conn) error {
		return cn.send(req)
	})
}

// DeleteString removes a string key, reporting whether it existed, with
// the same dual-delete as Delete during a migration window.
func (c *Client) DeleteString(key []byte) (found bool, err error) {
	primary, fb := c.route(cluster.SlotOfString(key))
	return c.deleteAt(primary, fb, protocol.Request{Op: protocol.OpDelStr, StrKey: key})
}

// withConn runs one operation against a node, retrying transport failures
// on a fresh connection up to MaxRetries times. Dial failures are not
// retried — the node just entered backoff, and hammering it would defeat
// the fail-fast isolation. Exhausting the retries trips the breaker the
// same way a failed dial does: a node that eats every attempt on leased
// connections is just as down as one that refuses the dial, and before
// this tripped only the dial path, a half-dead node (accepting TCP,
// failing mid-operation) was hammered at full rate forever.
func (c *Client) withConn(n *node, fn func(*conn) error) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			n.retries.Add(1)
		}
		cn, err := n.lease()
		if err != nil {
			return err
		}
		n.ops.Add(1)
		err = fn(cn)
		if err == nil {
			n.release(cn)
			n.noteSuccess()
			return nil
		}
		cn.dead = true
		n.release(cn)
		n.errs.Add(1)
		lastErr = err
	}
	n.tripBreaker()
	return &NodeError{Addr: n.addr, Err: lastErr}
}

// maskKey clips a key into the 60-bit key space the protocol requires.
func maskKey(k uint64) uint64 { return k & uint64(partition.MaxKey) }

// wireTTL converts a duration into the protocol's millisecond field,
// rounding sub-millisecond TTLs up so "expires soon" never becomes
// "never expires".
func wireTTL(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	ms := (ttl + time.Millisecond - 1) / time.Millisecond
	if ms > time.Duration(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(ms)
}

// insertRequest builds the INSERT/INSERT_TTL frame for a fixed key; plain
// INSERT keeps version-1 servers compatible when no TTL is asked for.
func insertRequest(key uint64, value []byte, ttl time.Duration) protocol.Request {
	if ttl <= 0 {
		return protocol.Request{Op: protocol.OpInsert, Key: key, Value: value}
	}
	return protocol.Request{Op: protocol.OpInsertTTL, Key: key, TTL: wireTTL(ttl), Value: value}
}

// --- node: pool + health ---

type node struct {
	addr string
	cfg  *Config
	// tokens is the capacity semaphore: ConnsPerNode leases outstanding
	// at most. idle holds parked connections, most recently used last —
	// LIFO reuse gives a sequential caller the SAME connection back, and
	// per-connection request order is the only ordering the servers
	// guarantee (a silent SET followed by a GET on a different connection
	// may be batched by different workers).
	tokens    chan struct{}
	mu        sync.Mutex
	idle      []*conn
	downUntil atomic.Int64 // unix nanos until which leases are refused
	// failStreak counts consecutive breaker trips (failed dials or
	// retry-exhausted operations) since the last success; it drives the
	// exponential backoff and resets to zero on the first success.
	failStreak atomic.Int64
	closed     *atomic.Bool // the owning client's closed flag
	// retired marks a departed member whose migration has completed: new
	// leases fail fast and connections close as they are released.
	retired atomic.Bool

	ops, errs, retries, dials, trips atomic.Int64
}

func (n *node) now() time.Time { return n.cfg.Clock() }

// tripBreaker marks the node down after a failed dial or a retry-exhausted
// operation. The window doubles with each consecutive trip, from
// DownBackoff up to DownBackoffMax, and is jittered uniformly into
// [d/2, d] so recovering clients spread their reconnects.
func (n *node) tripBreaker() {
	n.trips.Add(1)
	streak := n.failStreak.Add(1)
	d := n.cfg.DownBackoff
	for i := int64(1); i < streak && d < n.cfg.DownBackoffMax; i++ {
		d *= 2
	}
	if d > n.cfg.DownBackoffMax {
		d = n.cfg.DownBackoffMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	n.downUntil.Store(n.now().Add(d).UnixNano())
}

// noteSuccess resets the breaker after a completed operation, so the
// next failure starts the backoff schedule over at DownBackoff.
func (n *node) noteSuccess() {
	if n.failStreak.Load() != 0 {
		n.failStreak.Store(0)
	}
}

// lease takes a pooled connection, dialing when none is parked. It blocks
// while all ConnsPerNode connections are leased, and fails fast while the
// node is in dial backoff.
func (n *node) lease() (*conn, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if n.retired.Load() {
		n.errs.Add(1)
		return nil, &NodeError{Addr: n.addr, Err: errDown}
	}
	if until := n.downUntil.Load(); until > n.now().UnixNano() {
		n.errs.Add(1)
		return nil, &NodeError{Addr: n.addr, Err: errDown}
	}
	<-n.tokens
	if n.closed.Load() {
		n.tokens <- struct{}{}
		return nil, ErrClosed
	}
	n.mu.Lock()
	if k := len(n.idle); k > 0 {
		cn := n.idle[k-1]
		n.idle = n.idle[:k-1]
		n.mu.Unlock()
		return cn, nil
	}
	n.mu.Unlock()
	n.dials.Add(1)
	var nc net.Conn
	var err error
	if n.cfg.Dial != nil {
		nc, err = n.cfg.Dial("tcp", n.addr, n.cfg.DialTimeout)
	} else {
		nc, err = net.DialTimeout("tcp", n.addr, n.cfg.DialTimeout)
	}
	if err != nil {
		n.tokens <- struct{}{}
		n.tripBreaker()
		n.errs.Add(1)
		return nil, &NodeError{Addr: n.addr, Err: err}
	}
	if tcp, ok := nc.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}
	return &conn{
		nc:        nc,
		w:         bufio.NewWriterSize(nc, 64<<10),
		r:         bufio.NewReaderSize(nc, 64<<10),
		opTimeout: n.cfg.OpTimeout,
	}, nil
}

// release returns a leased connection, parking live ones for reuse and
// closing dead ones (their capacity token frees regardless).
func (n *node) release(cn *conn) {
	if cn != nil {
		if cn.dead || n.closed.Load() || n.retired.Load() {
			cn.nc.Close()
		} else {
			n.mu.Lock()
			n.idle = append(n.idle, cn)
			n.mu.Unlock()
		}
	}
	n.tokens <- struct{}{}
}

// conn is one pooled connection. A conn is used by one goroutine at a time
// (the pool enforces exclusivity), which is what makes in-order response
// matching trivial: responses arrive in request order per connection.
type conn struct {
	nc        net.Conn
	w         *bufio.Writer
	r         *bufio.Reader
	dead      bool
	opTimeout time.Duration
}

// armWrite starts the per-op write deadline (no-op without OpTimeout).
// Every path that can push bytes to the socket — including bufio's
// implicit flush when the window overfills the buffer — re-arms first,
// so a deadline from a long-finished op can never fail a later one.
func (cn *conn) armWrite() {
	if cn.opTimeout > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(cn.opTimeout))
	}
}

// armRead starts the per-op read deadline (no-op without OpTimeout).
// Armed per response, so a pipelined window gets OpTimeout per reply
// rather than for the whole drain.
func (cn *conn) armRead() {
	if cn.opTimeout > 0 {
		cn.nc.SetReadDeadline(time.Now().Add(cn.opTimeout))
	}
}

// send writes and flushes one silent request (INSERT-class).
func (cn *conn) send(req protocol.Request) error {
	cn.armWrite()
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		return err
	}
	return cn.w.Flush()
}

// roundTripLookup does a synchronous LOOKUP/GET_STR exchange, appending a
// hit's value to dst.
func (cn *conn) roundTripLookup(req protocol.Request, dst []byte, value *[]byte, found *bool) error {
	cn.armWrite()
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		return err
	}
	if err := cn.w.Flush(); err != nil {
		return err
	}
	cn.armRead()
	v, ok, err := protocol.ReadLookupResponse(cn.r, dst)
	if err != nil {
		return err
	}
	*value, *found = v, ok
	return nil
}

// roundTripDelete does a synchronous DELETE/DEL_STR exchange.
func (cn *conn) roundTripDelete(req protocol.Request, found *bool) error {
	cn.armWrite()
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		return err
	}
	if err := cn.w.Flush(); err != nil {
		return err
	}
	cn.armRead()
	ok, err := protocol.ReadDeleteResponse(cn.r)
	if err != nil {
		return err
	}
	*found = ok
	return nil
}

// roundTripScan does one synchronous SCAN exchange, appending entries to
// dst.
func (cn *conn) roundTripScan(req protocol.Request, dst []protocol.ScanEntry) (next uint64, out []protocol.ScanEntry, err error) {
	cn.armWrite()
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		return 0, dst, err
	}
	if err := cn.w.Flush(); err != nil {
		return 0, dst, err
	}
	cn.armRead()
	return protocol.ReadScanResponse(cn.r, dst)
}

// roundTripPurge does one synchronous PURGE exchange.
func (cn *conn) roundTripPurge(req protocol.Request) (next uint64, removed uint32, err error) {
	cn.armWrite()
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		return 0, 0, err
	}
	if err := cn.w.Flush(); err != nil {
		return 0, 0, err
	}
	cn.armRead()
	return protocol.ReadPurgeResponse(cn.r)
}
