package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
)

// startCluster brings up n independent LOCKSERVER instances and returns
// their addresses plus the servers (so tests can kill individual nodes).
func startCluster(t *testing.T, n int) ([]string, []*kvserver.Server) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*kvserver.Server, n)
	for i := 0; i < n; i++ {
		table := lockhash.MustNew(lockhash.Config{Partitions: 16, CapacityBytes: 4 << 20, Seed: uint64(i) + 1})
		s, err := kvserver.Serve(kvserver.Config{
			Addr:       "127.0.0.1:0",
			Workers:    2,
			NewBackend: kvserver.NewLockHashBackend(table),
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		addrs[i] = s.Addr()
		t.Cleanup(func() { s.Close() })
	}
	return addrs, servers
}

func newClient(t *testing.T, addrs []string) *Client {
	t.Helper()
	c, err := New(Config{Nodes: addrs, DownBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty node list")
	}
	if _, err := New(Config{Nodes: []string{"a:1", "a:1"}}); err == nil {
		t.Error("New accepted duplicate nodes")
	}
}

func TestSyncOpsAcrossCluster(t *testing.T) {
	addrs, _ := startCluster(t, 3)
	c := newClient(t, addrs)

	const keys = 200
	for k := uint64(0); k < keys; k++ {
		if err := c.Set(k, []byte(fmt.Sprintf("value-%d", k))); err != nil {
			t.Fatalf("Set(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < keys; k++ {
		v, found, err := c.Get(k)
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		if !found || string(v) != fmt.Sprintf("value-%d", k) {
			t.Fatalf("Get(%d) = %q found=%v", k, v, found)
		}
	}
	// The keys must actually spread over all three nodes.
	dist := map[string]int{}
	for k := uint64(0); k < keys; k++ {
		dist[c.Ring().NodeOf(k)]++
	}
	for _, addr := range addrs {
		if dist[addr] == 0 {
			t.Errorf("node %s received no keys out of %d", addr, keys)
		}
	}

	if found, err := c.Delete(7); err != nil || !found {
		t.Fatalf("Delete(7) = %v, %v; want found", found, err)
	}
	if _, found, err := c.Get(7); err != nil || found {
		t.Fatalf("Get(7) after delete: found=%v err=%v", found, err)
	}
	if found, err := c.Delete(7); err != nil || found {
		t.Fatalf("second Delete(7) = %v, %v; want not-found", found, err)
	}

	stats := c.NodeStats()
	var totalOps int64
	for _, s := range stats {
		totalOps += s.Ops
		if s.Errors != 0 {
			t.Errorf("unexpected errors in healthy run: %+v", s)
		}
	}
	if totalOps < keys*2 {
		t.Errorf("NodeStats counted %d ops, want >= %d", totalOps, keys*2)
	}
}

func TestStringKeysAndTTL(t *testing.T) {
	addrs, _ := startCluster(t, 3)
	c := newClient(t, addrs)

	key := []byte("session:abc123")
	if err := c.SetString(key, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.GetString(key)
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("GetString = %q, %v, %v", v, found, err)
	}
	if found, err := c.DeleteString(key); err != nil || !found {
		t.Fatalf("DeleteString = %v, %v", found, err)
	}
	if _, found, _ := c.GetString(key); found {
		t.Fatal("string key survived delete")
	}

	// TTL: entry visible before expiry, gone after.
	if err := c.SetStringTTL([]byte("ttl-key"), []byte("x"), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.GetString([]byte("ttl-key")); !found {
		t.Fatal("TTL entry missing before expiry")
	}
	time.Sleep(60 * time.Millisecond)
	if _, found, _ := c.GetString([]byte("ttl-key")); found {
		t.Fatal("TTL entry visible after expiry")
	}
	if err := c.SetTTL(99, []byte("y"), 25*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, found, _ := c.Get(99); found {
		t.Fatal("fixed-key TTL entry visible after expiry")
	}
}

func TestPipelineWindowing(t *testing.T) {
	addrs, _ := startCluster(t, 3)
	c, err := New(Config{Nodes: addrs, Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	defer p.Close()

	const keys = 500 // > Window: exercises implicit pacing
	for k := uint64(0); k < keys; k++ {
		if err := p.Set(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("Set(%d): %v", k, err)
		}
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}

	looks := make([]*Lookup, keys)
	for k := uint64(0); k < keys; k++ {
		looks[k] = p.Get(k)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	for k, l := range looks {
		if l.Err() != nil {
			t.Fatalf("lookup %d: %v", k, l.Err())
		}
		if !l.Found() || string(l.Value()) != fmt.Sprintf("v%d", k) {
			t.Fatalf("lookup %d = %q found=%v", k, l.Value(), l.Found())
		}
	}

	// Mixed window: deletes and string ops ride the same session.
	d := p.Delete(3)
	sl := p.GetString([]byte("nope"))
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if !d.Found() || d.Err() != nil {
		t.Fatalf("pipelined delete: found=%v err=%v", d.Found(), d.Err())
	}
	if sl.Found() || sl.Err() != nil {
		t.Fatalf("pipelined string miss: found=%v err=%v", sl.Found(), sl.Err())
	}
}

func TestFutureImplicitSettle(t *testing.T) {
	addrs, _ := startCluster(t, 2)
	c := newClient(t, addrs)
	p := c.Pipeline()
	defer p.Close()

	if err := p.Set(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	l := p.Get(1)
	// No Wait: Found() must settle the pipeline itself.
	if !l.Found() || string(l.Value()) != "one" {
		t.Fatalf("implicit settle: %q found=%v", l.Value(), l.Found())
	}
}

// TestPipelineFailover is the cluster acceptance test: three nodes,
// concurrent pipelined traffic, one node killed mid-run. Operations
// routed to the dead node must error (attributed to that node), and
// operations routed to the two surviving nodes must never error.
func TestPipelineFailover(t *testing.T) {
	addrs, servers := startCluster(t, 3)
	const workers = 4
	c, err := New(Config{
		Nodes:        addrs,
		ConnsPerNode: workers + 1, // one per concurrent Pipeline + sync slack
		Window:       64,
		DownBackoff:  20 * time.Millisecond,
		DialTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dead := addrs[1]
	var (
		killed       atomic.Bool
		liveErrs     atomic.Int64 // errors on keys owned by surviving nodes
		deadErrs     atomic.Int64 // errors on keys owned by the dead node
		misattravail atomic.Int64 // NodeError blaming a surviving node
		liveOK       atomic.Int64 // successes on surviving nodes after the kill
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := c.Pipeline()
			defer p.Close()
			val := []byte("payload")
			for round := 0; round < 60; round++ {
				looks := make([]*Lookup, 0, 32)
				keys := make([]uint64, 0, 32)
				for i := 0; i < 32; i++ {
					key := uint64(w*1_000_000 + round*1000 + i)
					// Sets may fail on the dead node; that's the point.
					_ = p.SetTTL(key, val, 0)
					looks = append(looks, p.Get(key))
					keys = append(keys, key)
				}
				p.Wait()
				afterKill := killed.Load()
				for i, l := range looks {
					owner := c.Ring().NodeOf(keys[i])
					if err := l.Err(); err != nil {
						if owner == dead {
							deadErrs.Add(1)
						} else {
							liveErrs.Add(1)
						}
						var ne *NodeError
						if errors.As(err, &ne) && ne.Addr != dead {
							misattravail.Add(1)
						}
					} else if afterKill && owner != dead {
						liveOK.Add(1)
					}
				}
				if round == 10 && w == 0 {
					servers[1].Close()
					killed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := liveErrs.Load(); got != 0 {
		t.Errorf("%d operations on surviving nodes errored; failure not isolated", got)
	}
	if got := misattravail.Load(); got != 0 {
		t.Errorf("%d errors attributed to a surviving node", got)
	}
	if deadErrs.Load() == 0 {
		t.Error("no operation on the killed node errored; kill did not take effect")
	}
	if liveOK.Load() == 0 {
		t.Error("no operation on surviving nodes succeeded after the kill")
	}

	// Sync ops on surviving shards still work after the failure.
	for k := uint64(0); k < 300; k++ {
		if c.Ring().NodeOf(k) == dead {
			continue
		}
		if err := c.Set(k, []byte("post-failure")); err != nil {
			t.Fatalf("post-failure Set(%d) on surviving node: %v", k, err)
		}
	}
	st := c.NodeStats()
	if st[dead].Errors == 0 {
		t.Error("dead node recorded no errors in NodeStats")
	}
}

func TestDialFailureFailsFastAndRecovers(t *testing.T) {
	// Nothing listens on this port.
	c, err := New(Config{
		Nodes:       []string{"127.0.0.1:1"},
		DownBackoff: 30 * time.Millisecond,
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Get(1)
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Addr != "127.0.0.1:1" {
		t.Fatalf("Get against dead node: %v, want *NodeError for it", err)
	}
	// Inside the backoff window the node fails fast without redialing.
	dials := c.NodeStats()["127.0.0.1:1"].Dials
	if _, _, err = c.Get(2); err == nil {
		t.Fatal("Get succeeded against a dead node")
	}
	if got := c.NodeStats()["127.0.0.1:1"].Dials; got != dials {
		t.Errorf("backoff window redialed (%d → %d dials)", dials, got)
	}
}

// Wait must report failures that happened at issue time (dial/backoff),
// even though such futures never enter the pending read queue — otherwise
// an outage reads as a window of cache misses.
func TestWaitReportsIssueTimeErrors(t *testing.T) {
	c, err := New(Config{
		Nodes:       []string{"127.0.0.1:1"},
		DownBackoff: 30 * time.Millisecond,
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	defer p.Close()
	l := p.Get(1)
	if err := p.Wait(); err == nil {
		t.Fatal("Wait returned nil after an issue-time dial failure")
	}
	if l.Err() == nil {
		t.Fatal("future carries no error after dial failure")
	}
	// The error must not linger into the next (also failing, via backoff)
	// or a later healthy window.
	if err := p.Wait(); err != nil {
		t.Fatalf("second Wait with no issued ops returned %v", err)
	}
}

func TestClosedClient(t *testing.T) {
	addrs, _ := startCluster(t, 1)
	c := newClient(t, addrs)
	if err := c.Set(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed client: %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}
