// Topology changes and the dual-read migration window.
//
// The SDK's membership is mutable: AddNode/RemoveNode rebalance the
// continuum immediately (writes start flowing to the new owners at once)
// and open a migration window for every moved slot, recording its previous
// owner in the fallback table. During the window reads that miss on the
// new owner retry the old one and deletes apply to both, so traffic sees
// no misses while a Migrator (internal/rebalance) streams the moved
// entries across. MarkMigrated closes the window per slot; once a departed
// member backs no remaining slot its connection pool is retired.
//
// One coordinator at a time: a second topology change while slots are
// still migrating returns ErrMigrationPending — chaining changes before
// data movement settles would leave entries stranded on owners the
// fallback table no longer names.

package client

import (
	"errors"
	"fmt"

	"cphash/internal/cluster"
	"cphash/internal/protocol"
)

// ErrMigrationPending rejects a topology change while slots from the
// previous change are still migrating.
var ErrMigrationPending = errors.New("client: a slot migration is still pending")

// Migration describes one topology change awaiting data movement: for
// every source member, the slots that moved away from it (to the new
// owner the updated ring now names). The rebalance.Migrator consumes it.
type Migration struct {
	// Added or Removed names the member that joined or departed (exactly
	// one is set).
	Added, Removed string
	// Moved maps each source (previous owner) to the slots that left it.
	Moved map[string][]int
}

// Slots counts the moved slots across all sources.
func (m *Migration) Slots() int {
	n := 0
	for _, s := range m.Moved {
		n += len(s)
	}
	return n
}

// AddNode adds a member to the ring and opens the dual-read window for
// every slot that moved to it, returning the migration plan. The caller
// (or a rebalance.Migrator) must stream the moved entries and then
// MarkMigrated them; until then reads fall back to the slots' previous
// owners.
func (c *Client) AddNode(addr string) (*Migration, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingSlots > 0 {
		return nil, ErrMigrationPending
	}
	before := c.ring.Owners()
	moved, err := c.ring.AddNode(addr)
	if err != nil {
		return nil, err
	}
	if _, ok := c.nodes[addr]; !ok {
		c.nodes[addr] = c.newNode(addr)
	}
	c.nodes[addr].retired.Store(false)
	mig := &Migration{Added: addr, Moved: map[string][]int{}}
	for _, s := range moved {
		c.fallback[s] = before[s]
		mig.Moved[before[s]] = append(mig.Moved[before[s]], s)
	}
	c.pendingSlots = len(moved)
	return mig, nil
}

// RemoveNode removes a member from the ring and opens the dual-read
// window for every slot it owned — the departing member keeps serving
// fallback reads (and the migration scan) until MarkMigrated closes the
// window and RetireNode drops its pool.
// Removing a dead member works too: fallback reads to it simply fail fast
// and reads resolve on the new owners (its data is lost, as for any crash).
func (c *Client) RemoveNode(addr string) (*Migration, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingSlots > 0 {
		return nil, ErrMigrationPending
	}
	moved, err := c.ring.RemoveNode(addr)
	if err != nil {
		return nil, err
	}
	mig := &Migration{Removed: addr, Moved: map[string][]int{addr: moved}}
	for _, s := range moved {
		c.fallback[s] = addr
	}
	c.pendingSlots = len(moved)
	return mig, nil
}

// MarkMigrated closes the dual-read window for the given slots, returning
// how many windows this call actually closed (already-settled slots count
// zero, so migrator retries keep exact books). Reads route only to the
// new owners from here on. A departed member is NOT retired here — it
// must stay addressable so the migrator can PURGE its stale copies after
// the window closes; call RetireNode once that is done.
func (c *Client) MarkMigrated(slots []int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	closed := 0
	for _, s := range slots {
		if s < 0 || s >= cluster.Slots {
			continue
		}
		if c.fallback[s] != "" {
			c.fallback[s] = ""
			c.pendingSlots--
			closed++
		}
	}
	return closed
}

// MigratingIn reports how many of the given slots are still inside their
// dual-read window (0 = those slots are settled).
func (c *Client) MigratingIn(slots []int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pending := 0
	for _, s := range slots {
		if s >= 0 && s < cluster.Slots && c.fallback[s] != "" {
			pending++
		}
	}
	return pending
}

// RetireNode drops a departed member's connection pool: new leases fail
// fast and connections close as they drain. It refuses while the member
// is still routable (a ring member or a fallback target).
func (c *Client) RetireNode(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[addr]
	if !ok {
		return nil // already retired
	}
	if c.ring.Contains(addr) {
		return fmt.Errorf("client: cannot retire ring member %q", addr)
	}
	for _, a := range c.fallback {
		if a == addr {
			return fmt.Errorf("client: cannot retire %q: still a fallback target", addr)
		}
	}
	n.retired.Store(true)
	n.mu.Lock()
	for _, cn := range n.idle {
		cn.nc.Close()
	}
	n.idle = nil
	n.mu.Unlock()
	delete(c.nodes, addr)
	return nil
}

// MigratingSlots reports how many slots are still inside their dual-read
// window (0 = routing is settled).
func (c *Client) MigratingSlots() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pendingSlots
}

// ScanNode streams every live entry of the selected slots off one member,
// invoking fn per entry in iteration order. batch bounds entries per round
// trip (0 = protocol.MaxScanBatch). The cursor is server-stateless, so a
// transport failure resumes on a fresh connection via the usual retry
// path. fn returning an error aborts the stream.
func (c *Client) ScanNode(addr string, slots *protocol.SlotSet, batch int, fn func(e protocol.ScanEntry) error) error {
	n, err := c.nodeByAddr(addr)
	if err != nil {
		return err
	}
	if batch <= 0 || batch > protocol.MaxScanBatch {
		batch = protocol.MaxScanBatch
	}
	cursor := uint64(0)
	var entries []protocol.ScanEntry
	for {
		req := protocol.Request{Op: protocol.OpScan, Slots: *slots, Cursor: cursor, Count: uint32(batch)}
		var next uint64
		entries = entries[:0]
		err := c.withConn(n, func(cn *conn) error {
			var err error
			next, entries, err = cn.roundTripScan(req, entries[:0])
			return err
		})
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := fn(e); err != nil {
				return err
			}
		}
		if next == protocol.ScanDone {
			return nil
		}
		if next == cursor && len(entries) == 0 {
			return fmt.Errorf("client: scan of %s made no progress at cursor %d", addr, cursor)
		}
		cursor = next
	}
}

// PurgeNode removes every live entry of the selected slots from one
// member, returning how many entries were removed. Migrators call it on
// each source after its slots are marked migrated, so entries cannot
// resurface as stale copies if a later topology change hands a slot back.
func (c *Client) PurgeNode(addr string, slots *protocol.SlotSet) (removed int, err error) {
	n, err := c.nodeByAddr(addr)
	if err != nil {
		return 0, err
	}
	cursor := uint64(0)
	for {
		req := protocol.Request{Op: protocol.OpPurge, Slots: *slots, Cursor: cursor}
		var next uint64
		var batchRemoved uint32
		err := c.withConn(n, func(cn *conn) error {
			var err error
			next, batchRemoved, err = cn.roundTripPurge(req)
			return err
		})
		if err != nil {
			return removed, err
		}
		removed += int(batchRemoved)
		if next == protocol.ScanDone {
			return removed, nil
		}
		if next == cursor && batchRemoved == 0 {
			return removed, fmt.Errorf("client: purge of %s made no progress at cursor %d", addr, cursor)
		}
		cursor = next
	}
}
