package client

import (
	"errors"
	"fmt"
	"testing"

	"cphash/internal/cluster"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/protocol"
)

// startNode brings up one lockhash-backed server (the cheap backend; the
// wire path under test is identical for all of them).
func startNode(t *testing.T) *kvserver.Server {
	t.Helper()
	table := lockhash.MustNew(lockhash.Config{Partitions: 16, CapacityBytes: 4 << 20})
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    1,
		NewBackend: kvserver.NewLockHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestDualReadWindowOnAddNode: after AddNode, keys whose slots moved to
// the (empty) new node keep hitting through the fallback to their old
// owner — sync and pipelined — until MarkMigrated closes the window.
func TestDualReadWindowOnAddNode(t *testing.T) {
	a, b := startNode(t), startNode(t)
	c, err := New(Config{Nodes: []string{a.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 800
	for k := uint64(0); k < n; k++ {
		if err := c.Set(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	// One string key too.
	if err := c.SetString([]byte("who"), []byte("alice")); err != nil {
		t.Fatal(err)
	}

	mig, err := c.AddNode(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if mig.Added != b.Addr() || mig.Slots() == 0 {
		t.Fatalf("bad migration plan: %+v", mig)
	}
	if got := c.MigratingSlots(); got != mig.Slots() {
		t.Fatalf("MigratingSlots = %d, want %d", got, mig.Slots())
	}
	// Every moved slot's source must be the old single node.
	if len(mig.Moved) != 1 || len(mig.Moved[a.Addr()]) != mig.Slots() {
		t.Fatalf("sources: %+v", mig.Moved)
	}

	// Nothing streamed yet: all keys must still read through the window.
	for k := uint64(0); k < n; k++ {
		v, found, err := c.Get(k)
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("dual read Get(%d) = %q %v %v", k, v, found, err)
		}
	}
	if v, found, _ := c.GetString([]byte("who")); !found || string(v) != "alice" {
		t.Fatalf("dual read GetString = %q %v", v, found)
	}
	// Pipelined reads see the window too.
	p := c.Pipeline()
	looks := make([]*Lookup, n)
	for k := uint64(0); k < n; k++ {
		looks[k] = p.Get(k)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("pipeline wait: %v", err)
	}
	for k, l := range looks {
		if !l.Found() || string(l.Value()) != fmt.Sprintf("v%d", k) {
			t.Fatalf("pipeline Get(%d) = %q %v err=%v", k, l.Value(), l.Found(), l.Err())
		}
	}
	p.Close()

	// A delete during the window applies to both owners: re-set a moved
	// key's value on BOTH nodes (simulating a mid-migration copy), then
	// Delete and verify it stays gone through the dual-read.
	movedSlots := map[int]bool{}
	for _, s := range mig.Moved[a.Addr()] {
		movedSlots[s] = true
	}
	var movedKey uint64
	for k := uint64(0); k < n; k++ {
		if movedSlots[cluster.SlotOf(k)] {
			movedKey = k
			break
		}
	}
	if err := c.Set(movedKey, []byte("copied")); err != nil { // routes to b
		t.Fatal(err)
	}
	if found, err := c.Delete(movedKey); err != nil || !found {
		t.Fatalf("dual delete: %v %v", found, err)
	}
	if _, found, _ := c.Get(movedKey); found {
		t.Fatal("deleted key resurrected through the dual-read window")
	}

	// A second topology change is refused while the window is open.
	if _, err := c.AddNode("127.0.0.1:1"); !errors.Is(err, ErrMigrationPending) {
		t.Fatalf("chained AddNode: %v", err)
	}

	// Close the window without streaming: moved keys now miss (the data
	// was never copied), unmoved keys still hit — routing is settled.
	c.MarkMigrated(mig.Moved[a.Addr()])
	if got := c.MigratingSlots(); got != 0 {
		t.Fatalf("MigratingSlots = %d after MarkMigrated", got)
	}
	ring := c.Ring()
	for k := uint64(0); k < n; k++ {
		if k == movedKey {
			continue
		}
		_, found, err := c.Get(k)
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		if want := ring.NodeOf(k) == a.Addr(); found != want {
			t.Fatalf("settled Get(%d) found=%v, want %v", k, found, want)
		}
	}
}

// TestRemoveNodeDrainsAndRetires: removing a member keeps its data
// readable through the window, and MarkMigrated retires its pool.
func TestRemoveNodeDrainsAndRetires(t *testing.T) {
	a, b := startNode(t), startNode(t)
	c, err := New(Config{Nodes: []string{a.Addr(), b.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 500
	for k := uint64(0); k < n; k++ {
		if err := c.Set(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	mig, err := c.RemoveNode(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if mig.Removed != b.Addr() || len(mig.Moved[b.Addr()]) != mig.Slots() {
		t.Fatalf("bad plan: %+v", mig)
	}
	// Everything still reads (b's keys through the fallback).
	for k := uint64(0); k < n; k++ {
		if _, found, err := c.Get(k); err != nil || !found {
			t.Fatalf("window Get(%d) = %v %v", k, found, err)
		}
	}
	// The departed node is still scannable during the window (that is how
	// a migrator streams it).
	var set protocol.SlotSet
	for _, s := range mig.Moved[b.Addr()] {
		set.Add(s)
	}
	got := 0
	if err := c.ScanNode(b.Addr(), &set, 64, func(e protocol.ScanEntry) error {
		got++
		return nil
	}); err != nil {
		t.Fatalf("ScanNode during window: %v", err)
	}
	if got == 0 {
		t.Fatal("scan of the departing node streamed nothing")
	}

	// Retirement is refused while the node still backs open windows...
	if err := c.RetireNode(b.Addr()); err == nil {
		t.Fatal("RetireNode succeeded during the dual-read window")
	}
	c.MarkMigrated(mig.Moved[b.Addr()])
	// ...and the departed node stays addressable after MarkMigrated (a
	// migrator purges it at this point), until retired explicitly.
	if _, err := c.PurgeNode(b.Addr(), &set); err != nil {
		t.Fatalf("PurgeNode after MarkMigrated: %v", err)
	}
	if err := c.RetireNode(b.Addr()); err != nil {
		t.Fatalf("RetireNode: %v", err)
	}
	// The pool is retired: per-node ops now fail fast with unknown node.
	if err := c.ScanNode(b.Addr(), &set, 64, func(protocol.ScanEntry) error { return nil }); err == nil {
		t.Fatal("ScanNode succeeded on a retired node")
	}
	if _, ok := c.NodeStats()[b.Addr()]; ok {
		t.Fatal("retired node still in NodeStats")
	}
}
