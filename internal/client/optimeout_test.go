// OpTimeout coverage: a server that accepts connections and reads
// requests but never responds must fail operations within the per-op
// deadline, trip the breaker, and free the connection — the
// accept-then-hang failure mode only dial timeouts can't catch.

package client

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// startHungServer accepts and swallows traffic without ever replying.
func startHungServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c) //nolint:errcheck
		}
	}()
	return ln.Addr().String()
}

func TestOpTimeoutFailsHungSyncOp(t *testing.T) {
	addr := startHungServer(t)
	c, err := New(Config{
		Nodes:      []string{addr},
		OpTimeout:  100 * time.Millisecond,
		MaxRetries: -1, // one attempt: measure a single deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, _, err = c.Get(1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Get against a hung server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a net timeout, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hung op took %v; OpTimeout was 100ms", elapsed)
	}

	// The failed op exhausted its retries, so the breaker is tripped:
	// the next op fails fast without touching the socket.
	start = time.Now()
	if _, _, err := c.Get(2); !errors.Is(err, errDown) {
		t.Fatalf("want fast-fail errDown after the trip, got %v", err)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("post-trip op took %v, want fast-fail", el)
	}
}

func TestOpTimeoutFailsHungPipeline(t *testing.T) {
	addr := startHungServer(t)
	c, err := New(Config{
		Nodes:     []string{addr},
		OpTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	defer p.Close()
	l := p.Get(1)
	start := time.Now()
	if err := p.Wait(); err == nil {
		t.Fatal("pipelined window against a hung server settled cleanly")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("hung window took %v; OpTimeout was 100ms", el)
	}
	var nerr net.Error
	if err := l.Err(); !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("future error = %v, want a net timeout", err)
	}
}

// TestOpTimeoutDisabledByDefault pins the compatibility contract: with
// OpTimeout unset, no deadline is armed (a slow-but-alive server is
// never cut off mid-response by a default nobody chose).
func TestOpTimeoutDisabledByDefault(t *testing.T) {
	// A server that replies only after a pause longer than the timeout
	// the other tests use.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			buf := make([]byte, 4096)
			if _, err := c.Read(buf); err != nil {
				return
			}
			time.Sleep(300 * time.Millisecond)
			// A LOOKUP miss: a zero 4-byte size.
			c.Write([]byte{0, 0, 0, 0}) //nolint:errcheck
		}()
	}()
	c, err := New(Config{Nodes: []string{ln.Addr().String()}, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, found, err := c.Get(1); err != nil || found {
		t.Fatalf("slow miss: found=%v err=%v", found, err)
	}
}
