// Pipeline: the client-side half of the paper's batching. A Pipeline
// leases one connection per node it touches, buffers whole windows of
// requests, and matches responses back in issue order — per connection,
// responses arrive in request order, so draining the global issue order
// interleaves correctly across nodes.

package client

import (
	"time"

	"cphash/internal/cluster"
	"cphash/internal/protocol"
)

// Pipeline issues batched, windowed requests over the cluster. It is NOT
// safe for concurrent use — create one Pipeline per goroutine (they share
// the client's pools and per-node health state). Typical use:
//
//	p := c.Pipeline()
//	defer p.Close()
//	for _, k := range keys {
//		looks = append(looks, p.Get(k))
//	}
//	p.Wait()                    // flush + settle the window
//	for _, l := range looks { _ = l.Found() }
//
// Future accessors (Found/Value/Err) settle the pipeline implicitly, so
// forgetting Wait costs batching, never correctness. A settled Lookup's
// value remains valid until the Lookup itself is dropped (values are
// copied off the wire into a per-window slab) — unless the pipeline has
// opted into buffer recycling, whose shorter validity window is
// documented on SetReuseValues.
type Pipeline struct {
	c       *Client
	leased  map[*node]*conn
	pending []pend
	buf     []byte // value slab for the window being settled
	// issueErr is the first issue-time failure (lease/dial or write) of
	// the current window, so Wait reports failures even for futures that
	// never made it into pending.
	issueErr error

	// reuse enables allocation-free steady-state windows: the value slab
	// and the future structs recycle instead of being dropped to the GC.
	// Futures rotate cur → grace → free across explicit Waits and the
	// slab ping-pongs with prevBuf, so everything settled in one window
	// stays intact until the NEXT explicit Wait — implicit pace() settles
	// do not rotate, so they inherit their window's grace. See
	// SetReuseValues for the contract the caller accepts.
	reuse              bool
	curLook, graceLook []*Lookup
	freeLook           []*Lookup
	curDel, graceDel   []*Delete
	freeDel            []*Delete
	prevBuf            []byte // previous window's slab, held for its grace period
}

// SetReuseValues opts this Pipeline into buffer recycling: the per-window
// value slab and the Lookup/Delete future structs are reused instead of
// reallocated, making steady-state windows allocation-free. In exchange
// the caller promises to finish reading every settled future (including
// any Value slice) before its NEXT explicit Wait (or Close, or
// accessor-triggered settle) after the Wait that settled it. Implicit
// settles forced by a full pending window do not advance the generations
// — futures and values they settle stay readable exactly as long as the
// rest of their window — so the usual issue-window/Wait/read-results
// loop complies as-is no matter how the window sizes interact. Without
// reuse (the default) settled values stay valid until the futures are
// dropped, at the cost of a fresh slab and fresh futures per window.
func (p *Pipeline) SetReuseValues(on bool) { p.reuse = on }

// newLookup takes a recycled Lookup (reuse mode) or allocates one; the
// future is tracked so Wait can cycle it through the grace generation.
func (p *Pipeline) newLookup() *Lookup {
	if !p.reuse {
		return &Lookup{p: p}
	}
	var l *Lookup
	if k := len(p.freeLook); k > 0 {
		l = p.freeLook[k-1]
		p.freeLook[k-1] = nil
		p.freeLook = p.freeLook[:k-1]
		*l = Lookup{p: p}
	} else {
		l = &Lookup{p: p}
	}
	p.curLook = append(p.curLook, l)
	return l
}

// newDelete is newLookup for Delete futures.
func (p *Pipeline) newDelete() *Delete {
	if !p.reuse {
		return &Delete{p: p}
	}
	var d *Delete
	if k := len(p.freeDel); k > 0 {
		d = p.freeDel[k-1]
		p.freeDel[k-1] = nil
		p.freeDel = p.freeDel[:k-1]
		*d = Delete{p: p}
	} else {
		d = &Delete{p: p}
	}
	p.curDel = append(p.curDel, d)
	return d
}

// pend is one in-flight response-bearing request, in issue order. fb
// marks a dual-read/dual-delete duplicate issued to a migrating slot's
// previous owner: it fills the same future as its primary pend (which
// precedes it in issue order) and is strictly best-effort — its failures
// never fail the window. fb pends remember the request and the routing
// they were issued under so a double miss can detect a migration that
// completed mid-window (see Wait's recheck pass).
type pend struct {
	n       *node
	cn      *conn
	look    *Lookup
	del     *Delete
	fb      bool
	req     protocol.Request // fb lookups only
	primary *node            // fb lookups only: the primary the pair used
}

// Lookup is the future of a pipelined Get/GetString.
type Lookup struct {
	p     *Pipeline
	value []byte
	found bool
	err   error
	done  bool
}

// Err reports the lookup's transport error, settling the pipeline first.
func (l *Lookup) Err() error { l.settle(); return l.err }

// Found reports whether the key was present, settling the pipeline first.
func (l *Lookup) Found() bool { l.settle(); return l.found }

// Value returns the fetched bytes (nil on miss or error), settling the
// pipeline first. The slice stays valid as long as the Lookup is held —
// under SetReuseValues, only until the next explicit Wait (see there).
func (l *Lookup) Value() []byte { l.settle(); return l.value }

func (l *Lookup) settle() {
	if !l.done {
		l.p.Wait()
	}
}

// Delete is the future of a pipelined Delete/DeleteString.
type Delete struct {
	p     *Pipeline
	found bool
	err   error
	done  bool
}

// Err reports the delete's transport error, settling the pipeline first.
func (d *Delete) Err() error { d.settle(); return d.err }

// Found reports whether the key existed, settling the pipeline first.
func (d *Delete) Found() bool { d.settle(); return d.found }

func (d *Delete) settle() {
	if !d.done {
		d.p.Wait()
	}
}

// Pipeline starts a new pipelined session over the client's cluster.
func (c *Client) Pipeline() *Pipeline {
	return &Pipeline{c: c, leased: make(map[*node]*conn, len(c.nodes))}
}

// conn returns the session's connection to n, leasing one on first use.
func (p *Pipeline) conn(n *node) (*conn, error) {
	if cn, ok := p.leased[n]; ok {
		return cn, nil
	}
	cn, err := n.lease()
	if err != nil {
		return nil, err
	}
	p.leased[n] = cn
	return cn, nil
}

// issue writes one request on the node's session connection; failures mark
// the connection dead so the rest of the window fails coherently, and are
// remembered so Wait reports them even when no future reached pending.
func (p *Pipeline) issue(n *node, req protocol.Request) (*conn, error) {
	cn, err := p.issueQuiet(n, req)
	if err != nil {
		p.noteIssueErr(err)
	}
	return cn, err
}

// issueQuiet is issue without the window-failing bookkeeping, for
// best-effort fallback duplicates.
func (p *Pipeline) issueQuiet(n *node, req protocol.Request) (*conn, error) {
	cn, err := p.conn(n)
	if err != nil {
		return nil, err
	}
	if cn.dead {
		return nil, &NodeError{Addr: n.addr, Err: errDown}
	}
	n.ops.Add(1)
	cn.armWrite() // covers bufio's implicit flush on a full buffer
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		cn.dead = true
		n.errs.Add(1)
		return nil, &NodeError{Addr: n.addr, Err: err}
	}
	return cn, nil
}

func (p *Pipeline) noteIssueErr(err error) {
	if p.issueErr == nil {
		p.issueErr = err
	}
}

// Get enqueues a lookup of a fixed key and returns its future. While the
// key's slot is mid-migration a best-effort duplicate goes to the old
// owner in the same window; a primary miss adopts the duplicate's hit.
func (p *Pipeline) Get(key uint64) *Lookup {
	primary, fb := p.c.route(cluster.SlotOf(maskKey(key)))
	return p.get(primary, fb, protocol.Request{Op: protocol.OpLookup, Key: maskKey(key)})
}

// GetString enqueues a lookup of a string key and returns its future.
func (p *Pipeline) GetString(key []byte) *Lookup {
	primary, fb := p.c.route(cluster.SlotOfString(key))
	return p.get(primary, fb, protocol.Request{Op: protocol.OpGetStr, StrKey: key})
}

func (p *Pipeline) get(n, fb *node, req protocol.Request) *Lookup {
	l := p.newLookup()
	cn, err := p.issue(n, req)
	if err != nil {
		l.done, l.err = true, err
		return l
	}
	p.pending = append(p.pending, pend{n: n, cn: cn, look: l})
	if fb != nil {
		// Both pends join the window before pace() so one Wait settles
		// them together; the future is never mutated after it settles.
		if cnf, err := p.issueQuiet(fb, req); err == nil {
			p.pending = append(p.pending, pend{n: fb, cn: cnf, look: l, fb: true, req: req, primary: n})
		}
	}
	p.pace()
	return l
}

// Set enqueues a fixed-key store (silent on the wire; the value is copied
// into the connection buffer before Set returns).
func (p *Pipeline) Set(key uint64, value []byte) error {
	return p.SetTTL(key, value, 0)
}

// SetTTL enqueues a fixed-key store with an expiry (0 = never).
func (p *Pipeline) SetTTL(key uint64, value []byte, ttl time.Duration) error {
	_, err := p.issue(p.c.nodeFor(key), insertRequest(maskKey(key), value, ttl))
	return err
}

// SetString enqueues a string-key store with no expiry.
func (p *Pipeline) SetString(key, value []byte) error {
	return p.SetStringTTL(key, value, 0)
}

// SetStringTTL enqueues a string-key store with an expiry (0 = never).
func (p *Pipeline) SetStringTTL(key, value []byte, ttl time.Duration) error {
	_, err := p.issue(p.c.nodeForString(key),
		protocol.Request{Op: protocol.OpSetStr, StrKey: key, TTL: wireTTL(ttl), Value: value})
	return err
}

// Delete enqueues a fixed-key delete and returns its future. While the
// key's slot is mid-migration a best-effort duplicate delete goes to the
// old owner too (the sync Delete path is the strict variant).
func (p *Pipeline) Delete(key uint64) *Delete {
	primary, fb := p.c.route(cluster.SlotOf(maskKey(key)))
	return p.del(primary, fb, protocol.Request{Op: protocol.OpDelete, Key: maskKey(key)})
}

// DeleteString enqueues a string-key delete and returns its future.
func (p *Pipeline) DeleteString(key []byte) *Delete {
	primary, fb := p.c.route(cluster.SlotOfString(key))
	return p.del(primary, fb, protocol.Request{Op: protocol.OpDelStr, StrKey: key})
}

func (p *Pipeline) del(n, fb *node, req protocol.Request) *Delete {
	d := p.newDelete()
	cn, err := p.issue(n, req)
	if err != nil {
		d.done, d.err = true, err
		return d
	}
	p.pending = append(p.pending, pend{n: n, cn: cn, del: d})
	if fb != nil {
		if cnf, err := p.issueQuiet(fb, req); err == nil {
			p.pending = append(p.pending, pend{n: fb, cn: cnf, del: d, fb: true})
		}
	}
	p.pace()
	return d
}

// pace settles implicitly when the window fills, bounding both in-flight
// state and server-side queue pressure. An implicit settle does not
// rotate the reuse generations: everything settled since the caller's
// last explicit Wait shares that window's grace period, so pace cannot
// recycle values the caller has not had a chance to read.
func (p *Pipeline) pace() {
	if len(p.pending) >= p.c.cfg.Window {
		p.wait(false)
	}
}

// Flush pushes all buffered requests to the wire without waiting for
// responses. Wait flushes too; Flush alone is for fire-and-forget bursts
// of Sets.
func (p *Pipeline) Flush() error {
	var first error
	for n, cn := range p.leased {
		if cn.dead {
			continue
		}
		cn.armWrite()
		if err := cn.w.Flush(); err != nil {
			cn.dead = true
			n.errs.Add(1)
			if first == nil {
				first = &NodeError{Addr: n.addr, Err: err}
			}
		}
	}
	return first
}

// Wait flushes and settles every outstanding future in issue order,
// returning the first error encountered — including issue-time failures
// whose future never carried a wire exchange (each future also carries
// its own error). Connections that failed are dropped so the next window
// leases fresh ones — per-node backoff in lease() keeps retries bounded.
func (p *Pipeline) Wait() error { return p.wait(true) }

// wait implements Wait; rotate is false for pace's implicit settles,
// which must not advance the reuse generations (see pace).
func (p *Pipeline) wait(rotate bool) error {
	if len(p.pending) > 0 {
		p.c.pipelineDepth.Record(int64(len(p.pending)))
	}
	first := p.issueErr
	p.issueErr = nil
	if err := p.Flush(); err != nil && first == nil {
		first = err
	}
	if p.reuse {
		if rotate {
			// Rotate the generations: futures settled before the previous
			// explicit Wait are past their grace window and recycle;
			// everything settled since (implicitly or by this Wait) enters
			// grace. The slab ping-pongs, so the slab holding the previous
			// window's values survives this entire Wait and is reclaimed
			// only by the next rotation.
			p.freeLook = append(p.freeLook, p.graceLook...)
			p.freeDel = append(p.freeDel, p.graceDel...)
			clear(p.graceLook)
			clear(p.graceDel)
			p.graceLook, p.curLook = p.curLook, p.graceLook[:0]
			p.graceDel, p.curDel = p.curDel, p.graceDel[:0]
			p.buf, p.prevBuf = p.prevBuf[:0], p.buf
		}
		// rotate=false: keep appending to the current slab and leave the
		// settling futures in the current generation.
	} else {
		// A fresh slab per window: already-settled futures keep referencing
		// their old slabs, so values never get invalidated behind the
		// caller.
		p.buf = nil
	}
	var rechecks []*pend
	for i := range p.pending {
		pd := &p.pending[i]
		err := p.read(pd)
		if err != nil && first == nil {
			first = err
		}
		// A dual-read pair that ended in a double miss may have straddled
		// the end of the migration (entry replayed to the primary after
		// the primary's read, purged from the source before the source's
		// read). Recheck those once the window is fully drained and the
		// connections are quiescent.
		if pd.fb && pd.look != nil && pd.look.err == nil && !pd.look.found {
			rechecks = append(rechecks, pd)
		}
	}
	p.pending = p.pending[:0]
	for _, pd := range rechecks {
		p.recheck(pd)
	}
	for n, cn := range p.leased {
		if cn.dead {
			delete(p.leased, n)
			n.release(cn)
		}
	}
	if p.reuse && !rotate {
		// A caller that only ever settles implicitly (fire-and-forget
		// Set/Delete bursts with no explicit Wait) never rotates, so the
		// current generation and its slab would grow forever. Once the
		// generation is clearly oversized, hand it to the GC instead of
		// tracking it for recycling: dropped futures are never reused, so
		// nothing the caller holds is invalidated, and memory reverts to
		// the non-reuse per-window profile until the next explicit Wait.
		if len(p.curLook)+len(p.curDel) > 4*p.c.cfg.Window {
			clear(p.curLook)
			clear(p.curDel)
			p.curLook = p.curLook[:0]
			p.curDel = p.curDel[:0]
			p.buf = nil
		}
	}
	return first
}

// read settles one pending future off its connection.
func (p *Pipeline) read(pd *pend) error {
	if pd.fb {
		p.readFB(pd)
		return nil // fallback duplicates never fail the window
	}
	var err error
	if pd.cn.dead {
		err = &NodeError{Addr: pd.n.addr, Err: errDown}
	} else if pd.look != nil {
		pd.cn.armRead()
		start := len(p.buf)
		var found bool
		p.buf, found, err = protocol.ReadLookupResponse(pd.cn.r, p.buf)
		if err == nil {
			pd.look.found = found
			if found {
				pd.look.value = p.buf[start:len(p.buf):len(p.buf)]
			}
		}
	} else {
		pd.cn.armRead()
		var found bool
		found, err = protocol.ReadDeleteResponse(pd.cn.r)
		if err == nil {
			pd.del.found = found
		}
	}
	if err != nil {
		if !pd.cn.dead {
			pd.cn.dead = true
			pd.n.errs.Add(1)
			err = &NodeError{Addr: pd.n.addr, Err: err}
		}
	}
	if pd.look != nil {
		pd.look.done, pd.look.err = true, err
	} else {
		pd.del.done, pd.del.err = true, err
	}
	return err
}

// readFB settles a fallback duplicate: its response must be consumed to
// keep the connection's FIFO aligned, and a hit (or a delete-found) is
// adopted only when the primary — which settled just before it in issue
// order — came back empty-handed.
func (p *Pipeline) readFB(pd *pend) {
	if pd.cn.dead {
		return
	}
	pd.cn.armRead()
	if pd.look != nil {
		start := len(p.buf)
		buf, found, err := protocol.ReadLookupResponse(pd.cn.r, p.buf)
		p.buf = buf
		if err != nil {
			pd.cn.dead = true
			pd.n.errs.Add(1)
			return
		}
		if found && (pd.look.err != nil || !pd.look.found) {
			pd.look.err = nil
			pd.look.found = true
			pd.look.value = p.buf[start:len(p.buf):len(p.buf)]
		}
		return
	}
	found, err := protocol.ReadDeleteResponse(pd.cn.r)
	if err != nil {
		pd.cn.dead = true
		pd.n.errs.Add(1)
		return
	}
	if found && pd.del.err == nil {
		pd.del.found = true
	}
}

// recheck resolves a double-missed dual-read pair after the window has
// drained: if the slot's routing is unchanged the miss is genuine; if a
// migration completed mid-window, one more round trip on the session's
// connection to the settled owner finds the replayed entry. It runs only
// between windows, when the leased connections have no responses in
// flight, so a synchronous exchange cannot misalign the FIFO — and it
// deliberately avoids the sync-op pool (a Pipeline may hold the pool's
// only token for a node).
func (p *Pipeline) recheck(pd *pend) {
	var slot int
	if pd.req.StrKey != nil {
		slot = cluster.SlotOfString(pd.req.StrKey)
	} else {
		slot = cluster.SlotOf(pd.req.Key)
	}
	primary, fb := p.c.route(slot)
	if primary == pd.primary && fb == pd.n {
		return // routing unchanged: a genuine miss
	}
	cn, err := p.conn(primary)
	if err != nil || cn.dead {
		return // best-effort, like every fallback path
	}
	primary.ops.Add(1)
	var value []byte
	var found bool
	if err := cn.roundTripLookup(pd.req, nil, &value, &found); err != nil {
		cn.dead = true
		primary.errs.Add(1)
		return
	}
	if found {
		start := len(p.buf)
		p.buf = append(p.buf, value...)
		pd.look.found = true
		pd.look.value = p.buf[start:len(p.buf):len(p.buf)]
	}
}

// Close settles outstanding work and returns the session's connections to
// their pools. The Pipeline must not be used afterwards.
func (p *Pipeline) Close() {
	p.Wait()
	for n, cn := range p.leased {
		delete(p.leased, n)
		n.release(cn)
	}
}
