package client

import (
	"bytes"
	"fmt"
	"testing"
)

// TestGetInto verifies the append-into-dst read path: values land in the
// caller's buffer, a recycled buffer is reused rather than reallocated,
// and misses leave dst untouched.
func TestGetInto(t *testing.T) {
	addrs, _ := startCluster(t, 2)
	c := newClient(t, addrs)
	defer c.Close()

	if err := c.Set(7, []byte("seven-value")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetString([]byte("skey"), []byte("string-value")); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 0, 64)
	base := &dst[:1][0]
	got, found, err := c.GetInto(7, dst)
	if err != nil || !found || string(got) != "seven-value" {
		t.Fatalf("GetInto = %q (found=%v, err=%v)", got, found, err)
	}
	if &got[0] != base {
		t.Fatal("GetInto reallocated despite sufficient dst capacity")
	}

	// Appending semantics: existing bytes stay in place.
	prefixed, found, err := c.GetInto(7, []byte("prefix-"))
	if err != nil || !found || string(prefixed) != "prefix-seven-value" {
		t.Fatalf("GetInto append = %q (found=%v, err=%v)", prefixed, found, err)
	}

	sgot, found, err := c.GetStringInto([]byte("skey"), got[:0])
	if err != nil || !found || string(sgot) != "string-value" {
		t.Fatalf("GetStringInto = %q (found=%v, err=%v)", sgot, found, err)
	}

	miss, found, err := c.GetInto(999999, []byte("keepme"))
	if err != nil || found || string(miss) != "keepme" {
		t.Fatalf("miss: got %q (found=%v, err=%v), want dst unchanged", miss, found, err)
	}
}

// TestPipelineReuseValues drives many windows through a recycling
// pipeline and checks every value, so slab/future recycling bugs show up
// as cross-window corruption.
func TestPipelineReuseValues(t *testing.T) {
	addrs, _ := startCluster(t, 2)
	c := newClient(t, addrs)
	defer c.Close()

	p := c.Pipeline()
	defer p.Close()
	p.SetReuseValues(true)

	const window = 32
	const windows = 40
	looks := make([]*Lookup, 0, window)
	for w := 0; w < windows; w++ {
		looks = looks[:0]
		for i := 0; i < window; i++ {
			key := uint64(w*window + i)
			val := []byte(fmt.Sprintf("w%03d-i%02d-value", w, i))
			if err := p.Set(key, val); err != nil {
				t.Fatal(err)
			}
			looks = append(looks, p.Get(key))
		}
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		for i, l := range looks {
			want := fmt.Sprintf("w%03d-i%02d-value", w, i)
			if err := l.Err(); err != nil {
				t.Fatal(err)
			}
			if !l.Found() || !bytes.Equal(l.Value(), []byte(want)) {
				t.Fatalf("window %d lookup %d = %q (found=%v), want %q",
					w, i, l.Value(), l.Found(), want)
			}
		}
	}

	// Deletes recycle through their own free list.
	dels := make([]*Delete, 0, window)
	for w := 0; w < 4; w++ {
		dels = dels[:0]
		for i := 0; i < window; i++ {
			dels = append(dels, p.Delete(uint64(w*window+i)))
		}
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		for i, d := range dels {
			if err := d.Err(); err != nil {
				t.Fatal(err)
			}
			if !d.Found() {
				t.Fatalf("window %d delete %d: key missing", w, i)
			}
		}
	}
}

// TestPipelineReuseRecyclesFutures pins the recycling mechanics: after
// the one-full-window grace period ends (two Waits after settling),
// future structs come back out of the free list instead of being freshly
// allocated.
func TestPipelineReuseRecyclesFutures(t *testing.T) {
	addrs, _ := startCluster(t, 1)
	c := newClient(t, addrs)
	defer c.Close()

	p := c.Pipeline()
	defer p.Close()
	p.SetReuseValues(true)

	first := p.Get(1)
	if err := p.Wait(); err != nil { // settles first: cur → grace
		t.Fatal(err)
	}
	_ = first.Found()
	if l := p.Get(2); l == first {
		t.Fatal("future recycled while still inside its grace window")
	}
	if err := p.Wait(); err != nil { // grace → free: first is recyclable now
		t.Fatal(err)
	}
	third := p.Get(3)
	if third != first {
		t.Fatalf("expected this window to recycle the first future (%p), got %p", first, third)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineReuseSurvivesImplicitSettle forces pace() to settle a
// window implicitly mid-issue (pending > Config.Window) and verifies the
// grace period keeps every value readable after the explicit Wait — the
// exact scenario that would corrupt values under one-generation
// recycling.
func TestPipelineReuseSurvivesImplicitSettle(t *testing.T) {
	addrs, _ := startCluster(t, 2)
	c, err := New(Config{Nodes: addrs, Window: 8}) // tiny window: pace fires often
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	defer p.Close()
	p.SetReuseValues(true)

	const n = 30 // ≫ Window: several implicit settles per loop
	looks := make([]*Lookup, 0, n)
	for round := 0; round < 5; round++ {
		looks = looks[:0]
		for i := 0; i < n; i++ {
			key := uint64(round*n + i)
			val := []byte(fmt.Sprintf("round-%d-key-%02d", round, i))
			if err := p.Set(key, val); err != nil {
				t.Fatal(err)
			}
			looks = append(looks, p.Get(key))
		}
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		for i, l := range looks {
			want := fmt.Sprintf("round-%d-key-%02d", round, i)
			if err := l.Err(); err != nil {
				t.Fatal(err)
			}
			if !l.Found() || string(l.Value()) != want {
				t.Fatalf("round %d lookup %d = %q (found=%v), want %q — implicit settle recycled live values",
					round, i, l.Value(), l.Found(), want)
			}
		}
	}
}

// TestPipelineReuseFireAndForgetBounded guards the memory bound for a
// reuse-mode caller that never calls Wait explicitly: implicit pace()
// settles must not accumulate futures (or slab) without limit.
func TestPipelineReuseFireAndForgetBounded(t *testing.T) {
	addrs, _ := startCluster(t, 1)
	c, err := New(Config{Nodes: addrs, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	defer p.Close()
	p.SetReuseValues(true)

	// Thousands of fire-and-forget deletes, never an explicit Wait: every
	// full window pace() settles implicitly.
	for i := 0; i < 5000; i++ {
		p.Delete(uint64(i))
	}
	if got := len(p.curDel) + len(p.graceDel) + len(p.freeDel); got > 8*8 {
		t.Fatalf("pipeline tracks %d delete futures after fire-and-forget burst, want a bounded handful", got)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}
