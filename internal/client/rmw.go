// The protocol version 4 client surface: GETS and the atomic
// read-modify-write op set (CAS/ADD/REPLACE/APPEND/PREPEND/INCR/DECR/
// TOUCH), plus the INSERT_VER replay primitive.
//
// Unlike the version 1–2 operations, read-modify-writes are NOT
// idempotent: re-sending an INCR whose response was lost applies it
// twice, and re-sending a CAS can race its own first attempt. They
// therefore bypass the SDK's blind-retry path (withConn) and do exactly
// one attempt on one leased connection; a transport failure surfaces as a
// *NodeError and the caller decides — typically by re-reading with Gets —
// whether the mutation landed. GETS and SET_TTL_VER are idempotent and
// keep the ordinary retry behavior.
//
// All mutations route to the slot's primary owner. GETS too: a follower
// or migration-fallback read could return a version token the primary no
// longer considers current, turning every subsequent CAS into a spurious
// EXISTS; reading the primary keeps the gets→cas loop honest.

package client

import (
	"time"

	"cphash/internal/protocol"
)

// RMWOutcome is the decoded status(1)|ver(8)|num(8) reply of one
// read-modify-write.
type RMWOutcome struct {
	// Status is the protocol.RMWStatus* code.
	Status uint8
	// Ver is the resulting entry version for a stored outcome, or the
	// conflicting current version on RMWStatusExists (so a caller can
	// retry a CAS without an extra GETS round trip).
	Ver uint64
	// Num is the resulting numeric value for a stored INCR/DECR.
	Num uint64
}

// Stored reports whether the mutation was applied.
func (o RMWOutcome) Stored() bool { return o.Status == protocol.RMWStatusStored }

// Gets fetches the value and CAS version under a fixed key. The version
// feeds a later Cas; found is false on a miss.
func (c *Client) Gets(key uint64) (value []byte, ver uint64, found bool, err error) {
	return c.getsAt(c.nodeFor(key), protocol.Request{Op: protocol.OpGets, Key: maskKey(key)})
}

// GetsString is Gets for a string key.
func (c *Client) GetsString(key []byte) (value []byte, ver uint64, found bool, err error) {
	return c.getsAt(c.nodeForString(key), protocol.Request{Op: protocol.OpGetsStr, StrKey: key})
}

func (c *Client) getsAt(n *node, req protocol.Request) (value []byte, ver uint64, found bool, err error) {
	err = c.withConn(n, func(cn *conn) error {
		v, vv, f, e := cn.roundTripGets(req, nil)
		if e != nil {
			return e
		}
		value, ver, found = v, vv, f
		return nil
	})
	return value, ver, found, err
}

// Cas stores value iff the entry still carries version ver (from a prior
// Gets). RMWStatusExists reports a conflict (Outcome.Ver holds the current
// version); RMWStatusNotFound an absent key.
func (c *Client) Cas(key uint64, value []byte, ver uint64, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpCas, Key: maskKey(key), TTL: wireTTL(ttl), Ver: ver, Value: value})
}

// CasString is Cas for a string key.
func (c *Client) CasString(key, value []byte, ver uint64, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpCasStr, StrKey: key, TTL: wireTTL(ttl), Ver: ver, Value: value})
}

// Add stores value iff the key is absent (RMWStatusNotStored otherwise).
func (c *Client) Add(key uint64, value []byte, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpAdd, Key: maskKey(key), TTL: wireTTL(ttl), Value: value})
}

// AddString is Add for a string key.
func (c *Client) AddString(key, value []byte, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpAddStr, StrKey: key, TTL: wireTTL(ttl), Value: value})
}

// Replace stores value iff the key is present (RMWStatusNotStored
// otherwise).
func (c *Client) Replace(key uint64, value []byte, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpReplace, Key: maskKey(key), TTL: wireTTL(ttl), Value: value})
}

// ReplaceString is Replace for a string key.
func (c *Client) ReplaceString(key, value []byte, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpReplaceStr, StrKey: key, TTL: wireTTL(ttl), Value: value})
}

// Append concatenates value after the existing one, keeping its expiry
// (RMWStatusNotStored on an absent key).
func (c *Client) Append(key uint64, value []byte) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpAppend, Key: maskKey(key), Value: value})
}

// AppendString is Append for a string key.
func (c *Client) AppendString(key, value []byte) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpAppendStr, StrKey: key, Value: value})
}

// Prepend concatenates value before the existing one, keeping its expiry.
func (c *Client) Prepend(key uint64, value []byte) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpPrepend, Key: maskKey(key), Value: value})
}

// PrependString is Prepend for a string key.
func (c *Client) PrependString(key, value []byte) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpPrependStr, StrKey: key, Value: value})
}

// Incr adds delta to the decimal value under key (64-bit wraparound); the
// result is Outcome.Num. RMWStatusNotFound on an absent key,
// RMWStatusBadValue on a non-numeric one.
func (c *Client) Incr(key uint64, delta uint64) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpIncr, Key: maskKey(key), Delta: delta})
}

// IncrString is Incr for a string key.
func (c *Client) IncrString(key []byte, delta uint64) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpIncrStr, StrKey: key, Delta: delta})
}

// Decr subtracts delta from the decimal value under key, flooring at 0.
func (c *Client) Decr(key uint64, delta uint64) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpDecr, Key: maskKey(key), Delta: delta})
}

// DecrString is Decr for a string key.
func (c *Client) DecrString(key []byte, delta uint64) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpDecrStr, StrKey: key, Delta: delta})
}

// Touch updates the entry's expiry in place without bumping its version
// (RMWStatusNotFound on an absent key).
func (c *Client) Touch(key uint64, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeFor(key),
		protocol.Request{Op: protocol.OpTouch, Key: maskKey(key), TTL: wireTTL(ttl)})
}

// TouchString is Touch for a string key.
func (c *Client) TouchString(key []byte, ttl time.Duration) (RMWOutcome, error) {
	return c.rmwAt(c.nodeForString(key),
		protocol.Request{Op: protocol.OpTouchStr, StrKey: key, TTL: wireTTL(ttl)})
}

// SetTTLVer stores a value with an explicit CAS version (the INSERT_VER
// replay primitive migration and backup tooling use). It is silent and
// idempotent — replaying the same (value, version) converges — so it keeps
// the SDK's ordinary retry behavior.
func (c *Client) SetTTLVer(key uint64, value []byte, ttl time.Duration, ver uint64) error {
	req := protocol.Request{Op: protocol.OpInsertVer, Key: maskKey(key), TTL: wireTTL(ttl), Ver: ver, Value: value}
	return c.withConn(c.nodeFor(key), func(cn *conn) error {
		return cn.send(req)
	})
}

// rmwAt does one read-modify-write against the slot's primary, exactly
// once (see the package comment on non-idempotence).
func (c *Client) rmwAt(n *node, req protocol.Request) (RMWOutcome, error) {
	var out RMWOutcome
	err := c.withConnOnce(n, func(cn *conn) error {
		o, e := cn.roundTripRMW(req)
		if e != nil {
			return e
		}
		out = o
		return nil
	})
	return out, err
}

// withConnOnce runs one non-idempotent operation with no retry: a
// transport failure after the request may have hit the wire leaves the
// caller unable to tell whether the mutation applied, so re-sending could
// double-apply (an INCR twice, a CAS against its own result). The failed
// connection is discarded and the error surfaced; breaker trips are left
// to the idempotent paths, whose exhausted retries prove a node is down.
func (c *Client) withConnOnce(n *node, fn func(*conn) error) error {
	cn, err := n.lease()
	if err != nil {
		return err
	}
	n.ops.Add(1)
	if err := fn(cn); err != nil {
		cn.dead = true
		n.release(cn)
		n.errs.Add(1)
		return &NodeError{Addr: n.addr, Err: err}
	}
	n.release(cn)
	n.noteSuccess()
	return nil
}

// roundTripGets does a synchronous GETS/GETS_STR exchange, appending a
// hit's value to dst.
func (cn *conn) roundTripGets(req protocol.Request, dst []byte) (value []byte, ver uint64, found bool, err error) {
	cn.armWrite()
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		return dst, 0, false, err
	}
	if err := cn.w.Flush(); err != nil {
		return dst, 0, false, err
	}
	cn.armRead()
	return protocol.ReadGetsResponseInto(cn.r, dst)
}

// roundTripRMW does one synchronous read-modify-write exchange.
func (cn *conn) roundTripRMW(req protocol.Request) (RMWOutcome, error) {
	cn.armWrite()
	if err := protocol.WriteRequest(cn.w, req); err != nil {
		return RMWOutcome{}, err
	}
	if err := cn.w.Flush(); err != nil {
		return RMWOutcome{}, err
	}
	cn.armRead()
	st, ver, num, err := protocol.ReadRMWResponse(cn.r)
	if err != nil {
		return RMWOutcome{}, err
	}
	return RMWOutcome{Status: st, Ver: ver, Num: num}, nil
}
