package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/partition"
	"cphash/internal/protocol"
)

// startCoreNode brings up a CPHASH-backed server: the RMW property tests
// run against the real single-owner engine (server goroutines executing
// read-modify-writes on their own partitions), not the locked baseline.
func startCoreNode(t *testing.T) *kvserver.Server {
	t.Helper()
	table := core.MustNew(core.Config{Partitions: 2, CapacityBytes: 8 << 20, MaxClients: 2, Seed: 1})
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    2,
		NewBackend: kvserver.NewCPHashBackend(table),
	})
	if err != nil {
		table.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		table.Close()
	})
	return srv
}

// TestConcurrentCasCounterProperty is the CAS linearizability property:
// many goroutines run gets→cas loops against one counter key, each
// landing a fixed number of successful compare-and-swaps. Every
// successful CAS is one lost-update-free increment, so the final value
// must be exactly workers×increments — any torn or double-applied CAS
// shows up as a wrong sum.
func TestConcurrentCasCounterProperty(t *testing.T) {
	srv := startCoreNode(t)
	c, err := New(Config{Nodes: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	key := []byte("cas:counter")
	if out, err := c.AddString(key, []byte("0"), 0); err != nil || !out.Stored() {
		t.Fatalf("seeding counter: %+v, %v", out, err)
	}

	const workers = 8
	const increments = 100
	var conflicts atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var numBuf [20]byte
			for landed := 0; landed < increments; {
				v, ver, found, err := c.GetsString(key)
				if err != nil || !found {
					errs <- fmt.Errorf("gets: found=%v err=%v", found, err)
					return
				}
				n, ok := partition.ParseDecimal(v)
				if !ok {
					errs <- fmt.Errorf("counter not numeric: %q", v)
					return
				}
				out, err := c.CasString(key, strconv.AppendUint(numBuf[:0], n+1, 10), ver, 0)
				if err != nil {
					errs <- fmt.Errorf("cas: %v", err)
					return
				}
				switch out.Status {
				case protocol.RMWStatusStored:
					landed++
				case protocol.RMWStatusExists:
					conflicts.Add(1) // raced another goroutine; re-read and retry
				default:
					errs <- fmt.Errorf("cas status %d", out.Status)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	v, _, found, err := c.GetsString(key)
	if err != nil || !found {
		t.Fatalf("final gets: found=%v err=%v", found, err)
	}
	want := strconv.Itoa(workers * increments)
	if string(v) != want {
		t.Fatalf("counter = %s after %d successful CAS increments, want %s (%d conflicts retried)",
			v, workers*increments, want, conflicts.Load())
	}
	t.Logf("counter converged at %s with %d CAS conflicts retried", v, conflicts.Load())
}

// rmwModelEntry is the reference model's view of one key: the exact
// value bytes plus the last version token the server reported for it.
type rmwModelEntry struct {
	val []byte
	ver uint64
}

// TestRMWSequentialModel drives a long random sequence of version-4
// operations against a live server and checks every outcome against a
// map+version reference model: statuses, values, versions (strictly
// increasing per key on mutation, stable across touch), CAS conflict
// reporting, and incr/decr arithmetic via the same ParseDecimal the
// engine uses.
func TestRMWSequentialModel(t *testing.T) {
	srv := startCoreNode(t)
	c, err := New(Config{Nodes: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(42))
	keys := make([][]byte, 6)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("model:key:%d", i))
	}
	model := make(map[string]*rmwModelEntry)

	randVal := func() []byte {
		if rng.Intn(2) == 0 {
			// Decimal value, so incr/decr sometimes has numbers to chew on.
			return []byte(strconv.Itoa(rng.Intn(1000)))
		}
		b := make([]byte, 1+rng.Intn(12))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return b
	}

	// mutated updates the model after a Stored outcome and asserts the
	// version token moved forward.
	mutated := func(step int, op string, k []byte, newVal []byte, out RMWOutcome) {
		t.Helper()
		m := model[string(k)]
		if m != nil && out.Ver <= m.ver {
			t.Fatalf("step %d %s(%s): version went %d → %d, want strictly increasing", step, op, k, m.ver, out.Ver)
		}
		model[string(k)] = &rmwModelEntry{val: newVal, ver: out.Ver}
	}

	for step := 0; step < 4000; step++ {
		k := keys[rng.Intn(len(keys))]
		m := model[string(k)]
		switch rng.Intn(11) {
		case 0: // gets
			v, ver, found, err := c.GetsString(k)
			if err != nil {
				t.Fatalf("step %d gets: %v", step, err)
			}
			if (m != nil) != found {
				t.Fatalf("step %d gets(%s): found=%v, model present=%v", step, k, found, m != nil)
			}
			if m != nil && (!bytes.Equal(v, m.val) || ver != m.ver) {
				t.Fatalf("step %d gets(%s) = %q v%d, model %q v%d", step, k, v, ver, m.val, m.ver)
			}

		case 1: // add
			val := randVal()
			out, err := c.AddString(k, val, 0)
			if err != nil {
				t.Fatalf("step %d add: %v", step, err)
			}
			if m != nil {
				if out.Status != protocol.RMWStatusNotStored {
					t.Fatalf("step %d add on present key: status %d", step, out.Status)
				}
			} else {
				if !out.Stored() {
					t.Fatalf("step %d add on absent key: status %d", step, out.Status)
				}
				mutated(step, "add", k, val, out)
			}

		case 2: // replace
			val := randVal()
			out, err := c.ReplaceString(k, val, 0)
			if err != nil {
				t.Fatalf("step %d replace: %v", step, err)
			}
			if m == nil {
				if out.Status != protocol.RMWStatusNotStored {
					t.Fatalf("step %d replace on absent key: status %d", step, out.Status)
				}
			} else {
				if !out.Stored() {
					t.Fatalf("step %d replace on present key: status %d", step, out.Status)
				}
				mutated(step, "replace", k, val, out)
			}

		case 3: // cas with the model's (fresh) token
			val := randVal()
			ver := uint64(1)
			if m != nil {
				ver = m.ver
			}
			out, err := c.CasString(k, val, ver, 0)
			if err != nil {
				t.Fatalf("step %d cas: %v", step, err)
			}
			if m == nil {
				if out.Status != protocol.RMWStatusNotFound {
					t.Fatalf("step %d cas on absent key: status %d", step, out.Status)
				}
			} else {
				if !out.Stored() {
					t.Fatalf("step %d cas with fresh token v%d: status %d", step, ver, out.Status)
				}
				mutated(step, "cas", k, val, out)
			}

		case 4: // cas with a deliberately stale token
			if m == nil {
				continue
			}
			out, err := c.CasString(k, randVal(), m.ver+12345, 0)
			if err != nil {
				t.Fatalf("step %d stale cas: %v", step, err)
			}
			if out.Status != protocol.RMWStatusExists || out.Ver != m.ver {
				t.Fatalf("step %d stale cas: status %d ver %d, want EXISTS with current v%d", step, out.Status, out.Ver, m.ver)
			}

		case 5: // append
			val := randVal()
			out, err := c.AppendString(k, val)
			if err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
			if m == nil {
				if out.Status != protocol.RMWStatusNotStored {
					t.Fatalf("step %d append absent: status %d", step, out.Status)
				}
			} else {
				if !out.Stored() {
					t.Fatalf("step %d append: status %d", step, out.Status)
				}
				mutated(step, "append", k, append(append([]byte{}, m.val...), val...), out)
			}

		case 6: // prepend
			val := randVal()
			out, err := c.PrependString(k, val)
			if err != nil {
				t.Fatalf("step %d prepend: %v", step, err)
			}
			if m == nil {
				if out.Status != protocol.RMWStatusNotStored {
					t.Fatalf("step %d prepend absent: status %d", step, out.Status)
				}
			} else {
				if !out.Stored() {
					t.Fatalf("step %d prepend: status %d", step, out.Status)
				}
				mutated(step, "prepend", k, append(append([]byte{}, val...), m.val...), out)
			}

		case 7: // incr
			delta := uint64(rng.Intn(100))
			out, err := c.IncrString(k, delta)
			if err != nil {
				t.Fatalf("step %d incr: %v", step, err)
			}
			if m == nil {
				if out.Status != protocol.RMWStatusNotFound {
					t.Fatalf("step %d incr absent: status %d", step, out.Status)
				}
				continue
			}
			n, numeric := partition.ParseDecimal(m.val)
			if !numeric {
				if out.Status != protocol.RMWStatusBadValue {
					t.Fatalf("step %d incr non-numeric %q: status %d", step, m.val, out.Status)
				}
				continue
			}
			want := n + delta // same 64-bit wraparound as the engine
			if !out.Stored() || out.Num != want {
				t.Fatalf("step %d incr %d+%d: status %d num %d, want %d", step, n, delta, out.Status, out.Num, want)
			}
			mutated(step, "incr", k, []byte(strconv.FormatUint(want, 10)), out)

		case 8: // decr
			delta := uint64(rng.Intn(100))
			out, err := c.DecrString(k, delta)
			if err != nil {
				t.Fatalf("step %d decr: %v", step, err)
			}
			if m == nil {
				if out.Status != protocol.RMWStatusNotFound {
					t.Fatalf("step %d decr absent: status %d", step, out.Status)
				}
				continue
			}
			n, numeric := partition.ParseDecimal(m.val)
			if !numeric {
				if out.Status != protocol.RMWStatusBadValue {
					t.Fatalf("step %d decr non-numeric %q: status %d", step, m.val, out.Status)
				}
				continue
			}
			want := uint64(0)
			if n >= delta {
				want = n - delta // memcached floors at zero
			}
			if !out.Stored() || out.Num != want {
				t.Fatalf("step %d decr %d-%d: status %d num %d, want %d", step, n, delta, out.Status, out.Num, want)
			}
			mutated(step, "decr", k, []byte(strconv.FormatUint(want, 10)), out)

		case 9: // touch never bumps the version
			out, err := c.TouchString(k, time.Hour)
			if err != nil {
				t.Fatalf("step %d touch: %v", step, err)
			}
			if m == nil {
				if out.Status != protocol.RMWStatusNotFound {
					t.Fatalf("step %d touch absent: status %d", step, out.Status)
				}
			} else if !out.Stored() || out.Ver != m.ver {
				t.Fatalf("step %d touch: status %d ver %d, want STORED with unchanged v%d", step, out.Status, out.Ver, m.ver)
			}

		case 10: // delete
			found, err := c.DeleteString(k)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if found != (m != nil) {
				t.Fatalf("step %d delete(%s): found=%v, model present=%v", step, k, found, m != nil)
			}
			delete(model, string(k))
		}
	}

	// Closing sweep: every key must match the model exactly.
	for _, k := range keys {
		v, ver, found, err := c.GetsString(k)
		if err != nil {
			t.Fatal(err)
		}
		m := model[string(k)]
		if (m != nil) != found {
			t.Fatalf("final gets(%s): found=%v, model present=%v", k, found, m != nil)
		}
		if m != nil && (!bytes.Equal(v, m.val) || ver != m.ver) {
			t.Fatalf("final gets(%s) = %q v%d, model %q v%d", k, v, ver, m.val, m.ver)
		}
	}
}
