// Package cluster maps the CPHash 60-bit key space onto the member nodes
// of a multi-server deployment. It is the client-side analogue of the
// paper's Figure 13/14 setup, where one client machine spreads keys over
// many memcached-class server instances; here the spreading is factored
// into a reusable routing layer so the load generator, the client SDK and
// the examples all share one source of truth for key→node placement.
//
// The design follows the fixed-continuum hash rings used by production
// storage engines (e.g. the influxdb tsm1 ring): the key space is first
// folded onto a constant number of slots — 256, the top eight bits of the
// mixed key — and the slots, not the keys, are what get assigned to nodes.
// Keys never move between slots; membership changes only remap slots.
//
// Slot→node assignment uses highest-random-weight (rendezvous) hashing:
// every (node, slot) pair gets a deterministic score and each slot is owned
// by its highest-scoring member. That gives the two properties the routing
// layer needs, by construction rather than by bookkeeping:
//
//   - Determinism: the assignment is a pure function of the member-ID set.
//     Two processes (or one process before and after a restart) that see
//     the same membership route every key identically, with no shared
//     state and no dependence on join order.
//
//   - Minimal movement: adding a node moves exactly the slots the new node
//     wins (every moved slot moves TO it); removing a node moves exactly
//     the slots it owned (every moved slot moves FROM it). No third node's
//     slots are ever disturbed.
//
// A Ring is not safe for concurrent use; callers that mutate membership
// while routing (none of the in-tree ones do) must provide their own
// locking.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"cphash/internal/partition"
	"cphash/internal/protocol"
)

// Slots is the fixed size of the hash continuum. Every key deterministically
// folds onto one of these slots, and membership changes remap slots, never
// keys. 256 keeps the owner table a single cache-friendly array while still
// spreading load evenly over any practical node count.
const Slots = 256

// MaxNodes bounds ring membership: with 256 slots, more members than slots
// could not all own keys.
const MaxNodes = Slots

// The SCAN/PURGE wire slot bitmap indexes this same continuum; the two
// constants must agree (both expressions are negative if they diverge in
// either direction, and constant underflow of a uint fails to compile).
const (
	_ = uint(Slots - protocol.SlotCount)
	_ = uint(protocol.SlotCount - Slots)
)

// SlotOf returns the continuum slot of a fixed 60-bit key: the top eight
// bits of the splitmix64-mixed key. The same mixer drives bucket and
// partition selection inside the servers, but those consume low bits, so
// slot choice is independent of intra-server placement.
func SlotOf(key uint64) int {
	return partition.SlotOfKey(key)
}

// SlotOfString returns the continuum slot of a string key, which routes
// through its 60-bit protocol hash so client and server agree on placement.
func SlotOfString(key []byte) int {
	return SlotOf(protocol.HashStringKey(key))
}

// Ring is a fixed 256-slot continuum over a set of member nodes.
type Ring struct {
	ids    []string // member IDs, sorted, unique
	hashes []uint64 // FNV-1a of each ID, aligned with ids
	owner  [Slots]uint16
}

// New returns a ring over the given member IDs (typically "host:port"
// addresses). IDs must be non-empty and unique; order does not matter.
func New(ids []string) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if len(ids) > MaxNodes {
		return nil, fmt.Errorf("cluster: %d nodes exceed the %d-slot continuum", len(ids), MaxNodes)
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate node %q", id)
		}
	}
	r := &Ring{ids: sorted}
	r.hashes = make([]uint64, len(sorted))
	for i, id := range sorted {
		r.hashes[i] = idHash(id)
	}
	r.assign()
	return r, nil
}

// MustNew is New that panics on error, for tests and constant call sites.
func MustNew(ids []string) *Ring {
	r, err := New(ids)
	if err != nil {
		panic(err)
	}
	return r
}

// Clone returns an independent copy of the ring; mutating one does not
// affect the other. Callers that publish snapshots of a mutable ring
// (the client SDK) hand out clones.
func (r *Ring) Clone() *Ring {
	return &Ring{
		ids:    append([]string(nil), r.ids...),
		hashes: append([]uint64(nil), r.hashes...),
		owner:  r.owner,
	}
}

// idHash seeds a member's rendezvous scores from its ID.
func idHash(id string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return h.Sum64()
}

// score is the rendezvous weight of member hash h for a slot. Mixing the
// slot through splitmix64 first decorrelates scores across slots even for
// adjacent slot numbers.
func score(h uint64, slot int) uint64 {
	return partition.Mix64(h ^ partition.Mix64(uint64(slot)+0x9e3779b97f4a7c15))
}

// assign recomputes the owner table from the member set. It is a pure
// function of the sorted ID list: ties (only possible under a 64-bit hash
// collision between distinct IDs) break toward the lexicographically
// smaller ID, so the result is still deterministic.
func (r *Ring) assign() {
	for s := 0; s < Slots; s++ {
		best, bestScore := 0, score(r.hashes[0], s)
		for i := 1; i < len(r.hashes); i++ {
			if sc := score(r.hashes[i], s); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		r.owner[s] = uint16(best)
	}
}

// Nodes returns the member IDs in sorted order (a copy).
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.ids...)
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.ids) }

// Contains reports whether id is a member.
func (r *Ring) Contains(id string) bool { return r.indexOf(id) >= 0 }

// Owner returns the member that owns a continuum slot.
func (r *Ring) Owner(slot int) string {
	return r.ids[r.owner[slot]]
}

// Owners snapshots the whole owner table as member IDs. Migration planners
// diff two of these to learn which slots moved where.
func (r *Ring) Owners() [Slots]string {
	return r.ownerIDs()
}

// Standby returns the slot's second-ranked member by rendezvous score —
// the member the slot would land on if its owner departed, and therefore
// the natural home for the slot's replica. Returns "" on a single-member
// ring. Allocation-free: the client read path consults it per request.
//
// The replication design leans on a rendezvous identity here: removing a
// slot's owner reassigns the slot to exactly this member (the scores of
// the survivors are unchanged by the removal, so the previous runner-up
// wins). Placing each slot's replica on Standby(slot) thus means failover
// promotion needs no data movement at all — RemoveNode(owner) points the
// slot at the member already holding its replicated data. The ring
// property test asserts this identity over random memberships.
func (r *Ring) Standby(slot int) string {
	if len(r.ids) < 2 {
		return ""
	}
	owner := int(r.owner[slot])
	second, secondScore := -1, uint64(0)
	for i, h := range r.hashes {
		if i == owner {
			continue
		}
		sc := score(h, slot)
		// Ties break toward the lexicographically smaller ID, matching
		// assign(): ids is sorted, so the first index at a score wins.
		if second < 0 || sc > secondScore {
			second, secondScore = i, sc
		}
	}
	return r.ids[second]
}

// RankedOwner returns the member at the given rendezvous rank for a
// slot: rank 0 is the owner, rank 1 the standby, rank 2 the standby's
// standby, and so on ("" when rank is out of range). Allocation-free —
// the client read path consults it per follower-routed request when
// falling through a replica chain — via iterative selection instead of
// the sort RankedOwners performs: each step finds the best (score, idx)
// pair strictly after the previous pick in descending-score,
// ascending-index order, the exact order assign() and RankedOwners use.
//
// The rendezvous rank-shift identity generalizes the Standby one:
// removing the owner of a slot leaves every survivor's score untouched,
// so each member at rank i moves to rank i-1. A replica chain placed on
// ranks 1..d-1 therefore survives d-1 successive owner failures with no
// data movement at all: every promotion hands the slot to a member
// already holding it. The ring property test asserts the identity over
// random memberships.
func (r *Ring) RankedOwner(slot, rank int) string {
	if rank < 0 || rank >= len(r.ids) {
		return ""
	}
	prevIdx := -1
	var prevScore uint64
	for k := 0; k <= rank; k++ {
		best := -1
		var bestScore uint64
		for i, h := range r.hashes {
			sc := score(h, slot)
			if prevIdx >= 0 && (sc > prevScore || (sc == prevScore && i <= prevIdx)) {
				continue // already picked at an earlier rank
			}
			// Strict > keeps the smallest index on a score tie, matching
			// assign()'s lexicographic tie-break (ids is sorted).
			if best < 0 || sc > bestScore {
				best, bestScore = i, sc
			}
		}
		prevIdx, prevScore = best, bestScore
	}
	return r.ids[prevIdx]
}

// Replicas returns the members holding a slot's replicas under a
// replication factor of depth: the rendezvous ranks 1..depth-1, in rank
// order (nil when depth <= 1 or the ring has a single member). The
// owner (rank 0) is excluded; depth is clamped to the member count.
func (r *Ring) Replicas(slot, depth int) []string {
	ranked := r.RankedOwners(slot, depth)
	if len(ranked) <= 1 {
		return nil
	}
	return ranked[1:]
}

// RankedOwners returns the top-k members for a slot in descending
// rendezvous-score order; rank 0 is the owner, rank 1 the standby, and
// so on. k is clamped to the member count. Replica chains of depth d
// place copies on ranks 1..d-1.
func (r *Ring) RankedOwners(slot, k int) []string {
	if k > len(r.ids) {
		k = len(r.ids)
	}
	if k <= 0 {
		return nil
	}
	type ranked struct {
		idx   int
		score uint64
	}
	all := make([]ranked, len(r.hashes))
	for i, h := range r.hashes {
		all[i] = ranked{i, score(h, slot)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].idx < all[b].idx // lexicographic tie-break, as assign()
	})
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = r.ids[all[i].idx]
	}
	return out
}

// NodeOf routes a fixed 60-bit key to its owning member.
func (r *Ring) NodeOf(key uint64) string {
	return r.ids[r.owner[SlotOf(key)]]
}

// NodeOfString routes a string key to its owning member.
func (r *Ring) NodeOfString(key []byte) string {
	return r.ids[r.owner[SlotOfString(key)]]
}

// SlotCounts reports how many continuum slots each member owns — the
// ring-level per-node load statistic (keys spread uniformly over slots, so
// slot share approximates key share).
func (r *Ring) SlotCounts() map[string]int {
	out := make(map[string]int, len(r.ids))
	for _, id := range r.ids {
		out[id] = 0
	}
	for s := 0; s < Slots; s++ {
		out[r.ids[r.owner[s]]]++
	}
	return out
}

// SlotsOf returns the continuum slots owned by one member, ascending.
func (r *Ring) SlotsOf(id string) []int {
	idx := r.indexOf(id)
	if idx < 0 {
		return nil
	}
	var out []int
	for s := 0; s < Slots; s++ {
		if int(r.owner[s]) == idx {
			out = append(out, s)
		}
	}
	return out
}

func (r *Ring) indexOf(id string) int {
	i := sort.SearchStrings(r.ids, id)
	if i < len(r.ids) && r.ids[i] == id {
		return i
	}
	return -1
}

// AddNode adds a member and rebalances, returning the slots that moved.
// Rendezvous hashing guarantees every moved slot moves to the new member;
// the property test asserts it.
func (r *Ring) AddNode(id string) (moved []int, err error) {
	if id == "" {
		return nil, fmt.Errorf("cluster: empty node ID")
	}
	if r.indexOf(id) >= 0 {
		return nil, fmt.Errorf("cluster: node %q already present", id)
	}
	if len(r.ids) == MaxNodes {
		return nil, fmt.Errorf("cluster: ring is full (%d nodes)", MaxNodes)
	}
	before := r.ownerIDs()
	i := sort.SearchStrings(r.ids, id)
	r.ids = append(r.ids[:i], append([]string{id}, r.ids[i:]...)...)
	r.hashes = make([]uint64, len(r.ids))
	for j, m := range r.ids {
		r.hashes[j] = idHash(m)
	}
	r.assign()
	return r.diff(before), nil
}

// RemoveNode removes a member and rebalances, returning the slots that
// moved — exactly the slots the departed member owned. The last member
// cannot be removed; a ring always routes somewhere.
func (r *Ring) RemoveNode(id string) (moved []int, err error) {
	i := r.indexOf(id)
	if i < 0 {
		return nil, fmt.Errorf("cluster: node %q not in ring", id)
	}
	if len(r.ids) == 1 {
		return nil, fmt.Errorf("cluster: cannot remove the last node %q", id)
	}
	before := r.ownerIDs()
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	r.hashes = append(r.hashes[:i], r.hashes[i+1:]...)
	r.assign()
	return r.diff(before), nil
}

// ownerIDs snapshots the owner table as IDs (stable across reindexing).
func (r *Ring) ownerIDs() [Slots]string {
	var out [Slots]string
	for s := 0; s < Slots; s++ {
		out[s] = r.ids[r.owner[s]]
	}
	return out
}

// diff lists the slots whose owner changed relative to a snapshot.
func (r *Ring) diff(before [Slots]string) []int {
	var moved []int
	for s := 0; s < Slots; s++ {
		if before[s] != r.ids[r.owner[s]] {
			moved = append(moved, s)
		}
	}
	return moved
}
