package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cphash/internal/partition"
	"cphash/internal/protocol"
)

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:9090", i+1)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New accepted an empty member set")
	}
	if _, err := New([]string{"a", ""}); err == nil {
		t.Error("New accepted an empty node ID")
	}
	if _, err := New([]string{"a", "b", "a"}); err == nil {
		t.Error("New accepted a duplicate node")
	}
	if _, err := New(nodeNames(MaxNodes + 1)); err == nil {
		t.Errorf("New accepted %d nodes", MaxNodes+1)
	}
	if r, err := New(nodeNames(MaxNodes)); err != nil || r.Len() != MaxNodes {
		t.Errorf("New rejected a full ring: %v", err)
	}
}

// Slot assignment must be a pure function of the member set: same members,
// any insertion order, any process — same owner for every slot. A fresh
// ring stands in for "another process / after restart" because Ring keeps
// no hidden state.
func TestAssignmentDeterminism(t *testing.T) {
	nodes := nodeNames(5)
	a := MustNew(nodes)

	shuffled := append([]string(nil), nodes...)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := MustNew(shuffled)

	// And a ring that arrives at the same membership via Add/Remove churn.
	c := MustNew(append([]string(nil), nodes[:3]...))
	if _, err := c.AddNode("transient:1"); err != nil {
		t.Fatal(err)
	}
	for _, id := range nodes[3:] {
		if _, err := c.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.RemoveNode("transient:1"); err != nil {
		t.Fatal(err)
	}

	for s := 0; s < Slots; s++ {
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("slot %d: order-dependent assignment (%s vs %s)", s, a.Owner(s), b.Owner(s))
		}
		if a.Owner(s) != c.Owner(s) {
			t.Fatalf("slot %d: history-dependent assignment (%s vs %s)", s, a.Owner(s), c.Owner(s))
		}
	}
	for _, key := range []uint64{0, 1, 7, 1 << 59, uint64(partition.MaxKey)} {
		if a.NodeOf(key) != b.NodeOf(key) {
			t.Fatalf("key %d routes differently across identical rings", key)
		}
	}
}

func TestSlotOfRangeAndMasking(t *testing.T) {
	for _, key := range []uint64{0, 1, 12345, uint64(partition.MaxKey)} {
		s := SlotOf(key)
		if s < 0 || s >= Slots {
			t.Fatalf("SlotOf(%d) = %d out of range", key, s)
		}
	}
	// Keys are routed by their 60-bit value: high bits must not matter.
	if SlotOf(42) != SlotOf(42|1<<63) {
		t.Error("SlotOf depends on bits above the 60-bit key space")
	}
}

func TestStringKeysRouteThroughProtocolHash(t *testing.T) {
	r := MustNew(nodeNames(3))
	for _, k := range []string{"", "a", "user:1234", "some-much-longer-cache-key"} {
		key := []byte(k)
		if got, want := SlotOfString(key), SlotOf(protocol.HashStringKey(key)); got != want {
			t.Fatalf("SlotOfString(%q) = %d, want %d (hash routing)", k, got, want)
		}
		if got, want := r.NodeOfString(key), r.NodeOf(protocol.HashStringKey(key)); got != want {
			t.Fatalf("NodeOfString(%q) = %s, want %s", k, got, want)
		}
	}
}

func TestBalance(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		r := MustNew(nodeNames(n))
		counts := r.SlotCounts()
		if len(counts) != n {
			t.Fatalf("n=%d: SlotCounts has %d entries", n, len(counts))
		}
		total, fair := 0, Slots/n
		for id, c := range counts {
			total += c
			// Rendezvous balance is statistical; allow a wide band but
			// catch gross skew (a node owning half or nothing).
			if c < fair/3 || c > fair*3 {
				t.Errorf("n=%d: node %s owns %d slots (fair share %d)", n, id, c, fair)
			}
		}
		if total != Slots {
			t.Fatalf("n=%d: slot counts sum to %d, want %d", n, total, Slots)
		}
	}
}

// Adding a node must move slots only TO the new node, and the resulting
// assignment must equal a fresh ring over the grown member set.
func TestAddNodeMinimalMovement(t *testing.T) {
	nodes := nodeNames(4)
	r := MustNew(nodes)
	before := make(map[int]string, Slots)
	for s := 0; s < Slots; s++ {
		before[s] = r.Owner(s)
	}

	const newcomer = "10.0.0.99:9090"
	moved, err := r.AddNode(newcomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) == 0 {
		t.Fatal("AddNode moved no slots; newcomer owns nothing")
	}
	movedSet := map[int]bool{}
	for _, s := range moved {
		movedSet[s] = true
		if got := r.Owner(s); got != newcomer {
			t.Fatalf("slot %d moved to %s, not the added node", s, got)
		}
	}
	for s := 0; s < Slots; s++ {
		if !movedSet[s] && r.Owner(s) != before[s] {
			t.Fatalf("slot %d changed owner (%s→%s) without being reported moved",
				s, before[s], r.Owner(s))
		}
	}
	fresh := MustNew(append(append([]string(nil), nodes...), newcomer))
	for s := 0; s < Slots; s++ {
		if r.Owner(s) != fresh.Owner(s) {
			t.Fatalf("slot %d: incremental add (%s) differs from fresh ring (%s)",
				s, r.Owner(s), fresh.Owner(s))
		}
	}
}

// Removing a node must move exactly the slots it owned, and the resulting
// assignment must equal a fresh ring over the shrunk member set.
func TestRemoveNodeMinimalMovement(t *testing.T) {
	nodes := nodeNames(5)
	r := MustNew(nodes)
	victim := nodes[2]
	victimSlots := r.SlotsOf(victim)
	if len(victimSlots) == 0 {
		t.Fatalf("victim %s owns no slots; pick a different fixture", victim)
	}

	moved, err := r.RemoveNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(moved, victimSlots) {
		t.Fatalf("moved %v, want exactly the victim's slots %v", moved, victimSlots)
	}
	for _, s := range moved {
		if r.Owner(s) == victim {
			t.Fatalf("slot %d still owned by removed node", s)
		}
	}
	remaining := append(append([]string(nil), nodes[:2]...), nodes[3:]...)
	fresh := MustNew(remaining)
	for s := 0; s < Slots; s++ {
		if r.Owner(s) != fresh.Owner(s) {
			t.Fatalf("slot %d: incremental remove (%s) differs from fresh ring (%s)",
				s, r.Owner(s), fresh.Owner(s))
		}
	}
}

// Churn property: across random add/remove sequences, every rebalance
// moves only slots touching the changed node, and membership invariants
// hold.
func TestChurnProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := MustNew(nodeNames(3))
	live := map[string]bool{}
	for _, id := range r.Nodes() {
		live[id] = true
	}
	next := 100
	for step := 0; step < 60; step++ {
		if rng.Intn(2) == 0 && r.Len() < 12 {
			id := fmt.Sprintf("churn-%d:9", next)
			next++
			moved, err := r.AddNode(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range moved {
				if r.Owner(s) != id {
					t.Fatalf("step %d: add moved slot %d to %s", step, s, r.Owner(s))
				}
			}
			live[id] = true
		} else if r.Len() > 1 {
			ids := r.Nodes()
			id := ids[rng.Intn(len(ids))]
			want := r.SlotsOf(id)
			moved, err := r.RemoveNode(id)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(moved, want) {
				t.Fatalf("step %d: remove of %s moved %v, want %v", step, id, moved, want)
			}
			delete(live, id)
		}
		if r.Len() != len(live) {
			t.Fatalf("step %d: ring has %d members, want %d", step, r.Len(), len(live))
		}
	}
}

func TestAddRemoveValidation(t *testing.T) {
	r := MustNew([]string{"a:1"})
	if _, err := r.AddNode("a:1"); err == nil {
		t.Error("AddNode accepted a duplicate")
	}
	if _, err := r.AddNode(""); err == nil {
		t.Error("AddNode accepted an empty ID")
	}
	if _, err := r.RemoveNode("missing:1"); err == nil {
		t.Error("RemoveNode accepted an unknown node")
	}
	if _, err := r.RemoveNode("a:1"); err == nil {
		t.Error("RemoveNode removed the last node")
	}
	full := MustNew(nodeNames(MaxNodes))
	if _, err := full.AddNode("overflow:1"); err == nil {
		t.Error("AddNode grew past the continuum size")
	}
}

func TestSlotsOfUnknownNode(t *testing.T) {
	r := MustNew(nodeNames(2))
	if got := r.SlotsOf("missing:1"); got != nil {
		t.Errorf("SlotsOf(unknown) = %v, want nil", got)
	}
}

// TestStandbyIsPromotionTarget asserts the identity the replication layer
// is built on: for every slot, the standby (rank-1 rendezvous scorer) is
// exactly the member the slot reassigns to when its owner is removed.
// Checked over random membership sets and sizes.
func TestStandbyIsPromotionTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		names := nodeNames(16)
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		r := MustNew(names[:n])
		for s := 0; s < Slots; s++ {
			owner, standby := r.Owner(s), r.Standby(s)
			if standby == "" || standby == owner {
				t.Fatalf("trial %d slot %d: bad standby %q (owner %q)", trial, s, standby, owner)
			}
			after := r.Clone()
			if _, err := after.RemoveNode(owner); err != nil {
				t.Fatal(err)
			}
			if got := after.Owner(s); got != standby {
				t.Fatalf("trial %d slot %d: owner after removing %s is %s, standby said %s",
					trial, s, owner, got, standby)
			}
		}
	}
}

// TestRankedOwners checks rank order against Owner/Standby and brute-force
// score sorting, plus clamping behavior.
func TestRankedOwners(t *testing.T) {
	r := MustNew(nodeNames(5))
	for s := 0; s < Slots; s++ {
		ranks := r.RankedOwners(s, 3)
		if len(ranks) != 3 {
			t.Fatalf("slot %d: got %d ranks, want 3", s, len(ranks))
		}
		if ranks[0] != r.Owner(s) {
			t.Fatalf("slot %d: rank 0 %s != owner %s", s, ranks[0], r.Owner(s))
		}
		if ranks[1] != r.Standby(s) {
			t.Fatalf("slot %d: rank 1 %s != standby %s", s, ranks[1], r.Standby(s))
		}
		seen := map[string]bool{}
		for _, id := range ranks {
			if seen[id] {
				t.Fatalf("slot %d: duplicate member %s in ranks", s, id)
			}
			seen[id] = true
		}
	}
	if got := r.RankedOwners(0, 99); len(got) != 5 {
		t.Fatalf("RankedOwners over-clamp: got %d, want 5", len(got))
	}
	if got := r.RankedOwners(0, 0); got != nil {
		t.Fatalf("RankedOwners(0) = %v, want nil", got)
	}
	single := MustNew(nodeNames(1))
	if got := single.Standby(7); got != "" {
		t.Fatalf("Standby on single-member ring = %q, want empty", got)
	}
}

// TestRankedOwnerMatchesRankedOwners pins the allocation-free selector
// against the sorting implementation over random memberships, including
// out-of-range ranks.
func TestRankedOwnerMatchesRankedOwners(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfeed))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		names := nodeNames(16)
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		r := MustNew(names[:n])
		for s := 0; s < Slots; s += 7 {
			ranked := r.RankedOwners(s, n)
			for rank := 0; rank < n; rank++ {
				if got := r.RankedOwner(s, rank); got != ranked[rank] {
					t.Fatalf("trial %d slot %d rank %d: RankedOwner %q != RankedOwners %q",
						trial, s, rank, got, ranked[rank])
				}
			}
			if got := r.RankedOwner(s, n); got != "" {
				t.Fatalf("RankedOwner beyond membership = %q, want empty", got)
			}
			if got := r.RankedOwner(s, -1); got != "" {
				t.Fatalf("RankedOwner(-1) = %q, want empty", got)
			}
		}
	}
}

// TestRankShiftIdentity asserts the depth-N generalization of the
// standby identity: removing a slot's owner shifts every remaining rank
// up by exactly one, so a replica chain on ranks 1..d-1 survives the
// owner's death with no data movement (the new owner and every new
// standby already hold the slot).
func TestRankShiftIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc4a15))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		names := nodeNames(16)
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		r := MustNew(names[:n])
		depth := 2 + rng.Intn(3)
		if depth > n {
			depth = n
		}
		for s := 0; s < Slots; s++ {
			before := r.RankedOwners(s, depth)
			after := r.Clone()
			if _, err := after.RemoveNode(before[0]); err != nil {
				t.Fatal(err)
			}
			got := after.RankedOwners(s, depth-1)
			for i := range got {
				if got[i] != before[i+1] {
					t.Fatalf("trial %d slot %d: rank %d after removal = %s, want pre-removal rank %d = %s",
						trial, s, i, got[i], i+1, before[i+1])
				}
			}
			if reps := r.Replicas(s, depth); len(reps) != depth-1 || reps[0] != before[1] {
				t.Fatalf("trial %d slot %d: Replicas(%d) = %v, want ranks 1..%d of %v",
					trial, s, depth, reps, depth-1, before)
			}
		}
	}
	single := MustNew(nodeNames(1))
	if got := single.Replicas(0, 3); got != nil {
		t.Fatalf("Replicas on single-member ring = %v, want nil", got)
	}
}
