package core

import (
	"math"
	"runtime"
	"time"

	"cphash/internal/partition"
	"cphash/internal/ring"
)

// OpType identifies an asynchronous operation kind.
type OpType uint8

const (
	// OpLookup finds a key and pins its element until Release.
	OpLookup OpType = iota
	// OpInsert stores a value under a key.
	OpInsert
	// OpDelete removes a key.
	OpDelete
	// OpRMW executes an atomic read-modify-write on the owning server.
	OpRMW
)

// Op is an in-flight asynchronous operation (a future). Ops are created by
// Client.LookupAsync/InsertAsync/DeleteAsync, complete during Client.Poll
// (or Wait/WaitAll), and must be returned with Client.Release, which also
// sends the Decref message for lookup hits. Ops are recycled; do not retain
// one past Release.
type Op struct {
	typ    OpType
	key    Key
	insVal []byte // insert payload; copied into the element on reply
	elem   *partition.Element
	server int
	done   bool
	hit    bool
	next   *Op // client free list
	// rmw is the read-modify-write descriptor for OpRMW (inputs filled by
	// the client, results written by the server before its reply) and the
	// version carrier for explicit-version inserts. Embedding it in the Op
	// keeps RMW issue/complete allocation-free: the descriptor recycles
	// with the Op.
	rmw partition.RMWReq
}

// Type returns the operation kind.
func (o *Op) Type() OpType { return o.typ }

// Key returns the operation's key.
func (o *Op) Key() Key { return o.key }

// Done reports whether the reply has been processed. It becomes true only
// inside Client.Poll/Wait/WaitAll on the owning goroutine.
func (o *Op) Done() bool { return o.done }

// Hit reports success: a lookup found the key; an insert obtained space; a
// delete found (and removed) the key. Valid only after Done.
func (o *Op) Hit() bool { return o.hit }

// Value returns the value bytes of a completed lookup hit. The slice
// aliases partition memory owned by the server; it is valid until Release.
func (o *Op) Value() []byte {
	if !o.done || !o.hit || o.typ != OpLookup {
		return nil
	}
	return o.elem.Value()
}

// Size returns the value size of a completed lookup hit.
func (o *Op) Size() int {
	if !o.done || !o.hit || o.typ != OpLookup {
		return 0
	}
	return o.elem.Size()
}

// Version returns the CAS version of a completed lookup hit (0 otherwise).
func (o *Op) Version() uint64 {
	if !o.done || !o.hit || o.typ != OpLookup {
		return 0
	}
	return o.elem.Version()
}

// RMW returns the op's read-modify-write descriptor: inputs as issued
// and, once the op is Done, the server-written results (Status, OutVer,
// Num). Valid until Release.
func (o *Op) RMW() *partition.RMWReq { return &o.rmw }

// pendingFIFO is a per-server queue of ops awaiting replies. Replies are
// matched to requests by order alone: rings are FIFO per (client, server)
// pair and only Lookup/Insert/Delete produce replies.
type pendingFIFO struct {
	buf  []*Op
	head int
}

func (q *pendingFIFO) push(o *Op) { q.buf = append(q.buf, o) }

func (q *pendingFIFO) pop() *Op {
	o := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return o
}

func (q *pendingFIFO) len() int { return len(q.buf) - q.head }

// Client is a handle through which one goroutine issues operations to the
// table — the paper's "client thread". It owns one request/reply ring pair
// per server. A Client must not be used from multiple goroutines.
type Client struct {
	t    *Table
	id   int
	to   []*ring.SPSC[request]
	from []*ring.SPSC[reply]

	pending     []pendingFIFO
	replyBuf    []reply
	outstanding int
	// maxOutstanding bounds in-flight replied operations (the paper's
	// pipeline/batch size; 1,000 in §6.1). IssueAsync blocks (polling)
	// at the bound.
	maxOutstanding int

	freeOps *Op

	// stats
	issued    int64
	completed int64
}

// SetPipeline bounds the number of outstanding operations (default: 1,000,
// the paper's batch size). The bound must be ≥ 1.
func (c *Client) SetPipeline(n int) {
	if n < 1 {
		n = 1
	}
	c.maxOutstanding = n
}

// Outstanding returns the number of issued-but-incomplete operations.
func (c *Client) Outstanding() int { return c.outstanding }

// Issued and Completed return lifetime operation counts.
func (c *Client) Issued() int64    { return c.issued }
func (c *Client) Completed() int64 { return c.completed }

func (c *Client) newOp() *Op {
	if o := c.freeOps; o != nil {
		c.freeOps = o.next
		*o = Op{}
		return o
	}
	return &Op{}
}

// LookupAsync issues a lookup. The returned Op completes during a future
// Poll/Wait; on a hit, Release sends the Decref.
func (c *Client) LookupAsync(key Key) *Op {
	o := c.newOp()
	o.typ = OpLookup
	o.key = key & keyMask
	c.issue(o, request{keyop: makeKeyop(opLookup, key)})
	return o
}

// InsertAsync issues an insert of value under key. The value bytes are
// copied into server-allocated space when the allocation reply arrives (the
// paper's client-copies rule, §3.2), then a Ready message publishes them.
// The caller must keep value unchanged until the op is Done.
func (c *Client) InsertAsync(key Key, value []byte) *Op {
	return c.InsertTTLAsync(key, value, 0)
}

// InsertTTLAsync is InsertAsync with a time-to-live: the element becomes
// invisible once ttl elapses on the server's clock (resolution one
// millisecond, rounded up; capped at ~49 days). ttl <= 0 means "never
// expires". The TTL rides the insert message's packed arg word, so TTL
// inserts cost exactly the paper's two messages.
func (c *Client) InsertTTLAsync(key Key, value []byte, ttl time.Duration) *Op {
	o := c.newOp()
	o.typ = OpInsert
	o.key = key & keyMask
	if uint64(len(value)) > math.MaxUint32 {
		// The insert message packs the size into 32 bits of the arg word;
		// a larger value must fail cleanly, not store a wrapped size.
		o.done = true
		return o
	}
	o.insVal = value
	c.issue(o, request{keyop: makeKeyop(opInsert, key), arg: makeInsertArg(len(value), ttlMillis(ttl))})
	return o
}

// InsertTTLVerAsync is InsertTTLAsync with an explicit CAS version — the
// replay-side primitive that keeps versions stable across recovery,
// follower catch-up and slot migration. ver 0 falls back to the normal
// assign-next insert. The version rides a pointer to the op's embedded
// descriptor, so it costs no allocation and the message count is
// unchanged.
func (c *Client) InsertTTLVerAsync(key Key, value []byte, ttl time.Duration, ver uint64) *Op {
	if ver == 0 {
		return c.InsertTTLAsync(key, value, ttl)
	}
	o := c.newOp()
	o.typ = OpInsert
	o.key = key & keyMask
	if uint64(len(value)) > math.MaxUint32 {
		o.done = true
		return o
	}
	o.insVal = value
	o.rmw.Ver = ver
	c.issue(o, request{keyop: makeKeyop(opInsert, key), arg: makeInsertArg(len(value), ttlMillis(ttl)), rmw: &o.rmw})
	return o
}

// RMWAsync issues an atomic read-modify-write described by req (CAS,
// add/replace, append/prepend, incr/decr, touch). The descriptor's input
// fields are copied into the op; its StrKey/Val slices must stay
// unchanged until the op is Done. Results are read from Op.RMW() after
// completion; Hit reports Status == RMWStored.
func (c *Client) RMWAsync(key Key, req partition.RMWReq) *Op {
	o := c.newOp()
	o.typ = OpRMW
	o.key = key & keyMask
	o.rmw = req
	c.issue(o, request{keyop: makeKeyop(opRMW, key), rmw: &o.rmw})
	return o
}

// ttlMillis converts a duration to the wire's 32-bit millisecond TTL,
// rounding up so any positive ttl expires, and capping at MaxUint32
// (~49 days). The cap is checked before the round-up so durations near
// MaxInt64 cannot overflow into an arbitrary finite TTL.
func ttlMillis(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	if ttl > math.MaxUint32*time.Millisecond {
		return math.MaxUint32
	}
	return uint32((ttl + time.Millisecond - 1) / time.Millisecond)
}

// DeleteAsync issues a delete.
func (c *Client) DeleteAsync(key Key) *Op {
	o := c.newOp()
	o.typ = OpDelete
	o.key = key & keyMask
	c.issue(o, request{keyop: makeKeyop(opDelete, key)})
	return o
}

// issue routes a request to the key's server, applying the pipeline bound.
func (c *Client) issue(o *Op, r request) {
	if c.maxOutstanding == 0 {
		c.maxOutstanding = 1000 // the paper's §6.1 pipeline depth
	}
	for c.outstanding >= c.maxOutstanding {
		c.FlushAll()
		if c.Poll() == 0 {
			runtime.Gosched()
		}
	}
	s := c.t.PartitionOf(o.key)
	o.server = s
	c.send(s, r)
	c.pending[s].push(o)
	c.outstanding++
	c.issued++
}

// send enqueues a request to server s, spinning (and polling replies, so
// the system cannot deadlock) while the ring is full.
func (c *Client) send(s int, r request) {
	rq := c.to[s]
	if rq.Produce(r) {
		return
	}
	rq.Flush()
	c.t.kick(s) // the server may be parked while we wait for ring space
	for !rq.Produce(r) {
		if c.Poll() == 0 {
			runtime.Gosched()
		}
	}
}

// FlushAll publishes all privately buffered requests on every ring and
// wakes any parked server that now has work. Call it after issuing a
// batch; Wait and WaitAll call it implicitly.
func (c *Client) FlushAll() {
	for s, r := range c.to {
		r.Flush()
		if r.Len() > 0 {
			c.t.kick(s)
		}
	}
}

// Flush publishes buffered requests destined to key k's server only.
func (c *Client) Flush(k Key) {
	s := c.t.PartitionOf(k & keyMask)
	c.to[s].Flush()
	if c.to[s].Len() > 0 {
		c.t.kick(s)
	}
}

// Poll drains available replies from every server and completes their ops,
// returning how many ops completed. It never blocks.
func (c *Client) Poll() int {
	done := 0
	for s := range c.from {
		if c.pending[s].len() == 0 {
			continue
		}
		for {
			n := c.from[s].ConsumeBatch(c.replyBuf)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				c.complete(s, c.replyBuf[i])
			}
			done += n
		}
	}
	return done
}

// complete finishes the oldest pending op on server s with the given reply.
func (c *Client) complete(s int, rep reply) {
	o := c.pending[s].pop()
	o.done = true
	c.outstanding--
	c.completed++
	switch o.typ {
	case OpLookup:
		o.elem = rep.elem
		o.hit = rep.elem != nil
	case OpInsert:
		if rep.elem == nil {
			o.hit = false
			break
		}
		// The server allocated NOT_READY space; copy the bytes here in the
		// client (so large values wipe the *client's* cache, not the
		// server's — §3.2) and publish with Ready.
		copy(rep.elem.Value(), o.insVal)
		c.send(s, request{keyop: makeKeyop(opReady, o.key), elem: rep.elem})
		o.hit = true
		o.insVal = nil
	case OpDelete:
		o.hit = rep.elem != nil // deleteFound sentinel: the key existed
	case OpRMW:
		// The server wrote Status/OutVer/Num into o.rmw before replying;
		// consuming the reply from the SPSC ring is the acquire that makes
		// those writes visible here.
		o.hit = o.rmw.Status == partition.RMWStored
	}
}

// Wait blocks (polling) until o is done, flushing pending requests first.
func (c *Client) Wait(o *Op) {
	if o.done {
		return
	}
	for !o.done {
		// Flushing every iteration also publishes Ready messages generated
		// while completing insert replies inside Poll.
		c.FlushAll()
		if c.Poll() == 0 {
			runtime.Gosched()
		}
	}
}

// WaitAll blocks until every outstanding op is done.
func (c *Client) WaitAll() {
	for c.outstanding > 0 {
		c.FlushAll()
		if c.Poll() == 0 {
			runtime.Gosched()
		}
	}
	c.FlushAll() // publish Ready/Decref generated by the final completions
}

// Release finishes the caller's use of op: for a lookup hit it sends the
// Decref that lets the server reclaim the element, then recycles the Op.
// Every op must be Released exactly once, after Done.
func (c *Client) Release(o *Op) {
	if !o.done {
		c.Wait(o)
	}
	if o.typ == OpLookup && o.hit {
		c.send(o.server, request{keyop: makeKeyop(opDecref, o.key), elem: o.elem})
	}
	o.elem = nil
	o.insVal = nil
	o.rmw = partition.RMWReq{} // drop StrKey/Val references
	o.next = c.freeOps
	c.freeOps = o
}

// --- synchronous convenience API ---

// Get looks up key and appends the value to dst, returning the extended
// slice and whether the key was found. The returned bytes are a copy and
// remain valid indefinitely.
func (c *Client) Get(key Key, dst []byte) ([]byte, bool) {
	o := c.LookupAsync(key)
	c.Flush(key)
	c.Wait(o)
	ok := o.hit
	if ok {
		dst = append(dst, o.Value()...)
	}
	c.Release(o)
	return dst, ok
}

// Put stores value under key, reporting whether space was obtained.
func (c *Client) Put(key Key, value []byte) bool {
	return c.PutTTL(key, value, 0)
}

// PutTTL stores value under key with a time-to-live (0 = never expires),
// reporting whether space was obtained.
func (c *Client) PutTTL(key Key, value []byte, ttl time.Duration) bool {
	o := c.InsertTTLAsync(key, value, ttl)
	c.Flush(key)
	c.Wait(o)
	ok := o.hit
	c.Release(o)
	return ok
}

// PutTTLVer stores value under key with an explicit CAS version (replay
// paths; ver 0 = assign next), reporting whether space was obtained.
func (c *Client) PutTTLVer(key Key, value []byte, ttl time.Duration, ver uint64) bool {
	o := c.InsertTTLVerAsync(key, value, ttl, ver)
	c.Flush(key)
	c.Wait(o)
	ok := o.hit
	c.Release(o)
	return ok
}

// RMW synchronously executes one read-modify-write, writing the results
// (Status, OutVer, Num) back into req.
func (c *Client) RMW(key Key, req *partition.RMWReq) {
	o := c.RMWAsync(key, *req)
	c.Flush(key)
	c.Wait(o)
	*req = o.rmw
	c.Release(o)
}

// Delete removes key, reporting whether it existed. It returns once the
// server has processed the delete.
func (c *Client) Delete(key Key) bool {
	o := c.DeleteAsync(key)
	c.Flush(key)
	c.Wait(o)
	ok := o.hit
	c.Release(o)
	return ok
}

// Close waits for outstanding operations, lets the servers drain any
// fire-and-forget Ready/Decref messages still queued, and deactivates the
// client slot so servers stop polling its rings. The Client must not be
// used afterwards.
func (c *Client) Close() {
	c.WaitAll()
	c.FlushAll()
	for _, r := range c.to {
		for !r.Drained() {
			if c.t.stop.Load() {
				break // servers already gone; nothing will drain it
			}
			runtime.Gosched()
		}
	}
	c.t.clientActive[c.id].Store(false)
}
