package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestOpAccessorsBeforeCompletion: an un-polled op reports not-done and
// yields no value.
func TestOpAccessorsBeforeCompletion(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	c.Put(1, []byte("x"))
	o := c.LookupAsync(1)
	if o.Done() {
		t.Fatal("op done before any poll")
	}
	if o.Value() != nil || o.Size() != 0 || o.Hit() {
		t.Fatal("incomplete op leaked state")
	}
	if o.Type() != OpLookup || o.Key() != 1 {
		t.Fatalf("op metadata wrong: %v %d", o.Type(), o.Key())
	}
	c.Wait(o)
	if !o.Done() || !o.Hit() || string(o.Value()) != "x" || o.Size() != 1 {
		t.Fatalf("completed op wrong: %v %q", o.Hit(), o.Value())
	}
	c.Release(o)
}

// TestReleaseImplicitlyWaits: releasing an un-polled op must first wait.
func TestReleaseImplicitlyWaits(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	c.Put(5, []byte("v"))
	o := c.LookupAsync(5)
	c.Release(o) // not waited explicitly
	if got, ok := c.Get(5, nil); !ok || string(got) != "v" {
		t.Fatalf("table corrupted after implicit-wait release: %q %v", got, ok)
	}
}

// TestOpRecycling: released ops are reused, not leaked; the free list must
// hand back clean state.
func TestOpRecycling(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	c.Put(9, []byte("nine"))
	first := c.LookupAsync(9)
	c.Wait(first)
	c.Release(first)
	second := c.LookupAsync(10) // miss
	if second != first {
		t.Log("op not recycled (allocator may have its reasons); not fatal")
	}
	c.Wait(second)
	if second.Hit() || second.Value() != nil {
		t.Fatal("recycled op leaked previous state")
	}
	c.Release(second)
}

// TestLargeValuesSpanLines: values much larger than a cache line round-trip
// intact (multi-line value allocation + client copy path).
func TestLargeValuesSpanLines(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 2, CapacityBytes: 8 << 20})
	c := tb.MustClient(0)
	defer c.Close()
	for _, size := range []int{63, 64, 65, 1000, 64 << 10} {
		val := bytes.Repeat([]byte{byte(size)}, size)
		for i := range val {
			val[i] = byte(i * size)
		}
		if !c.Put(Key(size), val) {
			t.Fatalf("Put of %d-byte value failed", size)
		}
		got, ok := c.Get(Key(size), nil)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("%d-byte value corrupted (got %d bytes, ok=%v)", size, len(got), ok)
		}
	}
}

// TestSetPipelineClamps: a zero/negative pipeline clamps to 1 and the
// client still works.
func TestSetPipelineClamps(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	c.SetPipeline(-5)
	for k := Key(0); k < 50; k++ {
		if !c.Put(k, []byte("abc")) {
			t.Fatal("Put failed with pipeline 1")
		}
	}
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after sync ops", c.Outstanding())
	}
}

// TestIssuedCompletedCounters: lifetime counters agree with the op stream.
func TestIssuedCompletedCounters(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	for i := 0; i < 10; i++ {
		c.Put(Key(i), []byte("v")) // 1 issued op each
	}
	for i := 0; i < 5; i++ {
		c.Get(Key(i), nil) // 1 issued op each
	}
	if c.Issued() != 15 || c.Completed() != 15 {
		t.Fatalf("issued/completed = %d/%d, want 15/15", c.Issued(), c.Completed())
	}
}

// TestDeleteAsyncCompletes: DeleteAsync produces a synchronizable op.
func TestDeleteAsyncCompletes(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	c.Put(3, []byte("x"))
	o := c.DeleteAsync(3)
	c.Wait(o)
	if !o.Done() || !o.Hit() {
		t.Fatal("delete op did not complete")
	}
	c.Release(o)
	if _, ok := c.Get(3, nil); ok {
		t.Fatal("key survived async delete")
	}
}

// TestInterleavedInsertLookupSameKey: within one client, a lookup issued
// after an insert completes (synchronously) must see the new value.
func TestInterleavedInsertLookupSameKey(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 1})
	c := tb.MustClient(0)
	defer c.Close()
	buf := make([]byte, 8)
	for i := 0; i < 200; i++ {
		binary.LittleEndian.PutUint64(buf, uint64(i))
		if !c.Put(7, buf) {
			t.Fatal("Put failed")
		}
		got, ok := c.Get(7, nil)
		if !ok || binary.LittleEndian.Uint64(got) != uint64(i) {
			t.Fatalf("iteration %d: read %v %v", i, got, ok)
		}
	}
}

// TestZeroLengthValue: empty values round-trip as hits.
func TestZeroLengthValue(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	if !c.Put(11, nil) {
		t.Fatal("Put(nil) failed")
	}
	v, ok := c.Get(11, nil)
	if !ok || len(v) != 0 {
		t.Fatalf("empty value lookup = %v, %v", v, ok)
	}
}

// TestManySmallClients: every client slot works and can be closed in any
// order.
func TestManySmallClients(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 2, MaxClients: 8})
	clients := make([]*Client, 8)
	for i := range clients {
		clients[i] = tb.MustClient(i)
		if !clients[i].Put(Key(100+i), []byte{byte(i)}) {
			t.Fatalf("client %d Put failed", i)
		}
	}
	// Close even slots first, then odd.
	for i := 0; i < 8; i += 2 {
		clients[i].Close()
	}
	for i := 1; i < 8; i += 2 {
		if v, ok := clients[i].Get(Key(100+i), nil); !ok || v[0] != byte(i) {
			t.Fatalf("client %d lost its key after peers closed", i)
		}
		clients[i].Close()
	}
}
