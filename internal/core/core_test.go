package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"cphash/internal/partition"
)

func newTestTable(t testing.TB, cfg Config) *Table {
	t.Helper()
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 1 << 20
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 4
	}
	if cfg.MaxClients == 0 {
		cfg.MaxClients = 2
	}
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = 64
	}
	cfg.Seed = 12345
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Partitions: 4, CapacityBytes: 64}); err == nil {
		t.Error("accepted capacity smaller than per-partition minimum")
	}
	if _, err := New(Config{Partitions: 1, CapacityBytes: 1 << 20, RingCapacity: 3}); err == nil {
		t.Error("accepted non-power-of-two ring capacity")
	}
	tb, err := New(Config{Partitions: 3, CapacityBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.NumPartitions() != 4 {
		t.Errorf("partitions = %d, want rounded-up 4", tb.NumPartitions())
	}
}

func TestPutGetSync(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()

	val := []byte("hello, cphash")
	if !c.Put(42, val) {
		t.Fatal("Put failed")
	}
	got, ok := c.Get(42, nil)
	if !ok {
		t.Fatal("Get missed after Put")
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, want %q", got, val)
	}
	if _, ok := c.Get(43, nil); ok {
		t.Fatal("Get hit for never-inserted key")
	}
	c.Delete(42)
	if _, ok := c.Get(42, nil); ok {
		t.Fatal("Get hit after Delete")
	}
}

func TestGetAppendsToDst(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	c.Put(1, []byte("abc"))
	dst := []byte("xy")
	dst, ok := c.Get(1, dst)
	if !ok || string(dst) != "xyabc" {
		t.Fatalf("Get append = %q, %v", dst, ok)
	}
}

func TestManyKeysAllPartitions(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 8})
	c := tb.MustClient(0)
	defer c.Close()
	const n = 2000
	buf := make([]byte, 8)
	for k := Key(0); k < n; k++ {
		binary.LittleEndian.PutUint64(buf, uint64(k)*3+1)
		if !c.Put(k, buf) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	for k := Key(0); k < n; k++ {
		got, ok := c.Get(k, nil)
		if !ok {
			t.Fatalf("Get(%d) missed", k)
		}
		if v := binary.LittleEndian.Uint64(got); v != uint64(k)*3+1 {
			t.Fatalf("Get(%d) = %d, want %d", k, v, uint64(k)*3+1)
		}
	}
	// Work should be spread across all 8 partitions.
	for p := 0; p < tb.NumPartitions(); p++ {
		if tb.PartitionStats(p).Inserts == 0 {
			t.Errorf("partition %d received no inserts", p)
		}
	}
}

func TestAsyncPipeline(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	c.SetPipeline(256)

	const n = 5000
	// InsertAsync requires each value buffer stable until its op is Done,
	// so every in-flight op gets its own slot in vals.
	vals := make([][]byte, 64)
	for i := range vals {
		vals[i] = make([]byte, 8)
	}
	ops := make([]*Op, 0, n)
	for k := Key(0); k < n; k++ {
		val := vals[len(ops)]
		binary.LittleEndian.PutUint64(val, uint64(k))
		ops = append(ops, c.InsertAsync(k, val))
		if len(ops) == 64 {
			c.WaitAll()
			for _, o := range ops {
				if !o.Hit() {
					t.Fatal("insert failed")
				}
				c.Release(o)
			}
			ops = ops[:0]
		}
	}
	c.WaitAll()
	for _, o := range ops {
		c.Release(o)
	}

	// Pipelined lookups.
	lops := make([]*Op, 0, 512)
	hits := 0
	for k := Key(0); k < n; k++ {
		lops = append(lops, c.LookupAsync(k))
		if len(lops) == 512 {
			c.WaitAll()
			for _, o := range lops {
				if o.Hit() {
					if got := binary.LittleEndian.Uint64(o.Value()); got != uint64(o.Key()) {
						t.Fatalf("key %d: value %d", o.Key(), got)
					}
					hits++
				}
				c.Release(o)
			}
			lops = lops[:0]
		}
	}
	c.WaitAll()
	for _, o := range lops {
		if o.Hit() {
			hits++
		}
		c.Release(o)
	}
	if hits != n {
		t.Fatalf("hits = %d, want %d", hits, n)
	}
}

func TestInsertFailureWhenTooLarge(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 1, CapacityBytes: 4096})
	c := tb.MustClient(0)
	defer c.Close()
	if c.Put(1, make([]byte, 1<<20)) {
		t.Fatal("Put of value larger than partition succeeded")
	}
	if !c.Put(2, make([]byte, 64)) {
		t.Fatal("small Put failed after oversized Put")
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 2, CapacityBytes: 8 << 10})
	c := tb.MustClient(0)
	defer c.Close()
	val := make([]byte, 32)
	for k := Key(0); k < 2000; k++ {
		if !c.Put(k, val) {
			t.Fatalf("Put(%d) failed under eviction pressure", k)
		}
	}
	st := tb.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 2000×(32B+hdr) into 8 KB")
	}
	// Recent keys should still be resident (LRU evicts old ones).
	if _, ok := c.Get(1999, nil); !ok {
		t.Fatal("most recent key evicted")
	}
}

func TestLookupPinsAcrossEviction(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 1, CapacityBytes: 4 << 10})
	c := tb.MustClient(0)
	defer c.Close()
	want := []byte("pinned-value-123")
	if !c.Put(7, want) {
		t.Fatal("Put failed")
	}
	o := c.LookupAsync(7)
	c.Wait(o)
	if !o.Hit() {
		t.Fatal("lookup missed")
	}
	// Storm of inserts to force eviction of key 7.
	junk := make([]byte, 64)
	for k := Key(100); k < 400; k++ {
		c.Put(k, junk)
	}
	if _, ok := c.Get(7, nil); ok {
		t.Log("key 7 still resident; eviction pressure insufficient (not fatal)")
	}
	if !bytes.Equal(o.Value(), want) {
		t.Fatalf("pinned value corrupted: %q", o.Value())
	}
	c.Release(o)
}

func TestTwoClientsConcurrent(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 4, MaxClients: 2, CapacityBytes: 4 << 20})
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := tb.MustClient(id)
			defer c.Close()
			base := Key(id) << 32
			buf := make([]byte, 8)
			for k := Key(0); k < 3000; k++ {
				binary.LittleEndian.PutUint64(buf, uint64(base+k))
				if !c.Put(base+k, buf) {
					t.Errorf("client %d: Put failed", id)
					return
				}
			}
			for k := Key(0); k < 3000; k++ {
				got, ok := c.Get(base+k, nil)
				if !ok || binary.LittleEndian.Uint64(got) != uint64(base+k) {
					t.Errorf("client %d: Get(%d) = %v %v", id, base+k, got, ok)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	c.Put(1, []byte("x"))
	c.Get(1, nil)
	c.Get(2, nil)
	c.Close()
	st := tb.Stats()
	if st.Inserts != 1 || st.Lookups != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Insert translates to insert+ready, lookup-hit to lookup+decref:
	// 1 insert + 1 ready + 2 lookups + 1 decref = 5 messages.
	if st.Messages != 5 {
		t.Fatalf("messages = %d, want 5", st.Messages)
	}
}

func TestKeysAreMaskedTo60Bits(t *testing.T) {
	tb := newTestTable(t, Config{})
	c := tb.MustClient(0)
	defer c.Close()
	full := Key(0xFFFFFFFFFFFFFFFF)
	c.Put(full, []byte("top"))
	// The same key masked to 60 bits must alias it.
	got, ok := c.Get(full&MaxKey, nil)
	if !ok || string(got) != "top" {
		t.Fatalf("60-bit masking broken: %q %v", got, ok)
	}
}

func TestClientIDValidation(t *testing.T) {
	tb := newTestTable(t, Config{MaxClients: 1})
	if _, err := tb.Client(1); err == nil {
		t.Fatal("out-of-range client id accepted")
	}
	if _, err := tb.Client(-1); err == nil {
		t.Fatal("negative client id accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	tb := newTestTable(t, Config{})
	tb.Close()
	tb.Close() // second close must be a no-op
	if _, err := tb.Client(0); err == nil {
		t.Fatal("Client succeeded after Close")
	}
}

func TestQuickVsMapModel(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 4, CapacityBytes: 4 << 20})
	c := tb.MustClient(0)
	defer c.Close()
	model := map[Key]string{}
	f := func(ops []uint32) bool {
		for _, op := range ops {
			k := Key(op % 128)
			switch (op >> 8) % 3 {
			case 0:
				v := fmt.Sprintf("v%d-%d", k, op)
				if !c.Put(k, []byte(v)) {
					return false
				}
				model[k] = v
			case 1:
				got, ok := c.Get(k, nil)
				want, wantOK := model[k]
				if ok != wantOK || (ok && string(got) != want) {
					return false
				}
			case 2:
				c.Delete(k)
				delete(model, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestString(t *testing.T) {
	cases := []struct {
		r    request
		want string
	}{
		{request{keyop: makeKeyop(opLookup, 5)}, "Lookup(5)"},
		{request{keyop: makeKeyop(opInsert, 6), arg: 16}, "Insert(6, 16 bytes)"},
		{request{keyop: makeKeyop(opReady, 7)}, "Ready(7)"},
		{request{keyop: makeKeyop(opDecref, 8)}, "Decref(8)"},
		{request{keyop: makeKeyop(opDelete, 9)}, "Delete(9)"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestPartitionOfIsStable(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 8})
	for k := Key(0); k < 1000; k++ {
		p := tb.PartitionOf(k)
		if p < 0 || p >= 8 {
			t.Fatalf("PartitionOf(%d) = %d out of range", k, p)
		}
		if tb.PartitionOf(k) != p {
			t.Fatalf("PartitionOf(%d) unstable", k)
		}
	}
}

// TestSmallRingBackpressure uses a tiny ring so the full-ring send path and
// reply-driven backpressure actually execute.
func TestSmallRingBackpressure(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 1, RingCapacity: 8, CapacityBytes: 1 << 20})
	c := tb.MustClient(0)
	defer c.Close()
	c.SetPipeline(64) // far above ring capacity of 8
	val := []byte("12345678")
	ops := make([]*Op, 0, 200)
	for k := Key(0); k < 200; k++ {
		ops = append(ops, c.InsertAsync(k, val))
	}
	c.WaitAll()
	for _, o := range ops {
		if !o.Hit() {
			t.Fatal("insert failed under backpressure")
		}
		c.Release(o)
	}
	for k := Key(0); k < 200; k++ {
		if _, ok := c.Get(k, nil); !ok {
			t.Fatalf("Get(%d) missed", k)
		}
	}
}

func TestGOMAXPROCSOne(t *testing.T) {
	// The repository must work on a single-P runtime (the paper's servers
	// spin; ours must yield). Run a small workload under GOMAXPROCS(1).
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	tb := newTestTable(t, Config{Partitions: 2})
	c := tb.MustClient(0)
	defer c.Close()
	for k := Key(0); k < 500; k++ {
		if !c.Put(k, []byte("abcdefgh")) {
			t.Fatal("Put failed")
		}
	}
	for k := Key(0); k < 500; k++ {
		if _, ok := c.Get(k, nil); !ok {
			t.Fatalf("Get(%d) missed", k)
		}
	}
}

func TestRandomEvictionPolicy(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 2, CapacityBytes: 8 << 10, Policy: partition.EvictRandom})
	c := tb.MustClient(0)
	defer c.Close()
	for k := Key(0); k < 1000; k++ {
		if !c.Put(k, []byte("abcdefgh")) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	if tb.Stats().Evictions == 0 {
		t.Fatal("no evictions under random policy")
	}
}

func BenchmarkCorePutGet(b *testing.B) {
	tb := MustNew(Config{Partitions: 2, CapacityBytes: 8 << 20, MaxClients: 1, Seed: 1})
	defer tb.Close()
	c := tb.MustClient(0)
	defer c.Close()
	val := []byte("01234567")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key(i) & 0xFFFF
		if i%3 == 0 {
			c.Put(k, val)
		} else {
			c.Get(k, nil)
		}
	}
}

// TestBatchLowWaterConfig exercises the adaptive-consume knob at both
// extremes: disabled (drain immediately) and well above the line size.
// Results must be identical — the watermark trades latency for batch
// density, never correctness.
func TestBatchLowWaterConfig(t *testing.T) {
	for _, lw := range []int{-1, 16} {
		t.Run(fmt.Sprintf("lowWater=%d", lw), func(t *testing.T) {
			table := MustNew(Config{
				Partitions:    2,
				CapacityBytes: 1 << 20,
				MaxClients:    1,
				BatchLowWater: lw,
				Seed:          1,
			})
			defer table.Close()
			c := table.MustClient(0)
			defer c.Close()
			for k := Key(0); k < 200; k++ {
				if !c.Put(k, []byte{byte(k)}) {
					t.Fatalf("put %d failed", k)
				}
			}
			for k := Key(0); k < 200; k++ {
				v, ok := c.Get(k, nil)
				if !ok || len(v) != 1 || v[0] != byte(k) {
					t.Fatalf("get %d = %v (ok=%v)", k, v, ok)
				}
			}
		})
	}
}
