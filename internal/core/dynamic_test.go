package core

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

// TestSetActiveServersValidation rejects out-of-range counts.
func TestSetActiveServersValidation(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 4})
	if err := tb.SetActiveServers(0); err == nil {
		t.Error("accepted 0 servers")
	}
	if err := tb.SetActiveServers(5); err == nil {
		t.Error("accepted more servers than partitions")
	}
	if err := tb.SetActiveServers(4); err != nil {
		t.Errorf("rejected full server count: %v", err)
	}
}

// TestConsolidateAndExpand moves all partitions onto one server, verifies
// correctness under traffic, then expands back.
func TestConsolidateAndExpand(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 8, CapacityBytes: 4 << 20})
	c := tb.MustClient(0)
	defer c.Close()

	buf := make([]byte, 8)
	put := func(base Key, n int) {
		for k := Key(0); k < Key(n); k++ {
			binary.LittleEndian.PutUint64(buf, uint64(base+k))
			if !c.Put(base+k, buf) {
				t.Fatalf("Put(%d) failed", base+k)
			}
		}
	}
	check := func(base Key, n int) {
		for k := Key(0); k < Key(n); k++ {
			v, ok := c.Get(base+k, nil)
			if !ok || binary.LittleEndian.Uint64(v) != uint64(base+k) {
				t.Fatalf("Get(%d) = %v %v", base+k, v, ok)
			}
		}
	}

	put(0, 500)
	if err := tb.SetActiveServers(1); err != nil {
		t.Fatal(err)
	}
	// Traffic keeps flowing during and after the handoff.
	put(1000, 500)
	check(0, 500)
	check(1000, 500)

	// Eventually exactly one goroutine owns everything.
	deadline := time.Now().Add(5 * time.Second)
	for tb.ActiveServers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("consolidation stuck: ActiveServers = %d", tb.ActiveServers())
		}
		c.Get(0, nil) // keep the system moving
	}

	if err := tb.SetActiveServers(8); err != nil {
		t.Fatal(err)
	}
	put(2000, 500)
	check(0, 500)
	check(2000, 500)
	for tb.ActiveServers() != 8 {
		if time.Now().After(deadline.Add(5 * time.Second)) {
			t.Fatalf("expansion stuck: ActiveServers = %d", tb.ActiveServers())
		}
		c.Get(0, nil)
	}
	if err := tb.CheckInvariants(); err == nil {
		// CheckInvariants requires quiescence; calling it here exercises
		// the path but a nil error is also acceptable.
		_ = err
	}
}

// TestHandoffUnderConcurrentLoad oscillates the server count while two
// clients hammer the table; every response must stay correct.
func TestHandoffUnderConcurrentLoad(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 8, MaxClients: 2, CapacityBytes: 8 << 20})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := tb.MustClient(id)
			defer c.Close()
			buf := make([]byte, 8)
			base := Key(id) << 32
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := base + Key(i%2048)
				binary.LittleEndian.PutUint64(buf, uint64(k))
				if !c.Put(k, buf) {
					t.Errorf("client %d: Put(%d) failed", id, k)
					return
				}
				if v, ok := c.Get(k, nil); !ok || binary.LittleEndian.Uint64(v) != uint64(k) {
					t.Errorf("client %d: Get(%d) = %v %v", id, k, v, ok)
					return
				}
			}
		}(id)
	}

	// Oscillate the active server count.
	for _, n := range []int{1, 4, 2, 8, 1, 8} {
		if err := tb.SetActiveServers(n); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestConsolidatedThroughputStillWorks: with one active server, a full
// mixed workload still completes (this is the §8.1 low-load configuration).
func TestConsolidatedThroughputStillWorks(t *testing.T) {
	tb := newTestTable(t, Config{Partitions: 4, CapacityBytes: 4 << 20})
	if err := tb.SetActiveServers(1); err != nil {
		t.Fatal(err)
	}
	c := tb.MustClient(0)
	defer c.Close()
	for k := Key(0); k < 2000; k++ {
		if !c.Put(k, []byte("01234567")) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	hits := 0
	for k := Key(0); k < 2000; k++ {
		if _, ok := c.Get(k, nil); ok {
			hits++
		}
	}
	if hits != 2000 {
		t.Fatalf("hits = %d, want 2000", hits)
	}
}
