// Package core implements CPHASH itself (Section 3 of the paper): a hash
// table partitioned across per-core server goroutines, where client
// goroutines send Lookup/Insert/Ready/Decref operations over shared-memory
// SPSC rings instead of locking shared state.
//
// # Mapping from the paper to this implementation
//
//   - "server thread pinned to a hardware thread" → one goroutine per
//     partition that calls runtime.LockOSThread (Go cannot pin to a *core*,
//     only to an OS thread; see DESIGN.md for why the shape of the results
//     survives this substitution).
//   - message passing via pre-allocated circular buffers → internal/ring
//     SPSC rings, one pair per (client, server), with temporary write
//     indices and cache-line-granularity flushing exactly as in §3.4.
//   - batching: clients keep up to Config.MaxOutstanding operations in
//     flight and flush request rings on cache-line boundaries or when they
//     start waiting; the paper's sweet spot of 512–8,192 outstanding
//     requests is reproduced by the batch-size ablation bench.
//   - message packing: the paper packs 8-byte lookups (8/line) and 16-byte
//     inserts (4/line). Go's GC must be able to see the *Element pointers
//     that Ready/Decref carry, so requests here are one 24-byte struct (2.6
//     per line) and replies one 8-byte pointer (8 per line). The constant
//     factor differs; the batching economics (one line transfer carries
//     several messages, indices are published per line) are identical.
package core

import (
	"fmt"

	"cphash/internal/partition"
)

// Key is re-exported so callers need not import internal/partition.
type Key = partition.Key

// MaxKey is the largest valid key (60 bits, as in the paper).
const MaxKey = partition.MaxKey

// opcode identifies a request message type. It occupies the top 4 bits of
// the packed key word, which is why keys are limited to 60 bits (§3.1).
type opcode uint64

const (
	opNop opcode = iota
	// opLookup asks the server to find keyop's key, bump its refcount and
	// LRU position, and reply with the element (nil on miss).
	opLookup
	// opInsert asks the server to allocate arg bytes under keyop's key and
	// reply with a NOT_READY element holding one reference (nil if space
	// cannot be made).
	opInsert
	// opReady publishes elem's value bytes (the client has finished
	// copying) and releases the inserter's reference. No reply.
	opReady
	// opDecref releases one reference on elem. No reply.
	opDecref
	// opDelete unlinks keyop's key. Replies with deleteFound when the key
	// existed and a nil element otherwise; either way the reply lets
	// callers synchronize on completion.
	opDelete
	// opRMW executes an atomic read-modify-write (CAS, add/replace,
	// append/prepend, incr/decr, touch) described by the request's rmw
	// field, entirely on the owning server goroutine — the partition's
	// single-owner discipline is what makes the composite read+write
	// atomic without any locking. The server writes results back into the
	// client-owned RMWReq before replying (the reply ring's
	// release/acquire pair publishes them), and replies with a nil
	// element.
	opRMW
)

// deleteFound is the sentinel reply element for a delete that removed a
// key. It keeps the reply message a single pointer (8 per cache line, as
// in the paper) while still carrying the found bit; it is never
// dereferenced.
var deleteFound = &partition.Element{}

const (
	opShift = 60
	keyMask = 1<<opShift - 1
)

// request is one client→server message.
//
// Packing: op lives in the top 4 bits of keyop, the 60-bit key below it.
// arg carries the value size (low 32 bits) and TTL in milliseconds (high
// 32 bits; 0 = never expires) for opInsert. elem carries the element for
// opReady/opDecref. rmw points at the client-owned descriptor for opRMW
// (and, for opInsert, optionally carries an explicit CAS version for
// replay/migration — nil means assign-next). The struct is 32 bytes; the
// ring flushes every 4 messages (128 B = 2 cache lines), preserving the
// paper's several-messages-per-line batching even though Go's pointer
// rules stop us from matching its exact byte density.
type request struct {
	keyop uint64
	arg   uint64
	elem  *partition.Element
	rmw   *partition.RMWReq
}

// makeInsertArg packs a value size and TTL into a request's arg word.
func makeInsertArg(size int, ttlMillis uint32) uint64 {
	return uint64(uint32(size)) | uint64(ttlMillis)<<32
}

func (r request) insertSize() int   { return int(uint32(r.arg)) }
func (r request) insertTTL() uint32 { return uint32(r.arg >> 32) }

// requestLineMsgs is the request-ring flush granularity.
const requestLineMsgs = 4

// reply is one server→client message: the element for opLookup/opInsert
// (nil on miss/failure) or the deleteFound sentinel / nil for opDelete.
// Replies are matched to requests purely by FIFO order, as the rings
// preserve per-pair ordering.
type reply struct {
	elem *partition.Element
}

// replyLineMsgs is the reply-ring flush granularity (8-byte messages).
const replyLineMsgs = 8

func makeKeyop(op opcode, key Key) uint64 {
	return uint64(op)<<opShift | (key & keyMask)
}

func (r request) op() opcode { return opcode(r.keyop >> opShift) }
func (r request) key() Key   { return r.keyop & keyMask }

func (r request) String() string {
	switch r.op() {
	case opLookup:
		return fmt.Sprintf("Lookup(%d)", r.key())
	case opInsert:
		if ttl := r.insertTTL(); ttl != 0 {
			return fmt.Sprintf("Insert(%d, %d bytes, ttl %dms)", r.key(), r.insertSize(), ttl)
		}
		return fmt.Sprintf("Insert(%d, %d bytes)", r.key(), r.insertSize())
	case opReady:
		return fmt.Sprintf("Ready(%d)", r.key())
	case opDecref:
		return fmt.Sprintf("Decref(%d)", r.key())
	case opDelete:
		return fmt.Sprintf("Delete(%d)", r.key())
	case opRMW:
		if r.rmw != nil {
			return fmt.Sprintf("RMW(%d, %v)", r.key(), r.rmw.Op)
		}
		return fmt.Sprintf("RMW(%d)", r.key())
	default:
		return fmt.Sprintf("op%d(%d)", r.op(), r.key())
	}
}
