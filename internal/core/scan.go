package core

import (
	"errors"
	"runtime"
	"time"

	"cphash/internal/partition"
)

// Slot-migration scan support. A partition's state may only ever be
// touched by the server goroutine that owns it (the whole point of CPHASH),
// so bulk iteration cannot simply walk t.parts from the caller. Instead the
// caller posts a scanJob into a one-deep per-partition mailbox; the owning
// server executes it at its next sweep — between batches, exactly like the
// §8.1 ownership handoffs — and the caller blocks until the job's channel
// closes. Each job is bounded (scanJobBuckets) so a migration never stalls
// the partition's regular traffic for long; ScanEntries/PurgeEntries chain
// bounded jobs and return a resumable cursor.

// ErrClosed is returned by scans posted to a closed (or closing) table.
var ErrClosed = errors.New("core: table closed")

// scanJob is one bounded iteration request executed by a partition's
// owning server goroutine.
type scanJob struct {
	start      int  // first bucket
	maxBuckets int  // bucket budget for this job
	maxEntries int  // entry budget (scan only)
	purge      bool // remove matching entries instead of copying them
	filter     func(Key) bool

	// results, valid once ch is closed
	entries []partition.ScanEntry
	removed int
	next    int
	done    bool

	ch chan struct{}
}

// scanJobBuckets bounds the buckets one job examines, i.e. the longest a
// server goroutine is away from its rings serving a migration.
const scanJobBuckets = 1 << 12

// scanCallBuckets bounds the buckets one ScanEntries/PurgeEntries call
// examines across jobs, i.e. the longest a *caller* (a kvserver worker
// serving one SCAN round trip) blocks before returning a resume cursor.
const scanCallBuckets = 1 << 16

// runScanJob executes a job against the local partition; called only by
// the owning server goroutine (from serverLoop).
func (t *Table) runScanJob(store *partition.Store, j *scanJob) {
	if j.purge {
		j.removed, j.next, j.done = store.PurgeBuckets(j.start, j.maxBuckets, j.filter)
	} else {
		j.entries, j.next, j.done = store.AppendScan(j.entries, j.start, j.maxBuckets, j.maxEntries, j.filter)
	}
	close(j.ch)
}

// postScanJob installs j in partition p's mailbox (spinning while another
// scan holds it), wakes the owner, and blocks until the job completes. The
// periodic re-kick makes the wait robust against ownership handoffs and
// park/wake races; the withdraw path keeps Close from stranding a waiter.
func (t *Table) postScanJob(p int, j *scanJob) error {
	for !t.scans[p].CompareAndSwap(nil, j) {
		if t.closed.Load() {
			return ErrClosed
		}
		runtime.Gosched()
	}
	for {
		t.kickServerAlways(int(t.owner[p].Load()))
		select {
		case <-j.ch:
			return nil
		case <-time.After(200 * time.Microsecond):
			if t.closed.Load() {
				// Withdraw if still posted; if a server already took the
				// job it will complete it synchronously, so keep waiting.
				if t.scans[p].CompareAndSwap(j, nil) {
					return ErrClosed
				}
			}
		}
	}
}

// ScanEntries copies live entries whose key satisfies filter (nil = all)
// out of the table, resuming at cursor (0 starts an iteration) and
// returning at least one entry when any remain within the call's bucket
// budget. It returns the entries, the cursor to resume at, and whether the
// whole table has been iterated. Any goroutine may call it, concurrently
// with regular traffic; entries inserted or removed while an iteration is
// in flight may or may not be observed (cache-migration semantics).
func (t *Table) ScanEntries(cursor uint64, maxEntries int, filter func(Key) bool) (entries []partition.ScanEntry, next uint64, done bool, err error) {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	p, bucket := partition.DecodeScanCursor(cursor)
	budget := scanCallBuckets
	for p < t.cfg.Partitions && budget > 0 && len(entries) < maxEntries {
		mb := scanJobBuckets
		if mb > budget {
			mb = budget
		}
		j := &scanJob{
			start:      bucket,
			maxBuckets: mb,
			maxEntries: maxEntries - len(entries),
			filter:     filter,
			entries:    entries,
			ch:         make(chan struct{}),
		}
		if err := t.postScanJob(p, j); err != nil {
			return entries, cursor, false, err
		}
		entries = j.entries
		if adv := j.next - bucket; adv > 0 {
			budget -= adv
		} else {
			budget--
		}
		if j.done {
			p, bucket = p+1, 0
		} else {
			bucket = j.next
		}
	}
	if p >= t.cfg.Partitions {
		return entries, 0, true, nil
	}
	return entries, partition.EncodeScanCursor(p, bucket), false, nil
}

// PurgeEntries removes live entries whose key satisfies filter (nil =
// all), with the same cursor/budget contract as ScanEntries. It returns
// how many entries this call removed.
func (t *Table) PurgeEntries(cursor uint64, filter func(Key) bool) (removed int, next uint64, done bool, err error) {
	p, bucket := partition.DecodeScanCursor(cursor)
	budget := scanCallBuckets
	for p < t.cfg.Partitions && budget > 0 {
		mb := scanJobBuckets
		if mb > budget {
			mb = budget
		}
		j := &scanJob{
			start:      bucket,
			maxBuckets: mb,
			purge:      true,
			filter:     filter,
			ch:         make(chan struct{}),
		}
		if err := t.postScanJob(p, j); err != nil {
			return removed, cursor, false, err
		}
		removed += j.removed
		if adv := j.next - bucket; adv > 0 {
			budget -= adv
		} else {
			budget--
		}
		if j.done {
			p, bucket = p+1, 0
		} else {
			bucket = j.next
		}
	}
	if p >= t.cfg.Partitions {
		return removed, 0, true, nil
	}
	return removed, partition.EncodeScanCursor(p, bucket), false, nil
}
