package core

import (
	"sync"
	"testing"
	"time"
)

// TestScanEntriesVisitsEverything: entries inserted through a client are
// all visible to a cursor-chained scan, exactly once, with values intact
// and TTLs preserved.
func TestScanEntriesVisitsEverything(t *testing.T) {
	tb := MustNew(Config{
		Partitions:    4,
		CapacityBytes: 1 << 20,
		MaxClients:    1,
		Seed:          1,
	})
	defer tb.Close()
	c := tb.MustClient(0)

	const n = 2000
	for k := uint64(0); k < n; k++ {
		var ttl time.Duration
		if k%5 == 0 {
			ttl = time.Hour
		}
		if !c.PutTTL(k, []byte{byte(k), byte(k >> 8)}, ttl) {
			t.Fatalf("put %d failed", k)
		}
	}
	// Read-back barrier: a lookup reply FIFO-follows the final Ready on
	// each (client, partition) ring, so after this loop every insert is
	// published and the scan below is deterministic.
	var dst []byte
	for k := uint64(0); k < n; k++ {
		if _, found := c.Get(k, dst[:0]); !found {
			t.Fatalf("read-back of %d missed", k)
		}
	}

	seen := map[Key]int{}
	cursor := uint64(0)
	for {
		entries, next, done, err := tb.ScanEntries(cursor, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			seen[e.Key]++
			if len(e.Value) != 2 || e.Value[0] != byte(e.Key) || e.Value[1] != byte(e.Key>>8) {
				t.Fatalf("key %d: bad value %v", e.Key, e.Value)
			}
			if e.Key%5 == 0 {
				if e.TTL <= 0 || e.TTL > time.Hour {
					t.Fatalf("key %d: TTL %v", e.Key, e.TTL)
				}
			} else if e.TTL != 0 {
				t.Fatalf("key %d: unexpected TTL %v", e.Key, e.TTL)
			}
		}
		if done {
			break
		}
		cursor = next
	}
	if len(seen) != n {
		t.Fatalf("saw %d keys, want %d", len(seen), n)
	}
	for k, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("key %d seen %d times", k, cnt)
		}
	}
	c.Close()
}

// TestScanEntriesFilterAndPurge: a filtered scan sees only matching keys;
// a filtered purge removes exactly those keys and leaves the rest
// readable.
func TestScanEntriesFilterAndPurge(t *testing.T) {
	tb := MustNew(Config{
		Partitions:    2,
		CapacityBytes: 1 << 20,
		MaxClients:    1,
		Seed:          7,
	})
	defer tb.Close()
	c := tb.MustClient(0)

	const n = 1000
	for k := uint64(0); k < n; k++ {
		if !c.Put(k, []byte{1}) {
			t.Fatalf("put %d failed", k)
		}
	}
	odd := func(k Key) bool { return k%2 == 1 }

	var got int
	cursor := uint64(0)
	for {
		entries, next, done, err := tb.ScanEntries(cursor, 100, odd)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Key%2 != 1 {
				t.Fatalf("filter leaked key %d", e.Key)
			}
		}
		got += len(entries)
		if done {
			break
		}
		cursor = next
	}
	if got != n/2 {
		t.Fatalf("filtered scan saw %d entries, want %d", got, n/2)
	}

	removed := 0
	cursor = 0
	for {
		r, next, done, err := tb.PurgeEntries(cursor, odd)
		if err != nil {
			t.Fatal(err)
		}
		removed += r
		if done {
			break
		}
		cursor = next
	}
	if removed != n/2 {
		t.Fatalf("purge removed %d, want %d", removed, n/2)
	}
	var dst []byte
	for k := uint64(0); k < n; k++ {
		_, found := c.Get(k, dst[:0])
		if want := k%2 == 0; found != want {
			t.Fatalf("Get(%d) found=%v after purge", k, found)
		}
	}
	c.Close()
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScanConcurrentWithTraffic: scans posted from several goroutines
// while a client hammers the table must neither deadlock nor corrupt the
// partitions (single-owner execution at sweep boundaries).
func TestScanConcurrentWithTraffic(t *testing.T) {
	tb := MustNew(Config{
		Partitions:    4,
		CapacityBytes: 1 << 20,
		MaxClients:    1,
		Seed:          3,
	})
	defer tb.Close()
	c := tb.MustClient(0)
	for k := uint64(0); k < 500; k++ {
		if !c.Put(k, []byte{byte(k)}) {
			t.Fatalf("put %d failed", k)
		}
	}

	stop := make(chan struct{})
	trafficDone := make(chan struct{})
	go func() { // traffic on the single client handle
		defer close(trafficDone)
		var dst []byte
		k := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Put(k%500, []byte{byte(k)})
			dst, _ = c.Get((k*31)%500, dst[:0])
			k++
		}
	}()

	var scanners sync.WaitGroup
	for g := 0; g < 3; g++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for round := 0; round < 20; round++ {
				cursor := uint64(0)
				for {
					_, next, done, err := tb.ScanEntries(cursor, 32, nil)
					if err != nil {
						t.Error(err)
						return
					}
					if done {
						break
					}
					cursor = next
				}
			}
		}()
	}
	scanned := make(chan struct{})
	go func() { scanners.Wait(); close(scanned) }()
	select {
	case <-scanned:
	case <-time.After(30 * time.Second):
		t.Fatal("scan under traffic did not finish in 30s (deadlock?)")
	}
	close(stop)
	<-trafficDone
	c.Close()
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
