package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/ring"
)

// Config parameterizes a CPHASH table.
type Config struct {
	// Partitions is the number of partitions and therefore the number of
	// server goroutines (the paper uses 80, one per core; a sensible
	// default on the host is runtime.GOMAXPROCS(0)). Rounded up to a power
	// of two so partition selection is a mask of the key hash.
	Partitions int
	// CapacityBytes is the total byte budget across all partitions
	// (values + one 64-byte header charge per element). It is divided
	// evenly; the paper keeps all partitions the same size (§3.1).
	CapacityBytes int
	// MaxClients is the number of client handles that may be created with
	// Table.Client; the rings for every (client, server) pair are
	// pre-allocated, exactly as in the paper.
	MaxClients int
	// RingCapacity is the per-direction ring capacity in messages for each
	// (client, server) pair. It bounds a client's outstanding operations
	// per server. 0 means ring.DefaultCapacity.
	RingCapacity int
	// Policy selects LRU (default) or random eviction.
	Policy partition.EvictionPolicy
	// BucketsPerPartition overrides the derived bucket count (0 = derive,
	// targeting ~1 element per bucket for 8-byte values as in §6).
	BucketsPerPartition int
	// LockOSThread dedicates an OS thread to each server goroutine. This is
	// the closest Go gets to the paper's core pinning; disable it in tests
	// or on single-CPU hosts where extra OS threads only add scheduling
	// pressure.
	LockOSThread bool
	// SpinBudget is how many empty polling sweeps a server performs before
	// yielding the processor. Higher values reduce wake-up latency at the
	// cost of burning cycles, mirroring the paper's always-spinning servers
	// (they measured 41% idle polling time at peak throughput). 0 means a
	// modest default suitable for shared machines.
	SpinBudget int
	// BatchLowWater is the adaptive-consume low watermark: a server that
	// finds a request ring non-empty but holding fewer than this many
	// messages briefly re-polls the producer index before draining, so
	// trickling traffic still amortizes into line-sized batches — the
	// paper's Figure 7 batch-size sensitivity, applied at the consumer.
	// 0 means one request cache line; negative disables the wait (drain
	// whatever is there immediately).
	BatchLowWater int
	// Seed makes eviction and bucket hashing deterministic for tests.
	Seed uint64
	// Clock supplies "now" in nanoseconds for TTL expiry (nil = wall
	// clock). Tests inject fake clocks to make expiry deterministic.
	Clock func() int64
	// Sink, when non-nil, supplies each partition's durability change sink
	// (internal/persist hands out one appender per partition). The sink is
	// invoked only by the partition's owning server goroutine, so the
	// single-producer contract holds even across §8.1 ownership handoffs —
	// a partition moves between goroutines only at sweep boundaries, never
	// mid-operation.
	Sink func(partition int) partition.ChangeSink
}

func (c *Config) setDefaults() error {
	if c.Partitions <= 0 {
		c.Partitions = runtime.GOMAXPROCS(0)
	}
	c.Partitions = ceilPow2(c.Partitions)
	if c.MaxClients <= 0 {
		c.MaxClients = 1
	}
	if c.RingCapacity == 0 {
		c.RingCapacity = ring.DefaultCapacity
	}
	if c.RingCapacity < requestLineMsgs || c.RingCapacity&(c.RingCapacity-1) != 0 {
		return fmt.Errorf("core: RingCapacity %d must be a power of two ≥ %d", c.RingCapacity, requestLineMsgs)
	}
	if c.SpinBudget <= 0 {
		c.SpinBudget = 16
	}
	if c.BatchLowWater == 0 {
		c.BatchLowWater = requestLineMsgs
	}
	if c.BatchLowWater < 0 {
		c.BatchLowWater = 1 // any published message drains immediately
	}
	per := c.CapacityBytes / c.Partitions
	if per < partition.HeaderBytes*2 {
		return fmt.Errorf("core: CapacityBytes %d gives only %d bytes per partition", c.CapacityBytes, per)
	}
	return nil
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats aggregates per-partition counters plus message-passing counters.
type Stats struct {
	partition.Stats
	// Messages is the number of requests processed by all servers.
	Messages int64
	// IdleSweeps counts server polling sweeps that found no work — the
	// paper reports its servers spend 41% of their time polling idle
	// buffers at peak load.
	IdleSweeps int64
}

// Table is a CPHASH hash table: Config.Partitions partition stores, each
// owned by a dedicated server goroutine, plus the ring fabric connecting
// them to up to Config.MaxClients client handles.
//
// All operations go through a Client; see Table.Client.
type Table struct {
	cfg   Config
	parts []*partition.Store

	// rings[c][s] is the pair of rings between client c and server s.
	toServer   [][]*ring.SPSC[request]
	fromServer [][]*ring.SPSC[reply]

	// clientActive[c] is set once client c has been handed out; servers
	// skip polling inactive clients' rings entirely (cheaper than the
	// paper's always-poll because MaxClients may exceed live clients).
	clientActive []atomic.Bool

	idleSweeps atomic.Int64
	messages   atomic.Int64

	// Idle-server parking. The paper's servers spin forever because they
	// own a core; on an oversubscribed host a spinning server starves the
	// Go scheduler (worst of all the netpoller, which is only checked when
	// a P goes idle). After parkAfterSweeps empty sweeps a server parks on
	// its wake channel; clients kick it after flushing requests.
	parked []atomic.Bool
	wake   []chan struct{}

	// Dynamic server threads (the paper's §8.1 future work): partitions
	// may be consolidated onto fewer server goroutines when load is low.
	// owner[p] is the server goroutine currently processing partition p;
	// target[p] is where the controller wants it. Ownership moves only at
	// the old owner's sweep boundary (it stores owner[p] = target[p]), so
	// exactly one goroutine ever touches a partition's state and rings.
	owner  []atomic.Int32
	target []atomic.Int32

	// scans[p] is partition p's one-deep scan mailbox: bulk iteration
	// (slot migration) posts bounded jobs here and the owning server
	// executes them at sweep boundaries, preserving single-owner access.
	scans []atomic.Pointer[scanJob]

	stop    atomic.Bool
	wg      sync.WaitGroup
	clientN atomic.Int32
	closed  atomic.Bool
}

// parkAfterSweeps is how many consecutive empty polling sweeps a server
// performs (yielding every SpinBudget of them) before parking.
const parkAfterSweeps = 256

// adaptiveSpinBudget bounds how many index re-polls a server spends
// waiting for a request ring to fill to the batch low-watermark. Each
// re-poll is one cache-hot atomic load, so the worst-case added latency
// is tens of nanoseconds — noise against a TCP round trip, and absent
// entirely for pipelined clients that publish whole lines.
const adaptiveSpinBudget = 32

// New builds the table and starts its server goroutines.
func New(cfg Config) (*Table, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	t := &Table{
		cfg:          cfg,
		parts:        make([]*partition.Store, cfg.Partitions),
		toServer:     make([][]*ring.SPSC[request], cfg.MaxClients),
		fromServer:   make([][]*ring.SPSC[reply], cfg.MaxClients),
		clientActive: make([]atomic.Bool, cfg.MaxClients),
	}
	per := cfg.CapacityBytes / cfg.Partitions
	for p := range t.parts {
		var sink partition.ChangeSink
		if cfg.Sink != nil {
			sink = cfg.Sink(p)
		}
		s, err := partition.NewStore(partition.Config{
			CapacityBytes: per,
			Buckets:       cfg.BucketsPerPartition,
			Policy:        cfg.Policy,
			Seed:          cfg.Seed + uint64(p)*0x9e3779b97f4a7c15 + 1,
			Clock:         cfg.Clock,
			Sink:          sink,
			// CPHASH tables have few partitions (one per server
			// goroutine), so per-slot heat is cheap here — and it is the
			// signal load-aware placement needs. Each partition records
			// its own heat uncontended; scrapes aggregate lazily.
			Metrics: &obs.PartitionMetrics{Heat: &obs.SlotHeat{}},
		})
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", p, err)
		}
		t.parts[p] = s
	}
	t.parked = make([]atomic.Bool, cfg.Partitions)
	t.wake = make([]chan struct{}, cfg.Partitions)
	t.owner = make([]atomic.Int32, cfg.Partitions)
	t.target = make([]atomic.Int32, cfg.Partitions)
	t.scans = make([]atomic.Pointer[scanJob], cfg.Partitions)
	for p := range t.wake {
		t.wake[p] = make(chan struct{}, 1)
		t.owner[p].Store(int32(p))
		t.target[p].Store(int32(p))
	}
	for c := 0; c < cfg.MaxClients; c++ {
		t.toServer[c] = make([]*ring.SPSC[request], cfg.Partitions)
		t.fromServer[c] = make([]*ring.SPSC[reply], cfg.Partitions)
		for s := 0; s < cfg.Partitions; s++ {
			var err error
			if t.toServer[c][s], err = ring.NewSPSC[request](cfg.RingCapacity, requestLineMsgs); err != nil {
				return nil, err
			}
			if t.fromServer[c][s], err = ring.NewSPSC[reply](cfg.RingCapacity, replyLineMsgs); err != nil {
				return nil, err
			}
		}
	}
	for p := 0; p < cfg.Partitions; p++ {
		t.wg.Add(1)
		go t.serverLoop(p)
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NumPartitions returns the number of partitions (= server goroutines).
func (t *Table) NumPartitions() int { return t.cfg.Partitions }

// CapacityBytes returns the total configured capacity.
func (t *Table) CapacityBytes() int {
	return t.parts[0].CapacityBytes() * t.cfg.Partitions
}

// PartitionOf returns the partition index serving key k. A key's partition
// is a function of its hash only, as in §3: "a simple hash function to
// assign each possible key to a partition".
func (t *Table) PartitionOf(k Key) int {
	// Use the high bits of the mix so that partition selection and
	// within-partition bucket selection (low bits) stay independent.
	return int(partition.Mix64(k) >> 32 & uint64(t.cfg.Partitions-1))
}

// Client returns the client handle with index id (0 ≤ id < MaxClients).
// Each handle is single-goroutine (the paper's "client thread"); distinct
// handles may be used concurrently. Calling Client twice with the same id
// returns handles sharing rings and must not be done concurrently.
func (t *Table) Client(id int) (*Client, error) {
	if id < 0 || id >= t.cfg.MaxClients {
		return nil, fmt.Errorf("core: client id %d out of range [0,%d)", id, t.cfg.MaxClients)
	}
	if t.closed.Load() {
		return nil, fmt.Errorf("core: table closed")
	}
	t.clientActive[id].Store(true)
	c := &Client{
		t:        t,
		id:       id,
		to:       t.toServer[id],
		from:     t.fromServer[id],
		pending:  make([]pendingFIFO, t.cfg.Partitions),
		replyBuf: make([]reply, replyLineMsgs*4),
	}
	return c, nil
}

// MustClient is Client that panics on error.
func (t *Table) MustClient(id int) *Client {
	c, err := t.Client(id)
	if err != nil {
		panic(err)
	}
	return c
}

// Close stops the server goroutines and waits for them. All clients must
// have drained their outstanding operations first (Client.Wait); operations
// issued after Close are lost. Close is idempotent.
func (t *Table) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	t.stop.Store(true)
	for p := range t.wake {
		select {
		case t.wake[p] <- struct{}{}:
		default:
		}
	}
	t.wg.Wait()
}

// kick wakes the server goroutine currently owning partition p. Clients
// call it after publishing requests; the parked flag makes the common
// (running) case a single atomic load.
func (t *Table) kick(p int) {
	t.kickServer(int(t.owner[p].Load()))
}

// kickServer wakes server goroutine id if it is parked.
func (t *Table) kickServer(id int) {
	if t.parked[id].Load() {
		select {
		case t.wake[id] <- struct{}{}:
		default:
		}
	}
}

// SetActiveServers consolidates all partitions onto the first n server
// goroutines — the paper's §8.1 dynamic-adjustment extension: with a light
// workload, fewer cores run servers and the rest are free for application
// work; with a heavy workload, raise n again (up to NumPartitions).
// Ownership moves at sweep boundaries, so operations in flight are safe.
// The call returns once the new assignment is published; stragglers finish
// handing off asynchronously.
func (t *Table) SetActiveServers(n int) error {
	if n < 1 || n > t.cfg.Partitions {
		return fmt.Errorf("core: SetActiveServers(%d) outside [1, %d]", n, t.cfg.Partitions)
	}
	for p := 0; p < t.cfg.Partitions; p++ {
		t.target[p].Store(int32(p % n))
	}
	// Wake everyone: old owners must run to hand partitions off, new
	// owners must start polling.
	for id := range t.wake {
		t.kickServerAlways(id)
	}
	return nil
}

// kickServerAlways queues a wake token regardless of the parked flag (used
// by reassignment and shutdown, where missing a parked server would stall).
func (t *Table) kickServerAlways(id int) {
	select {
	case t.wake[id] <- struct{}{}:
	default:
	}
}

// ActiveServers returns how many server goroutines currently own at least
// one partition (it can transiently exceed the SetActiveServers target
// while handoffs drain).
func (t *Table) ActiveServers() int {
	seen := map[int32]bool{}
	for p := 0; p < t.cfg.Partitions; p++ {
		seen[t.owner[p].Load()] = true
	}
	return len(seen)
}

// Stats aggregates statistics across partitions.
func (t *Table) Stats() Stats {
	var out Stats
	for _, p := range t.parts {
		out.Add(p.Stats())
	}
	out.Messages = t.messages.Load()
	out.IdleSweeps = t.idleSweeps.Load()
	return out
}

// Heat aggregates per-slot heat across all partitions — the lazy,
// scrape-time half of the heat design: owners record uncontended, the
// scraper merges.
func (t *Table) Heat() obs.HeatSnapshot {
	var out obs.HeatSnapshot
	for _, p := range t.parts {
		if h := p.Metrics().Heat; h != nil {
			out.Merge(h.Snapshot())
		}
	}
	return out
}

// Collect emits the table's aggregated counters and per-slot heat under
// the given label set (typically {instance="addr"}).
func (t *Table) Collect(e *obs.Expo, labels string) {
	st := t.Stats()
	e.Counter("cphash_table_lookups_total", "lookup requests processed", labels, st.Lookups)
	e.Counter("cphash_table_hits_total", "lookups that found a live entry", labels, st.Hits)
	e.Counter("cphash_table_misses_total", "lookups that found nothing", labels, st.Lookups-st.Hits)
	e.Counter("cphash_table_inserts_total", "insert requests processed", labels, st.Inserts)
	e.Counter("cphash_table_insert_errors_total", "inserts rejected for lack of space", labels, st.InsertErr)
	e.Counter("cphash_table_deletes_total", "explicit deletes", labels, st.Deletes)
	e.Counter("cphash_table_evictions_total", "entries evicted for capacity", labels, st.Evictions)
	e.Counter("cphash_table_expired_total", "entries collected after TTL expiry", labels, st.Expired)
	e.Counter("cphash_table_bytes_in_total", "value bytes accepted by inserts", labels, st.BytesIn)
	e.Counter("cphash_table_bytes_out_total", "value bytes returned by hits", labels, st.BytesOut)
	e.Gauge("cphash_table_elements", "entries currently stored", labels, float64(st.Elements))
	e.Counter("cphash_table_messages_total", "ring messages processed by server goroutines", labels, st.Messages)
	e.Counter("cphash_table_idle_sweeps_total", "server polling sweeps that found no work", labels, st.IdleSweeps)
	heat := t.Heat()
	for slot := 0; slot < obs.Slots; slot++ {
		if heat.Ops[slot] == 0 {
			continue
		}
		sl := obs.WithLabel(labels, "slot", strconv.Itoa(slot))
		e.Counter("cphash_slot_ops_total", "operations touching each continuum slot", sl, heat.Ops[slot])
		e.Counter("cphash_slot_bytes_total", "value bytes moved per continuum slot", sl, heat.Bytes[slot])
	}
}

// PartitionStats returns the counters of one partition (for tests and the
// load-distribution experiment).
func (t *Table) PartitionStats(p int) partition.Stats { return t.parts[p].Stats() }

// CheckInvariants validates every partition; the table must be quiescent
// (no in-flight operations). Tests call this after workloads.
func (t *Table) CheckInvariants() error {
	for i, p := range t.parts {
		if err := p.CheckInvariants(); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}

// serverLoop is server goroutine id — the paper's §3.2 server thread,
// extended with §8.1's dynamic partition ownership. It continuously sweeps
// the request rings of every (active client, owned partition) pair,
// executes each operation on the local partition, and pushes replies. A
// partition whose target moved is handed off at the sweep boundary, so a
// partition's state and rings only ever have one processing goroutine.
// With no work for SpinBudget consecutive sweeps the server yields; after
// parkAfterSweeps it parks until a client (or the controller) kicks it.
func (t *Table) serverLoop(id int) {
	defer t.wg.Done()
	if t.cfg.LockOSThread {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	reqs := make([]request, requestLineMsgs*8)
	idle := 0
	var processed int64
	var idleSweeps int64
	flushStats := func() {
		t.messages.Add(processed)
		t.idleSweeps.Add(idleSweeps)
		processed, idleSweeps = 0, 0
	}
	defer flushStats()
	me := int32(id)
	for {
		work := false
		for p := 0; p < t.cfg.Partitions; p++ {
			if t.owner[p].Load() != me {
				continue
			}
			if tgt := t.target[p].Load(); tgt != me {
				// Hand the partition off; the new owner takes over at its
				// next sweep.
				t.owner[p].Store(tgt)
				t.kickServerAlways(int(tgt))
				continue
			}
			store := t.parts[p]
			for c := 0; c < t.cfg.MaxClients; c++ {
				if !t.clientActive[c].Load() {
					continue
				}
				in := t.toServer[c][p]
				out := t.fromServer[c][p]
				n := in.ConsumeBatchAdaptive(reqs, t.cfg.BatchLowWater, adaptiveSpinBudget)
				if n == 0 {
					continue
				}
				work = true
				processed += int64(n)
				for i := 0; i < n; i++ {
					t.execute(store, reqs[i], out)
				}
				out.Flush()
			}
			// Bulk iteration rides the sweep boundary, like handoffs: the
			// mailbox is drained only by the owner, so a plain Load guards
			// the (rare) Swap. Checking it AFTER the ring drain gives scans
			// a useful ordering guarantee: any Ready/Insert published to
			// this partition's rings before the scan job was posted is
			// applied before the scan runs.
			if t.scans[p].Load() != nil {
				if j := t.scans[p].Swap(nil); j != nil {
					t.runScanJob(store, j)
					work = true
				}
			}
		}
		if work {
			idle = 0
			continue
		}
		idleSweeps++
		if t.stop.Load() {
			return
		}
		idle++
		if idle%t.cfg.SpinBudget == 0 {
			flushStats()
			runtime.Gosched()
		}
		if idle >= parkAfterSweeps {
			idle = 0
			t.parked[id].Store(true)
			// Final sweep after announcing the park, so a client that
			// flushed (or a controller that reassigned) before seeing
			// parked=true cannot be missed.
			if t.anyWork(id) {
				t.parked[id].Store(false)
				continue
			}
			<-t.wake[id]
			t.parked[id].Store(false)
			if t.stop.Load() {
				// Drain once more so clients that published just before
				// stop still complete, then exit via the loop's check.
				continue
			}
		}
	}
}

// anyWork reports whether server goroutine id has anything to do: a
// published request on an owned partition, or a pending handoff in either
// direction.
func (t *Table) anyWork(id int) bool {
	me := int32(id)
	for p := 0; p < t.cfg.Partitions; p++ {
		own := t.owner[p].Load()
		tgt := t.target[p].Load()
		if own == me && tgt != me {
			return true // must hand off
		}
		if own != me {
			continue
		}
		if t.scans[p].Load() != nil {
			return true // a posted scan job awaits this owner
		}
		for c := 0; c < t.cfg.MaxClients; c++ {
			if t.clientActive[c].Load() && t.toServer[c][p].Len() > 0 {
				return true
			}
		}
	}
	return false
}

// execute runs one request against the local partition. Replies use
// ProduceSpin: the reply ring can only fill if the client stops draining,
// and clients always poll replies while spinning, so this cannot deadlock.
func (t *Table) execute(store *partition.Store, r request, out *ring.SPSC[reply]) {
	switch r.op() {
	case opLookup:
		out.ProduceSpin(reply{elem: store.Lookup(r.key())})
	case opInsert:
		ttl := time.Duration(r.insertTTL()) * time.Millisecond
		if r.rmw != nil {
			// Version-carrying insert (recovery, replica replay, slot
			// migration): preserve the recorded CAS version instead of
			// assigning a fresh one.
			out.ProduceSpin(reply{elem: store.InsertTTLVer(r.key(), r.insertSize(), ttl, r.rmw.Ver)})
			break
		}
		out.ProduceSpin(reply{elem: store.InsertTTL(r.key(), r.insertSize(), ttl)})
	case opReady:
		// Publishing the value also releases the inserter's reference:
		// the paper counts insert as exactly two messages (§6.2).
		store.MarkReady(r.elem)
		store.Decref(r.elem)
	case opDecref:
		store.Decref(r.elem)
	case opDelete:
		if store.Delete(r.key()) {
			out.ProduceSpin(reply{elem: deleteFound})
		} else {
			out.ProduceSpin(reply{})
		}
	case opRMW:
		// The whole read-modify-write runs here, on the partition's single
		// owner — no other goroutine can interleave, so no locks. Results
		// land in the client-owned descriptor before the reply is produced;
		// the reply ring's release/acquire publishes them to the client.
		store.RMW(r.key(), r.rmw)
		out.ProduceSpin(reply{})
	case opNop:
		// ignore; used by tests to exercise the path
	}
}
