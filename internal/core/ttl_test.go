package core

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestPutTTLExpiresOnFakeClock: a TTL entry served through the message
// rings is visible before its deadline and invisible after, with the
// expiry counted once in Stats.Expired.
func TestPutTTLExpiresOnFakeClock(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	tbl := MustNew(Config{
		Partitions:    2,
		CapacityBytes: 1 << 20,
		MaxClients:    1,
		Clock:         now.Load,
	})
	defer tbl.Close()
	c := tbl.MustClient(0)
	defer c.Close()

	if !c.PutTTL(1, []byte("ephemeral"), 10*time.Millisecond) {
		t.Fatal("PutTTL failed")
	}
	if !c.Put(2, []byte("durable")) {
		t.Fatal("Put failed")
	}
	if v, ok := c.Get(1, nil); !ok || string(v) != "ephemeral" {
		t.Fatalf("Get(1) = %q, %v before deadline", v, ok)
	}
	now.Add(int64(11 * time.Millisecond))
	if _, ok := c.Get(1, nil); ok {
		t.Fatal("Get(1) hit after the TTL elapsed")
	}
	if v, ok := c.Get(2, nil); !ok || string(v) != "durable" {
		t.Fatalf("Get(2) = %q, %v; no-TTL keys must not expire", v, ok)
	}
	if got := tbl.Stats().Expired; got != 1 {
		t.Errorf("Stats().Expired = %d, want 1", got)
	}
	// A near-MaxInt64 TTL must clamp to the wire cap (~49 days), never
	// overflow into a short or instant expiry.
	if !c.PutTTL(3, []byte("practically forever"), time.Duration(math.MaxInt64)) {
		t.Fatal("PutTTL with max duration failed")
	}
	now.Add(int64(24 * time.Hour))
	if _, ok := c.Get(3, nil); !ok {
		t.Fatal("max-duration TTL entry expired within a day")
	}
}

// TestDeleteReportsFound: the delete reply's found bit survives the ring
// round trip in both directions.
func TestDeleteReportsFound(t *testing.T) {
	tbl := MustNew(Config{Partitions: 2, CapacityBytes: 1 << 20, MaxClients: 1})
	defer tbl.Close()
	c := tbl.MustClient(0)
	defer c.Close()

	if c.Delete(7) {
		t.Error("Delete of an absent key reported found")
	}
	if !c.Put(7, []byte("x")) {
		t.Fatal("Put failed")
	}
	if !c.Delete(7) {
		t.Error("Delete of a present key reported not found")
	}
	if c.Delete(7) {
		t.Error("second Delete reported found")
	}
	if _, ok := c.Get(7, nil); ok {
		t.Error("Get hit after Delete")
	}
}

// TestInsertTTLAsyncPipelined: TTL inserts ride the same rings as plain
// inserts — a full pipelined batch of mixed ops completes and the TTL keys
// expire while the others survive.
func TestInsertTTLAsyncPipelined(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	tbl := MustNew(Config{Partitions: 2, CapacityBytes: 1 << 20, MaxClients: 1, Clock: now.Load})
	defer tbl.Close()
	c := tbl.MustClient(0)
	defer c.Close()

	const n = 256
	val := []byte("v")
	ops := make([]*Op, 0, n)
	for k := Key(0); k < n; k++ {
		if k%2 == 0 {
			ops = append(ops, c.InsertTTLAsync(k, val, time.Millisecond))
		} else {
			ops = append(ops, c.InsertAsync(k, val))
		}
	}
	c.WaitAll()
	for _, o := range ops {
		if !o.Hit() {
			t.Fatal("pipelined insert failed")
		}
		c.Release(o)
	}
	now.Add(int64(2 * time.Millisecond))
	hits := 0
	for k := Key(0); k < n; k++ {
		if _, ok := c.Get(k, nil); ok {
			hits++
			if k%2 == 0 {
				t.Fatalf("TTL key %d visible after deadline", k)
			}
		}
	}
	if hits != n/2 {
		t.Errorf("%d unexpired keys visible, want %d", hits, n/2)
	}
}
