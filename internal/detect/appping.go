// The application-level ping. A bare TCP dial has a blind spot: a
// process whose accept loop is alive but whose serving path is wedged
// (deadlocked worker, hung disk, a chaos accept-then-hang rule) passes
// every dial probe while failing every request. The ping closes it by
// speaking the native protocol — one LOOKUP round trip under a single
// deadline — so "accepting but not serving" becomes a detectable state
// of its own.

package detect

import (
	"bufio"
	"net"
	"time"

	"cphash/internal/protocol"
)

// DialFunc matches net.DialTimeout, so callers can route the ping
// through an injected dialer (the chaos Director, a proxy).
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// PingResult classifies one application-level ping. The three-way split
// matters to probes that keep a secondary witness: a refused dial may be
// a one-way partition (ask the witness), but a connection that accepts
// and then never answers is definitive — the member is not serving.
type PingResult int

const (
	// PingOK: the request was answered within the deadline (a miss on
	// the probe key still counts — the serving path ran).
	PingOK PingResult = iota
	// PingNoDial: the TCP dial itself failed.
	PingNoDial
	// PingNoReply: the dial succeeded but the request was not answered
	// before the deadline — the accept-then-hang signature.
	PingNoReply
)

// pingKey is the fixed key the ping looks up. Key 0 is an ordinary
// read-only lookup: present or absent, the reply proves the reader,
// worker, and response path are all moving.
const pingKey uint64 = 0

// Ping dials target and runs one protocol LOOKUP under timeout (shared
// between the dial and the round trip). It allocates a few small
// buffers per call — fine at probe cadence, not meant for hot paths.
func Ping(dial DialFunc, target string, timeout time.Duration) PingResult {
	if dial == nil {
		dial = net.DialTimeout
	}
	deadline := time.Now().Add(timeout)
	conn, err := dial("tcp", target, timeout)
	if err != nil {
		return PingNoDial
	}
	defer conn.Close()
	if err := conn.SetDeadline(deadline); err != nil {
		return PingNoReply
	}
	bw := bufio.NewWriterSize(conn, 64)
	if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpLookup, Key: pingKey}); err != nil {
		return PingNoReply
	}
	if err := bw.Flush(); err != nil {
		return PingNoReply
	}
	br := bufio.NewReaderSize(conn, 512)
	if _, _, err := protocol.ReadLookupResponse(br, nil); err != nil {
		return PingNoReply
	}
	return PingOK
}

// PingProbe adapts Ping to Config.Probe for callers with no secondary
// witness: any non-OK outcome is down.
func PingProbe(dial DialFunc, timeout time.Duration) func(target string) bool {
	return func(target string) bool {
		return Ping(dial, target, timeout) == PingOK
	}
}
