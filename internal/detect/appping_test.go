package detect

import (
	"net"
	"testing"
	"time"

	"cphash/internal/core"
	"cphash/internal/kvserver"
)

// TestPingOutcomes pins the three-way classification the probes build
// on: a serving instance answers (OK), a dead port refuses (NoDial),
// and a listener that accepts but never serves hangs the request
// (NoReply — the accept-then-hang signature a bare dial cannot see).
func TestPingOutcomes(t *testing.T) {
	table := core.MustNew(core.Config{Partitions: 2, CapacityBytes: 4 << 20, MaxClients: 1, Seed: 1})
	srv, err := kvserver.Serve(kvserver.Config{
		Addr: "127.0.0.1:0", Workers: 1, NewBackend: kvserver.NewCPHashBackend(table),
	})
	if err != nil {
		table.Close()
		t.Fatal(err)
	}
	defer func() { srv.Close(); table.Close() }()

	if got := Ping(nil, srv.Addr(), time.Second); got != PingOK {
		t.Fatalf("ping of a serving instance = %v, want PingOK", got)
	}

	// A listener that accepts and then ignores the connection.
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			c, err := hung.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { <-done; c.Close() }(c)
		}
	}()
	if got := Ping(nil, hung.Addr().String(), 100*time.Millisecond); got != PingNoReply {
		t.Fatalf("ping of an accept-then-hang listener = %v, want PingNoReply", got)
	}

	// A closed port: grab an address, release it, ping it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	if got := Ping(nil, dead, 100*time.Millisecond); got != PingNoDial {
		t.Fatalf("ping of a closed port = %v, want PingNoDial", got)
	}

	if probe := PingProbe(nil, time.Second); !probe(srv.Addr()) || probe(dead) {
		t.Fatal("PingProbe disagrees with Ping")
	}
}
