// Package detect is the failure detector that closes the replication
// loop: it turns "a node stopped answering" into an automatic
// rebalance.Migrator.Promote, demoting the manual POST /promote to an
// operator override.
//
// The shape is the autoscaler control loop (observe → threshold → act,
// with cooldowns and a flap guard), deliberately boring:
//
//   - observe: each Tick probes every watched target (a TCP dial, a
//     peer_up scrape — the Probe callback decides).
//   - threshold: a target must be continuously down for DownAfter before
//     it is a candidate; one missed probe is a blip, not a death.
//   - act: at most one promotion per Cooldown across the whole detector,
//     because each Act reshapes the cluster and the next decision must
//     observe the reshaped cluster, not the one that died.
//   - flap guard: a target that changed state FlapMax times inside
//     FlapWindow is suppressed — a flapping link needs an operator, not
//     a promotion storm.
//
// The loop is Tick-driven with an injected clock, so tests script the
// schedule deterministically; Start wires Tick to a wall-clock ticker
// for production use.
package detect

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/obs"
)

// Config parameterizes the detector.
type Config struct {
	// Probe reports whether a target is currently healthy. It runs on
	// the Tick goroutine; keep it bounded (a dial with a short timeout,
	// a scrape of an in-process gauge).
	Probe func(target string) bool
	// Act fires the failover for a confirmed-dead target (conventionally
	// Migrator.Promote plus a mesh rewire). A successful Act removes the
	// target from the watch set — it has left the cluster; a failed one
	// leaves it watched for a retry after Cooldown.
	Act func(target string) error
	// Interval is the probe cadence for Start's ticker (default 500ms).
	Interval time.Duration
	// DownAfter is how long a target must be continuously down before
	// Act fires (default 3s).
	DownAfter time.Duration
	// Cooldown is the minimum gap between consecutive Acts, successful
	// or not (default 10s).
	Cooldown time.Duration
	// FlapWindow and FlapMax bound acceptable instability: a target with
	// FlapMax or more up/down transitions inside FlapWindow is never
	// acted on until it steadies (defaults 60s, 6).
	FlapWindow time.Duration
	FlapMax    int
	// Clock supplies "now" (nil = wall clock); tests inject a fake.
	Clock func() time.Time
}

func (c *Config) setDefaults() error {
	if c.Probe == nil {
		return fmt.Errorf("detect: Config.Probe is required")
	}
	if c.Act == nil {
		return fmt.Errorf("detect: Config.Act is required")
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = time.Minute
	}
	if c.FlapMax <= 0 {
		c.FlapMax = 6
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// target is the per-member health ledger.
type target struct {
	up          bool
	everProbed  bool
	downSince   time.Time
	transitions []time.Time // up/down edges, pruned to FlapWindow
}

// TargetStatus snapshots one watched member for /detect and tests.
type TargetStatus struct {
	Target      string `json:"target"`
	Up          bool   `json:"up"`
	DownForMS   int64  `json:"downForMs"` // 0 when up
	Transitions int    `json:"transitionsInWindow"`
	Suppressed  bool   `json:"suppressed"` // flap guard engaged
}

// Detector watches a set of targets and fires Act on confirmed deaths.
type Detector struct {
	cfg Config

	mu      sync.Mutex
	targets map[string]*target
	lastAct time.Time
	acting  bool // an Act is in flight on some Tick goroutine

	stop chan struct{}
	wg   sync.WaitGroup

	probes      atomic.Int64
	acts        atomic.Int64
	actErrors   atomic.Int64
	suppressals atomic.Int64
}

// New validates cfg and builds a detector with an empty watch set.
// Nothing runs until Start (or a caller-driven Tick).
func New(cfg Config) (*Detector, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Detector{
		cfg:     cfg,
		targets: map[string]*target{},
		stop:    make(chan struct{}),
	}, nil
}

// Watch adds a target (idempotent; a re-added target keeps its history).
func (d *Detector) Watch(name string) {
	d.mu.Lock()
	if _, ok := d.targets[name]; !ok {
		d.targets[name] = &target{}
	}
	d.mu.Unlock()
}

// Forget drops a target and its history (it left the cluster).
func (d *Detector) Forget(name string) {
	d.mu.Lock()
	delete(d.targets, name)
	d.mu.Unlock()
}

// SetTargets reconciles the watch set: members not yet watched are
// added, watched names not in members are forgotten, survivors keep
// their history. The mesh calls it after every rewire.
func (d *Detector) SetTargets(members []string) {
	want := make(map[string]struct{}, len(members))
	for _, m := range members {
		want[m] = struct{}{}
	}
	d.mu.Lock()
	for name := range d.targets {
		if _, ok := want[name]; !ok {
			delete(d.targets, name)
		}
	}
	for name := range want {
		if _, ok := d.targets[name]; !ok {
			d.targets[name] = &target{}
		}
	}
	d.mu.Unlock()
}

// Start runs the Tick loop on Interval until Close.
func (d *Detector) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ticker := time.NewTicker(d.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
				d.Tick()
			}
		}
	}()
}

// Close stops the Start loop and waits for it (a Tick in flight,
// including its Act, completes first). Idempotent-unsafe: call once.
func (d *Detector) Close() {
	close(d.stop)
	d.wg.Wait()
}

// Tick runs one observe → threshold → act pass. Exported so tests (and
// callers with their own scheduling) can drive the detector against a
// fake clock. Probes run outside the lock; at most one Act runs per
// pass, also outside the lock — the cluster it reshapes is re-observed
// by the next pass.
func (d *Detector) Tick() {
	d.mu.Lock()
	names := make([]string, 0, len(d.targets))
	for name := range d.targets {
		names = append(names, name)
	}
	d.mu.Unlock()
	sort.Strings(names) // deterministic probe and candidate order

	var candidate string
	for _, name := range names {
		up := d.cfg.Probe(name)
		d.probes.Add(1)
		// Each probe can block for its full dial timeout, so "now" is
		// re-read after it returns: stamping every target with a single
		// pre-loop timestamp would backdate later targets' transitions by
		// the accumulated probe time, satisfying DownAfter early.
		now := d.cfg.Clock()

		d.mu.Lock()
		tg, ok := d.targets[name]
		if !ok { // forgotten mid-pass
			d.mu.Unlock()
			continue
		}
		if tg.everProbed && up != tg.up {
			tg.transitions = append(tg.transitions, now)
		}
		if !up && (tg.up || !tg.everProbed) {
			tg.downSince = now
		}
		tg.up = up
		tg.everProbed = true
		cut := now.Add(-d.cfg.FlapWindow)
		for len(tg.transitions) > 0 && tg.transitions[0].Before(cut) {
			tg.transitions = tg.transitions[1:]
		}
		if !up && candidate == "" && now.Sub(tg.downSince) >= d.cfg.DownAfter {
			if len(tg.transitions) >= d.cfg.FlapMax {
				d.suppressals.Add(1)
			} else if !d.acting && now.Sub(d.lastAct) >= d.cfg.Cooldown {
				candidate = name
				d.acting = true
				d.lastAct = now
			}
		}
		d.mu.Unlock()
	}

	if candidate == "" {
		return
	}
	err := d.cfg.Act(candidate)
	d.mu.Lock()
	d.acting = false
	if err == nil {
		// The target has been failed over out of the cluster; stop
		// probing the corpse. On error it stays watched and the cooldown
		// paces the retry.
		delete(d.targets, candidate)
	}
	d.mu.Unlock()
	if err != nil {
		d.actErrors.Add(1)
	} else {
		d.acts.Add(1)
	}
}

// Status snapshots the watch set, sorted by target.
func (d *Detector) Status() []TargetStatus {
	now := d.cfg.Clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TargetStatus, 0, len(d.targets))
	for name, tg := range d.targets {
		st := TargetStatus{
			Target:      name,
			Up:          tg.up || !tg.everProbed,
			Transitions: len(tg.transitions),
			Suppressed:  len(tg.transitions) >= d.cfg.FlapMax,
		}
		if !st.Up {
			st.DownForMS = now.Sub(tg.downSince).Milliseconds()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// Collect emits the detector's counters and per-target health.
func (d *Detector) Collect(e *obs.Expo, labels string) {
	e.Counter("cphash_detect_probes_total", "Health probes run.", labels, d.probes.Load())
	e.Counter("cphash_detect_promotions_total", "Automatic failovers fired.", labels, d.acts.Load())
	e.Counter("cphash_detect_act_errors_total", "Failovers that returned an error.", labels, d.actErrors.Load())
	e.Counter("cphash_detect_suppressed_total", "Act decisions vetoed by the flap guard.", labels, d.suppressals.Load())
	for _, st := range d.Status() {
		tl := obs.WithLabel(labels, "target", st.Target)
		var up float64
		if st.Up {
			up = 1
		}
		e.Gauge("cphash_detect_target_up", "Whether the watched member answered its last probe (1 = yes).", tl, up)
		e.Gauge("cphash_detect_target_down_ms", "How long the member has been continuously down.", tl, float64(st.DownForMS))
	}
}
