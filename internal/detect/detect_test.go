package detect

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cphash/internal/obs"
)

// fakeClock is the deterministic schedule driver: tests advance it and
// call Tick by hand, so every threshold is exercised at exact instants.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// scriptedHealth is a probe whose answers the test flips per target.
type scriptedHealth struct {
	mu   sync.Mutex
	down map[string]bool
}

func newScriptedHealth() *scriptedHealth { return &scriptedHealth{down: map[string]bool{}} }

func (h *scriptedHealth) probe(target string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.down[target]
}

func (h *scriptedHealth) set(target string, down bool) {
	h.mu.Lock()
	h.down[target] = down
	h.mu.Unlock()
}

type actLog struct {
	mu   sync.Mutex
	acts []string
	err  error
}

func (l *actLog) act(target string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.acts = append(l.acts, target)
	return nil
}

func (l *actLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.acts...)
}

func newTestDetector(t *testing.T, clk *fakeClock, h *scriptedHealth, log *actLog) *Detector {
	t.Helper()
	d, err := New(Config{
		Probe:      h.probe,
		Act:        log.act,
		DownAfter:  3 * time.Second,
		Cooldown:   10 * time.Second,
		FlapWindow: time.Minute,
		FlapMax:    4,
		Clock:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestActFiresAfterDownAfter pins the threshold: no act while the
// outage is younger than DownAfter, exactly one act once it is not, and
// the dead target leaves the watch set.
func TestActFiresAfterDownAfter(t *testing.T) {
	clk, h, log := newFakeClock(), newScriptedHealth(), &actLog{}
	d := newTestDetector(t, clk, h, log)
	d.SetTargets([]string{"a", "b"})

	d.Tick() // both up
	h.set("a", true)
	clk.advance(time.Second)
	d.Tick() // first failed probe: the down clock starts HERE
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		d.Tick()
		if i < 2 && len(log.list()) != 0 {
			t.Fatalf("acted %v before DownAfter elapsed", log.list())
		}
	}
	if got := log.list(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("acts = %v, want [a]", got)
	}
	st := d.Status()
	if len(st) != 1 || st[0].Target != "b" {
		t.Fatalf("watch set after act = %+v, want only b", st)
	}
}

// TestBlipDoesNotFire pins that a probe failure shorter than DownAfter
// never acts: the down clock restarts when the target recovers.
func TestBlipDoesNotFire(t *testing.T) {
	clk, h, log := newFakeClock(), newScriptedHealth(), &actLog{}
	d := newTestDetector(t, clk, h, log)
	d.Watch("a")

	d.Tick()
	for cycle := 0; cycle < 3; cycle++ {
		h.set("a", true)
		clk.advance(2 * time.Second) // < DownAfter
		d.Tick()
		h.set("a", false)
		clk.advance(20 * time.Second)
		d.Tick()
	}
	if got := log.list(); len(got) != 0 {
		t.Fatalf("acted on blips: %v", got)
	}
	// Let the flap window forget the blips, then a fresh continuous
	// outage still fires.
	clk.advance(2 * time.Minute)
	d.Tick()
	h.set("a", true)
	clk.advance(time.Second)
	d.Tick() // down clock starts
	clk.advance(3 * time.Second)
	d.Tick()
	if got := log.list(); len(got) != 1 {
		t.Fatalf("acts = %v, want one", got)
	}
}

// TestCooldownSerializesActs pins the global cooldown: two targets dying
// together fail over one per Cooldown, not both in one pass.
func TestCooldownSerializesActs(t *testing.T) {
	clk, h, log := newFakeClock(), newScriptedHealth(), &actLog{}
	d := newTestDetector(t, clk, h, log)
	d.SetTargets([]string{"a", "b"})

	d.Tick()
	h.set("a", true)
	h.set("b", true)
	clk.advance(time.Second)
	d.Tick() // both down clocks start
	clk.advance(3 * time.Second)
	d.Tick()
	if got := log.list(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("acts = %v, want [a] (deterministic order, one per pass)", got)
	}
	clk.advance(5 * time.Second) // inside cooldown
	d.Tick()
	if got := log.list(); len(got) != 1 {
		t.Fatalf("acted inside cooldown: %v", got)
	}
	clk.advance(5 * time.Second) // cooldown over
	d.Tick()
	if got := log.list(); len(got) != 2 || got[1] != "b" {
		t.Fatalf("acts = %v, want [a b]", got)
	}
}

// TestFlapGuardSuppresses pins the flap guard: a target bouncing more
// than FlapMax times inside FlapWindow is never acted on, then fires
// normally once the window forgets the instability.
func TestFlapGuardSuppresses(t *testing.T) {
	clk, h, log := newFakeClock(), newScriptedHealth(), &actLog{}
	d := newTestDetector(t, clk, h, log)
	d.Watch("a")

	d.Tick()
	// 4 transitions (FlapMax) inside the window: down, up, down, up.
	for i := 0; i < 2; i++ {
		h.set("a", true)
		clk.advance(time.Second)
		d.Tick()
		h.set("a", false)
		clk.advance(time.Second)
		d.Tick()
	}
	h.set("a", true)
	clk.advance(time.Second)
	d.Tick()                      // down clock starts
	clk.advance(10 * time.Second) // well past DownAfter, still in window
	d.Tick()
	if got := log.list(); len(got) != 0 {
		t.Fatalf("acted on a flapping target: %v", got)
	}
	if st := d.Status(); !st[0].Suppressed {
		t.Fatalf("status not suppressed: %+v", st)
	}
	if d.suppressals.Load() == 0 {
		t.Fatal("suppression not counted")
	}
	// The window slides past the flapping; the ongoing outage then acts.
	clk.advance(time.Minute)
	d.Tick()
	if got := log.list(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("acts = %v, want [a] after the flap window slid", got)
	}
}

// TestActErrorRetriesAfterCooldown pins the failure path: a failed Act
// keeps the target watched and retries one cooldown later.
func TestActErrorRetriesAfterCooldown(t *testing.T) {
	clk, h, log := newFakeClock(), newScriptedHealth(), &actLog{}
	log.err = fmt.Errorf("promotion raced a join")
	d := newTestDetector(t, clk, h, log)
	d.Watch("a")

	d.Tick()
	h.set("a", true)
	clk.advance(time.Second)
	d.Tick() // down clock starts
	clk.advance(3 * time.Second)
	d.Tick() // act fails
	if d.actErrors.Load() != 1 {
		t.Fatalf("actErrors = %d, want 1", d.actErrors.Load())
	}
	if len(d.Status()) != 1 {
		t.Fatal("failed act dropped the target")
	}
	log.mu.Lock()
	log.err = nil
	log.mu.Unlock()
	clk.advance(time.Second)
	d.Tick() // still cooling down
	if got := log.list(); len(got) != 0 {
		t.Fatalf("retried inside cooldown: %v", got)
	}
	clk.advance(10 * time.Second)
	d.Tick()
	if got := log.list(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("acts = %v, want [a] on retry", got)
	}
}

// TestSetTargetsReconciles pins the rewire contract: survivors keep
// their down history across a SetTargets, departures stop being probed.
func TestSetTargetsReconciles(t *testing.T) {
	clk, h, log := newFakeClock(), newScriptedHealth(), &actLog{}
	d := newTestDetector(t, clk, h, log)
	d.SetTargets([]string{"a", "b", "c"})

	d.Tick()
	h.set("a", true)
	clk.advance(time.Second)
	d.Tick() // down clock starts
	clk.advance(2 * time.Second)
	d.Tick() // a down for 2s — not yet actionable
	d.SetTargets([]string{"a", "b"})
	clk.advance(time.Second)
	d.Tick() // a down for 3s continuously across the reconcile
	if got := log.list(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("acts = %v, want [a]: down history lost in SetTargets", got)
	}
	st := d.Status()
	if len(st) != 1 || st[0].Target != "b" {
		t.Fatalf("watch set = %+v, want only b", st)
	}
}

// TestCollectEmitsSeries smoke-tests the exposition names the dashboards
// and the README document.
func TestCollectEmitsSeries(t *testing.T) {
	clk, h, log := newFakeClock(), newScriptedHealth(), &actLog{}
	d := newTestDetector(t, clk, h, log)
	d.Watch("n1")
	d.Tick()
	h.set("n1", true)
	clk.advance(time.Second)
	d.Tick()

	e := obs.NewExpo()
	d.Collect(e, obs.Labels("node", "admin"))
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`cphash_detect_probes_total{node="admin"} 2`,
		`cphash_detect_target_up{node="admin",target="n1"} 0`,
		"cphash_detect_target_down_ms",
		"cphash_detect_promotions_total",
		"cphash_detect_suppressed_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
}

// TestStartTicksOnWallClock smoke-tests the production wiring: a real
// ticker drives Tick, and Close stops it cleanly.
func TestStartTicksOnWallClock(t *testing.T) {
	h, log := newScriptedHealth(), &actLog{}
	h.set("a", true)
	d, err := New(Config{
		Probe:     h.probe,
		Act:       log.act,
		Interval:  2 * time.Millisecond,
		DownAfter: 10 * time.Millisecond,
		Cooldown:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Watch("a")
	d.Start()
	deadline := time.Now().Add(5 * time.Second)
	for len(log.list()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wall-clock loop never acted")
		}
		time.Sleep(time.Millisecond)
	}
	d.Close()
	if got := log.list(); got[0] != "a" {
		t.Fatalf("acts = %v", got)
	}
}
