// Package hotpath is the canonical steady-state wire workload: a 90/10
// GET/SET mix of fixed keys over one pipelined connection. Both the
// cpbench "hotpath" experiment (the archived BENCH_hotpath.json
// trajectory) and the root package's BenchmarkHotPath_WireGetSet /
// TestHotPathAllocCeiling (the CI allocation gate) drive this exact
// loop, so the gate and the trajectory cannot drift apart.
//
// The driver is deliberately allocation-free: every buffer is
// caller-owned and recycled, so whole-process allocation deltas measured
// around Mix isolate the server stack under test.
package hotpath

import (
	"bufio"

	"cphash/internal/partition"
	"cphash/internal/protocol"
)

const (
	// Keys is the working-set size (fixed 60-bit keys 0..Keys-1).
	Keys = 1 << 14
	// ValueSize is the payload size of every SET.
	ValueSize = 64
	// Window is the default pipeline window: requests written per flush.
	Window = 128
)

// Preload stores every key once (values all zero) and flushes, so the
// mix runs against a warm working set.
func Preload(bw *bufio.Writer, val []byte) error {
	for k := uint64(0); k < Keys; k++ {
		if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpInsert, Key: k, Value: val}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Mix drives ops operations of the 90/10 GET/SET mix in pipelined
// windows over one connection's codecs: each window writes its requests,
// flushes once, and drains the GET responses in order into dst. seed
// offsets the key sequence so concurrent connections touch the working
// set in different orders. onWindow, when non-nil, runs after each
// window drains (latency recording). The returned dst is the recycled
// response buffer; the loop body performs no heap allocation.
func Mix(bw *bufio.Writer, br *bufio.Reader, ops, window int, seed uint64, val, dst []byte, onWindow func()) ([]byte, error) {
	if window <= 0 {
		window = Window
	}
	gets := 0
	for i := 0; i < ops; i++ {
		key := partition.Mix64(seed+uint64(i)) % Keys
		if i%10 == 9 {
			if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpInsert, Key: key, Value: val}); err != nil {
				return dst, err
			}
		} else {
			if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpLookup, Key: key}); err != nil {
				return dst, err
			}
			gets++
		}
		if (i+1)%window == 0 || i == ops-1 {
			if err := bw.Flush(); err != nil {
				return dst, err
			}
			for ; gets > 0; gets-- {
				var err error
				if dst, _, err = protocol.ReadLookupResponse(br, dst[:0]); err != nil {
					return dst, err
				}
			}
			if onWindow != nil {
				onWindow()
			}
		}
	}
	return dst, nil
}
