package kvserver

import (
	"net"
	"testing"
	"time"

	"cphash/internal/lockhash"
	"cphash/internal/protocol"
)

func startAcceptServer(t *testing.T, workers int) *Server {
	t.Helper()
	table := lockhash.MustNew(lockhash.Config{Partitions: 8, CapacityBytes: 1 << 20, Seed: 1})
	s, err := Serve(Config{
		Addr:       "127.0.0.1:0",
		Workers:    workers,
		NewBackend: NewLockHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// activeConns sums the per-worker active-connection counters the
// least-loaded balancer reads.
func activeConns(s *Server) int64 {
	var n int64
	for _, w := range s.workers {
		n += w.conns.Load()
	}
	return n
}

func waitZeroConns(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if activeConns(s) == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker connection counts stuck at %d (want 0)", activeConns(s))
}

// Regression test for acceptor bookkeeping: connections that die before,
// during, or right after their first request must decrement their worker's
// active-connection count exactly once — the count returns to zero and
// never goes negative (a double decrement would skew the least-loaded
// balancer forever).
func TestAcceptorDecrementsDyingConnsExactlyOnce(t *testing.T) {
	s := startAcceptServer(t, 2)

	const perKind = 20
	for i := 0; i < perKind; i++ {
		// Dies instantly: accepted, then closed before any byte.
		c1, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c1.Close()

		// Dies on a protocol error: unknown opcode drops the connection
		// server-side.
		c2, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = c2.Write([]byte{0xFF})
		c2.Close()

		// Dies mid-frame: opcode plus half a key, then gone.
		c3, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = c3.Write([]byte{protocol.OpLookup, 0x01, 0x02, 0x03})
		c3.Close()
	}

	waitZeroConns(t, s)
	for i, w := range s.workers {
		if n := w.conns.Load(); n < 0 {
			t.Fatalf("worker %d count went negative (%d): double decrement", i, n)
		}
	}
	if st := s.Stats(); st.Active != 0 {
		t.Fatalf("Stats().Active = %d after all conns died, want 0", st.Active)
	}
}

// A healthy connection is counted while open and uncounted after close;
// Stats.Active tracks it.
func TestActiveConnAccounting(t *testing.T) {
	s := startAcceptServer(t, 2)

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for activeConns(s) != 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Stats().Active; got != 1 {
		t.Fatalf("Stats().Active = %d with one open conn, want 1", got)
	}
	conn.Close()
	waitZeroConns(t, s)
}

// Closing the server while connections are racing in must still leave all
// worker counts at zero: the close-race path in the acceptor must not
// count a connection it refused.
func TestCloseRaceLeavesNoPhantomConns(t *testing.T) {
	s := startAcceptServer(t, 2)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := net.Dial("tcp", s.Addr())
			if err != nil {
				return // listener closed
			}
			c.Close()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	close(stop)
	<-done

	// After Close returns, every readLoop has exited; counts must balance.
	if n := activeConns(s); n != 0 {
		t.Fatalf("%d phantom connections left on workers after Close", n)
	}
}
