package kvserver

import (
	"bufio"
	"bytes"
	"fmt"
	"testing"

	"cphash/internal/core"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
	"cphash/internal/protocol"
)

// encodeBatch serializes requests the way a client would put them on the
// wire, then decodes them back through DecodeRequestInto into one shared
// arena — exactly the server readLoop's code path.
func decodeIntoArena(t *testing.T, arena []byte, wire ...protocol.Request) ([]protocol.Request, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, r := range wire {
		if err := protocol.WriteRequest(w, r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	br := bufio.NewReader(&buf)
	out := make([]protocol.Request, len(wire))
	for i := range out {
		var err error
		arena, err = protocol.DecodeRequestInto(br, &out[i], arena)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out, arena
}

// runNoRetentionTest drives the no-retention contract for one Backend:
// decode a batch into a recycled arena, process it, settle the responses,
// scribble over the arena (as the recycling reader will), and verify that
// both the stored values and the already-buffered wire responses are
// unaffected.
func runNoRetentionTest(t *testing.T, backend Backend) {
	t.Helper()
	const (
		fixedKey = uint64(41)
		strKey   = "aliased-string-key"
	)
	fixedVal := []byte("fixed-key-value-bytes")
	strVal := []byte("string-key-value-bytes")

	arena := make([]byte, 0, 1024)
	reqs, arena := decodeIntoArena(t, arena,
		protocol.Request{Op: protocol.OpInsertTTL, Key: fixedKey, TTL: 0, Value: fixedVal},
		protocol.Request{Op: protocol.OpSetStr, StrKey: []byte(strKey), Value: strVal},
		protocol.Request{Op: protocol.OpLookup, Key: fixedKey},
		protocol.Request{Op: protocol.OpGetStr, StrKey: []byte(strKey)},
	)
	results := make([]Result, len(reqs))
	buf := backend.ProcessBatch(reqs, results, nil)

	// Buffer the lookup responses like the worker does, then recycle the
	// arena: every byte the requests carried gets clobbered.
	var wireOut bytes.Buffer
	bw := bufio.NewWriter(&wireOut)
	for i := 2; i < 4; i++ {
		r := results[i]
		if !r.Found {
			t.Fatalf("request %d missed; the batch's own insert should be visible", i)
		}
		if err := protocol.WriteLookupResponse(bw, buf[r.Start:r.End], r.Found); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	for i := range arena {
		arena[i] = 0xEE
	}

	// The wire responses were copied before the scribble.
	brr := bufio.NewReader(&wireOut)
	got, found, err := protocol.ReadLookupResponse(brr, nil)
	if err != nil || !found || !bytes.Equal(got, fixedVal) {
		t.Fatalf("fixed-key response = %q (found=%v, err=%v), want %q", got, found, err, fixedVal)
	}
	got, found, err = protocol.ReadLookupResponse(brr, nil)
	if err != nil || !found || !bytes.Equal(got, strVal) {
		t.Fatalf("string-key response = %q (found=%v, err=%v), want %q", got, found, err, strVal)
	}

	// And the stored values must be copies, not aliases of the arena: a
	// fresh batch on a fresh arena must read the original bytes back.
	reqs2, _ := decodeIntoArena(t, nil,
		protocol.Request{Op: protocol.OpLookup, Key: fixedKey},
		protocol.Request{Op: protocol.OpGetStr, StrKey: []byte(strKey)},
	)
	results2 := make([]Result, len(reqs2))
	buf2 := backend.ProcessBatch(reqs2, results2, nil)
	if r := results2[0]; !r.Found || !bytes.Equal(buf2[r.Start:r.End], fixedVal) {
		t.Fatalf("stored fixed-key value = %q (found=%v), want %q — the backend retained arena bytes",
			buf2[r.Start:r.End], r.Found, fixedVal)
	}
	if r := results2[1]; !r.Found || !bytes.Equal(buf2[r.Start:r.End], strVal) {
		t.Fatalf("stored string-key value = %q (found=%v), want %q — the backend retained arena bytes",
			buf2[r.Start:r.End], r.Found, strVal)
	}
}

func TestNoRetention_CPHashBackend(t *testing.T) {
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: 1 << 20,
		MaxClients:    1,
		Seed:          1,
	})
	defer table.Close()
	b, err := NewCPHashBackend(table)(0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	runNoRetentionTest(t, b)
}

func TestNoRetention_LockHashBackend(t *testing.T) {
	table := lockhash.MustNew(lockhash.Config{CapacityBytes: 1 << 20, Seed: 1})
	b, err := NewLockHashBackend(table)(0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	runNoRetentionTest(t, b)
}

// TestArenaRecyclingWire hammers the full server path through recycled
// per-connection arenas: pipelined windows of string-key SETs with
// distinct payloads followed by GETs, so every window rewrites the arenas
// the previous window decoded into. Any retention of arena bytes by the
// batch path shows up as a corrupted read.
func TestArenaRecyclingWire(t *testing.T) {
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: partition.CapacityForValues(4096, 128),
		MaxClients:    1,
		Seed:          1,
	})
	defer table.Close()
	srv, err := Serve(Config{
		Addr:       "127.0.0.1:0",
		Workers:    1,
		BufferSize: 8 << 10, // small buffers force mid-window flushes too
		NewBackend: NewCPHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	bw, br, closer, err := DialBuf(srv.Addr(), 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	const keys = 64
	const windows = 50
	for w := 0; w < windows; w++ {
		for k := 0; k < keys; k++ {
			key := []byte(fmt.Sprintf("key-%02d", k))
			val := []byte(fmt.Sprintf("window-%03d-key-%02d-payload", w, k))
			if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpSetStr, StrKey: key, Value: val}); err != nil {
				t.Fatal(err)
			}
			if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpGetStr, StrKey: key}); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		var dst []byte
		for k := 0; k < keys; k++ {
			var found bool
			dst, found, err = protocol.ReadLookupResponse(br, dst[:0])
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("window-%03d-key-%02d-payload", w, k)
			if !found || string(dst) != want {
				t.Fatalf("window %d key %d: got %q (found=%v), want %q — arena recycling corrupted a value",
					w, k, dst, found, want)
			}
		}
	}
}
