package kvserver

import (
	"fmt"
	"testing"

	"cphash/internal/core"
	"cphash/internal/lockhash"
	"cphash/internal/protocol"
)

// newBackends builds one backend of each kind over fresh tables.
func newBackends(t *testing.T) map[string]Backend {
	t.Helper()
	table := core.MustNew(core.Config{Partitions: 2, CapacityBytes: 4 << 20, MaxClients: 1, Seed: 5})
	t.Cleanup(table.Close)
	cpb, err := NewCPHashBackend(table)(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cpb.Close)
	lt := lockhash.MustNew(lockhash.Config{Partitions: 64, CapacityBytes: 4 << 20, Seed: 5})
	lhb, err := NewLockHashBackend(lt)(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lhb.Close)
	return map[string]Backend{"cphash": cpb, "lockhash": lhb}
}

func processOne(b Backend, reqs []protocol.Request) ([]Result, []byte) {
	results := make([]Result, len(reqs))
	buf := b.ProcessBatch(reqs, results, nil)
	return results, buf
}

// TestBackendInsertThenLookupSameBatch: the dependency case that once hung
// CPSERVER — a lookup of a key inserted earlier in the same batch must see
// the new value in both backends.
func TestBackendInsertThenLookupSameBatch(t *testing.T) {
	for name, b := range newBackends(t) {
		t.Run(name, func(t *testing.T) {
			reqs := []protocol.Request{
				{Op: protocol.OpInsert, Key: 1, Value: []byte("alpha")},
				{Op: protocol.OpLookup, Key: 1},
				{Op: protocol.OpInsert, Key: 1, Value: []byte("beta")},
				{Op: protocol.OpLookup, Key: 1},
				{Op: protocol.OpLookup, Key: 2}, // never inserted
			}
			results, buf := processOne(b, reqs)
			if !results[1].Found || string(buf[results[1].Start:results[1].End]) != "alpha" {
				t.Errorf("first lookup = %+v (%q)", results[1], buf)
			}
			if !results[3].Found || string(buf[results[3].Start:results[3].End]) != "beta" {
				t.Errorf("second lookup = %+v", results[3])
			}
			if results[4].Found {
				t.Error("phantom hit for key 2")
			}
		})
	}
}

// TestBackendLookupBeforeInsert: a lookup *preceding* the insert in the
// batch must miss (no time travel).
func TestBackendLookupBeforeInsert(t *testing.T) {
	for name, b := range newBackends(t) {
		t.Run(name, func(t *testing.T) {
			reqs := []protocol.Request{
				{Op: protocol.OpLookup, Key: 77},
				{Op: protocol.OpInsert, Key: 77, Value: []byte("later")},
			}
			results, _ := processOne(b, reqs)
			if results[0].Found {
				t.Error("lookup saw an insert issued after it")
			}
			// And the value is durable for the next batch.
			results, buf := processOne(b, []protocol.Request{{Op: protocol.OpLookup, Key: 77}})
			if !results[0].Found || string(buf[results[0].Start:results[0].End]) != "later" {
				t.Errorf("second batch lookup = %+v", results[0])
			}
		})
	}
}

// TestBackendLargeBatch: hundreds of interleaved ops in one batch keep
// their per-index result mapping intact.
func TestBackendLargeBatch(t *testing.T) {
	for name, b := range newBackends(t) {
		t.Run(name, func(t *testing.T) {
			var reqs []protocol.Request
			for i := 0; i < 300; i++ {
				k := uint64(i % 50)
				if i%3 == 0 {
					reqs = append(reqs, protocol.Request{
						Op: protocol.OpInsert, Key: k,
						Value: []byte(fmt.Sprintf("v%d-%d", k, i)),
					})
				} else {
					reqs = append(reqs, protocol.Request{Op: protocol.OpLookup, Key: k})
				}
			}
			results, buf := processOne(b, reqs)
			// Verify each lookup returned the most recent preceding insert
			// for its key (or missed if there was none).
			latest := map[uint64]string{}
			for i, r := range reqs {
				if r.Op == protocol.OpInsert {
					latest[r.Key] = string(r.Value)
					continue
				}
				want, present := latest[r.Key]
				got := results[i]
				if got.Found != present {
					t.Fatalf("%s: req %d key %d: found=%v, want %v", name, i, r.Key, got.Found, present)
				}
				if present && string(buf[got.Start:got.End]) != want {
					t.Fatalf("%s: req %d key %d: value %q, want %q",
						name, i, r.Key, buf[got.Start:got.End], want)
				}
			}
		})
	}
}

// TestBackendEmptyBatch: a zero-length batch is a no-op.
func TestBackendEmptyBatch(t *testing.T) {
	for name, b := range newBackends(t) {
		buf := b.ProcessBatch(nil, nil, nil)
		if len(buf) != 0 {
			t.Errorf("%s: empty batch produced %d bytes", name, len(buf))
		}
	}
}
