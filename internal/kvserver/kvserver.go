// Package kvserver implements CPSERVER and LOCKSERVER, the memcached-style
// TCP key/value cache servers of Section 4 of the CPHash paper, speaking
// protocol versions 1–4: LOOKUP/INSERT plus DELETE, TTL inserts,
// variable-length string keys (GET_STR/SET_STR/DEL_STR), bulk SCAN/PURGE,
// and the version-4 read-modify-write set (CAS/ADD/REPLACE/APPEND/PREPEND/
// INCR/DECR/TOUCH/GETS/INSERT_VER).
//
// Architecture (Figure 4): an acceptor assigns each new connection to the
// client thread (worker) with the fewest active connections. Per-connection
// reader goroutines parse requests and feed their worker's queue; the
// worker gathers as many requests as possible into a batch, hands the batch
// to its hash-table backend in one go — which is what lets CPHASH pipeline
// the whole batch (lookups, inserts AND deletes) through its message rings
// — and then writes the LOOKUP/GET_STR and DELETE/DEL_STR responses back
// to the right connections in request order. INSERT/INSERT_TTL/SET_STR are
// silent, per the protocol.
//
// String keys are routed onto the fixed 60-bit key space with
// protocol.HashStringKey and stored with the key embedded in the value
// (protocol.AppendStringEntry), so a 60-bit hash collision reads as a miss
// — the paper's Section 8.2 extension, server-side. A DEL_STR whose hash
// collides with a different stored key removes that entry; with 60-bit
// hashes this is vanishingly rare, and for a cache it only costs a refill.
//
// The only difference between CPSERVER and LOCKSERVER is the Backend
// (NewCPHashBackend vs NewLockHashBackend), mirroring the paper's shared
// implementation.
package kvserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/cluster"
	"cphash/internal/core"
	"cphash/internal/lockhash"
	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/protocol"
	"cphash/internal/replica"
)

// Result describes the outcome of one response-bearing request inside a
// batch: for a LOOKUP/GET_STR/GETS hit the value occupies buf[Start:End]
// of the batch buffer; for a DELETE/DEL_STR only Found is meaningful (the
// key existed and was removed); a read-modify-write fills Status, Ver and
// Num (the wire triple); a GETS hit also carries the entry version in Ver.
type Result struct {
	Start, End int32
	Found      bool
	Status     uint8
	Ver        uint64
	Num        uint64
}

// Backend executes one batch of requests against a hash table.
// Implementations must fill results[i] for every LOOKUP/GET_STR and
// DELETE/DEL_STR request i and may append value bytes to buf, returning
// the grown buffer. A Backend instance is owned by a single worker
// goroutine.
//
// No-retention contract: everything a Backend is handed is on loan for
// the duration of the call. reqs, each request's StrKey/Value bytes (they
// alias per-connection decode arenas that are recycled as soon as the
// batch's responses have been buffered), results, and buf are all reused
// by the worker; ProcessBatch must not retain any of them — not in the
// table, not in goroutines it spawns — past its return. Anything a
// backend stores must be copied first (the CPHASH backend copies values
// while settling its pipelined inserts; LOCKHASH copies under the
// partition lock). The buffer-aliasing regression tests in alias_test.go
// enforce this by scribbling over the arena after the batch settles.
type Backend interface {
	ProcessBatch(reqs []protocol.Request, results []Result, buf []byte) []byte
	Close()
}

// BatchFencer is the optional Backend extension group commit needs: a
// backend whose writes become durable-visible asynchronously (CPHASH's
// Ready messages are fire-and-forget, so a batch's change records may
// still be in flight toward the durability sink when ProcessBatch
// returns) must implement FenceBatch to block until every record of the
// previously processed batches has reached the sink. Synchronous
// backends (LOCKHASH publishes under the partition lock) need not
// implement it.
type BatchFencer interface {
	FenceBatch()
}

// SlotScanner is the optional Backend extension behind the protocol v3
// SCAN/PURGE ops, the primitives online slot migration is built on. Both
// methods are bounded per call and cursor-resumable (next ==
// protocol.ScanDone once iteration completes); both may be called by any
// worker goroutine concurrently with regular batches. A backend that does
// not implement it answers SCAN/PURGE with an immediate empty ScanDone, so
// migrating away from it silently moves nothing — callers can detect that
// by the zero entry count.
type SlotScanner interface {
	// ScanSlots appends up to max live entries whose keys fall in the
	// selected continuum slots to dst, resuming at cursor.
	ScanSlots(slots *protocol.SlotSet, cursor uint64, max int, dst []protocol.ScanEntry) (out []protocol.ScanEntry, next uint64, err error)
	// PurgeSlots removes live entries in the selected slots, resuming at
	// cursor, returning how many this call removed.
	PurgeSlots(slots *protocol.SlotSet, cursor uint64) (removed int, next uint64, err error)
}

// Config parameterizes Serve.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// Workers is the number of client threads (default 1).
	Workers int
	// MaxBatch bounds a worker's batch (default 512, within the paper's
	// effective 512–8,192 pipeline band).
	MaxBatch int
	// QueueDepth bounds queued requests per worker (default 4·MaxBatch).
	QueueDepth int
	// BufferSize is the per-connection bufio buffer size in bytes, applied
	// to both the read and the write side (default 64 KiB). Larger buffers
	// admit bigger wire batches per syscall at the cost of per-connection
	// memory; `cpbench -experiment hotpath -bufsize` sweeps it.
	BufferSize int
	// NewBackend builds the per-worker backend.
	NewBackend func(worker int) (Backend, error)
	// Persist, when non-nil, is the durability pipeline behind the
	// backend's table. The server owns its lifecycle from here on: under
	// SyncAlways every batch group-commits (the WAL is fsynced before
	// any of the batch's responses reach the wire), and Close drains the
	// worker queues and then flushes and closes the pipeline, so a
	// graceful shutdown loses nothing. The pipeline must already be
	// Started.
	Persist *persist.Pipeline
	// Replication, when non-nil, is the replication source streaming this
	// server's Persist pipeline to its followers (internal/replica). The
	// server owns its shutdown ordering: Close stops serving, fences the
	// backends, barriers the pipeline so the final mutations reach the
	// tail fanout, closes the source, and only then closes the pipeline.
	// Callers that want a clean handoff (followers fully acknowledged)
	// should wait on the source's watermark before calling Close.
	Replication *replica.Source
	// Metrics receives the server-side latency and batch-size histograms
	// (nil = the server allocates a private set; metrics are always on —
	// the per-batch cost is two clock reads and three atomic adds, which
	// the hot-path allocation ceiling test keeps honest).
	Metrics *obs.ServerMetrics
	// Listen overrides listener creation (nil = net.Listen). Fault
	// harnesses install chaos.Director.Listen here so accept-then-hang
	// and partition rules reach the request wire; the wrapper is free
	// when no rules match, which the hot-path allocation gate enforces.
	Listen func(network, addr string) (net.Listener, error)
}

// Stats counts server activity.
type Stats struct {
	Connections int64 // lifetime accepted connections
	Active      int64 // currently-open connections across workers
	Requests    int64 // requests processed
	Batches     int64 // batches processed
}

// Server is a running key/value cache server.
type Server struct {
	ln      net.Listener
	bufSize int
	persist *persist.Pipeline
	repl    *replica.Source
	m       *obs.ServerMetrics
	workers []*worker
	wg      sync.WaitGroup // acceptor + workers
	readers sync.WaitGroup // per-connection readers
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  atomic.Bool

	accepted atomic.Int64
}

// maxConnArenas bounds how many decode arenas one connection may have in
// flight; a reader that outruns its worker by more blocks until the worker
// recycles one, which is the backpressure we want.
const maxConnArenas = 256

// maxRecycledArena is the largest arena returned to a connection's free
// list; oversized ones (a rare huge value) are dropped to the GC so a
// single large request cannot pin megabytes per pooled slot.
const maxRecycledArena = 64 << 10

type connState struct {
	conn net.Conn
	w    *bufio.Writer
	wErr error
	// touched is worker-private: whether this connection is already on the
	// current batch's flush list.
	touched bool

	// Decode-arena recycling. The readLoop acquires an arena, decodes a
	// request's variable-length bytes into it, and attaches it to the
	// queued request; the worker returns it once the batch segment holding
	// the request has been processed and its responses buffered. mu/cond
	// see traffic from exactly two goroutines (the connection's reader and
	// its worker), so contention is negligible.
	mu      sync.Mutex
	notFull sync.Cond
	free    [][]byte
	created int
}

func newConnState(conn net.Conn, w *bufio.Writer) *connState {
	cs := &connState{conn: conn, w: w}
	cs.notFull.L = &cs.mu
	return cs
}

// getArena takes a recycled decode arena (empty, capacity warm) or nil
// when the connection is entitled to grow a fresh one; it blocks while
// maxConnArenas are already in flight.
func (cs *connState) getArena() []byte {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for {
		if k := len(cs.free); k > 0 {
			a := cs.free[k-1]
			cs.free[k-1] = nil
			cs.free = cs.free[:k-1]
			return a[:0]
		}
		if cs.created < maxConnArenas {
			cs.created++
			return nil
		}
		cs.notFull.Wait()
	}
}

// putArena recycles a decode arena (dropping oversized ones) and wakes a
// reader blocked on the in-flight bound.
func (cs *connState) putArena(a []byte) {
	cs.mu.Lock()
	if cap(a) > maxRecycledArena {
		cs.created-- // let the reader grow a fresh, smaller one
	} else {
		cs.free = append(cs.free, a)
	}
	cs.mu.Unlock()
	cs.notFull.Signal()
}

type connReq struct {
	cs  *connState
	req protocol.Request
	// arena backs req.StrKey/req.Value; nil for requests with no
	// variable-length bytes. The worker recycles it via cs.putArena once
	// the request's batch segment has been processed.
	arena []byte
}

type worker struct {
	id       int
	queue    chan connReq
	backend  Backend
	conns    atomic.Int64
	requests atomic.Int64
	batches  atomic.Int64
	maxBatch int
	m        *obs.ServerMetrics
	// persist is the server's durability pipeline (nil without one);
	// groupCommit is set under SyncAlways, where every mutating batch
	// barriers on the WAL before its responses are written.
	persist     *persist.Pipeline
	groupCommit bool
}

// commit is the group-commit barrier: under sync=always it first fences
// the backend (flushing any in-flight fire-and-forget publications into
// the change rings) and then blocks until every published record is
// fsynced. Responses are written only after it returns, so an
// acknowledged write is on disk.
func (w *worker) commit() {
	if w.groupCommit {
		if f, ok := w.backend.(BatchFencer); ok {
			f.FenceBatch()
		}
		w.persist.Barrier()
	}
}

// Serve starts the server; it returns once the listener is ready.
func Serve(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = DefaultBufferSize
	}
	if cfg.NewBackend == nil {
		return nil, fmt.Errorf("kvserver: Config.NewBackend is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.ServerMetrics{}
	}
	listen := cfg.Listen
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, bufSize: cfg.BufferSize, persist: cfg.Persist, repl: cfg.Replication, m: cfg.Metrics, conns: map[net.Conn]struct{}{}}
	for i := 0; i < cfg.Workers; i++ {
		b, err := cfg.NewBackend(i)
		if err != nil {
			ln.Close()
			for _, w := range s.workers {
				w.backend.Close()
			}
			return nil, fmt.Errorf("kvserver: backend %d: %w", i, err)
		}
		w := &worker{
			id:          i,
			queue:       make(chan connReq, cfg.QueueDepth),
			backend:     b,
			maxBatch:    cfg.MaxBatch,
			m:           cfg.Metrics,
			persist:     cfg.Persist,
			groupCommit: cfg.Persist != nil && cfg.Persist.Policy() == persist.SyncAlways,
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.run()
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	st := Stats{Connections: s.accepted.Load()}
	for _, w := range s.workers {
		st.Active += w.conns.Load()
		st.Requests += w.requests.Load()
		st.Batches += w.batches.Load()
	}
	return st
}

// Metrics returns the server's latency/batch histograms (never nil).
func (s *Server) Metrics() *obs.ServerMetrics { return s.m }

// Collect emits the server's counters and histograms into an exposition
// buffer; labels is a rendered obs.Labels set identifying this server.
func (s *Server) Collect(e *obs.Expo, labels string) {
	st := s.Stats()
	e.Counter("cphash_server_connections_total", "Lifetime accepted TCP connections.", labels, st.Connections)
	e.Gauge("cphash_server_active_connections", "Currently open connections.", labels, float64(st.Active))
	e.Counter("cphash_server_requests_total", "Requests processed.", labels, st.Requests)
	e.Counter("cphash_server_batches_total", "Batches processed.", labels, st.Batches)
	s.m.Collect(e, labels)
}

// Close shuts the server down: stop accepting, close connections, drain
// workers, close backends.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// Readers exit on their closed connections; only then is it safe to
	// close the worker queues they feed.
	s.readers.Wait()
	for _, w := range s.workers {
		close(w.queue)
	}
	s.wg.Wait()
	for _, w := range s.workers {
		// With the workers stopped, fence each backend once more so the
		// final batches' fire-and-forget publications are in the change
		// rings before the pipeline's closing drain.
		if s.persist != nil {
			if f, ok := w.backend.(BatchFencer); ok {
				f.FenceBatch()
			}
		}
		w.backend.Close()
	}
	// The worker queues are drained and the backends fenced, so every
	// processed mutation has been published to the pipeline's change
	// rings. A replication source must see those final records, so the
	// pipeline is barriered (rings drained through the tail fanout) and
	// the source closed BEFORE the pipeline: followers receive everything
	// this server processed, then the WAL flushes and closes. Shutdown is
	// the one flush even sync=none gets.
	if s.repl != nil {
		if s.persist != nil {
			s.persist.Barrier()
		}
		s.repl.Close()
	}
	if s.persist != nil {
		s.persist.Close()
	}
	return nil
}

// acceptLoop assigns connections to the least-loaded worker (§4.1's
// smallest-active-connections balancer).
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tcp, ok := conn.(*net.TCPConn); ok {
			tcp.SetNoDelay(true)
		}
		s.accepted.Add(1)
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		// The worker count is incremented only once the readLoop — whose
		// defer is the one place it is decremented — is guaranteed to
		// start. A connection refused above (server closing) or one that
		// dies instantly inside readLoop therefore balances to zero
		// exactly once; incrementing before the closed-check leaked a
		// phantom connection onto the worker forever. Both counters are
		// bumped while mu is still held: Close sets closed before taking
		// mu, so once it holds the lock every accepted reader is already
		// registered and readers.Wait cannot race a pending Add.
		w := s.leastLoadedWorker()
		w.conns.Add(1)
		s.readers.Add(1)
		s.mu.Unlock()
		go s.readLoop(conn, w)
	}
}

func (s *Server) leastLoadedWorker() *worker {
	best := s.workers[0]
	for _, w := range s.workers[1:] {
		if w.conns.Load() < best.conns.Load() {
			best = w
		}
	}
	return best
}

// readLoop parses requests off one connection and feeds the worker.
// Requests decode into recycled per-connection arenas, so the steady
// state allocates nothing per request; an arena travels with its request
// through the worker queue and returns to the pool once the batch segment
// holding it has been processed.
func (s *Server) readLoop(conn net.Conn, w *worker) {
	defer s.readers.Done()
	defer func() {
		w.conns.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	cs := newConnState(conn, bufio.NewWriterSize(conn, s.bufSize))
	br := bufio.NewReaderSize(conn, s.bufSize)
	var req protocol.Request
	var spare []byte // acquired arena awaiting a request that needs bytes
	haveSpare := false
	for {
		if !haveSpare {
			spare = cs.getArena()
			haveSpare = true
		}
		out, err := protocol.DecodeRequestInto(br, &req, spare[:0])
		if err != nil {
			return // EOF, truncation, or protocol error: drop the conn
		}
		if s.closed.Load() {
			return
		}
		if len(out) > 0 {
			// The request's StrKey/Value alias the arena; hand it off.
			w.queue <- connReq{cs: cs, req: req, arena: out}
			haveSpare = false
		} else {
			spare = out // untouched (or grown empty): reuse for the next frame
			w.queue <- connReq{cs: cs, req: req}
		}
	}
}

// run is the worker ("client thread") loop: gather a batch, process it
// through the backend, write responses in order, flush. Every buffer —
// the request/result batch slices, the backend's value buffer, the
// response writers, the per-connection decode arenas — is reused across
// batches, so the steady-state loop allocates nothing.
func (w *worker) run() {
	reqs := make([]protocol.Request, 0, w.maxBatch)
	items := make([]connReq, 0, w.maxBatch)
	results := make([]Result, 0, w.maxBatch)
	var buf []byte
	var scanBuf []protocol.ScanEntry
	touched := make([]*connState, 0, 16)

	for {
		first, ok := <-w.queue
		if !ok {
			return
		}
		items = append(items[:0], first)
	gather:
		for len(items) < w.maxBatch {
			select {
			case it, ok := <-w.queue:
				if !ok {
					break gather
				}
				items = append(items, it)
			default:
				break gather
			}
		}
		// One clock read here and one after the flush bound the whole
		// batch: the batch-latency histogram gets one sample, the op-latency
		// histogram gets len(items) samples at the per-op share. Two clock
		// reads and a handful of atomic adds per batch — cheap enough to
		// stay always-on under the hot-path allocation ceiling.
		batchStart := time.Now()

		// SCAN/PURGE are execution barriers: a gathered batch is split at
		// each one so bulk iteration observes every earlier mutation of
		// its batch and none of the later ones — the per-connection FIFO
		// the protocol promises — while plain segments still flow through
		// the backend as whole batches.
		for start := 0; start < len(items); {
			end := start
			for end < len(items) && items[end].req.Op != protocol.OpScan && items[end].req.Op != protocol.OpPurge {
				end++
			}
			if seg := items[start:end]; len(seg) > 0 {
				reqs = reqs[:0]
				mutating := false
				for _, it := range seg {
					reqs = append(reqs, it.req)
					switch it.req.Op {
					case protocol.OpLookup, protocol.OpGetStr, protocol.OpGets, protocol.OpGetsStr:
					default:
						mutating = true
					}
				}
				results = results[:len(seg)]
				for i := range results {
					results[i] = Result{}
				}
				buf = w.backend.ProcessBatch(reqs, results, buf[:0])
				// Group commit before any response bytes are staged: the
				// bufio writers may spill to the socket mid-loop, so the
				// barrier cannot wait until the flush below. Read-only
				// segments publish nothing and skip the barrier.
				if mutating {
					w.commit()
				}
				for i := range seg {
					cs := seg[i].cs
					if cs.wErr != nil {
						continue
					}
					r := results[i]
					switch seg[i].req.Op {
					case protocol.OpLookup, protocol.OpGetStr:
						cs.wErr = protocol.WriteLookupResponse(cs.w, buf[r.Start:r.End], r.Found)
					case protocol.OpGets, protocol.OpGetsStr:
						cs.wErr = protocol.WriteGetsResponse(cs.w, buf[r.Start:r.End], r.Ver, r.Found)
					case protocol.OpDelete, protocol.OpDelStr:
						cs.wErr = protocol.WriteDeleteResponse(cs.w, r.Found)
					default:
						if protocol.IsRMW(seg[i].req.Op) {
							cs.wErr = protocol.WriteRMWResponse(cs.w, r.Status, r.Ver, r.Num)
						} else {
							continue // inserts are silent
						}
					}
					if !cs.touched {
						cs.touched = true
						touched = append(touched, cs)
					}
				}
				// The segment's responses are buffered (or its writes are
				// poisoned) and the backend settled without retaining the
				// request bytes, so the decode arenas can recycle now.
				for i := range seg {
					if a := seg[i].arena; a != nil {
						seg[i].arena = nil
						seg[i].cs.putArena(a)
					}
				}
			}
			if end < len(items) { // the scan/purge that split the batch
				it := items[end]
				if it.cs.wErr == nil {
					scanBuf, it.cs.wErr = w.respondScan(it.cs, it.req, scanBuf)
					if it.cs.wErr != nil {
						// A backend error (table closing) means no
						// response was written; unlike a wire write
						// failure the socket is still healthy, so close
						// it — a silently dropped response would leave
						// the client waiting forever.
						it.cs.conn.Close()
					}
					if !it.cs.touched {
						it.cs.touched = true
						touched = append(touched, it.cs)
					}
				}
				end++
			}
			start = end
		}
		for i, cs := range touched {
			if cs.wErr == nil {
				cs.wErr = cs.w.Flush()
			}
			cs.touched = false
			touched[i] = nil
		}
		touched = touched[:0]
		elapsed := time.Since(batchStart).Nanoseconds()
		w.m.BatchLatency.Record(elapsed)
		w.m.BatchSize.Record(int64(len(items)))
		w.m.OpLatency.RecordN(elapsed/int64(len(items)), int64(len(items)))
		w.requests.Add(int64(len(items)))
		w.batches.Add(1)
	}
}

// respondScan serves one SCAN/PURGE request against the worker's backend,
// reusing scanBuf across calls. A backend error (the table is closing)
// poisons the connection's writer so no misaligned response follows.
func (w *worker) respondScan(cs *connState, req protocol.Request, scanBuf []protocol.ScanEntry) ([]protocol.ScanEntry, error) {
	sc, ok := w.backend.(SlotScanner)
	if !ok {
		if req.Op == protocol.OpPurge {
			return scanBuf, protocol.WritePurgeResponse(cs.w, protocol.ScanDone, 0)
		}
		return scanBuf, protocol.WriteScanResponse(cs.w, protocol.ScanDone, nil)
	}
	if req.Op == protocol.OpPurge {
		removed, next, err := sc.PurgeSlots(&req.Slots, req.Cursor)
		if err != nil {
			return scanBuf, err
		}
		// Purges delete entries (migration's post-move cleanup); under
		// group commit their removal records hit disk before the ack, so
		// a crash cannot resurrect entries the coordinator saw purged.
		w.commit()
		return scanBuf, protocol.WritePurgeResponse(cs.w, next, uint32(removed))
	}
	max := int(req.Count)
	if max <= 0 || max > protocol.MaxScanBatch {
		max = protocol.MaxScanBatch
	}
	scanBuf, next, err := sc.ScanSlots(&req.Slots, req.Cursor, max, scanBuf[:0])
	if err != nil {
		return scanBuf, err
	}
	return scanBuf, protocol.WriteScanResponse(cs.w, next, scanBuf)
}

// --- backends ---

// routedKey maps a request onto the 60-bit fixed key space: string-key ops
// hash through protocol.HashStringKey, fixed-key ops pass through.
func routedKey(r protocol.Request) uint64 {
	if r.StrKey != nil {
		return protocol.HashStringKey(r.StrKey)
	}
	return r.Key
}

// wireTTL converts a wire millisecond TTL into a duration (0 = never).
func wireTTL(ms uint32) time.Duration {
	return time.Duration(ms) * time.Millisecond
}

// The wire RMW status codes are defined to be numerically identical to the
// partition engine's, so harvesting an outcome is a plain cast. These
// constant indexes fail to compile if either enumeration drifts.
var (
	_ = [1]struct{}{}[partition.RMWStored-partition.RMWStatus(protocol.RMWStatusStored)]
	_ = [1]struct{}{}[partition.RMWNotStored-partition.RMWStatus(protocol.RMWStatusNotStored)]
	_ = [1]struct{}{}[partition.RMWExists-partition.RMWStatus(protocol.RMWStatusExists)]
	_ = [1]struct{}{}[partition.RMWNotFound-partition.RMWStatus(protocol.RMWStatusNotFound)]
	_ = [1]struct{}{}[partition.RMWBadValue-partition.RMWStatus(protocol.RMWStatusBadValue)]
	_ = [1]struct{}{}[partition.RMWTooLarge-partition.RMWStatus(protocol.RMWStatusTooLarge)]
	_ = [1]struct{}{}[partition.RMWNoSpace-partition.RMWStatus(protocol.RMWStatusNoSpace)]
)

// rmwOpOf maps a wire read-modify-write opcode onto the partition engine's
// flavor (0 for a non-RMW opcode).
func rmwOpOf(op uint8) partition.RMWOp {
	switch op {
	case protocol.OpCas, protocol.OpCasStr:
		return partition.RMWCas
	case protocol.OpAdd, protocol.OpAddStr:
		return partition.RMWAdd
	case protocol.OpReplace, protocol.OpReplaceStr:
		return partition.RMWReplace
	case protocol.OpAppend, protocol.OpAppendStr:
		return partition.RMWAppend
	case protocol.OpPrepend, protocol.OpPrependStr:
		return partition.RMWPrepend
	case protocol.OpIncr, protocol.OpIncrStr:
		return partition.RMWIncr
	case protocol.OpDecr, protocol.OpDecrStr:
		return partition.RMWDecr
	case protocol.OpTouch, protocol.OpTouchStr:
		return partition.RMWTouch
	}
	return 0
}

// rmwReqOf translates a wire RMW request into the partition engine's form.
// StrKey/Val alias the request's decode arena; that honors the no-retention
// contract because the engine copies on store and the request outlives the
// synchronous (or settled-before-return) execution.
func rmwReqOf(r protocol.Request) partition.RMWReq {
	return partition.RMWReq{
		Op:     rmwOpOf(r.Op),
		StrKey: r.StrKey,
		Val:    r.Value,
		Ver:    r.Ver,
		Delta:  r.Delta,
		TTL:    r.TTL,
		Prefix: int(r.Prefix),
		MaxVal: protocol.MaxValueSize,
	}
}

// cphashBackend pipelines a batch through a CPHASH client handle.
type cphashBackend struct {
	client   *core.Client
	table    *core.Table
	ops      []*core.Op
	idx      []int    // result index per op; -1 for inserts
	keys     [][]byte // string key per op for GET_STR verification; else nil
	inserted map[uint64]struct{}
	// fenceKeys holds, per partition, one key inserted since the last
	// FenceBatch. An insert's change record is published by the server
	// goroutine only when it processes the (fire-and-forget) Ready
	// message, so "batch settled" does not imply "records published";
	// FenceBatch closes that gap with a lookup per touched partition —
	// its reply rides the same FIFO ring, so receiving it proves every
	// earlier Ready executed. Bounded by the partition count.
	fenceKeys map[int]uint64
	// entryBuf stages SET_STR stored entries (klen|key|value framing) for
	// the current batch. It is sized up front so mid-batch appends never
	// reallocate: in-flight inserts hold pointers into it until they
	// settle, which all happens before ProcessBatch returns.
	entryBuf []byte
}

// NewCPHashBackend returns a Backend factory over one CPHASH table: worker
// i uses client handle i. The table must have been created with MaxClients
// ≥ the worker count.
func NewCPHashBackend(t *core.Table) func(worker int) (Backend, error) {
	return func(worker int) (Backend, error) {
		c, err := t.Client(worker)
		if err != nil {
			return nil, err
		}
		return &cphashBackend{client: c, table: t, inserted: map[uint64]struct{}{}, fenceKeys: map[int]uint64{}}, nil
	}
}

// ProcessBatch pipelines the whole batch asynchronously — deletes ride the
// same rings as lookups and inserts. One subtlety: a LOOKUP of a key
// INSERTed earlier in the same batch must observe the new value, but the
// value only becomes visible once the client has copied it and the server
// has processed the Ready message (§3.2's NOT_READY protocol). Waiting for
// the insert completion before issuing the dependent lookup suffices: the
// Ready message then precedes the lookup on the same FIFO ring, so the
// server is guaranteed to publish before it looks up. A DELETE needs no
// such barrier — it carries no value, so ring FIFO order alone makes a
// later same-batch LOOKUP miss correctly.
func (b *cphashBackend) ProcessBatch(reqs []protocol.Request, results []Result, buf []byte) []byte {
	b.ops = b.ops[:0]
	b.idx = b.idx[:0]
	b.keys = b.keys[:0]
	clear(b.inserted)
	// Pre-size the SET_STR staging slab: growing it mid-batch would move
	// entries out from under in-flight inserts.
	need := 0
	for i := range reqs {
		if reqs[i].Op == protocol.OpSetStr {
			need += 4 + len(reqs[i].StrKey) + len(reqs[i].Value)
		}
	}
	if cap(b.entryBuf) < need {
		b.entryBuf = make([]byte, 0, need+need/2)
	}
	b.entryBuf = b.entryBuf[:0]
	pendingStart := 0
	for i, r := range reqs {
		key := routedKey(r)
		switch r.Op {
		case protocol.OpLookup, protocol.OpGetStr, protocol.OpGets, protocol.OpGetsStr:
			if _, dep := b.inserted[key]; dep {
				buf = b.settle(results, buf, pendingStart)
				pendingStart = len(b.ops)
				clear(b.inserted)
			}
			b.ops = append(b.ops, b.client.LookupAsync(key))
			b.idx = append(b.idx, i)
			b.keys = append(b.keys, r.StrKey)
		case protocol.OpInsert, protocol.OpInsertTTL:
			// INSERTs are silent; still track the op so values (owned by
			// the reader-created request) stay live until copied.
			b.ops = append(b.ops, b.client.InsertTTLAsync(key, r.Value, wireTTL(r.TTL)))
			b.idx = append(b.idx, -1)
			b.keys = append(b.keys, nil)
			b.inserted[key] = struct{}{}
			b.fenceKeys[b.table.PartitionOf(key)] = key
		case protocol.OpSetStr:
			// Embed the string key in the stored entry so collisions are
			// detectable at read time. The entry bytes must stay stable
			// until the op settles (the client copies on reply); they live
			// in the pre-sized batch slab, which cannot reallocate.
			mark := len(b.entryBuf)
			b.entryBuf = protocol.AppendStringEntry(b.entryBuf, r.StrKey, r.Value)
			entry := b.entryBuf[mark:len(b.entryBuf):len(b.entryBuf)]
			b.ops = append(b.ops, b.client.InsertTTLAsync(key, entry, wireTTL(r.TTL)))
			b.idx = append(b.idx, -1)
			b.keys = append(b.keys, nil)
			b.inserted[key] = struct{}{}
			b.fenceKeys[b.table.PartitionOf(key)] = key
		case protocol.OpDelete, protocol.OpDelStr:
			b.ops = append(b.ops, b.client.DeleteAsync(key))
			b.idx = append(b.idx, i)
			b.keys = append(b.keys, nil)
			// A later same-batch lookup of this key needs no settle
			// barrier: the delete precedes it on the FIFO ring.
			delete(b.inserted, key)
		case protocol.OpInsertVer:
			// Replay-with-version (migration, replica catch-up): silent
			// like INSERT, value bytes already carry any string framing.
			b.ops = append(b.ops, b.client.InsertTTLVerAsync(key, r.Value, wireTTL(r.TTL), r.Ver))
			b.idx = append(b.idx, -1)
			b.keys = append(b.keys, nil)
			b.inserted[key] = struct{}{}
			b.fenceKeys[b.table.PartitionOf(key)] = key
		default:
			if !protocol.IsRMW(r.Op) {
				continue
			}
			// An RMW of a key INSERTed earlier in this batch must not
			// observe the not-ready element (it reads as absent); the
			// settle barrier dependent lookups use closes that window.
			// The RMW itself needs no fence key: its change record is
			// published inline on the owning server goroutine before the
			// reply, so settling the op already proves publication. A
			// stored result is immediately ready, so later same-batch
			// lookups need no barrier either (ring FIFO suffices).
			if _, dep := b.inserted[key]; dep {
				buf = b.settle(results, buf, pendingStart)
				pendingStart = len(b.ops)
				clear(b.inserted)
			}
			b.ops = append(b.ops, b.client.RMWAsync(key, rmwReqOf(r)))
			b.idx = append(b.idx, i)
			b.keys = append(b.keys, nil)
		}
	}
	buf = b.settle(results, buf, pendingStart)
	b.ops = b.ops[:0]
	b.keys = b.keys[:0]
	return buf
}

// settle waits for the ops issued since from, harvests lookup and delete
// results, and releases everything.
func (b *cphashBackend) settle(results []Result, buf []byte, from int) []byte {
	b.client.WaitAll()
	for j := from; j < len(b.ops); j++ {
		op := b.ops[j]
		i := b.idx[j]
		if i >= 0 {
			switch op.Type() {
			case core.OpLookup:
				if op.Hit() {
					raw := op.Value()
					v, ok := raw, true
					if sk := b.keys[j]; sk != nil {
						// GET_STR/GETS_STR: verify the embedded key; a
						// 60-bit hash collision stays a miss.
						v, ok = protocol.CutStringEntry(raw, sk)
					}
					if ok {
						start := int32(len(buf))
						buf = append(buf, v...)
						// Ver is harvested unconditionally: GETS consumes
						// it, plain LOOKUP responses ignore it.
						results[i] = Result{Start: start, End: int32(len(buf)), Found: true, Ver: op.Version()}
					}
				}
			case core.OpDelete:
				results[i] = Result{Found: op.Hit()}
			case core.OpRMW:
				r := op.RMW()
				results[i] = Result{Status: uint8(r.Status), Ver: r.OutVer, Num: r.Num}
			}
		}
		b.client.Release(op)
	}
	return buf
}

func (b *cphashBackend) Close() { b.client.Close() }

// FenceBatch implements BatchFencer: one pipelined lookup per partition
// with unfenced inserts. Each reply proves, by per-ring FIFO order, that
// every Ready message issued before it — and therefore every change
// record of the settled batches — has executed on the owning server
// goroutine and been published to the durability sink.
func (b *cphashBackend) FenceBatch() {
	if len(b.fenceKeys) == 0 {
		return
	}
	from := len(b.ops)
	for _, key := range b.fenceKeys {
		b.ops = append(b.ops, b.client.LookupAsync(key))
	}
	b.client.WaitAll()
	for _, op := range b.ops[from:] {
		b.client.Release(op)
	}
	b.ops = b.ops[:from]
	clear(b.fenceKeys)
}

// slotFilter adapts a wire slot bitmap to the key predicate the tables'
// scan paths take. Keys land in slots exactly as the client-side continuum
// places them, so client and server agree on which entries a slot owns.
func slotFilter(slots *protocol.SlotSet) func(uint64) bool {
	return func(k uint64) bool { return slots.Has(cluster.SlotOf(k)) }
}

// ttlMillis converts a remaining TTL to the wire's millisecond field,
// rounding up so "expires soon" never becomes "never expires" (0).
func ttlMillis(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	ms := (ttl + time.Millisecond - 1) / time.Millisecond
	if ms > time.Duration(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(ms)
}

// appendWireEntries converts partition scan entries to wire entries. The
// value bytes were already copied out of the partition by the scan, so the
// wire entry aliases them instead of copying again.
func appendWireEntries(dst []protocol.ScanEntry, entries []partition.ScanEntry) []protocol.ScanEntry {
	for _, e := range entries {
		dst = append(dst, protocol.ScanEntry{Key: e.Key, TTL: ttlMillis(e.TTL), Version: e.Version, Value: e.Value})
	}
	return dst
}

// ScanSlots implements SlotScanner over the CPHASH table: iteration jobs
// execute on the owning server goroutines at sweep boundaries.
func (b *cphashBackend) ScanSlots(slots *protocol.SlotSet, cursor uint64, max int, dst []protocol.ScanEntry) ([]protocol.ScanEntry, uint64, error) {
	entries, next, done, err := b.table.ScanEntries(cursor, max, slotFilter(slots))
	if err != nil {
		return dst, cursor, err
	}
	if done {
		next = protocol.ScanDone
	}
	return appendWireEntries(dst, entries), next, nil
}

// PurgeSlots implements SlotScanner over the CPHASH table.
func (b *cphashBackend) PurgeSlots(slots *protocol.SlotSet, cursor uint64) (int, uint64, error) {
	removed, next, done, err := b.table.PurgeEntries(cursor, slotFilter(slots))
	if err != nil {
		return 0, cursor, err
	}
	if done {
		next = protocol.ScanDone
	}
	return removed, next, nil
}

// lockhashBackend executes a batch synchronously against LOCKHASH.
type lockhashBackend struct {
	table   *lockhash.Table
	scratch []byte // GET_STR staging (raw entry before the key check)
	entry   []byte // SET_STR staging (Put copies under the lock)
}

// NewLockHashBackend returns a Backend factory over one LOCKHASH table
// shared by all workers.
func NewLockHashBackend(t *lockhash.Table) func(worker int) (Backend, error) {
	return func(int) (Backend, error) {
		return &lockhashBackend{table: t}, nil
	}
}

func (b *lockhashBackend) ProcessBatch(reqs []protocol.Request, results []Result, buf []byte) []byte {
	for i, r := range reqs {
		switch r.Op {
		case protocol.OpLookup:
			start := int32(len(buf))
			var found bool
			buf, found = b.table.Get(r.Key, buf)
			results[i] = Result{Start: start, End: int32(len(buf)), Found: found}
		case protocol.OpGetStr:
			raw, found := b.table.Get(protocol.HashStringKey(r.StrKey), b.scratch[:0])
			b.scratch = raw
			if found {
				if v, ok := protocol.CutStringEntry(raw, r.StrKey); ok {
					start := int32(len(buf))
					buf = append(buf, v...)
					results[i] = Result{Start: start, End: int32(len(buf)), Found: true}
				}
			}
		case protocol.OpInsert, protocol.OpInsertTTL:
			b.table.PutTTL(r.Key, r.Value, wireTTL(r.TTL))
		case protocol.OpSetStr:
			b.entry = protocol.AppendStringEntry(b.entry[:0], r.StrKey, r.Value)
			b.table.PutTTL(protocol.HashStringKey(r.StrKey), b.entry, wireTTL(r.TTL))
		case protocol.OpDelete:
			results[i] = Result{Found: b.table.Delete(r.Key)}
		case protocol.OpDelStr:
			results[i] = Result{Found: b.table.Delete(protocol.HashStringKey(r.StrKey))}
		case protocol.OpGets, protocol.OpGetsStr:
			// Value and version must be read atomically; Lookup pins the
			// element so both come from the same entry generation.
			if e := b.table.Lookup(routedKey(r)); e != nil {
				v, ok := e.Value(), true
				if r.StrKey != nil {
					v, ok = protocol.CutStringEntry(v, r.StrKey)
				}
				if ok {
					start := int32(len(buf))
					buf = append(buf, v...)
					results[i] = Result{Start: start, End: int32(len(buf)), Found: true, Ver: e.Version()}
				}
				b.table.Decref(e)
			}
		case protocol.OpInsertVer:
			b.table.PutTTLVer(r.Key, r.Value, wireTTL(r.TTL), r.Ver)
		default:
			if protocol.IsRMW(r.Op) {
				req := rmwReqOf(r)
				b.table.RMW(routedKey(r), &req)
				results[i] = Result{Status: uint8(req.Status), Ver: req.OutVer, Num: req.Num}
			}
		}
	}
	return buf
}

func (b *lockhashBackend) Close() {}

// ScanSlots implements SlotScanner over the LOCKHASH table, holding each
// partition spinlock only for a bounded bucket stretch.
func (b *lockhashBackend) ScanSlots(slots *protocol.SlotSet, cursor uint64, max int, dst []protocol.ScanEntry) ([]protocol.ScanEntry, uint64, error) {
	entries, next, done := b.table.ScanEntries(cursor, max, slotFilter(slots))
	if done {
		next = protocol.ScanDone
	}
	return appendWireEntries(dst, entries), next, nil
}

// PurgeSlots implements SlotScanner over the LOCKHASH table.
func (b *lockhashBackend) PurgeSlots(slots *protocol.SlotSet, cursor uint64) (int, uint64, error) {
	removed, next, done := b.table.PurgeEntries(cursor, slotFilter(slots))
	if done {
		next = protocol.ScanDone
	}
	return removed, next, nil
}

// Sanity: both backends implement Backend and its migration extension;
// only CPHASH needs the group-commit fence (LOCKHASH publishes change
// records synchronously under the partition lock).
var (
	_ Backend     = (*cphashBackend)(nil)
	_ Backend     = (*lockhashBackend)(nil)
	_ SlotScanner = (*cphashBackend)(nil)
	_ SlotScanner = (*lockhashBackend)(nil)
	_ BatchFencer = (*cphashBackend)(nil)
)

// DefaultBufferSize is the per-connection bufio buffer size used when
// Config.BufferSize (server side) or DialBuf's bufSize (client side) is
// not set.
const DefaultBufferSize = 64 << 10

// Dial is a tiny client helper used by tests and examples: it connects and
// returns request/response codecs plus a closer, with default-sized
// buffers.
func Dial(addr string) (*bufio.Writer, *bufio.Reader, io.Closer, error) {
	return DialBuf(addr, DefaultBufferSize)
}

// DialBuf is Dial with an explicit bufio size for both directions, so a
// benchmark can sweep the client buffers in step with the server's
// Config.BufferSize.
func DialBuf(addr string, bufSize int) (*bufio.Writer, *bufio.Reader, io.Closer, error) {
	if bufSize <= 0 {
		bufSize = DefaultBufferSize
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, nil, err
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetNoDelay(true)
	}
	return bufio.NewWriterSize(conn, bufSize), bufio.NewReaderSize(conn, bufSize), conn, nil
}

// MaskKey clips a wire key into the table's 60-bit key space.
func MaskKey(k uint64) uint64 { return k & partition.MaxKey }
