package kvserver

import (
	"fmt"
	"sync"
	"testing"

	"cphash/internal/core"
	"cphash/internal/loadgen"
	"cphash/internal/lockhash"
	"cphash/internal/protocol"
	"cphash/internal/workload"
)

// startCPServer spins up a CPSERVER on loopback.
func startCPServer(t testing.TB, workers int) *Server {
	t.Helper()
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: 8 << 20,
		MaxClients:    workers,
		Seed:          7,
	})
	s, err := Serve(Config{
		Addr:       "127.0.0.1:0",
		Workers:    workers,
		NewBackend: NewCPHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		table.Close()
	})
	return s
}

// startLockServer spins up a LOCKSERVER on loopback.
func startLockServer(t testing.TB, workers int) *Server {
	t.Helper()
	table := lockhash.MustNew(lockhash.Config{
		Partitions:    256,
		CapacityBytes: 8 << 20,
		Seed:          7,
	})
	s, err := Serve(Config{
		Addr:       "127.0.0.1:0",
		Workers:    workers,
		NewBackend: NewLockHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// insertThenLookup drives the raw protocol over one connection.
func insertThenLookup(t *testing.T, addr string) {
	t.Helper()
	w, r, closer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	// Insert (silent) then lookup.
	if err := protocol.WriteRequest(w, protocol.Request{Op: protocol.OpInsert, Key: 42, Value: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, found, err := protocol.ReadLookupResponse(r, nil)
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("lookup = %q %v %v", v, found, err)
	}

	// Miss for an absent key.
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 999})
	w.Flush()
	_, found, err = protocol.ReadLookupResponse(r, nil)
	if err != nil || found {
		t.Fatalf("absent key: found=%v err=%v", found, err)
	}
}

func TestCPServerBasic(t *testing.T) {
	s := startCPServer(t, 1)
	insertThenLookup(t, s.Addr())
	if st := s.Stats(); st.Requests != 3 || st.Connections != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLockServerBasic(t *testing.T) {
	s := startLockServer(t, 2)
	insertThenLookup(t, s.Addr())
}

func TestPipelinedBatch(t *testing.T) {
	s := startCPServer(t, 1)
	w, r, closer, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := protocol.WriteRequest(w, protocol.Request{
			Op: protocol.OpInsert, Key: i, Value: []byte(fmt.Sprintf("v%04d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: i})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := uint64(0); i < n; i++ {
		var found bool
		buf, found, err = protocol.ReadLookupResponse(r, buf[:0])
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if !found || string(buf) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("response %d = %q (found=%v)", i, buf, found)
		}
	}
}

func TestManyConnectionsBalance(t *testing.T) {
	s := startCPServer(t, 4)
	var wg sync.WaitGroup
	const conns = 16
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w, r, closer, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer closer.Close()
			base := uint64(c) << 20
			for i := uint64(0); i < 200; i++ {
				protocol.WriteRequest(w, protocol.Request{
					Op: protocol.OpInsert, Key: base + i, Value: []byte{byte(i)},
				})
				protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: base + i})
			}
			if err := w.Flush(); err != nil {
				t.Error(err)
				return
			}
			var buf []byte
			for i := uint64(0); i < 200; i++ {
				var found bool
				buf, found, err = protocol.ReadLookupResponse(r, buf[:0])
				if err != nil || !found || buf[0] != byte(i) {
					t.Errorf("conn %d resp %d: %q %v %v", c, i, buf, found, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if st := s.Stats(); st.Connections != conns {
		t.Fatalf("accepted %d connections, want %d", st.Connections, conns)
	}
}

func TestLoadgenAgainstBothServers(t *testing.T) {
	for _, kind := range []string{"cpserver", "lockserver"} {
		t.Run(kind, func(t *testing.T) {
			var s *Server
			if kind == "cpserver" {
				s = startCPServer(t, 2)
			} else {
				s = startLockServer(t, 2)
			}
			// 1,024 keys and 10k ops: inserts cover most of the key space,
			// so the hit rate is solidly positive even from a cold cache.
			spec := workload.Default(8 << 10)
			res, err := loadgen.Run(loadgen.Config{
				Addrs:      []string{s.Addr()},
				Conns:      2,
				Pipeline:   32,
				Spec:       spec,
				OpsPerConn: 5000,
				Validate:   true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 10000 {
				t.Fatalf("ops = %d, want 10000", res.Ops)
			}
			if res.BadBytes != 0 {
				t.Fatalf("%d corrupt responses", res.BadBytes)
			}
			if res.HitRate() < 0.3 {
				t.Fatalf("hit rate %.2f suspiciously low", res.HitRate())
			}
			if res.Throughput() <= 0 {
				t.Fatal("zero throughput")
			}
		})
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(Config{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("Serve accepted nil backend factory")
	}
	if _, err := Serve(Config{Addr: "256.0.0.1:bad", NewBackend: func(int) (Backend, error) {
		return nil, nil
	}}); err == nil {
		t.Fatal("Serve accepted a bad address")
	}
}

func TestCloseIdempotentAndDropsConns(t *testing.T) {
	s := startCPServer(t, 1)
	w, r, closer, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 1})
	w.Flush()
	if _, _, err := protocol.ReadLookupResponse(r, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	// The connection is now closed; further reads must fail.
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 1})
	w.Flush()
	if _, _, err := protocol.ReadLookupResponse(r, nil); err == nil {
		t.Fatal("read succeeded on closed server")
	}
}

func TestGarbageInputDropsConnection(t *testing.T) {
	s := startCPServer(t, 1)
	w, r, closer, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	// A full frame's worth of bytes with an invalid opcode: the server
	// parses the op and key, rejects the op, and drops the connection.
	w.Write(append([]byte{0xFF}, make([]byte, 12)...))
	w.Flush()
	if _, _, err := protocol.ReadLookupResponse(r, nil); err == nil {
		t.Fatal("server kept the connection after a protocol error")
	}
}
