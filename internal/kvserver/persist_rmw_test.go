package kvserver

import (
	"bytes"
	"fmt"
	"testing"

	"cphash/internal/client"
	"cphash/internal/persist"
	"cphash/internal/protocol"
)

// TestRecoverPreservesRMWVersions: CAS version tokens are durable state,
// not an in-memory artifact. A value built up through the
// read-modify-write ops (add, incr, append, cas) must come back from a
// warm restart with the exact version the client last saw — otherwise a
// cached gets token turns into a spurious EXISTS (or worse, a false
// STORED against a regressed version) after every restart. The WAL
// replay path makes this work by re-inserting with the logged version
// (InsertExpireVer) instead of assigning fresh ones.
func TestRecoverPreservesRMWVersions(t *testing.T) {
	dir := t.TempDir()
	srv, table, pipe, _ := persistServer(t, dir, persist.SyncInterval)

	c, err := client.New(client.Config{Nodes: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}

	// Build each key through a different mutation history so the WAL
	// holds a mix of fresh inserts, overwrites, and composed values.
	const keys = 40
	wantVal := make(map[string][]byte, keys)
	wantVer := make(map[string]uint64, keys)
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("rmw:durable:%d", i))
		if out, err := c.AddString(k, []byte("10"), 0); err != nil || !out.Stored() {
			t.Fatalf("add %s: %+v %v", k, out, err)
		}
		switch i % 4 {
		case 0: // leave as the freshly added value
		case 1:
			for j := 0; j < 3; j++ {
				if out, err := c.IncrString(k, 7); err != nil || !out.Stored() {
					t.Fatalf("incr %s: %+v %v", k, out, err)
				}
			}
		case 2:
			if out, err := c.AppendString(k, []byte("-tail")); err != nil || !out.Stored() {
				t.Fatalf("append %s: %+v %v", k, out, err)
			}
		case 3:
			_, ver, found, err := c.GetsString(k)
			if err != nil || !found {
				t.Fatalf("gets %s: found=%v err=%v", k, found, err)
			}
			if out, err := c.CasString(k, []byte("cas-written"), ver, 0); err != nil || !out.Stored() {
				t.Fatalf("cas %s: %+v %v", k, out, err)
			}
		}
		v, ver, found, err := c.GetsString(k)
		if err != nil || !found {
			t.Fatalf("pre-restart gets %s: found=%v err=%v", k, found, err)
		}
		wantVal[string(k)] = append([]byte{}, v...)
		wantVer[string(k)] = ver
	}
	c.Close()

	if err := pipe.Snapshot(); err != nil { // half snapshot, half WAL tail
		t.Fatal(err)
	}
	// A post-snapshot mutation so the WAL tail also carries a version.
	c2, err := client.New(client.Config{Nodes: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	tailKey := []byte("rmw:durable:0")
	if out, err := c2.IncrString(tailKey, 5); err != nil || !out.Stored() {
		t.Fatalf("tail incr: %+v %v", out, err)
	}
	v, ver, found, err := c2.GetsString(tailKey)
	if err != nil || !found {
		t.Fatalf("tail gets: found=%v err=%v", found, err)
	}
	wantVal[string(tailKey)] = append([]byte{}, v...)
	wantVer[string(tailKey)] = ver
	c2.Close()

	srv.Close()
	table.Close()

	srv2, table2, _, rst := persistServer(t, dir, persist.SyncInterval)
	defer table2.Close()
	defer srv2.Close()
	if rst.SnapshotEntries == 0 && rst.WALRecords == 0 {
		t.Fatalf("restore recovered nothing: %+v", rst)
	}

	c3, err := client.New(client.Config{Nodes: []string{srv2.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("rmw:durable:%d", i))
		v, ver, found, err := c3.GetsString(k)
		if err != nil || !found {
			t.Fatalf("post-restart gets %s: found=%v err=%v", k, found, err)
		}
		if !bytes.Equal(v, wantVal[string(k)]) || ver != wantVer[string(k)] {
			t.Fatalf("post-restart %s = %q v%d, want %q v%d", k, v, ver, wantVal[string(k)], wantVer[string(k)])
		}
		// The recovered token must actually work: a CAS against it is the
		// real consumer of version durability.
		out, err := c3.CasString(k, []byte("post-restart"), ver, 0)
		if err != nil || out.Status != protocol.RMWStatusStored {
			t.Fatalf("cas with recovered token on %s: %+v %v", k, out, err)
		}
		if out.Ver <= ver {
			t.Fatalf("cas after restart on %s: version went %d → %d, want strictly increasing", k, ver, out.Ver)
		}
	}
}
