package kvserver

import (
	"testing"
	"time"

	"cphash/internal/core"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/protocol"
)

// persistServer boots a CPSERVER whose CPHASH table is wired to a fresh
// durability pipeline on dir, restoring any prior state first.
func persistServer(t *testing.T, dir string, policy persist.SyncPolicy) (*Server, *core.Table, *persist.Pipeline, persist.RecoverStats) {
	t.Helper()
	pipe, err := persist.Open(persist.Config{
		Dir:    dir,
		Policy: policy,
		// Long enough that interval syncs never fire during a test: any
		// durability observed comes from shutdown or group commit.
		SyncInterval: time.Hour,
		Streams:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: 4 << 20,
		MaxClients:    1,
		Seed:          1,
		Sink:          func(p int) partition.ChangeSink { return pipe.Appender(p) },
	})
	pipe.SetSource(persist.CoreSource(table))
	rst, err := persist.RestoreCore(pipe, table, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(Config{
		Addr:       "127.0.0.1:0",
		Workers:    1,
		NewBackend: NewCPHashBackend(table),
		Persist:    pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, table, pipe, rst
}

// ackWrites SETs keys [0,n) and then GETs key 0 on the same connection:
// per-connection FIFO means the returned response acknowledges that
// every SET before it was processed (and, under sync=always, committed).
func ackWrites(t *testing.T, addr string, n int, val []byte) {
	t.Helper()
	bw, br, closer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	for k := 0; k < n; k++ {
		if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpInsert, Key: uint64(k), Value: val}); err != nil {
			t.Fatal(err)
		}
	}
	if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpLookup, Key: 0}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, found, err := protocol.ReadLookupResponse(br, nil); err != nil || !found {
		t.Fatalf("ack lookup: found=%v err=%v", found, err)
	}
}

// recoverKeys replays dir's durable state into a plain map.
func recoverKeys(t *testing.T, dir string) map[uint64]string {
	t.Helper()
	p, err := persist.Open(persist.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]string{}
	if _, err := p.Recover(func(op persist.Op, key uint64, exp int64, ver uint64, v []byte) error {
		if op == persist.OpSet {
			got[key] = string(v)
		} else {
			delete(got, key)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestGracefulShutdownFlushesWAL is the shutdown-drain regression test:
// writes acknowledged only at the cache layer (sync=interval, interval
// never elapsing) must still be on disk after a graceful Close, because
// Close quiesces the worker queues and flushes the pipeline before
// returning. Before the fix the process could exit with the whole WAL
// tail sitting in user-space buffers.
func TestGracefulShutdownFlushesWAL(t *testing.T) {
	dir := t.TempDir()
	srv, table, _, _ := persistServer(t, dir, persist.SyncInterval)
	const n = 500
	val := []byte("shutdown-flush-regression")
	ackWrites(t, srv.Addr(), n, val)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	table.Close()

	got := recoverKeys(t, dir)
	for k := 0; k < n; k++ {
		if got[uint64(k)] != string(val) {
			t.Fatalf("key %d lost by graceful shutdown (have %d keys)", k, len(got))
		}
	}
}

// TestGroupCommitSurvivesCrash: under sync=always a response reaches the
// client only after the batch's change records are fsynced, so even an
// abrupt kill (no drain, no flush) right after the ack loses nothing.
func TestGroupCommitSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	srv, table, pipe, _ := persistServer(t, dir, persist.SyncAlways)
	const n = 300
	val := []byte("group-commit")
	ackWrites(t, srv.Addr(), n, val)

	// Crash: persisters die in place; then tear down the serving side
	// without the graceful pipeline flush (Close sees the pipeline
	// already dead and skips it).
	pipe.Kill()
	srv.Close()
	table.Close()

	got := recoverKeys(t, dir)
	for k := 0; k < n; k++ {
		if got[uint64(k)] != string(val) {
			t.Fatalf("acked key %d lost by crash under sync=always (have %d keys)", k, len(got))
		}
	}
}

// TestWarmRestartServesRecoveredKeys is the end-to-end warm restart: a
// server writes through the CPHASH sink path, shuts down, and a second
// server built over the same datadir serves every key with zero misses.
func TestWarmRestartServesRecoveredKeys(t *testing.T) {
	dir := t.TempDir()
	srv, table, pipe, _ := persistServer(t, dir, persist.SyncInterval)
	const n = 400
	val := []byte("warm-restart-value")
	ackWrites(t, srv.Addr(), n, val)
	if err := pipe.Snapshot(); err != nil { // half snapshot, half WAL tail
		t.Fatal(err)
	}
	ackWrites(t, srv.Addr(), n/2, []byte("tail-overwrite"))
	srv.Close()
	table.Close()

	srv2, table2, _, rst := persistServer(t, dir, persist.SyncInterval)
	defer table2.Close()
	defer srv2.Close()
	if rst.SnapshotEntries == 0 {
		t.Fatalf("warm restart loaded no snapshot: %+v", rst)
	}
	bw, br, closer, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	readOne := func(k uint64) (string, bool) {
		if err := protocol.WriteRequest(bw, protocol.Request{Op: protocol.OpLookup, Key: k}); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		out, found, err := protocol.ReadLookupResponse(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		return string(out), found
	}
	for k := 0; k < n; k++ {
		want := string(val)
		if k < n/2 {
			want = "tail-overwrite"
		}
		got, found := readOne(uint64(k))
		if !found {
			t.Fatalf("warm restart missed key %d", k)
		}
		if got != want {
			t.Fatalf("key %d: %q, want %q", k, got, want)
		}
	}
}
