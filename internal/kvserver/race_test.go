package kvserver

import (
	"fmt"
	"sync"
	"testing"

	"cphash/internal/core"
	"cphash/internal/protocol"
)

// TestRaceNoLostDeletes hammers one CPSERVER with concurrent GET/SET/DELETE
// clients (run it with -race). Each writer owns a disjoint set of keys —
// half fixed 60-bit keys, half string keys — so per-connection FIFO
// ordering gives an exact correctness oracle despite full concurrency
// across connections and batches:
//
//   - after a DELETE's response arrives, GETs of that key on the same
//     connection must miss until the owner SETs it again — a deleted key
//     never resurrects;
//   - a GET hit must return exactly the owner's last-SET value — batching
//     never crosses values between keys or generations.
//
// Concurrent readers meanwhile GET random keys across all owners and check
// that any hit is well-formed for that key, whatever its generation.
func TestRaceNoLostDeletes(t *testing.T) {
	const (
		workers        = 4
		writersPerKind = 3
		keysPerWriter  = 8
		readers        = 2
	)
	iters := 200
	if testing.Short() {
		iters = 50
	}

	table := core.MustNew(core.Config{
		Partitions:    4,
		CapacityBytes: 8 << 20,
		MaxClients:    workers,
	})
	defer table.Close()
	srv, err := Serve(Config{Addr: "127.0.0.1:0", Workers: workers, NewBackend: NewCPHashBackend(table)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2*writersPerKind+readers)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	value := func(owner, key, gen int) []byte {
		return fmt.Appendf(nil, "o=%d k=%d g=%d", owner, key, gen)
	}
	prefix := func(owner, key int) string {
		return fmt.Sprintf("o=%d k=%d ", owner, key)
	}

	// writer drives SET→GET→DELETE→GET cycles over its own keys through
	// the supplied codec ops; the same loop covers fixed and string keys.
	writer := func(owner int, set func(key, gen int), get func(key int) ([]byte, bool), del func(key int) bool) {
		defer wg.Done()
		for gen := 0; gen < iters; gen++ {
			for k := 0; k < keysPerWriter; k++ {
				set(k, gen)
			}
			for k := 0; k < keysPerWriter; k++ {
				if v, ok := get(k); ok && string(v) != string(value(owner, k, gen)) {
					fail("writer %d: GET key %d gen %d = %q, want %q", owner, k, gen, v, value(owner, k, gen))
					return
				}
				// A miss is legal (eviction); a stale or foreign value is not.
			}
			for k := 0; k < keysPerWriter; k += 2 {
				del(k) // found may be false if eviction got there first
				if v, ok := get(k); ok {
					fail("writer %d: key %d resurrected after DELETE with %q (gen %d)", owner, k, v, gen)
					return
				}
			}
		}
	}

	// Fixed-key writers.
	for o := 0; o < writersPerKind; o++ {
		owner := o
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()
		base := uint64(1000 * (owner + 1))
		wg.Add(1)
		go writer(owner,
			func(key, gen int) {
				c.send(protocol.Request{Op: protocol.OpInsert, Key: base + uint64(key), Value: value(owner, key, gen)})
			},
			func(key int) ([]byte, bool) { return c.get(base + uint64(key)) },
			func(key int) bool {
				return c.del(protocol.Request{Op: protocol.OpDelete, Key: base + uint64(key)})
			})
	}

	// String-key writers (distinct owner ids so key spaces stay disjoint).
	for o := 0; o < writersPerKind; o++ {
		owner := writersPerKind + o
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()
		skey := func(key int) []byte { return fmt.Appendf(nil, "owner-%d/key-%d", owner, key) }
		wg.Add(1)
		go writer(owner,
			func(key, gen int) {
				c.send(protocol.Request{Op: protocol.OpSetStr, StrKey: skey(key), Value: value(owner, key, gen)})
			},
			func(key int) ([]byte, bool) { return c.getStr(string(skey(key))) },
			func(key int) bool {
				return c.del(protocol.Request{Op: protocol.OpDelStr, StrKey: skey(key)})
			})
	}

	// Readers sample every owner's keys and only require well-formedness.
	for r := 0; r < readers; r++ {
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters*keysPerWriter; i++ {
				owner := i % (2 * writersPerKind)
				key := i % keysPerWriter
				var v []byte
				var ok bool
				if owner < writersPerKind {
					v, ok = c.get(uint64(1000*(owner+1)) + uint64(key))
				} else {
					v, ok = c.getStr(fmt.Sprintf("owner-%d/key-%d", owner, key))
				}
				if ok {
					want := prefix(owner, key)
					if len(v) < len(want) || string(v[:len(want)]) != want {
						fail("reader: owner %d key %d returned foreign value %q", owner, key, v)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All clients are idle, so the table is quiescent (the TCP round trips
	// order every partition write before this read).
	if err := table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
