package kvserver

import (
	"fmt"
	"testing"

	"cphash/internal/cluster"
	"cphash/internal/protocol"
)

// scanAll drives cursor-chained SCAN round trips until ScanDone.
func (c *wireClient) scanAll(slots *protocol.SlotSet, count uint32) []protocol.ScanEntry {
	c.t.Helper()
	var out []protocol.ScanEntry
	cursor := uint64(0)
	for {
		c.send(protocol.Request{Op: protocol.OpScan, Slots: *slots, Cursor: cursor, Count: count})
		c.w.Flush()
		next, entries, err := protocol.ReadScanResponse(c.r, nil)
		if err != nil {
			c.t.Fatal(err)
		}
		out = append(out, entries...)
		if next == protocol.ScanDone {
			return out
		}
		cursor = next
	}
}

// purgeAll drives cursor-chained PURGE round trips until ScanDone.
func (c *wireClient) purgeAll(slots *protocol.SlotSet) int {
	c.t.Helper()
	total := 0
	cursor := uint64(0)
	for {
		c.send(protocol.Request{Op: protocol.OpPurge, Slots: *slots, Cursor: cursor})
		c.w.Flush()
		next, removed, err := protocol.ReadPurgeResponse(c.r)
		if err != nil {
			c.t.Fatal(err)
		}
		total += int(removed)
		if next == protocol.ScanDone {
			return total
		}
		cursor = next
	}
}

// TestWireScanPurge: entries written through the normal write path come
// back through SCAN exactly once per selected slot — fixed and string
// keys, TTLs preserved — and PURGE removes exactly the selected slots, on
// both backends.
func TestWireScanPurge(t *testing.T) {
	eachBackend(t, 2, func(t *testing.T, srv *Server) {
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()

		const n = 600
		expect := map[uint64][]byte{} // routed key -> raw stored value
		ttlKeys := map[uint64]bool{}
		for k := uint64(0); k < n; k++ {
			v := []byte(fmt.Sprintf("v-%d", k))
			if k%4 == 0 {
				c.send(protocol.Request{Op: protocol.OpInsertTTL, Key: k, TTL: 60_000, Value: v})
				ttlKeys[k] = true
			} else {
				c.send(protocol.Request{Op: protocol.OpInsert, Key: k, Value: v})
			}
			expect[k] = v
		}
		// A few string keys ride along; their stored value embeds the key.
		for i := 0; i < 20; i++ {
			sk := []byte(fmt.Sprintf("user:%d", i))
			v := []byte(fmt.Sprintf("str-%d", i))
			c.send(protocol.Request{Op: protocol.OpSetStr, StrKey: sk, TTL: 0, Value: v})
			expect[protocol.HashStringKey(sk)] = protocol.AppendStringEntry(nil, sk, v)
		}
		// Barrier: one response-bearing op flushes the silent writes through.
		if _, found := c.get(0); !found {
			t.Fatal("barrier get missed")
		}

		// Scan every slot in small batches.
		var all protocol.SlotSet
		for s := 0; s < cluster.Slots; s++ {
			all.Add(s)
		}
		got := map[uint64][]byte{}
		for _, e := range c.scanAll(&all, 37) {
			if _, dup := got[e.Key]; dup {
				t.Fatalf("key %d scanned twice", e.Key)
			}
			got[e.Key] = e.Value
			if ttlKeys[e.Key] {
				if e.TTL == 0 || e.TTL > 60_000 {
					t.Fatalf("key %d: TTL %d ms", e.Key, e.TTL)
				}
			} else if e.TTL != 0 {
				t.Fatalf("key %d: unexpected TTL %d", e.Key, e.TTL)
			}
		}
		if len(got) != len(expect) {
			t.Fatalf("scan saw %d entries, want %d", len(got), len(expect))
		}
		for k, v := range expect {
			if string(got[k]) != string(v) {
				t.Fatalf("key %d: scanned %q, want %q", k, got[k], v)
			}
		}

		// Scanning half the slots returns exactly the matching subset.
		var half protocol.SlotSet
		for s := 0; s < cluster.Slots/2; s++ {
			half.Add(s)
		}
		wantHalf := 0
		for k := range expect {
			if cluster.SlotOf(k) < cluster.Slots/2 {
				wantHalf++
			}
		}
		halfEntries := c.scanAll(&half, 0)
		if len(halfEntries) != wantHalf {
			t.Fatalf("half scan saw %d entries, want %d", len(halfEntries), wantHalf)
		}
		for _, e := range halfEntries {
			if cluster.SlotOf(e.Key) >= cluster.Slots/2 {
				t.Fatalf("half scan leaked slot %d", cluster.SlotOf(e.Key))
			}
		}

		// Purge that half; the other half must stay readable.
		if removed := c.purgeAll(&half); removed != wantHalf {
			t.Fatalf("purge removed %d, want %d", removed, wantHalf)
		}
		for k := range expect {
			_, found := c.get(k)
			if want := cluster.SlotOf(k) >= cluster.Slots/2; found != want {
				t.Fatalf("after purge: Get(%d) found=%v, want %v", k, found, want)
			}
		}
		// Purging again removes nothing (idempotent).
		if removed := c.purgeAll(&half); removed != 0 {
			t.Fatalf("second purge removed %d", removed)
		}
	})
}

// TestWireScanInterleavedWithTraffic: SCAN responses interleave correctly
// with regular responses on the same connection (per-connection FIFO), and
// a scan under concurrent inserts neither hangs nor corrupts frames.
func TestWireScanInterleavedWithTraffic(t *testing.T) {
	eachBackend(t, 2, func(t *testing.T, srv *Server) {
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()
		var all protocol.SlotSet
		for s := 0; s < cluster.Slots; s++ {
			all.Add(s)
		}
		c.send(protocol.Request{Op: protocol.OpInsert, Key: 1, Value: []byte("one")})
		// LOOKUP, SCAN, DELETE back-to-back in one flush: the responses
		// must come back in exactly that order.
		c.send(protocol.Request{Op: protocol.OpLookup, Key: 1})
		c.send(protocol.Request{Op: protocol.OpScan, Slots: all, Count: 10})
		c.send(protocol.Request{Op: protocol.OpDelete, Key: 1})
		c.w.Flush()

		v, found, err := protocol.ReadLookupResponse(c.r, nil)
		if err != nil || !found || string(v) != "one" {
			t.Fatalf("lookup: %q %v %v", v, found, err)
		}
		_, entries, err := protocol.ReadScanResponse(c.r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Key != 1 || string(entries[0].Value) != "one" {
			t.Fatalf("scan: %+v", entries)
		}
		if found, err := protocol.ReadDeleteResponse(c.r); err != nil || !found {
			t.Fatalf("delete: %v %v", found, err)
		}

		// Concurrent inserts from a second connection while this one scans
		// (bounded: the host may be a single CPU, and an unbounded flood
		// would starve the scanner).
		c2, closeConn2 := dialT(t, srv.Addr())
		defer closeConn2()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for k := uint64(100); k < 2100; k++ {
				select {
				case <-stop:
					return
				default:
				}
				c2.send(protocol.Request{Op: protocol.OpInsert, Key: k, Value: []byte("x")})
				c2.w.Flush()
			}
		}()
		for pass := 0; pass < 3; pass++ {
			c.scanAll(&all, 128)
		}
		close(stop)
		<-done
	})
}
