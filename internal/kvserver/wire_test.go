package kvserver

import (
	"bufio"
	"fmt"
	"testing"
	"time"

	"cphash/internal/core"
	"cphash/internal/lockhash"
	"cphash/internal/protocol"
)

// eachBackend runs fn against a fresh server for both backend designs.
func eachBackend(t *testing.T, workers int, fn func(t *testing.T, srv *Server)) {
	t.Helper()
	t.Run("cphash", func(t *testing.T) {
		table := core.MustNew(core.Config{
			Partitions:    2,
			CapacityBytes: 4 << 20,
			MaxClients:    workers,
		})
		defer table.Close()
		srv, err := Serve(Config{Addr: "127.0.0.1:0", Workers: workers, NewBackend: NewCPHashBackend(table)})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		fn(t, srv)
	})
	t.Run("lockhash", func(t *testing.T) {
		table := lockhash.MustNew(lockhash.Config{Partitions: 16, CapacityBytes: 4 << 20})
		srv, err := Serve(Config{Addr: "127.0.0.1:0", Workers: workers, NewBackend: NewLockHashBackend(table)})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		fn(t, srv)
	})
}

// wireClient bundles the codec halves of one test connection.
type wireClient struct {
	w *bufio.Writer
	r *bufio.Reader
	t *testing.T
}

func dialT(t *testing.T, addr string) (*wireClient, func()) {
	t.Helper()
	w, r, c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return &wireClient{w: w, r: r, t: t}, func() { c.Close() }
}

func (c *wireClient) send(req protocol.Request) {
	c.t.Helper()
	if err := protocol.WriteRequest(c.w, req); err != nil {
		c.t.Fatal(err)
	}
}

func (c *wireClient) getStr(key string) ([]byte, bool) {
	c.t.Helper()
	c.send(protocol.Request{Op: protocol.OpGetStr, StrKey: []byte(key)})
	c.w.Flush()
	v, found, err := protocol.ReadLookupResponse(c.r, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	return v, found
}

func (c *wireClient) get(key uint64) ([]byte, bool) {
	c.t.Helper()
	c.send(protocol.Request{Op: protocol.OpLookup, Key: key})
	c.w.Flush()
	v, found, err := protocol.ReadLookupResponse(c.r, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	return v, found
}

func (c *wireClient) del(req protocol.Request) bool {
	c.t.Helper()
	c.send(req)
	c.w.Flush()
	found, err := protocol.ReadDeleteResponse(c.r)
	if err != nil {
		c.t.Fatal(err)
	}
	return found
}

// TestWireStringTTLDeleteAcceptance is the PR's acceptance scenario over a
// live TCP connection: SET a string key with a TTL, GET it back, see it
// vanish after expiry, and DELETE another key — against both backends.
func TestWireStringTTLDeleteAcceptance(t *testing.T) {
	eachBackend(t, 2, func(t *testing.T, srv *Server) {
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()

		// SET_STR with a short TTL, plus a durable key to DELETE later.
		c.send(protocol.Request{Op: protocol.OpSetStr, StrKey: []byte("session:alice"),
			TTL: 150, Value: []byte("logged-in")})
		c.send(protocol.Request{Op: protocol.OpSetStr, StrKey: []byte("page:/home"),
			Value: []byte("<html>home</html>")})

		// GET both back before expiry (the SETs are silent; FIFO ordering
		// on one connection makes the GETs observe them).
		if v, ok := c.getStr("session:alice"); !ok || string(v) != "logged-in" {
			t.Fatalf("GET_STR session:alice = %q, %v; want logged-in", v, ok)
		}
		if v, ok := c.getStr("page:/home"); !ok || string(v) != "<html>home</html>" {
			t.Fatalf("GET_STR page:/home = %q, %v", v, ok)
		}

		// After the TTL elapses the session is gone; the page persists.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok := c.getStr("session:alice"); !ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("session:alice still visible long after its 150ms TTL")
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, ok := c.getStr("page:/home"); !ok {
			t.Fatal("page:/home (no TTL) vanished")
		}

		// DELETE the page; a second delete reports not-found; GET misses.
		if !c.del(protocol.Request{Op: protocol.OpDelStr, StrKey: []byte("page:/home")}) {
			t.Fatal("DEL_STR page:/home reported not found")
		}
		if c.del(protocol.Request{Op: protocol.OpDelStr, StrKey: []byte("page:/home")}) {
			t.Fatal("second DEL_STR reported found")
		}
		if _, ok := c.getStr("page:/home"); ok {
			t.Fatal("page:/home visible after DELETE")
		}
	})
}

// TestWireNumericTTLDelete covers the fixed-key v2 ops: INSERT_TTL expiry
// and DELETE responses, pipelined in one batch write.
func TestWireNumericTTLDelete(t *testing.T) {
	eachBackend(t, 1, func(t *testing.T, srv *Server) {
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()

		// One pipelined batch: insert 3 keys (one with TTL), read them,
		// delete one, read it again.
		c.send(protocol.Request{Op: protocol.OpInsertTTL, Key: 1, TTL: 150, Value: []byte("ephemeral")})
		c.send(protocol.Request{Op: protocol.OpInsert, Key: 2, Value: []byte("durable")})
		c.send(protocol.Request{Op: protocol.OpInsertTTL, Key: 3, TTL: 0, Value: []byte("ttl-zero")})
		c.send(protocol.Request{Op: protocol.OpLookup, Key: 1})
		c.send(protocol.Request{Op: protocol.OpLookup, Key: 2})
		c.send(protocol.Request{Op: protocol.OpDelete, Key: 2})
		c.send(protocol.Request{Op: protocol.OpLookup, Key: 2})
		c.send(protocol.Request{Op: protocol.OpDelete, Key: 99})
		c.w.Flush()

		expect := func(wantV string, wantOK bool) {
			t.Helper()
			v, ok, err := protocol.ReadLookupResponse(c.r, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || string(v) != wantV {
				t.Fatalf("lookup = %q, %v; want %q, %v", v, ok, wantV, wantOK)
			}
		}
		expect("ephemeral", true)
		expect("durable", true)
		if found, err := protocol.ReadDeleteResponse(c.r); err != nil || !found {
			t.Fatalf("DELETE 2 = %v, %v; want found", found, err)
		}
		expect("", false) // deleted within the same batch
		if found, err := protocol.ReadDeleteResponse(c.r); err != nil || found {
			t.Fatalf("DELETE 99 = %v, %v; want not found", found, err)
		}

		// TTL=0 means never expires; TTL=150ms means gone soon.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok := c.get(1); !ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("key 1 still visible long after its 150ms TTL")
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, ok := c.get(3); !ok {
			t.Fatal("key 3 (TTL 0 = never) vanished")
		}
	})
}

// TestWireStringCollisionSafety: two different string keys coexist, and a
// GET_STR of a never-set key misses even though the table is busy.
func TestWireStringCollisionSafety(t *testing.T) {
	eachBackend(t, 1, func(t *testing.T, srv *Server) {
		c, closeConn := dialT(t, srv.Addr())
		defer closeConn()
		for i := 0; i < 64; i++ {
			c.send(protocol.Request{Op: protocol.OpSetStr,
				StrKey: fmt.Appendf(nil, "key-%d", i), Value: fmt.Appendf(nil, "val-%d", i)})
		}
		for i := 0; i < 64; i++ {
			if v, ok := c.getStr(fmt.Sprintf("key-%d", i)); !ok || string(v) != fmt.Sprintf("val-%d", i) {
				t.Fatalf("key-%d = %q, %v", i, v, ok)
			}
		}
		if _, ok := c.getStr("never-set"); ok {
			t.Fatal("GET_STR of a never-set key hit")
		}
	})
}
