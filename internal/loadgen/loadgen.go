// Package loadgen is the TCP load generator for the Figure 13/14
// experiments: it drives a workload.Spec query mix through the sharded
// client SDK (internal/client) at a configurable pipeline depth and
// reports throughput, hit rate and latency.
//
// Key→node placement is entirely the client's concern: every key routes
// through the internal/cluster continuum, the same way the paper's
// clients spread keys over per-core memcached instances. loadgen itself
// holds no partitioning logic.
//
// The paper generates load from a second 48-core machine over 10 Gbps
// Ethernet; this reproduction drives loopback on one machine, which
// preserves the compute ratios Figure 13 is about (see DESIGN.md).
package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/client"
	"cphash/internal/perf"
	"cphash/internal/workload"
)

// Config parameterizes Run.
type Config struct {
	// Addrs are the server addresses. Keys are spread across them by the
	// cluster continuum (one address for CPSERVER/LOCKSERVER; one per
	// instance for a multi-instance cluster).
	Addrs []string
	// Conns is the number of concurrent pipelined sessions (default 4).
	Conns int
	// Pipeline is the number of requests written per window before the
	// responses are drained (default 64).
	Pipeline int
	// Spec is the workload (keys, value size, insert ratio).
	Spec workload.Spec
	// OpsPerConn is how many operations each session performs.
	OpsPerConn int
	// Validate checks every hit's bytes against the workload's expected
	// value (costs CPU; off for throughput runs).
	Validate bool
}

// Result summarizes a run.
type Result struct {
	Ops      int64
	Hits     int64
	Misses   int64
	BadBytes int64 // validation failures (must be 0)
	Elapsed  time.Duration
	// Latency is the per-window round-trip distribution in nanoseconds.
	Latency *perf.Histogram
	// Nodes holds per-server client-side counters, keyed by address.
	Nodes map[string]client.Stats
}

// Throughput returns queries/second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// HitRate returns hits / lookups.
func (r Result) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// String renders the result in the paper's reporting units.
func (r Result) String() string {
	return fmt.Sprintf("%.3g queries/sec (%d ops, hit rate %.2f, %v)",
		r.Throughput(), r.Ops, r.HitRate(), r.Elapsed.Round(time.Millisecond))
}

// Run drives the configured load and blocks until done.
func Run(cfg Config) (Result, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 64
	}
	if cfg.OpsPerConn <= 0 {
		cfg.OpsPerConn = 10000
	}
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, err
	}
	// All traffic is pipelined, so MaxRetries (a sync-path knob) is moot;
	// a transport failure aborts the run, as a measurement tool wants.
	cli, err := client.New(client.Config{
		Nodes:        cfg.Addrs,
		ConnsPerNode: cfg.Conns, // one pipelined session per logical conn
		Window:       cfg.Pipeline + 1,
	})
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: %w", err)
	}
	defer cli.Close()

	var (
		ops, hits, misses, bad atomic.Int64
		wg                     sync.WaitGroup
		firstErr               atomic.Value
		histMu                 sync.Mutex
	)
	hist := perf.NewHistogram()

	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			h, err := runConn(cli, cfg, ci, &ops, &hits, &misses, &bad)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			histMu.Lock()
			hist.Merge(h)
			histMu.Unlock()
		}(ci)
	}
	wg.Wait()
	res := Result{
		Ops:      ops.Load(),
		Hits:     hits.Load(),
		Misses:   misses.Load(),
		BadBytes: bad.Load(),
		Elapsed:  time.Since(start),
		Latency:  hist,
		Nodes:    cli.NodeStats(),
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return res, err
	}
	return res, nil
}

// runConn drives one pipelined session: windows of Pipeline requests
// issued through the client (which routes each key to its node), then the
// lookup futures drained and scored.
func runConn(cli *client.Client, cfg Config, ci int, ops, hits, misses, bad *atomic.Int64) (*perf.Histogram, error) {
	pipe := cli.Pipeline()
	defer pipe.Close()
	// Each window's futures are fully scored before the next Wait, so the
	// pipeline can recycle its slab and futures — the measurement loop
	// stays allocation-free instead of GC-churning at high op rates.
	pipe.SetReuseValues(true)

	spec := cfg.Spec
	spec.Seed = cfg.Spec.Seed + uint64(ci)*0x9e3779b9 + 17
	gen, err := workload.NewGenerator(spec)
	if err != nil {
		return nil, err
	}

	hist := perf.NewHistogram()
	valBuf := make([]byte, cfg.Spec.MaxValueSize())
	type pendingLookup struct {
		look *client.Lookup
		key  uint64
	}
	pending := make([]pendingLookup, 0, cfg.Pipeline)

	remaining := cfg.OpsPerConn
	for remaining > 0 {
		window := cfg.Pipeline
		if window > remaining {
			window = remaining
		}
		pending = pending[:0]
		t0 := time.Now()
		for i := 0; i < window; i++ {
			kind, key := gen.Next()
			switch kind {
			case workload.Insert:
				v := cfg.Spec.FillValue(key, valBuf)
				if err := pipe.Set(key, v); err != nil {
					return nil, fmt.Errorf("loadgen: insert: %w", err)
				}
			case workload.Lookup:
				pending = append(pending, pendingLookup{look: pipe.Get(key), key: key})
			}
		}
		if err := pipe.Wait(); err != nil {
			return nil, fmt.Errorf("loadgen: window: %w", err)
		}
		for _, p := range pending {
			if err := p.look.Err(); err != nil {
				return nil, fmt.Errorf("loadgen: lookup: %w", err)
			}
			if p.look.Found() {
				hits.Add(1)
				if cfg.Validate && !cfg.Spec.CheckValue(p.key, p.look.Value()) {
					bad.Add(1)
				}
			} else {
				misses.Add(1)
			}
		}
		hist.Record(time.Since(t0).Nanoseconds())
		ops.Add(int64(window))
		remaining -= window
	}
	return hist, nil
}
