// Package loadgen is the TCP load generator for the Figure 13/14
// experiments: it opens pipelined connections to one or more key/value
// cache servers, drives a workload.Spec query mix at a configurable window
// depth, partitions keys across server addresses by hash (how the paper's
// clients spread keys over memcached instances), and reports throughput,
// hit rate and latency.
//
// The paper generates load from a second 48-core machine over 10 Gbps
// Ethernet; this reproduction drives loopback on one machine, which
// preserves the compute ratios Figure 13 is about (see DESIGN.md).
package loadgen

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/partition"
	"cphash/internal/perf"
	"cphash/internal/protocol"
	"cphash/internal/workload"
)

// Config parameterizes Run.
type Config struct {
	// Addrs are the server addresses. Keys are partitioned across them by
	// hash (one address for CPSERVER/LOCKSERVER; one per instance for the
	// memcached cluster).
	Addrs []string
	// Conns is the total number of client connections (default 4).
	Conns int
	// Pipeline is the number of requests written per window before reading
	// the responses back (default 64).
	Pipeline int
	// Spec is the workload (keys, value size, insert ratio).
	Spec workload.Spec
	// OpsPerConn is how many operations each connection performs.
	OpsPerConn int
	// Validate checks every hit's bytes against the workload's expected
	// value (costs CPU; off for throughput runs).
	Validate bool
}

// Result summarizes a run.
type Result struct {
	Ops      int64
	Hits     int64
	Misses   int64
	BadBytes int64 // validation failures (must be 0)
	Elapsed  time.Duration
	// Latency is the per-window round-trip distribution in nanoseconds.
	Latency *perf.Histogram
}

// Throughput returns queries/second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// HitRate returns hits / lookups.
func (r Result) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// String renders the result in the paper's reporting units.
func (r Result) String() string {
	return fmt.Sprintf("%.3g queries/sec (%d ops, hit rate %.2f, %v)",
		r.Throughput(), r.Ops, r.HitRate(), r.Elapsed.Round(time.Millisecond))
}

// instanceOf picks the server for a key: single server → 0; otherwise the
// paper's client-side hash partitioning across instances.
func instanceOf(key uint64, n int) int {
	if n == 1 {
		return 0
	}
	return int(partition.Mix64(key) >> 17 % uint64(n))
}

// Run drives the configured load and blocks until done.
func Run(cfg Config) (Result, error) {
	if len(cfg.Addrs) == 0 {
		return Result{}, fmt.Errorf("loadgen: no server addresses")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 64
	}
	if cfg.OpsPerConn <= 0 {
		cfg.OpsPerConn = 10000
	}
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, err
	}

	var (
		ops, hits, misses, bad atomic.Int64
		wg                     sync.WaitGroup
		firstErr               atomic.Value
		histMu                 sync.Mutex
	)
	hist := perf.NewHistogram()

	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			h, err := runConn(cfg, ci, &ops, &hits, &misses, &bad)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			histMu.Lock()
			hist.Merge(h)
			histMu.Unlock()
		}(ci)
	}
	wg.Wait()
	res := Result{
		Ops:      ops.Load(),
		Hits:     hits.Load(),
		Misses:   misses.Load(),
		BadBytes: bad.Load(),
		Elapsed:  time.Since(start),
		Latency:  hist,
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return res, err
	}
	return res, nil
}

// connEndpoint is one server connection's codec pair.
type connEndpoint struct {
	conn net.Conn
	w    *bufio.Writer
	r    *bufio.Reader
}

// runConn drives one logical client: a connection to every server address,
// windows of Pipeline requests routed by key hash, then responses drained
// in order per endpoint.
func runConn(cfg Config, ci int, ops, hits, misses, bad *atomic.Int64) (*perf.Histogram, error) {
	eps := make([]*connEndpoint, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			for _, ep := range eps {
				if ep != nil {
					ep.conn.Close()
				}
			}
			return nil, fmt.Errorf("loadgen: dial %s: %w", addr, err)
		}
		if tcp, ok := conn.(*net.TCPConn); ok {
			tcp.SetNoDelay(true)
		}
		eps[i] = &connEndpoint{
			conn: conn,
			w:    bufio.NewWriterSize(conn, 64<<10),
			r:    bufio.NewReaderSize(conn, 64<<10),
		}
	}
	defer func() {
		for _, ep := range eps {
			ep.conn.Close()
		}
	}()

	spec := cfg.Spec
	spec.Seed = cfg.Spec.Seed + uint64(ci)*0x9e3779b9 + 17
	gen, err := workload.NewGenerator(spec)
	if err != nil {
		return nil, err
	}

	hist := perf.NewHistogram()
	valBuf := make([]byte, cfg.Spec.ValueSize)
	type pendingLookup struct {
		ep  int
		key uint64
	}
	pending := make([]pendingLookup, 0, cfg.Pipeline)
	respBuf := make([]byte, 0, 4096)

	remaining := cfg.OpsPerConn
	for remaining > 0 {
		window := cfg.Pipeline
		if window > remaining {
			window = remaining
		}
		pending = pending[:0]
		t0 := time.Now()
		for i := 0; i < window; i++ {
			kind, key := gen.Next()
			ep := instanceOf(key, len(eps))
			switch kind {
			case workload.Insert:
				v := cfg.Spec.FillValue(key, valBuf)
				if err := protocol.WriteRequest(eps[ep].w, protocol.Request{
					Op: protocol.OpInsert, Key: key, Value: v,
				}); err != nil {
					return nil, err
				}
			case workload.Lookup:
				if err := protocol.WriteRequest(eps[ep].w, protocol.Request{
					Op: protocol.OpLookup, Key: key,
				}); err != nil {
					return nil, err
				}
				pending = append(pending, pendingLookup{ep: ep, key: key})
			}
		}
		for _, ep := range eps {
			if err := ep.w.Flush(); err != nil {
				return nil, err
			}
		}
		// Responses per endpoint arrive in request order.
		for _, p := range pending {
			var found bool
			respBuf, found, err = protocol.ReadLookupResponse(eps[p.ep].r, respBuf[:0])
			if err != nil {
				return nil, fmt.Errorf("loadgen: read response: %w", err)
			}
			if found {
				hits.Add(1)
				if cfg.Validate && !cfg.Spec.CheckValue(p.key, respBuf) {
					bad.Add(1)
				}
			} else {
				misses.Add(1)
			}
		}
		hist.Record(time.Since(t0).Nanoseconds())
		ops.Add(int64(window))
		remaining -= window
	}
	return hist, nil
}
