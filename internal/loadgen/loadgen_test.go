package loadgen

import (
	"testing"
	"time"

	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/workload"
)

func startServer(t *testing.T) *kvserver.Server {
	t.Helper()
	table := lockhash.MustNew(lockhash.Config{Partitions: 64, CapacityBytes: 4 << 20, Seed: 3})
	s, err := kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    1,
		NewBackend: kvserver.NewLockHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run accepted empty address list")
	}
	if _, err := Run(Config{Addrs: []string{"127.0.0.1:1"}, Spec: workload.Spec{}}); err == nil {
		t.Fatal("Run accepted invalid workload spec")
	}
}

func TestRunDialFailure(t *testing.T) {
	// A port with nothing listening: dial must fail cleanly.
	_, err := Run(Config{
		Addrs:      []string{"127.0.0.1:1"},
		Conns:      1,
		Spec:       workload.Default(8 << 10),
		OpsPerConn: 10,
	})
	if err == nil {
		t.Fatal("Run succeeded against a dead port")
	}
}

func TestRunEndToEnd(t *testing.T) {
	s := startServer(t)
	res, err := Run(Config{
		Addrs:      []string{s.Addr()},
		Conns:      3,
		Pipeline:   16,
		Spec:       workload.Default(8 << 10),
		OpsPerConn: 2000,
		Validate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 6000 {
		t.Fatalf("ops = %d, want 6000", res.Ops)
	}
	if res.BadBytes != 0 {
		t.Fatalf("%d corrupt responses", res.BadBytes)
	}
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("degenerate hit/miss split: %d/%d", res.Hits, res.Misses)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if res.Throughput() <= 0 || res.String() == "" {
		t.Fatal("bad summary")
	}
}

// TestRunMultiNode spreads a validated workload over three server
// instances through the cluster routing layer; every hit must carry the
// right bytes, proving key→node placement is consistent between inserts
// and lookups.
func TestRunMultiNode(t *testing.T) {
	servers := make([]string, 3)
	for i := range servers {
		servers[i] = startServer(t).Addr()
	}
	res, err := Run(Config{
		Addrs:      servers,
		Conns:      2,
		Pipeline:   32,
		Spec:       workload.Default(8 << 10),
		OpsPerConn: 3000,
		Validate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 6000 {
		t.Fatalf("ops = %d, want 6000", res.Ops)
	}
	if res.BadBytes != 0 {
		t.Fatalf("%d corrupt responses: cross-node routing inconsistent", res.BadBytes)
	}
	if res.Hits == 0 {
		t.Fatal("no hits across the cluster")
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("per-node stats cover %d nodes, want 3", len(res.Nodes))
	}
	for addr, s := range res.Nodes {
		if s.Ops == 0 {
			t.Errorf("node %s received no operations; routing degenerate", addr)
		}
		if s.Errors != 0 {
			t.Errorf("node %s recorded %d errors in a healthy run", addr, s.Errors)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Ops: 100, Hits: 30, Misses: 10, Elapsed: time.Second}
	if r.Throughput() != 100 {
		t.Errorf("throughput = %v", r.Throughput())
	}
	if got := r.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", got)
	}
	if (Result{}).Throughput() != 0 || (Result{}).HitRate() != 0 {
		t.Error("zero-value result must report zeros")
	}
}
