// The memcached text-protocol driver: the same workload.Spec streams,
// driven at mctext listeners through the in-repo text client instead of
// the native pipelined SDK. Keys route to listeners by the same 256-slot
// continuum the native client uses, so one key always lands on one
// instance and hit verification stays exact across both protocols.
//
// The text protocol has no response windows, so sessions run
// synchronously — sets are individual round trips and each window's
// lookups coalesce into one multi-key `get` per node. Expect lower
// throughput than the native path; the point of this driver is driving
// the front-end with realistic shapes, not peak qps.

package loadgen

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/mcclient"
	"cphash/internal/perf"
	"cphash/internal/workload"
)

// maxGetBatch mirrors mctext's per-line key limit for multi-key get.
const maxGetBatch = 64

// RunMemcached drives cfg's workload against memcached text listeners
// at cfg.Addrs. Validate is honored; Pipeline bounds the multi-get
// batch. The Result's Nodes map is empty (the text client keeps no
// per-node counters).
func RunMemcached(cfg Config) (Result, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 64
	}
	if cfg.OpsPerConn <= 0 {
		cfg.OpsPerConn = 10000
	}
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, err
	}
	ring, err := cluster.New(cfg.Addrs)
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: %w", err)
	}

	var (
		ops, hits, misses, bad atomic.Int64
		wg                     sync.WaitGroup
		firstErr               atomic.Value
		histMu                 sync.Mutex
	)
	hist := perf.NewHistogram()

	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			h, err := runTextConn(ring, cfg, ci, &ops, &hits, &misses, &bad)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			histMu.Lock()
			hist.Merge(h)
			histMu.Unlock()
		}(ci)
	}
	wg.Wait()
	res := Result{
		Ops:      ops.Load(),
		Hits:     hits.Load(),
		Misses:   misses.Load(),
		BadBytes: bad.Load(),
		Elapsed:  time.Since(start),
		Latency:  hist,
		Nodes:    map[string]client.Stats{},
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return res, err
	}
	return res, nil
}

// textKey renders a native 60-bit key as a memcached key.
func textKey(key uint64) string {
	return "k" + strconv.FormatUint(key, 16)
}

// runTextConn drives one synchronous text session: inserts as they are
// drawn, lookups coalesced per node into one multi-key get per window.
func runTextConn(ring *cluster.Ring, cfg Config, ci int, ops, hits, misses, bad *atomic.Int64) (*perf.Histogram, error) {
	clients := map[string]*mcclient.Client{}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	clientFor := func(addr string) (*mcclient.Client, error) {
		if c := clients[addr]; c != nil {
			return c, nil
		}
		c, err := mcclient.Dial(addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		clients[addr] = c
		return c, nil
	}

	spec := cfg.Spec
	spec.Seed = cfg.Spec.Seed + uint64(ci)*0x9e3779b9 + 17
	gen, err := workload.NewGenerator(spec)
	if err != nil {
		return nil, err
	}

	hist := perf.NewHistogram()
	valBuf := make([]byte, cfg.Spec.MaxValueSize())
	pendingKeys := map[string][]uint64{} // addr → native keys to multi-get

	remaining := cfg.OpsPerConn
	for remaining > 0 {
		window := cfg.Pipeline
		if window > remaining {
			window = remaining
		}
		for addr := range pendingKeys {
			pendingKeys[addr] = pendingKeys[addr][:0]
		}
		t0 := time.Now()
		for i := 0; i < window; i++ {
			kind, key := gen.Next()
			addr := ring.NodeOf(uint64(key))
			switch kind {
			case workload.Insert:
				c, err := clientFor(addr)
				if err != nil {
					return nil, fmt.Errorf("loadgen: dial %s: %w", addr, err)
				}
				v := cfg.Spec.FillValue(key, valBuf)
				if err := c.Set(textKey(uint64(key)), v, 0, 0); err != nil {
					return nil, fmt.Errorf("loadgen: set: %w", err)
				}
			case workload.Lookup:
				pendingKeys[addr] = append(pendingKeys[addr], uint64(key))
			}
		}
		for addr, keys := range pendingKeys {
			for head := 0; head < len(keys); head += maxGetBatch {
				batch := keys[head:min(head+maxGetBatch, len(keys))]
				names := make([]string, len(batch))
				for i, k := range batch {
					names[i] = textKey(k)
				}
				c, err := clientFor(addr)
				if err != nil {
					return nil, fmt.Errorf("loadgen: dial %s: %w", addr, err)
				}
				got, err := c.GetMulti(names...)
				if err != nil {
					return nil, fmt.Errorf("loadgen: get: %w", err)
				}
				for i, k := range batch {
					item := got[names[i]]
					if item == nil {
						misses.Add(1)
						continue
					}
					hits.Add(1)
					if cfg.Validate && !cfg.Spec.CheckValue(k, item.Value) {
						bad.Add(1)
					}
				}
			}
		}
		hist.Record(time.Since(t0).Nanoseconds())
		ops.Add(int64(window))
		remaining -= window
	}
	return hist, nil
}
