package loadgen

import (
	"net"
	"testing"

	"cphash/internal/mctext"
	"cphash/internal/workload"
)

// startTextServer stands up a native server with an mctext front-end
// and returns the text listener's address.
func startTextServer(t *testing.T) string {
	t.Helper()
	srv := startServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mc := mctext.Serve(ln, mctext.Config{Upstream: srv.Addr()})
	t.Cleanup(func() { mc.Close() })
	return mc.Addr().String()
}

// TestRunMemcachedEndToEnd drives a validated workload — shifting hot
// keys and a value-size mixture, the shapes this driver exists for —
// through the text protocol across two front-ends. Every hit must carry
// the exact expected bytes, proving the text translation (flags prefix
// on, prefix off on read) and the continuum routing agree with the
// native verification model.
func TestRunMemcachedEndToEnd(t *testing.T) {
	addrs := []string{startTextServer(t), startTextServer(t)}
	res, err := RunMemcached(Config{
		Addrs:      addrs,
		Conns:      2,
		Pipeline:   32,
		OpsPerConn: 3000,
		Validate:   true,
		Spec: workload.Spec{
			WorkingSetBytes: 8 << 10,
			InsertRatio:     0.3,
			Dist:            workload.Shifting,
			HotKeys:         16,
			ShiftEvery:      1000,
			Sizes:           []workload.SizeClass{{Bytes: 8, Weight: 3}, {Bytes: 200, Weight: 1}},
			Seed:            1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 6000 {
		t.Fatalf("ops = %d, want 6000", res.Ops)
	}
	if res.BadBytes != 0 {
		t.Fatalf("%d corrupt responses through the text front-end", res.BadBytes)
	}
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("degenerate hit/miss split: %d/%d", res.Hits, res.Misses)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
}

// TestRunMemcachedValidation mirrors the native driver's input checks.
func TestRunMemcachedValidation(t *testing.T) {
	if _, err := RunMemcached(Config{}); err == nil {
		t.Fatal("RunMemcached accepted an empty address list")
	}
	if _, err := RunMemcached(Config{Addrs: []string{"127.0.0.1:1"}, Spec: workload.Spec{}}); err == nil {
		t.Fatal("RunMemcached accepted an invalid spec")
	}
	_, err := RunMemcached(Config{
		Addrs: []string{"127.0.0.1:1"}, Conns: 1, OpsPerConn: 8,
		Spec: workload.Default(1 << 10),
	})
	if err == nil {
		t.Fatal("RunMemcached reached a dead port")
	}
}
