// Package lockhash implements LOCKHASH, the paper's fine-grained-locking
// baseline (Section 4.2): the *same* partition store as CPHASH — the code is
// shared via internal/partition, exactly as in the paper's implementation
// (Section 5) — but instead of giving each partition to a server thread,
// every partition is protected by a spinlock and clients operate on it
// directly. The paper runs LOCKHASH with 4,096 partitions, experimentally
// the optimum: fewer partitions contend, more add no throughput.
//
// Differences from the paper, documented in DESIGN.md:
//   - The paper's random-eviction configuration uses per-bucket locks; here
//     random eviction uses the same per-partition spinlock, because the
//     shared single-threaded allocator inside a partition would need its own
//     lock anyway. This is conservative against CPHASH's win only at very
//     high partition-local contention, which 4,096-way partitioning makes
//     rare.
//   - When the table capacity is too small to give every partition a useful
//     arena, the partition count is capped (the paper's global malloc never
//     hits this; our arenas are physically per-partition). The capped
//     configuration still reproduces the paper's observation that LOCKHASH
//     collapses at small working sets due to lock contention.
package lockhash

import (
	"fmt"
	"time"

	"cphash/internal/locks"
	"cphash/internal/obs"
	"cphash/internal/partition"
)

// Key is re-exported for symmetry with internal/core.
type Key = partition.Key

// DefaultPartitions is the paper's experimentally optimal partition count.
const DefaultPartitions = 4096

// minPartitionBytes is the smallest arena worth creating; the partition
// count is capped so each partition gets at least this much.
const minPartitionBytes = 1 << 10

// Config parameterizes a LOCKHASH table.
type Config struct {
	// Partitions is the number of lock-protected partitions (default
	// 4,096, the paper's optimum). Rounded to a power of two and capped so
	// every partition holds at least a minimal arena.
	Partitions int
	// CapacityBytes is the total byte budget, divided evenly.
	CapacityBytes int
	// Policy selects LRU (default) or random eviction.
	Policy partition.EvictionPolicy
	// BucketsPerPartition overrides the derived bucket count (0 = derive).
	BucketsPerPartition int
	// Seed makes eviction deterministic for tests.
	Seed uint64
	// Clock supplies "now" in nanoseconds for TTL expiry (nil = wall
	// clock). Tests inject fake clocks to make expiry deterministic.
	Clock func() int64
	// Sink, when non-nil, supplies each partition's durability change sink
	// (internal/persist hands out one appender per partition). Sink calls
	// happen under the partition spinlock, which serializes them — the
	// single-producer contract the appender requires.
	Sink func(partition int) partition.ChangeSink
}

// Table is a LOCKHASH hash table. All methods are safe for concurrent use
// by any number of goroutines; unlike core.Table there are no client
// handles — callers hit the partition locks directly, which is the point of
// the comparison.
type Table struct {
	parts []lockedPartition
	mask  uint64
}

// lockedPartition pairs a spinlock with its store, padded so adjacent
// partitions' locks do not share cache lines.
type lockedPartition struct {
	mu    locks.Spinlock
	store *partition.Store
	_     [40]byte
}

// New builds a LOCKHASH table.
func New(cfg Config) (*Table, error) {
	n := cfg.Partitions
	if n <= 0 {
		n = DefaultPartitions
	}
	if maxN := cfg.CapacityBytes / minPartitionBytes; n > maxN {
		n = maxN
	}
	if n < 1 {
		n = 1
	}
	n = floorPow2(n)
	per := cfg.CapacityBytes / n
	t := &Table{parts: make([]lockedPartition, n), mask: uint64(n - 1)}
	for i := range t.parts {
		var sink partition.ChangeSink
		if cfg.Sink != nil {
			sink = cfg.Sink(i)
		}
		s, err := partition.NewStore(partition.Config{
			CapacityBytes: per,
			Buckets:       cfg.BucketsPerPartition,
			Policy:        cfg.Policy,
			Seed:          cfg.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1,
			Clock:         cfg.Clock,
			Sink:          sink,
		})
		if err != nil {
			return nil, fmt.Errorf("lockhash: partition %d: %w", i, err)
		}
		t.parts[i].store = s
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p <<= 1
	}
	return p
}

// NumPartitions returns the actual (possibly capped) partition count.
func (t *Table) NumPartitions() int { return len(t.parts) }

// PartitionOf returns the partition index for key k; the same high-bits
// hash split as core.Table uses.
func (t *Table) PartitionOf(k Key) int {
	return int(partition.Mix64(k&partition.MaxKey) >> 32 & t.mask)
}

func (t *Table) part(k Key) *lockedPartition {
	return &t.parts[t.PartitionOf(k)]
}

// Get looks up key and appends its value to dst, returning the extended
// slice and whether the key was found. The copy happens under the partition
// lock (the paper's client threads likewise finish the query before
// releasing the lock).
func (t *Table) Get(key Key, dst []byte) ([]byte, bool) {
	p := t.part(key)
	p.mu.Lock()
	e := p.store.Lookup(key & partition.MaxKey)
	if e == nil {
		p.mu.Unlock()
		return dst, false
	}
	dst = append(dst, e.Value()...)
	p.store.Decref(e)
	p.mu.Unlock()
	return dst, true
}

// Lookup pins the element for key, or returns nil. The caller may read
// Element.Value until it calls Decref. This mirrors CPHASH's zero-copy
// lookup path so the TCP servers can treat both tables identically.
func (t *Table) Lookup(key Key) *partition.Element {
	p := t.part(key)
	p.mu.Lock()
	e := p.store.Lookup(key & partition.MaxKey)
	p.mu.Unlock()
	return e
}

// Decref releases an element pinned by Lookup.
func (t *Table) Decref(e *partition.Element) {
	p := t.part(e.Key())
	p.mu.Lock()
	p.store.Decref(e)
	p.mu.Unlock()
}

// Put stores value under key, reporting whether space was obtained. The
// value copy happens under the partition lock.
func (t *Table) Put(key Key, value []byte) bool {
	return t.PutTTL(key, value, 0)
}

// PutTTL stores value under key with a time-to-live on the table's clock
// (0 = never expires), reporting whether space was obtained.
func (t *Table) PutTTL(key Key, value []byte, ttl time.Duration) bool {
	p := t.part(key)
	p.mu.Lock()
	e := p.store.InsertTTL(key&partition.MaxKey, len(value), ttl)
	if e == nil {
		p.mu.Unlock()
		return false
	}
	copy(e.Value(), value)
	p.store.MarkReady(e)
	p.store.Decref(e)
	p.mu.Unlock()
	return true
}

// PutExpire stores value under key with an absolute expiry deadline on
// the table's clock in nanoseconds (0 = never expires), reporting whether
// space was obtained. Durability recovery uses it to restore TTLs
// exactly as logged.
func (t *Table) PutExpire(key Key, value []byte, expireAt int64) bool {
	return t.PutExpireVer(key, value, expireAt, 0)
}

// PutExpireVer is PutExpire with an explicit CAS version (0 = assign
// next); recovery and replication replay use it so versions survive a
// restart or promotion exactly as logged.
func (t *Table) PutExpireVer(key Key, value []byte, expireAt int64, ver uint64) bool {
	p := t.part(key)
	p.mu.Lock()
	e := p.store.InsertExpireVer(key&partition.MaxKey, len(value), expireAt, ver)
	if e == nil {
		p.mu.Unlock()
		return false
	}
	copy(e.Value(), value)
	p.store.MarkReady(e)
	p.store.Decref(e)
	p.mu.Unlock()
	return true
}

// PutTTLVer is PutTTL with an explicit CAS version (0 = assign next);
// slot migration uses it to move entries without disturbing their CAS
// tokens.
func (t *Table) PutTTLVer(key Key, value []byte, ttl time.Duration, ver uint64) bool {
	p := t.part(key)
	p.mu.Lock()
	e := p.store.InsertTTLVer(key&partition.MaxKey, len(value), ttl, ver)
	if e == nil {
		p.mu.Unlock()
		return false
	}
	copy(e.Value(), value)
	p.store.MarkReady(e)
	p.store.Decref(e)
	p.mu.Unlock()
	return true
}

// RMW executes one atomic read-modify-write (CAS, add/replace,
// append/prepend, incr/decr, touch) under the key's partition spinlock —
// LOCKHASH's moral equivalent of CPHASH running the composite op on the
// partition's owning server goroutine. Results are written into req.
func (t *Table) RMW(key Key, req *partition.RMWReq) {
	p := t.part(key)
	p.mu.Lock()
	p.store.RMW(key&partition.MaxKey, req)
	p.mu.Unlock()
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key Key) bool {
	p := t.part(key)
	p.mu.Lock()
	ok := p.store.Delete(key & partition.MaxKey)
	p.mu.Unlock()
	return ok
}

// Stats aggregates the partition counters. The per-partition counters
// are atomics (obs.PartitionMetrics), so the aggregation needs no
// locks and never stalls traffic — the scrape-safety the torn-read
// audit wanted, for free from the shared store.
func (t *Table) Stats() partition.Stats {
	var out partition.Stats
	for i := range t.parts {
		out.Add(t.parts[i].store.Stats())
	}
	return out
}

// CapacityBytes returns the total configured capacity actually allocated.
func (t *Table) CapacityBytes() int {
	return t.parts[0].store.CapacityBytes() * len(t.parts)
}

// Collect emits the table's aggregated counters under the given label
// set — the same cphash_table_* families core.Table.Collect uses, so
// dashboards work unchanged across backends. LOCKHASH partitions carry
// no slot-heat counters (4096 fine-grained partitions would cost ~16MiB
// of padded counters for a design the paper uses as a baseline).
func (t *Table) Collect(e *obs.Expo, labels string) {
	st := t.Stats()
	e.Counter("cphash_table_lookups_total", "lookup requests processed", labels, st.Lookups)
	e.Counter("cphash_table_hits_total", "lookups that found a live entry", labels, st.Hits)
	e.Counter("cphash_table_misses_total", "lookups that found nothing", labels, st.Lookups-st.Hits)
	e.Counter("cphash_table_inserts_total", "insert requests processed", labels, st.Inserts)
	e.Counter("cphash_table_insert_errors_total", "inserts rejected for lack of space", labels, st.InsertErr)
	e.Counter("cphash_table_deletes_total", "explicit deletes", labels, st.Deletes)
	e.Counter("cphash_table_evictions_total", "entries evicted for capacity", labels, st.Evictions)
	e.Counter("cphash_table_expired_total", "entries collected after TTL expiry", labels, st.Expired)
	e.Counter("cphash_table_bytes_in_total", "value bytes accepted by inserts", labels, st.BytesIn)
	e.Counter("cphash_table_bytes_out_total", "value bytes returned by hits", labels, st.BytesOut)
	e.Gauge("cphash_table_elements", "entries currently stored", labels, float64(st.Elements))
}

// scanCallBuckets bounds the buckets one ScanEntries/PurgeEntries call
// examines, so a migration round trip holds each partition lock only
// briefly and never stalls regular traffic for long. Same contract as
// core.Table: resume with the returned cursor.
const scanCallBuckets = 1 << 16

// scanLockBuckets bounds the buckets examined under one spinlock hold.
const scanLockBuckets = 1 << 12

// ScanEntries copies live entries whose key satisfies filter (nil = all)
// out of the table, resuming at cursor (0 starts an iteration). It takes
// each partition's spinlock for at most one bucket-budget stretch, returns
// at least one entry when any remain within the call's budget, and
// reports the cursor to resume at plus whether iteration is complete.
func (t *Table) ScanEntries(cursor uint64, maxEntries int, filter func(Key) bool) (entries []partition.ScanEntry, next uint64, done bool) {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	pi, bucket := partition.DecodeScanCursor(cursor)
	budget := scanCallBuckets
	for pi < len(t.parts) && budget > 0 && len(entries) < maxEntries {
		p := &t.parts[pi]
		mb := scanLockBuckets
		if mb > budget {
			mb = budget
		}
		p.mu.Lock()
		var pdone bool
		var nb int
		entries, nb, pdone = p.store.AppendScan(entries, bucket, mb, maxEntries-len(entries), filter)
		p.mu.Unlock()
		if adv := nb - bucket; adv > 0 {
			budget -= adv
		} else {
			budget--
		}
		if pdone {
			pi, bucket = pi+1, 0
		} else {
			bucket = nb
		}
	}
	if pi >= len(t.parts) {
		return entries, 0, true
	}
	return entries, partition.EncodeScanCursor(pi, bucket), false
}

// PurgeEntries removes live entries whose key satisfies filter (nil =
// all), with the same cursor/budget contract as ScanEntries, returning
// how many entries this call removed.
func (t *Table) PurgeEntries(cursor uint64, filter func(Key) bool) (removed int, next uint64, done bool) {
	pi, bucket := partition.DecodeScanCursor(cursor)
	budget := scanCallBuckets
	for pi < len(t.parts) && budget > 0 {
		p := &t.parts[pi]
		mb := scanLockBuckets
		if mb > budget {
			mb = budget
		}
		p.mu.Lock()
		r, nb, pdone := p.store.PurgeBuckets(bucket, mb, filter)
		p.mu.Unlock()
		removed += r
		if adv := nb - bucket; adv > 0 {
			budget -= adv
		} else {
			budget--
		}
		if pdone {
			pi, bucket = pi+1, 0
		} else {
			bucket = nb
		}
	}
	if pi >= len(t.parts) {
		return removed, 0, true
	}
	return removed, partition.EncodeScanCursor(pi, bucket), false
}

// CheckInvariants validates every partition; the table must be quiescent.
func (t *Table) CheckInvariants() error {
	for i := range t.parts {
		if err := t.parts[i].store.CheckInvariants(); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}
