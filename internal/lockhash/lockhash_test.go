package lockhash

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"cphash/internal/partition"
)

func newTable(t testing.TB, cfg Config) *Table {
	t.Helper()
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 1 << 20
	}
	cfg.Seed = 99
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestPartitionCapping(t *testing.T) {
	tb := newTable(t, Config{Partitions: 4096, CapacityBytes: 64 << 10})
	if got := tb.NumPartitions(); got != 64 {
		t.Errorf("64 KB / 1 KB min: partitions = %d, want 64", got)
	}
	tb2 := newTable(t, Config{Partitions: 4096, CapacityBytes: 8 << 20})
	if got := tb2.NumPartitions(); got != 4096 {
		t.Errorf("8 MB table: partitions = %d, want 4096", got)
	}
	tb3 := newTable(t, Config{Partitions: 3000, CapacityBytes: 64 << 20})
	if got := tb3.NumPartitions(); got != 2048 {
		t.Errorf("3000 requested: partitions = %d, want floor pow2 2048", got)
	}
}

func TestPutGetDelete(t *testing.T) {
	tb := newTable(t, Config{Partitions: 16})
	if !tb.Put(1, []byte("value-1")) {
		t.Fatal("Put failed")
	}
	got, ok := tb.Get(1, nil)
	if !ok || string(got) != "value-1" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := tb.Get(2, nil); ok {
		t.Fatal("Get hit absent key")
	}
	if !tb.Delete(1) {
		t.Fatal("Delete reported absent")
	}
	if tb.Delete(1) {
		t.Fatal("second Delete reported present")
	}
}

func TestLookupPin(t *testing.T) {
	tb := newTable(t, Config{Partitions: 4, CapacityBytes: 16 << 10})
	want := []byte("pinned")
	tb.Put(7, want)
	e := tb.Lookup(7)
	if e == nil {
		t.Fatal("Lookup missed")
	}
	// Evict key 7 by filling its partition.
	junk := make([]byte, 128)
	for k := Key(100); k < 2000; k++ {
		tb.Put(k, junk)
	}
	if !bytes.Equal(e.Value(), want) {
		t.Fatalf("pinned value corrupted: %q", e.Value())
	}
	tb.Decref(e)
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	tb := newTable(t, Config{Partitions: 64, CapacityBytes: 4 << 20})
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 8)
			rng := uint64(g)*2654435761 + 1
			for i := 0; i < 5000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := Key(rng % 4096)
				if rng&3 == 0 {
					binary.LittleEndian.PutUint64(buf, uint64(k)^0xdead)
					tb.Put(k, buf)
				} else {
					if v, ok := tb.Get(k, nil); ok {
						if binary.LittleEndian.Uint64(v) != uint64(k)^0xdead {
							t.Errorf("corrupt value for key %d", k)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tb.Stats()
	if st.Inserts == 0 || st.Lookups == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestEvictionLRUAndRandom(t *testing.T) {
	for _, policy := range []partition.EvictionPolicy{partition.EvictLRU, partition.EvictRandom} {
		t.Run(policy.String(), func(t *testing.T) {
			tb := newTable(t, Config{Partitions: 4, CapacityBytes: 16 << 10, Policy: policy})
			for k := Key(0); k < 3000; k++ {
				if !tb.Put(k, []byte("01234567")) {
					t.Fatalf("Put(%d) failed", k)
				}
			}
			if tb.Stats().Evictions == 0 {
				t.Fatal("no evictions")
			}
			if err := tb.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickVsMapModel(t *testing.T) {
	tb := newTable(t, Config{Partitions: 8, CapacityBytes: 8 << 20})
	model := map[Key]string{}
	f := func(ops []uint32) bool {
		for _, op := range ops {
			k := Key(op % 256)
			switch (op >> 8) % 3 {
			case 0:
				v := fmt.Sprintf("v%d-%d", k, op)
				if !tb.Put(k, []byte(v)) {
					return false
				}
				model[k] = v
			case 1:
				got, ok := tb.Get(k, nil)
				want, wantOK := model[k]
				if ok != wantOK || (ok && string(got) != want) {
					return false
				}
			case 2:
				_, present := model[k]
				if tb.Delete(k) != present {
					return false
				}
				delete(model, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyMasking(t *testing.T) {
	tb := newTable(t, Config{Partitions: 4})
	full := Key(0xFFFFFFFFFFFFFFFF)
	tb.Put(full, []byte("top"))
	got, ok := tb.Get(full&partition.MaxKey, nil)
	if !ok || string(got) != "top" {
		t.Fatalf("masking broken: %q %v", got, ok)
	}
}

func BenchmarkLockHashGet(b *testing.B) {
	tb := MustNew(Config{Partitions: 256, CapacityBytes: 8 << 20, Seed: 1})
	buf := make([]byte, 8)
	for k := Key(0); k < 8192; k++ {
		binary.LittleEndian.PutUint64(buf, uint64(k))
		tb.Put(k, buf)
	}
	b.RunParallel(func(pb *testing.PB) {
		var dst []byte
		var k Key
		for pb.Next() {
			dst, _ = tb.Get(k&8191, dst[:0])
			k++
		}
	})
}
