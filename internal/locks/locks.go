// Package locks provides the spin-lock family discussed in Section 6.2 of
// the CPHash paper: a plain test-and-set spinlock (what LOCKHASH uses to
// protect each partition), a ticket lock, Anderson's array-based queue lock
// [Anderson 1990], and an MCS list-based queue lock.
//
// The paper's observation is that an *uncontended* spinlock costs one cache
// miss to acquire and none to release, whereas Anderson's scalable lock
// costs a constant two misses to acquire and one to release — so LOCKHASH
// prefers a spinlock plus enough partitions (4,096) to keep contention low.
// BenchmarkLocks* in the repository root quantifies the same trade-off.
package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Locker is the subset of sync.Locker implemented by every lock here.
// It exists so benchmarks and the hash tables can swap implementations.
type Locker interface {
	Lock()
	Unlock()
}

// Assert interface satisfaction at compile time.
var (
	_ Locker = (*Spinlock)(nil)
	_ Locker = (*TicketLock)(nil)
	_ Locker = (*AndersonLock)(nil)
	_ Locker = (*MCSLock)(nil)
	_ Locker = (*sync.Mutex)(nil)
)

// pad keeps hot lock words on distinct cache lines when embedded in arrays.
type pad [48]byte

// Spinlock is a test-and-set spinlock with proportional backoff. This is the
// lock LOCKHASH uses per partition: one cache miss to acquire when
// uncontended, zero to release (the releasing store hits the line already in
// the owner's cache in Modified state).
type Spinlock struct {
	state atomic.Uint32
	_     pad
}

// maxBackoff bounds the spin backoff so that a briefly-held lock is
// reacquired quickly even after long contention episodes.
const maxBackoff = 64

// Lock acquires the spinlock, spinning with test-and-test-and-set plus
// bounded exponential backoff.
func (l *Spinlock) Lock() {
	backoff := 1
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		for i := 0; i < backoff; i++ {
			spinPause()
		}
		if backoff < maxBackoff {
			backoff <<= 1
		} else {
			// Under heavy contention let the scheduler run someone else;
			// Go has no monitor/mwait to park on.
			runtime.Gosched()
		}
	}
}

// TryLock attempts to acquire the lock without spinning and reports whether
// it succeeded.
func (l *Spinlock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the spinlock. It must only be called by the holder.
func (l *Spinlock) Unlock() {
	l.state.Store(0)
}

// TicketLock is a fair FIFO spinlock: acquirers take a ticket and spin until
// the grant counter reaches it. One atomic add to acquire, one plain store
// to release; all waiters spin on the same grant word, so under contention
// every release invalidates every waiter's cached copy.
type TicketLock struct {
	next  atomic.Uint64
	_     pad
	grant atomic.Uint64
	_     pad
}

// Lock acquires the ticket lock.
func (l *TicketLock) Lock() {
	ticket := l.next.Add(1) - 1
	spins := 0
	for {
		cur := l.grant.Load()
		if cur == ticket {
			return
		}
		// Proportional backoff: spin roughly in proportion to queue depth.
		for i := uint64(0); i < (ticket-cur)*4; i++ {
			spinPause()
		}
		spins = spinOrYield(spins)
	}
}

// Unlock releases the ticket lock.
func (l *TicketLock) Unlock() {
	l.grant.Add(1)
}

// andersonSlots is the fixed number of wait slots in an AndersonLock. It
// bounds the number of simultaneous waiters (not holders); 256 comfortably
// exceeds any thread count used in this repository.
const andersonSlots = 256

// AndersonLock is Anderson's array-based queue lock: each waiter spins on
// its own cache line, so a release invalidates exactly one waiter. The
// constant cost the paper cites — two misses to acquire, one to release —
// comes from the atomic slot fetch plus the flag read on acquire, and the
// next-slot flag write on release.
type AndersonLock struct {
	slots [andersonSlots]struct {
		free atomic.Uint32
		_    pad
	}
	tail atomic.Uint64
	_    pad
	// held records the slot index of the current holder for Unlock.
	held uint64
}

// NewAndersonLock returns an initialized Anderson lock.
func NewAndersonLock() *AndersonLock {
	l := &AndersonLock{}
	l.slots[0].free.Store(1)
	return l
}

// Lock acquires the lock.
func (l *AndersonLock) Lock() {
	slot := l.tail.Add(1) - 1
	idx := slot % andersonSlots
	spins := 0
	for l.slots[idx].free.Load() == 0 {
		spinPause()
		spins = spinOrYield(spins)
	}
	l.slots[idx].free.Store(0)
	l.held = slot
}

// Unlock releases the lock, granting it to the next queued waiter.
func (l *AndersonLock) Unlock() {
	next := (l.held + 1) % andersonSlots
	l.slots[next].free.Store(1)
}

// MCSLock is the Mellor-Crummey/Scott list-based queue lock. Like the
// Anderson lock each waiter spins locally, but the queue is an explicit
// linked list so there is no fixed waiter bound.
type MCSLock struct {
	tail atomic.Pointer[mcsNode]
	_    pad
	// pool recycles queue nodes; MCS needs a per-acquisition node and we
	// do not want the lock path to allocate.
	pool sync.Pool
	// cur is the node owned by the current holder (handed to Unlock).
	cur *mcsNode
}

type mcsNode struct {
	next   atomic.Pointer[mcsNode]
	locked atomic.Uint32
	_      pad
}

// NewMCSLock returns an initialized MCS lock.
func NewMCSLock() *MCSLock {
	l := &MCSLock{}
	l.pool.New = func() any { return new(mcsNode) }
	return l
}

// Lock acquires the lock.
func (l *MCSLock) Lock() {
	n := l.pool.Get().(*mcsNode)
	n.next.Store(nil)
	n.locked.Store(1)
	prev := l.tail.Swap(n)
	if prev != nil {
		prev.next.Store(n)
		spins := 0
		for n.locked.Load() == 1 {
			spinPause()
			spins = spinOrYield(spins)
		}
	}
	l.cur = n
}

// Unlock releases the lock.
func (l *MCSLock) Unlock() {
	n := l.cur
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			l.pool.Put(n)
			return
		}
		spins := 0
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			spinPause()
			spins = spinOrYield(spins)
		}
	}
	next.locked.Store(0)
	l.pool.Put(n)
}

// spinPause burns a few cycles politely inside spin loops. Go offers no
// portable PAUSE intrinsic; a tiny call that the compiler cannot elide is
// the conventional substitute.
//
//go:noinline
func spinPause() {}

// yieldAfterSpins bounds how long a waiter spins before letting the
// scheduler run someone else. The paper's locks assume a dedicated core
// per thread; on an oversubscribed host (CI boxes, GOMAXPROCS=1) the lock
// holder may not even be running, and a pure spin then stalls everyone —
// spectacularly so under the race detector. Short waits never reach the
// bound, so dedicated-core measurements are unaffected.
const yieldAfterSpins = 256

// spinOrYield advances a per-wait spin counter, yielding the processor
// each time the counter reaches the bound. Spinlock's backoff loop has
// its own equivalent policy.
func spinOrYield(spins int) int {
	spins++
	if spins >= yieldAfterSpins {
		runtime.Gosched()
		return 0
	}
	return spins
}
