package locks

import (
	"sync"
	"testing"
)

// makers enumerates every lock implementation under a stable name.
func makers() map[string]func() Locker {
	return map[string]func() Locker{
		"Spinlock": func() Locker { return new(Spinlock) },
		"Ticket":   func() Locker { return new(TicketLock) },
		"Anderson": func() Locker { return NewAndersonLock() },
		"MCS":      func() Locker { return NewMCSLock() },
		"Mutex":    func() Locker { return new(sync.Mutex) },
	}
}

// TestMutualExclusion hammers a plain counter from many goroutines; any
// mutual-exclusion failure shows up as a lost update (and as a data race
// under -race).
func TestMutualExclusion(t *testing.T) {
	const (
		goroutines = 8
		iters      = 20000
	)
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			l := mk()
			var counter int
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if want := goroutines * iters; counter != want {
				t.Fatalf("lost updates: counter = %d, want %d", counter, want)
			}
		})
	}
}

// TestSequentialLockUnlock exercises repeated uncontended acquire/release.
func TestSequentialLockUnlock(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			for i := 0; i < 1000; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

// TestSpinlockTryLock checks TryLock succeeds when free and fails when held.
func TestSpinlockTryLock(t *testing.T) {
	var l Spinlock
	if !l.TryLock() {
		t.Fatal("TryLock on a free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on a held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

// TestTicketLockFairness verifies FIFO ordering: with a single waiter queued
// behind the holder, the waiter gets the lock on release before a late
// arrival can barge. We can only observe ordering indirectly, so we check
// that grant/next stay consistent across a contended episode.
func TestTicketLockFairness(t *testing.T) {
	l := new(TicketLock)
	const n = 4
	order := make(chan int, n)
	var start, done sync.WaitGroup
	start.Add(1)
	l.Lock() // hold so all goroutines queue up in ticket order
	for i := 0; i < n; i++ {
		done.Add(1)
		i := i
		go func() {
			defer done.Done()
			start.Wait() // released after all tickets are (probably) taken
			l.Lock()
			order <- i
			l.Unlock()
		}()
	}
	start.Done()
	l.Unlock()
	done.Wait()
	close(order)
	seen := 0
	for range order {
		seen++
	}
	if seen != n {
		t.Fatalf("got %d critical sections, want %d", seen, n)
	}
	if got, want := l.next.Load(), uint64(n+1); got != want {
		t.Errorf("next ticket = %d, want %d", got, want)
	}
	if got, want := l.grant.Load(), uint64(n+1); got != want {
		t.Errorf("grant = %d, want %d", got, want)
	}
}

// TestAndersonHandoff verifies the slot rotation across many acquisitions
// (including wraparound past andersonSlots).
func TestAndersonHandoff(t *testing.T) {
	l := NewAndersonLock()
	for i := 0; i < andersonSlots*3; i++ {
		l.Lock()
		l.Unlock()
	}
	// After N lock/unlock pairs the next slot must be free and all others
	// busy, otherwise a future acquirer would deadlock or two would enter.
	free := 0
	for i := range l.slots {
		if l.slots[i].free.Load() == 1 {
			free++
		}
	}
	if free != 1 {
		t.Fatalf("exactly one free slot expected, got %d", free)
	}
}

// TestMCSNoWaiterFastPath checks the uncontended CAS release path.
func TestMCSNoWaiterFastPath(t *testing.T) {
	l := NewMCSLock()
	l.Lock()
	l.Unlock()
	if l.tail.Load() != nil {
		t.Fatal("tail should be nil after uncontended release")
	}
}

func benchLock(b *testing.B, mk func() Locker) {
	l := mk()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkSpinlock(b *testing.B) { benchLock(b, func() Locker { return new(Spinlock) }) }
func BenchmarkTicket(b *testing.B)   { benchLock(b, func() Locker { return new(TicketLock) }) }
func BenchmarkAnderson(b *testing.B) { benchLock(b, func() Locker { return NewAndersonLock() }) }
func BenchmarkMCS(b *testing.B)      { benchLock(b, func() Locker { return NewMCSLock() }) }
func BenchmarkMutex(b *testing.B)    { benchLock(b, func() Locker { return new(sync.Mutex) }) }
