// Package mcclient is a minimal memcached text-protocol client. It
// exists so the repo can smoke-test the mctext front-end the way a stock
// client would — same command lines, same reply parsing — without
// pulling a third-party dependency into the build. One Client wraps one
// connection and is not safe for concurrent use; callers that want
// parallelism open one Client per goroutine.
package mcclient

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"
)

// Sentinel errors mapping the protocol's reply lines.
var (
	// ErrCacheMiss is a get/gets miss or a delete/incr/decr/touch on an
	// absent key (NOT_FOUND).
	ErrCacheMiss = errors.New("mcclient: cache miss")
	// ErrNotStored is add on a present key or replace/append/prepend on
	// an absent one (NOT_STORED).
	ErrNotStored = errors.New("mcclient: not stored")
	// ErrExists is a cas conflict: the entry changed since the gets
	// (EXISTS).
	ErrExists = errors.New("mcclient: cas conflict")
)

// Item is one stored entry.
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	// CAS is the compare-and-swap token (gets only).
	CAS uint64
}

// Client is one text-protocol connection.
type Client struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// Dial connects to a memcached text listener.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) readLine() ([]byte, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

// replyError turns an ERROR/CLIENT_ERROR/SERVER_ERROR line into an
// error, or nil if the line is not an error line.
func replyError(line []byte) error {
	switch {
	case bytes.Equal(line, []byte("ERROR")):
		return errors.New("mcclient: server answered ERROR")
	case bytes.HasPrefix(line, []byte("CLIENT_ERROR ")):
		return fmt.Errorf("mcclient: %s", line)
	case bytes.HasPrefix(line, []byte("SERVER_ERROR ")):
		return fmt.Errorf("mcclient: %s", line)
	}
	return nil
}

// store runs one storage command and maps the reply line.
func (c *Client) store(verb, key string, value []byte, flags uint32, exptime int64, cas uint64) error {
	fmt.Fprintf(c.w, "%s %s %d %d %d", verb, key, flags, exptime, len(value))
	if verb == "cas" {
		fmt.Fprintf(c.w, " %d", cas)
	}
	c.w.WriteString("\r\n")
	c.w.Write(value)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch string(line) {
	case "STORED":
		return nil
	case "NOT_STORED":
		return ErrNotStored
	case "EXISTS":
		return ErrExists
	case "NOT_FOUND":
		return ErrCacheMiss
	}
	if err := replyError(line); err != nil {
		return err
	}
	return fmt.Errorf("mcclient: unexpected reply %q", line)
}

// Set stores value unconditionally.
func (c *Client) Set(key string, value []byte, flags uint32, exptime int64) error {
	return c.store("set", key, value, flags, exptime, 0)
}

// Add stores value iff the key is absent.
func (c *Client) Add(key string, value []byte, flags uint32, exptime int64) error {
	return c.store("add", key, value, flags, exptime, 0)
}

// Replace stores value iff the key is present.
func (c *Client) Replace(key string, value []byte, flags uint32, exptime int64) error {
	return c.store("replace", key, value, flags, exptime, 0)
}

// Append concatenates value after the existing entry.
func (c *Client) Append(key string, value []byte) error {
	return c.store("append", key, value, 0, 0, 0)
}

// Prepend concatenates value before the existing entry.
func (c *Client) Prepend(key string, value []byte) error {
	return c.store("prepend", key, value, 0, 0, 0)
}

// Cas stores value iff the entry still carries the token from a prior
// Gets; ErrExists reports a conflict.
func (c *Client) Cas(key string, value []byte, flags uint32, exptime int64, cas uint64) error {
	return c.store("cas", key, value, flags, exptime, cas)
}

// Get fetches one key (ErrCacheMiss on a miss).
func (c *Client) Get(key string) (*Item, error) {
	items, err := c.retrieve("get", []string{key})
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, ErrCacheMiss
	}
	return items[0], nil
}

// Gets fetches one key with its CAS token.
func (c *Client) Gets(key string) (*Item, error) {
	items, err := c.retrieve("gets", []string{key})
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, ErrCacheMiss
	}
	return items[0], nil
}

// GetMulti fetches several keys in one round trip; missing keys are
// simply absent from the result.
func (c *Client) GetMulti(keys ...string) (map[string]*Item, error) {
	items, err := c.retrieve("get", keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Item, len(items))
	for _, it := range items {
		out[it.Key] = it
	}
	return out, nil
}

func (c *Client) retrieve(verb string, keys []string) ([]*Item, error) {
	c.w.WriteString(verb)
	for _, k := range keys {
		c.w.WriteByte(' ')
		c.w.WriteString(k)
	}
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var items []*Item
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return items, nil
		}
		if err := replyError(line); err != nil {
			return nil, err
		}
		fields := bytes.Split(line, []byte(" "))
		if len(fields) < 4 || !bytes.Equal(fields[0], []byte("VALUE")) {
			return nil, fmt.Errorf("mcclient: unexpected reply %q", line)
		}
		it := &Item{Key: string(fields[1])}
		flags, err := strconv.ParseUint(string(fields[2]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mcclient: bad flags in %q", line)
		}
		it.Flags = uint32(flags)
		n, err := strconv.Atoi(string(fields[3]))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mcclient: bad length in %q", line)
		}
		if len(fields) >= 5 {
			if it.CAS, err = strconv.ParseUint(string(fields[4]), 10, 64); err != nil {
				return nil, fmt.Errorf("mcclient: bad cas in %q", line)
			}
		}
		it.Value = make([]byte, n+2)
		if _, err := readFull(c.r, it.Value); err != nil {
			return nil, err
		}
		if !bytes.HasSuffix(it.Value, []byte("\r\n")) {
			return nil, fmt.Errorf("mcclient: data block for %s not CRLF-terminated", it.Key)
		}
		it.Value = it.Value[:n]
		items = append(items, it)
	}
}

func readFull(r *bufio.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// arith runs incr/decr and returns the new value.
func (c *Client) arith(verb, key string, delta uint64) (uint64, error) {
	fmt.Fprintf(c.w, "%s %s %d\r\n", verb, key, delta)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	if bytes.Equal(line, []byte("NOT_FOUND")) {
		return 0, ErrCacheMiss
	}
	if err := replyError(line); err != nil {
		return 0, err
	}
	n, err := strconv.ParseUint(string(line), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mcclient: unexpected reply %q", line)
	}
	return n, nil
}

// Incr adds delta to the decimal value under key, returning the result.
func (c *Client) Incr(key string, delta uint64) (uint64, error) {
	return c.arith("incr", key, delta)
}

// Decr subtracts delta, flooring at 0.
func (c *Client) Decr(key string, delta uint64) (uint64, error) {
	return c.arith("decr", key, delta)
}

// Delete removes key (ErrCacheMiss when absent).
func (c *Client) Delete(key string) error {
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch string(line) {
	case "DELETED":
		return nil
	case "NOT_FOUND":
		return ErrCacheMiss
	}
	if err := replyError(line); err != nil {
		return err
	}
	return fmt.Errorf("mcclient: unexpected reply %q", line)
}

// Touch updates key's expiry (ErrCacheMiss when absent).
func (c *Client) Touch(key string, exptime int64) error {
	fmt.Fprintf(c.w, "touch %s %d\r\n", key, exptime)
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch string(line) {
	case "TOUCHED":
		return nil
	case "NOT_FOUND":
		return ErrCacheMiss
	}
	if err := replyError(line); err != nil {
		return err
	}
	return fmt.Errorf("mcclient: unexpected reply %q", line)
}

// Version returns the server's version string.
func (c *Client) Version() (string, error) {
	c.w.WriteString("version\r\n")
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if err := replyError(line); err != nil {
		return "", err
	}
	if !bytes.HasPrefix(line, []byte("VERSION ")) {
		return "", fmt.Errorf("mcclient: unexpected reply %q", line)
	}
	return string(line[len("VERSION "):]), nil
}

// Stats returns the server's STAT lines as a name→value map.
func (c *Client) Stats() (map[string]string, error) {
	c.w.WriteString("stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return out, nil
		}
		if err := replyError(line); err != nil {
			return nil, err
		}
		fields := bytes.SplitN(line, []byte(" "), 3)
		if len(fields) != 3 || !bytes.Equal(fields[0], []byte("STAT")) {
			return nil, fmt.Errorf("mcclient: unexpected reply %q", line)
		}
		out[string(fields[1])] = string(fields[2])
	}
}
