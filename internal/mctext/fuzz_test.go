package mctext

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzParseLine throws arbitrary bytes at the tokenizer and checks the
// invariants the connection loop depends on: no panics, errors are typed,
// and a successful parse yields a well-formed command (valid verb, valid
// keys, in-range sizes).
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		"get k",
		"gets a b c",
		"set k 1 0 5",
		"set k 1 0 5 noreply",
		"cas k 0 0 3 42",
		"add k 0 0 0",
		"append k 0 0 2",
		"incr k 1",
		"decr k 18446744073709551615",
		"delete k noreply",
		"touch k -1",
		"stats",
		"version",
		"quit",
		"set k 99999999999999999999999 0 1",
		"get " + string(bytes.Repeat([]byte{'k'}, 300)),
		"set k 1 0",
		"set  k 1 0 5",
		"bogus stuff",
		"\x00\xff\x01binary",
		"incr k abc",
		"cas k 0 0 3",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.ContainsAny(line, "\r\n") {
			// The reader strips line endings before the tokenizer runs.
			t.Skip()
		}
		var cmd textCmd
		fields := make([][]byte, 0, 8)
		_, err := parseLine(line, &cmd, fields)
		if err != nil {
			return // rejected is always fine; not panicking is the point
		}
		switch cmd.verb {
		case verbGet, verbGets:
			if len(cmd.keys) == 0 || len(cmd.keys) > maxGetKeys {
				t.Fatalf("get parsed with %d keys", len(cmd.keys))
			}
		case verbStats, verbVersion, verbQuit:
			if len(cmd.keys) != 0 {
				t.Fatalf("%d keys on a keyless verb", len(cmd.keys))
			}
		case verbUnknown:
			t.Fatal("nil error but unknown verb")
		default:
			if len(cmd.keys) != 1 {
				t.Fatalf("%d keys on single-key verb %d", len(cmd.keys), cmd.verb)
			}
		}
		for _, k := range cmd.keys {
			if !validKey(k) {
				t.Fatalf("parsed invalid key %q", k)
			}
		}
		if cmd.nbytes < 0 || cmd.nbytes > maxValueLen {
			t.Fatalf("nbytes %d out of range", cmd.nbytes)
		}
		_ = utf8.Valid(line) // lines need not be UTF-8; just exercise it
	})
}

// TestParseLineTable pins the tokenizer's accept/reject behavior on
// representative lines (the non-random counterpart of FuzzParseLine).
func TestParseLineTable(t *testing.T) {
	accept := []string{
		"get k",
		"gets k1 k2",
		"set k 0 0 0",
		"set k 4294967295 2592000 10 noreply",
		"cas k 0 -1 3 18446744073709551615",
		"incr k 0",
		"decr k 5 noreply",
		"delete k",
		"touch k 100",
		"quit",
	}
	reject := []string{
		"",
		"get",
		"get " + string(bytes.Repeat([]byte{'x'}, MaxKeyLen+1)),
		"set k 0 0",
		"set k 0 0 1 2 3",
		"set k 4294967296 0 1", // flags overflow uint32
		"set k 0 0 99999999999999999999999",
		"set k 0 0 1 yesplease",
		"cas k 0 0 1", // missing cas token
		"incr k",
		"incr k -1", // negative delta
		"touch k",
		"delete",
		"get a\x7fb",   // DEL byte in key
		"set  k 0 0 1", // double space → empty field
	}
	var cmd textCmd
	fields := make([][]byte, 0, 8)
	for _, s := range accept {
		var err error
		if fields, err = parseLine([]byte(s), &cmd, fields); err != nil {
			t.Errorf("parseLine(%q) rejected: %v", s, err)
		}
	}
	for _, s := range reject {
		var err error
		if fields, err = parseLine([]byte(s), &cmd, fields); err == nil {
			t.Errorf("parseLine(%q) accepted, want error", s)
		}
	}
}
