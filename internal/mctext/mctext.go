// Package mctext is a memcached text-protocol front-end for a cphash
// instance. It runs as a side listener next to the native binary
// listener and acts as a translating proxy: each text connection dials
// the instance's own native address and rewrites memcached commands
// (get/gets/set/add/replace/append/prepend/cas/incr/decr/delete/touch/
// version/stats/quit) into protocol version-4 requests, so a stock
// memcached client can talk to the store without a new server path.
//
// Translation rules:
//
//   - Keys are memcached string keys (≤250 bytes, no whitespace or
//     control bytes) and map onto the string-key op variants, which hash
//     through the same 60-bit key space as native callers.
//   - The 32-bit flags word is persisted as a 4-byte little-endian
//     prefix of the stored value; APPEND/PREPEND/INCR/DECR requests carry
//     wire Prefix=4 so the engine splices after (and parses past) it.
//     Values stored by native callers have no such prefix and read back
//     through this front-end as flags=0 when shorter than 4 bytes.
//   - exptime follows memcached semantics: 0 never expires, negative is
//     already expired, values ≤ 30 days are relative seconds, larger
//     values are absolute unix seconds. All convert to the native
//     millisecond TTL.
//   - "set" maps onto the silent native SET_STR and is acknowledged
//     optimistically after the write is flushed upstream; the
//     per-connection FIFO still guarantees read-your-writes on the same
//     text connection.
//
// Each text connection owns a small set of recycled buffers (line
// reader, key copy, value arena, number scratch) so steady-state
// traffic does not allocate per command.
package mctext

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/obs"
	"cphash/internal/protocol"
)

// maxValueLen bounds one text-protocol payload: the native value bound
// minus the 4-byte flags prefix this front-end adds.
const maxValueLen = protocol.MaxValueSize - flagsPrefixLen

// flagsPrefixLen is the stored-value prefix holding the flags word.
const flagsPrefixLen = 4

// thirtyDays is memcached's relative/absolute exptime watershed.
const thirtyDays = 60 * 60 * 24 * 30

var (
	errLineTooLong = errors.New("line too long")
	errBadChunk    = errors.New("bad data chunk")
)

// Config configures one front-end listener.
type Config struct {
	// Upstream is the instance's native listener address each text
	// connection dials.
	Upstream string
	// Version is the string answered to the "version" command
	// (default "cphash-mctext").
	Version string
	// DialTimeout bounds the upstream dial (default 2s).
	DialTimeout time.Duration
}

// Server accepts memcached text-protocol connections and proxies them
// onto the native listener.
type Server struct {
	cfg    Config
	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	connections atomic.Int64
	active      atomic.Int64
	commands    atomic.Int64
	getHits     atomic.Int64
	getMisses   atomic.Int64
	parseErrors atomic.Int64
	upErrors    atomic.Int64
}

// Serve starts accepting text connections on ln; it returns immediately.
func Serve(ln net.Listener, cfg Config) *Server {
	if cfg.Version == "" {
		cfg.Version = "cphash-mctext"
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	s := &Server{cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and closes all live connections.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Collect emits the front-end's counters into an exposition buffer.
func (s *Server) Collect(e *obs.Expo, labels string) {
	e.Counter("cphash_mctext_connections_total", "Lifetime accepted memcached text connections.", labels, s.connections.Load())
	e.Gauge("cphash_mctext_active_connections", "Currently open memcached text connections.", labels, float64(s.active.Load()))
	e.Counter("cphash_mctext_commands_total", "Text-protocol commands processed.", labels, s.commands.Load())
	e.Counter("cphash_mctext_get_hits_total", "get/gets keys answered with a value.", labels, s.getHits.Load())
	e.Counter("cphash_mctext_get_misses_total", "get/gets keys answered with a miss.", labels, s.getMisses.Load())
	e.Counter("cphash_mctext_parse_errors_total", "Command lines rejected by the tokenizer.", labels, s.parseErrors.Load())
	e.Counter("cphash_mctext_upstream_errors_total", "Connections dropped on native-listener I/O failure.", labels, s.upErrors.Load())
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connections.Add(1)
		s.active.Add(1)
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.active.Add(-1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	t := &textConn{
		s: s,
		r: bufio.NewReaderSize(c, MaxLineLen),
		w: bufio.NewWriterSize(c, 32<<10),
	}
	up, err := net.DialTimeout("tcp", s.cfg.Upstream, s.cfg.DialTimeout)
	if err != nil {
		s.upErrors.Add(1)
		t.w.WriteString("SERVER_ERROR upstream unavailable\r\n")
		t.w.Flush()
		return
	}
	defer up.Close()
	t.upr = bufio.NewReaderSize(up, 64<<10)
	t.upw = bufio.NewWriterSize(up, 64<<10)
	t.run()
}

// textConn is the per-connection translator state. All byte slices are
// recycled arenas reused across commands.
type textConn struct {
	s   *Server
	r   *bufio.Reader // text side
	w   *bufio.Writer
	upr *bufio.Reader // native side
	upw *bufio.Writer

	cmd    textCmd
	fields [][]byte
	keyBuf []byte // storage-command key, copied out of the line buffer
	valBuf []byte // data block (with flags prefix where stored)
	numBuf []byte // decimal rendering scratch
}

// run is the command loop; it returns when the client quits, the
// connection drops, or a fatal protocol error forces a close.
func (t *textConn) run() {
	for {
		line, err := t.readLine()
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				t.s.parseErrors.Add(1)
				t.clientError("line too long")
				t.w.Flush()
			}
			return
		}
		if len(line) == 0 {
			continue
		}
		t.fields, err = parseLine(line, &t.cmd, t.fields)
		if err != nil {
			t.s.parseErrors.Add(1)
			if errors.Is(err, errProtocol) {
				t.w.WriteString("ERROR\r\n")
			} else {
				t.clientError("bad command line format")
			}
			if t.w.Flush() != nil {
				return
			}
			continue
		}
		t.s.commands.Add(1)
		switch t.cmd.verb {
		case verbQuit:
			t.w.Flush()
			return
		case verbVersion:
			t.w.WriteString("VERSION ")
			t.w.WriteString(t.s.cfg.Version)
			t.w.WriteString("\r\n")
			err = t.w.Flush()
		case verbStats:
			err = t.handleStats()
		case verbGet, verbGets:
			err = t.handleGet(t.cmd.verb == verbGets)
		case verbSet, verbAdd, verbReplace, verbAppend, verbPrepend, verbCas:
			err = t.handleStore()
		case verbIncr, verbDecr:
			err = t.handleIncrDecr()
		case verbDelete:
			err = t.handleDelete()
		case verbTouch:
			err = t.handleTouch()
		}
		if err != nil {
			if !errors.Is(err, errBadChunk) {
				t.s.upErrors.Add(1)
				t.serverError("upstream failure")
				t.w.Flush()
				return
			}
			// Bad data chunk: the payload was consumed, the error
			// answered; the connection stays usable.
			if t.w.Flush() != nil {
				return
			}
		}
	}
}

// readLine returns the next command line with CRLF stripped. The
// returned slice aliases the reader's buffer and is valid until the next
// read.
func (t *textConn) readLine() ([]byte, error) {
	line, err := t.r.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return nil, errLineTooLong
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

func (t *textConn) clientError(msg string) {
	t.w.WriteString("CLIENT_ERROR ")
	t.w.WriteString(msg)
	t.w.WriteString("\r\n")
}

func (t *textConn) serverError(msg string) {
	t.w.WriteString("SERVER_ERROR ")
	t.w.WriteString(msg)
	t.w.WriteString("\r\n")
}

// exptimeToTTL maps a memcached exptime to a native millisecond TTL:
// 0 → no expiry, negative → already expired (shortest non-zero TTL),
// ≤30 days → relative seconds, otherwise → absolute unix seconds.
func exptimeToTTL(exp int64, now time.Time) uint32 {
	switch {
	case exp == 0:
		return 0
	case exp < 0:
		return 1
	case exp <= thirtyDays:
		return uint32(exp * 1000)
	default:
		d := exp - now.Unix()
		if d <= 0 {
			return 1
		}
		ms := d * 1000
		if ms > 1<<32-1 {
			ms = 1<<32 - 1
		}
		return uint32(ms)
	}
}

// splitFlags separates a stored value into its flags word and payload.
// Values written by native callers may be shorter than the prefix; they
// read back as flags=0 with the whole value as payload.
func splitFlags(stored []byte) (flags uint32, data []byte) {
	if len(stored) < flagsPrefixLen {
		return 0, stored
	}
	return binary.LittleEndian.Uint32(stored), stored[flagsPrefixLen:]
}

// handleGet answers get/gets: one native GET_STR/GETS_STR per key,
// written back-to-back and flushed once, then the responses harvested in
// order — a multi-key get costs one upstream round trip.
func (t *textConn) handleGet(withCas bool) error {
	op := protocol.OpGetStr
	if withCas {
		op = protocol.OpGetsStr
	}
	for _, k := range t.cmd.keys {
		if err := protocol.WriteRequest(t.upw, protocol.Request{Op: op, StrKey: k}); err != nil {
			return err
		}
	}
	if err := t.upw.Flush(); err != nil {
		return err
	}
	for _, k := range t.cmd.keys {
		var (
			ver   uint64
			found bool
			err   error
		)
		if withCas {
			t.valBuf, ver, found, err = protocol.ReadGetsResponseInto(t.upr, t.valBuf[:0])
		} else {
			t.valBuf, found, err = protocol.ReadLookupResponse(t.upr, t.valBuf[:0])
		}
		if err != nil {
			return err
		}
		if !found {
			t.s.getMisses.Add(1)
			continue
		}
		t.s.getHits.Add(1)
		flags, data := splitFlags(t.valBuf)
		t.w.WriteString("VALUE ")
		t.w.Write(k)
		t.w.WriteByte(' ')
		t.writeUint(uint64(flags))
		t.w.WriteByte(' ')
		t.writeUint(uint64(len(data)))
		if withCas {
			t.w.WriteByte(' ')
			t.writeUint(ver)
		}
		t.w.WriteString("\r\n")
		t.w.Write(data)
		t.w.WriteString("\r\n")
	}
	t.w.WriteString("END\r\n")
	return t.w.Flush()
}

// readData reads the command's data block (nbytes payload + CRLF) into
// valBuf. withFlags prepends the 4-byte flags word, producing the
// stored-value framing. Returns errBadChunk (connection stays usable)
// when the trailing CRLF is missing.
func (t *textConn) readData(withFlags bool) error {
	t.valBuf = t.valBuf[:0]
	if withFlags {
		t.valBuf = binary.LittleEndian.AppendUint32(t.valBuf, t.cmd.flags)
	}
	head := len(t.valBuf)
	need := head + t.cmd.nbytes
	if cap(t.valBuf) < need {
		t.valBuf = append(t.valBuf, make([]byte, need-head)...)
	} else {
		t.valBuf = t.valBuf[:need]
	}
	if _, err := io.ReadFull(t.r, t.valBuf[head:]); err != nil {
		return err
	}
	// ReadByte (not ReadFull into a stack array) keeps the terminator
	// check allocation-free.
	cr, err := t.r.ReadByte()
	if err != nil {
		return err
	}
	lf, err := t.r.ReadByte()
	if err != nil {
		return err
	}
	if cr != '\r' || lf != '\n' {
		t.clientError("bad data chunk")
		return errBadChunk
	}
	return nil
}

// handleStore runs set/add/replace/append/prepend/cas. The key is copied
// out of the line buffer before the data block read invalidates it.
func (t *textConn) handleStore() error {
	t.keyBuf = append(t.keyBuf[:0], t.cmd.keys[0]...)
	verb, noreply, cas := t.cmd.verb, t.cmd.noreply, t.cmd.cas
	ttl := exptimeToTTL(t.cmd.exptime, time.Now())

	// APPEND/PREPEND splice raw payload around the existing entry's
	// flags prefix; the other verbs store a freshly framed value.
	concat := verb == verbAppend || verb == verbPrepend
	if err := t.readData(!concat); err != nil {
		return err
	}

	req := protocol.Request{StrKey: t.keyBuf, Value: t.valBuf, TTL: ttl}
	switch verb {
	case verbSet:
		req.Op = protocol.OpSetStr
	case verbAdd:
		req.Op = protocol.OpAddStr
	case verbReplace:
		req.Op = protocol.OpReplaceStr
	case verbAppend:
		req.Op = protocol.OpAppendStr
		req.Prefix = flagsPrefixLen
	case verbPrepend:
		req.Op = protocol.OpPrependStr
		req.Prefix = flagsPrefixLen
	case verbCas:
		req.Op = protocol.OpCasStr
		req.Ver = cas
	}
	if err := protocol.WriteRequest(t.upw, req); err != nil {
		return err
	}
	if err := t.upw.Flush(); err != nil {
		return err
	}

	if verb == verbSet {
		// SET_STR is silent upstream; acknowledge once flushed (see the
		// package comment).
		if noreply {
			return nil
		}
		t.w.WriteString("STORED\r\n")
		return t.w.Flush()
	}
	status, _, _, err := protocol.ReadRMWResponse(t.upr)
	if err != nil {
		return err
	}
	if noreply {
		return nil
	}
	t.writeStatus(status, "STORED\r\n")
	return t.w.Flush()
}

// writeStatus renders a read-modify-write status as its memcached
// reply line; stored is the success line ("STORED\r\n" or "TOUCHED\r\n").
func (t *textConn) writeStatus(status uint8, stored string) {
	switch status {
	case protocol.RMWStatusStored:
		t.w.WriteString(stored)
	case protocol.RMWStatusNotStored:
		t.w.WriteString("NOT_STORED\r\n")
	case protocol.RMWStatusExists:
		t.w.WriteString("EXISTS\r\n")
	case protocol.RMWStatusNotFound:
		t.w.WriteString("NOT_FOUND\r\n")
	case protocol.RMWStatusBadValue:
		t.clientError("cannot increment or decrement non-numeric value")
	case protocol.RMWStatusTooLarge:
		t.serverError("object too large for cache")
	case protocol.RMWStatusNoSpace:
		t.serverError("out of memory storing object")
	default:
		t.serverError(fmt.Sprintf("unexpected status %d", status))
	}
}

func (t *textConn) handleIncrDecr() error {
	op := protocol.OpIncrStr
	if t.cmd.verb == verbDecr {
		op = protocol.OpDecrStr
	}
	req := protocol.Request{Op: op, StrKey: t.cmd.keys[0], Delta: t.cmd.delta, Prefix: flagsPrefixLen}
	if err := protocol.WriteRequest(t.upw, req); err != nil {
		return err
	}
	if err := t.upw.Flush(); err != nil {
		return err
	}
	status, _, num, err := protocol.ReadRMWResponse(t.upr)
	if err != nil {
		return err
	}
	if t.cmd.noreply {
		return nil
	}
	if status == protocol.RMWStatusStored {
		t.writeUint(num)
		t.w.WriteString("\r\n")
	} else {
		t.writeStatus(status, "")
	}
	return t.w.Flush()
}

func (t *textConn) handleDelete() error {
	req := protocol.Request{Op: protocol.OpDelStr, StrKey: t.cmd.keys[0]}
	if err := protocol.WriteRequest(t.upw, req); err != nil {
		return err
	}
	if err := t.upw.Flush(); err != nil {
		return err
	}
	found, err := protocol.ReadDeleteResponse(t.upr)
	if err != nil {
		return err
	}
	if t.cmd.noreply {
		return nil
	}
	if found {
		t.w.WriteString("DELETED\r\n")
	} else {
		t.w.WriteString("NOT_FOUND\r\n")
	}
	return t.w.Flush()
}

func (t *textConn) handleTouch() error {
	req := protocol.Request{
		Op:     protocol.OpTouchStr,
		StrKey: t.cmd.keys[0],
		TTL:    exptimeToTTL(t.cmd.exptime, time.Now()),
	}
	if err := protocol.WriteRequest(t.upw, req); err != nil {
		return err
	}
	if err := t.upw.Flush(); err != nil {
		return err
	}
	status, _, _, err := protocol.ReadRMWResponse(t.upr)
	if err != nil {
		return err
	}
	if t.cmd.noreply {
		return nil
	}
	t.writeStatus(status, "TOUCHED\r\n")
	return t.w.Flush()
}

func (t *textConn) handleStats() error {
	t.stat("curr_connections", uint64(t.s.active.Load()))
	t.stat("total_connections", uint64(t.s.connections.Load()))
	t.stat("cmd_total", uint64(t.s.commands.Load()))
	t.stat("get_hits", uint64(t.s.getHits.Load()))
	t.stat("get_misses", uint64(t.s.getMisses.Load()))
	t.stat("parse_errors", uint64(t.s.parseErrors.Load()))
	t.w.WriteString("END\r\n")
	return t.w.Flush()
}

func (t *textConn) stat(name string, v uint64) {
	t.w.WriteString("STAT ")
	t.w.WriteString(name)
	t.w.WriteByte(' ')
	t.writeUint(v)
	t.w.WriteString("\r\n")
}

func (t *textConn) writeUint(v uint64) {
	t.numBuf = strconv.AppendUint(t.numBuf[:0], v, 10)
	t.w.Write(t.numBuf)
}
