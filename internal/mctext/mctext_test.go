package mctext

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/mcclient"
)

// newHarness stands up a real native stack (CPHASH table + kvserver) with
// the text front-end proxying onto it, and returns the front-end address.
func newHarness(t testing.TB) string {
	t.Helper()
	table := core.MustNew(core.Config{Partitions: 2, CapacityBytes: 4 << 20, MaxClients: 2, Seed: 1})
	srv, err := kvserver.Serve(kvserver.Config{
		Addr: "127.0.0.1:0", Workers: 2, NewBackend: kvserver.NewCPHashBackend(table),
	})
	if err != nil {
		table.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		table.Close()
		t.Fatal(err)
	}
	mc := Serve(ln, Config{Upstream: srv.Addr()})
	t.Cleanup(func() {
		mc.Close()
		srv.Close()
		table.Close()
	})
	return mc.Addr().String()
}

func dialClient(t testing.TB, addr string) *mcclient.Client {
	t.Helper()
	c, err := mcclient.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCommandRoundTrips(t *testing.T) {
	addr := newHarness(t)
	c := dialClient(t, addr)

	if err := c.Set("k", []byte("v0"), 7, 0); err != nil {
		t.Fatalf("set: %v", err)
	}
	it, err := c.Get("k")
	if err != nil || !bytes.Equal(it.Value, []byte("v0")) || it.Flags != 7 {
		t.Fatalf("get: %+v, %v", it, err)
	}

	// gets → cas → stale cas.
	it, err = c.Gets("k")
	if err != nil || it.CAS == 0 {
		t.Fatalf("gets: %+v, %v", it, err)
	}
	if err := c.Cas("k", []byte("v1"), 7, 0, it.CAS); err != nil {
		t.Fatalf("cas fresh: %v", err)
	}
	if err := c.Cas("k", []byte("v2"), 7, 0, it.CAS); !errors.Is(err, mcclient.ErrExists) {
		t.Fatalf("cas stale: %v, want ErrExists", err)
	}
	if err := c.Cas("nope", []byte("x"), 0, 0, 1); !errors.Is(err, mcclient.ErrCacheMiss) {
		t.Fatalf("cas absent: %v, want ErrCacheMiss", err)
	}

	// add / replace presence rules.
	if err := c.Add("k", []byte("x"), 0, 0); !errors.Is(err, mcclient.ErrNotStored) {
		t.Fatalf("add present: %v", err)
	}
	if err := c.Add("k2", []byte("two"), 0, 0); err != nil {
		t.Fatalf("add absent: %v", err)
	}
	if err := c.Replace("k3", []byte("x"), 0, 0); !errors.Is(err, mcclient.ErrNotStored) {
		t.Fatalf("replace absent: %v", err)
	}
	if err := c.Replace("k2", []byte("TWO"), 3, 0); err != nil {
		t.Fatalf("replace present: %v", err)
	}
	it, err = c.Get("k2")
	if err != nil || !bytes.Equal(it.Value, []byte("TWO")) || it.Flags != 3 {
		t.Fatalf("get after replace: %+v, %v", it, err)
	}

	// append / prepend keep the flags word and splice around it.
	if err := c.Append("k2", []byte("-tail")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := c.Prepend("k2", []byte("head-")); err != nil {
		t.Fatalf("prepend: %v", err)
	}
	it, err = c.Get("k2")
	if err != nil || string(it.Value) != "head-TWO-tail" || it.Flags != 3 {
		t.Fatalf("get after concat: %+v, %v", it, err)
	}
	if err := c.Append("k3", []byte("x")); !errors.Is(err, mcclient.ErrNotStored) {
		t.Fatalf("append absent: %v", err)
	}

	// incr / decr.
	if err := c.Set("n", []byte("41"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Incr("n", 1); err != nil || n != 42 {
		t.Fatalf("incr: %d, %v", n, err)
	}
	if n, err := c.Decr("n", 100); err != nil || n != 0 {
		t.Fatalf("decr floor: %d, %v", n, err)
	}
	if _, err := c.Incr("k2", 1); err == nil ||
		!strings.Contains(err.Error(), "cannot increment or decrement non-numeric value") {
		t.Fatalf("incr non-numeric: %v", err)
	}

	// multi-key get in one round trip.
	m, err := c.GetMulti("k", "k2", "missing", "n")
	if err != nil || len(m) != 3 {
		t.Fatalf("get multi: %d items, %v", len(m), err)
	}

	// touch.
	if err := c.Touch("k", 3600); err != nil {
		t.Fatalf("touch: %v", err)
	}
	if err := c.Touch("missing", 3600); !errors.Is(err, mcclient.ErrCacheMiss) {
		t.Fatalf("touch absent: %v", err)
	}

	// delete.
	if err := c.Delete("k"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := c.Delete("k"); !errors.Is(err, mcclient.ErrCacheMiss) {
		t.Fatalf("re-delete: %v", err)
	}

	// version / stats.
	if v, err := c.Version(); err != nil || v == "" {
		t.Fatalf("version: %q, %v", v, err)
	}
	st, err := c.Stats()
	if err != nil || st["cmd_total"] == "" {
		t.Fatalf("stats: %v, %v", st, err)
	}
}

func TestTouchExpiresEntry(t *testing.T) {
	addr := newHarness(t)
	c := dialClient(t, addr)
	if err := c.Set("ttl", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Negative exptime: already expired.
	if err := c.Touch("ttl", -1); err != nil {
		t.Fatalf("touch: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Get("ttl")
		if errors.Is(err, mcclient.ErrCacheMiss) {
			return
		}
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("entry did not expire after touch -1")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rawConn drives the listener below mcclient, for protocol-abuse tests.
type rawConn struct {
	t testing.TB
	c net.Conn
	r *bufio.Reader
}

func dialRaw(t testing.TB, addr string) *rawConn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(10 * time.Second))
	return &rawConn{t: t, c: c, r: bufio.NewReader(c)}
}

func (rc *rawConn) write(s string) {
	rc.t.Helper()
	if _, err := rc.c.Write([]byte(s)); err != nil {
		rc.t.Fatalf("write %q: %v", s, err)
	}
}

func (rc *rawConn) expect(want string) {
	rc.t.Helper()
	line, err := rc.r.ReadString('\n')
	if err != nil {
		rc.t.Fatalf("reading (want %q): %v", want, err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != want {
		rc.t.Fatalf("got %q, want %q", got, want)
	}
}

func TestErrorStringsAndRecovery(t *testing.T) {
	addr := newHarness(t)
	rc := dialRaw(t, addr)

	// Unknown command → ERROR; connection stays usable.
	rc.write("bogus\r\n")
	rc.expect("ERROR")

	// Bad token counts and malformed numbers → CLIENT_ERROR.
	rc.write("set onlykey\r\n")
	rc.expect("CLIENT_ERROR bad command line format")
	rc.write("set k notanumber 0 1\r\nX\r\n")
	rc.expect("CLIENT_ERROR bad command line format")
	// The orphaned data block then parses as a garbage command.
	rc.expect("ERROR")
	rc.write("incr k abc\r\n")
	rc.expect("CLIENT_ERROR bad command line format")

	// Oversize key.
	rc.write("get " + strings.Repeat("K", MaxKeyLen+1) + "\r\n")
	rc.expect("CLIENT_ERROR bad command line format")
	// Key with control bytes.
	rc.write("get a\x01b\r\n")
	rc.expect("CLIENT_ERROR bad command line format")

	// Bad data chunk (payload longer than declared, so the terminator
	// bytes are not CRLF) → answered, then usable.
	rc.write("set k 0 0 2\r\nABX\r\n")
	rc.expect("CLIENT_ERROR bad data chunk")

	// Binary garbage line.
	rc.write("\x00\xff\xfe\r\n")
	rc.expect("ERROR")

	// Still alive: a clean round trip works on the same connection.
	rc.write("set ok 0 0 2\r\nhi\r\n")
	rc.expect("STORED")
	rc.write("get ok\r\n")
	rc.expect("VALUE ok 0 2")
	rc.expect("hi")
	rc.expect("END")
}

func TestTornLinesReassemble(t *testing.T) {
	addr := newHarness(t)
	rc := dialRaw(t, addr)

	// One session delivered a byte at a time must behave identically.
	session := "set torn 9 0 5\r\nhello\r\ngets torn\r\n"
	for i := 0; i < len(session); i++ {
		rc.write(session[i : i+1])
	}
	rc.expect("STORED")
	line, err := rc.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var flags uint32
	var n int
	var cas uint64
	if _, err := fmt.Sscanf(line, "VALUE torn %d %d %d", &flags, &n, &cas); err != nil || flags != 9 || n != 5 || cas == 0 {
		t.Fatalf("VALUE line %q: flags %d n %d cas %d, %v", line, flags, n, cas, err)
	}
	rc.expect("hello")
	rc.expect("END")
}

func TestNoreplyInterleaving(t *testing.T) {
	addr := newHarness(t)
	rc := dialRaw(t, addr)

	// A noreply burst followed by replied commands: replies must line up
	// with only the replied commands.
	rc.write("set a 0 0 1 noreply\r\nA\r\n")
	rc.write("set b 0 0 1 noreply\r\nB\r\n")
	rc.write("set n 0 0 1 noreply\r\n5\r\n")
	rc.write("incr n 2 noreply\r\n")
	rc.write("delete b noreply\r\n")
	rc.write("get a b\r\n")
	rc.expect("VALUE a 0 1")
	rc.expect("A")
	rc.expect("END")
	rc.write("incr n 1\r\n")
	rc.expect("8")
}

func TestLineTooLongCloses(t *testing.T) {
	addr := newHarness(t)
	rc := dialRaw(t, addr)
	rc.write("get " + strings.Repeat("x", MaxLineLen+10) + "\r\n")
	rc.expect("CLIENT_ERROR line too long")
	if _, err := rc.r.ReadByte(); err == nil {
		t.Fatal("connection still open after oversized line")
	}
}

func TestExptimeToTTL(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cases := []struct {
		exp  int64
		want uint32
	}{
		{0, 0},
		{-1, 1},
		{1, 1000},
		{thirtyDays, thirtyDays * 1000},
		{now.Unix() + 60, 60_000}, // absolute, 60s out
		{now.Unix() - 60, 1},      // absolute, already past
		{thirtyDays + 1, 1},       // absolute but long past
		{1 << 40, 1<<32 - 1},      // absolute, clamped to max TTL
	}
	for _, tc := range cases {
		if got := exptimeToTTL(tc.exp, now); got != tc.want {
			t.Errorf("exptimeToTTL(%d) = %d, want %d", tc.exp, got, tc.want)
		}
	}
}

func TestSplitFlags(t *testing.T) {
	if f, d := splitFlags([]byte{1, 0, 0, 0, 'x'}); f != 1 || string(d) != "x" {
		t.Fatalf("splitFlags: %d %q", f, d)
	}
	// Short native values read back as flags 0.
	if f, d := splitFlags([]byte("ab")); f != 0 || string(d) != "ab" {
		t.Fatalf("splitFlags short: %d %q", f, d)
	}
}
