// Tokenizer for the memcached text protocol's command lines. It is a set
// of pure functions over one line (no I/O, no allocation beyond the
// caller's key list), which is what makes the parser fuzzable in
// isolation: FuzzParseLine throws torn lines, binary bytes, oversize
// fields and hostile token counts at it and asserts it always returns a
// typed error instead of panicking or misparsing.

package mctext

import (
	"errors"
	"fmt"
)

// Command-line limits, mirroring memcached's.
const (
	// MaxKeyLen is memcached's key bound: 250 bytes, no whitespace or
	// control characters.
	MaxKeyLen = 250
	// MaxLineLen bounds one command line (memcached uses 2048 for
	// storage commands; multi-key gets may run longer, so the reader
	// allows more and the tokenizer itself is length-agnostic).
	MaxLineLen = 8192
	// maxGetKeys bounds the keys of one multi-key get/gets, so a hostile
	// line cannot queue unbounded upstream requests.
	maxGetKeys = 64
)

// Parse errors, each mapping to one wire error string. errProtocol maps
// to "ERROR" (unknown command); the others to "CLIENT_ERROR <reason>".
var (
	errProtocol   = errors.New("unknown command")
	errBadLine    = errors.New("bad command line format")
	errBadKey     = errors.New("bad key")
	errTooManyKey = errors.New("too many keys")
)

// verb identifies one parsed text command.
type verb uint8

const (
	verbUnknown verb = iota
	verbGet
	verbGets
	verbSet
	verbAdd
	verbReplace
	verbAppend
	verbPrepend
	verbCas
	verbIncr
	verbDecr
	verbDelete
	verbTouch
	verbStats
	verbVersion
	verbQuit
)

// textCmd is one parsed command line. Key/Keys alias the input line — the
// caller must copy anything it needs past the next read.
type textCmd struct {
	verb    verb
	keys    [][]byte // get/gets: 1..maxGetKeys keys; others: keys[:1]
	flags   uint32   // storage commands
	exptime int64    // storage + touch; memcached seconds semantics
	nbytes  int      // storage commands: payload length
	cas     uint64   // cas
	delta   uint64   // incr/decr
	noreply bool
}

// splitFields tokenizes line on single spaces in place, appending
// subslices to dst. Consecutive spaces produce empty fields, which the
// per-command validators reject — memcached is equally strict.
func splitFields(line []byte, dst [][]byte) [][]byte {
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			dst = append(dst, line[start:i])
			start = i + 1
		}
	}
	return dst
}

// parseUint parses a decimal uint64 field (1–20 digits, wraps like
// memcached's arithmetic would reject — overflow here is an error since
// these are protocol fields, not stored values).
func parseUint(b []byte) (uint64, error) {
	if len(b) == 0 || len(b) > 20 {
		return 0, errBadLine
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errBadLine
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, errBadLine
		}
		n = n*10 + d
	}
	return n, nil
}

// parseInt parses a decimal int64 field with an optional leading minus
// (exptime may be negative: "expire immediately").
func parseInt(b []byte) (int64, error) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	n, err := parseUint(b)
	if err != nil {
		return 0, err
	}
	if n > 1<<63-1 {
		return 0, errBadLine
	}
	if neg {
		return -int64(n), nil
	}
	return int64(n), nil
}

// validKey enforces memcached's key rules: 1–250 bytes, no whitespace or
// control characters (the tokenizer already guarantees no ' ').
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > MaxKeyLen {
		return false
	}
	for _, c := range k {
		if c <= ' ' || c == 127 {
			return false
		}
	}
	return true
}

// parseLine parses one command line (CRLF already stripped) into cmd.
// fields is a caller-recycled scratch slice. On error cmd is undefined
// and the error is one of the typed parse errors above (wrapped with
// context), never a panic — the fuzz harness enforces exactly that.
func parseLine(line []byte, cmd *textCmd, fields [][]byte) ([][]byte, error) {
	fields = splitFields(line, fields[:0])
	*cmd = textCmd{keys: cmd.keys[:0]}
	name := fields[0]
	rest := fields[1:]
	switch string(name) {
	case "get", "gets":
		cmd.verb = verbGet
		if string(name) == "gets" {
			cmd.verb = verbGets
		}
		if len(rest) == 0 {
			return fields, fmt.Errorf("%w: get needs a key", errBadLine)
		}
		if len(rest) > maxGetKeys {
			return fields, fmt.Errorf("%w: %d keys exceeds %d", errTooManyKey, len(rest), maxGetKeys)
		}
		for _, k := range rest {
			if !validKey(k) {
				return fields, fmt.Errorf("%w: %q", errBadKey, k)
			}
			cmd.keys = append(cmd.keys, k)
		}
		return fields, nil

	case "set", "add", "replace", "append", "prepend", "cas":
		switch string(name) {
		case "set":
			cmd.verb = verbSet
		case "add":
			cmd.verb = verbAdd
		case "replace":
			cmd.verb = verbReplace
		case "append":
			cmd.verb = verbAppend
		case "prepend":
			cmd.verb = verbPrepend
		case "cas":
			cmd.verb = verbCas
		}
		want := 4 // key flags exptime bytes
		if cmd.verb == verbCas {
			want = 5 // + cas unique
		}
		if len(rest) < want || len(rest) > want+1 {
			return fields, fmt.Errorf("%w: %s takes %d fields", errBadLine, name, want)
		}
		if len(rest) == want+1 {
			if string(rest[want]) != "noreply" {
				return fields, fmt.Errorf("%w: trailing %q", errBadLine, rest[want])
			}
			cmd.noreply = true
		}
		if !validKey(rest[0]) {
			return fields, fmt.Errorf("%w: %q", errBadKey, rest[0])
		}
		cmd.keys = append(cmd.keys, rest[0])
		flags, err := parseUint(rest[1])
		if err != nil || flags > 1<<32-1 {
			return fields, fmt.Errorf("%w: flags", errBadLine)
		}
		cmd.flags = uint32(flags)
		if cmd.exptime, err = parseInt(rest[2]); err != nil {
			return fields, fmt.Errorf("%w: exptime", errBadLine)
		}
		nbytes, err := parseUint(rest[3])
		if err != nil || nbytes > maxValueLen {
			return fields, fmt.Errorf("%w: bytes", errBadLine)
		}
		cmd.nbytes = int(nbytes)
		if cmd.verb == verbCas {
			if cmd.cas, err = parseUint(rest[4]); err != nil {
				return fields, fmt.Errorf("%w: cas unique", errBadLine)
			}
		}
		return fields, nil

	case "incr", "decr":
		cmd.verb = verbIncr
		if string(name) == "decr" {
			cmd.verb = verbDecr
		}
		if len(rest) < 2 || len(rest) > 3 {
			return fields, fmt.Errorf("%w: %s takes 2 fields", errBadLine, name)
		}
		if len(rest) == 3 {
			if string(rest[2]) != "noreply" {
				return fields, fmt.Errorf("%w: trailing %q", errBadLine, rest[2])
			}
			cmd.noreply = true
		}
		if !validKey(rest[0]) {
			return fields, fmt.Errorf("%w: %q", errBadKey, rest[0])
		}
		cmd.keys = append(cmd.keys, rest[0])
		var err error
		if cmd.delta, err = parseUint(rest[1]); err != nil {
			return fields, fmt.Errorf("%w: delta", errBadLine)
		}
		return fields, nil

	case "delete":
		cmd.verb = verbDelete
		if len(rest) < 1 || len(rest) > 2 {
			return fields, fmt.Errorf("%w: delete takes 1 field", errBadLine)
		}
		if len(rest) == 2 {
			if string(rest[1]) != "noreply" {
				return fields, fmt.Errorf("%w: trailing %q", errBadLine, rest[1])
			}
			cmd.noreply = true
		}
		if !validKey(rest[0]) {
			return fields, fmt.Errorf("%w: %q", errBadKey, rest[0])
		}
		cmd.keys = append(cmd.keys, rest[0])
		return fields, nil

	case "touch":
		cmd.verb = verbTouch
		if len(rest) < 2 || len(rest) > 3 {
			return fields, fmt.Errorf("%w: touch takes 2 fields", errBadLine)
		}
		if len(rest) == 3 {
			if string(rest[2]) != "noreply" {
				return fields, fmt.Errorf("%w: trailing %q", errBadLine, rest[2])
			}
			cmd.noreply = true
		}
		if !validKey(rest[0]) {
			return fields, fmt.Errorf("%w: %q", errBadKey, rest[0])
		}
		cmd.keys = append(cmd.keys, rest[0])
		var err error
		if cmd.exptime, err = parseInt(rest[1]); err != nil {
			return fields, fmt.Errorf("%w: exptime", errBadLine)
		}
		return fields, nil

	case "stats":
		cmd.verb = verbStats
		return fields, nil
	case "version":
		cmd.verb = verbVersion
		return fields, nil
	case "quit":
		cmd.verb = verbQuit
		return fields, nil
	}
	return fields, fmt.Errorf("%w: %q", errProtocol, name)
}
