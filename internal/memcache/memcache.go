// Package memcache is the MEMCACHED stand-in for the paper's Figure 14
// comparison. The property the paper measures is architectural, not
// memcached's feature set: a single coarse lock protects each instance's
// entire state, requests are handled one at a time per connection with no
// cross-request batching, and scaling beyond one core requires running
// independent instances with the *client* partitioning the key space
// (exactly how the paper ran memcached: "a separate, independent instance
// of MEMCACHED on every core").
//
// Instances speak the same binary protocol as CPSERVER so the same load
// generator drives all three servers.
package memcache

import (
	"bufio"
	"container/list"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/cluster"
	"cphash/internal/partition"
	"cphash/internal/protocol"
)

// entry is one cached key/value pair plus its LRU hook.
type entry struct {
	key     uint64
	value   []byte
	expires int64  // wall-clock ns deadline; 0 = never
	version uint64 // CAS token, assigned at store time
	elem    *list.Element
}

// Instance is one single-lock cache server, the unit the client partitions
// keys across.
type Instance struct {
	mu      sync.Mutex
	m       map[uint64]*entry
	lru     *list.List // front = most recently used
	used    int
	capB    int
	verNext uint64 // next CAS version to assign (starts at 1)
	ln      net.Listener
	wg      sync.WaitGroup
	conns   map[net.Conn]struct{}
	cmu     sync.Mutex
	done    atomic.Bool

	requests atomic.Int64
}

// ServeInstance starts one instance listening on addr with a capacity of
// capacityBytes of values (LRU-evicted, like the paper's tables).
func ServeInstance(addr string, capacityBytes int) (*Instance, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		m:       map[uint64]*entry{},
		lru:     list.New(),
		capB:    capacityBytes,
		verNext: 1,
		ln:      ln,
		conns:   map[net.Conn]struct{}{},
	}
	inst.wg.Add(1)
	go inst.acceptLoop()
	return inst, nil
}

// Addr returns the instance's bound address.
func (i *Instance) Addr() string { return i.ln.Addr().String() }

// Requests returns the lifetime request count.
func (i *Instance) Requests() int64 { return i.requests.Load() }

// Close stops the instance.
func (i *Instance) Close() error {
	if !i.done.CompareAndSwap(false, true) {
		return nil
	}
	i.ln.Close()
	i.cmu.Lock()
	for c := range i.conns {
		c.Close()
	}
	i.cmu.Unlock()
	i.wg.Wait()
	return nil
}

func (i *Instance) acceptLoop() {
	defer i.wg.Done()
	for {
		conn, err := i.ln.Accept()
		if err != nil {
			return
		}
		if tcp, ok := conn.(*net.TCPConn); ok {
			tcp.SetNoDelay(true)
		}
		i.cmu.Lock()
		if i.done.Load() {
			i.cmu.Unlock()
			conn.Close()
			return
		}
		i.conns[conn] = struct{}{}
		i.cmu.Unlock()
		i.wg.Add(1)
		go i.serveConn(conn)
	}
}

// serveConn is memcached-style request handling: parse one request, take
// the global lock, execute, respond immediately. No batching.
func (i *Instance) serveConn(conn net.Conn) {
	defer i.wg.Done()
	defer func() {
		i.cmu.Lock()
		delete(i.conns, conn)
		i.cmu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	var scratch, entryBuf []byte
	for {
		req, err := protocol.ReadRequest(br)
		if err != nil {
			return
		}
		i.requests.Add(1)
		switch req.Op {
		case protocol.OpLookup:
			var found bool
			scratch, found = i.get(req.Key, scratch[:0])
			if err := protocol.WriteLookupResponse(bw, scratch, found); err != nil {
				return
			}
			// Respond immediately: memcached has no cross-request batching.
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpGetStr:
			scratch = scratch[:0]
			var found bool
			var value []byte
			scratch, found = i.get(protocol.HashStringKey(req.StrKey), scratch)
			if found {
				value, found = protocol.CutStringEntry(scratch, req.StrKey)
			}
			if err := protocol.WriteLookupResponse(bw, value, found); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpInsert, protocol.OpInsertTTL:
			i.put(req.Key, req.Value, req.TTL)
		case protocol.OpSetStr:
			// put copies under the lock, so the staging buffer is reusable.
			entryBuf = protocol.AppendStringEntry(entryBuf[:0], req.StrKey, req.Value)
			i.put(protocol.HashStringKey(req.StrKey), entryBuf, req.TTL)
		case protocol.OpDelete:
			if err := protocol.WriteDeleteResponse(bw, i.del(req.Key)); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpDelStr:
			if err := protocol.WriteDeleteResponse(bw, i.del(protocol.HashStringKey(req.StrKey))); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpScan:
			count := int(req.Count)
			if count <= 0 || count > protocol.MaxScanBatch {
				count = protocol.MaxScanBatch
			}
			next, entries := i.scan(&req.Slots, req.Cursor, count)
			if err := protocol.WriteScanResponse(bw, next, entries); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpPurge:
			removed := i.purge(&req.Slots)
			if err := protocol.WritePurgeResponse(bw, protocol.ScanDone, removed); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpGets:
			var found bool
			var ver uint64
			scratch, ver, found = i.gets(req.Key, scratch[:0])
			if err := protocol.WriteGetsResponse(bw, scratch, ver, found); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpGetsStr:
			var found bool
			var ver uint64
			var value []byte
			scratch, ver, found = i.gets(protocol.HashStringKey(req.StrKey), scratch[:0])
			if found {
				value, found = protocol.CutStringEntry(scratch, req.StrKey)
			}
			if !found {
				ver = 0
			}
			if err := protocol.WriteGetsResponse(bw, value, ver, found); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case protocol.OpInsertVer:
			i.putVer(req.Key, req.Value, req.TTL, req.Ver)
		default:
			if !protocol.IsRMW(req.Op) {
				continue
			}
			st, ver, num := i.rmw(&req)
			if err := protocol.WriteRMWResponse(bw, st, ver, num); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// scan returns up to count live entries in the selected slots with keys ≥
// cursor, in ascending key order — the map has no stable iteration order,
// so the key itself is the cursor (keys are 60-bit; the resume cursor
// last+1 can never collide with protocol.ScanDone). The selection is
// O(n log n) under the global lock, in keeping with this baseline's
// deliberately coarse design.
func (i *Instance) scan(slots *protocol.SlotSet, cursor uint64, count int) (uint64, []protocol.ScanEntry) {
	i.mu.Lock()
	defer i.mu.Unlock()
	now := time.Now().UnixNano()
	var keys []uint64
	for k, e := range i.m {
		if k < cursor || !slots.Has(cluster.SlotOf(k)) {
			continue
		}
		if e.expires != 0 && now >= e.expires {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	done := len(keys) <= count
	if !done {
		keys = keys[:count]
	}
	entries := make([]protocol.ScanEntry, 0, len(keys))
	for _, k := range keys {
		e := i.m[k]
		var ttl uint32
		if e.expires != 0 {
			ms := (e.expires - now + int64(time.Millisecond) - 1) / int64(time.Millisecond)
			if ms < 1 {
				ms = 1 // still live at the clock read above; keep it expiring
			}
			ttl = uint32(min64(ms, int64(^uint32(0))))
		}
		entries = append(entries, protocol.ScanEntry{
			Key:     k,
			TTL:     ttl,
			Version: e.version,
			Value:   append([]byte(nil), e.value...),
		})
	}
	if done {
		return protocol.ScanDone, entries
	}
	return keys[len(keys)-1] + 1, entries
}

// purge removes every live entry in the selected slots in one pass (a
// single-lock instance has no reason to cursor).
func (i *Instance) purge(slots *protocol.SlotSet) uint32 {
	i.mu.Lock()
	defer i.mu.Unlock()
	now := time.Now().UnixNano()
	var removed uint32
	for k, e := range i.m {
		if !slots.Has(cluster.SlotOf(k)) {
			continue
		}
		live := e.expires == 0 || now < e.expires
		i.removeLocked(e)
		if live {
			removed++
		}
	}
	return removed
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// get copies the value under the global lock. An entry whose TTL elapsed
// is removed lazily and reported as a miss.
func (i *Instance) get(key uint64, dst []byte) ([]byte, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	e, ok := i.m[key]
	if !ok {
		return dst, false
	}
	if e.expires != 0 && time.Now().UnixNano() >= e.expires {
		i.removeLocked(e)
		return dst, false
	}
	i.lru.MoveToFront(e.elem)
	return append(dst, e.value...), true
}

// put stores the value under the global lock, evicting LRU entries to fit.
// ttlMillis of 0 means "never expires".
func (i *Instance) put(key uint64, value []byte, ttlMillis uint32) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.putLocked(key, value, deadline(ttlMillis), 0)
}

// putVer is put with an explicit CAS version (the INSERT_VER replay path).
func (i *Instance) putVer(key uint64, value []byte, ttlMillis uint32, ver uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.putLocked(key, value, deadline(ttlMillis), ver)
}

// putLocked stores value under key with an absolute deadline and version
// (0 = assign the next one), evicting LRU entries to fit. It reports the
// stored version and whether space was obtained. Callers hold i.mu.
func (i *Instance) putLocked(key uint64, value []byte, expires int64, ver uint64) (uint64, bool) {
	if old, ok := i.m[key]; ok {
		i.removeLocked(old)
	}
	if len(value) > i.capB {
		return 0, false // cannot fit at all; drop (cache semantics)
	}
	for i.used+len(value) > i.capB {
		back := i.lru.Back()
		if back == nil {
			break
		}
		i.removeLocked(back.Value.(*entry))
	}
	if ver == 0 {
		ver = i.verNext
		i.verNext++
	} else if ver >= i.verNext {
		// Replayed versions keep the counter ahead so later stores cannot
		// reissue a token a CAS may already hold.
		i.verNext = ver + 1
	}
	e := &entry{key: key, value: append([]byte(nil), value...), expires: expires, version: ver}
	e.elem = i.lru.PushFront(e)
	i.m[key] = e
	i.used += len(value)
	return ver, true
}

// deadline converts a millisecond TTL to a wall-clock deadline (0 = never).
func deadline(ttlMillis uint32) int64 {
	if ttlMillis == 0 {
		return 0
	}
	return time.Now().UnixNano() + int64(ttlMillis)*int64(time.Millisecond)
}

// gets is get plus the entry's CAS version.
func (i *Instance) gets(key uint64, dst []byte) ([]byte, uint64, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	e, ok := i.m[key]
	if !ok {
		return dst, 0, false
	}
	if e.expires != 0 && time.Now().UnixNano() >= e.expires {
		i.removeLocked(e)
		return dst, 0, false
	}
	i.lru.MoveToFront(e.elem)
	return append(dst, e.value...), e.version, true
}

// rmw executes one read-modify-write under the global lock, mirroring the
// partition engine's semantics (internal/partition's Store.RMW) so all
// three servers answer the version-4 ops identically.
func (i *Instance) rmw(req *protocol.Request) (status uint8, outVer, num uint64) {
	key := req.Key
	if req.StrKey != nil {
		key = protocol.HashStringKey(req.StrKey)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	e := i.m[key]
	if e != nil && e.expires != 0 && time.Now().UnixNano() >= e.expires {
		i.removeLocked(e)
		e = nil
	}
	// Unwrap string-entry framing; a 60-bit hash collision reads as absent.
	var old []byte
	if e != nil {
		old = e.value
		if req.StrKey != nil {
			v, match := protocol.CutStringEntry(e.value, req.StrKey)
			if !match {
				e, old = nil, nil
			} else {
				old = v
			}
		}
	}
	prefix := int(req.Prefix)
	store := func(val []byte, expires int64) {
		framed := val
		if req.StrKey != nil {
			framed = protocol.AppendStringEntry(nil, req.StrKey, val)
		}
		if len(framed) > protocol.MaxValueSize {
			status = protocol.RMWStatusTooLarge
			return
		}
		v, ok := i.putLocked(key, framed, expires, 0)
		if !ok {
			status = protocol.RMWStatusNoSpace
			return
		}
		outVer, status = v, protocol.RMWStatusStored
	}
	switch req.Op {
	case protocol.OpCas, protocol.OpCasStr:
		if e == nil {
			return protocol.RMWStatusNotFound, 0, 0
		}
		if e.version != req.Ver {
			return protocol.RMWStatusExists, e.version, 0
		}
		store(req.Value, deadline(req.TTL))
	case protocol.OpAdd, protocol.OpAddStr:
		if e != nil {
			return protocol.RMWStatusNotStored, 0, 0
		}
		store(req.Value, deadline(req.TTL))
	case protocol.OpReplace, protocol.OpReplaceStr:
		if e == nil {
			return protocol.RMWStatusNotStored, 0, 0
		}
		store(req.Value, deadline(req.TTL))
	case protocol.OpAppend, protocol.OpAppendStr, protocol.OpPrepend, protocol.OpPrependStr:
		if e == nil {
			return protocol.RMWStatusNotStored, 0, 0
		}
		if len(old) < prefix {
			return protocol.RMWStatusBadValue, 0, 0
		}
		var buf []byte
		if req.Op == protocol.OpAppend || req.Op == protocol.OpAppendStr {
			buf = append(append([]byte(nil), old...), req.Value...)
		} else {
			buf = append([]byte(nil), old[:prefix]...)
			buf = append(buf, req.Value...)
			buf = append(buf, old[prefix:]...)
		}
		store(buf, e.expires)
	case protocol.OpIncr, protocol.OpIncrStr, protocol.OpDecr, protocol.OpDecrStr:
		if e == nil {
			return protocol.RMWStatusNotFound, 0, 0
		}
		if len(old) < prefix {
			return protocol.RMWStatusBadValue, 0, 0
		}
		n, ok := partition.ParseDecimal(old[prefix:])
		if !ok {
			return protocol.RMWStatusBadValue, 0, 0
		}
		if req.Op == protocol.OpIncr || req.Op == protocol.OpIncrStr {
			n += req.Delta // 64-bit wraparound, as memcached's arithmetic
		} else if n < req.Delta {
			n = 0 // memcached floors decrement at zero
		} else {
			n -= req.Delta
		}
		buf := append([]byte(nil), old[:prefix]...)
		buf = strconv.AppendUint(buf, n, 10)
		store(buf, e.expires)
		if status == protocol.RMWStatusStored {
			num = n
		}
	case protocol.OpTouch, protocol.OpTouchStr:
		if e == nil {
			return protocol.RMWStatusNotFound, 0, 0
		}
		// Touch rewrites the deadline in place; the version is unchanged
		// (memcached touch does not bump cas).
		e.expires = deadline(req.TTL)
		return protocol.RMWStatusStored, e.version, 0
	default:
		return protocol.RMWStatusBadValue, 0, 0
	}
	return status, outVer, num
}

// del removes the entry under the global lock, reporting whether a live
// (unexpired) entry existed.
func (i *Instance) del(key uint64) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	e, ok := i.m[key]
	if !ok {
		return false
	}
	expired := e.expires != 0 && time.Now().UnixNano() >= e.expires
	i.removeLocked(e)
	return !expired
}

// removeLocked unlinks an entry from the map, LRU list, and byte
// accounting. Callers hold i.mu.
func (i *Instance) removeLocked(e *entry) {
	i.lru.Remove(e.elem)
	delete(i.m, e.key)
	i.used -= len(e.value)
}

// Len returns the number of cached entries (diagnostic).
func (i *Instance) Len() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.m)
}

// Cluster is the paper's multi-instance configuration: one Instance per
// simulated core, keys partitioned by the client.
type Cluster struct {
	Instances []*Instance
}

// ServeCluster starts n instances on loopback, splitting capacityBytes
// between them.
func ServeCluster(n, capacityBytes int) (*Cluster, error) {
	if n < 1 {
		n = 1
	}
	c := &Cluster{}
	for k := 0; k < n; k++ {
		inst, err := ServeInstance("127.0.0.1:0", capacityBytes/n)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Instances = append(c.Instances, inst)
	}
	return c, nil
}

// Addrs lists the instance addresses in order; load generators partition
// the key space across them by hash, as the paper's clients do.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Instances))
	for i, inst := range c.Instances {
		out[i] = inst.Addr()
	}
	return out
}

// Requests sums lifetime requests across instances.
func (c *Cluster) Requests() int64 {
	var n int64
	for _, inst := range c.Instances {
		n += inst.Requests()
	}
	return n
}

// Close stops every instance.
func (c *Cluster) Close() error {
	for _, inst := range c.Instances {
		if inst != nil {
			inst.Close()
		}
	}
	return nil
}
