package memcache

import (
	"sync"
	"testing"

	"cphash/internal/loadgen"
	"cphash/internal/protocol"
	"cphash/internal/workload"

	"bufio"
	"net"
)

func dial(t *testing.T, addr string) (*bufio.Writer, *bufio.Reader, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return bufio.NewWriter(conn), bufio.NewReader(conn), conn
}

func TestInstanceBasic(t *testing.T) {
	inst, err := ServeInstance("127.0.0.1:0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	w, r, conn := dial(t, inst.Addr())
	defer conn.Close()

	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpInsert, Key: 1, Value: []byte("one")})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 1})
	w.Flush()
	v, found, err := protocol.ReadLookupResponse(r, nil)
	if err != nil || !found || string(v) != "one" {
		t.Fatalf("lookup = %q %v %v", v, found, err)
	}
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 2})
	w.Flush()
	if _, found, _ := protocol.ReadLookupResponse(r, nil); found {
		t.Fatal("hit for absent key")
	}
	if inst.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", inst.Requests())
	}
}

func TestLRUEviction(t *testing.T) {
	inst, err := ServeInstance("127.0.0.1:0", 100) // tiny: ~12 8-byte values
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	w, r, conn := dial(t, inst.Addr())
	defer conn.Close()

	for k := uint64(0); k < 50; k++ {
		protocol.WriteRequest(w, protocol.Request{Op: protocol.OpInsert, Key: k, Value: make([]byte, 8)})
	}
	// The earliest key must be evicted, the newest present.
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 0})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 49})
	w.Flush()
	_, found0, err := protocol.ReadLookupResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, found49, err := protocol.ReadLookupResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if found0 {
		t.Fatal("LRU victim still present")
	}
	if !found49 {
		t.Fatal("newest key evicted")
	}
	if inst.Len() == 0 || inst.Len() > 13 {
		t.Fatalf("instance holds %d entries for 100-byte capacity", inst.Len())
	}
}

func TestOversizeValueDropped(t *testing.T) {
	inst, err := ServeInstance("127.0.0.1:0", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	w, r, conn := dial(t, inst.Addr())
	defer conn.Close()
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpInsert, Key: 1, Value: make([]byte, 64)})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 1})
	w.Flush()
	if _, found, _ := protocol.ReadLookupResponse(r, nil); found {
		t.Fatal("value larger than capacity was stored")
	}
}

func TestClusterWithLoadgen(t *testing.T) {
	cluster, err := ServeCluster(4, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if len(cluster.Addrs()) != 4 {
		t.Fatalf("addrs = %v", cluster.Addrs())
	}
	// 1,024 keys and 10k ops: inserts cover most of the key space, so the
	// steady-state hit rate is solidly positive even from a cold cache.
	spec := workload.Default(8 << 10)
	res, err := loadgen.Run(loadgen.Config{
		Addrs:      cluster.Addrs(),
		Conns:      2,
		Pipeline:   32,
		Spec:       spec,
		OpsPerConn: 5000,
		Validate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BadBytes != 0 {
		t.Fatalf("%d corrupt responses", res.BadBytes)
	}
	if res.HitRate() < 0.3 {
		t.Fatalf("hit rate %.2f", res.HitRate())
	}
	if cluster.Requests() != res.Ops {
		t.Fatalf("cluster saw %d requests, loadgen sent %d", cluster.Requests(), res.Ops)
	}
	// Partitioning must spread keys over all instances.
	for i, inst := range cluster.Instances {
		if inst.Requests() == 0 {
			t.Errorf("instance %d received no traffic", i)
		}
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	cluster, err := ServeCluster(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Close()
	cluster.Close()
}

// TestConcurrentConnections: many goroutines hammer one instance through
// separate connections; the global lock must serialize correctly.
func TestConcurrentConnections(t *testing.T) {
	inst, err := ServeInstance("127.0.0.1:0", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, r, conn := dialT(t, inst.Addr())
			defer conn.Close()
			base := uint64(g) << 24
			for i := uint64(0); i < 300; i++ {
				protocol.WriteRequest(w, protocol.Request{
					Op: protocol.OpInsert, Key: base + i, Value: []byte{byte(i), byte(g)},
				})
				protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: base + i})
				if err := w.Flush(); err != nil {
					t.Error(err)
					return
				}
				v, found, err := protocol.ReadLookupResponse(r, nil)
				if err != nil || !found || v[0] != byte(i) || v[1] != byte(g) {
					t.Errorf("goroutine %d key %d: %v %v %v", g, i, v, found, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// dialT is dial but usable from goroutines (no Fatal).
func dialT(t *testing.T, addr string) (*bufio.Writer, *bufio.Reader, net.Conn) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		panic(err)
	}
	return bufio.NewWriter(conn), bufio.NewReader(conn), conn
}

// TestInstanceCloseIdempotent mirrors the cluster test at instance level.
func TestInstanceCloseIdempotent(t *testing.T) {
	inst, err := ServeInstance("127.0.0.1:0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	inst.Close()
}
