package memcache

import (
	"testing"
	"time"

	"cphash/internal/protocol"
)

// TestInstanceV2Ops: the memcached stand-in speaks the full version-2
// protocol — DELETE with found responses, TTL inserts that expire, and
// string-key GET/SET/DEL — so the same load generators can drive all
// three server designs.
func TestInstanceV2Ops(t *testing.T) {
	inst, err := ServeInstance("127.0.0.1:0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	w, r, conn := dial(t, inst.Addr())
	defer conn.Close()

	// DELETE: present → found, absent → not found, then a GET misses.
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpInsert, Key: 1, Value: []byte("one")})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpDelete, Key: 1})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpDelete, Key: 1})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 1})
	w.Flush()
	if found, err := protocol.ReadDeleteResponse(r); err != nil || !found {
		t.Fatalf("first DELETE = %v, %v; want found", found, err)
	}
	if found, err := protocol.ReadDeleteResponse(r); err != nil || found {
		t.Fatalf("second DELETE = %v, %v; want not found", found, err)
	}
	if _, found, err := protocol.ReadLookupResponse(r, nil); err != nil || found {
		t.Fatalf("LOOKUP after DELETE = %v, %v; want miss", found, err)
	}

	// String keys round-trip and missing keys miss.
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpSetStr, StrKey: []byte("greeting"), Value: []byte("hello")})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpGetStr, StrKey: []byte("greeting")})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpGetStr, StrKey: []byte("absent")})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpDelStr, StrKey: []byte("greeting")})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpGetStr, StrKey: []byte("greeting")})
	w.Flush()
	if v, found, err := protocol.ReadLookupResponse(r, nil); err != nil || !found || string(v) != "hello" {
		t.Fatalf("GET_STR greeting = %q, %v, %v", v, found, err)
	}
	if _, found, err := protocol.ReadLookupResponse(r, nil); err != nil || found {
		t.Fatalf("GET_STR absent = %v, %v; want miss", found, err)
	}
	if found, err := protocol.ReadDeleteResponse(r); err != nil || !found {
		t.Fatalf("DEL_STR greeting = %v, %v; want found", found, err)
	}
	if _, found, err := protocol.ReadLookupResponse(r, nil); err != nil || found {
		t.Fatal("GET_STR after DEL_STR hit")
	}

	// TTL: a 100ms entry vanishes; deleting it afterwards reports absent.
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpInsertTTL, Key: 9, TTL: 100, Value: []byte("soon")})
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 9})
	w.Flush()
	if v, found, err := protocol.ReadLookupResponse(r, nil); err != nil || !found || string(v) != "soon" {
		t.Fatalf("LOOKUP before TTL = %q, %v, %v", v, found, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		protocol.WriteRequest(w, protocol.Request{Op: protocol.OpLookup, Key: 9})
		w.Flush()
		_, found, err := protocol.ReadLookupResponse(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("key 9 still visible long after its 100ms TTL")
		}
		time.Sleep(20 * time.Millisecond)
	}
	protocol.WriteRequest(w, protocol.Request{Op: protocol.OpDelete, Key: 9})
	w.Flush()
	if found, err := protocol.ReadDeleteResponse(r); err != nil || found {
		t.Fatalf("DELETE of expired key = %v, %v; want not found", found, err)
	}
}
