// Structured lifecycle events. Cluster state transitions — join,
// leave, promote, migration, recovery — are operational facts a human
// or a log pipeline needs to correlate with the metric trail, so they
// go through log/slog with stable keys instead of ad-hoc Printf lines.
package obs

import (
	"io"
	"log/slog"
)

// NewEventLogger returns a structured logger for lifecycle events,
// writing single-line logfmt-style records to w. The component label
// tags every record so multi-subsystem processes interleave legibly.
func NewEventLogger(w io.Writer, component string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return slog.New(h).With("component", component)
}
