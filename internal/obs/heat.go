// Per-slot heat: operation and byte counters over the 256-slot cluster
// continuum, the unit of placement and migration. Heat is recorded
// per-partition by the owning goroutine (uncontended) and aggregated
// lazily at scrape time, so the hot path never synchronizes across
// partitions.
package obs

import "sync/atomic"

// Slots is the fixed size of the cluster continuum; it must agree with
// cluster.Slots (the top eight bits of the mixed key). Spelled as a
// literal here so obs stays a leaf package; the partition package
// asserts the agreement at compile time.
const Slots = 256

// SlotHeat accumulates per-slot operation and byte counts. One writer
// (the partition's owner goroutine), any number of readers. The pads
// keep the array from false-sharing with neighboring heap objects;
// within the array, single-writer access needs no padding.
type SlotHeat struct {
	_     [64]byte
	ops   [Slots]atomic.Int64
	bytes [Slots]atomic.Int64
	_     [64]byte
}

// Record books one operation touching slot with n value bytes moved.
func (h *SlotHeat) Record(slot int, n int64) {
	h.ops[slot&(Slots-1)].Add(1)
	if n != 0 {
		h.bytes[slot&(Slots-1)].Add(n)
	}
}

// Snapshot copies the heat counters.
func (h *SlotHeat) Snapshot() HeatSnapshot {
	var s HeatSnapshot
	for i := range h.ops {
		s.Ops[i] = h.ops[i].Load()
		s.Bytes[i] = h.bytes[i].Load()
	}
	return s
}

// HeatSnapshot is a point-in-time copy of per-slot heat; snapshots from
// different partitions merge associatively at scrape time.
type HeatSnapshot struct {
	Ops   [Slots]int64
	Bytes [Slots]int64
}

// Merge adds o's counts into s.
func (s *HeatSnapshot) Merge(o HeatSnapshot) {
	for i := range s.Ops {
		s.Ops[i] += o.Ops[i]
		s.Bytes[i] += o.Bytes[i]
	}
}

// Sub subtracts an earlier snapshot, yielding interval heat.
func (s *HeatSnapshot) Sub(prev HeatSnapshot) HeatSnapshot {
	out := *s
	for i := range out.Ops {
		out.Ops[i] -= prev.Ops[i]
		out.Bytes[i] -= prev.Bytes[i]
	}
	return out
}

// TotalOps sums operations over all slots.
func (s *HeatSnapshot) TotalOps() int64 {
	var t int64
	for _, n := range s.Ops {
		t += n
	}
	return t
}

// MaxSlot returns the hottest slot by operations and its count.
func (s *HeatSnapshot) MaxSlot() (slot int, ops int64) {
	for i, n := range s.Ops {
		if n > ops {
			slot, ops = i, n
		}
	}
	return slot, ops
}

// Skew is the hottest slot's share of operations relative to a uniform
// spread (max/mean): 1.0 is perfectly even, 256 is all heat on one
// slot. The number cpbench records for zipfian runs and the threshold
// signal a load-aware placer would act on.
func (s *HeatSnapshot) Skew() float64 {
	total := s.TotalOps()
	if total == 0 {
		return 0
	}
	_, max := s.MaxSlot()
	return float64(max) * Slots / float64(total)
}
