// Log-linear histograms: fixed buckets, atomic counts, no allocation on
// the record path, bounded relative error on quantiles. The layout is
// the HDR-histogram family's: values 0..7 get exact buckets, then every
// power-of-two octave splits into 8 sub-buckets, so a bucket is never
// wider than 12.5% of its lower edge — p99/p999 read from a scrape are
// within that bound of the true quantile, a far tighter promise than the
// 2× log2 buckets internal/perf trades away for simplicity.
package obs

import (
	"math/bits"
	"sync/atomic"
)

const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave

	// HistBuckets spans the whole non-negative int64 range: 8 exact
	// buckets below the first octave, then 8 per octave up to 2^63-1.
	HistBuckets = histSub + (63-histSubBits)*histSub
)

// Hist is a fixed-bucket log-linear histogram safe for concurrent
// recording (atomic adds, no locks, no allocation). The zero value is
// ready to use; embed it by value.
type Hist struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [HistBuckets]atomic.Int64
}

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // ≥ histSubBits
	sub := int(uint64(v)>>(uint(exp)-histSubBits)) - histSub
	return (exp-histSubBits)*histSub + histSub + sub
}

// BucketUpper returns the largest value bucket i covers — the edge
// Quantile reports and the `le` bound the Prometheus exposition uses.
func BucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := uint((i-histSub)/histSub) + histSubBits
	sub := int64((i - histSub) % histSub)
	lower := (histSub + sub) << (exp - histSubBits)
	width := int64(1) << (exp - histSubBits)
	return lower + width - 1
}

// Record adds one observation; negative values clamp to zero.
func (h *Hist) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n observations of value v in one shot — the batch-path
// form: a worker times a whole batch segment once and records the
// per-op share for every op in it, keeping instrumentation O(1) per
// batch rather than O(ops).
func (h *Hist) RecordN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.bucket[histBucket(v)].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram into a plain-value form for
// aggregation, quantiles, and exposition.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.bucket {
		s.Buckets[i] = h.bucket[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Hist. Snapshots merge
// associatively, so per-partition histograms aggregate at scrape time
// in any grouping order.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [HistBuckets]int64
}

// Merge adds o's observations into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Sub subtracts an earlier snapshot, yielding the distribution of the
// interval between the two — how a scraper turns cumulative histograms
// into per-window percentiles.
func (s *HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := *s
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	return out
}

// Mean returns the average observation, or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// top edge of the bucket holding it, at most 12.5% above the true
// value.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count-1))
	var seen int64
	last := 0
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		seen += n
		last = i
		if seen > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(last)
}
