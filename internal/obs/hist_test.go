package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHistBucketEdges checks that every value lands in a bucket whose
// upper edge is ≥ the value and within the 12.5% relative width bound.
func TestHistBucketEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(v int64) {
		b := histBucket(v)
		if b < 0 || b >= HistBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, b)
		}
		up := BucketUpper(b)
		if up < v {
			t.Fatalf("value %d: bucket upper edge %d below the value", v, up)
		}
		if up-v > v/histSub+1 {
			t.Fatalf("value %d: bucket upper edge %d exceeds the 12.5%% width bound", v, up)
		}
		if b > 0 && BucketUpper(b-1) >= v {
			t.Fatalf("value %d: previous bucket %d already covers it (upper %d)", v, b-1, BucketUpper(b-1))
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 100000; i++ {
		check(rng.Int63())
	}
	check(int64(1)<<62 - 1)
	check(int64(1) << 62)
	check(int64(^uint64(0) >> 1)) // max int64
	// Bucket edges are strictly increasing — required for the cumulative
	// Prometheus exposition to be monotone.
	for i := 1; i < HistBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Fatalf("bucket %d upper %d not above bucket %d upper %d",
				i, BucketUpper(i), i-1, BucketUpper(i-1))
		}
	}
}

// TestHistQuantileProperty records random samples from several
// distributions and asserts every reported quantile sits between the
// exact sample quantile and the histogram's bucket-error bound above
// it.
func TestHistQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := []struct {
		name string
		gen  func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(1_000_000) }},
		{"exp-ns", func() int64 { return int64(rng.ExpFloat64() * 50_000) }},
		{"heavy-tail", func() int64 {
			v := rng.Int63n(1000)
			if rng.Intn(100) == 0 {
				v = rng.Int63n(100_000_000)
			}
			return v
		}},
		{"tiny", func() int64 { return rng.Int63n(8) }},
	}
	quantiles := []float64{0, 0.5, 0.9, 0.99, 0.999, 1}
	for _, d := range distributions {
		t.Run(d.name, func(t *testing.T) {
			var h Hist
			samples := make([]int64, 20000)
			for i := range samples {
				samples[i] = d.gen()
				h.Record(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			snap := h.Snapshot()
			if snap.Count != int64(len(samples)) {
				t.Fatalf("count %d, want %d", snap.Count, len(samples))
			}
			for _, q := range quantiles {
				exact := samples[int64(q*float64(len(samples)-1))]
				got := snap.Quantile(q)
				if got < exact {
					t.Errorf("q=%g: histogram %d below exact %d", q, got, exact)
				}
				if got > exact+exact/histSub+1 {
					t.Errorf("q=%g: histogram %d exceeds exact %d by more than the bucket width bound", q, got, exact)
				}
			}
		})
	}
}

// TestHistRecordN checks that the batch-amortized form is equivalent to
// n individual records.
func TestHistRecordN(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(1234)
	}
	b.RecordN(1234, 100)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Fatalf("RecordN(v,100) != 100×Record(v): %+v vs %+v", sb, sa)
	}
	b.RecordN(1, 0)
	b.RecordN(1, -5)
	if b.Count() != 100 {
		t.Fatalf("non-positive n must record nothing, count=%d", b.Count())
	}
}

// TestHistMergeAssociativity is the scrape-time aggregation contract:
// merging per-partition snapshots must give the same result in any
// grouping order, so collectors can aggregate incrementally.
func TestHistMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([]HistSnapshot, 5)
	for p := range parts {
		var h Hist
		for i := 0; i < 1000; i++ {
			h.Record(rng.Int63n(1 << uint(10+p)))
		}
		parts[p] = h.Snapshot()
	}
	// left fold: ((((a+b)+c)+d)+e)
	left := parts[0]
	for _, p := range parts[1:] {
		left.Merge(p)
	}
	// right fold: a+(b+(c+(d+e)))
	right := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		prev := parts[i]
		prev.Merge(right)
		right = prev
	}
	// pairwise tree: (a+b) + (c+d) + e
	ab, cd := parts[0], parts[2]
	ab.Merge(parts[1])
	cd.Merge(parts[3])
	tree := ab
	tree.Merge(cd)
	tree.Merge(parts[4])
	if left != right || left != tree {
		t.Fatal("snapshot merge is not associative across grouping orders")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if left.Quantile(q) != tree.Quantile(q) {
			t.Fatalf("q=%g differs across merge orders", q)
		}
	}
}

// TestHistSub checks interval extraction: (later − earlier) must equal
// a histogram of only the interval's samples.
func TestHistSub(t *testing.T) {
	var h Hist
	for i := 0; i < 500; i++ {
		h.Record(int64(i))
	}
	before := h.Snapshot()
	var want Hist
	for i := 0; i < 300; i++ {
		v := int64(1000 + i*17)
		h.Record(v)
		want.Record(v)
	}
	delta := h.Snapshot()
	delta = delta.Sub(before)
	if delta != want.Snapshot() {
		t.Fatal("snapshot Sub does not isolate the interval distribution")
	}
}

// TestHeatMergeAssociativity mirrors the histogram contract for the
// per-slot heat aggregation.
func TestHeatMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]HeatSnapshot, 4)
	for p := range parts {
		var h SlotHeat
		for i := 0; i < 2000; i++ {
			h.Record(rng.Intn(Slots), rng.Int63n(64))
		}
		parts[p] = h.Snapshot()
	}
	left := parts[0]
	for _, p := range parts[1:] {
		left.Merge(p)
	}
	right := parts[3]
	for i := 2; i >= 0; i-- {
		prev := parts[i]
		prev.Merge(right)
		right = prev
	}
	if left != right {
		t.Fatal("heat merge is not associative")
	}
}

// TestHeatSkew pins the skew metric's endpoints: uniform heat ≈ 1, all
// heat on one slot = Slots.
func TestHeatSkew(t *testing.T) {
	var uniform SlotHeat
	for s := 0; s < Slots; s++ {
		uniform.Record(s, 1)
	}
	us := uniform.Snapshot()
	if got := us.Skew(); got != 1 {
		t.Fatalf("uniform skew = %g, want 1", got)
	}
	var spike SlotHeat
	for i := 0; i < 100; i++ {
		spike.Record(42, 1)
	}
	ss := spike.Snapshot()
	if got := ss.Skew(); got != Slots {
		t.Fatalf("single-slot skew = %g, want %d", got, Slots)
	}
	if slot, ops := ss.MaxSlot(); slot != 42 || ops != 100 {
		t.Fatalf("MaxSlot = (%d,%d), want (42,100)", slot, ops)
	}
	var empty HeatSnapshot
	if empty.Skew() != 0 {
		t.Fatal("empty heat must report zero skew")
	}
}
