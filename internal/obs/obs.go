// Package obs is the observability core of the reproduction: an
// allocation-free metrics layer (counters, per-slot heat, log-scale
// histograms), a pluggable registry with Prometheus text exposition, and
// a structured event logger for cluster lifecycle.
//
// The design leans on the CPHash ownership discipline the paper is
// about: every partition is touched by exactly one server goroutine, so
// the hot-path counters are written uncontended — the atomic adds below
// never bounce a cache line between cores, cost a handful of
// nanoseconds, and allocate nothing. The same counters are safe to READ
// from any goroutine (scrapes, /stats snapshots), which is what fixes
// the torn plain-field reads the earlier /stats path performed.
//
// Conventions: every exposed metric is prefixed `cphash_`, counters end
// in `_total`, and units are spelled in the name (`_ns`, `_bytes`,
// `_ms`, `_records`, `_seconds`). Per-slot heat uses the 256-slot
// cluster continuum (the top eight bits of the mixed key), so a hot
// slot in /metrics names exactly the unit the rebalancer can move.
package obs

import "sync/atomic"

// Counter is an atomically updated event counter. Unlike perf.Counter it
// carries no cache-line padding of its own: metric structs group many
// counters written by one goroutine, so padding belongs at the struct
// boundary, not between fields.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// PartitionMetrics holds one partition Store's hot-path counters. All
// writes come from the partition's single owner goroutine (or, for the
// lockhash baseline, under its partition spinlock), so the adds are
// uncontended; reads may come from anywhere.
//
// The leading and trailing pads keep a partition's counter block from
// false-sharing a cache line with a neighboring heap object — the
// intra-struct layout needs no padding because only one goroutine
// writes it.
type PartitionMetrics struct {
	_ [64]byte

	Lookups   Counter // GET-class operations
	Hits      Counter // lookups that found a live entry
	Inserts   Counter // SET-class operations accepted
	InsertErr Counter // SETs rejected (oversized value)
	Deletes   Counter // DELETE operations that removed an entry
	Evictions Counter // entries evicted for capacity
	Expired   Counter // entries collected after TTL expiry
	Elements  Counter // live entry count (gauge semantics)
	BytesIn   Counter // value bytes written by inserts
	BytesOut  Counter // value bytes returned by hits

	// Heat, when non-nil, accumulates per-continuum-slot operation and
	// byte counts. Optional because a table with thousands of partitions
	// (the lockhash baseline defaults to 4096) would pay ~4 KiB per
	// partition for a signal the core CPHash tables want.
	Heat *SlotHeat

	_ [64]byte
}

// PartitionSnapshot is a consistent-enough copy of a partition's
// counters (each field individually atomic; the set is read without a
// barrier, as any scrape of live counters is).
type PartitionSnapshot struct {
	Lookups, Hits, Inserts, InsertErr int64
	Deletes, Evictions, Expired       int64
	Elements, BytesIn, BytesOut       int64
}

// Snapshot reads every counter atomically.
func (m *PartitionMetrics) Snapshot() PartitionSnapshot {
	return PartitionSnapshot{
		Lookups:   m.Lookups.Load(),
		Hits:      m.Hits.Load(),
		Inserts:   m.Inserts.Load(),
		InsertErr: m.InsertErr.Load(),
		Deletes:   m.Deletes.Load(),
		Evictions: m.Evictions.Load(),
		Expired:   m.Expired.Load(),
		Elements:  m.Elements.Load(),
		BytesIn:   m.BytesIn.Load(),
		BytesOut:  m.BytesOut.Load(),
	}
}

// Merge adds o into s — the scrape-time aggregation across a table's
// partitions.
func (s *PartitionSnapshot) Merge(o PartitionSnapshot) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Inserts += o.Inserts
	s.InsertErr += o.InsertErr
	s.Deletes += o.Deletes
	s.Evictions += o.Evictions
	s.Expired += o.Expired
	s.Elements += o.Elements
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
}

// ServerMetrics holds a kvserver's wire-level distributions, recorded by
// its worker goroutines. Histograms are internally atomic, so concurrent
// workers share one struct.
type ServerMetrics struct {
	// OpLatency is the server-side per-operation latency in nanoseconds:
	// each processed batch segment records its wall time divided evenly
	// over its operations (one clock read pair per segment keeps the
	// record O(1) per batch and allocation-free).
	OpLatency Hist
	// BatchLatency is the per-batch-segment processing latency (ns).
	BatchLatency Hist
	// BatchSize is the distribution of gathered batch sizes (requests).
	BatchSize Hist
}

// Collect emits the server histograms under the given label set.
func (m *ServerMetrics) Collect(e *Expo, labels string) {
	e.Histogram("cphash_op_latency_ns", "server-side per-operation latency (batch time amortized over its ops)", labels, m.OpLatency.Snapshot())
	e.Histogram("cphash_batch_latency_ns", "server-side batch segment processing latency", labels, m.BatchLatency.Snapshot())
	e.Histogram("cphash_batch_size", "requests gathered per worker batch", labels, m.BatchSize.Snapshot())
}
