// A small Prometheus text-exposition parser — enough for the harness to
// scrape its own servers (cploadgen -scrape, cpbench's obs experiment)
// and for CI to gate that a live /metrics endpoint emits valid
// exposition. It validates the line grammar strictly: a malformed line
// fails the whole parse.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scrape is one parsed exposition: sample key (name plus rendered label
// set, exactly as exposed) → value.
type Scrape struct {
	Samples map[string]float64
	keys    []string // insertion order
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseText parses Prometheus text exposition format (0.0.4).
func ParseText(r io.Reader) (*Scrape, error) {
	s := &Scrape{Samples: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if _, dup := s.Samples[key]; !dup {
			s.keys = append(s.keys, key)
		}
		s.Samples[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// checkComment validates # HELP / # TYPE lines (other comments pass).
func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	if len(fields) < 3 || !validMetricName(fields[2]) {
		return fmt.Errorf("malformed %s comment %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 || !validTypes[fields[3]] {
			return fmt.Errorf("invalid TYPE line %q", line)
		}
	}
	return nil
}

// parseSample splits `name[{labels}] value [timestamp]`.
func parseSample(line string) (key string, val float64, err error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd <= 0 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	labels := ""
	if rest[0] == '{' {
		end := labelSetEnd(rest)
		if end < 0 {
			return "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[:end+1]
		if err := checkLabels(labels); err != nil {
			return "", 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	val, err = parseFloat(fields[0])
	if err != nil {
		return "", 0, fmt.Errorf("invalid value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return name + labels, val, nil
}

// labelSetEnd finds the closing brace of a label set, honoring quoted
// label values (which may contain escaped quotes and braces).
func labelSetEnd(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip escaped char
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// checkLabels validates a `{name="value",...}` label set.
func checkLabels(s string) error {
	body := s[1 : len(s)-1]
	if body == "" {
		return nil
	}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || !validMetricName(body[:eq]) {
			return fmt.Errorf("invalid label name")
		}
		rest := body[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// find closing quote, honoring escapes
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		body = rest[end+1:]
		if body == "" {
			break
		}
		if body[0] != ',' {
			return fmt.Errorf("missing comma between labels")
		}
		body = body[1:]
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Get returns the value of an exact sample key (name plus rendered
// label set).
func (s *Scrape) Get(key string) (float64, bool) {
	v, ok := s.Samples[key]
	return v, ok
}

// Sum adds every sample of the named metric across its label sets.
func (s *Scrape) Sum(name string) float64 {
	var t float64
	for k, v := range s.Samples {
		if sampleName(k) == name {
			t += v
		}
	}
	return t
}

// Keys returns sample keys in exposition order.
func (s *Scrape) Keys() []string { return s.keys }

// Sub returns the per-sample delta s − prev; samples absent from prev
// count from zero. The result is what a before/after counter diff
// prints.
func (s *Scrape) Sub(prev *Scrape) *Scrape {
	out := &Scrape{Samples: make(map[string]float64, len(s.Samples))}
	for _, k := range s.keys {
		d := s.Samples[k]
		if prev != nil {
			d -= prev.Samples[k]
		}
		out.Samples[k] = d
		out.keys = append(out.keys, k)
	}
	return out
}

// Quantile reconstructs the q-quantile of a scraped histogram from its
// `<name>_bucket` series, merged across label sets (e.g. all instances).
// Sparse emission means two series rarely share bucket edges, and
// cumulative values only add at edges every series emits — so each
// series' cumulative buckets are first converted to per-bucket masses at
// its own edges, and the masses merge. ok is false when the metric has
// no observations.
func (s *Scrape) Quantile(name string, q float64) (float64, bool) {
	prefix := name + "_bucket"
	perSeries := map[string]map[float64]float64{}
	for k, v := range s.Samples {
		if sampleName(k) != prefix {
			continue
		}
		le, ok := labelValue(k, "le")
		if !ok {
			continue
		}
		lf, err := parseFloat(le)
		if err != nil {
			continue
		}
		id := stripLeLabel(k)
		m := perSeries[id]
		if m == nil {
			m = map[float64]float64{}
			perSeries[id] = m
		}
		m[lf] = v
	}
	if len(perSeries) == 0 {
		return 0, false
	}
	mass := map[float64]float64{}
	for _, m := range perSeries {
		les := make([]float64, 0, len(m))
		for le := range m {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			mass[le] += m[le] - prev
			prev = m[le]
		}
	}
	type edge struct {
		le  float64
		cum float64
	}
	edges := make([]edge, 0, len(mass))
	for le := range mass {
		edges = append(edges, edge{le: le})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	cum := 0.0
	for i := range edges {
		cum += mass[edges[i].le]
		edges[i].cum = cum
	}
	total := edges[len(edges)-1].cum
	if total <= 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * (total - 1)
	for _, e := range edges {
		if e.cum > rank {
			return e.le, true
		}
	}
	return edges[len(edges)-1].le, true
}

// sampleName strips the label set from a sample key.
func sampleName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// stripLeLabel removes the le label from a bucket sample key, yielding
// the series identity shared by all of one histogram series' buckets.
func stripLeLabel(key string) string {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key
	}
	body := key[i:]
	j := 0
	for {
		k := strings.Index(body[j:], `le="`)
		if k < 0 {
			return key
		}
		j += k
		if body[j-1] == '{' || body[j-1] == ',' {
			break
		}
		j += 4
	}
	end := j + len(`le="`)
	for end < len(body) && body[end] != '"' {
		if body[end] == '\\' {
			end++
		}
		end++
	}
	start, stop := j, end+1
	if stop < len(body) && body[stop] == ',' {
		stop++
	} else if body[start-1] == ',' {
		start--
	}
	return key[:i] + body[:start] + body[stop:]
}

// labelValue extracts one label's (unescaped) value from a sample key.
func labelValue(key, label string) (string, bool) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return "", false
	}
	body := key[i:]
	needle := label + `="`
	j := strings.Index(body, needle)
	if j < 0 {
		return "", false
	}
	rest := body[j+len(needle):]
	var b strings.Builder
	for k := 0; k < len(rest); k++ {
		c := rest[k]
		if c == '\\' && k+1 < len(rest) {
			k++
			switch rest[k] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(rest[k])
			}
			continue
		}
		if c == '"' {
			return b.String(), true
		}
		b.WriteByte(c)
	}
	return "", false
}
