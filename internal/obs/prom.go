// Prometheus text exposition (format version 0.0.4) and the pluggable
// registry subsystems publish through. Exposition is pull-based: the
// hot path only bumps counters; all formatting cost is paid by the
// scraper on GET /metrics.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is an ordered set of collector functions. Subsystems (or a
// server composing them) register a closure that emits their current
// state into an Expo; every scrape runs all collectors against a fresh
// one. Registering a closure over a dynamic set (e.g. a server's live
// instances) means membership changes need no unregistration.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Expo)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector; collectors run in registration order.
func (r *Registry) Register(fn func(*Expo)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Gather runs every collector into a fresh Expo.
func (r *Registry) Gather() *Expo {
	r.mu.Lock()
	fns := make([]func(*Expo), len(r.collectors))
	copy(fns, r.collectors)
	r.mu.Unlock()
	e := NewExpo()
	for _, fn := range fns {
		fn(e)
	}
	return e
}

// Handler serves the registry as Prometheus text exposition — the
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.Gather().WriteTo(w)
	})
}

// Expo buffers one scrape's samples, grouped by metric family so each
// family's # HELP/# TYPE header is emitted exactly once even when many
// instances contribute samples to the same name.
type Expo struct {
	families map[string]*family
	order    []string
}

type family struct {
	typ     string
	help    string
	samples []sample
}

type sample struct {
	suffix string // "", or "_bucket"/"_sum"/"_count" for histograms
	labels string // "" or `{k="v",...}`
	value  float64
}

// NewExpo returns an empty sample buffer.
func NewExpo() *Expo {
	return &Expo{families: make(map[string]*family)}
}

func (e *Expo) family(name, typ, help string) *family {
	f, ok := e.families[name]
	if !ok {
		f = &family{typ: typ, help: help}
		e.families[name] = f
		e.order = append(e.order, name)
	}
	return f
}

// Counter emits one cumulative counter sample.
func (e *Expo) Counter(name, help, labels string, v int64) {
	f := e.family(name, "counter", help)
	f.samples = append(f.samples, sample{labels: labels, value: float64(v)})
}

// Gauge emits one gauge sample.
func (e *Expo) Gauge(name, help, labels string, v float64) {
	f := e.family(name, "gauge", help)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Histogram emits a HistSnapshot as a cumulative-bucket Prometheus
// histogram. Only buckets that change the cumulative count are written
// (plus the mandatory +Inf), so the 488 internal buckets cost lines
// only where observations actually landed; quantiles recomputed from
// the exposition keep the histogram's native 12.5% error bound.
func (e *Expo) Histogram(name, help, labels string, s HistSnapshot) {
	f := e.family(name, "histogram", help)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		f.samples = append(f.samples, sample{
			suffix: "_bucket",
			labels: spliceLabel(labels, "le", strconv.FormatInt(BucketUpper(i), 10)),
			value:  float64(cum),
		})
	}
	f.samples = append(f.samples,
		sample{suffix: "_bucket", labels: spliceLabel(labels, "le", "+Inf"), value: float64(s.Count)},
		sample{suffix: "_sum", labels: labels, value: float64(s.Sum)},
		sample{suffix: "_count", labels: labels, value: float64(s.Count)},
	)
}

// WriteTo renders the buffered samples in exposition order.
func (e *Expo) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, name := range e.order {
		f := e.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		for _, s := range f.samples {
			b.WriteString(name)
			b.WriteString(s.suffix)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// formatValue renders a sample value; integral values print without an
// exponent so counter deltas diff exactly.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Labels renders name/value pairs as a Prometheus label set, e.g.
// Labels("instance", addr, "op", "get") → `{instance="...",op="get"}`.
// An empty pair list renders as the empty string.
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WithLabel returns labels with one more name/value pair appended —
// how collectors derive per-slot or per-peer label sets from a base
// instance label.
func WithLabel(labels, name, value string) string {
	return spliceLabel(labels, name, value)
}

// spliceLabel inserts one more label into a rendered label set.
func spliceLabel(labels, name, value string) string {
	extra := name + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// SortSamples orders each family's samples lexicographically by label
// set — handy for deterministic test output; exposition does not
// require it.
func (e *Expo) SortSamples() {
	for _, f := range e.families {
		sort.SliceStable(f.samples, func(i, j int) bool {
			if f.samples[i].suffix != f.samples[j].suffix {
				return f.samples[i].suffix < f.samples[j].suffix
			}
			return f.samples[i].labels < f.samples[j].labels
		})
	}
}
