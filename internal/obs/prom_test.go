package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpoRoundTrip writes every sample kind through the encoder and
// reads it back through the parser — the same pair the harness uses to
// scrape its own servers, so encode/parse must be inverses.
func TestExpoRoundTrip(t *testing.T) {
	e := NewExpo()
	e.Counter("cphash_test_ops_total", "ops", Labels("instance", "a:1", "op", "get"), 42)
	e.Counter("cphash_test_ops_total", "ops", Labels("instance", "a:1", "op", "set"), 7)
	e.Gauge("cphash_test_depth", "queue depth", "", 3.5)
	e.Gauge("cphash_test_weird", "escaping", Labels("path", `C:\tmp"x`+"\n"), 1)
	var h Hist
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 100)
	}
	e.Histogram("cphash_test_latency_ns", "latency", Labels("instance", "a:1"), h.Snapshot())

	var sb strings.Builder
	if _, err := e.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Count(text, "# TYPE cphash_test_ops_total counter") != 1 {
		t.Fatalf("TYPE header must appear exactly once per family:\n%s", text)
	}

	s, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse of own exposition failed: %v\n%s", err, text)
	}
	if v, ok := s.Get(`cphash_test_ops_total{instance="a:1",op="get"}`); !ok || v != 42 {
		t.Fatalf("get counter = %v,%v", v, ok)
	}
	if got := s.Sum("cphash_test_ops_total"); got != 49 {
		t.Fatalf("Sum = %g, want 49", got)
	}
	if v, ok := s.Get("cphash_test_depth"); !ok || v != 3.5 {
		t.Fatalf("bare gauge = %v,%v", v, ok)
	}
	if v, ok := s.Get(`cphash_test_bucket_count_does_not_exist`); ok {
		t.Fatalf("phantom sample %v", v)
	}
	// The escaped label value survives the round trip.
	found := false
	for k := range s.Samples {
		if sampleName(k) == "cphash_test_weird" {
			val, ok := labelValue(k, "path")
			if !ok || val != `C:\tmp"x`+"\n" {
				t.Fatalf("escaped label value corrupted: %q", val)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("escaped-label sample missing")
	}
	// +Inf bucket and count agree.
	if v, ok := s.Get(`cphash_test_latency_ns_bucket{instance="a:1",le="+Inf"}`); !ok || v != 1000 {
		t.Fatalf("+Inf bucket = %v,%v", v, ok)
	}
	if v, ok := s.Get(`cphash_test_latency_ns_count{instance="a:1"}`); !ok || v != 1000 {
		t.Fatalf("count = %v,%v", v, ok)
	}
}

// TestScrapeQuantile reconstructs quantiles from scraped buckets and
// checks them against the histogram's own, which carry the 12.5% bound.
func TestScrapeQuantile(t *testing.T) {
	var h Hist
	for i := int64(0); i < 10000; i++ {
		h.Record(i * 37 % 100000)
	}
	e := NewExpo()
	e.Histogram("m", "", Labels("instance", "x"), h.Snapshot())
	var sb strings.Builder
	if _, err := e.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	for _, q := range []float64{0.5, 0.99, 0.999} {
		got, ok := s.Quantile("m", q)
		if !ok {
			t.Fatalf("q=%g: no observations", q)
		}
		if want := float64(snap.Quantile(q)); got != want {
			t.Fatalf("q=%g: scraped %g, histogram %g", q, got, want)
		}
	}
	if _, ok := s.Quantile("absent", 0.5); ok {
		t.Fatal("quantile of an absent metric must report !ok")
	}
}

// TestScrapeQuantileSparseSeriesMerge pins the cross-instance merge:
// sparse emission gives each series its own edge set, so cumulative
// values must be converted to per-bucket masses before summing — adding
// cumulatives at edges only one series emits undercounts the rest.
func TestScrapeQuantileSparseSeriesMerge(t *testing.T) {
	text := `m_bucket{instance="a",le="100"} 50
m_bucket{instance="a",le="200"} 100
m_bucket{instance="a",le="+Inf"} 100
m_bucket{instance="b",le="150"} 30
m_bucket{instance="b",le="+Inf"} 40
`
	s, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// Merged masses: 100→50, 150→30, 200→50, +Inf→10; total 140.
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.5, 150}, {0.9, 200}, {0.999, math.Inf(1)},
	} {
		got, ok := s.Quantile("m", tc.q)
		if !ok || got != tc.want {
			t.Fatalf("q=%g: got %g ok=%v, want %g", tc.q, got, ok, tc.want)
		}
	}
}

// TestScrapeSub checks the before/after delta cploadgen -scrape prints.
func TestScrapeSub(t *testing.T) {
	before, err := ParseText(strings.NewReader("a_total 10\nb_total 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseText(strings.NewReader("a_total 25\nb_total 5\nc_total 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	d := after.Sub(before)
	if v := d.Samples["a_total"]; v != 15 {
		t.Fatalf("a delta = %g", v)
	}
	if v := d.Samples["b_total"]; v != 0 {
		t.Fatalf("b delta = %g", v)
	}
	if v := d.Samples["c_total"]; v != 3 {
		t.Fatalf("new sample delta = %g", v)
	}
}

// TestParseRejectsMalformed pins the validity checking the CI exposition
// gate relies on: a scrape of garbage must fail, not silently succeed.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"no value",
		"1leading_digit 3",
		`m{unterminated="x 3`,
		`m{a=unquoted} 3`,
		`m{a="x"b="y"} 3`,
		"m not_a_number",
		"m 3 not_a_timestamp",
		"# TYPE m notatype",
		"# TYPE 3bad counter",
		"{onlylabels} 3",
	}
	for _, line := range bad {
		if _, err := ParseText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("line %q parsed without error", line)
		}
	}
	ok := []string{
		"# arbitrary comment",
		"# HELP m helpful words",
		"# TYPE m counter",
		"m 3",
		"m{a=\"b\"} 4.5 1700000000",
		"m_bucket{le=\"+Inf\"} 9",
		"n NaN",
	}
	if _, err := ParseText(strings.NewReader(strings.Join(ok, "\n"))); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	if v, ok := mustParse(t, "n NaN\n").Get("n"); !ok || !math.IsNaN(v) {
		t.Error("NaN value mangled")
	}
}

func mustParse(t *testing.T, text string) *Scrape {
	t.Helper()
	s, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRegistryHandler serves a registry over HTTP and re-parses the
// body — the in-process version of the CI gate that curls a live
// cpserver's /metrics.
func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	var pm PartitionMetrics
	pm.Lookups.Add(10)
	pm.Hits.Add(9)
	reg.Register(func(e *Expo) {
		snap := pm.Snapshot()
		e.Counter("cphash_partition_lookups_total", "lookups", "", snap.Lookups)
		e.Counter("cphash_partition_hits_total", "hits", "", snap.Hits)
	})
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	s, err := ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("cphash_partition_lookups_total"); !ok || v != 10 {
		t.Fatalf("lookups = %v,%v", v, ok)
	}
}
