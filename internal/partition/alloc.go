// Package partition implements the per-partition key/value store from
// Section 3.1 of the CPHash paper: a chained hash table whose elements carry
// a reference count, an LRU list for eviction, a NOT_READY/READY insert
// protocol, and a single-threaded memory allocator for values.
//
// A partition is owned by exactly one goroutine at a time and is therefore
// completely lock-free: CPHASH gives each partition to a dedicated server
// goroutine, while LOCKHASH wraps each partition in a spinlock. Both hash
// tables share this code, exactly as the paper's implementations share their
// partition code (Section 5).
package partition

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Arena is a single-threaded segregated-fit memory allocator over one
// contiguous byte slab. It is the reproduction of the paper's "standard
// single-threaded memory allocator" used by server threads to allocate
// value storage (Section 3.2): because a partition is touched by one server
// only, no synchronization is needed, and because the slab is fixed, the
// partition's byte capacity is enforced physically — an allocation failure
// is what triggers LRU eviction.
//
// Layout: the slab is a sequence of blocks. Each block starts with an
// 8-byte boundary tag: size (uint32, total block bytes, low bit = allocated)
// followed by prevSize (uint32, total bytes of the physically preceding
// block; 0 for the first block). Free blocks keep doubly-linked free-list
// pointers (two uint32 offsets) at the start of their payload, so the
// minimum block is 16 bytes. Freeing coalesces with both physical
// neighbours, which keeps fragmentation bounded under the hash table's
// steady-state churn.
type Arena struct {
	mem []byte
	// freeHead[c] is the offset of the first free block in class c, or
	// nilOff. Class c holds blocks with total size in [1<<(c+minShift),
	// 1<<(c+minShift+1)).
	freeHead [numClasses]uint32
	used     int64 // bytes currently allocated, including headers
	allocs   int64 // lifetime successful Alloc calls
	frees    int64 // lifetime Free calls
}

const (
	hdrSize    = 8
	align      = 16
	minBlock   = 32 // hdr + free-list links, rounded to align
	minShift   = 5  // log2(minBlock)
	numClasses = 27 // supports blocks up to 2^31 bytes
	nilOff     = ^uint32(0)

	sizeMask = ^uint32(1)
	allocBit = uint32(1)
)

// NewArena returns an arena managing capacity bytes. Capacity is rounded
// down to the allocation alignment; it must be at least one minimum block.
func NewArena(capacity int) (*Arena, error) {
	capacity &^= align - 1
	if capacity < minBlock {
		return nil, fmt.Errorf("partition: arena capacity %d below minimum %d", capacity, minBlock)
	}
	if int64(capacity) > int64(^uint32(0)>>1) {
		return nil, fmt.Errorf("partition: arena capacity %d exceeds 2 GiB addressing limit", capacity)
	}
	a := &Arena{mem: make([]byte, capacity)}
	for i := range a.freeHead {
		a.freeHead[i] = nilOff
	}
	a.setSize(0, uint32(capacity), false)
	a.setPrevSize(0, 0)
	a.pushFree(0)
	return a, nil
}

// MustArena is NewArena that panics on error, for constant-size call sites.
func MustArena(capacity int) *Arena {
	a, err := NewArena(capacity)
	if err != nil {
		panic(err)
	}
	return a
}

// Capacity returns the managed slab size in bytes.
func (a *Arena) Capacity() int { return len(a.mem) }

// Used returns the bytes currently allocated (including per-block headers).
func (a *Arena) Used() int { return int(a.used) }

// FreeBytes returns the bytes currently free (an upper bound on what a
// single Alloc can obtain, because of fragmentation and headers).
func (a *Arena) FreeBytes() int { return len(a.mem) - int(a.used) }

// Stats returns lifetime allocation and free counts.
func (a *Arena) Stats() (allocs, frees int64) { return a.allocs, a.frees }

// blockFor returns the total block size needed for an n-byte payload.
func blockFor(n int) uint32 {
	need := n + hdrSize
	if need < minBlock {
		need = minBlock
	}
	return uint32((need + align - 1) &^ (align - 1))
}

// classFor returns the smallest class that may contain a block of size s.
func classFor(s uint32) int {
	c := bits.Len32(s) - 1 - minShift
	if c < 0 {
		c = 0
	}
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// Alloc reserves n payload bytes and returns the payload offset. ok is
// false when no sufficiently large contiguous free block exists; callers
// (the partition store) respond by evicting and retrying.
func (a *Arena) Alloc(n int) (off uint32, ok bool) {
	if n < 0 {
		return 0, false
	}
	want := blockFor(n)
	// Search the exact class first (first-fit within it), then strictly
	// larger classes where the first block always fits.
	for c := classFor(want); c < numClasses; c++ {
		for b := a.freeHead[c]; b != nilOff; b = a.nextFree(b) {
			if a.size(b) >= want {
				a.popFree(b)
				a.splitAndAllocate(b, want)
				a.used += int64(a.size(b))
				a.allocs++
				return b + hdrSize, true
			}
		}
	}
	return 0, false
}

// splitAndAllocate marks block b allocated, carving off the tail beyond
// want into a new free block when large enough.
func (a *Arena) splitAndAllocate(b, want uint32) {
	total := a.size(b)
	if total >= want+minBlock {
		rest := b + want
		a.setSize(b, want, true)
		a.setSize(rest, total-want, false)
		a.setPrevSize(rest, want)
		a.fixupNextPrevSize(rest)
		a.pushFree(rest)
	} else {
		a.setSize(b, total, true)
	}
}

// Free releases the payload previously returned by Alloc.
func (a *Arena) Free(payloadOff uint32) {
	b := payloadOff - hdrSize
	if !a.allocated(b) {
		panic(fmt.Sprintf("partition: double free or bad offset %d", payloadOff))
	}
	a.used -= int64(a.size(b))
	a.frees++
	a.setSize(b, a.size(b), false)

	// Coalesce with physical successor.
	if next := b + a.size(b); int(next) < len(a.mem) && !a.allocated(next) {
		a.popFree(next)
		a.setSize(b, a.size(b)+a.size(next), false)
	}
	// Coalesce with physical predecessor.
	if ps := a.prevSize(b); ps != 0 {
		prev := b - ps
		if !a.allocated(prev) {
			a.popFree(prev)
			a.setSize(prev, a.size(prev)+a.size(b), false)
			b = prev
		}
	}
	a.fixupNextPrevSize(b)
	a.pushFree(b)
}

// Bytes returns the n-byte payload slice at payload offset off. The slice
// aliases the arena; it is valid until the block is freed.
func (a *Arena) Bytes(off uint32, n int) []byte {
	return a.mem[off : int(off)+n : int(off)+n]
}

// fixupNextPrevSize refreshes the prevSize tag of the block after b.
func (a *Arena) fixupNextPrevSize(b uint32) {
	if next := b + a.size(b); int(next) < len(a.mem) {
		a.setPrevSize(next, a.size(b))
	}
}

// --- boundary tags ---

func (a *Arena) size(b uint32) uint32 {
	return binary.LittleEndian.Uint32(a.mem[b:]) & sizeMask
}

func (a *Arena) allocated(b uint32) bool {
	return binary.LittleEndian.Uint32(a.mem[b:])&allocBit != 0
}

func (a *Arena) setSize(b, size uint32, alloc bool) {
	v := size
	if alloc {
		v |= allocBit
	}
	binary.LittleEndian.PutUint32(a.mem[b:], v)
}

func (a *Arena) prevSize(b uint32) uint32 {
	return binary.LittleEndian.Uint32(a.mem[b+4:])
}

func (a *Arena) setPrevSize(b, s uint32) {
	binary.LittleEndian.PutUint32(a.mem[b+4:], s)
}

// --- free lists (links stored in the payload of free blocks) ---

func (a *Arena) nextFree(b uint32) uint32 {
	return binary.LittleEndian.Uint32(a.mem[b+hdrSize:])
}

func (a *Arena) prevFree(b uint32) uint32 {
	return binary.LittleEndian.Uint32(a.mem[b+hdrSize+4:])
}

func (a *Arena) setNextFree(b, v uint32) {
	binary.LittleEndian.PutUint32(a.mem[b+hdrSize:], v)
}

func (a *Arena) setPrevFree(b, v uint32) {
	binary.LittleEndian.PutUint32(a.mem[b+hdrSize+4:], v)
}

func (a *Arena) pushFree(b uint32) {
	c := classFor(a.size(b))
	head := a.freeHead[c]
	a.setNextFree(b, head)
	a.setPrevFree(b, nilOff)
	if head != nilOff {
		a.setPrevFree(head, b)
	}
	a.freeHead[c] = b
}

func (a *Arena) popFree(b uint32) {
	c := classFor(a.size(b))
	prev, next := a.prevFree(b), a.nextFree(b)
	if prev != nilOff {
		a.setNextFree(prev, next)
	} else {
		a.freeHead[c] = next
	}
	if next != nilOff {
		a.setPrevFree(next, prev)
	}
}

// CheckInvariants walks the whole slab verifying boundary tags, free-list
// membership and accounting; it is used by tests and returns a descriptive
// error on the first inconsistency found.
func (a *Arena) CheckInvariants() error {
	// Collect free-list membership.
	inList := map[uint32]bool{}
	for c := range a.freeHead {
		for b := a.freeHead[c]; b != nilOff; b = a.nextFree(b) {
			if inList[b] {
				return fmt.Errorf("block %d appears twice in free lists", b)
			}
			if got := classFor(a.size(b)); got != c {
				return fmt.Errorf("block %d (size %d) filed under class %d, want %d", b, a.size(b), c, got)
			}
			inList[b] = true
		}
	}
	var walkUsed int64
	var prevSz uint32
	freeSeen := 0
	for b := uint32(0); int(b) < len(a.mem); b += a.size(b) {
		sz := a.size(b)
		if sz < minBlock || sz%align != 0 {
			return fmt.Errorf("block %d has bad size %d", b, sz)
		}
		if a.prevSize(b) != prevSz {
			return fmt.Errorf("block %d prevSize = %d, want %d", b, a.prevSize(b), prevSz)
		}
		if a.allocated(b) {
			walkUsed += int64(sz)
			if inList[b] {
				return fmt.Errorf("allocated block %d is on a free list", b)
			}
		} else {
			freeSeen++
			if !inList[b] {
				return fmt.Errorf("free block %d missing from free lists", b)
			}
			if next := b + sz; int(next) < len(a.mem) && !a.allocated(next) {
				return fmt.Errorf("adjacent free blocks %d and %d not coalesced", b, next)
			}
		}
		prevSz = sz
	}
	if freeSeen != len(inList) {
		return fmt.Errorf("free lists hold %d blocks, walk found %d", len(inList), freeSeen)
	}
	if walkUsed != a.used {
		return fmt.Errorf("used accounting = %d, walk found %d", a.used, walkUsed)
	}
	return nil
}
