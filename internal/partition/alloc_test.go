package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewArenaValidation(t *testing.T) {
	if _, err := NewArena(0); err == nil {
		t.Error("NewArena(0) succeeded")
	}
	if _, err := NewArena(minBlock - 1); err == nil {
		t.Error("NewArena below one block succeeded")
	}
	a, err := NewArena(1 << 20)
	if err != nil {
		t.Fatalf("NewArena(1MB): %v", err)
	}
	if a.Capacity() != 1<<20 {
		t.Errorf("Capacity = %d, want %d", a.Capacity(), 1<<20)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := MustArena(4096)
	off, ok := a.Alloc(100)
	if !ok {
		t.Fatal("Alloc(100) failed on fresh arena")
	}
	buf := a.Bytes(off, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	if a.Used() == 0 {
		t.Fatal("Used is zero after allocation")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	a.Free(off)
	if a.Used() != 0 {
		t.Fatalf("Used = %d after final free, want 0", a.Used())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := MustArena(1024)
	var offs []uint32
	for {
		off, ok := a.Alloc(64)
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) == 0 {
		t.Fatal("no allocations succeeded")
	}
	// Arena must refuse rather than overcommit.
	if _, ok := a.Alloc(64); ok {
		t.Fatal("Alloc succeeded on exhausted arena")
	}
	for _, off := range offs {
		a.Free(off)
	}
	if a.Used() != 0 {
		t.Fatalf("Used = %d after freeing everything", a.Used())
	}
	// All blocks must have coalesced back into one; a full-size alloc
	// must now succeed.
	if _, ok := a.Alloc(a.Capacity() - hdrSize); !ok {
		t.Fatal("coalescing failed: full-arena alloc impossible after frees")
	}
}

func TestCoalescingOrders(t *testing.T) {
	// Free three adjacent blocks in every order; each order must leave one
	// coalesced block.
	for _, order := range [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		a := MustArena(1024)
		var offs [3]uint32
		for i := range offs {
			off, ok := a.Alloc(100)
			if !ok {
				t.Fatal("setup alloc failed")
			}
			offs[i] = off
		}
		for _, i := range order {
			a.Free(offs[i])
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("order %v after freeing %d: %v", order, i, err)
			}
		}
		if a.Used() != 0 {
			t.Fatalf("order %v: Used = %d", order, a.Used())
		}
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := MustArena(1024)
	off, _ := a.Alloc(32)
	a.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(off)
}

func TestAllocZeroAndNegative(t *testing.T) {
	a := MustArena(1024)
	if _, ok := a.Alloc(-1); ok {
		t.Fatal("Alloc(-1) succeeded")
	}
	off, ok := a.Alloc(0)
	if !ok {
		t.Fatal("Alloc(0) failed")
	}
	a.Free(off)
	if a.Used() != 0 {
		t.Fatal("leak after zero-size alloc/free")
	}
}

// TestAllocRandomized drives a random alloc/free workload and checks
// invariants, non-overlap, and content integrity throughout.
func TestAllocRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := MustArena(64 << 10)
	type block struct {
		off  uint32
		n    int
		fill byte
	}
	var live []block
	for step := 0; step < 5000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := rng.Intn(700)
			off, ok := a.Alloc(n)
			if ok {
				fill := byte(step)
				b := a.Bytes(off, n)
				for i := range b {
					b[i] = fill
				}
				live = append(live, block{off, n, fill})
			}
		} else {
			i := rng.Intn(len(live))
			bl := live[i]
			b := a.Bytes(bl.off, bl.n)
			for j := range b {
				if b[j] != bl.fill {
					t.Fatalf("step %d: block at %d corrupted at byte %d", step, bl.off, j)
				}
			}
			a.Free(bl.off)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%500 == 0 {
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	for _, bl := range live {
		a.Free(bl.off)
	}
	if a.Used() != 0 {
		t.Fatalf("leak: Used = %d", a.Used())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllocSizes property: any sequence of sizes in range allocates
// without overlap and frees without leaking.
func TestQuickAllocSizes(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := MustArena(1 << 20)
		var offs []uint32
		var ns []int
		for _, s := range sizes {
			n := int(s) % 2048
			if off, ok := a.Alloc(n); ok {
				offs = append(offs, off)
				ns = append(ns, n)
			}
		}
		// Overlap check via interval sort-free pairwise (small N).
		for i := range offs {
			for j := i + 1; j < len(offs); j++ {
				aStart, aEnd := int(offs[i]), int(offs[i])+ns[i]
				bStart, bEnd := int(offs[j]), int(offs[j])+ns[j]
				if aStart < bEnd && bStart < aEnd {
					return false
				}
			}
		}
		for _, off := range offs {
			a.Free(off)
		}
		return a.Used() == 0 && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockFor(t *testing.T) {
	cases := []struct {
		n    int
		want uint32
	}{
		{0, minBlock},
		{1, minBlock},
		{24, minBlock},
		{25, 48},
		{40, 48},
		{56, 64},
		{100, 112},
	}
	for _, c := range cases {
		if got := blockFor(c.n); got != c.want {
			t.Errorf("blockFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestClassFor(t *testing.T) {
	if classFor(minBlock) != 0 {
		t.Errorf("classFor(minBlock) = %d, want 0", classFor(minBlock))
	}
	if classFor(63) != 0 {
		t.Errorf("classFor(63) = %d, want 0", classFor(63))
	}
	if classFor(64) != 1 {
		t.Errorf("classFor(64) = %d, want 1", classFor(64))
	}
	if classFor(1<<31) != numClasses-1 {
		t.Errorf("classFor(2^31) = %d, want %d", classFor(1<<31), numClasses-1)
	}
}

func BenchmarkArenaAllocFree(b *testing.B) {
	a := MustArena(16 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, ok := a.Alloc(64)
		if !ok {
			b.Fatal("alloc failed")
		}
		a.Free(off)
	}
}
