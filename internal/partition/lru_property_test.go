package partition

import (
	"testing"
	"testing/quick"
)

// refLRU is a simple slice-based reference model of an LRU list.
type refLRU struct {
	keys []Key // index 0 = most recently used
}

func (r *refLRU) touch(k Key) {
	r.remove(k)
	r.keys = append([]Key{k}, r.keys...)
}

func (r *refLRU) remove(k Key) {
	for i, kk := range r.keys {
		if kk == k {
			r.keys = append(r.keys[:i], r.keys[i+1:]...)
			return
		}
	}
}

func (r *refLRU) equal(got []Key) bool {
	if len(got) != len(r.keys) {
		return false
	}
	for i := range got {
		if got[i] != r.keys[i] {
			return false
		}
	}
	return true
}

// TestQuickLRUOrderMatchesModel drives random insert/lookup/delete
// sequences (capacity large enough that eviction never fires) and checks
// the store's LRU order against the reference model after every step.
func TestQuickLRUOrderMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		s := MustStore(Config{CapacityBytes: 1 << 20, Policy: EvictLRU})
		ref := &refLRU{}
		for _, op := range ops {
			k := Key(op % 32)
			switch (op >> 5) % 3 {
			case 0: // insert (MRU position; replaces dup)
				e := s.Insert(k, 8)
				if e == nil {
					return false
				}
				s.MarkReady(e)
				s.Decref(e)
				ref.touch(k)
			case 1: // lookup hit bumps to MRU; miss changes nothing
				e := s.Lookup(k)
				if e != nil {
					s.Decref(e)
					ref.touch(k)
				}
			case 2: // delete
				if s.Delete(k) {
					ref.remove(k)
				}
			}
			if !ref.equal(s.LRUKeys()) {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionIsExactlyLRUOrder: with a capacity of exactly N elements
// (no headroom: N arena blocks precisely), inserting N+k distinct keys
// evicts precisely the k least recently used.
func TestEvictionIsExactlyLRUOrder(t *testing.T) {
	const n = 16
	exact := n * int(blockFor(8+HeaderBytes))
	s := MustStore(Config{CapacityBytes: exact, Policy: EvictLRU})
	for k := Key(0); k < n; k++ {
		e := s.Insert(k, 8)
		if e == nil {
			t.Fatalf("Insert(%d) failed below capacity", k)
		}
		s.MarkReady(e)
		s.Decref(e)
	}
	if s.Stats().Evictions != 0 {
		t.Fatalf("evictions before capacity reached: %d", s.Stats().Evictions)
	}
	// Touch the even keys so odd keys become the LRU tail.
	for k := Key(0); k < n; k += 2 {
		e := s.Lookup(k)
		s.Decref(e)
	}
	// Insert n/2 new keys: exactly the n/2 least-recently-used (the odd
	// keys) must be evicted, all even keys retained.
	for k := Key(100); k < 100+n/2; k++ {
		e := s.Insert(k, 8)
		if e == nil {
			t.Fatalf("Insert(%d) failed", k)
		}
		s.MarkReady(e)
		s.Decref(e)
	}
	if got, want := s.Stats().Evictions, int64(n/2); got != want {
		t.Fatalf("evictions = %d, want exactly %d", got, want)
	}
	for k := Key(0); k < n; k += 2 {
		if !s.Contains(k) {
			t.Errorf("recently-used key %d was evicted", k)
		}
	}
	for k := Key(1); k < n; k += 2 {
		if s.Contains(k) {
			t.Errorf("LRU key %d survived", k)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomEvictionEventuallyCyclesKeys: under random eviction with a full
// table, repeated inserts must be able to evict any resident key (no key is
// immortal).
func TestRandomEvictionEventuallyCyclesKeys(t *testing.T) {
	const n = 8
	s := MustStore(Config{CapacityBytes: CapacityForValues(n, 8), Policy: EvictRandom, Seed: 42})
	for k := Key(0); k < n; k++ {
		e := s.Insert(k, 8)
		s.MarkReady(e)
		s.Decref(e)
	}
	evicted := map[Key]bool{}
	for i := 0; i < 10000 && len(evicted) < n; i++ {
		newKey := Key(1000 + i)
		e := s.Insert(newKey, 8)
		if e == nil {
			t.Fatal("insert failed")
		}
		s.MarkReady(e)
		s.Decref(e)
		for k := Key(0); k < n; k++ {
			if !s.Contains(k) {
				evicted[k] = true
			}
		}
	}
	if len(evicted) < n {
		t.Fatalf("after 10k random evictions only %d/%d original keys ever evicted", len(evicted), n)
	}
}

// TestCapacityForValuesTight: the helper's sizing is tight — a table sized
// for n values holds n but overflows (evicts) on n + headroom inserts.
func TestCapacityForValuesTight(t *testing.T) {
	for _, n := range []int{1, 7, 64, 500} {
		s := MustStore(Config{CapacityBytes: CapacityForValues(n, 8), Policy: EvictLRU})
		for k := Key(0); k < Key(n); k++ {
			if e := s.Insert(k, 8); e == nil {
				t.Fatalf("n=%d: Insert(%d) failed within sized capacity", n, k)
			} else {
				s.MarkReady(e)
				s.Decref(e)
			}
		}
		if ev := s.Stats().Evictions; ev != 0 {
			t.Fatalf("n=%d: %d evictions within sized capacity", n, ev)
		}
		// Overfill by 25%: evictions must start.
		for k := Key(n); k < Key(n+n/4+2); k++ {
			e := s.Insert(k, 8)
			if e == nil {
				t.Fatalf("n=%d: overfill Insert failed outright", n)
			}
			s.MarkReady(e)
			s.Decref(e)
		}
		if s.Stats().Evictions == 0 {
			t.Fatalf("n=%d: no evictions after 25%% overfill", n)
		}
	}
}
