package partition

import (
	"encoding/binary"
	"strconv"
	"time"
)

// This file is the partition-level read-modify-write engine behind the
// protocol v4 op set (CAS, ADD/REPLACE, APPEND/PREPEND, INCR/DECR, TOUCH)
// and the memcached text front-end built on it. An RMW executes entirely
// on the goroutine that owns the store — CPHASH's server goroutine,
// LOCKHASH's caller under the partition spinlock — so the read, the
// derivation and the write are atomic by construction, with no additional
// locking on any path.
//
// Durability reuses the ordinary change stream: a successful RMW stores a
// brand-new element and MarkReady streams its RESULTING state (value,
// expiry, version) through the ChangeSink. The WAL therefore never logs
// "increment by 5", only "the value is now 12 with version 7", which makes
// recovery, replica apply and slot migration replay idempotent and keeps
// CAS versions stable across all three.

// RMWOp selects the read-modify-write flavor.
type RMWOp uint8

const (
	// RMWCas stores Val iff the entry exists and its version equals Ver.
	RMWCas RMWOp = iota + 1
	// RMWAdd stores Val iff the key is absent.
	RMWAdd
	// RMWReplace stores Val iff the key is present.
	RMWReplace
	// RMWAppend concatenates Val after the existing value (expiry kept).
	RMWAppend
	// RMWPrepend concatenates Val before the existing value (expiry kept).
	RMWPrepend
	// RMWIncr adds Delta to the decimal value (64-bit unsigned, wraps).
	RMWIncr
	// RMWDecr subtracts Delta from the decimal value, flooring at 0.
	RMWDecr
	// RMWTouch updates the entry's expiry deadline in place.
	RMWTouch
)

func (op RMWOp) String() string {
	switch op {
	case RMWCas:
		return "cas"
	case RMWAdd:
		return "add"
	case RMWReplace:
		return "replace"
	case RMWAppend:
		return "append"
	case RMWPrepend:
		return "prepend"
	case RMWIncr:
		return "incr"
	case RMWDecr:
		return "decr"
	case RMWTouch:
		return "touch"
	default:
		return "rmw?"
	}
}

// RMWStatus is the outcome of a read-modify-write, mirroring memcached's
// reply vocabulary so the text front-end maps it one-to-one.
type RMWStatus uint8

const (
	// RMWStored: the mutation was applied (memcached STORED/TOUCHED, or an
	// incr/decr numeric reply).
	RMWStored RMWStatus = iota + 1
	// RMWNotStored: add on a present key, or replace/append/prepend on an
	// absent one (memcached NOT_STORED).
	RMWNotStored
	// RMWExists: cas version mismatch — the entry changed since it was
	// read (memcached EXISTS).
	RMWExists
	// RMWNotFound: cas/incr/decr/touch addressed an absent key (memcached
	// NOT_FOUND).
	RMWNotFound
	// RMWBadValue: incr/decr on a non-numeric value, or a value too short
	// for the declared opaque prefix (memcached CLIENT_ERROR).
	RMWBadValue
	// RMWTooLarge: the derived value exceeds MaxVal (memcached
	// SERVER_ERROR object too large).
	RMWTooLarge
	// RMWNoSpace: the store could not allocate room even after eviction.
	RMWNoSpace
)

func (st RMWStatus) String() string {
	switch st {
	case RMWStored:
		return "stored"
	case RMWNotStored:
		return "not_stored"
	case RMWExists:
		return "exists"
	case RMWNotFound:
		return "not_found"
	case RMWBadValue:
		return "bad_value"
	case RMWTooLarge:
		return "too_large"
	case RMWNoSpace:
		return "no_space"
	default:
		return "status?"
	}
}

// RMWReq carries one read-modify-write through the stack: the kvserver
// fills the operation fields, the owning goroutine executes Store.RMW and
// writes the outcome fields before the reply message is published (the
// SPSC ring's release/acquire pair makes them visible to the client).
type RMWReq struct {
	// Op selects the flavor.
	Op RMWOp
	// StrKey, when non-nil, marks the entry as string-keyed: the stored
	// value embeds klen|key framing (see AppendStringEntry) and the RMW
	// operates on the embedded value. A framing mismatch — a 60-bit hash
	// collision — counts as "absent", the same last-writer-wins semantics
	// SET_STR has.
	StrKey []byte
	// Val is the new value for Cas/Add/Replace and the concatenated bytes
	// for Append/Prepend. Unused by Incr/Decr/Touch.
	Val []byte
	// Ver is the expected version for Cas.
	Ver uint64
	// Delta is the Incr/Decr operand.
	Delta uint64
	// TTL is the relative time-to-live in milliseconds for Cas, Add,
	// Replace and Touch (0 = never expires). Append/Prepend/Incr/Decr keep
	// the existing entry's expiry.
	TTL uint32
	// Prefix is the length of an opaque value header preserved verbatim by
	// Append/Prepend/Incr/Decr and excluded from numeric parsing (the text
	// front-end stores memcached flags there). Cas/Add/Replace values
	// arrive already framed by the caller, so Prefix does not apply.
	Prefix int
	// MaxVal bounds the size of a derived (append/prepend) value,
	// including framing; 0 = unbounded.
	MaxVal int

	// Outcome, written by the owning goroutine.
	Status RMWStatus
	// OutVer is the resulting element's version for a stored outcome, or
	// the current version on RMWExists (so a caller can retry a cas
	// without an extra gets round trip).
	OutVer uint64
	// Num is the resulting numeric value for a stored Incr/Decr.
	Num uint64
}

// RMW executes one read-modify-write against the store. It must run on
// the goroutine that owns the store, like every other mutation.
func (s *Store) RMW(k Key, r *RMWReq) {
	r.Status, r.OutVer, r.Num = 0, 0, 0
	e := s.find(k)
	if e != nil {
		if e.expire != 0 && e.expired(s.clock()) {
			s.expireElement(e)
			e = nil
		} else if !e.ready {
			// An insert still in flight from another client: its bytes are
			// unpublished, so the entry is invisible, exactly as in Lookup.
			e = nil
		}
	}
	// Unwrap string-entry framing. On a mismatch the resident entry
	// belongs to a different (colliding) key, so ours is absent.
	var old []byte
	if e != nil {
		if r.StrKey != nil {
			v, ok := CutStringEntry(e.Value(), r.StrKey)
			if !ok {
				e = nil
			} else {
				old = v
			}
		} else {
			old = e.Value()
		}
	}

	switch r.Op {
	case RMWCas:
		if e == nil {
			r.Status = RMWNotFound
			return
		}
		if e.version != r.Ver {
			r.Status = RMWExists
			r.OutVer = e.version
			return
		}
		s.rmwStore(k, r, r.Val, s.rmwDeadline(r.TTL))

	case RMWAdd:
		if e != nil {
			r.Status = RMWNotStored
			return
		}
		s.rmwStore(k, r, r.Val, s.rmwDeadline(r.TTL))

	case RMWReplace:
		if e == nil {
			r.Status = RMWNotStored
			return
		}
		s.rmwStore(k, r, r.Val, s.rmwDeadline(r.TTL))

	case RMWAppend, RMWPrepend:
		if e == nil {
			r.Status = RMWNotStored
			return
		}
		if len(old) < r.Prefix {
			r.Status = RMWBadValue
			return
		}
		// Compose into the store-owned scratch FIRST: the insert below
		// unlinks the old element before allocating, so reading the old
		// bytes after it would race the arena reuse.
		buf := s.rmwBuf[:0]
		if r.Op == RMWAppend {
			buf = append(buf, old...)
			buf = append(buf, r.Val...)
		} else {
			buf = append(buf, old[:r.Prefix]...)
			buf = append(buf, r.Val...)
			buf = append(buf, old[r.Prefix:]...)
		}
		s.rmwBuf = buf
		s.rmwStore(k, r, buf, e.expire)

	case RMWIncr, RMWDecr:
		if e == nil {
			r.Status = RMWNotFound
			return
		}
		if len(old) < r.Prefix {
			r.Status = RMWBadValue
			return
		}
		n, ok := ParseDecimal(old[r.Prefix:])
		if !ok {
			r.Status = RMWBadValue
			return
		}
		if r.Op == RMWIncr {
			n += r.Delta // 64-bit wraparound, as memcached's arithmetic does
		} else if n < r.Delta {
			n = 0 // memcached floors decrement at zero
		} else {
			n -= r.Delta
		}
		buf := append(s.rmwBuf[:0], old[:r.Prefix]...)
		buf = strconv.AppendUint(buf, n, 10)
		s.rmwBuf = buf
		s.rmwStore(k, r, buf, e.expire)
		if r.Status == RMWStored {
			r.Num = n
		}

	case RMWTouch:
		if e == nil {
			r.Status = RMWNotFound
			return
		}
		// Touch rewrites the deadline in place — no new element, and the
		// version is unchanged (memcached touch does not bump cas). The
		// new state still streams through the sink so a replayed log
		// reproduces the deadline.
		newExp := s.rmwDeadline(r.TTL)
		if e.expire != 0 && newExp == 0 {
			s.ttlElems--
		} else if e.expire == 0 && newExp != 0 {
			s.ttlElems++
		}
		e.expire = newExp
		if s.sink != nil {
			s.sink.Set(e.key, e.Value(), e.expire, e.version)
		}
		r.OutVer = e.version
		r.Status = RMWStored

	default:
		r.Status = RMWBadValue
	}
}

// rmwStore inserts the derived value (re-framing string-keyed entries) and
// publishes it. val must NOT alias the old element's arena bytes — the
// insert unlinks the old element first; callers compose derived values in
// s.rmwBuf for exactly this reason.
func (s *Store) rmwStore(k Key, r *RMWReq, val []byte, expireAt int64) {
	size := len(val)
	if r.StrKey != nil {
		size += 4 + len(r.StrKey)
	}
	if r.MaxVal > 0 && size > r.MaxVal {
		r.Status = RMWTooLarge
		return
	}
	e := s.InsertExpireVer(k, size, expireAt, 0)
	if e == nil {
		r.Status = RMWNoSpace
		return
	}
	dst := e.Value()
	if r.StrKey != nil {
		binary.LittleEndian.PutUint32(dst, uint32(len(r.StrKey)))
		copy(dst[4:], r.StrKey)
		copy(dst[4+len(r.StrKey):], val)
	} else {
		copy(dst, val)
	}
	s.MarkReady(e)
	r.OutVer = e.version
	r.Status = RMWStored
	s.Decref(e)
}

// rmwDeadline converts a millisecond TTL to an absolute deadline on the
// store's clock; 0 (and overflow) mean "never expires".
func (s *Store) rmwDeadline(ttl uint32) int64 {
	if ttl == 0 {
		return 0
	}
	now := s.clock()
	d := now + int64(ttl)*int64(time.Millisecond)
	if d < now {
		return 0
	}
	return d
}

// ParseDecimal parses an unsigned decimal byte string without allocating
// (strconv.ParseUint would force a string conversion on the hot path).
// Multiplication wraps modulo 2^64 like memcached's arithmetic; anything
// but 1–20 ASCII digits is rejected. Exported so the single-lock baseline
// server mirrors the engine's incr/decr semantics exactly.
func ParseDecimal(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// --- string-entry framing ---
//
// A string key is hashed onto the fixed 60-bit key space and the stored
// value embeds the key so a hash collision is detected at read time. The
// framing lives here (not in internal/protocol) because the RMW engine
// must unwrap and re-frame entries and partition cannot import protocol;
// protocol re-exports these under the same names.

// AppendStringEntry appends the stored-entry encoding of (key, value) —
// klen(4) | key | value — to dst and returns the extended slice.
func AppendStringEntry(dst, key, value []byte) []byte {
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	dst = append(dst, klen[:]...)
	dst = append(dst, key...)
	return append(dst, value...)
}

// CutStringEntry splits a stored entry, returning the embedded value if
// the embedded key matches key. A mismatch — a 60-bit hash collision or a
// corrupt entry — reports ok=false, which callers treat as a miss.
func CutStringEntry(raw, key []byte) (value []byte, ok bool) {
	if len(raw) < 4 {
		return nil, false
	}
	// Width-safe bounds check: a crafted 32-bit klen must not overflow
	// int arithmetic on 32-bit platforms.
	klen := uint64(binary.LittleEndian.Uint32(raw))
	if klen+4 > uint64(len(raw)) {
		return nil, false
	}
	if string(raw[4:4+klen]) != string(key) {
		return nil, false
	}
	return raw[4+klen:], true
}
