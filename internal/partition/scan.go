package partition

import "time"

// Slot migration support: bucket-cursor iteration over a partition's live
// entries. A Store is single-owner (CPHASH gives it to one server
// goroutine, LOCKHASH wraps it in a lock), so "safe snapshot iteration"
// here means: the iteration runs entirely inside one call made by the
// owner, touches no LRU or refcount state, and copies entries out, so the
// caller holds no pointers into the partition once the call returns.
// Between calls the table may mutate freely; the bucket cursor only
// guarantees that an entry present for the whole iteration is visited at
// least once, and an entry visited once is never visited again unless it
// was re-inserted — the contract online migration needs.

// ScanEntry is one live entry copied out of a partition: the key, the
// remaining time-to-live on the store's clock (0 = never expires), the
// entry's CAS version, and a fresh copy of the value bytes.
type ScanEntry struct {
	Key     Key
	TTL     time.Duration
	Version uint64
	Value   []byte
}

// Multi-partition tables (core, lockhash) expose one flat scan cursor over
// all their partitions; the shared encoding packs the partition index in
// the top 16 bits and the bucket cursor in the low 48 (partition counts
// are ≤ 4,096 and bucket counts far below 2^48 everywhere in-tree).
const (
	cursorPartShift  = 48
	cursorBucketMask = 1<<cursorPartShift - 1
)

// EncodeScanCursor packs a (partition, bucket) iteration position.
func EncodeScanCursor(part, bucket int) uint64 {
	return uint64(part)<<cursorPartShift | uint64(bucket)&cursorBucketMask
}

// DecodeScanCursor unpacks a cursor. Garbage cursors decode to positions
// past the end of the table, which iterators treat as "done" — never a
// panic.
func DecodeScanCursor(cur uint64) (part, bucket int) {
	return int(cur >> cursorPartShift), int(cur & cursorBucketMask)
}

// NumBuckets returns the store's bucket count, the upper bound of the
// AppendScan/PurgeBuckets bucket cursor.
func (s *Store) NumBuckets() int { return int(s.mask) + 1 }

// AppendScan copies live entries whose key satisfies filter (nil = all)
// into dst, walking whole bucket chains from bucket start. It stops after
// maxBuckets buckets (≤ 0 = no bound) or at maxEntries entries (≤ 0 = no
// bound): a bucket whose matches would exceed the remaining entry budget
// is left for the next call rather than overshooting — callers feed the
// batches straight into wire frames with a hard size bound — unless it is
// the first bucket of the call (iteration must always progress, so a
// single chain larger than the whole budget is returned in full; with the
// wire bound at protocol.MaxScanBatch ≥ 4096 that needs a pathological
// 4096-collision chain). It returns the extended slice, the bucket cursor
// to resume at, and whether the partition is exhausted.
//
// Only ready, unexpired entries are visited; expired ones are skipped
// without being reclaimed (the scan is strictly read-only — it moves no
// LRU links, takes no references, and frees nothing, which is what makes
// it safe to run between any two operations of the owner).
func (s *Store) AppendScan(dst []ScanEntry, start, maxBuckets, maxEntries int, filter func(Key) bool) (out []ScanEntry, next int, done bool) {
	n := s.NumBuckets()
	if start < 0 {
		start = 0
	}
	if start >= n {
		return dst, n, true
	}
	if maxBuckets <= 0 || start+maxBuckets > n {
		maxBuckets = n - start
	}
	base := len(dst)
	now := s.clock()
	live := func(e *Element) bool {
		return e.ready && !e.expired(now) && (filter == nil || filter(e.key))
	}
	b := start
	for ; b < start+maxBuckets; b++ {
		if maxEntries > 0 && len(dst) > base {
			budget := maxEntries - (len(dst) - base)
			if budget <= 0 {
				return dst, b, false
			}
			matches := 0
			for e := s.buckets[b]; e != nil && matches <= budget; e = e.hNext {
				if live(e) {
					matches++
				}
			}
			if matches > budget {
				return dst, b, false // chain would blow the budget: next call
			}
		}
		for e := s.buckets[b]; e != nil; e = e.hNext {
			if !live(e) {
				continue
			}
			var ttl time.Duration
			if e.expire != 0 {
				ttl = time.Duration(e.expire - now)
				if ttl <= 0 {
					continue // expired between the clock read and here
				}
			}
			dst = append(dst, ScanEntry{
				Key:     e.key,
				TTL:     ttl,
				Version: e.version,
				Value:   append([]byte(nil), e.Value()...),
			})
		}
	}
	return dst, b, b == n
}

// PurgeBuckets unlinks every live entry whose key satisfies filter
// (nil = all), walking whole bucket chains from bucket start and stopping
// after maxBuckets buckets (≤ 0 = no bound). It returns how many entries
// were removed, the bucket cursor to resume at, and whether the partition
// is exhausted. Removals follow the usual refcount rule (memory held by a
// referenced element is reclaimed at its final Decref) and are counted as
// deletes; entries whose TTL already elapsed are reclaimed as expired, not
// counted as purged.
func (s *Store) PurgeBuckets(start, maxBuckets int, filter func(Key) bool) (removed, next int, done bool) {
	n := s.NumBuckets()
	if start < 0 {
		start = 0
	}
	if start >= n {
		return 0, n, true
	}
	if maxBuckets <= 0 || start+maxBuckets > n {
		maxBuckets = n - start
	}
	now := s.clock()
	b := start
	for ; b < start+maxBuckets; b++ {
		e := s.buckets[b]
		for e != nil {
			nxt := e.hNext
			if filter == nil || filter(e.key) {
				if e.expired(now) {
					s.expireElement(e)
				} else {
					s.m.Deletes.Inc()
					key := e.key
					s.unlink(e)
					if s.sink != nil {
						// Purges are explicit removals (slot migration's
						// post-move cleanup): stream them so a warm restart
						// cannot resurrect entries this node no longer owns.
						s.sink.Delete(key)
					}
					removed++
				}
			}
			e = nxt
		}
	}
	return removed, b, b == n
}
