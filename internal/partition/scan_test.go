package partition

import (
	"testing"
	"time"
)

// scanStore builds a store with a fake clock and n ready entries keyed
// 0..n-1, value = byte(key) repeated key%7+1 times, every third key with a
// TTL of (key+1) seconds.
func scanStore(t *testing.T, n int) (*Store, *int64) {
	t.Helper()
	now := int64(1_000_000_000)
	s := MustStore(Config{
		CapacityBytes: CapacityForValues(n+8, 8),
		Clock:         func() int64 { return now },
	})
	// The clock variable escapes into the Config closure; its address lets
	// tests advance time.
	clk := &now
	for k := 0; k < n; k++ {
		var ttl time.Duration
		if k%3 == 0 {
			ttl = time.Duration(k+1) * time.Second
		}
		e := s.InsertTTL(Key(k), k%7+1, ttl)
		if e == nil {
			t.Fatalf("insert %d failed", k)
		}
		for i := range e.Value() {
			e.Value()[i] = byte(k)
		}
		s.MarkReady(e)
		s.Decref(e)
	}
	return s, clk
}

func TestAppendScanVisitsEveryLiveEntryOnce(t *testing.T) {
	const n = 500
	s, _ := scanStore(t, n)

	// Iterate in small batches, whole-bucket granularity.
	seen := map[Key]int{}
	cursor := 0
	for {
		entries, next, done := s.AppendScan(nil, cursor, 0, 17, nil)
		for _, e := range entries {
			seen[e.Key]++
			if len(e.Value) != int(e.Key)%7+1 {
				t.Fatalf("key %d: value len %d", e.Key, len(e.Value))
			}
			for _, b := range e.Value {
				if b != byte(e.Key) {
					t.Fatalf("key %d: corrupt value byte %d", e.Key, b)
				}
			}
			wantTTL := time.Duration(0)
			if e.Key%3 == 0 {
				wantTTL = time.Duration(e.Key+1) * time.Second
			}
			if e.TTL != wantTTL {
				t.Fatalf("key %d: TTL %v, want %v", e.Key, e.TTL, wantTTL)
			}
		}
		if done {
			break
		}
		if next == cursor && len(entries) == 0 {
			t.Fatal("scan made no progress")
		}
		cursor = next
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct keys, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d seen %d times", k, c)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendScanSkipsExpiredAndNotReady(t *testing.T) {
	s, clk := scanStore(t, 90)
	// Advance past the TTL of every key ≤ 59 that has one (ttl = key+1 s).
	*clk += int64(60 * time.Second)

	// Add a NOT_READY element: it must be invisible to the scan.
	e := s.Insert(Key(1000), 4)
	if e == nil {
		t.Fatal("insert failed")
	}

	entries, _, done := s.AppendScan(nil, 0, 0, 0, nil)
	if !done {
		t.Fatal("unbounded scan did not finish")
	}
	for _, got := range entries {
		if got.Key == 1000 {
			t.Fatal("scan returned a NOT_READY element")
		}
		if got.Key%3 == 0 && got.Key < 60 {
			t.Fatalf("scan returned expired key %d", got.Key)
		}
		if got.Key%3 == 0 && got.TTL <= 0 {
			t.Fatalf("key %d: non-positive remaining TTL %v", got.Key, got.TTL)
		}
	}
	// 90 keys, every third (30) had a TTL; 20 of those (0..57) expired.
	if len(entries) != 70 {
		t.Fatalf("scan returned %d entries, want 70", len(entries))
	}
	s.MarkReady(e)
	s.Decref(e)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendScanFilter(t *testing.T) {
	s, _ := scanStore(t, 300)
	even := func(k Key) bool { return k%2 == 0 }
	entries, _, done := s.AppendScan(nil, 0, 0, 0, even)
	if !done {
		t.Fatal("scan did not finish")
	}
	if len(entries) != 150 {
		t.Fatalf("filtered scan returned %d entries, want 150", len(entries))
	}
	for _, e := range entries {
		if e.Key%2 != 0 {
			t.Fatalf("filter leaked key %d", e.Key)
		}
	}
}

func TestAppendScanBucketBudget(t *testing.T) {
	s, _ := scanStore(t, 200)
	total := 0
	cursor := 0
	rounds := 0
	for {
		entries, next, done := s.AppendScan(nil, cursor, 3, 0, nil)
		total += len(entries)
		rounds++
		if done {
			break
		}
		if next != cursor+3 {
			t.Fatalf("bucket budget not honored: cursor %d -> %d", cursor, next)
		}
		cursor = next
	}
	if total != 200 {
		t.Fatalf("budgeted scan saw %d entries, want 200", total)
	}
	if want := (s.NumBuckets() + 2) / 3; rounds != want {
		t.Fatalf("rounds = %d, want %d", rounds, want)
	}
}

func TestPurgeBuckets(t *testing.T) {
	s, _ := scanStore(t, 400)
	odd := func(k Key) bool { return k%2 == 1 }

	removed := 0
	cursor := 0
	for {
		r, next, done := s.PurgeBuckets(cursor, 5, odd)
		removed += r
		if done {
			break
		}
		cursor = next
	}
	if removed != 200 {
		t.Fatalf("purged %d entries, want 200", removed)
	}
	if s.Len() != 200 {
		t.Fatalf("%d entries remain, want 200", s.Len())
	}
	for k := 0; k < 400; k++ {
		want := k%2 == 0
		if got := s.Contains(Key(k)); got != want {
			t.Fatalf("Contains(%d) = %v after purge", k, got)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Purging everything leaves an empty, reusable store.
	if r, _, done := s.PurgeBuckets(0, 0, nil); !done || r != 200 {
		t.Fatalf("full purge: removed %d done %v", r, done)
	}
	if s.Len() != 0 {
		t.Fatalf("store not empty after full purge: %d", s.Len())
	}
	e := s.Insert(7, 8)
	if e == nil {
		t.Fatal("insert after purge failed")
	}
	s.MarkReady(e)
	s.Decref(e)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPurgeBucketsCountsExpiredSeparately(t *testing.T) {
	s, clk := scanStore(t, 30)
	*clk += int64(100 * time.Second) // all 10 TTL'd keys expire
	removed, _, done := s.PurgeBuckets(0, 0, nil)
	if !done {
		t.Fatal("purge did not finish")
	}
	if removed != 20 {
		t.Fatalf("purge removed %d live entries, want 20", removed)
	}
	if st := s.Stats(); st.Expired != 10 {
		t.Fatalf("Expired = %d, want 10", st.Expired)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
