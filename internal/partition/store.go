package partition

import (
	"fmt"
	"math/bits"
	"time"

	"cphash/internal/obs"
)

// Key is a CPHash key. The paper's implementation limits keys to 60-bit
// integers (Section 3.1) so that the top bits of a packed message word can
// carry an opcode; we keep the same restriction and expose MaxKey.
type Key = uint64

// MaxKey is the largest valid key (60 bits, per the paper).
const MaxKey Key = 1<<60 - 1

// HeaderBytes is the per-element metadata cost charged against the
// partition's byte capacity. The paper's element header — key, size,
// reference count, bucket and LRU links — fits one cache line, so we charge
// one line per element in addition to the value's arena block.
const HeaderBytes = 64

// CapacityForValues converts the paper's capacity convention — "bytes of
// values stored", excluding metadata — into the physical byte capacity a
// Store needs to hold n values of valueSize bytes each (headers plus
// allocator block rounding included). Benchmark harnesses use it so that
// "hash table capacity = working set" keeps the paper's meaning.
func CapacityForValues(n, valueSize int) int {
	if n < 1 {
		n = 1
	}
	per := int(blockFor(valueSize + HeaderBytes))
	// 1/16 headroom absorbs free-list fragmentation at full occupancy.
	c := n*per + n*per/16
	if min := HeaderBytes + minBlock*2; c < min {
		c = min // NewStore's floor for a single-element store
	}
	return c
}

// ChangeSink receives a partition's durable mutation stream. The store
// invokes it inline, on the goroutine that owns the store (CPHASH's server
// goroutine; LOCKHASH's caller under the partition spinlock), so calls for
// one partition are strictly ordered and never concurrent. Implementations
// must treat the value slice as borrowed: it aliases partition arena memory
// and is valid only for the duration of the call.
//
// The stream is the write-ahead contract internal/persist logs:
//
//   - Set fires when a value becomes visible (MarkReady), with the
//     element's absolute expiry deadline on the store's clock (0 = never)
//     and its CAS version. Read-modify-write operations stream their
//     RESULTING state through the same Set — never the operation — so
//     replaying the stream is idempotent by construction.
//   - Delete fires for explicit removals: Delete and PurgeBuckets, plus
//     the rare insert-over-existing-key that unlinks the old element and
//     then fails to allocate (the key vanished with no Set to supersede
//     the logged old value).
//
// Evictions and TTL expiries are deliberately NOT streamed: a recovery may
// therefore resurrect entries the cache had dropped, which is harmless —
// they hold valid (never silently overwritten) data and simply re-expire
// or re-evict — and it keeps the no-TTL eviction path free of sink
// traffic. Recovery filters elapsed deadlines itself.
type ChangeSink interface {
	Set(key Key, value []byte, expireAt int64, version uint64)
	Delete(key Key)
}

// EvictionPolicy selects how a full partition makes room (Section 6.3).
type EvictionPolicy uint8

const (
	// EvictLRU evicts the least recently used element; lookups and inserts
	// maintain an LRU list (the paper's default).
	EvictLRU EvictionPolicy = iota
	// EvictRandom evicts a pseudo-randomly chosen element and maintains no
	// LRU state at all, matching the paper's random-eviction configuration.
	EvictRandom
)

func (p EvictionPolicy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case EvictRandom:
		return "random"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", uint8(p))
	}
}

// Element is a stored key/value pair. The fields mirror the paper's element
// header: key, value size, reference count, bucket chain links and LRU
// links. Elements are owned by their partition; callers only ever hold
// *Element obtained from Lookup/Insert and must release it with Decref
// (CPHASH sends a Decref message; LOCKHASH calls it under the partition
// lock).
type Element struct {
	key     Key
	off     uint32 // arena payload offset of the value
	size    int32  // value size in bytes
	refs    int32  // references held by clients
	expire  int64  // clock deadline in ns; 0 = never expires
	version uint64 // CAS version; unique per store, immutable per element
	ready   bool   // false between Insert and MarkReady
	dead    bool   // unlinked from the table; memory pending refs==0

	hNext, hPrev *Element // bucket chain
	lNext, lPrev *Element // LRU list (unused under EvictRandom)

	store *Store
}

// Key returns the element's key.
func (e *Element) Key() Key { return e.key }

// Size returns the value size in bytes.
func (e *Element) Size() int { return int(e.size) }

// Ready reports whether the value bytes have been published with MarkReady.
func (e *Element) Ready() bool { return e.ready }

// ExpireAt returns the element's expiry deadline on the store's clock in
// nanoseconds, or 0 for an element that never expires.
func (e *Element) ExpireAt() int64 { return e.expire }

// Version returns the element's CAS version. Versions are assigned by the
// store (unique, monotone per partition) when an element is created and
// never change afterwards, so a compare-and-swap that captured the version
// at read time detects any intervening write. Valid while the caller holds
// a reference.
func (e *Element) Version() uint64 { return e.version }

// Value returns the value bytes. The slice aliases partition memory: for a
// looked-up element it is valid until Decref; for a fresh insert the caller
// copies into it and then calls MarkReady. This is exactly the paper's
// contract — the server allocates, the *client* copies the data (§3.2).
func (e *Element) Value() []byte {
	if e.size == 0 {
		return nil
	}
	return e.store.arena.Bytes(e.off, int(e.size))
}

// Stats counts partition activity. All fields are cumulative. It is a
// snapshot type: the live counters are obs.PartitionMetrics atomics, so
// a Stats read from another goroutine (a /stats scrape racing the owner
// goroutine) never tears.
type Stats struct {
	Lookups   int64 // lookup requests processed
	Hits      int64 // lookups that found a ready element
	Inserts   int64 // insert requests processed
	InsertErr int64 // inserts that failed for lack of space
	Evictions int64 // elements evicted to make room
	Deletes   int64 // explicit deletes
	Expired   int64 // elements removed because their TTL elapsed
	Elements  int64 // elements currently linked
	BytesIn   int64 // value bytes accepted by inserts
	BytesOut  int64 // value bytes returned by lookup hits
}

// Add merges o into s — aggregation across a table's partitions.
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Inserts += o.Inserts
	s.InsertErr += o.InsertErr
	s.Evictions += o.Evictions
	s.Deletes += o.Deletes
	s.Expired += o.Expired
	s.Elements += o.Elements
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
}

// Config parameterizes a partition store.
type Config struct {
	// CapacityBytes bounds the memory charged to values and headers. It is
	// also the arena size, so the bound is physical, not advisory.
	CapacityBytes int
	// Buckets is the number of hash buckets; 0 derives a size targeting
	// about one element per bucket assuming 8-byte values (the paper's
	// microbenchmark configuration). Rounded up to a power of two.
	Buckets int
	// Policy selects the eviction policy.
	Policy EvictionPolicy
	// Seed seeds the random-eviction generator; ignored under EvictLRU.
	Seed uint64
	// Clock supplies the store's notion of "now" in nanoseconds for TTL
	// expiry; nil uses the wall clock. Tests inject fake clocks to make
	// expiry deterministic.
	Clock func() int64
	// Sink, when non-nil, receives the store's mutation stream (see
	// ChangeSink). It is fixed for the store's lifetime.
	Sink ChangeSink
	// Metrics receives the store's hot-path counters. nil allocates a
	// private set — metrics are always on; there is no opt-out, and the
	// allocation gate holds with them enabled. Attach a SlotHeat to the
	// struct before NewStore to also record per-slot heat.
	Metrics *obs.PartitionMetrics
}

// Store is one CPHash partition: a chained hash table plus LRU list over an
// arena. It is deliberately not safe for concurrent use — CPHASH gives each
// Store to one server goroutine, LOCKHASH wraps it in a lock.
type Store struct {
	buckets []*Element
	mask    uint64
	arena   *Arena
	policy  EvictionPolicy

	lruHead *Element // most recently used
	lruTail *Element // least recently used

	rng   uint64 // xorshift state for random eviction
	clock func() int64
	m     *obs.PartitionMetrics

	sweepCursor uint64   // next bucket SweepExpired examines
	ttlElems    int      // linked elements with a nonzero expiry deadline
	free        *Element // recycled Element headers
	sink        ChangeSink

	// verNext is the next CAS version this store will assign. It starts at
	// 1 (version 0 means "assign one for me" on the insert paths) and only
	// grows; explicit-version inserts from recovery or migration replay
	// advance it past the replayed version so a later write can never
	// reissue a version a client may still hold (the CAS ABA hazard).
	verNext uint64

	// rmwBuf is the scratch the read-modify-write engine composes derived
	// values in (append/prepend concatenations, incr/decr decimal digits).
	// It must be store-owned: InsertExpire unlinks the old element BEFORE
	// allocating the new one, so the old bytes have to be copied out first.
	rmwBuf []byte
}

// NewStore returns an empty partition with the given configuration.
func NewStore(cfg Config) (*Store, error) {
	if cfg.CapacityBytes < HeaderBytes+minBlock {
		return nil, fmt.Errorf("partition: capacity %d too small", cfg.CapacityBytes)
	}
	nb := cfg.Buckets
	if nb <= 0 {
		// Target ~1 element per bucket for 8-byte values: each element
		// costs HeaderBytes + a 32-byte arena block.
		nb = cfg.CapacityBytes / (HeaderBytes + minBlock)
		if nb < 8 {
			nb = 8
		}
	}
	nb = 1 << bits.Len(uint(nb-1)) // next power of two
	arena, err := NewArena(cfg.CapacityBytes)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	m := cfg.Metrics
	if m == nil {
		m = &obs.PartitionMetrics{}
	}
	return &Store{
		buckets: make([]*Element, nb),
		mask:    uint64(nb - 1),
		arena:   arena,
		policy:  cfg.Policy,
		rng:     seed,
		clock:   clock,
		sink:    cfg.Sink,
		m:       m,
		verNext: 1,
	}, nil
}

// MustStore is NewStore that panics on error.
func MustStore(cfg Config) *Store {
	s, err := NewStore(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Stats returns a snapshot of the partition counters, built from atomic
// loads so it is safe to call from any goroutine while the owner
// goroutine mutates the store.
func (s *Store) Stats() Stats {
	snap := s.m.Snapshot()
	return Stats{
		Lookups:   snap.Lookups,
		Hits:      snap.Hits,
		Inserts:   snap.Inserts,
		InsertErr: snap.InsertErr,
		Evictions: snap.Evictions,
		Deletes:   snap.Deletes,
		Expired:   snap.Expired,
		Elements:  snap.Elements,
		BytesIn:   snap.BytesIn,
		BytesOut:  snap.BytesOut,
	}
}

// Metrics exposes the store's live counter block for scrape-time
// collectors.
func (s *Store) Metrics() *obs.PartitionMetrics { return s.m }

// Len returns the number of linked elements.
func (s *Store) Len() int { return int(s.m.Elements.Load()) }

// CapacityBytes returns the configured byte capacity.
func (s *Store) CapacityBytes() int { return s.arena.Capacity() }

// UsedBytes returns bytes charged to live elements (headers + values),
// including dead-but-referenced elements whose memory is not yet free.
func (s *Store) UsedBytes() int { return s.arena.Used() }

// bucketIndex hashes a key to its chain. The mixer is the splitmix64
// finalizer — the "simple hash function" of §3.1.
func (s *Store) bucketIndex(k Key) uint64 {
	return Mix64(k) & s.mask
}

// Mix64 is the splitmix64 finalizer, used both for bucket selection within
// a partition and (by callers) for partition selection across servers.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SlotOfKey returns the cluster-continuum slot of a fixed key: the top
// eight bits of the mixed key. The same mixer drives bucket and
// partition selection, but those consume low bits, so slot choice is
// independent of intra-server placement. cluster.SlotOf delegates here,
// and per-slot heat accounting uses it, so placement and heat agree by
// construction.
func SlotOfKey(k Key) int {
	return int(Mix64(k&MaxKey) >> 56)
}

// The heat arrays index the same continuum; the two constants must agree
// (both expressions underflow a uint at compile time if they diverge).
const (
	_ = uint(obs.Slots - 256)
	_ = uint(256 - obs.Slots)
)

// heat books one operation against k's continuum slot when the store
// has a heat array attached; n is the value bytes moved. The nil check
// is a predictable branch, so tables that opt out (lockhash's thousands
// of partitions) pay nothing.
func (s *Store) heat(k Key, n int64) {
	if h := s.m.Heat; h != nil {
		h.Record(SlotOfKey(k), n)
	}
}

// Now returns the store's clock reading in nanoseconds; TTL deadlines are
// expressed on this clock.
func (s *Store) Now() int64 { return s.clock() }

// expired reports whether e's TTL has elapsed at clock reading now.
func (e *Element) expired(now int64) bool {
	return e.expire != 0 && now >= e.expire
}

// expireElement lazily removes an element whose deadline has passed,
// counting it as Expired (not a delete or eviction).
func (s *Store) expireElement(e *Element) {
	s.m.Expired.Inc()
	s.unlink(e)
}

// Lookup finds a ready, unexpired element, bumps its reference count,
// moves it to the LRU head, and returns it; it returns nil on miss. An
// element whose TTL has elapsed is removed lazily here — the paper-style
// single-owner store makes this safe without locks. The caller must
// eventually call Decref exactly once per successful Lookup.
func (s *Store) Lookup(k Key) *Element {
	s.m.Lookups.Inc()
	e := s.find(k)
	if e == nil || !e.ready {
		s.heat(k, 0)
		return nil
	}
	// Read the clock only for elements that can expire, keeping the
	// paper's no-TTL hot path free of wall-clock overhead.
	if e.expire != 0 && e.expired(s.clock()) {
		s.expireElement(e)
		s.heat(k, 0)
		return nil
	}
	s.m.Hits.Inc()
	s.m.BytesOut.Add(int64(e.size))
	s.heat(k, int64(e.size))
	e.refs++
	s.lruMoveFront(e)
	return e
}

// Contains reports whether k is linked, ready and unexpired without
// touching LRU state, reference counts, or (unlike Lookup) removing an
// expired element (used by tests and admin tooling).
func (s *Store) Contains(k Key) bool {
	e := s.find(k)
	return e != nil && e.ready && !(e.expire != 0 && e.expired(s.clock()))
}

func (s *Store) find(k Key) *Element {
	for e := s.buckets[s.bucketIndex(k)]; e != nil; e = e.hNext {
		if e.key == k {
			return e
		}
	}
	return nil
}

// Insert allocates space for a size-byte value under key k, unlinking any
// existing element with the same key first (to avoid duplicates, §3.2), and
// returns the new NOT_READY element with one caller reference. The caller
// copies the value into e.Value(), calls MarkReady, and finally Decref.
// Insert returns nil when space cannot be made even after evicting
// everything evictable. The element never expires.
func (s *Store) Insert(k Key, size int) *Element {
	return s.InsertExpire(k, size, 0)
}

// InsertTTL is Insert with a relative time-to-live on the store's clock;
// ttl <= 0 means "never expires", and a ttl so large the deadline
// overflows is treated as "never" too.
func (s *Store) InsertTTL(k Key, size int, ttl time.Duration) *Element {
	if ttl <= 0 {
		return s.InsertExpire(k, size, 0)
	}
	now := s.clock()
	deadline := now + int64(ttl)
	if deadline < now {
		deadline = 0 // overflow: effectively forever
	}
	return s.InsertExpire(k, size, deadline)
}

// InsertExpire is Insert with an absolute expiry deadline on the store's
// clock (nanoseconds); expireAt = 0 means "never expires". A deadline
// already in the past still inserts — the element simply expires on its
// first lookup or sweep, keeping insert semantics uniform.
func (s *Store) InsertExpire(k Key, size int, expireAt int64) *Element {
	return s.InsertExpireVer(k, size, expireAt, 0)
}

// InsertTTLVer is InsertTTL with an explicit CAS version (see
// InsertExpireVer); ver 0 assigns the store's next version as usual.
func (s *Store) InsertTTLVer(k Key, size int, ttl time.Duration, ver uint64) *Element {
	if ttl <= 0 {
		return s.InsertExpireVer(k, size, 0, ver)
	}
	now := s.clock()
	deadline := now + int64(ttl)
	if deadline < now {
		deadline = 0 // overflow: effectively forever
	}
	return s.InsertExpireVer(k, size, deadline, ver)
}

// InsertExpireVer is InsertExpire with an explicit CAS version, the replay
// primitive recovery, replica apply and slot migration use to preserve
// versions across process boundaries: an entry restored with the version
// it was stored under keeps in-flight compare-and-swaps honest. ver 0
// assigns the store's next version (the normal insert path); a nonzero ver
// also advances the store's version counter past it, so post-replay writes
// can never mint a duplicate.
func (s *Store) InsertExpireVer(k Key, size int, expireAt int64, ver uint64) *Element {
	s.m.Inserts.Inc()
	if size < 0 || k > MaxKey {
		s.m.InsertErr.Inc()
		return nil
	}
	s.heat(k, int64(size))
	hadOld := false
	if old := s.find(k); old != nil {
		s.unlink(old)
		hadOld = true
	}
	off, ok := s.allocEvicting(size)
	if !ok {
		s.m.InsertErr.Inc()
		if hadOld && s.sink != nil {
			// The old element is gone and no MarkReady will follow to
			// supersede its logged value; stream the removal so recovery
			// does not resurrect it.
			s.sink.Delete(k)
		}
		return nil
	}
	s.m.BytesIn.Add(int64(size))
	if ver == 0 {
		ver = s.verNext
		s.verNext++
	} else if ver >= s.verNext {
		s.verNext = ver + 1
	}
	e := s.newElement()
	*e = Element{key: k, off: off, size: int32(size), refs: 1, expire: expireAt, version: ver, store: s}
	s.linkBucket(e)
	s.lruPushFront(e)
	s.m.Elements.Inc()
	if expireAt != 0 {
		s.ttlElems++
	}
	return e
}

// allocEvicting allocates a value block, evicting per policy until the
// allocation succeeds or nothing evictable remains. The header charge is
// modeled by reserving HeaderBytes alongside the value; to keep the charge
// physical we allocate value+HeaderBytes in one block. Before evicting a
// live element it sweeps a bounded number of buckets for expired elements
// — dead weight goes first, so TTLs reduce eviction pressure.
func (s *Store) allocEvicting(size int) (uint32, bool) {
	swept := false
	for {
		if off, ok := s.arena.Alloc(size + HeaderBytes); ok {
			return off + HeaderBytes, ok
		}
		if !swept {
			swept = true
			if s.SweepExpired(evictSweepBuckets) > 0 {
				continue
			}
		}
		if !s.evictOne() {
			return 0, false
		}
	}
}

// evictSweepBuckets bounds the expired-element sweep a full partition
// performs before falling back to policy eviction.
const evictSweepBuckets = 64

// SweepExpired examines up to maxBuckets bucket chains (resuming where the
// previous sweep stopped) and unlinks every expired element found,
// returning how many were removed. Expiry is otherwise lazy — an expired
// element is reclaimed at its next Lookup — so the sweep exists to reclaim
// cold expired entries: eviction runs it before sacrificing live elements,
// and admin loops may call it periodically. maxBuckets <= 0 sweeps the
// whole table.
func (s *Store) SweepExpired(maxBuckets int) int {
	if s.ttlElems == 0 {
		return 0 // nothing in the table can expire; keep the paper's
		// no-TTL eviction path free of sweep overhead
	}
	n := int(s.mask) + 1
	if maxBuckets <= 0 || maxBuckets > n {
		maxBuckets = n
	}
	now := s.clock()
	removed := 0
	for i := 0; i < maxBuckets; i++ {
		idx := (s.sweepCursor + uint64(i)) & s.mask
		e := s.buckets[idx]
		for e != nil {
			next := e.hNext
			if e.expired(now) {
				s.expireElement(e)
				removed++
			}
			e = next
		}
	}
	s.sweepCursor = (s.sweepCursor + uint64(maxBuckets)) & s.mask
	return removed
}

// evictOne unlinks one element according to the eviction policy and reports
// whether it did. Elements still referenced by clients are unlinked but
// their memory is reclaimed only at the final Decref, exactly like the
// paper's dangling-pointer rule (§3.2) — so an eviction does not always free
// bytes immediately.
func (s *Store) evictOne() bool {
	var victim *Element
	switch s.policy {
	case EvictLRU:
		victim = s.lruTail
	case EvictRandom:
		victim = s.randomElement()
	}
	if victim == nil {
		return false
	}
	s.m.Evictions.Inc()
	s.unlink(victim)
	return true
}

// randomElement picks a pseudo-random linked element by probing buckets
// from a random starting point.
func (s *Store) randomElement() *Element {
	if s.m.Elements.Load() == 0 {
		return nil
	}
	// xorshift64
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	idx := x & s.mask
	for i := uint64(0); i <= s.mask; i++ {
		if e := s.buckets[(idx+i)&s.mask]; e != nil {
			return e
		}
	}
	return nil
}

// Delete unlinks the element with key k, reporting whether it existed. A
// key whose TTL has elapsed counts as absent (and is reclaimed here, as in
// Lookup). Memory follows the usual refcount rule.
func (s *Store) Delete(k Key) bool {
	e := s.find(k)
	if e == nil {
		return false
	}
	if e.expire != 0 && e.expired(s.clock()) {
		s.expireElement(e)
		return false
	}
	s.m.Deletes.Inc()
	s.heat(k, 0)
	s.unlink(e)
	if s.sink != nil {
		s.sink.Delete(k)
	}
	return true
}

// MarkReady publishes a previously inserted element's value (the paper's
// Ready message). Lookups return the element only after this. Publication
// is also the write-ahead point: the value bytes are complete, so the
// change sink (if any) streams the Set here.
func (s *Store) MarkReady(e *Element) {
	e.ready = true
	if s.sink != nil {
		s.sink.Set(e.key, e.Value(), e.expire, e.version)
	}
}

// Decref drops one caller reference. When the element is dead (evicted or
// deleted) and the last reference goes away, its memory returns to the
// arena. Decref on a live element only releases the caller's pin.
func (s *Store) Decref(e *Element) {
	if e.refs <= 0 {
		panic("partition: Decref without matching reference")
	}
	e.refs--
	if e.dead && e.refs == 0 {
		s.release(e)
	}
}

// unlink removes e from the bucket chain and LRU list. Memory is released
// immediately if no client holds a reference, otherwise when the last
// Decref arrives.
func (s *Store) unlink(e *Element) {
	if e.dead {
		return
	}
	s.unlinkBucket(e)
	s.lruRemove(e)
	s.m.Elements.Add(-1)
	if e.expire != 0 {
		s.ttlElems--
	}
	e.dead = true
	if e.refs == 0 {
		s.release(e)
	}
}

// release returns the element's memory to the arena and recycles the header.
func (s *Store) release(e *Element) {
	s.arena.Free(e.off - HeaderBytes)
	e.hNext = s.free
	e.store = nil
	s.free = e
}

// newElement takes a header from the recycle list or allocates one.
func (s *Store) newElement() *Element {
	if e := s.free; e != nil {
		s.free = e.hNext
		return e
	}
	return &Element{}
}

// --- bucket chain ---

func (s *Store) linkBucket(e *Element) {
	idx := s.bucketIndex(e.key)
	head := s.buckets[idx]
	e.hNext = head
	e.hPrev = nil
	if head != nil {
		head.hPrev = e
	}
	s.buckets[idx] = e
}

func (s *Store) unlinkBucket(e *Element) {
	if e.hPrev != nil {
		e.hPrev.hNext = e.hNext
	} else {
		s.buckets[s.bucketIndex(e.key)] = e.hNext
	}
	if e.hNext != nil {
		e.hNext.hPrev = e.hPrev
	}
	e.hNext, e.hPrev = nil, nil
}

// --- LRU list (skipped entirely under EvictRandom, as in §6.3) ---

func (s *Store) lruPushFront(e *Element) {
	if s.policy != EvictLRU {
		return
	}
	e.lPrev = nil
	e.lNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lPrev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

func (s *Store) lruRemove(e *Element) {
	if s.policy != EvictLRU {
		return
	}
	if e.lPrev != nil {
		e.lPrev.lNext = e.lNext
	} else if s.lruHead == e {
		s.lruHead = e.lNext
	}
	if e.lNext != nil {
		e.lNext.lPrev = e.lPrev
	} else if s.lruTail == e {
		s.lruTail = e.lPrev
	}
	e.lNext, e.lPrev = nil, nil
}

func (s *Store) lruMoveFront(e *Element) {
	if s.policy != EvictLRU || s.lruHead == e {
		return
	}
	s.lruRemove(e)
	s.lruPushFront(e)
}

// LRUKeys returns the linked keys from most to least recently used; under
// EvictRandom it returns nil. For tests and introspection only.
func (s *Store) LRUKeys() []Key {
	if s.policy != EvictLRU {
		return nil
	}
	var out []Key
	for e := s.lruHead; e != nil; e = e.lNext {
		out = append(out, e.key)
	}
	return out
}

// CheckInvariants validates the bucket chains, LRU list, element accounting
// and the underlying arena; tests call it after mutation storms.
func (s *Store) CheckInvariants() error {
	linked := 0
	ttl := 0
	for i, head := range s.buckets {
		var prev *Element
		for e := head; e != nil; e = e.hNext {
			if e.expire != 0 {
				ttl++
			}
			if e.hPrev != prev {
				return fmt.Errorf("bucket %d: broken hPrev at key %d", i, e.key)
			}
			if s.bucketIndex(e.key) != uint64(i) {
				return fmt.Errorf("bucket %d: key %d hashed elsewhere", i, e.key)
			}
			if e.dead {
				return fmt.Errorf("bucket %d: dead element %d still linked", i, e.key)
			}
			linked++
			prev = e
		}
	}
	if linked != int(s.m.Elements.Load()) {
		return fmt.Errorf("linked = %d, metric Elements = %d", linked, s.m.Elements.Load())
	}
	if ttl != s.ttlElems {
		return fmt.Errorf("linked TTL elements = %d, ttlElems = %d", ttl, s.ttlElems)
	}
	if s.policy == EvictLRU {
		lru := 0
		var prev *Element
		for e := s.lruHead; e != nil; e = e.lNext {
			if e.lPrev != prev {
				return fmt.Errorf("LRU: broken lPrev at key %d", e.key)
			}
			lru++
			prev = e
		}
		if prev != s.lruTail {
			return fmt.Errorf("LRU tail mismatch")
		}
		if lru != linked {
			return fmt.Errorf("LRU holds %d, buckets hold %d", lru, linked)
		}
	}
	return s.arena.CheckInvariants()
}
