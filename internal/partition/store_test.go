package partition

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestStore(t testing.TB, capacity int, policy EvictionPolicy) *Store {
	t.Helper()
	s, err := NewStore(Config{CapacityBytes: capacity, Policy: policy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// put inserts key with an 8-byte value derived from the key and publishes it.
func put(t testing.TB, s *Store, k Key) {
	t.Helper()
	e := s.Insert(k, 8)
	if e == nil {
		t.Fatalf("Insert(%d) failed", k)
	}
	binary.LittleEndian.PutUint64(e.Value(), k^0xabcdef)
	s.MarkReady(e)
	s.Decref(e)
}

func TestInsertLookup(t *testing.T) {
	s := newTestStore(t, 64<<10, EvictLRU)
	for k := Key(1); k <= 100; k++ {
		put(t, s, k)
	}
	for k := Key(1); k <= 100; k++ {
		e := s.Lookup(k)
		if e == nil {
			t.Fatalf("Lookup(%d) missed", k)
		}
		if got := binary.LittleEndian.Uint64(e.Value()); got != k^0xabcdef {
			t.Fatalf("Lookup(%d) value = %#x, want %#x", k, got, k^0xabcdef)
		}
		s.Decref(e)
	}
	if s.Lookup(999) != nil {
		t.Fatal("Lookup of absent key hit")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits != 100 || st.Lookups != 101 || st.Inserts != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNotReadyInvisible(t *testing.T) {
	s := newTestStore(t, 4<<10, EvictLRU)
	e := s.Insert(42, 8)
	if e == nil {
		t.Fatal("insert failed")
	}
	// Before MarkReady the key must not be visible to lookups (§3.2).
	if s.Lookup(42) != nil {
		t.Fatal("NOT_READY element visible to Lookup")
	}
	s.MarkReady(e)
	s.Decref(e)
	if s.Lookup(42) == nil {
		t.Fatal("element invisible after MarkReady")
	}
}

func TestDuplicateInsertReplaces(t *testing.T) {
	s := newTestStore(t, 16<<10, EvictLRU)
	put(t, s, 7)
	e := s.Insert(7, 16)
	if e == nil {
		t.Fatal("re-insert failed")
	}
	copy(e.Value(), bytes.Repeat([]byte{0xee}, 16))
	s.MarkReady(e)
	s.Decref(e)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", s.Len())
	}
	got := s.Lookup(7)
	if got == nil || got.Size() != 16 {
		t.Fatalf("lookup after replace: %+v", got)
	}
	s.Decref(got)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Small capacity: inserting beyond it must evict in LRU order.
	s := newTestStore(t, 2048, EvictLRU)
	var inserted []Key
	for k := Key(1); ; k++ {
		put(t, s, k)
		inserted = append(inserted, k)
		if s.Stats().Evictions > 0 {
			break
		}
		if k > 1000 {
			t.Fatal("no eviction after 1000 inserts into 2 KB partition")
		}
	}
	// Key 1 was least recently used and must be gone; the newest remains.
	if s.Contains(1) {
		t.Fatal("LRU victim (key 1) still present")
	}
	if !s.Contains(inserted[len(inserted)-1]) {
		t.Fatal("newest key missing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupProtectsFromEviction(t *testing.T) {
	s := newTestStore(t, 2048, EvictLRU)
	put(t, s, 1)
	held := s.Lookup(1)
	if held == nil {
		t.Fatal("setup lookup failed")
	}
	val := binary.LittleEndian.Uint64(held.Value())
	// Fill until key 1 is evicted.
	for k := Key(2); s.Contains(1); k++ {
		put(t, s, k)
	}
	// Element is unlinked but our reference keeps the memory alive and
	// uncorrupted — the paper's dangling-pointer rule.
	if got := binary.LittleEndian.Uint64(held.Value()); got != val {
		t.Fatalf("held value corrupted after eviction: %#x != %#x", got, val)
	}
	used := s.UsedBytes()
	s.Decref(held)
	if s.UsedBytes() >= used {
		t.Fatal("memory not reclaimed at final Decref of dead element")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUTouchOnLookup(t *testing.T) {
	s := newTestStore(t, 64<<10, EvictLRU)
	for k := Key(1); k <= 3; k++ {
		put(t, s, k)
	}
	// Order is now [3 2 1]; touching 1 makes it [1 3 2].
	e := s.Lookup(1)
	s.Decref(e)
	got := s.LRUKeys()
	want := []Key{1, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("LRUKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LRUKeys = %v, want %v", got, want)
		}
	}
}

func TestRandomEvictionMaintainsNoLRU(t *testing.T) {
	s := newTestStore(t, 2048, EvictRandom)
	for k := Key(1); k <= 200; k++ {
		put(t, s, k)
	}
	if s.LRUKeys() != nil {
		t.Fatal("random-eviction store keeps LRU state")
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no evictions under random policy")
	}
	if s.Len() == 0 {
		t.Fatal("store emptied itself")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	s := newTestStore(t, 16<<10, EvictLRU)
	put(t, s, 5)
	if !s.Delete(5) {
		t.Fatal("Delete(5) reported missing")
	}
	if s.Delete(5) {
		t.Fatal("second Delete(5) reported present")
	}
	if s.Contains(5) {
		t.Fatal("key present after delete")
	}
	if s.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d after delete, want 0", s.UsedBytes())
	}
}

func TestInsertRejectsBadArgs(t *testing.T) {
	s := newTestStore(t, 4<<10, EvictLRU)
	if e := s.Insert(MaxKey+1, 8); e != nil {
		t.Fatal("Insert accepted key above 60 bits")
	}
	if e := s.Insert(1, -1); e != nil {
		t.Fatal("Insert accepted negative size")
	}
	if s.Stats().InsertErr != 2 {
		t.Fatalf("InsertErr = %d, want 2", s.Stats().InsertErr)
	}
}

func TestInsertTooLargeFails(t *testing.T) {
	s := newTestStore(t, 4<<10, EvictLRU)
	put(t, s, 1)
	if e := s.Insert(2, 1<<20); e != nil {
		t.Fatal("Insert of value larger than partition succeeded")
	}
	// The failed insert may have evicted everything (paper does not define
	// partial-failure semantics) but the store must stay consistent.
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDecrefPanicsWithoutRef(t *testing.T) {
	s := newTestStore(t, 4<<10, EvictLRU)
	e := s.Insert(1, 8)
	s.MarkReady(e)
	s.Decref(e)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Decref did not panic")
		}
	}()
	s.Decref(e)
}

func TestZeroSizeValue(t *testing.T) {
	s := newTestStore(t, 4<<10, EvictLRU)
	e := s.Insert(9, 0)
	if e == nil {
		t.Fatal("zero-size insert failed")
	}
	if e.Value() != nil {
		t.Fatal("zero-size value should be nil slice")
	}
	s.MarkReady(e)
	s.Decref(e)
	got := s.Lookup(9)
	if got == nil || got.Size() != 0 {
		t.Fatal("zero-size lookup failed")
	}
	s.Decref(got)
}

// TestQuickVsMapModel drives random Insert/Lookup/Delete against a Go map
// model. Capacity is large enough that no eviction occurs, so the store
// must agree with the map exactly.
func TestQuickVsMapModel(t *testing.T) {
	f := func(ops []uint32) bool {
		s := MustStore(Config{CapacityBytes: 1 << 20, Policy: EvictLRU})
		model := map[Key][]byte{}
		for _, op := range ops {
			k := Key(op % 64)
			switch (op >> 8) % 3 {
			case 0: // insert
				n := int(op>>16) % 128
				e := s.Insert(k, n)
				if e == nil {
					return false
				}
				v := make([]byte, n)
				for i := range v {
					v[i] = byte(op + uint32(i))
				}
				copy(e.Value(), v)
				s.MarkReady(e)
				s.Decref(e)
				model[k] = v
			case 1: // lookup
				e := s.Lookup(k)
				want, ok := model[k]
				if (e != nil) != ok {
					return false
				}
				if e != nil {
					if !bytes.Equal(e.Value(), want) {
						return false
					}
					s.Decref(e)
				}
			case 2: // delete
				_, ok := model[k]
				if s.Delete(k) != ok {
					return false
				}
				delete(model, k)
			}
		}
		return s.Len() == len(model) && s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnWithEviction runs a long mixed workload with eviction pressure
// and outstanding references, then checks structural invariants.
func TestChurnWithEviction(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRU, EvictRandom} {
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s := newTestStore(t, 8<<10, policy)
			var held []*Element
			for step := 0; step < 20000; step++ {
				k := Key(rng.Intn(512))
				switch rng.Intn(4) {
				case 0, 1:
					size := rng.Intn(64)
					if e := s.Insert(k, size); e != nil {
						for i := range e.Value() {
							e.Value()[i] = byte(k)
						}
						s.MarkReady(e)
						s.Decref(e)
					}
				case 2:
					if e := s.Lookup(k); e != nil {
						if len(held) < 16 && rng.Intn(2) == 0 {
							held = append(held, e)
						} else {
							s.Decref(e)
						}
					}
				case 3:
					if len(held) > 0 {
						i := rng.Intn(len(held))
						// Held values must never be corrupted, linked or not.
						for _, b := range held[i].Value() {
							if b != byte(held[i].Key()) {
								t.Fatalf("held value for key %d corrupted", held[i].Key())
							}
						}
						s.Decref(held[i])
						held[i] = held[len(held)-1]
						held = held[:len(held)-1]
					}
				}
			}
			for _, e := range held {
				s.Decref(e)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMix64(t *testing.T) {
	// splitmix64 known answers (state 0 and 1 advanced once).
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
	if Mix64(0) != 0 {
		// splitmix64 finalizer maps 0 to 0; bucketIndex handles it fine but
		// document the fact here so nobody "fixes" it silently.
		t.Fatal("Mix64(0) changed; update documented fixed point")
	}
}

func BenchmarkStoreLookupHit(b *testing.B) {
	s := MustStore(Config{CapacityBytes: 1 << 20, Policy: EvictLRU})
	const n = 4096
	for k := Key(0); k < n; k++ {
		e := s.Insert(k, 8)
		s.MarkReady(e)
		s.Decref(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Lookup(Key(i) % n)
		if e != nil {
			s.Decref(e)
		}
	}
}

func BenchmarkStoreInsertEvict(b *testing.B) {
	s := MustStore(Config{CapacityBytes: 256 << 10, Policy: EvictLRU})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Insert(Key(i)&MaxKey, 8)
		if e != nil {
			s.MarkReady(e)
			s.Decref(e)
		}
	}
}

// TestDeleteWhileReferenced: deleting a pinned element unlinks it but its
// memory survives until the last Decref — the same rule as eviction.
func TestDeleteWhileReferenced(t *testing.T) {
	s := newTestStore(t, 16<<10, EvictLRU)
	put(t, s, 21)
	e := s.Lookup(21)
	if e == nil {
		t.Fatal("lookup failed")
	}
	val := binary.LittleEndian.Uint64(e.Value())
	if !s.Delete(21) {
		t.Fatal("delete reported absent")
	}
	if s.Contains(21) {
		t.Fatal("key visible after delete")
	}
	if s.UsedBytes() == 0 {
		t.Fatal("memory freed while a reference is held")
	}
	if got := binary.LittleEndian.Uint64(e.Value()); got != val {
		t.Fatal("pinned value corrupted by delete")
	}
	s.Decref(e)
	if s.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d after final Decref", s.UsedBytes())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReinsertWhileOldReferenced: replacing a pinned key gives the new
// element fresh memory; the pinned old value stays intact.
func TestReinsertWhileOldReferenced(t *testing.T) {
	s := newTestStore(t, 16<<10, EvictLRU)
	put(t, s, 33)
	old := s.Lookup(33)
	oldVal := binary.LittleEndian.Uint64(old.Value())
	e := s.Insert(33, 8)
	if e == nil {
		t.Fatal("re-insert failed")
	}
	binary.LittleEndian.PutUint64(e.Value(), 0xFFFF)
	s.MarkReady(e)
	s.Decref(e)
	if got := binary.LittleEndian.Uint64(old.Value()); got != oldVal {
		t.Fatal("old pinned value corrupted by re-insert")
	}
	fresh := s.Lookup(33)
	if fresh == nil || binary.LittleEndian.Uint64(fresh.Value()) != 0xFFFF {
		t.Fatal("new value not visible")
	}
	s.Decref(fresh)
	s.Decref(old)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
