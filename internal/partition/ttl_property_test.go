package partition

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic expiry tests.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64      { return c.now }
func (c *fakeClock) Advance(d int64) { c.now += d }

// modelEntry mirrors one live element in the reference model.
type modelEntry struct {
	value  byte  // FillValue seed; entries here are 8 bytes of this
	expire int64 // 0 = never
}

// TestTTLExpiryBasics: inserted TTL entries are visible before their
// deadline, invisible at and after it, and counted in Stats.Expired.
func TestTTLExpiryBasics(t *testing.T) {
	clk := &fakeClock{now: 1000}
	s := MustStore(Config{CapacityBytes: CapacityForValues(64, 8), Clock: clk.Now})

	put := func(k Key, ttl time.Duration) {
		e := s.InsertTTL(k, 8, ttl)
		if e == nil {
			t.Fatalf("InsertTTL(%d) failed", k)
		}
		copy(e.Value(), []byte("12345678"))
		s.MarkReady(e)
		s.Decref(e)
	}
	put(1, 0)                    // never expires
	put(2, 500*time.Nanosecond)  // expires at 1500
	put(3, 2000*time.Nanosecond) // expires at 3000

	if !s.Contains(1) || !s.Contains(2) || !s.Contains(3) {
		t.Fatal("entries should be visible before their deadlines")
	}
	clk.Advance(500) // now = 1500: key 2 is exactly at its deadline
	if s.Contains(2) {
		t.Error("key 2 visible at its deadline")
	}
	if e := s.Lookup(2); e != nil {
		t.Error("Lookup(2) hit after expiry")
	}
	if got := s.Stats().Expired; got != 1 {
		t.Errorf("Expired = %d, want 1 (lazy reclaim on lookup)", got)
	}
	if !s.Contains(1) || !s.Contains(3) {
		t.Error("unexpired entries vanished")
	}
	// A TTL so large the deadline overflows means "never expires", not
	// "already expired".
	put(4, time.Duration(math.MaxInt64))
	if !s.Contains(4) {
		t.Error("key 4 with overflowing TTL deadline expired instantly")
	}
	// Delete of an expired key reports absent and counts as expiry.
	clk.Advance(10_000)
	if s.Delete(3) {
		t.Error("Delete(3) returned true for an expired key")
	}
	st := s.Stats()
	if st.Expired != 2 || st.Deletes != 0 {
		t.Errorf("Expired=%d Deletes=%d, want 2 and 0", st.Expired, st.Deletes)
	}
	if !s.Contains(1) {
		t.Error("no-TTL entry expired")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepExpiredReclaims: a full sweep removes every expired element
// without lookups touching them, and eviction prefers expired elements
// (sweep-before-evict) when a full partition needs room.
func TestSweepExpiredReclaims(t *testing.T) {
	clk := &fakeClock{now: 1}
	s := MustStore(Config{CapacityBytes: CapacityForValues(128, 8), Clock: clk.Now})
	for k := Key(0); k < 100; k++ {
		ttl := time.Duration(0)
		if k%2 == 0 {
			ttl = 100 * time.Nanosecond
		}
		e := s.InsertTTL(k, 8, ttl)
		if e == nil {
			t.Fatalf("insert %d failed", k)
		}
		s.MarkReady(e)
		s.Decref(e)
	}
	clk.Advance(1_000)
	if n := s.SweepExpired(0); n != 50 {
		t.Fatalf("SweepExpired removed %d, want 50", n)
	}
	if got := s.Stats().Expired; got != 50 {
		t.Errorf("Expired = %d, want 50", got)
	}
	if s.Len() != 50 {
		t.Errorf("Len = %d, want 50", s.Len())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionSweepsExpiredFirst: when a full partition must make room,
// expired elements are reclaimed before any live element is evicted.
func TestEvictionSweepsExpiredFirst(t *testing.T) {
	clk := &fakeClock{now: 1}
	s := MustStore(Config{CapacityBytes: CapacityForValues(32, 8), Clock: clk.Now})
	fill := func(k Key, ttl time.Duration) bool {
		e := s.InsertTTL(k, 8, ttl)
		if e == nil {
			return false
		}
		s.MarkReady(e)
		s.Decref(e)
		return true
	}
	// Fill the store with short-TTL entries until the first eviction
	// fires — the store is then at physical capacity.
	var n Key
	for ; s.Stats().Evictions == 0; n++ {
		if !fill(n, 10*time.Nanosecond) {
			t.Fatalf("insert %d failed", n)
		}
	}
	evictionsAtFull := s.Stats().Evictions
	clk.Advance(1_000) // everything still stored is now expired
	// Half a round of no-TTL inserts must be satisfied by sweeping the
	// expired elements, never by evicting: the Evictions counter must not
	// move while Expired does. (Half, so refilling cannot legitimately
	// reach capacity again.)
	for k := Key(10_000); k < 10_000+n/2; k++ {
		if !fill(k, 0) {
			t.Fatalf("insert %d failed with expired space available", k)
		}
	}
	st := s.Stats()
	if st.Expired == 0 {
		t.Error("no expirations; eviction did not sweep expired elements")
	}
	if st.Evictions != evictionsAtFull {
		t.Errorf("Evictions rose %d → %d with expired elements available", evictionsAtFull, st.Evictions)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTTLDeleteEvictVsModel drives a Store through a long random
// interleaving of inserts (with and without TTL), lookups, deletes, clock
// advances, and sweeps, comparing every observable against a map+clock
// reference model. The store is sized so eviction fires regularly, which
// makes the model one-sided for presence (evicted keys disappear early)
// but exact for absence: an expired or deleted key must never be served.
func TestPropertyTTLDeleteEvictVsModel(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRU, EvictRandom} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			clk := &fakeClock{now: 1}
			// Tight capacity: ~48 elements for a 128-key space → constant
			// eviction pressure interleaved with TTL expiry and deletes.
			s := MustStore(Config{
				CapacityBytes: CapacityForValues(48, 8),
				Policy:        policy,
				Seed:          11,
				Clock:         clk.Now,
			})
			model := map[Key]modelEntry{}
			const keySpace = 128
			expired := func(m modelEntry) bool { return m.expire != 0 && clk.now >= m.expire }

			steps := 40_000
			if testing.Short() {
				steps = 8_000
			}
			for i := 0; i < steps; i++ {
				k := Key(rng.Intn(keySpace))
				switch op := rng.Intn(10); {
				case op < 4: // insert, half with TTL
					var ttl time.Duration
					if rng.Intn(2) == 0 {
						ttl = time.Duration(1 + rng.Intn(2000)) // 1–2000ns on the fake clock
					}
					e := s.InsertTTL(k, 8, ttl)
					if e == nil {
						t.Fatalf("step %d: InsertTTL(%d) failed; store can always evict", i, k)
					}
					fill := byte(i)
					for j := range e.Value() {
						e.Value()[j] = fill
					}
					s.MarkReady(e)
					s.Decref(e)
					m := modelEntry{value: fill}
					if ttl > 0 {
						m.expire = clk.now + int64(ttl)
					}
					model[k] = m
				case op < 7: // lookup
					e := s.Lookup(k)
					m, inModel := model[k]
					if e != nil {
						if !inModel || expired(m) {
							t.Fatalf("step %d: Lookup(%d) hit a key the model says is absent/expired", i, k)
						}
						if e.Value()[0] != m.value {
							t.Fatalf("step %d: Lookup(%d) = fill %d, model says %d", i, k, e.Value()[0], m.value)
						}
						s.Decref(e)
					} else if inModel && expired(m) {
						delete(model, k) // store lazily reclaimed it; model follows
					}
					// A miss on an unexpired model key is legal: eviction.
					if e == nil {
						delete(model, k)
					}
				case op < 8: // delete
					got := s.Delete(k)
					m, inModel := model[k]
					if got && (!inModel || expired(m)) {
						t.Fatalf("step %d: Delete(%d) found a key the model says is absent/expired", i, k)
					}
					delete(model, k)
				case op < 9: // clock advance
					clk.Advance(int64(rng.Intn(500)))
				default: // sweep a few buckets
					s.SweepExpired(8)
				}
				if i%1024 == 0 {
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
					// The store must never hold a key the model dropped as
					// deleted (evictions only shrink the store further).
					if s.Len() > len(model) {
						t.Fatalf("step %d: store holds %d elements, model allows at most %d", i, s.Len(), len(model))
					}
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Expired == 0 || st.Deletes == 0 || st.Evictions == 0 {
				t.Errorf("interleaving did not exercise all paths: %+v", st)
			}
		})
	}
}
