// Package perf is the measurement library for the reproduction — the
// stand-in for the paper's 500-line rdtsc/rdpmc profiling library plus
// kernel module (Section 5). Portable Go cannot read hardware performance
// counters, so this package provides:
//
//   - Counter: padded, contention-free event counters (software events);
//   - Stopwatch: wall-clock interval timing with cycle conversion at a
//     nominal clock, so reports can be phrased in the paper's units;
//   - Histogram: log-bucketed latency distributions with percentiles;
//   - Throughput: queries/second summaries for benchmark tables.
//
// Hardware cache-miss counts — the paper's Figures 6 and 7 — come from
// internal/cachesim instead, which derives them deterministically from the
// access pattern rather than sampling a PMU.
package perf

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a cache-line-padded atomic event counter. Use one per thread
// or accept cross-thread contention on Add.
type Counter struct {
	_ [64]byte
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Stopwatch measures wall-clock intervals and converts them to "cycles" at
// a nominal clock so results can be compared with the paper's
// cycles-per-operation tables. The conversion is honest about being an
// estimate: Go cannot execute rdtsc portably.
type Stopwatch struct {
	start   time.Time
	elapsed time.Duration
	clockHz int64
}

// NewStopwatch returns a stopped stopwatch assuming the given clock
// (0 means the paper machine's 2.4 GHz).
func NewStopwatch(clockHz int64) *Stopwatch {
	if clockHz <= 0 {
		clockHz = 2_400_000_000
	}
	return &Stopwatch{clockHz: clockHz}
}

// Start begins (or resumes) timing.
func (s *Stopwatch) Start() { s.start = time.Now() }

// Stop ends the current interval, accumulating it.
func (s *Stopwatch) Stop() {
	if !s.start.IsZero() {
		s.elapsed += time.Since(s.start)
		s.start = time.Time{}
	}
}

// Elapsed returns the accumulated duration.
func (s *Stopwatch) Elapsed() time.Duration { return s.elapsed }

// Cycles returns the accumulated time expressed in cycles at the nominal
// clock.
func (s *Stopwatch) Cycles() int64 {
	return int64(float64(s.elapsed.Nanoseconds()) * float64(s.clockHz) / 1e9)
}

// CyclesPerOp returns Cycles()/n, guarding against n == 0.
func (s *Stopwatch) CyclesPerOp(n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(s.Cycles()) / float64(n)
}

// Reset zeroes the stopwatch.
func (s *Stopwatch) Reset() { s.start, s.elapsed = time.Time{}, 0 }

// Histogram is a log2-bucketed value distribution (e.g. latencies in
// nanoseconds). It is not safe for concurrent use; give each thread its own
// and Merge them.
type Histogram struct {
	buckets [64]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: int64(^uint64(0) >> 1)}
}

// Record adds one observation (negative values clamp to zero).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the top
// of the log2 bucket containing it. Log buckets make this a ≤2× estimate,
// which is what latency reporting needs.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen > rank {
			if b == 0 {
				return 0
			}
			return 1<<b - 1
		}
	}
	return h.max
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50≤%d p99≤%d max=%d",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Throughput summarizes a benchmark run in the paper's reporting units.
type Throughput struct {
	Ops     int64
	Elapsed time.Duration
}

// PerSecond returns operations per second.
func (t Throughput) PerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Ops) / t.Elapsed.Seconds()
}

// PerSecondPerThread divides the rate across n threads, the unit of the
// paper's Figure 11.
func (t Throughput) PerSecondPerThread(n int) float64 {
	if n <= 0 {
		return 0
	}
	return t.PerSecond() / float64(n)
}

// String formats the rate the way the paper's plots label their axes.
func (t Throughput) String() string {
	return fmt.Sprintf("%.3g queries/sec (%d ops in %v)", t.PerSecond(), t.Ops, t.Elapsed.Round(time.Millisecond))
}

// FormatBytes renders a byte count in the paper's axis style (100KB, 1MB…).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
