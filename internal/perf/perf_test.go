package perf

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 80000 {
		t.Fatalf("counter = %d, want 80000", got)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestStopwatch(t *testing.T) {
	s := NewStopwatch(1_000_000_000) // 1 GHz: 1 cycle == 1 ns
	s.Start()
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	if s.Elapsed() < 10*time.Millisecond {
		t.Fatalf("elapsed %v < slept 10ms", s.Elapsed())
	}
	if got, ns := s.Cycles(), s.Elapsed().Nanoseconds(); got != ns {
		t.Fatalf("at 1 GHz cycles (%d) must equal ns (%d)", got, ns)
	}
	if s.CyclesPerOp(0) != 0 {
		t.Fatal("CyclesPerOp(0) must be 0")
	}
	per := s.CyclesPerOp(100)
	if per <= 0 {
		t.Fatal("CyclesPerOp must be positive")
	}
	s.Reset()
	if s.Elapsed() != 0 || s.Cycles() != 0 {
		t.Fatal("reset failed")
	}
}

func TestStopwatchAccumulates(t *testing.T) {
	s := NewStopwatch(0)
	s.Start()
	time.Sleep(time.Millisecond)
	s.Stop()
	first := s.Elapsed()
	s.Start()
	time.Sleep(time.Millisecond)
	s.Stop()
	if s.Elapsed() <= first {
		t.Fatal("second interval not accumulated")
	}
	// Stop without start is a no-op.
	s.Stop()
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	// p50 of 1..1000 is ~500; the log2 bucket upper bound is 511.
	if got := h.Quantile(0.5); got != 511 {
		t.Fatalf("p50 bound = %d, want 511", got)
	}
	if got := h.Quantile(1); got < 1000 {
		t.Fatalf("p100 bound = %d, want ≥ 1000", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(0); v < 100; v++ {
		a.Record(v)
		b.Record(v + 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1099 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

// TestQuickQuantileMonotone: quantile bounds are monotone in q and bound
// the true value from above.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(1) >= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative clamp broken: %v", h)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Ops: 1000, Elapsed: time.Second}
	if tp.PerSecond() != 1000 {
		t.Fatalf("PerSecond = %v", tp.PerSecond())
	}
	if tp.PerSecondPerThread(4) != 250 {
		t.Fatalf("PerSecondPerThread = %v", tp.PerSecondPerThread(4))
	}
	if tp.PerSecondPerThread(0) != 0 {
		t.Fatal("zero threads must give 0")
	}
	if (Throughput{Ops: 5}).PerSecond() != 0 {
		t.Fatal("zero elapsed must give 0")
	}
	if tp.String() == "" {
		t.Fatal("String empty")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		512:       "512B",
		100 << 10: "100KB",
		1 << 20:   "1MB",
		128 << 20: "128MB",
		4 << 30:   "4GB",
		1500:      "1500B",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
