package persist

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cphash/internal/lockhash"
	"cphash/internal/partition"
)

// TestBarrierUnderFrequentRolls is the regression test for a lost
// wakeup between Barrier and the persister sweep. A Barrier arms its
// stream's sync request for records it saw published; if those records
// went into the ring after the in-flight sweep had already passed their
// appender, the request is consumed at the end of that sweep — and when
// the sweep ends on a freshly rolled (empty) segment, syncNow used to
// return early without broadcasting. The Barrier re-arms on every
// wakeup, so that silent consumption left it parked in cond.Wait
// forever. Tiny segments make post-roll empty-segment syncs frequent
// enough that barrier-heavy traffic deadlocked within a few dozen
// iterations before the fix (syncNow now publishes watermarks and
// broadcasts even when there is nothing new to fsync).
func TestBarrierUnderFrequentRolls(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}
	val := make([]byte, 64)
	for iter := 0; iter < iters; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		clk := &fakeClock{now: 1000000}
		p, err := Open(Config{
			Dir:          t.TempDir(),
			Policy:       SyncInterval,
			Streams:      1 + rng.Intn(3),
			MaxSegment:   512,
			RingDepth:    16,
			Clock:        clk.Now,
			SyncInterval: time.Hour, // durability only via explicit barriers
		})
		if err != nil {
			t.Fatal(err)
		}
		table, err := lockhash.New(lockhash.Config{
			Partitions:    4,
			CapacityBytes: 4 << 20,
			Clock:         clk.Now,
			Seed:          uint64(iter) + 1,
			Sink:          func(i int) partition.ChangeSink { return p.Appender(i) },
		})
		if err != nil {
			t.Fatal(err)
		}
		p.SetSource(LockHashSource(table))
		if _, err := RestoreLockHash(p, table); err != nil {
			t.Fatal(err)
		}
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			n := 1 + rng.Intn(len(val))
			table.Put(uint64(rng.Intn(96)), val[:n])
			if rng.Intn(4) == 0 {
				barrierOrDie(t, p, iter, i)
			}
		}
		p.Kill()
	}
}

// barrierOrDie runs one Barrier with a watchdog that dumps the internal
// watermarks if it wedges, so a regression fails with the stuck state
// instead of a bare test timeout.
func barrierOrDie(t *testing.T, p *Pipeline, iter, op int) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			msg := fmt.Sprintf("Barrier wedged (iter=%d op=%d):\n", iter, op)
			for ai, a := range p.appenders() {
				msg += fmt.Sprintf("  app%d: published=%d durable=%d wseq=%d ringLen=%d stream=%d\n",
					ai, a.published.Load(), a.durable.Load(), a.wseq, a.pub.Len(), a.stream.id)
			}
			for si, s := range p.streams {
				msg += fmt.Sprintf("  stream%d: written=%d synced=%d syncReq=%v parked=%v\n",
					si, s.written.Load(), s.synced.Load(), s.syncReq.Load(), s.parked.Load())
			}
			panic(msg)
		}
	}()
	p.Barrier()
	close(done)
}
