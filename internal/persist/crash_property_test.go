package persist

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"cphash/internal/lockhash"
	"cphash/internal/partition"
)

// Crash-recovery property test: random Set/SetTTL/Delete traffic runs
// against a table wired to the pipeline; the persister is then killed
// abruptly and the WAL tail truncated at a random byte offset at or
// beyond the durable watermark — the on-disk states a real crash can
// leave behind (fsynced data survives a crash; everything after it may
// tear anywhere). Recovery must then satisfy, for every key:
//
//   - prefix consistency (no corruption): the recovered (value,
//     expireAt) equals the state after some prefix of that key's
//     operation history — never a mangled value, never a state the key
//     was not in;
//   - no acked-write loss: the prefix is at least as long as the key's
//     history at the last Barrier (under sync=always the server
//     barriers every batch before acknowledging, so "acked" means
//     exactly this).
//
// Both properties are checked for every policy; the policies differ
// only in how often traffic is barriered.

// keyState is one historical state of a key.
type keyState struct {
	present  bool
	val      string
	expireAt int64
}

func (s keyState) String() string {
	if !s.present {
		return "<absent>"
	}
	return fmt.Sprintf("%q exp=%d", s.val, s.expireAt)
}

func TestCrashRecoveryProperty(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				runCrashTrial(t, policy, int64(trial)*7919+int64(policy), 0)
			}
		})
	}
}

// TestCrashAtRollBoundary runs the same crash property with segments
// small enough that every trial crosses dozens of roll boundaries, so
// the random crash point repeatedly lands in a freshly rolled segment.
// This is the regime where directory-entry durability matters: a rolled
// segment whose data is fsynced but whose dirent is not would vanish
// whole on power failure, silently dropping acked writes. openSegment
// guards against exactly that by fsyncing the WAL directory after
// creating each segment; these trials would report acked-write loss if
// that ordering ever regressed.
func TestCrashAtRollBoundary(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				runCrashTrial(t, policy, int64(trial)*104729+int64(policy), 512)
			}
		})
	}
}

func runCrashTrial(t *testing.T, policy SyncPolicy, seed int64, maxSegment int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	clk := &fakeClock{now: int64(1000000 + rng.Intn(1000))}
	cfg := Config{
		Dir:        dir,
		Policy:     policy,
		Streams:    1 + rng.Intn(3),
		MaxSegment: maxSegment,
		// Small rings stress the publish backpressure path.
		RingDepth: 16,
		Clock:     clk.Now,
		// A long interval so interval-mode durability comes only from
		// explicit barriers — the trial controls what is acked.
		SyncInterval: time.Hour,
	}
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	table, err := lockhash.New(lockhash.Config{
		Partitions:    4,
		CapacityBytes: 4 << 20, // ample: the model assumes no evictions
		Clock:         clk.Now,
		Seed:          uint64(seed) + 1,
		Sink:          func(i int) partition.ChangeSink { return p.Appender(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetSource(LockHashSource(table))
	if _, err := RestoreLockHash(p, table); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	const keys = 96
	versions := map[uint64][]keyState{} // implicit version 0 = absent
	acked := map[uint64]int{}           // min surviving version index
	state := func(k uint64) keyState {
		vs := versions[k]
		if len(vs) == 0 {
			return keyState{}
		}
		return vs[len(vs)-1]
	}

	nOps := 300 + rng.Intn(400)
	barrierEvery := 0 // ops between barriers; always-mode barriers often
	if policy == SyncAlways {
		barrierEvery = 1 + rng.Intn(8)
	}
	snapshotAt := -1
	if rng.Intn(2) == 0 {
		snapshotAt = nOps / 2
	}
	val := make([]byte, 64)
	lastBarrier := func() {
		for k, vs := range versions {
			acked[k] = len(vs)
		}
	}
	for i := 0; i < nOps; i++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(10) {
		case 0, 1, 2:
			wasPresent := state(k).present
			if found := table.Delete(k); found != wasPresent {
				t.Fatalf("trial %d: live table drifted from the model at delete(%d): found=%v want %v", seed, k, found, wasPresent)
			}
			if wasPresent {
				// A delete-miss changes nothing and logs nothing; only a
				// hit adds an absent state to the history.
				versions[k] = append(versions[k], keyState{})
			}
		case 3, 4:
			n := 1 + rng.Intn(len(val))
			for j := 0; j < n; j++ {
				val[j] = byte(rng.Intn(256))
			}
			ttl := time.Duration(1+rng.Intn(48)) * time.Hour
			if !table.PutTTL(k, val[:n], ttl) {
				t.Fatalf("trial %d: PutTTL failed (capacity?)", seed)
			}
			versions[k] = append(versions[k], keyState{present: true, val: string(val[:n]), expireAt: clk.now + int64(ttl)})
		default:
			n := 1 + rng.Intn(len(val))
			for j := 0; j < n; j++ {
				val[j] = byte(rng.Intn(256))
			}
			if !table.Put(k, val[:n]) {
				t.Fatalf("trial %d: Put failed (capacity?)", seed)
			}
			versions[k] = append(versions[k], keyState{present: true, val: string(val[:n])})
		}
		if barrierEvery > 0 && i%barrierEvery == barrierEvery-1 {
			p.Barrier()
			lastBarrier()
		}
		if policy == SyncInterval && rng.Intn(50) == 0 {
			p.Barrier()
			lastBarrier()
		}
		if i == snapshotAt {
			if err := p.Snapshot(); err != nil {
				t.Fatalf("trial %d: snapshot: %v", seed, err)
			}
		}
	}
	if st := table.Stats(); st.Evictions != 0 || st.InsertErr != 0 {
		t.Fatalf("trial %d: table evicted (%d) or failed inserts (%d); the model assumes neither", seed, st.Evictions, st.InsertErr)
	}

	if maxSegment > 0 && maxSegment < 4<<10 {
		if rolls := p.Stats().Rolls; rolls < 10 {
			t.Fatalf("trial %d: only %d rolls with MaxSegment=%d; the roll-boundary regime was not exercised", seed, rolls, maxSegment)
		}
	}

	// Crash: kill the persisters mid-flight, then tear the tail of a
	// random stream's current segment at a random offset at or beyond
	// its durable watermark.
	p.Kill()
	ws := p.WALStatus()
	victim := ws[rng.Intn(len(ws))]
	if victim.Segment != "" {
		fi, err := os.Stat(victim.Segment)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > victim.DurableBytes {
			cut := victim.DurableBytes + rng.Int63n(fi.Size()-victim.DurableBytes+1)
			if err := os.Truncate(victim.Segment, cut); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Recover and check the two properties.
	p2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := newMemState()
	if _, err := p2.Recover(got.apply); err != nil {
		t.Fatalf("trial %d: recover: %v", seed, err)
	}
	for k := range got.vals {
		if len(versions[k]) == 0 {
			t.Fatalf("trial %d: key %d recovered but never written", seed, k)
		}
	}
	for k, vs := range versions {
		g := keyState{}
		if v, ok := got.vals[k]; ok {
			g = keyState{present: true, val: string(v), expireAt: got.exps[k]}
		}
		min := acked[k]
		matched := -1
		for j := min; j <= len(vs); j++ {
			var want keyState
			if j > 0 {
				want = vs[j-1]
			}
			if want == g {
				matched = j
				break
			}
		}
		if matched < 0 {
			t.Fatalf("trial %d (policy %v): key %d recovered as %v, which is no state at or after the acked version %d of its %d-op history (last acked state %v, final state %v)",
				seed, policy, k, g, min, len(vs), stateAt(vs, min), stateAt(vs, len(vs)))
		}
	}
}

func stateAt(vs []keyState, j int) keyState {
	if j <= 0 || j > len(vs) {
		return keyState{}
	}
	return vs[j-1]
}
