// Package persist is the durability subsystem: a per-partition,
// asynchronous write-ahead pipeline plus compact snapshots and crash
// recovery for the CPHash tables.
//
// CPHash partitions the table across cores precisely so that each
// partition is owned by one goroutine (CPHASH's server goroutine, or
// LOCKHASH's lock holder). That ownership makes durability logging
// contention-free: each partition gets an Appender — a pooled-buffer
// staging area feeding an SPSC change ring — whose single producer is the
// partition owner. Persister goroutines (one per WAL stream; partitions
// are striped across streams) drain the rings and write length-prefixed,
// CRC-framed records into segmented WAL files. A snapshotter periodically
// walks the table through the safe-snapshot scan iteration and writes a
// compact immutable snapshot, after which the WAL segments it covers are
// deleted.
//
// # Lifecycle
//
//	p, _ := persist.Open(cfg)        // scan the data dir, appenders inert
//	table := core.New(core.Config{   // sinks attached at construction
//	    Sink: func(i int) partition.ChangeSink { return p.Appender(i) },
//	    ...})
//	p.SetSource(adapter(table))      // snapshot scan source
//	persist.RestoreCore(p, table, 0) // snapshot + WAL tail -> table
//	p.Start()                        // roll fresh segments, go live
//	...
//	p.Close()                        // drain, final fsync, stop
//
// Records appended before Start (the recovery replay writing back into
// the table) or after Close are dropped — the on-disk state that produced
// them already holds them.
//
// # Sync policies
//
//   - SyncNone: never fsync; the OS flushes at its leisure. Fastest, a
//     crash loses whatever the kernel had not written back (a graceful
//     Close still syncs everything).
//   - SyncInterval: fsync at a fixed cadence (default 100ms). A crash
//     loses at most the last interval; the WAL's clean-prefix framing
//     keeps everything before the torn tail intact.
//   - SyncAlways: fsync after every drained batch and publish the durable
//     watermark — group commit. Combined with the server's response
//     barrier, an acknowledged write is on disk before the client sees
//     the ack.
//
// # What is logged
//
// Sets (at value publication) and explicit deletes. Evictions and TTL
// expiries are not: recovery filters elapsed deadlines itself, and a
// resurrected evicted entry holds valid data that simply re-evicts —
// cache semantics buy the hot path a sink-free eviction loop.
package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/ring"
)

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy uint8

const (
	// SyncInterval fsyncs on a fixed cadence (Config.SyncInterval).
	SyncInterval SyncPolicy = iota
	// SyncNone never fsyncs during operation (Close still does).
	SyncNone
	// SyncAlways fsyncs every drained batch (group commit) and lets
	// Barrier callers wait for the durable watermark.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy parses the -sync flag forms: none | interval | always.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	default:
		return SyncInterval, fmt.Errorf("persist: unknown sync policy %q (want none|interval|always)", s)
	}
}

// Source is the snapshot scan: a cursor-resumable iteration over the
// table's live entries (core.Table.ScanEntries / lockhash.Table
// adapters). It is called repeatedly until done.
type Source func(cursor uint64, maxEntries int) (entries []partition.ScanEntry, next uint64, done bool, err error)

// Config parameterizes a Pipeline.
type Config struct {
	// Dir is the data directory (created if missing). One pipeline per
	// directory.
	Dir string
	// Policy selects the sync policy (default SyncInterval).
	Policy SyncPolicy
	// SyncInterval is the fsync cadence under SyncInterval (default
	// 100ms).
	SyncInterval time.Duration
	// MaxSegment bounds a WAL segment's size before rolling (default
	// 64 MiB).
	MaxSegment int
	// SnapshotInterval is the automatic snapshot cadence; 0 disables
	// automatic snapshots (manual Snapshot still works).
	SnapshotInterval time.Duration
	// Streams is the number of WAL streams (= persister goroutines);
	// partitions are striped across them. Default 2.
	Streams int
	// RingDepth is the per-partition change-ring depth in records
	// (power of two, default 256). It bounds the records a partition
	// may have in flight to its persister; a producer that outruns the
	// persister by more briefly spins, which is the backpressure
	// durability needs. Memory is ~48·RingDepth bytes per partition of
	// ring alone (two rings of slice headers), so very-high-partition
	// tables (LOCKHASH's 4,096) may want a smaller depth.
	RingDepth int
	// Clock supplies "now" in nanoseconds (nil = wall clock). It must be
	// the same clock the table uses, so persisted absolute deadlines and
	// live TTLs agree.
	Clock func() int64
	// Source is the snapshot scan; it may also be set later with
	// SetSource (the table is usually built after the pipeline, since
	// its partitions need the pipeline's appenders).
	Source Source
}

func (c *Config) setDefaults() error {
	if c.Dir == "" {
		return fmt.Errorf("persist: Config.Dir is required")
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.MaxSegment <= 0 {
		c.MaxSegment = 64 << 20
	}
	if c.MaxSegment < segHeaderLen+frameHeaderLen {
		return fmt.Errorf("persist: MaxSegment %d too small", c.MaxSegment)
	}
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.RingDepth <= 0 {
		c.RingDepth = 256
	}
	if c.RingDepth&(c.RingDepth-1) != 0 {
		return fmt.Errorf("persist: RingDepth %d must be a power of two", c.RingDepth)
	}
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return nil
}

// Stats is a snapshot of pipeline counters.
type Stats struct {
	Policy string `json:"policy"`
	// Records and RecordBytes count WAL records written (payload bytes).
	Records     int64 `json:"records"`
	RecordBytes int64 `json:"recordBytes"`
	// Fsyncs counts WAL fsync calls; Rolls counts segment rolls.
	Fsyncs int64 `json:"fsyncs"`
	Rolls  int64 `json:"rolls"`
	// Dropped counts records discarded because the pipeline was not
	// accepting (before Start / after Close). Steady state: 0.
	Dropped int64 `json:"dropped"`
	// Snapshots counts completed snapshots; the Last* fields describe
	// the most recent one.
	Snapshots        int64 `json:"snapshots"`
	SnapshotErrors   int64 `json:"snapshotErrors"`
	LastSnapEntries  int64 `json:"lastSnapshotEntries"`
	LastSnapBytes    int64 `json:"lastSnapshotBytes"`
	LastSnapUnixNano int64 `json:"lastSnapshotUnixNano"`
	// Recovery counters from the last Recover on this pipeline.
	Recovered RecoverStats `json:"recovered"`
}

// StreamStatus describes one WAL stream's current segment.
type StreamStatus struct {
	Stream  int    `json:"stream"`
	Segment string `json:"segment"` // path of the current segment
	Seq     uint64 `json:"seq"`
	// WrittenBytes counts bytes handed to the segment writer;
	// DurableBytes counts bytes known fsynced. DurableBytes ≤ file size
	// ≤ WrittenBytes (the gap is the writer's user-space buffer).
	WrittenBytes int64 `json:"writtenBytes"`
	DurableBytes int64 `json:"durableBytes"`
}

// Pipeline is the durability pipeline for one table.
type Pipeline struct {
	cfg     Config
	streams []*stream

	mu             sync.Mutex
	cond           *sync.Cond // broadcast when durable watermarks advance
	appenderByPart map[int]*Appender
	appList        atomic.Pointer[[]*Appender] // COW snapshot for lock-free readers
	source         atomic.Pointer[Source]
	tailSink       atomic.Pointer[TailSink] // replication fanout (tail.go)

	nextSeq atomic.Uint64 // global segment sequence allocator
	nextGen atomic.Uint64 // snapshot generation allocator

	accepting atomic.Bool // appenders stage records only while true
	started   atomic.Bool
	closed    atomic.Bool
	stopping  atomic.Bool
	killed    chan struct{} // test hook: abrupt persister death
	broken    chan struct{} // closed when a persister dies on an I/O error
	breakOnce sync.Once
	wg        sync.WaitGroup

	snapReq  chan chan error
	snapStop chan struct{}
	snapWG   sync.WaitGroup

	// counters
	records     atomic.Int64
	recordBytes atomic.Int64
	fsyncs      atomic.Int64
	rolls       atomic.Int64
	dropped     atomic.Int64
	snapshots   atomic.Int64
	snapErrors  atomic.Int64
	snapEntries atomic.Int64
	snapBytes   atomic.Int64
	snapWhen    atomic.Int64
	recovered   RecoverStats

	// latency histograms: fsync duration (persister-side) and durability
	// barrier wait (caller-side — under SyncAlways this is the group-commit
	// stall every mutating batch pays).
	fsyncHist   obs.Hist
	barrierHist obs.Hist
}

// Open validates the configuration, creates the data directory, and
// scans it for existing WAL segments and snapshots. The returned
// pipeline is inert — appenders drop records — until Start; call Recover
// first to replay the on-disk state.
func Open(cfg Config) (*Pipeline, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	p := &Pipeline{
		cfg:            cfg,
		appenderByPart: map[int]*Appender{},
		killed:         make(chan struct{}),
		broken:         make(chan struct{}),
		snapReq:        make(chan chan error),
		snapStop:       make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	if cfg.Source != nil {
		src := cfg.Source
		p.source.Store(&src)
	}
	// A crash mid-snapshot leaves an s<gen>.tmp behind; it can never
	// become loadable (only the rename commits), so sweep orphans here.
	if tmps, err := filepath.Glob(filepath.Join(cfg.Dir, "s*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	segs, snaps, err := scanDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	maxSeq := uint64(0)
	for _, s := range segs {
		if s.seq > maxSeq {
			maxSeq = s.seq
		}
	}
	p.nextSeq.Store(maxSeq + 1)
	maxGen := uint64(0)
	for _, s := range snaps {
		if s.gen > maxGen {
			maxGen = s.gen
		}
	}
	p.nextGen.Store(maxGen + 1)
	for i := 0; i < cfg.Streams; i++ {
		p.streams = append(p.streams, newStream(p, i))
	}
	return p, nil
}

// MustOpen is Open that panics on error.
func MustOpen(cfg Config) *Pipeline {
	p, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Dir returns the pipeline's data directory.
func (p *Pipeline) Dir() string { return p.cfg.Dir }

// Policy returns the configured sync policy.
func (p *Pipeline) Policy() SyncPolicy { return p.cfg.Policy }

// SetSource installs the snapshot scan source (usually right after the
// table — which needed the pipeline's appenders — has been built).
func (p *Pipeline) SetSource(src Source) {
	if src == nil {
		return
	}
	p.source.Store(&src)
}

// Appender returns (creating on first use) the change appender for
// partition part. It is the partition.ChangeSink the table's partition
// should be configured with; all of its methods must be called by the
// partition's single owner.
func (p *Pipeline) Appender(part int) *Appender {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.appenderByPart[part]; ok {
		return a
	}
	s := p.streams[part%len(p.streams)]
	a := &Appender{
		p:      p,
		part:   part,
		stream: s,
		pub:    ring.MustSPSC[[]byte](p.cfg.RingDepth, 1),
		free:   ring.MustSPSC[[]byte](p.cfg.RingDepth, 1),
	}
	p.appenderByPart[part] = a
	old := p.appenders()
	next := make([]*Appender, len(old)+1)
	copy(next, old)
	next[len(old)] = a
	p.appList.Store(&next)
	s.addAppender(a)
	return a
}

// appenders returns the copy-on-write appender snapshot — lock-free and
// allocation-free, so per-batch Barrier calls stay off the mutex.
func (p *Pipeline) appenders() []*Appender {
	if l := p.appList.Load(); l != nil {
		return *l
	}
	return nil
}

// Start rolls every stream onto a fresh segment and starts the persister
// and snapshotter goroutines; appenders accept records from here on.
// Starting on a fresh segment (never appending to an existing one) is
// what lets replay treat a mid-segment torn record as end-of-segment:
// nothing is ever written after a tear.
func (p *Pipeline) Start() error {
	if p.closed.Load() {
		return fmt.Errorf("persist: pipeline closed")
	}
	if !p.started.CompareAndSwap(false, true) {
		return fmt.Errorf("persist: already started")
	}
	for _, s := range p.streams {
		if err := s.openSegment(); err != nil {
			return err
		}
	}
	for _, s := range p.streams {
		p.wg.Add(1)
		go s.run()
	}
	p.snapWG.Add(1)
	go p.snapshotLoop()
	p.accepting.Store(true)
	return nil
}

// Barrier blocks until every record published before the call is
// durable (fsynced), forcing a sync under SyncNone/SyncInterval. Under
// SyncAlways this is the group-commit wait the server performs before
// acknowledging a batch. Returns immediately if the pipeline is not
// running.
func (p *Pipeline) Barrier() {
	if !p.started.Load() {
		return
	}
	start := time.Now()
	defer func() { p.barrierHist.Record(time.Since(start).Nanoseconds()) }()
	for _, a := range p.appenders() {
		target := a.published.Load()
		if a.durable.Load() >= target {
			continue
		}
		// Re-arm the sync request on every pass: a request consumed by a
		// persister sweep that ran before these records were drained
		// would otherwise sync without them and never come back (under
		// SyncNone nothing else ever syncs). The broadcast in markDurable
		// happens under p.mu, so arming before Wait cannot miss it.
		p.mu.Lock()
		for a.durable.Load() < target && p.accepting.Load() {
			a.stream.syncReq.Store(true)
			a.stream.kickAlways()
			p.cond.Wait()
		}
		p.mu.Unlock()
	}
}

// Snapshot triggers a snapshot now and waits for it to complete.
func (p *Pipeline) Snapshot() error {
	if !p.started.Load() || p.closed.Load() {
		return fmt.Errorf("persist: pipeline not running")
	}
	reply := make(chan error, 1)
	select {
	case p.snapReq <- reply:
		return <-reply
	case <-p.snapStop:
		return fmt.Errorf("persist: pipeline closing")
	}
}

// Close drains the change rings, writes and fsyncs everything
// outstanding, and stops the pipeline's goroutines. Producers must be
// quiescent (the server is shut down first); records appended
// concurrently with Close may be dropped. Idempotent.
func (p *Pipeline) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	if !p.started.Load() {
		return nil
	}
	close(p.snapStop)
	p.snapWG.Wait()
	p.stopping.Store(true)
	for _, s := range p.streams {
		s.kickAlways()
	}
	p.wg.Wait()
	p.mu.Lock()
	p.accepting.Store(false)
	p.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

// markBroken records an unrecoverable persister failure (a dying WAL
// device): appenders stop accepting (the server keeps serving, cache
// first), Barrier waiters are released, and pending or future roll
// requests fail instead of blocking on a goroutine that is gone.
func (p *Pipeline) markBroken() {
	p.breakOnce.Do(func() { close(p.broken) })
	p.mu.Lock()
	p.accepting.Store(false)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Kill is the crash-test hook: it stops the persisters abruptly —
// no drain, no flush, no fsync — leaving the on-disk state exactly as a
// process crash would (modulo the segment writer's user-space buffer,
// which a crash also loses). Tests then truncate the WAL tail and
// exercise Recover.
func (p *Pipeline) Kill() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	if !p.started.Load() {
		return
	}
	close(p.snapStop)
	p.snapWG.Wait()
	close(p.killed)
	p.wg.Wait()
	p.mu.Lock()
	p.accepting.Store(false)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Policy:           p.cfg.Policy.String(),
		Records:          p.records.Load(),
		RecordBytes:      p.recordBytes.Load(),
		Fsyncs:           p.fsyncs.Load(),
		Rolls:            p.rolls.Load(),
		Dropped:          p.dropped.Load(),
		Snapshots:        p.snapshots.Load(),
		SnapshotErrors:   p.snapErrors.Load(),
		LastSnapEntries:  p.snapEntries.Load(),
		LastSnapBytes:    p.snapBytes.Load(),
		LastSnapUnixNano: p.snapWhen.Load(),
		Recovered:        p.recovered,
	}
}

// Collect emits the pipeline's counters, gauges and latency histograms
// into an exposition buffer; labels identifies the owning instance.
func (p *Pipeline) Collect(e *obs.Expo, labels string) {
	st := p.Stats()
	e.Counter("cphash_persist_records_total", "WAL records written.", labels, st.Records)
	e.Counter("cphash_persist_record_bytes_total", "WAL record payload bytes written.", labels, st.RecordBytes)
	e.Counter("cphash_persist_fsyncs_total", "WAL fsync calls.", labels, st.Fsyncs)
	e.Counter("cphash_persist_segment_rolls_total", "WAL segment rolls.", labels, st.Rolls)
	e.Counter("cphash_persist_dropped_records_total", "Records dropped while the pipeline was not accepting.", labels, st.Dropped)
	e.Counter("cphash_persist_snapshots_total", "Completed snapshots.", labels, st.Snapshots)
	e.Counter("cphash_persist_snapshot_errors_total", "Failed snapshot attempts.", labels, st.SnapshotErrors)
	if st.LastSnapUnixNano > 0 {
		age := float64(p.cfg.Clock()-st.LastSnapUnixNano) / 1e9
		e.Gauge("cphash_persist_snapshot_age_seconds", "Seconds since the last completed snapshot.", labels, age)
	}
	// Ring depth — records published by partition owners but not yet
	// durable — is the live measure of how far the persisters are behind.
	var depth int64
	for _, a := range p.appenders() {
		if d := int64(a.published.Load()) - int64(a.durable.Load()); d > 0 {
			depth += d
		}
	}
	e.Gauge("cphash_persist_ring_depth_records", "Published change records not yet durable, summed over partitions.", labels, float64(depth))
	e.Histogram("cphash_persist_fsync_latency_ns", "WAL fsync latency in nanoseconds.", labels, p.fsyncHist.Snapshot())
	e.Histogram("cphash_persist_barrier_wait_ns", "Durability barrier wait in nanoseconds.", labels, p.barrierHist.Snapshot())
}

// WALStatus reports each stream's current segment and durable offset.
func (p *Pipeline) WALStatus() []StreamStatus {
	out := make([]StreamStatus, 0, len(p.streams))
	for _, s := range p.streams {
		out = append(out, StreamStatus{
			Stream:       s.id,
			Segment:      s.path.Load(),
			Seq:          s.seq.Load(),
			WrittenBytes: s.written.Load(),
			DurableBytes: s.synced.Load(),
		})
	}
	return out
}

// snapshotLoop serves the periodic and manual snapshot triggers.
func (p *Pipeline) snapshotLoop() {
	defer p.snapWG.Done()
	var tickC <-chan time.Time
	if p.cfg.SnapshotInterval > 0 {
		t := time.NewTicker(p.cfg.SnapshotInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-p.snapStop:
			return
		case reply := <-p.snapReq:
			reply <- p.doSnapshot()
		case <-tickC:
			if err := p.doSnapshot(); err != nil {
				p.snapErrors.Add(1)
			}
		}
	}
}

// --- Appender: the per-partition change sink ---

// recHeaderLen is the staged payload header: op(1) key(8) expire(8)
// ver(8). The version rides every record so recovery and replica replay
// restore entries under the CAS version they were stored with.
const recHeaderLen = 25

// maxPooledRec caps the payload size served from the appender's
// recycled buffer pool; larger records (rare huge values) take a one-off
// allocation instead of pinning big buffers in every pool slot.
const maxPooledRec = 4 << 10

// Appender stages one partition's change records into pooled buffers and
// publishes them on the partition's SPSC change ring. It implements
// partition.ChangeSink. All methods must be called from the partition's
// single owner goroutine; the persister is the only other side of both
// rings, so the hot path takes no locks and — once the pool is warm —
// performs no allocation.
type Appender struct {
	p      *Pipeline
	part   int
	stream *stream

	pub  *ring.SPSC[[]byte] // staged records: appender -> persister
	free *ring.SPSC[[]byte] // recycled buffers: persister -> appender

	seq       uint64 // producer-private record count
	published atomic.Uint64
	durable   atomic.Uint64
	allocated int // pooled buffers created so far

	// persister-private: records written to the segment writer; durable
	// is advanced to this at each fsync.
	wseq uint64
}

// Partition returns the partition index this appender serves.
func (a *Appender) Partition() int { return a.part }

// Set stages a set record (value bytes are copied before return).
func (a *Appender) Set(key partition.Key, value []byte, expireAt int64, version uint64) {
	a.append(opSet, key, expireAt, version, value)
}

// Delete stages a delete record.
func (a *Appender) Delete(key partition.Key) {
	a.append(opDelete, key, 0, 0, nil)
}

func (a *Appender) append(op byte, key uint64, expireAt int64, version uint64, value []byte) {
	if !a.p.accepting.Load() {
		a.p.dropped.Add(1)
		return
	}
	b := a.getBuf(recHeaderLen + len(value))
	b = append(b, op)
	b = binary.LittleEndian.AppendUint64(b, key)
	b = binary.LittleEndian.AppendUint64(b, uint64(expireAt))
	b = binary.LittleEndian.AppendUint64(b, version)
	b = append(b, value...)
	a.seq++
	// Publish, spinning if the persister is behind — durability must not
	// drop records, so a full ring is backpressure, not loss. (The ring
	// is built with lineMsgs=1, so Produce publishes immediately; no
	// Flush needed.) Bail out if the pipeline shuts down underneath us
	// (the record is then covered by the no-acceptance drop semantics).
	for !a.pub.Produce(b) {
		if !a.p.accepting.Load() {
			a.seq--
			a.p.dropped.Add(1)
			return
		}
		runtime.Gosched()
	}
	a.published.Store(a.seq)
	a.stream.kick()
}

// getBuf returns an empty buffer with capacity for n bytes: a pooled one
// when n fits the pool class, else a one-off allocation.
func (a *Appender) getBuf(n int) []byte {
	if n > maxPooledRec {
		return make([]byte, 0, n)
	}
	if b, ok := a.free.Consume(); ok {
		return b[:0]
	}
	if a.allocated < a.pub.Cap() {
		a.allocated++
		return make([]byte, 0, maxPooledRec)
	}
	// Pool exhausted: wait for the persister to recycle one.
	for {
		if b, ok := a.free.Consume(); ok {
			return b[:0]
		}
		if !a.p.accepting.Load() {
			return make([]byte, 0, maxPooledRec)
		}
		runtime.Gosched()
	}
}

// recycle returns a drained buffer to its appender's pool; called by the
// persister. Oversized one-off buffers are dropped to the GC.
func (a *Appender) recycle(b []byte) {
	if cap(b) != maxPooledRec {
		return
	}
	// The free ring is as deep as the pool can ever be, so this cannot
	// fail; guard anyway so a bug degrades to garbage, not a spin.
	if !a.free.Produce(b[:0]) {
		return
	}
	a.free.Flush()
}

// --- directory scanning ---

type segFile struct {
	path   string
	stream int
	seq    uint64
}

type snapFile struct {
	path string
	gen  uint64
}

// scanDir lists WAL segments and snapshots in dir.
func scanDir(dir string) (segs []segFile, snaps []snapFile, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, walSuffix):
			var st int
			var seq uint64
			if _, err := fmt.Sscanf(name, "w%03d-%016x"+walSuffix, &st, &seq); err != nil {
				continue // not ours
			}
			segs = append(segs, segFile{path: filepath.Join(dir, name), stream: st, seq: seq})
		case strings.HasSuffix(name, snapSuffix):
			var gen uint64
			if _, err := fmt.Sscanf(name, "s%016x"+snapSuffix, &gen); err != nil {
				continue
			}
			snaps = append(snaps, snapFile{path: filepath.Join(dir, name), gen: gen})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].gen < snaps[j].gen })
	return segs, snaps, nil
}
