package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cphash/internal/lockhash"
	"cphash/internal/partition"
)

// memState is a model table recovery replays into.
type memState struct {
	vals map[uint64][]byte
	exps map[uint64]int64
}

func newMemState() *memState {
	return &memState{vals: map[uint64][]byte{}, exps: map[uint64]int64{}}
}

func (m *memState) apply(op Op, key uint64, exp int64, ver uint64, val []byte) error {
	switch op {
	case OpSet:
		m.vals[key] = append([]byte(nil), val...)
		m.exps[key] = exp
	case OpDelete:
		delete(m.vals, key)
		delete(m.exps, key)
	default:
		return fmt.Errorf("unknown op %d", op)
	}
	return nil
}

func openStarted(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Policy: SyncAlways, Streams: 2}
	p := openStarted(t, cfg)
	apps := []*Appender{p.Appender(0), p.Appender(1), p.Appender(2), p.Appender(3)}

	model := newMemState()
	val := make([]byte, 32)
	for i := 0; i < 2000; i++ {
		key := uint64(i % 257)
		a := apps[int(key)%len(apps)]
		switch i % 5 {
		case 4:
			a.Delete(key)
			model.apply(OpDelete, key, 0, 0, nil)
		default:
			for j := range val {
				val[j] = byte(i + j)
			}
			exp := int64(0)
			if i%3 == 0 {
				exp = time.Now().Add(time.Hour).UnixNano()
			}
			a.Set(key, val, exp, 0)
			model.apply(OpSet, key, exp, 0, val)
		}
	}
	p.Barrier()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Records != 2000 {
		t.Fatalf("Records = %d, want 2000", st.Records)
	}

	p2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := newMemState()
	st, err := p2.Recover(got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALRecords != 2000 || st.TornSegments != 0 {
		t.Fatalf("recover stats: %+v", st)
	}
	compareStates(t, model, got)
}

func compareStates(t *testing.T, want, got *memState) {
	t.Helper()
	if len(got.vals) != len(want.vals) {
		t.Fatalf("recovered %d keys, want %d", len(got.vals), len(want.vals))
	}
	for k, v := range want.vals {
		gv, ok := got.vals[k]
		if !ok {
			t.Fatalf("key %d missing after recovery", k)
		}
		if string(gv) != string(v) {
			t.Fatalf("key %d: value mismatch", k)
		}
		if got.exps[k] != want.exps[k] {
			t.Fatalf("key %d: expireAt %d, want %d", k, got.exps[k], want.exps[k])
		}
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Policy: SyncNone, Streams: 1}
	p := openStarted(t, cfg)
	a := p.Appender(0)
	val := []byte("payload-payload-payload")
	for i := 0; i < 100; i++ {
		a.Set(uint64(i), val, 0, 0)
	}
	p.Barrier() // force everything to disk so truncation is deterministic
	p.Kill()

	segs, _, err := scanDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("scanDir: %v (%d segs)", err, len(segs))
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last.path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final record's payload: one record survives short.
	if err := os.Truncate(last.path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := newMemState()
	st, err := p2.Recover(got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALRecords != 99 {
		t.Fatalf("replayed %d records, want 99", st.WALRecords)
	}
	if st.TornSegments != 1 {
		t.Fatalf("TornSegments = %d, want 1", st.TornSegments)
	}
	if _, ok := got.vals[99]; ok {
		t.Fatal("torn record resurrected")
	}
	if string(got.vals[98]) != string(val) {
		t.Fatal("clean prefix damaged")
	}

	// A restart rolls to a fresh segment; new records land after the
	// tear and must replay on top of the surviving prefix.
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	a2 := p2.Appender(0)
	a2.Set(7, []byte("after-restart"), 0, 0)
	p2.Barrier()
	p2.Close()

	p3, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got3 := newMemState()
	if _, err := p3.Recover(got3.apply); err != nil {
		t.Fatal(err)
	}
	if string(got3.vals[7]) != "after-restart" {
		t.Fatalf("post-restart record lost: %q", got3.vals[7])
	}
	if len(got3.vals) != 99 {
		t.Fatalf("recovered %d keys, want 99", len(got3.vals))
	}
}

func TestSegmentRollAndReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Policy: SyncNone, Streams: 1, MaxSegment: 1 << 10}
	p := openStarted(t, cfg)
	a := p.Appender(0)
	model := newMemState()
	val := make([]byte, 100)
	for i := 0; i < 200; i++ {
		key := uint64(i % 17)
		val[0] = byte(i)
		a.Set(key, val, 0, 0)
		model.apply(OpSet, key, 0, 0, val)
	}
	p.Close()
	segs, _, _ := scanDir(dir)
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	p2, _ := Open(cfg)
	got := newMemState()
	st, err := p2.Recover(got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALRecords != 200 {
		t.Fatalf("replayed %d, want 200", st.WALRecords)
	}
	compareStates(t, model, got)
}

func TestBarrierAdvancesDurable(t *testing.T) {
	dir := t.TempDir()
	// An hour-long interval: nothing syncs unless Barrier forces it.
	cfg := Config{Dir: dir, Policy: SyncInterval, SyncInterval: time.Hour, Streams: 1}
	p := openStarted(t, cfg)
	defer p.Close()
	a := p.Appender(0)
	a.Set(1, []byte("v"), 0, 0)
	deadline := time.Now().Add(2 * time.Second)
	for a.pub.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond) // wait for the persister to drain
	}
	p.Barrier()
	ws := p.WALStatus()
	if len(ws) != 1 {
		t.Fatalf("streams = %d", len(ws))
	}
	if ws[0].DurableBytes != ws[0].WrittenBytes {
		t.Fatalf("durable %d != written %d after Barrier", ws[0].DurableBytes, ws[0].WrittenBytes)
	}
	if a.durable.Load() != a.published.Load() {
		t.Fatalf("durable seq %d != published %d", a.durable.Load(), a.published.Load())
	}
}

// fakeClock is an adjustable test clock shared by table and pipeline.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64 { return c.now }

// lockhashHarness builds a LOCKHASH table wired to a fresh pipeline on
// dir, restoring any prior durable state into it first.
func lockhashHarness(t *testing.T, dir string, clk *fakeClock) (*lockhash.Table, *Pipeline, RecoverStats) {
	t.Helper()
	p, err := Open(Config{Dir: dir, Policy: SyncNone, Streams: 2, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	table, err := lockhash.New(lockhash.Config{
		Partitions:    8,
		CapacityBytes: 1 << 20,
		Clock:         clk.Now,
		Sink:          func(i int) partition.ChangeSink { return p.Appender(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetSource(LockHashSource(table))
	st, err := RestoreLockHash(p, table)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	return table, p, st
}

func TestSnapshotCompactionAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: 1}

	table, p, _ := lockhashHarness(t, dir, clk)
	val := []byte("0123456789abcdef")
	for k := uint64(0); k < 500; k++ {
		if !table.Put(k, val) {
			t.Fatalf("put %d failed", k)
		}
	}
	// TTL'd keys: one hour on the fake clock.
	for k := uint64(500); k < 600; k++ {
		if !table.PutTTL(k, val, time.Hour) {
			t.Fatal("putTTL failed")
		}
	}
	table.Delete(3)
	p.Barrier()
	preSegs, _, _ := scanDir(dir)
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	postSegs, snaps, _ := scanDir(dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %d, want 1", len(snaps))
	}
	// Every pre-snapshot segment was covered and deleted; the streams
	// rolled onto fresh ones.
	for _, old := range preSegs {
		for _, kept := range postSegs {
			if old.path == kept.path {
				t.Fatalf("covered segment %s not truncated", old.path)
			}
		}
	}
	// WAL tail after the snapshot.
	table.Put(1000, []byte("tail-entry"))
	table.Delete(4)
	p.Barrier()
	p.Close()

	// Warm restart half an hour later: TTLs must carry remaining time.
	clk.now += int64(30 * time.Minute)
	table2, p2, rst := lockhashHarness(t, dir, clk)
	defer p2.Close()
	if rst.SnapshotEntries == 0 {
		t.Fatalf("restart did not load the snapshot: %+v", rst)
	}
	var dst []byte
	check := func(k uint64, want string, wantHit bool) {
		t.Helper()
		dst = dst[:0]
		out, ok := table2.Get(k, dst)
		if ok != wantHit {
			t.Fatalf("key %d: hit=%v, want %v", k, ok, wantHit)
		}
		if ok && string(out) != want {
			t.Fatalf("key %d: %q, want %q", k, out, want)
		}
	}
	check(0, string(val), true)
	check(3, "", false) // deleted pre-snapshot
	check(4, "", false) // deleted in the WAL tail
	check(1000, "tail-entry", true)
	check(599, string(val), true) // 30min into a 1h TTL: alive

	// The remaining TTL must be ~30 minutes, not a fresh hour: advance
	// past the original deadline and the key must be gone.
	clk.now += int64(31 * time.Minute)
	check(599, "", false)
	check(0, string(val), true) // no-TTL keys unaffected
}

func TestRecoverPrefersNewestValidSnapshot(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: 1}
	table, p, _ := lockhashHarness(t, dir, clk)
	table.Put(1, []byte("one"))
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	table.Put(2, []byte("two"))
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	_, snaps, _ := scanDir(dir)
	if len(snaps) != 1 {
		t.Fatalf("old snapshot not truncated: %d on disk", len(snaps))
	}
	// Corrupt the newest snapshot: recovery must reject it whole and
	// fall back (here: to nothing + full WAL, which was compacted — so
	// the fallback state is empty; the point is no crash, no garbage).
	raw, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xff // inside the CRC
	if err := os.WriteFile(snaps[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, _ := Open(Config{Dir: dir, Policy: SyncNone, Streams: 2, Clock: clk.Now})
	got := newMemState()
	st, err := p2.Recover(got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.InvalidSnapshots != 1 {
		t.Fatalf("InvalidSnapshots = %d, want 1", st.InvalidSnapshots)
	}
	if st.SnapshotGen != 0 || st.SnapshotEntries != 0 {
		t.Fatalf("corrupt snapshot loaded: %+v", st)
	}
}

func TestRecoverSkipsExpired(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: 1}
	table, p, _ := lockhashHarness(t, dir, clk)
	table.Put(1, []byte("forever"))
	table.PutTTL(2, []byte("short"), time.Minute)
	p.Close()

	clk.now += int64(2 * time.Minute)
	table2, p2, rst := lockhashHarness(t, dir, clk)
	defer p2.Close()
	if rst.SkippedExpired != 1 {
		t.Fatalf("SkippedExpired = %d, want 1", rst.SkippedExpired)
	}
	if _, ok := table2.Get(1, nil); !ok {
		t.Fatal("persistent key lost")
	}
	if _, ok := table2.Get(2, nil); ok {
		t.Fatal("expired key resurrected")
	}
}

// TestStreamsReconfigured: shrinking Config.Streams across restarts
// must not resurrect old values. The key's records move to a different
// stream in the second run; the snapshot then covers the old stream's
// segments via the global seq ordering (they predate every roll
// watermark), so recovery must neither replay nor retain them.
func TestStreamsReconfigured(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: 1}

	p1, err := Open(Config{Dir: dir, Policy: SyncNone, Streams: 3, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	// Partition 2 maps to stream 2 under Streams=3 — a stream that will
	// not exist in the second run.
	p1.Appender(2).Set(77, []byte("v1"), 0, 0)
	p1.Barrier()
	p1.Close()

	// Second run, fewer streams: overwrite the key, snapshot.
	cfg2 := Config{Dir: dir, Policy: SyncNone, Streams: 2, Clock: clk.Now}
	p2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	entries := []partition.ScanEntry{{Key: 77, Value: []byte("v2")}}
	p2.SetSource(func(cursor uint64, max int) ([]partition.ScanEntry, uint64, bool, error) {
		return entries, 0, true, nil
	})
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	p2.Appender(2).Set(77, []byte("v2"), 0, 0)
	p2.Barrier()
	if err := p2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	p2.Close()

	// The orphan stream's segments are covered by the snapshot and must
	// be gone; recovery must yield v2, not the resurrected v1.
	segs, _, _ := scanDir(dir)
	for _, s := range segs {
		if s.stream == 2 {
			t.Fatalf("covered segment from the retired stream survives: %s", s.path)
		}
	}
	p3, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	got := newMemState()
	if _, err := p3.Recover(got.apply); err != nil {
		t.Fatal(err)
	}
	if string(got.vals[77]) != "v2" {
		t.Fatalf("key 77 recovered as %q, want %q — a retired stream's covered segment replayed", got.vals[77], "v2")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"none", SyncNone, false},
		{"interval", SyncInterval, false},
		{"always", SyncAlways, false},
		{" Always ", SyncAlways, false},
		{"fsync", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseSyncPolicy(%q): err = %v", c.in, err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with no Dir succeeded")
	}
	if _, err := Open(Config{Dir: t.TempDir(), RingDepth: 3}); err == nil {
		t.Fatal("Open with non-power-of-two RingDepth succeeded")
	}
}

func TestScanDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "w-bad.wal", "sxyz.snap", "w001-zzzz.wal"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 || len(snaps) != 0 {
		t.Fatalf("foreign files matched: %d segs, %d snaps", len(segs), len(snaps))
	}
	if !strings.HasSuffix(walName(1, 2), ".wal") {
		t.Fatal("walName suffix")
	}
}
