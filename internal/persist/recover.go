package persist

import (
	"fmt"
	"time"

	"cphash/internal/core"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
)

// Op is a recovered record's operation.
type Op byte

const (
	// OpSet carries a key, value and absolute expiry deadline (0 =
	// never) on the pipeline's clock.
	OpSet = Op(opSet)
	// OpDelete carries only the key.
	OpDelete = Op(opDelete)
)

// RecoverStats describes what a Recover pass found and applied.
type RecoverStats struct {
	// SnapshotGen is the generation of the snapshot that loaded (0 =
	// recovered from WAL alone); InvalidSnapshots counts newer snapshots
	// rejected by validation before one loaded.
	SnapshotGen      uint64 `json:"snapshotGen"`
	SnapshotEntries  int64  `json:"snapshotEntries"`
	InvalidSnapshots int64  `json:"invalidSnapshots"`
	// WALSegments / WALRecords count replayed segments and records;
	// TornSegments counts segments that ended in a torn or corrupt
	// frame (their clean prefix still replayed).
	WALSegments  int64 `json:"walSegments"`
	WALRecords   int64 `json:"walRecords"`
	TornSegments int64 `json:"tornSegments"`
	// SkippedExpired counts set records whose deadline had already
	// elapsed at recovery (applied as deletes so they cannot shadow-read
	// an older live value).
	SkippedExpired int64 `json:"skippedExpired"`
}

// Recover streams the durable state — newest valid snapshot, then the
// WAL tail — into apply, in an order whose last-writer-wins replay
// reconstructs the pre-crash table: snapshot entries first (all OpSet),
// then WAL records segment by segment in global sequence order. A torn
// final frame (the crash landed mid-write) cleanly ends its segment's
// replay. Set records whose TTL deadline has already passed arrive as
// OpDelete instead, so stale values cannot outlive their expiry across a
// restart.
//
// Recover must run before Start (the pipeline drops the change records
// the replay itself triggers — the on-disk state already holds them).
func (p *Pipeline) Recover(apply func(op Op, key uint64, expireAt int64, ver uint64, value []byte) error) (RecoverStats, error) {
	var st RecoverStats
	if p.started.Load() {
		return st, fmt.Errorf("persist: Recover must run before Start")
	}
	segs, snaps, err := scanDir(p.cfg.Dir)
	if err != nil {
		return st, err
	}

	// Newest snapshot that validates wins; an invalid one is rejected
	// whole and only counted — deletion is left to the next successful
	// snapshot's cleanup, since a validation failure here could also be
	// a transient read error.
	var minSeqs map[int]uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		s := snaps[i]
		if _, _, err := readSnapshot(s.path, nil); err != nil {
			st.InvalidSnapshots++
			continue
		}
		now := p.cfg.Clock()
		n, ms, err := readSnapshot(s.path, func(key uint64, exp int64, ver uint64, val []byte) error {
			if exp != 0 && exp <= now {
				st.SkippedExpired++
				return nil
			}
			return apply(OpSet, key, exp, ver, val)
		})
		if err != nil {
			return st, fmt.Errorf("persist: applying snapshot %s: %w", s.path, err)
		}
		st.SnapshotGen = s.gen
		st.SnapshotEntries = n
		minSeqs = ms
		break
	}

	// Replay the WAL tail in global sequence order. Segments the
	// snapshot covers are skipped (and may linger only if a crash
	// interrupted the post-snapshot truncation — replaying them would be
	// harmless, just slower, so they are simply dropped here). A segment
	// from a stream the snapshot does not list comes from a run with a
	// different Streams config: segment seqs are globally ordered and
	// every stream rolled when the snapshot started, so such a segment
	// is covered exactly when it is older than every rolled stream's
	// watermark — replaying it would resurrect pre-snapshot state.
	minOverall := minSeqOverall(minSeqs)
	for _, seg := range segs {
		if minSeqs != nil {
			if min, ok := minSeqs[seg.stream]; ok {
				if seg.seq < min {
					continue
				}
			} else if seg.seq < minOverall {
				continue
			}
		}
		now := p.cfg.Clock()
		n, torn, err := replaySegment(seg.path, func(op byte, key uint64, exp int64, ver uint64, val []byte) error {
			if op == opSet && exp != 0 && exp <= now {
				st.SkippedExpired++
				return apply(OpDelete, key, 0, 0, nil)
			}
			return apply(Op(op), key, exp, ver, val)
		})
		st.WALRecords += int64(n)
		st.WALSegments++
		if torn {
			st.TornSegments++
		}
		if err != nil {
			return st, fmt.Errorf("persist: replaying %s: %w", seg.path, err)
		}
	}
	p.recovered = st
	return st, nil
}

// minSeqOverall returns the smallest per-stream replay watermark — the
// coverage bound for segments of streams the snapshot does not list.
func minSeqOverall(minSeqs map[int]uint64) uint64 {
	min := ^uint64(0)
	for _, s := range minSeqs {
		if s < min {
			min = s
		}
	}
	return min
}

// CoreSource adapts a CPHASH table's safe-snapshot scan to the
// pipeline's snapshot Source.
func CoreSource(t *core.Table) Source {
	return func(cursor uint64, max int) ([]partition.ScanEntry, uint64, bool, error) {
		return t.ScanEntries(cursor, max, nil)
	}
}

// LockHashSource adapts a LOCKHASH table's scan to the snapshot Source.
func LockHashSource(t *lockhash.Table) Source {
	return func(cursor uint64, max int) ([]partition.ScanEntry, uint64, bool, error) {
		entries, next, done := t.ScanEntries(cursor, max, nil)
		return entries, next, done, nil
	}
}

// RestoreCore replays the pipeline's durable state into a CPHASH table
// through client handle clientID (the handle is released afterwards, so
// a server backend may reuse the slot). Expiry deadlines are converted
// to TTLs against the pipeline clock at apply time — remaining lifetimes
// survive within that conversion's skew (sub-millisecond plus ring
// latency). Must run after the table is built and before Pipeline.Start.
func RestoreCore(p *Pipeline, t *core.Table, clientID int) (RecoverStats, error) {
	c, err := t.Client(clientID)
	if err != nil {
		return RecoverStats{}, err
	}
	defer c.Close()
	st, err := p.Recover(func(op Op, key uint64, exp int64, ver uint64, val []byte) error {
		switch op {
		case OpSet:
			ttl := time.Duration(0)
			if exp != 0 {
				ttl = time.Duration(exp - p.cfg.Clock())
				if ttl <= 0 {
					return nil // raced to expiry mid-recovery
				}
			}
			// Synchronous: the replay loop reuses val's backing buffer
			// for the next record, and the client only copies the value
			// into the table when the insert completes. Replaying the
			// recorded version keeps CAS tokens stable across a restart.
			c.PutTTLVer(key, val, ttl, ver)
		case OpDelete:
			c.Delete(key)
		}
		return nil
	})
	c.WaitAll()
	return st, err
}

// RestoreLockHash replays the pipeline's durable state into a LOCKHASH
// table, preserving absolute expiry deadlines exactly. Must run after
// the table is built and before Pipeline.Start.
func RestoreLockHash(p *Pipeline, t *lockhash.Table) (RecoverStats, error) {
	return p.Recover(func(op Op, key uint64, exp int64, ver uint64, val []byte) error {
		switch op {
		case OpSet:
			t.PutExpireVer(key, val, exp, ver)
		case OpDelete:
			t.Delete(key)
		}
		return nil
	})
}
