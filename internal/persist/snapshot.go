package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot on-disk format — a statichash-style compact immutable image:
// one dense pass over the table's live entries, written to a temp file
// and atomically renamed, never modified afterwards. Loading is a single
// sequential read with no per-entry seeks.
//
//	header:  magic "CPSNAP02" (8) | gen (8 LE) | nstreams (4 LE)
//	         then nstreams × { stream (4 LE) | minSeq (8 LE) }
//	records: key (8 LE) | expireAt ns (8 LE) | ver (8 LE) | vlen (4 LE) | value
//	footer:  count (8 LE) | crc32c (4 LE) | magic "SNPE" (4)
//
// The per-stream minSeq table names the first WAL segment whose records
// are NOT covered by the snapshot: recovery loads the snapshot and then
// replays segments with seq ≥ minSeq (per stream); segments below it are
// garbage and deleted. The CRC covers header + records, so a torn or
// bit-rotted snapshot is rejected whole and recovery falls back to an
// older one (or to pure WAL replay).
const (
	snapMagic    = "CPSNAP02"
	snapEnd      = "SNPE"
	snapSuffix   = ".snap"
	snapFooter   = 8 + 4 + 4
	snapScanMax  = 1024 // entries per Source call
	snapRecFixed = 8 + 8 + 8 + 4
)

func snapName(gen uint64) string {
	return fmt.Sprintf("s%016x%s", gen, snapSuffix)
}

// doSnapshot runs one snapshot cycle: roll every stream, scan the table
// through the source, write + commit the snapshot, then delete the
// covered WAL segments and older snapshots. Runs on the snapshotter
// goroutine only.
func (p *Pipeline) doSnapshot() error {
	srcp := p.source.Load()
	if srcp == nil {
		return fmt.Errorf("persist: no snapshot source configured")
	}
	src := *srcp

	// Rolling first is the correctness pivot: every mutation already in a
	// sealed (pre-roll) segment was applied to the table before the roll,
	// so the scan below — which starts after — observes it. Sealed
	// segments are therefore fully covered by the snapshot and deletable
	// once it commits; everything newer stays and is replayed on top.
	minSeqs := make(map[int]uint64, len(p.streams))
	for _, s := range p.streams {
		seq, err := s.roll()
		if err != nil {
			return err
		}
		minSeqs[s.id] = seq
	}

	gen := p.nextGen.Add(1) - 1
	tmp := filepath.Join(p.cfg.Dir, fmt.Sprintf("s%016x.tmp", gen))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename commits

	crc := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(f, 256<<10)
	w := io.MultiWriter(bw, crc)

	var hdr [8 + 8 + 4]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], gen)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(p.streams)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	var se [4 + 8]byte
	for _, s := range p.streams {
		binary.LittleEndian.PutUint32(se[0:4], uint32(s.id))
		binary.LittleEndian.PutUint64(se[4:12], minSeqs[s.id])
		if _, err := w.Write(se[:]); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}

	var count, bytes int64
	var rec [snapRecFixed]byte
	cursor := uint64(0)
	for {
		entries, next, done, err := src(cursor, snapScanMax)
		if err != nil {
			f.Close()
			return fmt.Errorf("persist: snapshot scan: %w", err)
		}
		now := p.cfg.Clock()
		for _, e := range entries {
			exp := int64(0)
			if e.TTL > 0 {
				exp = now + int64(e.TTL)
			}
			binary.LittleEndian.PutUint64(rec[0:8], e.Key)
			binary.LittleEndian.PutUint64(rec[8:16], uint64(exp))
			binary.LittleEndian.PutUint64(rec[16:24], e.Version)
			binary.LittleEndian.PutUint32(rec[24:28], uint32(len(e.Value)))
			if _, err := w.Write(rec[:]); err != nil {
				f.Close()
				return fmt.Errorf("persist: %w", err)
			}
			if _, err := w.Write(e.Value); err != nil {
				f.Close()
				return fmt.Errorf("persist: %w", err)
			}
			count++
			bytes += snapRecFixed + int64(len(e.Value))
		}
		if done {
			break
		}
		cursor = next
	}

	var foot [snapFooter]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(count))
	binary.LittleEndian.PutUint32(foot[8:12], crc.Sum32())
	copy(foot[12:16], snapEnd)
	if _, err := bw.Write(foot[:]); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	final := filepath.Join(p.cfg.Dir, snapName(gen))
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	syncDir(p.cfg.Dir)

	p.snapshots.Add(1)
	p.snapEntries.Store(count)
	p.snapBytes.Store(bytes)
	p.snapWhen.Store(p.cfg.Clock())
	p.truncateCovered(gen, minSeqs)
	return nil
}

// truncateCovered deletes snapshots older than gen and WAL segments the
// gen snapshot covers: per stream, seq < that stream's roll watermark;
// for segments of streams this pipeline does not run (a previous run
// used a different Streams config), seq older than every watermark —
// segment seqs are globally ordered, so such segments predate the roll
// barrier and are fully covered. Failures are ignored — stale files are
// re-collected by the next snapshot, and replaying a covered segment is
// harmless (the log's last-writer-wins replay converges to the same
// state), just slower.
func (p *Pipeline) truncateCovered(gen uint64, minSeqs map[int]uint64) {
	segs, snaps, err := scanDir(p.cfg.Dir)
	if err != nil {
		return
	}
	for _, s := range snaps {
		if s.gen < gen {
			os.Remove(s.path)
		}
	}
	minOverall := minSeqOverall(minSeqs)
	for _, s := range segs {
		if min, ok := minSeqs[s.stream]; ok {
			if s.seq < min {
				os.Remove(s.path)
			}
		} else if s.seq < minOverall {
			os.Remove(s.path)
		}
	}
}

// syncDir fsyncs a directory so a just-renamed file survives a crash;
// best-effort (not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// readSnapshot validates path and, if apply is non-nil, streams its
// records into apply. Returns the record count and the per-stream minSeq
// replay table. Callers validate with apply == nil first, then re-read
// to apply — a snapshot is rejected whole on any inconsistency.
func readSnapshot(path string, apply func(key uint64, expireAt int64, ver uint64, value []byte) error) (count int64, minSeqs map[int]uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, nil, err
	}
	crc := crc32.New(castagnoli)
	br := bufio.NewReaderSize(f, 256<<10)

	var hdr [8 + 8 + 4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("truncated header")
	}
	crc.Write(hdr[:])
	if string(hdr[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("bad magic")
	}
	nstreams := binary.LittleEndian.Uint32(hdr[16:20])
	if nstreams > 1<<16 {
		return 0, nil, fmt.Errorf("implausible stream count %d", nstreams)
	}
	minSeqs = make(map[int]uint64, nstreams)
	var se [4 + 8]byte
	for i := uint32(0); i < nstreams; i++ {
		if _, err := io.ReadFull(br, se[:]); err != nil {
			return 0, nil, fmt.Errorf("truncated stream table")
		}
		crc.Write(se[:])
		minSeqs[int(binary.LittleEndian.Uint32(se[0:4]))] = binary.LittleEndian.Uint64(se[4:12])
	}

	recEnd := fi.Size() - snapFooter
	pos := int64(len(hdr)) + int64(nstreams)*int64(len(se))
	if recEnd < pos {
		return 0, nil, fmt.Errorf("truncated records")
	}
	var rec [snapRecFixed]byte
	value := make([]byte, 0, 4096)
	for pos < recEnd {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return 0, nil, fmt.Errorf("truncated record header")
		}
		crc.Write(rec[:])
		vlen := binary.LittleEndian.Uint32(rec[24:28])
		if vlen > maxRecordLen || pos+snapRecFixed+int64(vlen) > recEnd {
			return 0, nil, fmt.Errorf("corrupt record length")
		}
		if cap(value) < int(vlen) {
			value = make([]byte, vlen)
		}
		value = value[:vlen]
		if _, err := io.ReadFull(br, value); err != nil {
			return 0, nil, fmt.Errorf("truncated value")
		}
		crc.Write(value)
		if apply != nil {
			key := binary.LittleEndian.Uint64(rec[0:8])
			exp := int64(binary.LittleEndian.Uint64(rec[8:16]))
			ver := binary.LittleEndian.Uint64(rec[16:24])
			if err := apply(key, exp, ver, value); err != nil {
				return count, minSeqs, err
			}
		}
		count++
		pos += snapRecFixed + int64(vlen)
	}

	var foot [snapFooter]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return 0, nil, fmt.Errorf("truncated footer")
	}
	if string(foot[12:16]) != snapEnd {
		return 0, nil, fmt.Errorf("bad footer magic")
	}
	if int64(binary.LittleEndian.Uint64(foot[0:8])) != count {
		return 0, nil, fmt.Errorf("count mismatch")
	}
	if binary.LittleEndian.Uint32(foot[8:12]) != crc.Sum32() {
		return 0, nil, fmt.Errorf("checksum mismatch")
	}
	return count, minSeqs, nil
}
