package persist

import (
	"errors"
	"fmt"
	"io/fs"
)

// This file is the replication surface of the durability pipeline: a
// fanout of the live WAL tail plus a replay of the durable prefix while
// the pipeline is running. internal/replica composes the two into
// "recovery, continuously" — a follower first replays the durable state
// up to a roll barrier, then applies the tail records published after
// the fanout was attached. Because every record reaches exactly one
// appender (key → partition → stream), the overlap between the two
// phases replays idempotently, last writer wins.

// TailSink observes every WAL record at the moment the persister writes
// it to the segment writer. TailRecord is called on the persister
// goroutines (one per stream, so calls may be concurrent across streams
// but are ordered per stream, and therefore per key); the payload — the
// staged op(1)|key(8 LE)|expireAt(8 LE)|ver(8 LE)|value frame — is only valid for
// the duration of the call, as its buffer is recycled. Implementations
// must copy what they keep and must not block: they sit on the
// durability hot path.
type TailSink interface {
	TailRecord(payload []byte)
}

// SetTailSink attaches (or, with nil, detaches) the WAL tail fanout.
// Records written to segments after the attach is observed are
// guaranteed to reach the sink; to bound the records that may have
// missed it, call RollAll after attaching — every record absent from the
// sink is then in a segment below the returned roll barrier.
func (p *Pipeline) SetTailSink(ts TailSink) {
	if ts == nil {
		p.tailSink.Store(nil)
		return
	}
	p.tailSink.Store(&ts)
}

// RollAll seals every stream's current segment and returns the fresh
// segments' seqs — a replay barrier: all records drained before the call
// live in segments strictly below their stream's returned seq. The
// pipeline must be running.
func (p *Pipeline) RollAll() (map[int]uint64, error) {
	if !p.started.Load() || p.closed.Load() {
		return nil, fmt.Errorf("persist: pipeline not running")
	}
	out := make(map[int]uint64, len(p.streams))
	for _, s := range p.streams {
		seq, err := s.roll()
		if err != nil {
			return nil, err
		}
		out[s.id] = seq
	}
	return out, nil
}

// replayAttempts bounds ReplayDurable's restarts when the snapshotter
// truncates files out from under it.
const replayAttempts = 5

// ReplayDurable streams the durable state — newest valid snapshot, then
// sealed WAL segments below the per-stream bound (as returned by
// RollAll) — into apply, in last-writer-wins order, while the pipeline
// is RUNNING. This is Recover's online sibling: the snapshotter may
// delete a file mid-replay (it was covered by a newer snapshot), in
// which case the whole replay restarts from a fresh directory scan —
// apply must therefore tolerate re-application from the start, which the
// log's idempotent replay semantics already require. Set records whose
// deadline has elapsed arrive as OpDelete, exactly as in Recover.
func (p *Pipeline) ReplayDurable(before map[int]uint64, apply func(op Op, key uint64, expireAt int64, ver uint64, value []byte) error) (records int64, err error) {
	for try := 0; try < replayAttempts; try++ {
		n, err := p.replayDurableOnce(before, apply)
		if err == nil {
			return n, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return n, err
		}
		// A snapshot or segment vanished (covered by a newer snapshot):
		// rescan and replay again from the top.
	}
	return 0, fmt.Errorf("persist: replay kept racing snapshot truncation (%d attempts)", replayAttempts)
}

func (p *Pipeline) replayDurableOnce(before map[int]uint64, apply func(op Op, key uint64, expireAt int64, ver uint64, value []byte) error) (int64, error) {
	segs, snaps, err := scanDir(p.cfg.Dir)
	if err != nil {
		return 0, err
	}
	var records int64
	var minSeqs map[int]uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		s := snaps[i]
		if _, _, err := readSnapshot(s.path, nil); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return records, err // deleted underfoot: restart
			}
			continue // invalid: fall back to an older snapshot, like Recover
		}
		now := p.cfg.Clock()
		n, ms, err := readSnapshot(s.path, func(key uint64, exp int64, ver uint64, val []byte) error {
			if exp != 0 && exp <= now {
				return nil
			}
			return apply(OpSet, key, exp, ver, val)
		})
		if err != nil {
			return records, fmt.Errorf("persist: replaying snapshot %s: %w", s.path, err)
		}
		records += n
		minSeqs = ms
		break
	}
	minOverall := minSeqOverall(minSeqs)
	for _, seg := range segs {
		// Below the roll barrier only: the segment is sealed, never written
		// again. Segments of streams this run does not own (a previous run
		// with a different Streams config) predate every barrier seq — the
		// seq allocator is global and monotonic — so they replay whole.
		if b, ok := before[seg.stream]; ok && seg.seq >= b {
			continue
		}
		// Skip segments the snapshot covers, exactly as Recover does.
		if minSeqs != nil {
			if min, ok := minSeqs[seg.stream]; ok {
				if seg.seq < min {
					continue
				}
			} else if seg.seq < minOverall {
				continue
			}
		}
		now := p.cfg.Clock()
		n, _, err := replaySegment(seg.path, func(op byte, key uint64, exp int64, ver uint64, val []byte) error {
			if op == opSet && exp != 0 && exp <= now {
				return apply(OpDelete, key, 0, 0, nil)
			}
			return apply(Op(op), key, exp, ver, val)
		})
		records += int64(n)
		if err != nil {
			return records, fmt.Errorf("persist: replaying %s: %w", seg.path, err)
		}
	}
	return records, nil
}
